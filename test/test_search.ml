(* Tests for the expression-guided generator (paper §4, Algorithm 1):
   root enumeration, thread fusion, pruning behavior, and end-to-end
   discovery of fused muGraphs on small problems. *)

open Mugraph

let prim bld p ins = Graph.Build.prim bld p ins

let div_matmul_spec ~b ~h ~d =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let c = Graph.Build.input bld "C" [| b; 1 |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let y = prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

let small_config ?(ops = 4) ?(pruning = true) () =
  {
    Search.Config.default with
    Search.Config.grid_candidates = [ [| 2 |] ];
    forloop_candidates = [ [| 2 |] ];
    max_block_ops = ops;
    num_workers = 1;
    use_abstract_pruning = pruning;
    time_budget_s = 90.0;
  }

(* --- config derivation --------------------------------------------------- *)

let test_config_menu_derivation () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg = Search.Config.for_spec spec in
  let has p = List.mem p cfg.Search.Config.block_op_menu in
  Alcotest.(check bool) "div kept" true (has (Op.Binary Op.Div));
  Alcotest.(check bool) "matmul kept" true (has Op.Matmul);
  Alcotest.(check bool) "exp dropped" false (has (Op.Unary Op.Exp));
  Alcotest.(check bool) "sqrt dropped" false (has (Op.Unary Op.Sqrt));
  Alcotest.(check bool) "add dropped (single-term goal)" false
    (has (Op.Binary Op.Add));
  Alcotest.(check bool) "sub dropped" false (has (Op.Binary Op.Sub))

let test_config_keeps_add_for_sums () =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 4 |] in
  let y = Graph.Build.input bld "Y" [| 4; 4 |] in
  let s = prim bld (Op.Binary Op.Add) [ x; y ] in
  let spec = Graph.Build.finish bld ~outputs:[ s ] in
  let cfg = Search.Config.for_spec spec in
  Alcotest.(check bool) "add kept" true
    (List.mem (Op.Binary Op.Add) cfg.Search.Config.block_op_menu)

(* --- root enumeration ----------------------------------------------------- *)

let test_roots_validity () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg = small_config () in
  let roots =
    Search.Block_enum.enumerate_roots cfg
      ~input_shapes:(Graph.input_shapes spec)
  in
  Alcotest.(check bool) "some roots" true (List.length roots > 0);
  List.iter
    (fun (r : Search.Block_enum.root) ->
      Alcotest.(check int) "one iterator per input" 3
        (Array.length r.Search.Block_enum.initers);
      (* every grid dim partitions at least one input *)
      Array.iteri
        (fun gdim _ ->
          Alcotest.(check bool) "grid dim covered" true
            (Array.exists
               (fun (imap, _) ->
                 match imap.(gdim) with
                 | Dmap.Dim _ -> true
                 | Dmap.Replica -> false)
               r.Search.Block_enum.initers))
        r.Search.Block_enum.grid)
    roots

let test_roots_divisibility () =
  (* C has shape [4,1]: its dim 1 cannot be split in 2 *)
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg = small_config () in
  let roots =
    Search.Block_enum.enumerate_roots cfg
      ~input_shapes:(Graph.input_shapes spec)
  in
  List.iter
    (fun (r : Search.Block_enum.root) ->
      let imap_c, _ = r.Search.Block_enum.initers.(1) in
      match imap_c.(0) with
      | Dmap.Dim 1 -> Alcotest.fail "split a size-1 dimension"
      | _ -> ())
    roots

(* --- thread fusion --------------------------------------------------------- *)

let test_thread_fusion () =
  let fused =
    Search.Thread_fuse.fuse_kernel
      (Baselines.Templates.ntrans_fused ~b:4 ~d:32 ~grid:4)
  in
  Alcotest.(check bool) "some ops fused into thread graphs" true
    (Search.Thread_fuse.fused_op_count fused > 0);
  (* function is preserved *)
  let spec = Baselines.Templates.ntrans_spec ~b:4 ~d:32 in
  Alcotest.(check string) "still equivalent" "equivalent"
    (Verify.Random_test.to_string
       (Verify.Random_test.equivalent ~trials:2 ~spec fused))

let test_thread_fusion_skips_matmul () =
  let g =
    Search.Thread_fuse.fuse_kernel
      (Baselines.Templates.lora_fused ~m:32 ~k:16 ~r:4 ~n:8 ~grid:4 ~iters:2)
  in
  (* matmuls must remain block-level operators *)
  let matmuls = ref 0 in
  Array.iter
    (fun (node : Graph.kernel_node) ->
      match node.Graph.kop with
      | Graph.K_graphdef bg ->
          Array.iter
            (fun (bn : Graph.block_node) ->
              match bn.Graph.bop with
              | Graph.B_prim Op.Matmul -> incr matmuls
              | _ -> ())
            bg.Graph.bnodes
      | _ -> ())
    g.Graph.knodes;
  Alcotest.(check int) "3 block-level matmuls" 3 !matmuls

(* --- end-to-end search ------------------------------------------------------ *)

let test_search_discovers_fused_kernel () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg = Search.Config.for_spec ~base:(small_config ()) spec in
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  match o.Search.Generator.best with
  | Some r ->
      Alcotest.(check bool) "found a single fused kernel" true
        (r.Search.Generator.cost.Gpusim.Cost.num_kernels = 1);
      Alcotest.(check bool) "cheaper than spec" true
        (r.Search.Generator.cost.Gpusim.Cost.total_us
        < (Gpusim.Cost.cost Gpusim.Device.a100 spec).Gpusim.Cost.total_us);
      (* and it is genuinely equivalent *)
      Alcotest.(check string) "verified" "equivalent"
        (Verify.Random_test.to_string
           (Verify.Random_test.equivalent ~trials:3 ~spec
              r.Search.Generator.graph))
  | None -> Alcotest.fail "search found nothing"

let test_search_kernel_level_rewrite () =
  (* X*Z + Y*Z: the kernel-level enumerator must find (X+Y)*Z, which has
     one fewer operator (TASO-style algebraic rewrite). *)
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 8; 8 |] in
  let y = Graph.Build.input bld "Y" [| 8; 8 |] in
  let z = Graph.Build.input bld "Z" [| 8; 8 |] in
  let xz = prim bld (Op.Binary Op.Mul) [ x; z ] in
  let yz = prim bld (Op.Binary Op.Mul) [ y; z ] in
  let s = prim bld (Op.Binary Op.Add) [ xz; yz ] in
  let spec = Graph.Build.finish bld ~outputs:[ s ] in
  let cfg =
    Search.Config.for_spec
      ~base:
        {
          (small_config ~ops:3 ()) with
          Search.Config.grid_candidates = [];
          forloop_candidates = [];
          max_kernel_ops = 3;
        }
      spec
  in
  let o =
    Search.Generator.run ~config:cfg ~verify_all:true
      ~device:Gpusim.Device.a100 ~spec ()
  in
  let found_two_op =
    List.exists
      (fun (r : Search.Generator.result) ->
        Graph.kernel_op_count r.Search.Generator.graph = 2)
      o.Search.Generator.verified
  in
  Alcotest.(check bool) "found (X+Y)*Z" true found_two_op

let test_pruning_reduces_search () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let with_p =
    Search.Config.for_spec ~base:(small_config ~ops:3 ()) spec
  in
  let without_p =
    Search.Config.for_spec ~base:(small_config ~ops:3 ~pruning:false ()) spec
  in
  let t1, _ = Search.Generator.search_time ~config:with_p ~spec () in
  let t2, _ = Search.Generator.search_time ~config:without_p ~spec () in
  Alcotest.(check bool)
    (Printf.sprintf "pruned %.2fs < unpruned %.2fs" t1 t2)
    true (t1 < t2)

let test_budget_respected () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg =
    {
      (Search.Config.for_spec ~base:(small_config ~ops:8 ()) spec) with
      Search.Config.time_budget_s = 0.3;
    }
  in
  let t, exhausted = Search.Generator.search_time ~config:cfg ~spec () in
  Alcotest.(check bool) "stopped quickly" true (t < 5.0);
  Alcotest.(check bool) "reported exhaustion" true exhausted

let test_search_discovers_fused_softmax () =
  (* softmax along the last dim: exp / rowsum / div — an exp-containing
     (LAX) program; one block per row chunk, no for-loop. *)
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 8; 16 |] in
  let e = prim bld (Op.Unary Op.Exp) [ x ] in
  let l = prim bld (Op.Sum { dim = 1; group = 16 }) [ e ] in
  let o = prim bld (Op.Binary Op.Div) [ e; l ] in
  let spec = Graph.Build.finish bld ~outputs:[ o ] in
  let base =
    {
      (small_config ~ops:3 ()) with
      Search.Config.grid_candidates = [ [| 4 |] ];
      forloop_candidates = [ [||] ];
    }
  in
  let cfg = Search.Config.for_spec ~base spec in
  Alcotest.(check bool) "exp in menu" true
    (List.mem (Op.Unary Op.Exp) cfg.Search.Config.block_op_menu);
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  match o.Search.Generator.best with
  | Some r ->
      Alcotest.(check int) "one kernel" 1
        r.Search.Generator.cost.Gpusim.Cost.num_kernels;
      Alcotest.(check string) "verified" "equivalent"
        (Verify.Random_test.to_string
           (Verify.Random_test.equivalent ~trials:3 ~spec
              r.Search.Generator.graph))
  | None -> Alcotest.fail "no fused softmax found"

let test_search_2d_grid () =
  (* a batched softmax over [4, 4, 8] with an explicit 2-d grid: the
     enumerator must handle multi-dimensional grids and omaps. *)
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 4; 8 |] in
  let e = prim bld (Op.Unary Op.Exp) [ x ] in
  let l = prim bld (Op.Sum { dim = 2; group = 8 }) [ e ] in
  let o = prim bld (Op.Binary Op.Div) [ e; l ] in
  let spec = Graph.Build.finish bld ~outputs:[ o ] in
  let base =
    {
      (small_config ~ops:3 ()) with
      Search.Config.grid_candidates = [ [| 2; 2 |] ];
      forloop_candidates = [ [||] ];
    }
  in
  let cfg = Search.Config.for_spec ~base spec in
  let roots =
    Search.Block_enum.enumerate_roots cfg
      ~input_shapes:(Graph.input_shapes spec)
  in
  Alcotest.(check bool) "2-d roots exist" true (List.length roots > 0);
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  match o.Search.Generator.best with
  | Some r ->
      Alcotest.(check int) "fused under a 2-d grid" 1
        r.Search.Generator.cost.Gpusim.Cost.num_kernels;
      Alcotest.(check string) "verified" "equivalent"
        (Verify.Random_test.to_string
           (Verify.Random_test.equivalent ~trials:2 ~spec
              r.Search.Generator.graph))
  | None -> Alcotest.fail "no 2-d-grid kernel found"

let test_spec_always_candidate () =
  (* even with an empty search space the input program is returned *)
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg =
    {
      (small_config ~ops:1 ()) with
      Search.Config.grid_candidates = [];
      forloop_candidates = [];
      max_kernel_ops = 0;
    }
  in
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  match o.Search.Generator.best with
  | Some r ->
      Alcotest.(check bool) "returns the spec" true
        (Graph.equal r.Search.Generator.graph spec)
  | None -> Alcotest.fail "no result"

(* --- parallel candidate verification ------------------------------------- *)

let test_parallel_matches_sequential_winner () =
  (* Candidates are claimed from the cost-sorted array (hash tie-break),
     so the parallel first-winner must equal the sequential one, and the
     verify-all survivor sets must coincide element for element. *)
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let go workers verify_all =
    let cfg =
      {
        (Search.Config.for_spec ~base:(small_config ()) spec) with
        Search.Config.num_workers = workers;
      }
    in
    Search.Generator.run ~config:cfg ~verify_all ~device:Gpusim.Device.a100
      ~spec ()
  in
  let seq = go 1 false and par = go 4 false in
  (match (seq.Search.Generator.best, par.Search.Generator.best) with
  | Some a, Some b ->
      Alcotest.(check bool) "same first winner" true
        (Graph.equal a.Search.Generator.graph b.Search.Generator.graph);
      Alcotest.(check (float 1e-9)) "same winner cost"
        a.Search.Generator.cost.Gpusim.Cost.total_us
        b.Search.Generator.cost.Gpusim.Cost.total_us
  | _ -> Alcotest.fail "both searches must find a winner");
  let seq = go 1 true and par = go 4 true in
  Alcotest.(check int) "same verified count"
    (List.length seq.Search.Generator.verified)
    (List.length par.Search.Generator.verified);
  List.iter2
    (fun (a : Search.Generator.result) (b : Search.Generator.result) ->
      Alcotest.(check bool) "same survivors in the same cost order" true
        (Graph.equal a.Search.Generator.graph b.Search.Generator.graph))
    seq.Search.Generator.verified par.Search.Generator.verified

let test_deadline_during_parallel_verify () =
  (* A budget too small for the ops=8 space with 4 workers: wherever the
     deadline lands (enumeration or the parallel verify loop) the run
     must return best-so-far — the spec at worst — with the reason
     recorded, never crash or overshoot. *)
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg =
    {
      (Search.Config.for_spec ~base:(small_config ~ops:8 ()) spec) with
      Search.Config.num_workers = 4;
    }
  in
  let budget = Obs.Budget.create ~time_budget_s:0.15 () in
  let t0 = Unix.gettimeofday () in
  let o =
    Search.Generator.run ~config:cfg ~verify_all:true ~budget
      ~device:Gpusim.Device.a100 ~spec ()
  in
  Alcotest.(check bool) "stopped near the deadline" true
    (Unix.gettimeofday () -. t0 < 10.0);
  Alcotest.(check bool) "best-so-far returned" true
    (o.Search.Generator.best <> None);
  Alcotest.(check bool) "deadline recorded in degraded" true
    (List.mem "deadline" o.Search.Generator.degraded)

let test_expired_deadline_parallel_verify () =
  (* Deadline already in the past when verification starts: the parallel
     loop must hand back the spec immediately. *)
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg =
    {
      (Search.Config.for_spec ~base:(small_config ()) spec) with
      Search.Config.num_workers = 4;
    }
  in
  let budget = Obs.Budget.create ~time_budget_s:1e-6 () in
  Unix.sleepf 0.01;
  let o =
    Search.Generator.run ~config:cfg ~budget ~device:Gpusim.Device.a100 ~spec
      ()
  in
  (match o.Search.Generator.best with
  | Some r ->
      Alcotest.(check bool) "falls back to the spec" true
        (Graph.equal r.Search.Generator.graph spec)
  | None -> Alcotest.fail "best-so-far must never be empty");
  Alcotest.(check bool) "deadline recorded" true
    (List.mem "deadline" o.Search.Generator.degraded)

let () =
  Alcotest.run "search"
    [
      ( "config",
        [
          Alcotest.test_case "menu derivation" `Quick
            test_config_menu_derivation;
          Alcotest.test_case "add kept for sums" `Quick
            test_config_keeps_add_for_sums;
        ] );
      ( "roots",
        [
          Alcotest.test_case "validity" `Quick test_roots_validity;
          Alcotest.test_case "divisibility" `Quick test_roots_divisibility;
        ] );
      ( "thread fusion",
        [
          Alcotest.test_case "fuses elementwise chains" `Quick
            test_thread_fusion;
          Alcotest.test_case "keeps matmuls at block level" `Quick
            test_thread_fusion_skips_matmul;
        ] );
      ( "generator",
        [
          Alcotest.test_case "discovers fused kernel" `Slow
            test_search_discovers_fused_kernel;
          Alcotest.test_case "kernel-level rewrite" `Quick
            test_search_kernel_level_rewrite;
          Alcotest.test_case "discovers fused softmax" `Slow
            test_search_discovers_fused_softmax;
          Alcotest.test_case "2-d grid search" `Slow test_search_2d_grid;
          Alcotest.test_case "pruning reduces time" `Slow
            test_pruning_reduces_search;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "spec is always a candidate" `Quick
            test_spec_always_candidate;
        ] );
      ( "parallel verify",
        [
          Alcotest.test_case "parallel winner equals sequential" `Slow
            test_parallel_matches_sequential_winner;
          Alcotest.test_case "deadline mid-run degrades cleanly" `Slow
            test_deadline_during_parallel_verify;
          Alcotest.test_case "expired deadline returns spec" `Quick
            test_expired_deadline_parallel_verify;
        ] );
    ]
