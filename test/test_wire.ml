(* Wire-level hardening tests: the Proto framing layer against
   adversarial byte streams (truncated headers, oversized lengths,
   garbage JSON, slowloris trickles, mid-frame disconnects — both
   directions, via the wire.* chaos points), the daemon against hostile
   peers (slowloris disconnected within the frame deadline, handler
   thread reclaimed), client resilience (request_with_retry rides
   through transient overload on the server's typed rejections), and
   the torture test: dozens of concurrent mixed-behavior clients against
   one daemon, which must stay responsive, shed load with typed errors,
   and leak neither threads nor temp files. *)

open Mugraph
module J = Obs.Jsonw

let reset () =
  Obs.Fault.clear ();
  Obs.Budget.reset_degradations ()

let with_reset f () =
  reset ();
  Fun.protect ~finally:reset f

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let small_config () =
  {
    Search.Config.default with
    Search.Config.grid_candidates = [ [| 2 |] ];
    forloop_candidates = [ [| 2 |] ];
    max_block_ops = 3;
    num_workers = 1;
    time_budget_s = 90.0;
  }

let small_spec ?(h = 4) () =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 2; h |] in
  let c = Graph.Build.input bld "C" [| 2; 1 |] in
  let w = Graph.Build.input bld "W" [| h; 4 |] in
  let y = Graph.Build.prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = Graph.Build.prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

(* --- Proto vs adversarial byte streams (socketpair, both ends ours) --- *)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let header n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.to_string b

let expect_protocol_error name f =
  match f () with
  | (_ : J.t) -> Alcotest.failf "%s: frame accepted" name
  | exception Service.Proto.Protocol_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: wrong exception %s" name (Printexc.to_string e)

let test_clean_close () =
  with_pair (fun a b ->
      Unix.close a;
      match Service.Proto.read_frame b with
      | (_ : J.t) -> Alcotest.fail "read a frame from a closed peer"
      | exception End_of_file -> ())

let test_truncated_header () =
  with_pair (fun a b ->
      write_all a "\x00\x00";
      Unix.close a;
      expect_protocol_error "truncated header" (fun () ->
          Service.Proto.read_frame b))

let test_torn_payload () =
  with_pair (fun a b ->
      write_all a (header 100);
      write_all a "{\"op\":";
      Unix.close a;
      expect_protocol_error "torn payload" (fun () ->
          Service.Proto.read_frame b))

let test_disconnect_after_header () =
  with_pair (fun a b ->
      write_all a (header 42);
      Unix.close a;
      (* a promised payload that never starts is torn, not a clean close *)
      expect_protocol_error "disconnect after header" (fun () ->
          Service.Proto.read_frame b))

let test_oversized_length () =
  with_pair (fun a b ->
      write_all a (header (Service.Proto.max_frame_bytes + 1));
      expect_protocol_error "oversized length" (fun () ->
          Service.Proto.read_frame b))

let test_garbage_json () =
  with_pair (fun a b ->
      let junk = "not json at all {{{" in
      write_all a (header (String.length junk));
      write_all a junk;
      expect_protocol_error "garbage JSON" (fun () ->
          Service.Proto.read_frame b))

let test_slowloris_read_deadline () =
  with_pair (fun a b ->
      write_all a "\x00\x00";
      (* ...and silence: the reader must give up at its deadline *)
      let t0 = Unix.gettimeofday () in
      (match Service.Proto.read_frame ~timeout_s:0.2 b with
      | (_ : J.t) -> Alcotest.fail "slowloris produced a frame"
      | exception Service.Proto.Timed_out _ -> ()
      | exception e ->
          Alcotest.failf "wrong exception %s" (Printexc.to_string e));
      Alcotest.(check bool) "gave up promptly" true
        (Unix.gettimeofday () -. t0 < 2.0))

let test_idle_deadline () =
  with_pair (fun _a b ->
      match Service.Proto.read_frame ~idle_timeout_s:0.2 b with
      | (_ : J.t) -> Alcotest.fail "idle peer produced a frame"
      | exception Service.Proto.Timed_out _ -> ()
      | exception e ->
          Alcotest.failf "wrong exception %s" (Printexc.to_string e))

let test_write_deadline () =
  with_pair (fun a _b ->
      (* never drain [b]: the writer must hit its deadline once the
         socket buffers fill *)
      let big =
        J.Obj [ ("pad", J.Str (String.make (4 * 1024 * 1024) 'x')) ]
      in
      match Service.Proto.write_frame ~timeout_s:0.3 a big with
      | () -> Alcotest.fail "4 MiB vanished into an undrained socket"
      | exception Service.Proto.Timed_out _ -> ()
      | exception e ->
          Alcotest.failf "wrong exception %s" (Printexc.to_string e))

(* The wire.* chaos points: an armed writer emits exactly the malformed
   stream, raises locally, and the reader survives it with a typed
   protocol error. *)
let test_wire_fault_points =
  with_reset @@ fun () ->
  let run point check_reader =
    reset ();
    (match Obs.Fault.configure (point ^ ":1.0:1") with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    with_pair (fun a b ->
        (match Service.Proto.write_frame a (J.Obj [ ("op", J.Str "status") ]) with
        | () -> Alcotest.failf "%s: write completed" point
        | exception Service.Proto.Protocol_error _ -> ());
        Unix.close a;
        check_reader b)
  in
  run "wire.oversize" (fun b ->
      expect_protocol_error "oversize reader" (fun () ->
          Service.Proto.read_frame b));
  run "wire.disconnect" (fun b ->
      expect_protocol_error "disconnect reader" (fun () ->
          Service.Proto.read_frame b));
  run "wire.torn" (fun b ->
      expect_protocol_error "torn reader" (fun () ->
          Service.Proto.read_frame b))

(* --- the daemon vs hostile peers -------------------------------------- *)

let make_socket_server ?(max_connections = 16) ?(max_queue_depth = 8)
    ?(frame_timeout_s = 0.4) ?(idle_timeout_s = 0.4)
    ?(max_concurrent_searches = 2) () =
  let socket_path = Filename.temp_file "mirage_wire_sock" ".sock" in
  Sys.remove socket_path;
  let server =
    Service.Server.create
      ~registry:(Obs.Metrics.create ())
      ~device:Gpusim.Device.a100 ~base_config:(small_config ())
      ~verify_trials:2 ~max_concurrent_searches ~max_connections
      ~max_queue_depth ~frame_timeout_s ~idle_timeout_s ~socket_path
      ~cache_dir:(tmpdir "mirage_wire_cache") ()
  in
  Service.Server.start server;
  Alcotest.(check bool) "daemon ready" true
    (Service.Client.wait_ready ~socket_path ());
  (server, socket_path)

let stop_server server =
  Service.Server.stop server;
  Service.Server.wait server

(* Poll until the daemon has reaped every handler thread. *)
let await_quiet ?(timeout_s = 5.0) server =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if Service.Server.handler_count server = 0 then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let connect socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  fd

(* A slowloris client — two header bytes, then silence — is disconnected
   within the frame deadline with a typed timeout, and its handler
   thread is reclaimed, not parked until shutdown. *)
let test_server_slowloris =
  with_reset @@ fun () ->
  let server, socket_path = make_socket_server () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let fd = connect socket_path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  write_all fd "\x00\x00";
  let t0 = Unix.gettimeofday () in
  (* the server must answer a typed timeout (or just hang up), then
     close — our read unblocks either way *)
  (match Service.Proto.read_frame ~timeout_s:3.0 fd with
  | frame ->
      Alcotest.(check string) "typed timeout answer" "timeout"
        (match J.member "error" frame with Some (J.Str s) -> s | _ -> "?")
  | exception End_of_file -> ()
  | exception Service.Proto.Protocol_error _ -> ());
  Alcotest.(check bool) "disconnected within the frame deadline" true
    (Unix.gettimeofday () -. t0 < 2.0);
  Alcotest.(check bool) "handler thread reclaimed" true (await_quiet server);
  (* the daemon is unharmed: a well-formed request still answers *)
  match Service.Client.status ~socket_path with
  | Ok r ->
      Alcotest.(check bool) "daemon healthy after slowloris" true
        (J.member "status" r = Some (J.Str "ok"))
  | Error m -> Alcotest.failf "status after slowloris: %s" m

(* Transient overload: with a one-connection daemon wedged by an idler,
   a plain request gets the typed overloaded rejection, and
   request_with_retry rides through it once the idler leaves. *)
let test_retry_through_overload =
  with_reset @@ fun () ->
  let server, socket_path =
    make_socket_server ~max_connections:1 ~idle_timeout_s:10.0
      ~frame_timeout_s:10.0 ()
  in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let hog = connect socket_path in
  (* wait for the hog's handler to take the one connection slot *)
  let t0 = Unix.gettimeofday () in
  while
    Service.Admit.live_conns (Service.Server.admit server) < 1
    && Unix.gettimeofday () -. t0 < 5.0
  do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "hog holds the only slot" 1
    (Service.Admit.live_conns (Service.Server.admit server));
  (* a plain request is shed with the typed rejection, never a hang *)
  (match Service.Client.status ~socket_path with
  | Ok r ->
      Alcotest.(check (option string)) "typed overloaded" (Some "overloaded")
        (Service.Client.error_kind r);
      Alcotest.(check bool) "carries retry_after_s" true
        (Service.Client.retry_after_s r <> None)
  | Error m -> Alcotest.failf "overload answered with transport error: %s" m);
  (* free the slot only once the retrying client has been shed at least
     once (a fixed delay flakes under load: on a busy host the first
     retry attempt can come after the slot is already free, and then no
     attempt ever sees the typed rejection); 5 s cap so a wedged retry
     loop still ends in a reported failure, not a hang *)
  let reasons = ref [] in
  let releaser =
    Thread.create
      (fun () ->
        let t0 = Unix.gettimeofday () in
        while
          (not (List.mem "overloaded" !reasons))
          && Unix.gettimeofday () -. t0 < 5.0
        do
          Thread.delay 0.02
        done;
        Unix.close hog)
      ()
  in
  let resp =
    Service.Client.request_with_retry ~max_attempts:20 ~base_delay_s:0.05
      ~max_delay_s:0.2
      ~on_retry:(fun ~attempt:_ ~delay_s:_ ~reason ->
        reasons := reason :: !reasons)
      ~socket_path
      (J.Obj [ ("op", J.Str "status") ])
  in
  Thread.join releaser;
  (match resp with
  | Ok r ->
      Alcotest.(check bool) "retry landed a real answer" true
        (J.member "status" r = Some (J.Str "ok"))
  | Error m -> Alcotest.failf "request_with_retry gave up: %s" m);
  Alcotest.(check bool) "the shed attempts were typed overloaded" true
    (List.mem "overloaded" !reasons)

(* --- the torture test -------------------------------------------------- *)

(* Dozens of concurrent clients with mixed behavior — honest searches,
   torn frames, garbage, idlers, impossibly tight deadlines — against
   one daemon. The daemon must answer every honest request, shed the
   rest with typed errors or disconnects, and come out quiet: zero
   handler threads, zero orphaned temp files, flights drained, and a
   fresh request served. *)
let test_torture =
  with_reset @@ fun () ->
  let server, socket_path =
    make_socket_server ~max_connections:32 ~max_queue_depth:4
      ~frame_timeout_s:0.5 ~idle_timeout_s:0.5 ~max_concurrent_searches:2 ()
  in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let good_graph = Search.Checkpoint.graph_to_json (small_spec ()) in
  let other_graph = Search.Checkpoint.graph_to_json (small_spec ~h:8 ()) in
  let good_results = Queue.create () in
  let good_lock = Mutex.create () in
  let failures = Queue.create () in
  let fail_with m =
    Mutex.lock good_lock;
    Queue.add m failures;
    Mutex.unlock good_lock
  in
  let honest i () =
    match
      Service.Client.request ~socket_path
        (J.Obj
           [
             ("op", J.Str "optimize");
             ("graph", good_graph);
             ("request_id", J.Str (Printf.sprintf "torture-good-%d" i));
           ])
    with
    | Ok r when J.member "status" r = Some (J.Str "ok") ->
        Mutex.lock good_lock;
        Queue.add (J.to_string (Option.get (J.member "result" r))) good_results;
        Mutex.unlock good_lock
    | Ok r -> fail_with ("honest request rejected: " ^ J.to_string r)
    | Error m -> fail_with ("honest request errored: " ^ m)
  in
  let partial_frame () =
    match connect socket_path with
    | exception _ -> ()
    | fd ->
        (try write_all fd "\x00\x01" with _ -> ());
        Thread.delay 0.02;
        (try Unix.close fd with _ -> ())
  in
  let garbage () =
    match connect socket_path with
    | exception _ -> ()
    | fd ->
        (try
           let junk = "}}{{ definitely not json" in
           write_all fd (header (String.length junk));
           write_all fd junk;
           (* the daemon answers a typed bad_frame; draining is polite
              but optional *)
           ignore (Service.Proto.read_frame ~timeout_s:2.0 fd)
         with _ -> ());
        (try Unix.close fd with _ -> ())
  in
  let idler () =
    match connect socket_path with
    | exception _ -> ()
    | fd ->
        (* outlive the idle deadline: the server must hang up first *)
        Thread.delay 0.8;
        (try Unix.close fd with _ -> ())
  in
  let tight_deadline i () =
    match
      Service.Client.request ~socket_path
        (J.Obj
           [
             ("op", J.Str "optimize");
             ("graph", other_graph);
             ("deadline_ms", J.Float 1.0);
             ("request_id", J.Str (Printf.sprintf "torture-tight-%d" i));
           ])
    with
    | Ok r -> (
        match (J.member "status" r, Service.Client.error_kind r) with
        | Some (J.Str "ok"), _ -> () (* cache can be that fast; fine *)
        | _, Some ("timeout" | "overloaded") -> ()
        | _ -> fail_with ("tight deadline answered oddly: " ^ J.to_string r))
    | Error m -> fail_with ("tight deadline transport error: " ^ m)
  in
  let prober () =
    match Service.Client.status ~socket_path with
    | Ok _ -> ()
    | Error m -> fail_with ("status probe failed: " ^ m)
  in
  let jobs =
    List.concat
      [
        List.init 6 (fun i -> honest i);
        List.init 5 (fun _ -> partial_frame);
        List.init 5 (fun _ -> garbage);
        List.init 4 (fun _ -> idler);
        List.init 4 (fun i -> tight_deadline i);
        List.init 2 (fun _ -> prober);
      ]
  in
  let threads = List.map (fun j -> Thread.create j ()) jobs in
  List.iter Thread.join threads;
  Alcotest.(check (list string)) "no honest client was failed" []
    (List.of_seq (Queue.to_seq failures));
  (* every honest client saw the same result *)
  let results = List.of_seq (Queue.to_seq good_results) in
  Alcotest.(check int) "all honest requests answered" 6 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check string) "identical results" (List.hd results) r)
    results;
  (* quiet: every handler reaped, no flight left behind *)
  Alcotest.(check bool) "zero leaked handler threads" true
    (await_quiet server);
  Alcotest.(check int) "no flight left in the table" 0
    (Service.Server.flight_count server);
  (* no crash residue in the cache: durable writes leave no temps *)
  let cache_dir = Service.Cache.dir (Service.Server.cache server) in
  let temps = ref [] in
  let rec scan d =
    match Sys.readdir d with
    | entries ->
        Array.iter
          (fun f ->
            let p = Filename.concat d f in
            if Sys.is_directory p then (if f <> "quarantine" then scan p)
            else if
              String.length f >= 16 && String.sub f 0 16 = ".result.json.tmp"
            then temps := p :: !temps)
          entries
    | exception Sys_error _ -> ()
  in
  scan cache_dir;
  Alcotest.(check (list string)) "zero orphaned temp files" [] !temps;
  (* and the daemon still serves, warm *)
  match
    Service.Client.request ~socket_path
      (J.Obj [ ("op", J.Str "optimize"); ("graph", good_graph) ])
  with
  | Ok r ->
      Alcotest.(check bool) "post-chaos request served from cache" true
        (J.member "cached" r = Some (J.Bool true))
  | Error m -> Alcotest.failf "post-chaos request failed: %s" m

(* Graceful drain: a shutdown with drain_s answers, stops accepting and
   lets the daemon wind down cleanly. *)
let test_drain_shutdown =
  with_reset @@ fun () ->
  let server, socket_path = make_socket_server () in
  (* warm one entry so there is real state to drain around *)
  (match
     Service.Client.request ~socket_path
       (J.Obj
          [
            ("op", J.Str "optimize");
            ("graph", Search.Checkpoint.graph_to_json (small_spec ()));
          ])
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "warmup failed: %s" m);
  (match Service.Client.shutdown ~drain_s:2.0 ~socket_path () with
  | Ok r ->
      Alcotest.(check bool) "shutdown acknowledged" true
        (J.member "stopping" r = Some (J.Bool true));
      Alcotest.(check bool) "drain window echoed" true
        (match J.member "drain_s" r with
        | Some (J.Float f) -> f = 2.0
        | Some (J.Int i) -> i = 2
        | _ -> false)
  | Error m -> Alcotest.failf "drain shutdown failed: %s" m);
  Service.Server.wait server;
  Alcotest.(check int) "all handlers joined" 0
    (Service.Server.handler_count server);
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path)

(* The socket liveness probe: a second daemon refuses to hijack a live
   daemon's socket, but adopts a genuinely stale one. *)
let test_socket_liveness =
  with_reset @@ fun () ->
  let server, socket_path = make_socket_server () in
  let rival =
    Service.Server.create
      ~registry:(Obs.Metrics.create ())
      ~device:Gpusim.Device.a100 ~base_config:(small_config ())
      ~socket_path ~cache_dir:(tmpdir "mirage_rival_cache") ()
  in
  (match Service.Server.start rival with
  | () ->
      Service.Server.stop rival;
      Alcotest.fail "second daemon hijacked a live socket"
  | exception Failure m ->
      Alcotest.(check bool) "clear refusal names the socket" true
        (contains ~needle:"already listening" m));
  stop_server server;
  (* the socket file is gone after a clean stop; recreate a stale one *)
  let oc = open_out socket_path in
  close_out oc;
  Sys.remove socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.close fd;
  (* bound but never listened, and the owner is gone: stale *)
  Service.Server.start rival;
  Fun.protect ~finally:(fun () -> stop_server rival) @@ fun () ->
  Alcotest.(check bool) "stale socket adopted" true
    (Service.Client.wait_ready ~socket_path ())

let () =
  Alcotest.run "wire"
    [
      ( "proto",
        [
          Alcotest.test_case "clean close is End_of_file" `Quick
            test_clean_close;
          Alcotest.test_case "truncated header is torn" `Quick
            test_truncated_header;
          Alcotest.test_case "torn payload is torn" `Quick test_torn_payload;
          Alcotest.test_case "disconnect after header is torn" `Quick
            test_disconnect_after_header;
          Alcotest.test_case "oversized length rejected unread" `Quick
            test_oversized_length;
          Alcotest.test_case "garbage JSON rejected" `Quick test_garbage_json;
          Alcotest.test_case "slowloris hits the read deadline" `Quick
            test_slowloris_read_deadline;
          Alcotest.test_case "idle peer hits the idle deadline" `Quick
            test_idle_deadline;
          Alcotest.test_case "undrained peer hits the write deadline" `Quick
            test_write_deadline;
          Alcotest.test_case "wire.* chaos points, both directions" `Quick
            test_wire_fault_points;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "slowloris disconnected, thread reaped" `Slow
            test_server_slowloris;
          Alcotest.test_case "typed overload, retry rides through" `Slow
            test_retry_through_overload;
          Alcotest.test_case "drain shutdown winds down clean" `Slow
            test_drain_shutdown;
          Alcotest.test_case "socket liveness probe" `Slow
            test_socket_liveness;
        ] );
      ( "torture",
        [ Alcotest.test_case "mixed hostile fleet" `Slow test_torture ] );
    ]
