(* Chaos and degradation tests for the resilient search runtime:
   supervised workers (quarantined task crashes), the unified budget
   (deadline in every phase), graceful ILP degradation, checkpoint
   codec/resume, and journal write-failure tolerance. Every test resets
   the fault table and the global degradation registry so the suites
   stay independent. *)

open Mugraph

let reset () =
  Obs.Fault.clear ();
  Obs.Budget.reset_degradations ()

let with_reset f () =
  reset ();
  Fun.protect ~finally:reset f

let prim bld p ins = Graph.Build.prim bld p ins

let div_matmul_spec ~b ~h ~d =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let c = Graph.Build.input bld "C" [| b; 1 |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let y = prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

let small_config () =
  {
    Search.Config.default with
    Search.Config.grid_candidates = [ [| 2 |] ];
    forloop_candidates = [ [| 2 |] ];
    max_block_ops = 4;
    num_workers = 1;
    time_budget_s = 90.0;
  }

(* --- ILP degradation ----------------------------------------------------- *)

(* A chain of exactly-one groups with objectives arranged so the
   default depth-first order keeps improving: enough nodes that a tiny
   node limit cuts the solve short. *)
let hard_instance n =
  let p = Ilp.create () in
  let groups =
    List.init n (fun _ -> (Ilp.new_var p, Ilp.new_var p, Ilp.new_var p))
  in
  List.iter (fun (a, bv, c) -> Ilp.add_exactly_one p [ a; bv; c ]) groups;
  let obj =
    List.concat
      (List.mapi
         (fun i (a, bv, c) ->
           let w = float_of_int (n - i + 1) in
           [ (w, a); (w *. 0.5, bv); (w *. 0.25, c) ])
         groups)
  in
  Ilp.set_objective p obj;
  p

let test_ilp_node_limit () =
  let p = hard_instance 8 in
  let optimal =
    match Ilp.solve p with
    | Ilp.Optimal sol -> sol.Ilp.objective
    | _ -> Alcotest.fail "unlimited solve should be optimal"
  in
  match Ilp.solve ~node_limit:5 p with
  | Ilp.Optimal _ -> Alcotest.fail "5-node solve reported optimal"
  | Ilp.Feasible_incumbent sol ->
      Alcotest.(check bool) "incumbent no better than optimal" true
        (sol.Ilp.objective >= optimal -. 1e-9)
  | Ilp.Node_limit -> ()
  | Ilp.Infeasible -> Alcotest.fail "feasible problem reported infeasible"

let test_ilp_deadline () =
  let p = hard_instance 10 in
  let budget = Obs.Budget.create ~time_budget_s:1e-9 () in
  ignore (Unix.select [] [] [] 0.001);
  (match Ilp.solve ~budget p with
  | Ilp.Optimal _ -> Alcotest.fail "expired budget still reached optimality"
  | Ilp.Feasible_incumbent _ | Ilp.Node_limit -> ()
  | Ilp.Infeasible -> Alcotest.fail "reported infeasible");
  Alcotest.(check bool) "deadline noted" true
    (List.mem "ilp.deadline" (Obs.Budget.reasons budget))

let test_layout_fallback () =
  let b =
    match Workloads.Bench_defs.by_name "rmsnorm" with
    | Some b -> b
    | None -> Alcotest.fail "rmsnorm benchmark missing"
  in
  let g = b.Workloads.Bench_defs.mirage in
  let full = Opt.Layout_opt.optimize g in
  let degraded = Opt.Layout_opt.optimize ~node_limit:1 g in
  Alcotest.(check int) "same number of kernels" (List.length full)
    (List.length degraded);
  List.iter
    (fun (_, (a : Opt.Layout_opt.assignment)) ->
      (match a.Opt.Layout_opt.source with
      | Opt.Layout_opt.Ilp_optimal ->
          Alcotest.fail "1-node solve cannot be optimal"
      | Opt.Layout_opt.Ilp_incumbent | Opt.Layout_opt.Greedy -> ());
      Alcotest.(check bool) "cost finite" true
        (Float.is_finite a.Opt.Layout_opt.cost);
      Alcotest.(check bool) "every node assigned" true
        (a.Opt.Layout_opt.layouts <> []))
    degraded

(* --- fault spec parsing --------------------------------------------------- *)

let test_fault_parse () =
  let ok s = Alcotest.(check bool) s true (Result.is_ok (Obs.Fault.parse s)) in
  let bad s =
    Alcotest.(check bool) s true (Result.is_error (Obs.Fault.parse s))
  in
  ok "enum.block:1.0";
  ok "enum.block:0.5:3";
  ok "enum.block:1.0:2,verify:0.25";
  ok "journal.write:0.0";
  ok "";
  (* empty spec = disarm everything *)
  bad "enum.block";
  bad "enum.block:nan";
  bad "enum.block:2.0";
  bad "enum.block:-0.5";
  bad "enum.block:1.0:0";
  bad "enum.block:1.0:x";
  bad ":1.0"

(* --- supervised workers --------------------------------------------------- *)

let test_enumerator_crash_quarantined =
  with_reset @@ fun () ->
  (match Obs.Fault.configure "enum.block:1.0:1" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let o =
    Search.Generator.run ~config:(small_config ()) ~device:Gpusim.Device.a100
      ~spec ()
  in
  Alcotest.(check bool) "at least one task crashed" true
    (o.Search.Generator.task_failures >= 1);
  Alcotest.(check bool) "crash recorded in degradations" true
    (List.mem "worker.crash" o.Search.Generator.degraded);
  Alcotest.(check bool) "funnel invariant survives the crash" true
    (Search.Stats.funnel_ok o.Search.Generator.stats);
  (* best-so-far still returned: the spec always participates *)
  Alcotest.(check bool) "best exists" true (o.Search.Generator.best <> None)

let test_crash_storm_aborts =
  with_reset @@ fun () ->
  (* every block task crashes; past max_task_failures the search aborts
     but still returns an outcome *)
  (match Obs.Fault.configure "enum.block:1.0" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let cfg = { (small_config ()) with Search.Config.max_task_failures = 2 } in
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  Alcotest.(check bool) "abort recorded" true
    (List.mem "worker.abort" o.Search.Generator.degraded);
  Alcotest.(check bool) "crashes capped near the limit" true
    (o.Search.Generator.task_failures >= 3);
  Alcotest.(check bool) "best exists" true (o.Search.Generator.best <> None)

let test_verifier_crash_quarantined =
  with_reset @@ fun () ->
  (* the verifier probe fires on every call: all candidates are rejected
     via the quarantine, so only the spec survives *)
  (match Obs.Fault.configure "verify:1.0" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let o =
    Search.Generator.run ~config:(small_config ()) ~device:Gpusim.Device.a100
      ~spec ()
  in
  Alcotest.(check bool) "verify crash recorded" true
    (List.mem "verify.crash" o.Search.Generator.degraded);
  match o.Search.Generator.best with
  | Some r -> Alcotest.(check bool) "spec wins" true (Graph.equal r.graph spec)
  | None -> Alcotest.fail "no best"

(* --- deadline ladder ------------------------------------------------------ *)

let test_deadline_returns_best_so_far =
  with_reset @@ fun () ->
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let budget = Obs.Budget.create ~time_budget_s:1e-9 () in
  ignore (Unix.select [] [] [] 0.001);
  let o =
    Search.Generator.run ~config:(small_config ()) ~budget
      ~device:Gpusim.Device.a100 ~spec ()
  in
  Alcotest.(check bool) "deadline recorded" true
    (List.mem "deadline" o.Search.Generator.degraded);
  Alcotest.(check bool) "budget exhausted" true
    o.Search.Generator.budget_exhausted;
  match o.Search.Generator.best with
  | Some r ->
      Alcotest.(check bool) "best-so-far is the spec" true
        (Graph.equal r.graph spec)
  | None -> Alcotest.fail "no best under expired deadline"

(* --- checkpoint codec and resume ------------------------------------------ *)

let test_codec_roundtrip () =
  let graphs =
    div_matmul_spec ~b:4 ~h:8 ~d:16
    ::
    (match Workloads.Bench_defs.by_name "rmsnorm" with
    | Some b ->
        [ b.Workloads.Bench_defs.spec; b.Workloads.Bench_defs.mirage ]
    | None -> [])
  in
  List.iter
    (fun g ->
      let j = Search.Checkpoint.graph_to_json g in
      (* through the actual serializer, not just the value tree *)
      let s = Obs.Jsonw.to_string j in
      match Obs.Jsonw.of_string s with
      | Error m -> Alcotest.fail m
      | Ok j' -> (
          match Search.Checkpoint.graph_of_json j' with
          | Ok g' ->
              Alcotest.(check bool) "roundtrip preserves the graph" true
                (Graph.equal g g')
          | Error m -> Alcotest.fail m))
    graphs

let test_codec_rejects_garbage () =
  (match Search.Checkpoint.graph_of_json (Obs.Jsonw.Str "nope") with
  | Ok _ -> Alcotest.fail "accepted a string"
  | Error _ -> ());
  match
    Search.Checkpoint.graph_of_json
      (Obs.Jsonw.Obj [ ("knodes", Obs.Jsonw.List []) ])
  with
  | Ok _ -> Alcotest.fail "accepted an outputless graph"
  | Error _ -> ()

let best_cost (o : Search.Generator.outcome) =
  match o.Search.Generator.best with
  | Some r -> r.Search.Generator.cost.Gpusim.Cost.total_us
  | None -> Alcotest.fail "no best"

let test_resume_reaches_same_best =
  with_reset @@ fun () ->
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg = small_config () in
  let device = Gpusim.Device.a100 in
  let uninterrupted =
    best_cost (Search.Generator.run ~config:cfg ~device ~spec ())
  in
  let dir = Filename.temp_file "mirage_ckpt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "checkpoint.json" in
  (* phase 1: interrupt early via a tiny node budget *)
  let ck = Search.Checkpoint.create ~path () in
  let tiny = Obs.Budget.create ~node_budget:40 () in
  let o1 =
    Search.Generator.run ~config:cfg ~budget:tiny ~checkpoint:ck ~device ~spec
      ()
  in
  Alcotest.(check bool) "phase 1 was cut short" true
    o1.Search.Generator.budget_exhausted;
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
  (* phase 2: reload and finish with an unconstrained budget *)
  let ck2 =
    match Search.Checkpoint.load path with
    | Ok ck -> ck
    | Error m -> Alcotest.fail m
  in
  let o2 =
    Search.Generator.run ~config:cfg
      ~budget:(Obs.Budget.unlimited ())
      ~checkpoint:ck2 ~device ~spec ()
  in
  Alcotest.(check (float 1e-9)) "resume reaches the uninterrupted best"
    uninterrupted (best_cost o2);
  Alcotest.(check bool) "resumed run saw all candidates" true
    (o2.Search.Generator.generated > 0)

(* Same invariant at mid-subtree granularity: with several domains and a
   spawn cutoff of 1, the interrupt lands while subtree continuations of
   partially-drained tasks are still in flight. Only cleanly-drained
   tasks may advance the resume cursor, so the resumed run must still
   reach the uninterrupted best. *)
let test_resume_mid_subtree =
  with_reset @@ fun () ->
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let cfg =
    {
      (small_config ()) with
      Search.Config.num_workers = 4;
      steal_depth_cutoff = 1;
    }
  in
  let device = Gpusim.Device.a100 in
  let uninterrupted =
    best_cost (Search.Generator.run ~config:cfg ~device ~spec ())
  in
  let dir = Filename.temp_file "mirage_ckpt_sub" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "checkpoint.json" in
  let ck = Search.Checkpoint.create ~path () in
  let tiny = Obs.Budget.create ~node_budget:40 () in
  let o1 =
    Search.Generator.run ~config:cfg ~budget:tiny ~checkpoint:ck ~device ~spec
      ()
  in
  Alcotest.(check bool) "phase 1 was cut short" true
    o1.Search.Generator.budget_exhausted;
  let ck2 =
    match Search.Checkpoint.load path with
    | Ok ck -> ck
    | Error m -> Alcotest.fail m
  in
  let o2 =
    Search.Generator.run ~config:cfg
      ~budget:(Obs.Budget.unlimited ())
      ~checkpoint:ck2 ~device ~spec ()
  in
  Alcotest.(check (float 1e-9)) "mid-subtree resume reaches the same best"
    uninterrupted (best_cost o2)

let test_checkpoint_load_errors () =
  (match Search.Checkpoint.load "/nonexistent/checkpoint.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ());
  let f = Filename.temp_file "mirage_ckpt" ".json" in
  let oc = open_out f in
  output_string oc "{\"schema\":\"something.else\"}";
  close_out oc;
  (match Search.Checkpoint.load f with
  | Ok _ -> Alcotest.fail "loaded a foreign schema"
  | Error _ -> ());
  Sys.remove f

let test_fingerprint_ignores_budget () =
  let cfg = small_config () in
  let fp c = Search.Checkpoint.config_fingerprint (Search.Config.to_json c) in
  Alcotest.(check string) "bigger budget, same search" (fp cfg)
    (fp { cfg with Search.Config.time_budget_s = 9999.0; num_workers = 8 });
  Alcotest.(check bool) "different search differs" true
    (fp cfg <> fp { cfg with Search.Config.max_block_ops = 9 })

(* --- journal write faults ------------------------------------------------- *)

let test_journal_write_fault =
  with_reset @@ fun () ->
  let path = Filename.temp_file "mirage_journal" ".jsonl" in
  (match Obs.Fault.configure "journal.write:1.0:1" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let j = Obs.Journal.enable ~capacity:4 path in
  for i = 0 to 63 do
    Obs.Journal.emit j ~typ:"test.event" [ ("i", Obs.Jsonw.Int i) ]
  done;
  Obs.Journal.disable ();
  Alcotest.(check bool) "some events dropped" true (Obs.Journal.dropped j > 0);
  Alcotest.(check bool) "drop degraded the run" true
    (List.mem "journal.write" (Obs.Budget.degradations ()));
  (match Obs.Journal.read_file path with
  | Ok events ->
      Alcotest.(check bool) "surviving lines all parse, none torn" true
        (List.length events > 0)
  | Error m -> Alcotest.fail ("journal unreadable after fault: " ^ m));
  Sys.remove path

let () =
  Alcotest.run "resilience"
    [
      ( "ilp",
        [
          Alcotest.test_case "node limit yields incumbent" `Quick
            test_ilp_node_limit;
          Alcotest.test_case "deadline cuts the solve" `Quick test_ilp_deadline;
          Alcotest.test_case "layout falls back, stays valid" `Quick
            test_layout_fallback;
        ] );
      ( "fault",
        [
          Alcotest.test_case "spec parsing" `Quick test_fault_parse;
          Alcotest.test_case "enumerator crash quarantined" `Quick
            test_enumerator_crash_quarantined;
          Alcotest.test_case "crash storm aborts past limit" `Quick
            test_crash_storm_aborts;
          Alcotest.test_case "verifier crash quarantined" `Quick
            test_verifier_crash_quarantined;
          Alcotest.test_case "journal write fault tolerated" `Quick
            test_journal_write_fault;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadline returns best-so-far" `Quick
            test_deadline_returns_best_so_far;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec rejects garbage" `Quick
            test_codec_rejects_garbage;
          Alcotest.test_case "resume reaches same best" `Quick
            test_resume_reaches_same_best;
          Alcotest.test_case "resume mid-subtree reaches same best" `Quick
            test_resume_mid_subtree;
          Alcotest.test_case "load errors" `Quick test_checkpoint_load_errors;
          Alcotest.test_case "fingerprint ignores budget fields" `Quick
            test_fingerprint_ignores_budget;
        ] );
    ]
