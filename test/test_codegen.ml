(* Code-generator tests.

   Golden snapshots pin the emitted text for small fixed muGraphs so any
   change to the lowering or rendering shows up as a reviewable diff, not
   a silent drift. The fixtures cover the three structures the emitter
   must handle: a custom block kernel with a for-loop and accumulators
   (the rmsnorm fused plan), the Concat_matmul operator, and a
   multi-kernel graph with an intermediate tensor crossing a kernel
   (partition) boundary. Both backends are pinned: the pseudo-CUDA
   printer and the runnable C renderer consume the same {!Impir.Ir}
   program, so the goldens also document that shared lowering.

   The property suite checks the lowering is *total* over random
   well-typed muGraphs (it never raises, and the result passes
   {!Impir.Ir.check_program}) and that every layout chosen by
   {!Opt.Layout_opt} is honored by the emitted addressing: the index
   function {!Impir.Ir.index} of each shared buffer evaluates, at every
   coordinate, to the dot product with that layout's strides.

   The differential suite is the end-to-end gate: each Figure 7
   workload's winning muGraph (the reduced Mirage plan, plus one winner
   produced by an actual tiny-budget search) is lowered, compiled with
   the system [cc] (ASan when available), executed on random inputs
   through the subprocess harness, and compared against the float
   interpreter to 1e-4. Failures leave the C file and inputs in a
   report directory. When no [cc] is present the suite skips loudly. *)

open Mugraph

let golden_check ~name ~expected actual =
  let norm s = String.trim s in
  if norm actual <> norm expected then begin
    Printf.printf "=== ACTUAL %s ===\n%s=== END %s ===\n" name actual name;
    Alcotest.failf "%s: emitted text drifted from the golden (actual dumped \
                    above; update the golden if the change is intended)"
      name
  end

let rmsnorm_plan () =
  match Workloads.Bench_defs.by_name "rmsnorm" with
  | Some b -> snd (b.Workloads.Bench_defs.reduced ())
  | None -> Alcotest.fail "rmsnorm benchmark missing"

(* Concat_matmul across a kernel boundary: the concat-matmul's result is
   an intermediate global tensor consumed by a second kernel-level op. *)
let concat_boundary_graph () =
  let b = Graph.Build.create () in
  let w = Graph.Build.input b "W" [| 4; 2 |] in
  let x = Graph.Build.input b "X" [| 4; 3 |] in
  let y = Graph.Build.input b "Y" [| 2; 5 |] in
  let z = Graph.Build.input b "Z" [| 3; 5 |] in
  let cm = Graph.Build.prim b Op.Concat_matmul [ w; x; y; z ] in
  let e = Graph.Build.prim b (Op.Unary Op.Exp) [ cm ] in
  Graph.Build.finish b ~outputs:[ e ]

let golden_rmsnorm_cuda = {golden|
// Mirage-generated program: rmsnorm
#include "mirage_runtime.cuh"

// grid(2) forloop(2), 216 B shared memory (planner: first-fit)
__global__ void rmsnorm_kernel_3(const half *a0, const half *a1, const half *a2, half *o0) {
  extern __shared__ half smem[]; // 216 bytes planned
  auto s0 /*[4][4] row-major*/ = smem + 32;
  auto s1 /*[1][4] row-major*/ = smem + 48;
  auto s2 /*[4][8] col-major*/ = smem + 0;
  auto s3 /*[4][4] row-major*/ = smem + 64;
  auto s4 /*[4][8] row-major*/ = smem + 32;
  auto s5 /*[4][8] row-major*/ = smem + 0;
  auto s6 /*[4][4] row-major*/ = smem + 80;
  auto s7 /*[4][1] row-major*/ = smem + 96;
  auto s8 /*[4][1] row-major*/ = smem + 100;
  auto s9 /*[4][1] row-major*/ = smem + 104;
  auto s10 /*[4][8] row-major*/ = smem + 64;
  const int g0 = blockIdx.x; // 2 thread blocks on axis 0
  // s5 = 0
  for (int i0 = 0; i0 < 4; ++i0) {
    for (int i1 = 0; i1 < 8; ++i1) {
      s5[((i0 * 8) + i1)] = 0.0f;
    }
  }
  // s8 = 0
  for (int i2 = 0; i2 < 4; ++i2) {
    s8[i2] = 0.0f;
  }
  for (int i = 0; i < 2; ++i) { // data-stream loop
    // copy_tile(s0, a0, i{phi}, f{1})
    for (int i8 = 0; i8 < 4; ++i8) {
      for (int i9 = 0; i9 < 4; ++i9) {
        s0[((i8 * 4) + i9)] = a0[((i8 * 8) + (i9 + (i * 4)))];
      }
    }
    // copy_tile(s1, a1, i{phi}, f{1})
    for (int i10 = 0; i10 < 4; ++i10) {
      s1[i10] = a1[(i10 + (i * 4))];
    }
    // copy_tile(s2, a2, i{1}, f{0})
    for (int i11 = 0; i11 < 4; ++i11) {
      for (int i12 = 0; i12 < 8; ++i12) {
        s2[(i11 + (i12 * 4))] = a2[(((i11 + (i * 4)) * 16) + (i12 + (g0 * 8)))];
      }
    }
    __syncthreads();
    // ew_mul(s3, s0, s1)
    for (int i13 = 0; i13 < 4; ++i13) {
      for (int i14 = 0; i14 < 4; ++i14) {
        s3[((i13 * 4) + i14)] = (s0[((i13 * 4) + i14)] * s1[i14]);
      }
    }
    // ew_sqr(s6, s0)
    for (int i15 = 0; i15 < 4; ++i15) {
      for (int i16 = 0; i16 < 4; ++i16) {
        s6[((i15 * 4) + i16)] = sqr(s0[((i15 * 4) + i16)]);
      }
    }
    __syncthreads();
    // mma_tile(s4, s3, s2)
    for (int i17 = 0; i17 < 4; ++i17) {
      for (int i18 = 0; i18 < 8; ++i18) {
        float acc19 = 0.0f;
        for (int r20 = 0; r20 < 4; ++r20) {
          acc19 = (acc19 + (s3[((i17 * 4) + r20)] * s2[(r20 + (i18 * 4))]));
        }
        s4[((i17 * 8) + i18)] = acc19;
      }
    }
    // reduce_sum<1, 4>(s7, s6)
    for (int i21 = 0; i21 < 4; ++i21) {
      float acc22 = 0.0f;
      for (int r23 = 0; r23 < 4; ++r23) {
        acc22 = (acc22 + s6[((i21 * 4) + r23)]);
      }
      s7[i21] = acc22;
    }
    __syncthreads();
    // accumulate(s5, s4, f{phi})
    for (int i24 = 0; i24 < 4; ++i24) {
      for (int i25 = 0; i25 < 8; ++i25) {
        s5[((i24 * 8) + i25)] += s4[((i24 * 8) + i25)];
      }
    }
    // accumulate(s8, s7, f{phi})
    for (int i26 = 0; i26 < 4; ++i26) {
      s8[i26] += s7[i26];
    }
  }
  __syncthreads();
  // ew_sqrt(s9, s8)
  for (int i5 = 0; i5 < 4; ++i5) {
    s9[i5] = sqrtf(s8[i5]);
  }
  // ew_div(s10, s5, s9)
  for (int i6 = 0; i6 < 4; ++i6) {
    for (int i7 = 0; i7 < 8; ++i7) {
      s10[((i6 * 8) + i7)] = (s5[((i6 * 8) + i7)] / s9[i6]);
    }
  }
  // store_tile(o0, s10, o{1})
  for (int i3 = 0; i3 < 4; ++i3) {
    for (int i4 = 0; i4 < 8; ++i4) {
      o0[((i3 * 16) + (i4 + (g0 * 8)))] = s10[((i3 * 8) + i4)];
    }
  }
}

void rmsnorm_launch(Tensors &t) {
  half *in_0 = t.in(0); // input X [4][8]
  half *in_1 = t.in(1); // input G [1][8]
  half *in_2 = t.in(2); // input W [8][16]
  half *t3_0 = t.alloc(64); // [4][16]
  rmsnorm_kernel_3<<<dim3(2), dim3(128), 216>>>(in_0, in_1, in_2, t3_0);
  t.mark_output(0, t3_0); // [4][16]
}
|golden}

let golden_concat_cuda = {golden|
// Mirage-generated program: concat
#include "mirage_runtime.cuh"

void concat_launch(Tensors &t) {
  half *in_0 = t.in(0); // input W [4][2]
  half *in_1 = t.in(1); // input X [4][3]
  half *in_2 = t.in(2); // input Y [2][5]
  half *in_3 = t.in(3); // input Z [3][5]
  half *t4_0 = t.alloc(20); // [4][5]
  half *t5_0 = t.alloc(20); // [4][5]
  library_call_concatmatmul(in_0, in_1, in_2, in_3, t4_0); // ConcatMatmul
  library_call_ewexp(t4_0, t5_0); // EwExp
  t.mark_output(0, t5_0); // [4][5]
}
|golden}

(* The runnable C rendering of the same concat program: in C there are
   no library calls, so the Concat_matmul reduce loops and the harness
   metadata/entry points are all pinned here. *)
let golden_concat_c = {golden|
/* Mirage runnable C backend: concat */
#include <math.h>
#include <string.h>

static double mir_sqr(double x) { return x * x; }
static double mir_silu(double x) { return x / (1.0 + exp(-x)); }
static double mir_relu(double x) { return x > 0.0 ? x : 0.0; }

/* inter-kernel temporaries */
static double t4_0[20]; /* [4][5] */
static double t5_0[20]; /* [4][5] */

static void concat_op_4(const double *a0, const double *a1, const double *a2, const double *a3, double *o0) {
  /* o0 = ConcatMatmul(a0, a1, a2, a3) */
  for (int i0 = 0; i0 < 4; ++i0) {
    for (int i1 = 0; i1 < 5; ++i1) {
      double acc2 = 0.0;
      for (int r4 = 0; r4 < 2; ++r4) {
        acc2 = (acc2 + (a0[((i0 * 2) + r4)] * a2[((r4 * 5) + i1)]));
      }
      for (int r3 = 0; r3 < 3; ++r3) {
        acc2 = (acc2 + (a1[((i0 * 3) + r3)] * a3[((r3 * 5) + i1)]));
      }
      o0[((i0 * 5) + i1)] = acc2;
    }
  }
}

static void concat_op_5(const double *a0, double *o0) {
  /* o0 = EwExp(a0) */
  for (int i0 = 0; i0 < 4; ++i0) {
    for (int i1 = 0; i1 < 5; ++i1) {
      o0[((i0 * 5) + i1)] = exp(a0[((i0 * 5) + i1)]);
    }
  }
}

int mirage_num_inputs(void) { return 4; }

long mirage_input_size(int i) {
  switch (i) {
  case 0: return 8;
  case 1: return 12;
  case 2: return 10;
  case 3: return 15;
  default: return -1;
  }
}

int mirage_num_outputs(void) { return 1; }

long mirage_output_size(int i) {
  switch (i) {
  case 0: return 20;
  default: return -1;
  }
}

void mirage_entry(const double **in, double **out) {
  concat_op_4(in[0], in[1], in[2], in[3], t4_0);
  concat_op_5(t4_0, t5_0);
  memcpy(out[0], t5_0, 20 * sizeof(double));
}
|golden}

let test_golden_rmsnorm () =
  golden_check ~name:"rmsnorm.cu" ~expected:golden_rmsnorm_cuda
    (Codegen.Cuda_emit.emit_kernel ~name:"rmsnorm" (rmsnorm_plan ()))

let test_golden_concat () =
  golden_check ~name:"concat.cu" ~expected:golden_concat_cuda
    (Codegen.Cuda_emit.emit_kernel ~name:"concat" (concat_boundary_graph ()))

let test_golden_concat_c () =
  golden_check ~name:"concat.c" ~expected:golden_concat_c
    (Codegen.C_emit.emit
       (Impir.Lower.lower ~name:"concat" (concat_boundary_graph ())))

(* The rmsnorm C rendering is long; instead of a second page-sized
   golden, pin the structural landmarks that distinguish the C backend:
   serial grid loops, barrier comments, layout-annotated static shared
   buffers, and the harness entry points. *)
let test_c_structure () =
  let c =
    Codegen.C_emit.emit (Impir.Lower.lower ~name:"rmsnorm" (rmsnorm_plan ()))
  in
  let has needle = Astring_contains.contains c needle in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (has needle))
    [
      "/* grid axis 0 */";
      "/* data-stream loop */";
      "/* barrier */";
      "col-major";
      "static double s2[32];";
      "int mirage_num_inputs(void) { return 3; }";
      "long mirage_input_size(int i)";
      "void mirage_entry(const double **in, double **out)";
    ]

(* --- properties -------------------------------------------------------- *)

(* Lowering is total over random well-typed muGraphs, and the result is
   statically well-formed (scoping, call arity, loop binding). *)
let prop_lowering_total =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"lowering total + well-formed"
       ~print:Pretty.kernel_graph_to_string
       (Graph_gen.gen_graph ())
       (fun g ->
         let p = Impir.Lower.lower ~name:"prop" g in
         (match Impir.Ir.check_program p with
         | Ok () -> ()
         | Error e -> QCheck2.Test.fail_reportf "ill-formed program: %s" e);
         String.length (Codegen.C_emit.emit p) > 0
         && String.length (Codegen.Cuda_emit.emit_program p) > 0))

(* Deterministic block-level counterpart: every Figure 7 winning plan
   (which graph_gen cannot produce — it generates kernel-level graphs)
   lowers to a well-formed program in both backends. *)
let test_fig7_lowering () =
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let name = String.lowercase_ascii b.Workloads.Bench_defs.name in
      let _, plan = b.Workloads.Bench_defs.reduced () in
      let p = Impir.Lower.lower ~name plan in
      (match Impir.Ir.check_program p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: ill-formed program: %s" name e);
      Alcotest.(check bool)
        (name ^ " C emits") true
        (String.length (Codegen.C_emit.emit p) > 0);
      Alcotest.(check bool)
        (name ^ " CUDA emits") true
        (String.length (Codegen.Cuda_emit.emit_program p) > 0))
    (Workloads.Bench_defs.all ())

let iter_coords shape f =
  let rank = Array.length shape in
  let c = Array.make rank 0 in
  let rec go d = if d = rank then f c
    else
      for v = 0 to shape.(d) - 1 do
        c.(d) <- v;
        go (d + 1)
      done
  in
  go 0

(* Round-trip: every index-function layout chosen by Layout_opt is
   honored by the emitted addressing. We lower with the optimizer's
   assignment pinned explicitly, then check (a) each shared buffer
   carries the assigned layout and (b) the index expression the
   backends render evaluates, at every coordinate, to the dot product
   with that layout's strides — i.e. the stride math in the generated
   code is exactly the layout's index function. *)
let test_layout_roundtrip () =
  let checked = ref 0 in
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let name = String.lowercase_ascii b.Workloads.Bench_defs.name in
      let _, plan = b.Workloads.Bench_defs.reduced () in
      let layouts = Opt.Layout_opt.optimize plan in
      let p = Impir.Lower.lower ~layouts ~name plan in
      List.iter
        (fun (ki, (asn : Opt.Layout_opt.assignment)) ->
          let kname = Printf.sprintf "%s_kernel_%d" name ki in
          match
            List.find_opt
              (fun (k : Impir.Ir.kernel) -> k.Impir.Ir.kname = kname)
              p.Impir.Ir.kernels
          with
          | None -> Alcotest.failf "%s: no kernel for layout assignment" kname
          | Some k ->
              List.iter
                (fun (bi, layout) ->
                  let bname = Printf.sprintf "s%d" bi in
                  match
                    List.find_opt
                      (fun ((bf : Impir.Ir.buf), _) ->
                        bf.Impir.Ir.bname = bname)
                      k.Impir.Ir.shared
                  with
                  | None -> () (* outsavers have no shared buffer *)
                  | Some (bf, _) ->
                      let shape = bf.Impir.Ir.shape in
                      if Tensor.Layout.is_valid layout shape then begin
                        incr checked;
                        Alcotest.(check string)
                          (Printf.sprintf "%s.%s layout" kname bname)
                          (Tensor.Layout.to_string layout)
                          (Tensor.Layout.to_string bf.Impir.Ir.layout);
                        let st = Tensor.Layout.strides layout shape in
                        let rank = Array.length shape in
                        let vars =
                          Array.init rank (Printf.sprintf "x%d")
                        in
                        let ix =
                          Impir.Ir.index bf (Array.map Impir.Ir.ivar vars)
                        in
                        iter_coords shape (fun c ->
                            let env v =
                              let rec find d =
                                if d = rank then
                                  Alcotest.failf "%s.%s: free var %s" kname
                                    bname v
                                else if vars.(d) = v then c.(d)
                                else find (d + 1)
                              in
                              find 0
                            in
                            let got = Impir.Ir.eval_iexp env ix in
                            let want = ref 0 in
                            Array.iteri
                              (fun d v -> want := !want + (v * st.(d)))
                              c;
                            if got <> !want then
                              Alcotest.failf
                                "%s.%s: index %s = %d at %s, strides say %d"
                                kname bname
                                (Impir.Ir.iexp_to_string ix)
                                got
                                (String.concat ","
                                   (Array.to_list
                                      (Array.map string_of_int c)))
                                !want)
                      end)
                asn.Opt.Layout_opt.layouts)
        layouts)
    (Workloads.Bench_defs.all ());
  Alcotest.(check bool)
    (Printf.sprintf "checked %d shared buffers" !checked)
    true (!checked > 10)

(* --- differential: generated code vs the interpreter ------------------- *)

let report_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "mirage_codegen_reports"

let skip_no_cc () =
  Printf.printf
    "\n*** SKIPPING differential codegen test: no working C compiler (cc) \
     found in PATH — the runnable backend cannot be exercised here. ***\n%!"

let run_differential ~name g =
  match Codegen.Differential.check ~report_dir ~name g with
  | Error e -> Alcotest.failf "%s: differential harness failed: %s" name e
  | Ok o ->
      Printf.printf "%s\n%!" (Codegen.Differential.pp_outcome o);
      if not o.Codegen.Differential.ok then
        Alcotest.failf
          "%s: generated code diverged from the interpreter: max rel err %g \
           > %g (forensics in %s)"
          name o.Codegen.Differential.max_rel_err o.Codegen.Differential.tol
          (Option.value ~default:"?" o.Codegen.Differential.report)

(* One test per Figure 7 workload: the winning (reduced Mirage) plan is
   lowered, compiled and executed, and must match the interpreter on 8
   random input sets to 1e-4. *)
let test_differential name () =
  if not (Codegen.C_exec.cc_available ()) then skip_no_cc ()
  else
    match Workloads.Bench_defs.by_name name with
    | None -> Alcotest.failf "unknown benchmark %s" name
    | Some b ->
        let _, plan = b.Workloads.Bench_defs.reduced () in
        run_differential ~name:(String.lowercase_ascii name) plan

(* End to end: an actual (tiny-budget) search produces the winner, and
   the winner's generated code must agree with the interpreter. *)
let test_search_winner_differential () =
  if not (Codegen.C_exec.cc_available ()) then skip_no_cc ()
  else begin
    let bld = Graph.Build.create () in
    let x = Graph.Build.input bld "X" [| 4; 8 |] in
    let c = Graph.Build.input bld "C" [| 4; 1 |] in
    let w = Graph.Build.input bld "W" [| 8; 16 |] in
    let y = Graph.Build.prim bld (Op.Binary Op.Div) [ x; c ] in
    let z = Graph.Build.prim bld Op.Matmul [ y; w ] in
    let spec = Graph.Build.finish bld ~outputs:[ z ] in
    let config =
      Search.Config.for_spec
        ~base:
          {
            Search.Config.default with
            Search.Config.grid_candidates = [ [| 2 |] ];
            forloop_candidates = [ [| 2 |] ];
            max_block_ops = 4;
            num_workers = 1;
            time_budget_s = 60.0;
          }
        spec
    in
    let o = Search.Generator.run ~config ~device:Gpusim.Device.a100 ~spec () in
    let winner =
      match o.Search.Generator.best with
      | Some r -> r.Search.Generator.graph
      | None -> Alcotest.fail "tiny search found no candidate"
    in
    run_differential ~name:"search_winner" winner
  end

let () =
  Alcotest.run "codegen"
    [
      ( "golden",
        [
          Alcotest.test_case "rmsnorm pseudo-CUDA" `Quick test_golden_rmsnorm;
          Alcotest.test_case "concat/partition-boundary pseudo-CUDA" `Quick
            test_golden_concat;
          Alcotest.test_case "concat/partition-boundary C" `Quick
            test_golden_concat_c;
          Alcotest.test_case "rmsnorm C structure" `Quick test_c_structure;
        ] );
      ( "properties",
        [
          prop_lowering_total;
          Alcotest.test_case "fig7 plans lower well-formed" `Quick
            test_fig7_lowering;
          Alcotest.test_case "layouts honored by emitted addressing" `Quick
            test_layout_roundtrip;
        ] );
      ( "differential",
        Alcotest.test_case "search winner end-to-end" `Quick
          test_search_winner_differential
        :: List.map
             (fun n ->
               Alcotest.test_case (n ^ " vs interpreter") `Quick
                 (test_differential n))
             [ "GQA"; "QKNorm"; "RMSNorm"; "LoRA"; "GatedMLP"; "nTrans" ] );
    ]
