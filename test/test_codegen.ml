(* Code-generator tests.

   Golden snapshots pin the emitted text for small fixed muGraphs so any
   change to the lowering or rendering shows up as a reviewable diff, not
   a silent drift. The fixtures cover the three structures the emitter
   must handle: a custom block kernel with a for-loop and accumulators
   (the rmsnorm fused plan), the Concat_matmul operator, and a
   multi-kernel graph with an intermediate tensor crossing a kernel
   (partition) boundary. *)

open Mugraph

let golden_check ~name ~expected actual =
  let norm s = String.trim s in
  if norm actual <> norm expected then begin
    Printf.printf "=== ACTUAL %s ===\n%s=== END %s ===\n" name actual name;
    Alcotest.failf "%s: emitted text drifted from the golden (actual dumped \
                    above; update the golden if the change is intended)"
      name
  end

let rmsnorm_plan () =
  match Workloads.Bench_defs.by_name "rmsnorm" with
  | Some b -> snd (b.Workloads.Bench_defs.reduced ())
  | None -> Alcotest.fail "rmsnorm benchmark missing"

(* Concat_matmul across a kernel boundary: the concat-matmul's result is
   an intermediate global tensor consumed by a second kernel-level op. *)
let concat_boundary_graph () =
  let b = Graph.Build.create () in
  let w = Graph.Build.input b "W" [| 4; 2 |] in
  let x = Graph.Build.input b "X" [| 4; 3 |] in
  let y = Graph.Build.input b "Y" [| 2; 5 |] in
  let z = Graph.Build.input b "Z" [| 3; 5 |] in
  let cm = Graph.Build.prim b Op.Concat_matmul [ w; x; y; z ] in
  let e = Graph.Build.prim b (Op.Unary Op.Exp) [ cm ] in
  Graph.Build.finish b ~outputs:[ e ]

let golden_rmsnorm_cuda = {golden|
// Mirage-generated program: rmsnorm
#include "mirage_runtime.cuh"

// grid(2) forloop(2), 216 B shared memory (planner: first-fit)
__global__ void rmsnorm_kernel_3(half **dmem_in, half **dmem_out) {
  extern __shared__ half smem[]; // 216 bytes planned
  auto s0 /*[4][4]*/ = smem + 32;
  auto s1 /*[1][4]*/ = smem + 48;
  auto s2 /*[4][8]*/ = smem + 0;
  auto s3 /*[4][4]*/ = smem + 64;
  auto s4 /*[4][8]*/ = smem + 32;
  auto s5 /*[4][8]*/ = smem + 0;
  auto s6 /*[4][4]*/ = smem + 80;
  auto s7 /*[4][1]*/ = smem + 96;
  auto s8 /*[4][1]*/ = smem + 100;
  auto s9 /*[4][1]*/ = smem + 104;
  auto s10 /*[4][8]*/ = smem + 64;
  zero_fill(s5);
  zero_fill(s8);
  for (int i = 0; i < 2; ++i) {
    copy_tile(s0, dmem_in[0], /*imap*/ "i{phi}", /*fmap*/ "f{1}", i);
    copy_tile(s1, dmem_in[1], /*imap*/ "i{phi}", /*fmap*/ "f{1}", i);
    copy_tile(s2, dmem_in[2], /*imap*/ "i{1}", /*fmap*/ "f{0}", i);
    __syncthreads();
    ew_mul(s3, s0, s1);
    ew_sqr(s6, s0);
    __syncthreads();
    mma_tile(s4, s3, s2);
    reduce_sum<1, 4>(s7, s6);
    __syncthreads();
    accumulate(s5, s4, /*fmap*/ "f{phi}", i);
    accumulate(s8, s7, /*fmap*/ "f{phi}", i);
  }
  __syncthreads();
  ew_sqrt(s9, s8);
  ew_div(s10, s5, s9);
  store_tile(dmem_out[0], s10, /*omap*/ "o{1}");
}

void rmsnorm_launch(Tensors &t) {
  // t[0] = input X [4][8]
  // t[1] = input G [1][8]
  // t[2] = input W [8][16]
  rmsnorm_kernel_3<<<dim3(2), dim3(128), 216>>>(t.in(3), t.out(3));
}
|golden}

let golden_concat_cuda = {golden|
// Mirage-generated program: concat
#include "mirage_runtime.cuh"

void concat_launch(Tensors &t) {
  // t[0] = input W [4][2]
  // t[1] = input X [4][3]
  // t[2] = input Y [2][5]
  // t[3] = input Z [3][5]
  library_call_concatmatmul(t, 4); // ConcatMatmul
  library_call_ewexp(t, 5); // EwExp
}
|golden}

let test_golden_rmsnorm () =
  golden_check ~name:"rmsnorm.cu" ~expected:golden_rmsnorm_cuda
    (Codegen.Cuda_emit.emit_kernel ~name:"rmsnorm" (rmsnorm_plan ()))

let test_golden_concat () =
  golden_check ~name:"concat.cu" ~expected:golden_concat_cuda
    (Codegen.Cuda_emit.emit_kernel ~name:"concat" (concat_boundary_graph ()))

let () =
  Alcotest.run "codegen"
    [
      ( "golden",
        [
          Alcotest.test_case "rmsnorm pseudo-CUDA" `Quick test_golden_rmsnorm;
          Alcotest.test_case "concat/partition-boundary pseudo-CUDA" `Quick
            test_golden_concat;
        ] );
    ]
