(* Tests for the observability layer: the metrics registry under domain
   concurrency (increments must be exact, not approximate), the span
   tracer's nesting and Chrome JSON output, the JSON writer/parser pair,
   and the search-funnel invariant on a real (small) search. *)

open Mugraph

(* --- metrics: exactness under domains ------------------------------------ *)

let test_counter_domains () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "test.bumps" in
  let domains = 4 and per = 50_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.Metrics.bump c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (domains * per)
    (Obs.Metrics.value c)

let test_histogram_domains () =
  let reg = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram reg
      ~buckets:(Obs.Metrics.linear_buckets ~lo:0.0 ~step:1.0 ~n:4)
      "test.depth"
  in
  let domains = 4 and per = 10_000 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              (* a spread over the buckets including the overflow one *)
              Obs.Metrics.observe h (float_of_int ((i + d) mod 6))
            done))
  in
  List.iter Domain.join ds;
  let snap = Obs.Metrics.snapshot reg in
  let _, hs = List.hd snap.Obs.Metrics.hists in
  Alcotest.(check int) "total count" (domains * per) hs.Obs.Metrics.count;
  Alcotest.(check int) "buckets sum to count" hs.Obs.Metrics.count
    (Array.fold_left ( + ) 0 hs.Obs.Metrics.counts);
  Alcotest.(check int) "overflow bucket is last"
    (Array.length hs.Obs.Metrics.bounds + 1)
    (Array.length hs.Obs.Metrics.counts)

let test_metrics_merge () =
  let mk n =
    let reg = Obs.Metrics.create () in
    let c = Obs.Metrics.counter reg "m.count" in
    let h =
      Obs.Metrics.histogram reg
        ~buckets:(Obs.Metrics.linear_buckets ~lo:0.0 ~step:1.0 ~n:3)
        "m.hist"
    in
    for _ = 1 to n do
      Obs.Metrics.bump c
    done;
    for i = 1 to n do
      Obs.Metrics.observe h (float_of_int (i mod 3))
    done;
    Obs.Metrics.snapshot reg
  in
  let merged = Obs.Metrics.merge [ mk 10; mk 32 ] in
  Alcotest.(check int) "counters summed by name" 42
    (List.assoc "m.count" merged.Obs.Metrics.counters);
  let hs = List.assoc "m.hist" merged.Obs.Metrics.hists in
  Alcotest.(check int) "hist counts summed" 42 hs.Obs.Metrics.count

(* --- json writer/parser --------------------------------------------------- *)

let rec json_equal a b =
  match a, b with
  | Obs.Jsonw.Null, Obs.Jsonw.Null -> true
  | Obs.Jsonw.Bool x, Obs.Jsonw.Bool y -> x = y
  | Obs.Jsonw.Int x, Obs.Jsonw.Int y -> x = y
  | Obs.Jsonw.Float x, Obs.Jsonw.Float y -> Float.equal x y
  | Obs.Jsonw.Int x, Obs.Jsonw.Float y | Obs.Jsonw.Float y, Obs.Jsonw.Int x ->
      Float.equal (float_of_int x) y
  | Obs.Jsonw.Str x, Obs.Jsonw.Str y -> String.equal x y
  | Obs.Jsonw.List x, Obs.Jsonw.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Obs.Jsonw.Obj x, Obs.Jsonw.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           x y
  | _ -> false

let test_json_roundtrip () =
  let v =
    Obs.Jsonw.(
      Obj
        [
          ("name", Str "a \"quoted\"\nstring with \t and \\ and \x01");
          ("unicode", Str "µGraph ≤ 7");
          ("n", Int 42);
          ("x", Float 2.5);
          ("flag", Bool true);
          ("nothing", Null);
          ("nested", List [ Int 1; List [ Str "two" ]; Obj [ ("k", Int 3) ] ]);
        ])
  in
  match Obs.Jsonw.of_string (Obs.Jsonw.to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "roundtrip preserves value" true (json_equal v v')

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "\"unterminated"; "{\"a\":1} trailing"; "nul" ] in
  List.iter
    (fun s ->
      match Obs.Jsonw.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    bad;
  match Obs.Jsonw.of_string "  {\"a\": [1, 2.5, \"\\u00b5\"]}  " with
  | Error e -> Alcotest.failf "rejected valid JSON: %s" e
  | Ok j -> (
      match Obs.Jsonw.member "a" j with
      | Some (Obs.Jsonw.List [ _; _; Obs.Jsonw.Str mu ]) ->
          Alcotest.(check string) "\\u escape decoded" "\xc2\xb5" mu
      | _ -> Alcotest.fail "wrong parse shape")

(* qcheck: arbitrary documents survive the writer/parser pair, both the
   compact and the pretty renderings. Floats print with %.12g, so the
   reparsed number is compared with a relative tolerance (and a float
   with an integral value legitimately comes back as an Int). *)

let gen_json : Obs.Jsonw.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let scalar =
           oneof
             [
               return Obs.Jsonw.Null;
               map (fun b -> Obs.Jsonw.Bool b) bool;
               map (fun i -> Obs.Jsonw.Int i) int;
               map
                 (fun f -> Obs.Jsonw.Float f)
                 (float_range (-1.0e9) 1.0e9);
               map (fun s -> Obs.Jsonw.Str s) string_printable;
             ]
         in
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map
                   (fun l -> Obs.Jsonw.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Obs.Jsonw.Obj kvs)
                   (list_size (int_bound 4)
                      (pair string_printable (self (n / 2)))) );
             ])

let float_close x y =
  Float.abs (x -. y) <= 1.0e-9 *. Float.max 1.0 (Float.abs x)

let rec json_close a b =
  match a, b with
  | Obs.Jsonw.Float x, Obs.Jsonw.Float y -> float_close x y
  | Obs.Jsonw.Float x, Obs.Jsonw.Int y | Obs.Jsonw.Int y, Obs.Jsonw.Float x ->
      float_close x (float_of_int y)
  | Obs.Jsonw.List x, Obs.Jsonw.List y ->
      List.length x = List.length y && List.for_all2 json_close x y
  | Obs.Jsonw.Obj x, Obs.Jsonw.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_close v1 v2)
           x y
  | _ -> json_equal a b

let prop_jsonw_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"compact and pretty round-trip"
       ~print:Obs.Jsonw.to_string gen_json (fun v ->
         let reparses s =
           match Obs.Jsonw.of_string s with
           | Ok v' -> json_close v v'
           | Error _ -> false
         in
         reparses (Obs.Jsonw.to_string v) && reparses (Obs.Jsonw.pretty v)))

(* --- journal --------------------------------------------------------------- *)

let test_journal_domains () =
  let path = Filename.temp_file "mirage_journal" ".jsonl" in
  let j = Obs.Journal.create ~capacity:16 ~path () in
  let domains = 4 and per = 500 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              let cand = Obs.Journal.fresh_id j in
              Obs.Journal.emit j ~cand ~typ:"test.ev"
                [ ("tag", Obs.Jsonw.Int d); ("i", Obs.Jsonw.Int i) ]
            done))
  in
  List.iter Domain.join ds;
  Obs.Journal.close j;
  (match Obs.Journal.read_file path with
  | Error e -> Alcotest.failf "journal unreadable (torn line?): %s" e
  | Ok events ->
      Alcotest.(check int) "no lost events" (domains * per)
        (List.length events);
      let tbl = Hashtbl.create 997 in
      List.iter
        (fun e ->
          let get k =
            match Obs.Jsonw.member k e with
            | Some (Obs.Jsonw.Int n) -> n
            | _ -> Alcotest.failf "event missing int field %S" k
          in
          let key = (get "tag", get "i") in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        events;
      Alcotest.(check int) "every (domain, i) pair present" (domains * per)
        (Hashtbl.length tbl);
      Hashtbl.iter
        (fun _ n ->
          if n <> 1 then Alcotest.fail "an event was written twice")
        tbl;
      let uniq l = List.length (List.sort_uniq compare l) in
      Alcotest.(check int) "seq numbers unique" (domains * per)
        (uniq (List.map Obs.Journal.seq_of events));
      Alcotest.(check int) "candidate ids unique" (domains * per)
        (uniq (List.map Obs.Journal.cand_of events));
      List.iter
        (fun e ->
          Alcotest.(check string) "event type" "test.ev" (Obs.Journal.typ_of e))
        events);
  Sys.remove path

let test_journal_global_off () =
  Obs.Journal.disable ();
  Alcotest.(check bool) "no journal installed" true
    (Obs.Journal.active () = None);
  (* must be a plain no-op, not an error *)
  Obs.Journal.event "test.noop" [ ("x", Obs.Jsonw.Int 1) ]

(* --- run reports: numeric diff and the regression gate --------------------- *)

let test_report_gate () =
  let mk opt wall =
    Obs.Jsonw.Obj
      [
        ("schema", Obs.Jsonw.Str Obs.Report.schema);
        ("cost", Obs.Jsonw.Obj [ ("optimized_us", Obs.Jsonw.Float opt) ]);
        ("timing", Obs.Jsonw.Obj [ ("wall_s", Obs.Jsonw.Float wall) ]);
        ("funnel", Obs.Jsonw.Obj [ ("expanded", Obs.Jsonw.Int 100) ]);
      ]
  in
  let a = mk 10.0 5.0 in
  let b = mk 12.0 5.1 in
  let ds = Obs.Report.num_deltas a b in
  Alcotest.(check bool) "dotted path found" true
    (List.exists (fun (d : Obs.Report.delta) -> d.key = "cost.optimized_us") ds);
  Alcotest.(check bool) "shared int leaf found" true
    (List.exists (fun (d : Obs.Report.delta) -> d.key = "funnel.expanded") ds);
  (* a -> b: cost +20% (over a 5% threshold), wall +2% (under) *)
  let viol = Obs.Report.gate ~threshold:0.05 a b in
  Alcotest.(check (list string)) "regression detected"
    [ "cost.optimized_us" ]
    (List.map (fun (d : Obs.Report.delta) -> d.key) viol);
  Alcotest.(check bool) "relative change" true
    (float_close (Obs.Report.rel (List.hd viol)) 0.2);
  (* a generous threshold passes, and an improvement never trips *)
  Alcotest.(check int) "under threshold" 0
    (List.length (Obs.Report.gate ~threshold:0.25 a b));
  Alcotest.(check int) "improvement is not a regression" 0
    (List.length (Obs.Report.gate ~threshold:0.05 b a))

(* --- gauges: max semantics across domains, merged by max ------------------- *)

let test_gauge_max () =
  let reg = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge reg "test.peak" in
  let domains = 4 and per = 2_000 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Obs.Metrics.max_gauge g (float_of_int ((d * per) + i))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check (float 0.0)) "high-water mark survives the races"
    (float_of_int (domains * per))
    (Obs.Metrics.gauge_value g);
  let other = Obs.Metrics.create () in
  Obs.Metrics.set_gauge (Obs.Metrics.gauge other "test.peak") 17.0;
  let merged =
    Obs.Metrics.merge
      [ Obs.Metrics.snapshot reg; Obs.Metrics.snapshot other ]
  in
  Alcotest.(check (float 0.0)) "merge takes the max"
    (float_of_int (domains * per))
    (List.assoc "test.peak" merged.Obs.Metrics.gauges)

(* --- tracer ---------------------------------------------------------------- *)

let test_trace_nesting () =
  let t = Obs.Trace.create () in
  Obs.Trace.span t "outer" (fun () ->
      Obs.Trace.span t "inner" (fun () -> ());
      Obs.Trace.span t "inner" (fun () -> ()));
  (try Obs.Trace.span t "raiser" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "all spans recorded (incl. on exception)" 4
    (Obs.Trace.span_count t);
  let json = Obs.Trace.to_chrome_json t in
  (match Obs.Jsonw.of_string (Obs.Jsonw.to_string json) with
  | Error e -> Alcotest.failf "trace JSON invalid: %s" e
  | Ok (Obs.Jsonw.List events) ->
      Alcotest.(check int) "one event per span" 4 (List.length events);
      List.iter
        (fun ev ->
          List.iter
            (fun field ->
              if Obs.Jsonw.member field ev = None then
                Alcotest.failf "event missing %S" field)
            [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          Alcotest.(check bool) "complete event" true
            (Obs.Jsonw.member "ph" ev = Some (Obs.Jsonw.Str "X")))
        events
  | Ok _ -> Alcotest.fail "trace JSON is not an array");
  let s = Obs.Trace.summary t in
  Alcotest.(check bool) "summary nests inner under outer" true
    (Astring_contains.contains s "outer"
    && Astring_contains.contains s "inner"
    && Astring_contains.contains s "2x")

let test_trace_global_off () =
  Obs.Trace.disable ();
  (* with no collector installed this must be a plain call *)
  let r = Obs.Trace.with_span "nothing" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check bool) "no collector" true (Obs.Trace.active () = None)

(* --- logger ---------------------------------------------------------------- *)

let test_log_levels () =
  let prev = Obs.Log.current_level () in
  Obs.Log.set_level (Some Obs.Log.Info);
  Alcotest.(check bool) "info enabled" true (Obs.Log.enabled Obs.Log.Info);
  Alcotest.(check bool) "debug disabled" false (Obs.Log.enabled Obs.Log.Debug);
  Alcotest.(check bool) "warn enabled" true (Obs.Log.enabled Obs.Log.Warn);
  Obs.Log.set_level None;
  Alcotest.(check bool) "off disables warn" false (Obs.Log.enabled Obs.Log.Warn);
  Alcotest.(check bool) "parse warn" true
    (Obs.Log.level_of_string "WARNING" = Some Obs.Log.Warn);
  Alcotest.(check bool) "parse junk" true (Obs.Log.level_of_string "x" = None);
  Obs.Log.set_level prev

(* --- the search funnel on a real search ----------------------------------- *)

let div_matmul_spec ~b ~h ~d =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let c = Graph.Build.input bld "C" [| b; 1 |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let y = Graph.Build.prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = Graph.Build.prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

let test_funnel_invariant () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let config =
    Search.Config.for_spec
      ~base:
        {
          Search.Config.default with
          Search.Config.grid_candidates = [ [| 2 |] ];
          forloop_candidates = [ [| 2 |] ];
          max_block_ops = 4;
          num_workers = 2;
          time_budget_s = 90.0;
        }
      spec
  in
  let o = Search.Generator.run ~config ~device:Gpusim.Device.a100 ~spec () in
  let s = o.Search.Generator.stats in
  Alcotest.(check bool) "searched something" true
    (s.Search.Stats.expanded > 0);
  Alcotest.(check bool) "funnel invariant" true (Search.Stats.funnel_ok s);
  Alcotest.(check bool) "verified <= candidates" true
    (s.Search.Stats.verified <= s.Search.Stats.candidates);
  (* the registry snapshot agrees with the fixed record *)
  let counters = o.Search.Generator.metrics.Obs.Metrics.counters in
  Alcotest.(check int) "registry mirrors snapshot"
    s.Search.Stats.expanded
    (List.assoc "search.expanded" counters)

(* --- hdr: bounded-relative-error latency sketch ---------------------------- *)

(* The documented contract ({!Obs.Hdr.quantile}): for samples inside
   [lo, hi] the estimate at rank [max 1 (ceil (p * n))] is within
   relative [error] of the exact sorted-sample value — across the full
   default range, six orders of magnitude. *)
let prop_hdr_quantile =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 400)
        (map
           (fun u ->
             let v = exp u in
             Float.max 1e-6 (Float.min 100.0 v))
           (float_range (log 1e-6) (log 100.0))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200
       ~name:"hdr quantile within documented relative error"
       ~print:(fun vs ->
         String.concat "," (List.map (Printf.sprintf "%.9g") vs))
       gen
       (fun vs ->
         let h = Obs.Hdr.create "q" in
         List.iter (Obs.Hdr.record h) vs;
         let sorted = Array.of_list (List.sort compare vs) in
         let n = Array.length sorted in
         List.for_all
           (fun p ->
             let rank =
               min n (max 1 (int_of_float (ceil (p *. float_of_int n))))
             in
             let exact = sorted.(rank - 1) in
             let est = Obs.Hdr.quantile h p in
             abs_float (est -. exact) <= (Obs.Hdr.error h *. exact) +. 1e-9)
           [ 0.5; 0.9; 0.99; 0.999 ]))

let test_hdr_bounds () =
  let h = Obs.Hdr.create ~error:0.01 ~lo:1e-6 ~hi:100.0 "b" in
  (* out-of-range values clamp into the edge buckets but min/max stay
     exact *)
  Obs.Hdr.record h 1e-9;
  Obs.Hdr.record h 1e4;
  Obs.Hdr.record h 0.5;
  Obs.Hdr.record h Float.nan;
  Alcotest.(check int) "nan ignored, three recorded" 3 (Obs.Hdr.count h);
  let s = Obs.Hdr.snapshot h in
  Alcotest.(check (float 0.0)) "true min" 1e-9 s.Obs.Hdr.vmin;
  Alcotest.(check (float 0.0)) "true max" 1e4 s.Obs.Hdr.vmax;
  let p0 = Obs.Hdr.quantile h 0.0 in
  Alcotest.(check bool) "low quantile clamped near lo" true (p0 <= 1.1e-6);
  let p1 = Obs.Hdr.quantile h 1.0 in
  Alcotest.(check bool) "high quantile clamped near hi" true (p1 >= 99.0);
  Obs.Hdr.reset h;
  Alcotest.(check int) "reset clears count" 0 (Obs.Hdr.count h);
  Alcotest.(check (float 0.0)) "reset clears quantile" 0.0
    (Obs.Hdr.quantile h 0.5)

let test_hdr_domains () =
  let h = Obs.Hdr.create "c" in
  let domains = 4 and per = 50_000 in
  (* powers of two so the concurrent CAS-summed total is exact *)
  let value i = ldexp 1.0 (-4 - (i land 7)) in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Obs.Hdr.record h (value i)
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost records" (domains * per) (Obs.Hdr.count h);
  let expect = ref 0.0 in
  for i = 1 to per do
    expect := !expect +. (float_of_int domains *. value i)
  done;
  let s = Obs.Hdr.snapshot h in
  Alcotest.(check (float 0.0)) "sum exact" !expect s.Obs.Hdr.sum;
  Alcotest.(check (float 0.0)) "max exact" (ldexp 1.0 (-4)) s.Obs.Hdr.vmax

let test_hdr_registry () =
  let r = Obs.Metrics.create () in
  let h = Obs.Metrics.hdr r ~help:"request latency" "serve.test_stage" in
  for i = 1 to 100 do
    Obs.Hdr.record h (1e-3 *. float_of_int i)
  done;
  let s = Obs.Metrics.snapshot r in
  (match List.assoc_opt "serve.test_stage" s.Obs.Metrics.hdrs with
  | None -> Alcotest.fail "hdr missing from registry snapshot"
  | Some hs -> Alcotest.(check int) "snapshot count" 100 hs.Obs.Hdr.count);
  (match
     Obs.Jsonw.member "hdr" (Obs.Metrics.to_json s)
   with
  | Some (Obs.Jsonw.Obj kvs) ->
      Alcotest.(check bool) "hdr in to_json" true
        (List.mem_assoc "serve.test_stage" kvs)
  | _ -> Alcotest.fail "no hdr object in metrics to_json");
  let text = Obs.Prom.render s in
  let contains sub =
    let ls = String.length sub and lt = String.length text in
    let rec go i = i + ls <= lt && (String.sub text i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus summary rendered" true
    (contains "serve_test_stage" && contains "quantile=\"0.99\"")

(* --- journal ambient context (request ids) --------------------------------- *)

let test_journal_context () =
  let path = Filename.temp_file "mirage_journal_ctx" ".jsonl" in
  let j = Obs.Journal.create ~capacity:8 ~path () in
  Obs.Journal.set_context [ ("rid", Obs.Jsonw.Str "r-alpha") ];
  Obs.Journal.emit j ~typ:"req.a" [ ("k", Obs.Jsonw.Int 1) ];
  Obs.Journal.with_context
    [ ("rid", Obs.Jsonw.Str "r-beta") ]
    (fun () ->
      Obs.Journal.emit j ~typ:"req.b" [];
      (* an explicit event field with the same key beats the context *)
      Obs.Journal.emit j ~typ:"req.c" [ ("rid", Obs.Jsonw.Str "r-gamma") ]);
  (* previous context restored after with_context *)
  Obs.Journal.emit j ~typ:"req.d" [];
  Obs.Journal.set_context [];
  Obs.Journal.emit j ~typ:"req.e" [];
  Obs.Journal.close j;
  (match Obs.Journal.read_file path with
  | Error e -> Alcotest.failf "journal unreadable: %s" e
  | Ok events ->
      Alcotest.(check (list string))
        "rid stamped per event"
        [ "r-alpha"; "r-beta"; "r-gamma"; "r-alpha"; "" ]
        (List.map Obs.Journal.rid_of events);
      (* the forensics invariant: filtering by one id yields exactly that
         request's events *)
      let alpha =
        List.filter (fun e -> Obs.Journal.rid_of e = "r-alpha") events
      in
      Alcotest.(check (list string))
        "rid filter selects exactly its events" [ "req.a"; "req.d" ]
        (List.map Obs.Journal.typ_of alpha));
  Sys.remove path

(* --- profile: wall-time phase accounting ----------------------------------- *)

let with_ambient_profile f =
  let p = Obs.Profile.enable () in
  Fun.protect ~finally:(fun () -> Obs.Profile.disable ()) (fun () -> f p)

(* A random single-threaded phase tree: whatever the nesting, each
   phase's self time is bounded by its total, a child's total by its
   parent's, and the self times of all phases together never exceed the
   profiler's wall clock — time is attributed, never invented. *)
type ptree = Ph of string * ptree list

let gen_phase_tree =
  let open QCheck2.Gen in
  let name = map (Printf.sprintf "p%d") (int_range 0 3) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun s -> Ph (s, [])) name
         else
           map2
             (fun s kids -> Ph (s, kids))
             name
             (list_size (int_range 0 3) (self (n / 3))))

let prop_profile_conservation =
  let rec show (Ph (s, kids)) =
    s ^ "(" ^ String.concat "," (List.map show kids) ^ ")"
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"self <= total <= parent, sum of self <= wall"
       ~print:show
       (QCheck2.Gen.map (fun t -> t) gen_phase_tree)
       (fun tree ->
         with_ambient_profile (fun p ->
             let rec run (Ph (s, kids)) =
               Obs.Profile.with_phase s (fun () ->
                   (* a little attributable work *)
                   ignore (Sys.opaque_identity (Hashtbl.hash kids));
                   List.iter run kids)
             in
             run tree;
             let snap = Obs.Profile.snapshot p in
             let phases =
               List.filter
                 (fun ph -> not ph.Obs.Profile.p_overlay)
                 snap.Obs.Profile.phases
             in
             let total_of path =
               match
                 List.find_opt (fun ph -> ph.Obs.Profile.p_path = path) phases
               with
               | Some ph -> ph.Obs.Profile.p_total_s
               | None -> 0.0
             in
             let eps = 1e-9 in
             List.for_all
               (fun ph ->
                 ph.Obs.Profile.p_self_s <= ph.Obs.Profile.p_total_s +. eps
                 &&
                 match String.rindex_opt ph.Obs.Profile.p_path '/' with
                 | None -> true
                 | Some i ->
                     (* single-threaded: a child phase cannot outlive its
                        parent *)
                     ph.Obs.Profile.p_total_s
                     <= total_of (String.sub ph.Obs.Profile.p_path 0 i) +. eps)
               phases
             && List.fold_left
                  (fun acc ph -> acc +. ph.Obs.Profile.p_self_s)
                  0.0 phases
                <= snap.Obs.Profile.wall_s +. eps)))

(* Counts are exact under domain concurrency: 4 domains hammering the
   same phases, timers and rules concurrently lose nothing. *)
let test_profile_domains () =
  with_ambient_profile (fun p ->
      let domains = 4 and per = 10_000 in
      let ds =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                (* one task phase per domain, mirroring the enumerator:
                   the batched timer is flushed inside it *)
                Obs.Profile.with_phase "outer" (fun () ->
                    let tm = Obs.Profile.timer "check" in
                    let ru = Obs.Profile.prune_rule "cut" in
                    for i = 1 to per do
                      Obs.Profile.with_phase "inner" (fun () ->
                          ignore (Sys.opaque_identity i));
                      ignore (Obs.Profile.timed tm (fun () -> i land 1 = 0));
                      Obs.Profile.fire ru ~remaining:(i land 7)
                    done;
                    Obs.Profile.flush_timer tm;
                    Obs.Profile.flush_rule ru)))
      in
      List.iter Domain.join ds;
      let snap = Obs.Profile.snapshot p in
      let count path =
        match
          List.find_opt
            (fun ph -> ph.Obs.Profile.p_path = path)
            snap.Obs.Profile.phases
        with
        | Some ph -> ph.Obs.Profile.p_count
        | None -> -1
      in
      Alcotest.(check int) "outer count exact" domains (count "outer");
      Alcotest.(check int) "inner count exact" (domains * per)
        (count "outer/inner");
      Alcotest.(check int) "batched timer count exact" (domains * per)
        (count "outer/check");
      match
        List.find_opt
          (fun r -> r.Obs.Profile.r_rule = "cut")
          snap.Obs.Profile.prune_rules
      with
      | None -> Alcotest.fail "rule missing from snapshot"
      | Some r ->
          Alcotest.(check int) "rule fires exact" (domains * per)
            r.Obs.Profile.r_fires)

(* The geometric prune-savings model, pinned: at branching factor 2 a
   cut with 3 remaining slots saves 2 + 4 + 8 = 14 expansions. *)
let test_profile_savings () =
  with_ambient_profile (fun p ->
      Obs.Profile.set_branching p 2.0;
      let ru = Obs.Profile.prune_rule "cut" in
      Obs.Profile.fire ru ~remaining:3;
      Obs.Profile.flush_rule ru;
      let snap = Obs.Profile.snapshot p in
      match snap.Obs.Profile.prune_rules with
      | [ r ] ->
          Alcotest.(check (float 1e-9)) "geometric subtree" 14.0
            r.Obs.Profile.r_est_saved
      | _ -> Alcotest.fail "expected exactly one rule")

(* Disabled profiler: everything is an inert no-op and records nothing. *)
let test_profile_disabled () =
  Obs.Profile.disable ();
  Obs.Profile.with_phase "ghost" (fun () -> ());
  Obs.Profile.note "ghost.note" 1.0;
  Obs.Profile.fire (Obs.Profile.prune_rule "ghost") ~remaining:3;
  Alcotest.(check bool) "no ambient profiler" true (Obs.Profile.active () = None);
  (* and a fresh profiler saw none of it *)
  with_ambient_profile (fun p ->
      Alcotest.(check int) "fresh profiler empty" 0
        (List.length (Obs.Profile.snapshot p).Obs.Profile.phases))

(* snapshot_json round-trips through the analyzer: render succeeds and
   coverage is computable. *)
let test_profile_json () =
  with_ambient_profile (fun p ->
      Obs.Profile.with_phase "root" (fun () ->
          Obs.Profile.with_phase "a" (fun () -> ignore (Sys.opaque_identity 1));
          Obs.Profile.with_phase "b" (fun () -> ignore (Sys.opaque_identity 2)));
      let j = Obs.Profile.snapshot_json (Obs.Profile.snapshot p) in
      (match Obs.Jsonw.member "schema" j with
      | Some (Obs.Jsonw.Str s) ->
          Alcotest.(check string) "schema tag" Obs.Profile.schema s
      | _ -> Alcotest.fail "no schema tag");
      (match Obs.Profile.render j with
      | Ok text ->
          Alcotest.(check bool) "render mentions root" true
            (let sub = "root" in
             let ls = String.length sub and lt = String.length text in
             let rec go i =
               i + ls <= lt && (String.sub text i ls = sub || go (i + 1))
             in
             go 0)
      | Error m -> Alcotest.failf "render failed: %s" m);
      match Obs.Profile.coverage j with
      | Some (root, cov) ->
          Alcotest.(check string) "dominant root" "root" root;
          Alcotest.(check bool) "coverage within [0,1]" true
            (cov >= 0.0 && cov <= 1.0)
      | None -> Alcotest.fail "no coverage")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter exact across domains" `Quick
            test_counter_domains;
          Alcotest.test_case "histogram exact across domains" `Quick
            test_histogram_domains;
          Alcotest.test_case "merge sums by name" `Quick test_metrics_merge;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip with escapes" `Quick
            test_json_roundtrip;
          Alcotest.test_case "parser rejects invalid" `Quick
            test_json_parse_errors;
          prop_jsonw_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "4-domain round-trip, no lost or torn events"
            `Quick test_journal_domains;
          Alcotest.test_case "no-op when disabled" `Quick
            test_journal_global_off;
          Alcotest.test_case "ambient context stamps request ids" `Quick
            test_journal_context;
        ] );
      ( "hdr",
        [
          prop_hdr_quantile;
          Alcotest.test_case "clamping, nan, reset" `Quick test_hdr_bounds;
          Alcotest.test_case "exact count/sum across domains" `Quick
            test_hdr_domains;
          Alcotest.test_case "registry snapshot, json, prometheus" `Quick
            test_hdr_registry;
        ] );
      ( "report",
        [
          Alcotest.test_case "numeric diff and regression gate" `Quick
            test_report_gate;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "max across domains, merged by max" `Quick
            test_gauge_max;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and chrome JSON" `Quick
            test_trace_nesting;
          Alcotest.test_case "no-op when disabled" `Quick
            test_trace_global_off;
        ] );
      ( "log",
        [ Alcotest.test_case "level gating" `Quick test_log_levels ] );
      ( "funnel",
        [
          Alcotest.test_case "invariant on a small search" `Quick
            test_funnel_invariant;
        ] );
      ( "profile",
        [
          prop_profile_conservation;
          Alcotest.test_case "counts exact across 4 domains" `Quick
            test_profile_domains;
          Alcotest.test_case "prune-savings geometric model" `Quick
            test_profile_savings;
          Alcotest.test_case "no-op when disabled" `Quick
            test_profile_disabled;
          Alcotest.test_case "snapshot json renders and covers" `Quick
            test_profile_json;
        ] );
    ]
