(* Tests for the observability layer: the metrics registry under domain
   concurrency (increments must be exact, not approximate), the span
   tracer's nesting and Chrome JSON output, the JSON writer/parser pair,
   and the search-funnel invariant on a real (small) search. *)

open Mugraph

(* --- metrics: exactness under domains ------------------------------------ *)

let test_counter_domains () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "test.bumps" in
  let domains = 4 and per = 50_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.Metrics.bump c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (domains * per)
    (Obs.Metrics.value c)

let test_histogram_domains () =
  let reg = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram reg
      ~buckets:(Obs.Metrics.linear_buckets ~lo:0.0 ~step:1.0 ~n:4)
      "test.depth"
  in
  let domains = 4 and per = 10_000 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              (* a spread over the buckets including the overflow one *)
              Obs.Metrics.observe h (float_of_int ((i + d) mod 6))
            done))
  in
  List.iter Domain.join ds;
  let snap = Obs.Metrics.snapshot reg in
  let _, hs = List.hd snap.Obs.Metrics.hists in
  Alcotest.(check int) "total count" (domains * per) hs.Obs.Metrics.count;
  Alcotest.(check int) "buckets sum to count" hs.Obs.Metrics.count
    (Array.fold_left ( + ) 0 hs.Obs.Metrics.counts);
  Alcotest.(check int) "overflow bucket is last"
    (Array.length hs.Obs.Metrics.bounds + 1)
    (Array.length hs.Obs.Metrics.counts)

let test_metrics_merge () =
  let mk n =
    let reg = Obs.Metrics.create () in
    let c = Obs.Metrics.counter reg "m.count" in
    let h =
      Obs.Metrics.histogram reg
        ~buckets:(Obs.Metrics.linear_buckets ~lo:0.0 ~step:1.0 ~n:3)
        "m.hist"
    in
    for _ = 1 to n do
      Obs.Metrics.bump c
    done;
    for i = 1 to n do
      Obs.Metrics.observe h (float_of_int (i mod 3))
    done;
    Obs.Metrics.snapshot reg
  in
  let merged = Obs.Metrics.merge [ mk 10; mk 32 ] in
  Alcotest.(check int) "counters summed by name" 42
    (List.assoc "m.count" merged.Obs.Metrics.counters);
  let hs = List.assoc "m.hist" merged.Obs.Metrics.hists in
  Alcotest.(check int) "hist counts summed" 42 hs.Obs.Metrics.count

(* --- json writer/parser --------------------------------------------------- *)

let rec json_equal a b =
  match a, b with
  | Obs.Jsonw.Null, Obs.Jsonw.Null -> true
  | Obs.Jsonw.Bool x, Obs.Jsonw.Bool y -> x = y
  | Obs.Jsonw.Int x, Obs.Jsonw.Int y -> x = y
  | Obs.Jsonw.Float x, Obs.Jsonw.Float y -> Float.equal x y
  | Obs.Jsonw.Int x, Obs.Jsonw.Float y | Obs.Jsonw.Float y, Obs.Jsonw.Int x ->
      Float.equal (float_of_int x) y
  | Obs.Jsonw.Str x, Obs.Jsonw.Str y -> String.equal x y
  | Obs.Jsonw.List x, Obs.Jsonw.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Obs.Jsonw.Obj x, Obs.Jsonw.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           x y
  | _ -> false

let test_json_roundtrip () =
  let v =
    Obs.Jsonw.(
      Obj
        [
          ("name", Str "a \"quoted\"\nstring with \t and \\ and \x01");
          ("unicode", Str "µGraph ≤ 7");
          ("n", Int 42);
          ("x", Float 2.5);
          ("flag", Bool true);
          ("nothing", Null);
          ("nested", List [ Int 1; List [ Str "two" ]; Obj [ ("k", Int 3) ] ]);
        ])
  in
  match Obs.Jsonw.of_string (Obs.Jsonw.to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "roundtrip preserves value" true (json_equal v v')

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "\"unterminated"; "{\"a\":1} trailing"; "nul" ] in
  List.iter
    (fun s ->
      match Obs.Jsonw.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    bad;
  match Obs.Jsonw.of_string "  {\"a\": [1, 2.5, \"\\u00b5\"]}  " with
  | Error e -> Alcotest.failf "rejected valid JSON: %s" e
  | Ok j -> (
      match Obs.Jsonw.member "a" j with
      | Some (Obs.Jsonw.List [ _; _; Obs.Jsonw.Str mu ]) ->
          Alcotest.(check string) "\\u escape decoded" "\xc2\xb5" mu
      | _ -> Alcotest.fail "wrong parse shape")

(* --- tracer ---------------------------------------------------------------- *)

let test_trace_nesting () =
  let t = Obs.Trace.create () in
  Obs.Trace.span t "outer" (fun () ->
      Obs.Trace.span t "inner" (fun () -> ());
      Obs.Trace.span t "inner" (fun () -> ()));
  (try Obs.Trace.span t "raiser" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "all spans recorded (incl. on exception)" 4
    (Obs.Trace.span_count t);
  let json = Obs.Trace.to_chrome_json t in
  (match Obs.Jsonw.of_string (Obs.Jsonw.to_string json) with
  | Error e -> Alcotest.failf "trace JSON invalid: %s" e
  | Ok (Obs.Jsonw.List events) ->
      Alcotest.(check int) "one event per span" 4 (List.length events);
      List.iter
        (fun ev ->
          List.iter
            (fun field ->
              if Obs.Jsonw.member field ev = None then
                Alcotest.failf "event missing %S" field)
            [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          Alcotest.(check bool) "complete event" true
            (Obs.Jsonw.member "ph" ev = Some (Obs.Jsonw.Str "X")))
        events
  | Ok _ -> Alcotest.fail "trace JSON is not an array");
  let s = Obs.Trace.summary t in
  Alcotest.(check bool) "summary nests inner under outer" true
    (Astring_contains.contains s "outer"
    && Astring_contains.contains s "inner"
    && Astring_contains.contains s "2x")

let test_trace_global_off () =
  Obs.Trace.disable ();
  (* with no collector installed this must be a plain call *)
  let r = Obs.Trace.with_span "nothing" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check bool) "no collector" true (Obs.Trace.active () = None)

(* --- logger ---------------------------------------------------------------- *)

let test_log_levels () =
  let prev = Obs.Log.current_level () in
  Obs.Log.set_level (Some Obs.Log.Info);
  Alcotest.(check bool) "info enabled" true (Obs.Log.enabled Obs.Log.Info);
  Alcotest.(check bool) "debug disabled" false (Obs.Log.enabled Obs.Log.Debug);
  Alcotest.(check bool) "warn enabled" true (Obs.Log.enabled Obs.Log.Warn);
  Obs.Log.set_level None;
  Alcotest.(check bool) "off disables warn" false (Obs.Log.enabled Obs.Log.Warn);
  Alcotest.(check bool) "parse warn" true
    (Obs.Log.level_of_string "WARNING" = Some Obs.Log.Warn);
  Alcotest.(check bool) "parse junk" true (Obs.Log.level_of_string "x" = None);
  Obs.Log.set_level prev

(* --- the search funnel on a real search ----------------------------------- *)

let div_matmul_spec ~b ~h ~d =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let c = Graph.Build.input bld "C" [| b; 1 |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let y = Graph.Build.prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = Graph.Build.prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

let test_funnel_invariant () =
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:16 in
  let config =
    Search.Config.for_spec
      ~base:
        {
          Search.Config.default with
          Search.Config.grid_candidates = [ [| 2 |] ];
          forloop_candidates = [ [| 2 |] ];
          max_block_ops = 4;
          num_workers = 2;
          time_budget_s = 90.0;
        }
      spec
  in
  let o = Search.Generator.run ~config ~device:Gpusim.Device.a100 ~spec () in
  let s = o.Search.Generator.stats in
  Alcotest.(check bool) "searched something" true
    (s.Search.Stats.expanded > 0);
  Alcotest.(check bool) "funnel invariant" true (Search.Stats.funnel_ok s);
  Alcotest.(check bool) "verified <= candidates" true
    (s.Search.Stats.verified <= s.Search.Stats.candidates);
  (* the registry snapshot agrees with the fixed record *)
  let counters = o.Search.Generator.metrics.Obs.Metrics.counters in
  Alcotest.(check int) "registry mirrors snapshot"
    s.Search.Stats.expanded
    (List.assoc "search.expanded" counters)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter exact across domains" `Quick
            test_counter_domains;
          Alcotest.test_case "histogram exact across domains" `Quick
            test_histogram_domains;
          Alcotest.test_case "merge sums by name" `Quick test_metrics_merge;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip with escapes" `Quick
            test_json_roundtrip;
          Alcotest.test_case "parser rejects invalid" `Quick
            test_json_parse_errors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and chrome JSON" `Quick
            test_trace_nesting;
          Alcotest.test_case "no-op when disabled" `Quick
            test_trace_global_off;
        ] );
      ( "log",
        [ Alcotest.test_case "level gating" `Quick test_log_levels ] );
      ( "funnel",
        [
          Alcotest.test_case "invariant on a small search" `Quick
            test_funnel_invariant;
        ] );
    ]
