(* Tests for the finite-field substrate: Z_p arithmetic, roots of unity,
   and the Z_p x Z_q product domain of paper Table 3. *)

open Ffield

let seed = [| 0xC0FFEE |]

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Zmod ------------------------------------------------------------ *)

let test_normalize () =
  Alcotest.(check int) "positive" 3 (Zmod.normalize ~modulus:7 10);
  Alcotest.(check int) "negative" 4 (Zmod.normalize ~modulus:7 (-10));
  Alcotest.(check int) "zero" 0 (Zmod.normalize ~modulus:7 0);
  Alcotest.(check int) "exact" 0 (Zmod.normalize ~modulus:7 7)

let test_pow () =
  Alcotest.(check int) "2^10 mod 227" (1024 mod 227) (Zmod.pow ~modulus:227 2 10);
  Alcotest.(check int) "x^0" 1 (Zmod.pow ~modulus:227 5 0);
  (* Fermat: x^(p-1) = 1 *)
  for x = 1 to 226 do
    Alcotest.(check int) "fermat" 1 (Zmod.pow ~modulus:227 x 226)
  done

let test_inv () =
  for x = 1 to 112 do
    let i = Zmod.inv ~modulus:113 x in
    Alcotest.(check int) "x * x^-1 = 1" 1 (Zmod.mul ~modulus:113 x i)
  done;
  Alcotest.check_raises "inv 0" Zmod.Division_by_zero (fun () ->
      ignore (Zmod.inv ~modulus:113 0))

let test_is_prime () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool) (string_of_int n) expected (Zmod.is_prime n))
    [ (1, false); (2, true); (3, true); (4, false); (113, true); (227, true);
      (221, false); (0, false); (-5, false); (97, true); (91, false) ]

let test_default_primes () =
  (* The paper's implementation choice: largest p*q < 2^16, q | p - 1. *)
  Alcotest.(check bool) "p prime" true (Zmod.is_prime Zmod.default_p);
  Alcotest.(check bool) "q prime" true (Zmod.is_prime Zmod.default_q);
  Alcotest.(check int) "q | p-1" 0 ((Zmod.default_p - 1) mod Zmod.default_q);
  Alcotest.(check bool) "p*q < 2^16" true
    (Zmod.default_p * Zmod.default_q < 65536)

let test_roots_of_unity () =
  let roots = Zmod.roots_of_unity ~p:227 ~q:113 in
  Alcotest.(check int) "count" 113 (List.length roots);
  List.iter
    (fun w ->
      Alcotest.(check int) "w^q = 1" 1 (Zmod.pow ~modulus:227 w 113))
    roots;
  (* Roots are distinct. *)
  let sorted = List.sort_uniq Stdlib.compare roots in
  Alcotest.(check int) "distinct" 113 (List.length sorted)

let test_random_root () =
  let st = Random.State.make seed in
  for _ = 1 to 50 do
    let w = Zmod.random_root_of_unity ~p:227 ~q:113 st in
    Alcotest.(check int) "w^q = 1" 1 (Zmod.pow ~modulus:227 w 113)
  done

let test_primitive_root () =
  let g = Zmod.primitive_root ~modulus:227 in
  (* Order of g must be exactly 226 = 2 * 113. *)
  Alcotest.(check bool) "g^113 <> 1" true (Zmod.pow ~modulus:227 g 113 <> 1);
  Alcotest.(check bool) "g^2 <> 1" true (Zmod.pow ~modulus:227 g 2 <> 1);
  Alcotest.(check int) "g^226 = 1" 1 (Zmod.pow ~modulus:227 g 226)

let test_sqrt_opt () =
  let p = 113 in
  for x = 0 to p - 1 do
    match Zmod.sqrt_opt ~modulus:p x with
    | Some r -> Alcotest.(check int) "r*r = x" x (Zmod.mul ~modulus:p r r)
    | None ->
        (* x must be a non-residue: x^((p-1)/2) <> 1 *)
        Alcotest.(check bool) "non-residue" true
          (Zmod.pow ~modulus:p x ((p - 1) / 2) <> 1)
  done

let prop_add_assoc =
  qcheck "zmod add associative"
    QCheck2.Gen.(triple (int_range 0 226) (int_range 0 226) (int_range 0 226))
    (fun (a, b, c) ->
      let m = 227 in
      Zmod.add ~modulus:m a (Zmod.add ~modulus:m b c)
      = Zmod.add ~modulus:m (Zmod.add ~modulus:m a b) c)

let prop_mul_distrib =
  qcheck "zmod mul distributes over add"
    QCheck2.Gen.(triple (int_range 0 226) (int_range 0 226) (int_range 0 226))
    (fun (a, b, c) ->
      let m = 227 in
      Zmod.mul ~modulus:m a (Zmod.add ~modulus:m b c)
      = Zmod.add ~modulus:m (Zmod.mul ~modulus:m a b) (Zmod.mul ~modulus:m a c))

let prop_div_mul =
  qcheck "zmod div then mul roundtrips"
    QCheck2.Gen.(pair (int_range 0 226) (int_range 1 226))
    (fun (a, b) ->
      let m = 227 in
      Zmod.mul ~modulus:m (Zmod.div ~modulus:m a b) b = Zmod.normalize ~modulus:m a)

(* --- Fpair ----------------------------------------------------------- *)

let ctx () =
  let st = Random.State.make seed in
  Fpair.random_ctx st

let test_fpair_ring () =
  let c = ctx () in
  let a = Fpair.of_int c 42 and b = Fpair.of_int c 17 in
  Alcotest.(check bool) "add comm" true
    (Fpair.equal (Fpair.add c a b) (Fpair.add c b a));
  Alcotest.(check bool) "mul comm" true
    (Fpair.equal (Fpair.mul c a b) (Fpair.mul c b a));
  Alcotest.(check bool) "a - a = 0" true
    (Fpair.equal (Fpair.sub c a a) Fpair.zero);
  Alcotest.(check bool) "a * 1 = a" true
    (Fpair.equal (Fpair.mul c a Fpair.one) a);
  Alcotest.(check bool) "a / a = 1" true
    (Fpair.equal (Fpair.div c a a) Fpair.one)

let test_fpair_exp_homomorphism () =
  (* exp(x) * exp(y) agrees with exp(x + y) on the Z_p component: this is
     the identity e^x e^y = e^{x+y} realized via omega^x omega^y =
     omega^{x+y}, the property Theorem 2 relies on. *)
  let c = ctx () in
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 100 do
    let x = Fpair.random c st and y = Fpair.random c st in
    let lhs = Fpair.mul c (Fpair.exp c x) (Fpair.exp c y) in
    let rhs = Fpair.exp c (Fpair.add c x y) in
    Alcotest.(check int) "Z_p components equal" rhs.Fpair.vp lhs.Fpair.vp
  done

let test_fpair_exp_consumes_q () =
  let c = ctx () in
  let x = Fpair.of_int c 5 in
  let e = Fpair.exp c x in
  Alcotest.(check bool) "q component gone" true (e.Fpair.vq = None);
  Alcotest.check_raises "second exp is non-LAX" Fpair.Not_lax (fun () ->
      ignore (Fpair.exp c e))

let test_fpair_div_by_zero () =
  let c = ctx () in
  Alcotest.check_raises "div by zero" Zmod.Division_by_zero (fun () ->
      ignore (Fpair.div c Fpair.one Fpair.zero))

let test_fpair_unsupported () =
  let c = ctx () in
  (match Fpair.sqrt c Fpair.one with
  | exception Fpair.Unsupported _ -> ()
  | _ -> Alcotest.fail "sqrt should be unsupported");
  match Fpair.silu c Fpair.one with
  | exception Fpair.Unsupported _ -> ()
  | _ -> Alcotest.fail "silu should be unsupported"

let test_make_ctx_validation () =
  (match Fpair.make_ctx ~p:10 ~q:3 ~omega:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p=10 should be rejected");
  (match Fpair.make_ctx ~p:227 ~q:7 ~omega:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q=7 (not dividing 226) should be rejected");
  match Fpair.make_ctx ~omega:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "omega=2 is not a 113th root of unity"

let prop_fpair_distrib =
  let c = Lazy.from_fun ctx in
  qcheck "fpair distributivity"
    QCheck2.Gen.(triple small_nat small_nat small_nat)
    (fun (a, b, d) ->
      let c = Lazy.force c in
      let a = Fpair.of_int c a and b = Fpair.of_int c b and d = Fpair.of_int c d in
      Fpair.equal
        (Fpair.mul c a (Fpair.add c b d))
        (Fpair.add c (Fpair.mul c a b) (Fpair.mul c a d)))

(* --- Fpacked --------------------------------------------------------- *)

(* One omega shared by a boxed and a packed context so the two
   representations are value-comparable. *)
let both_ctx () =
  let st = Random.State.make seed in
  let omega = Zmod.random_root_of_unity ~p:227 ~q:113 st in
  (Fpair.make_ctx ~omega (), Fpacked.make_ctx ~omega ())

let test_packable () =
  Alcotest.(check bool) "defaults" true (Fpacked.packable ~p:227 ~q:113);
  Alcotest.(check bool) "large p" false (Fpacked.packable ~p:1999 ~q:113);
  Alcotest.(check bool) "large q" false (Fpacked.packable ~p:227 ~q:409);
  Alcotest.(check bool) "degenerate" false (Fpacked.packable ~p:1 ~q:1)

(* Every (a, b) pair of both fields at once: the packed ops must agree
   with scalar Zmod arithmetic componentwise. 227^2 pairs cover the
   q-component too (values are taken mod 113). *)
let test_packed_exhaustive_componentwise () =
  let _, c = both_ctx () in
  for a = 0 to 226 do
    for b = 0 to 226 do
      let aq = a mod 113 and bq = b mod 113 in
      let x = Fpacked.pack a aq and y = Fpacked.pack b bq in
      let check name op zop =
        let r = op c x y in
        Alcotest.(check int)
          (Printf.sprintf "%s vp %d %d" name a b)
          (zop ~modulus:227 a b) (Fpacked.vp r);
        Alcotest.(check int)
          (Printf.sprintf "%s vq %d %d" name a b)
          (zop ~modulus:113 aq bq) (Fpacked.vq r)
      in
      check "add" Fpacked.add Zmod.add;
      check "sub" Fpacked.sub Zmod.sub;
      check "mul" Fpacked.mul Zmod.mul;
      if b <> 0 && bq <> 0 then check "div" Fpacked.div Zmod.div
    done
  done

let test_packed_div_by_zero () =
  let _, c = both_ctx () in
  Alcotest.check_raises "zero Z_p divisor" Zmod.Division_by_zero (fun () ->
      ignore (Fpacked.div c Fpacked.one (Fpacked.pack 0 5)));
  Alcotest.check_raises "zero Z_q divisor, both carry q"
    Zmod.Division_by_zero (fun () ->
      ignore (Fpacked.div c Fpacked.one (Fpacked.pack 5 0)));
  (* A consumed Z_q component skips the q division entirely. *)
  let r = Fpacked.div c (Fpacked.without_q 10) (Fpacked.pack 5 0) in
  Alcotest.(check int) "p division still happens" (Zmod.div ~modulus:227 10 5)
    (Fpacked.vp r);
  Alcotest.(check bool) "result has no q" false (Fpacked.has_q r)

let test_packed_exp_table () =
  let bc, c = both_ctx () in
  for v = 0 to 112 do
    let packed = Fpacked.exp c (Fpacked.pack 7 v) in
    let boxed = Fpair.exp bc { Fpair.vp = 7; vq = Some v } in
    Alcotest.(check int)
      (Printf.sprintf "omega^%d" v)
      boxed.Fpair.vp (Fpacked.vp packed);
    Alcotest.(check bool) "q consumed" false (Fpacked.has_q packed)
  done;
  Alcotest.check_raises "second exp is non-LAX" Fpair.Not_lax (fun () ->
      ignore (Fpacked.exp c (Fpacked.exp c Fpacked.one)))

let test_packed_equal_semantics () =
  Alcotest.(check bool) "q ignored when one side consumed" true
    (Fpacked.equal (Fpacked.pack 5 7) (Fpacked.without_q 5));
  Alcotest.(check bool) "q compared when both carry it" false
    (Fpacked.equal (Fpacked.pack 5 7) (Fpacked.pack 5 8));
  Alcotest.(check bool) "p always compared" false
    (Fpacked.equal (Fpacked.without_q 5) (Fpacked.without_q 6))

(* A packed/boxed value generator covering consumed-q values too. *)
let gen_pair_value =
  QCheck2.Gen.(
    map2
      (fun vp vq -> { Fpair.vp; vq })
      (int_range 0 226)
      (oneof [ map (fun v -> Some v) (int_range 0 112); return None ]))

let prop_packed_matches_fpair =
  let cs = Lazy.from_fun both_ctx in
  qcheck ~count:500 "packed ops = boxed ops through of_fpair/to_fpair"
    QCheck2.Gen.(pair gen_pair_value gen_pair_value)
    (fun (a, b) ->
      let bc, c = Lazy.force cs in
      let pa = Fpacked.of_fpair a and pb = Fpacked.of_fpair b in
      let same op pop =
        let boxed = try Ok (op bc a b) with e -> Error e in
        let packed =
          try Ok (Fpacked.to_fpair (pop c pa pb)) with e -> Error e
        in
        match boxed, packed with
        | Ok x, Ok y ->
            x.Fpair.vp = y.Fpair.vp
            && (match x.Fpair.vq, y.Fpair.vq with
               | Some u, Some v -> u = v
               | None, None -> true
               | _ -> false)
        | Error x, Error y -> x = y
        | _ -> false
      in
      same Fpair.add Fpacked.add
      && same Fpair.sub Fpacked.sub
      && same Fpair.mul Fpacked.mul
      && same Fpair.div Fpacked.div
      && same (fun c x _ -> Fpair.exp c x) (fun c x _ -> Fpacked.exp c x)
      &&
      (* Fpair has no pow; check componentwise against Zmod. *)
      let r = Fpacked.pow c pa 5 in
      Fpacked.vp r = Zmod.pow ~modulus:227 a.Fpair.vp 5
      &&
      match a.Fpair.vq with
      | Some v ->
          Fpacked.has_q r && Fpacked.vq r = Zmod.pow ~modulus:113 v 5
      | None -> not (Fpacked.has_q r))

let prop_packed_roundtrip =
  qcheck "of_fpair/to_fpair roundtrips" gen_pair_value (fun v ->
      let v' = Fpacked.to_fpair (Fpacked.of_fpair v) in
      v'.Fpair.vp = v.Fpair.vp && v'.Fpair.vq = v.Fpair.vq)

let test_packed_random_stream () =
  (* Same RNG consumption order: a shared seed yields identical values. *)
  let bc, c = both_ctx () in
  let s1 = Random.State.make [| 11 |] and s2 = Random.State.make [| 11 |] in
  for _ = 1 to 200 do
    let boxed = Fpair.random bc s1 and packed = Fpacked.random c s2 in
    Alcotest.(check int) "vp" boxed.Fpair.vp (Fpacked.vp packed);
    Alcotest.(check int) "vq"
      (Option.get boxed.Fpair.vq)
      (Fpacked.vq packed)
  done

(* The monomorphic matmul kernel against the generic fold over the boxed
   representation, across batched/broadcast shapes and consumed-q values
   (what [Dense.matmul] dispatches on the repr witness). *)
let prop_packed_matmul_kernel =
  let cs = Lazy.from_fun both_ctx in
  let gen =
    QCheck2.Gen.(
      pair
        (pair (int_range 1 3) (int_range 1 4))
        (pair (pair (int_range 1 5) (int_range 1 4)) (int_range 0 1000)))
  in
  qcheck ~count:100 "packed Dense.matmul = boxed Dense.matmul" gen
    (fun ((batch, m), ((k, n), s)) ->
      let bc, c = Lazy.force cs in
      let st = Random.State.make [| s |] in
      let mk shape =
        let numel = Array.fold_left ( * ) 1 shape in
        Array.init numel (fun _ ->
            let v = Fpair.random bc st in
            (* Sprinkle consumed-q values to exercise flag propagation. *)
            if Random.State.int st 10 = 0 then
              { v with Fpair.vq = None }
            else v)
      in
      let a_raw = mk [| batch; m; k |] and b_raw = mk [| k; n |] in
      let boxed =
        Tensor.Dense.matmul
          (Tensor.Element.fpair_ops bc)
          (Tensor.Dense.create [| batch; m; k |] a_raw)
          (Tensor.Dense.create [| k; n |] b_raw)
      in
      let packed =
        Tensor.Dense.matmul
          (Tensor.Element.fpacked_ops c)
          (Tensor.Dense.create [| batch; m; k |]
             (Array.map Fpacked.of_fpair a_raw))
          (Tensor.Dense.create [| k; n |] (Array.map Fpacked.of_fpair b_raw))
      in
      Tensor.Shape.equal
        (Tensor.Dense.shape boxed)
        (Tensor.Dense.shape packed)
      &&
      let ok = ref true in
      for i = 0 to Tensor.Dense.numel boxed - 1 do
        if
          not
            (Fpair.equal
               (Tensor.Dense.get_linear boxed i)
               (Fpacked.to_fpair (Tensor.Dense.get_linear packed i)))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "ffield"
    [
      ( "zmod",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "inv" `Quick test_inv;
          Alcotest.test_case "is_prime" `Quick test_is_prime;
          Alcotest.test_case "default primes" `Quick test_default_primes;
          Alcotest.test_case "roots of unity" `Quick test_roots_of_unity;
          Alcotest.test_case "random root" `Quick test_random_root;
          Alcotest.test_case "primitive root" `Quick test_primitive_root;
          Alcotest.test_case "tonelli-shanks" `Quick test_sqrt_opt;
          prop_add_assoc;
          prop_mul_distrib;
          prop_div_mul;
        ] );
      ( "fpair",
        [
          Alcotest.test_case "ring laws" `Quick test_fpair_ring;
          Alcotest.test_case "exp homomorphism" `Quick
            test_fpair_exp_homomorphism;
          Alcotest.test_case "exp consumes Z_q" `Quick
            test_fpair_exp_consumes_q;
          Alcotest.test_case "division by zero" `Quick test_fpair_div_by_zero;
          Alcotest.test_case "sqrt/silu unsupported" `Quick
            test_fpair_unsupported;
          Alcotest.test_case "ctx validation" `Quick test_make_ctx_validation;
          prop_fpair_distrib;
        ] );
      ( "fpacked",
        [
          Alcotest.test_case "packable" `Quick test_packable;
          Alcotest.test_case "exhaustive componentwise vs Zmod" `Quick
            test_packed_exhaustive_componentwise;
          Alcotest.test_case "division by zero" `Quick test_packed_div_by_zero;
          Alcotest.test_case "exp table" `Quick test_packed_exp_table;
          Alcotest.test_case "equal semantics" `Quick
            test_packed_equal_semantics;
          Alcotest.test_case "random stream parity" `Quick
            test_packed_random_stream;
          prop_packed_matches_fpair;
          prop_packed_roundtrip;
          prop_packed_matmul_kernel;
        ] );
    ]
