(* Cross-cutting property tests on randomly generated tensor programs:
   the reference interpreter, the finite-field verifier, the symbolic
   verifier, thread fusion, abstract expressions, and the cost model must
   all agree with each other on arbitrary well-formed graphs. *)

open Mugraph
module RT = Verify.Random_test

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:Graph_gen.print_spec gen prop)

let qtest_g ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:Pretty.kernel_graph_to_string gen
       prop)

(* 1. Every generated LAX graph passes the LAX check. *)
let prop_generated_graphs_are_lax =
  qtest_g "generated graphs are LAX"
    (Graph_gen.gen_graph ~lax_only:true ())
    (fun g -> Verify.Lax.is_lax g)

(* 2. The finite-field verifier never rejects a graph against itself
      (no false negatives, Theorem 3's deterministic half). *)
let prop_self_equivalence_probabilistic =
  qtest_g "probabilistic verifier: g ~ g"
    (Graph_gen.gen_graph ~lax_only:true ())
    (fun g ->
      match RT.equivalent ~trials:2 ~spec:g g with
      | RT.Equivalent -> true
      | RT.Rejected m ->
          (* only unlucky all-zero-divisor streaks are tolerated *)
          Astring_contains.contains m "resamples"
      | RT.Not_equivalent _ -> false)

(* 3. The symbolic verifier agrees: g ~ g, exactly. *)
let prop_self_equivalence_symbolic =
  qtest_g ~count:40 "symbolic verifier: g ~ g"
    (Graph_gen.gen_graph ~lax_only:false ())
    (fun g ->
      match Verify.Symbolic.equivalent ~spec:g g with
      | Verify.Symbolic.Equivalent | Verify.Symbolic.Too_large _ -> true
      | Verify.Symbolic.Not_equivalent _ -> false)

(* 4. Interpreting over floats is deterministic and shape-correct. *)
let prop_interpreter_shapes =
  qtest "interpreter respects inferred shapes"
    (Graph_gen.gen_with_inputs ())
    (fun s ->
      let outs =
        Interp.eval_kernel Tensor.Element.float_ops s.Graph_gen.graph
          ~inputs:s.Graph_gen.float_inputs
      in
      let expected = Infer.output_shapes s.Graph_gen.graph in
      List.for_all2
        (fun t sh -> Tensor.Shape.equal (Tensor.Dense.shape t) sh)
        outs expected)

(* 5. Thread fusion preserves the computed function (floats). *)
let graphdef_gen =
  (* wrap a generated elementwise-ish block into a graphdef via the
     simplest schedule: one block, no loop *)
  QCheck2.Gen.map
    (fun (b, d, grid) -> Baselines.Templates.ntrans_fused ~b ~d ~grid)
    QCheck2.Gen.(
      let* b = oneofl [ 4; 8 ] in
      let* d = oneofl [ 16; 32 ] in
      let* grid = oneofl [ 2; 4 ] in
      return (b, d, grid))

let prop_thread_fusion_preserves_function =
  qtest_g ~count:20 "thread fusion preserves semantics" graphdef_gen
    (fun g ->
      let fused = Search.Thread_fuse.fuse_kernel g in
      let st = Random.State.make [| 77 |] in
      let inputs =
        List.map
          (fun shape ->
            Tensor.Dense.init shape (fun _ ->
                0.25 +. Random.State.float st 1.0))
          (Graph.input_shapes g)
      in
      let a = Interp.eval_kernel Tensor.Element.float_ops g ~inputs in
      let b = Interp.eval_kernel Tensor.Element.float_ops fused ~inputs in
      List.for_all2
        (Tensor.Dense.equal (fun x y ->
             Tensor.Element.float_approx_equal ~rtol:1e-6 x y))
        a b)

(* 6. The abstract expression of a graph is invariant under thread
      fusion (fusion is a schedule transformation). *)
let prop_fusion_preserves_abstract_expr =
  qtest_g ~count:20 "fusion preserves abstract expressions" graphdef_gen
    (fun g ->
      let fused = Search.Thread_fuse.fuse_kernel g in
      List.for_all2 Absexpr.Nf.equivalent
        (Abstract.output_exprs g)
        (Abstract.output_exprs fused))

(* 7. Cost model totals are positive, finite, and monotone in devices'
      favor (H100 never slower in the model). *)
let prop_cost_model_sane =
  qtest_g "cost model sane on random graphs"
    (Graph_gen.gen_graph ~lax_only:false ())
    (fun g ->
      let ca = Gpusim.Cost.cost Gpusim.Device.a100 g in
      let ch = Gpusim.Cost.cost Gpusim.Device.h100 g in
      Float.is_finite ca.Gpusim.Cost.total_us
      && ca.Gpusim.Cost.total_us >= 0.0
      && ch.Gpusim.Cost.total_us <= ca.Gpusim.Cost.total_us +. 1e-9)

(* 8. Partitioning random graphs: LAX pieces contain no ReLU; the number
      of pieces is at least 1; pieces validate. *)
let prop_partition_sound =
  qtest_g ~count:60 "partition: pieces valid, relu isolated"
    (Graph_gen.gen_graph ~lax_only:false ())
    (fun g ->
      let p = Mirage.Partition.partition g in
      List.for_all
        (fun (piece : Mirage.Partition.piece) ->
          (match Graph.validate piece.Mirage.Partition.graph with
          | () -> true
          | exception Graph.Ill_formed _ -> false)
          &&
          if piece.Mirage.Partition.lax then
            Verify.Lax.is_lax piece.Mirage.Partition.graph
            || Verify.Lax.max_exp_depth piece.Mirage.Partition.graph > 1
          else true)
        p.Mirage.Partition.pieces)

(* 9. Abstract expressions: a graph's output expression is a subexpression
      of itself and every input variable is a subexpression of it. *)
let prop_output_expr_contains_inputs =
  qtest_g "inputs are subexpressions of outputs"
    (Graph_gen.gen_graph ~lax_only:true ())
    (fun g ->
      let goal = Absexpr.Nf.of_expr (List.hd (Abstract.output_exprs g)) in
      (* find which inputs the output actually depends on *)
      let rec vars (e : Absexpr.Expr.t) acc =
        match e with
        | Absexpr.Expr.Var v -> v :: acc
        | Absexpr.Expr.Add (a, b)
        | Absexpr.Expr.Mul (a, b)
        | Absexpr.Expr.Div (a, b) ->
            vars a (vars b acc)
        | Absexpr.Expr.Exp a
        | Absexpr.Expr.Sqrt a
        | Absexpr.Expr.Silu a
        | Absexpr.Expr.Sum (_, a) ->
            vars a acc
      in
      let used = vars (List.hd (Abstract.output_exprs g)) [] in
      List.for_all
        (fun v ->
          Absexpr.Nf.is_subexpr (Absexpr.Nf.nf_var v) goal)
        used)

(* 10. Incremental NF construction agrees with wholesale normalization
       on every tensor of random graphs (via Abstract.kernel_exprs paths,
       exercised through output_exprs + prim_nf in the enumerators). *)
let prop_incremental_nf_agrees =
  qtest_g "Nf incremental = Nf.of_expr"
    (Graph_gen.gen_graph ~lax_only:true ())
    (fun g ->
      let shapes = Infer.kernel_shapes g in
      let exprs = Abstract.kernel_exprs g in
      (* recompute each node's nf incrementally from its input NFs *)
      let nfs = Array.make (Array.length g.Graph.knodes) [||] in
      let ok = ref true in
      Array.iteri
        (fun i (node : Graph.kernel_node) ->
          match node.Graph.kop with
          | Graph.K_input { name; _ } ->
              nfs.(i) <- [| Absexpr.Nf.nf_var name |]
          | Graph.K_prim p ->
              let in_nfs =
                List.map
                  (fun ({ node = j; port } : Graph.tensor_ref) ->
                    nfs.(j).(port))
                  node.Graph.kins
              in
              let in_shapes =
                List.map
                  (fun ({ node = j; port } : Graph.tensor_ref) ->
                    shapes.(j).(port))
                  node.Graph.kins
              in
              let inc = Abstract.prim_nf p ~in_shapes in_nfs in
              let whole = Absexpr.Nf.of_expr exprs.(i).(0) in
              if not (Absexpr.Nf.equal inc whole) then ok := false;
              nfs.(i) <- [| inc |]
          | Graph.K_graphdef _ -> ())
        g.Graph.knodes;
      !ok)

(* 11. Work-stealing determinism: the enumeration candidate set and the
       selected winner are independent of the domain count (and hence of
       the steal schedule). A low spawn cutoff forces subtree spawning
       even on small graphs, so the multi-domain runs genuinely steal. *)
let enum_config spec =
  let base =
    {
      Search.Config.default with
      Search.Config.grid_candidates = [ [| 2 |] ];
      forloop_candidates = [ [| 2 |] ];
      max_block_ops = 3;
      num_workers = 1;
      steal_depth_cutoff = 1;
      time_budget_s = 300.0;
    }
  in
  Search.Config.for_spec ~base spec

let sorted_candidates cfg ~spec =
  let solver = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  let stats = Search.Stats.create () in
  let limits = Gpusim.Device.limits Gpusim.Device.a100 in
  let budget = Search.Budget.of_config cfg in
  let cands, _, fails =
    Search.Generator.generate cfg ~spec ~solver ~stats ~limits ~budget ()
  in
  if fails > 0 then failwith "enumeration task crashed";
  List.sort Stdlib.compare (List.map snd cands)

let prop_enum_schedule_independent =
  qtest_g ~count:4 "enumeration independent of domain count"
    (Graph_gen.gen_graph ~lax_only:true ())
    (fun spec ->
      let at workers =
        { (enum_config spec) with Search.Config.num_workers = workers }
      in
      let base = sorted_candidates (at 1) ~spec in
      List.for_all
        (fun w ->
          let cs = sorted_candidates (at w) ~spec in
          List.length cs = List.length base
          && List.for_all2 Graph.equal cs base)
        [ 2; 4; 8 ]
      &&
      let winner workers =
        let o =
          Search.Generator.run ~config:(at workers) ~verify_trials:1
            ~device:Gpusim.Device.a100 ~spec ()
        in
        match o.Search.Generator.best with
        | Some r -> Some r.Search.Generator.graph
        | None -> None
      in
      let w1 = winner 1 in
      List.for_all
        (fun w ->
          match (winner w, w1) with
          | Some a, Some b -> Graph.equal a b
          | None, None -> true
          | _ -> false)
        [ 2; 4; 8 ])

let () =
  Alcotest.run "properties"
    [
      ( "cross-component",
        [
          prop_generated_graphs_are_lax;
          prop_self_equivalence_probabilistic;
          prop_self_equivalence_symbolic;
          prop_interpreter_shapes;
          prop_thread_fusion_preserves_function;
          prop_fusion_preserves_abstract_expr;
          prop_cost_model_sane;
          prop_partition_sound;
          prop_output_expr_contains_inputs;
          prop_incremental_nf_agrees;
          prop_enum_schedule_independent;
        ] );
    ]
