(* Tests for the optimization service: the canonical request
   fingerprint (α-invariance, semantic sensitivity, collision scan),
   the two-tier result cache (roundtrip, LRU, corruption quarantine),
   the differential end-to-end check (server answer == direct
   Search.Generator answer for every Fig. 7 workload; warm reply
   byte-identical to cold), the single-flight concurrency guarantee
   (N domains, one search), and the shared prune helper's single
   stats/journal site. *)

open Mugraph
module J = Obs.Jsonw

let reset () =
  Obs.Fault.clear ();
  Obs.Budget.reset_degradations ()

let with_reset f () =
  reset ();
  Fun.protect ~finally:reset f

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let small_config () =
  {
    Search.Config.default with
    Search.Config.grid_candidates = [ [| 2 |] ];
    forloop_candidates = [ [| 2 |] ];
    max_block_ops = 3;
    num_workers = 1;
    time_budget_s = 90.0;
  }

let prim bld p ins = Graph.Build.prim bld p ins

(* y = (X / C) @ W — the spec used throughout the resilience suite. *)
let div_matmul_spec ?(names = ("X", "C", "W")) ~b ~h ~d () =
  let nx, nc, nw = names in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld nx [| b; h |] in
  let c = Graph.Build.input bld nc [| b; 1 |] in
  let w = Graph.Build.input bld nw [| h; d |] in
  let y = prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

let fp ?(device = Gpusim.Device.a100) ?config g =
  let config = match config with Some c -> c | None -> small_config () in
  Service.Fingerprint.make ~device ~config g

(* --- fingerprint: unit ------------------------------------------------ *)

let test_fp_alpha_invariant () =
  let a = div_matmul_spec ~b:4 ~h:8 ~d:8 () in
  let b = div_matmul_spec ~names:("input", "scale", "weights") ~b:4 ~h:8 ~d:8 () in
  Alcotest.(check string) "renamed inputs, same fingerprint" (fp a) (fp b)

let test_fp_semantic_mutations () =
  let base = div_matmul_spec ~b:4 ~h:8 ~d:8 () in
  (* shape change *)
  Alcotest.(check bool) "shape change alters fp" true
    (fp base <> fp (div_matmul_spec ~b:4 ~h:8 ~d:16 ()));
  (* op swap *)
  let op_swapped =
    let bld = Graph.Build.create () in
    let x = Graph.Build.input bld "X" [| 4; 8 |] in
    let c = Graph.Build.input bld "C" [| 4; 1 |] in
    let w = Graph.Build.input bld "W" [| 8; 8 |] in
    let y = prim bld (Op.Binary Op.Mul) [ x; c ] in
    let z = prim bld Op.Matmul [ y; w ] in
    Graph.Build.finish bld ~outputs:[ z ]
  in
  Alcotest.(check bool) "op swap (Div -> Mul) alters fp" true
    (fp base <> fp op_swapped);
  (* edge rewire *)
  let rewired =
    let bld = Graph.Build.create () in
    let x = Graph.Build.input bld "X" [| 4; 8 |] in
    let _c = Graph.Build.input bld "C" [| 4; 1 |] in
    let w = Graph.Build.input bld "W" [| 8; 8 |] in
    let y = prim bld (Op.Binary Op.Div) [ x; x ] in
    let z = prim bld Op.Matmul [ y; w ] in
    Graph.Build.finish bld ~outputs:[ z ]
  in
  Alcotest.(check bool) "edge rewire alters fp" true (fp base <> fp rewired)

let test_fp_device_and_config () =
  let g = div_matmul_spec ~b:4 ~h:8 ~d:8 () in
  Alcotest.(check bool) "device parameters matter" true
    (fp ~device:Gpusim.Device.a100 g <> fp ~device:Gpusim.Device.h100 g);
  let renamed = { Gpusim.Device.a100 with Gpusim.Device.name = "A100-label" } in
  Alcotest.(check string) "device name is a label, not semantics"
    (fp ~device:Gpusim.Device.a100 g)
    (fp ~device:renamed g);
  let cfg = small_config () in
  Alcotest.(check string) "budget/worker/verify-path fields ignored"
    (fp ~config:cfg g)
    (fp
       ~config:
         {
           cfg with
           Search.Config.time_budget_s = 1.0;
           num_workers = 16;
           node_budget = 7;
           max_task_failures = 9;
           verify_fast_path = not cfg.Search.Config.verify_fast_path;
         }
       g);
  Alcotest.(check bool) "search-shaping fields matter" true
    (fp ~config:cfg g
    <> fp ~config:{ cfg with Search.Config.max_block_ops = 9 } g)

(* --- fingerprint: properties ------------------------------------------ *)

(* Rename every K_input in a codec JSON document with an injective
   salt-suffixed map — an α-renaming at the wire level. *)
let rec rename_inputs salt j =
  match j with
  | J.Obj fields when List.mem_assoc "k" fields -> (
      match (List.assoc "k" fields, List.assoc_opt "name" fields) with
      | J.Str "input", Some (J.Str old) ->
          J.Obj
            (List.map
               (fun (k, v) ->
                 if k = "name" then
                   (k, J.Str (Printf.sprintf "%s_r%d" old salt))
                 else (k, rename_inputs salt v))
               fields)
      | _ ->
          J.Obj (List.map (fun (k, v) -> (k, rename_inputs salt v)) fields))
  | J.Obj fields ->
      J.Obj (List.map (fun (k, v) -> (k, rename_inputs salt v)) fields)
  | J.List l -> J.List (List.map (rename_inputs salt) l)
  | _ -> j

let prop_alpha_renaming =
  QCheck2.Test.make ~count:100 ~name:"fingerprint invariant under α-renaming"
    QCheck2.Gen.(pair (Graph_gen.gen_graph ()) (int_range 1 1_000_000))
    (fun (g, salt) ->
      let renamed_json =
        rename_inputs salt (Search.Checkpoint.graph_to_json g)
      in
      match Search.Checkpoint.graph_of_json renamed_json with
      | Error m -> QCheck2.Test.fail_reportf "renamed graph rejected: %s" m
      | Ok g' -> fp g = fp g')

let test_fp_collision_scan () =
  (* 1k generated graph pairs: distinct canonical documents must never
     share a fingerprint. *)
  let rand = Random.State.make [| 0x5eed |] in
  let graphs =
    QCheck2.Gen.generate ~rand ~n:1000 (Graph_gen.gen_graph ())
  in
  let cfg = small_config () in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  let collisions = ref 0 in
  List.iter
    (fun g ->
      let canon =
        J.to_string
          (Service.Fingerprint.canonical_json ~device:Gpusim.Device.a100
             ~config:cfg g)
      in
      let h = fp g in
      match Hashtbl.find_opt seen h with
      | Some canon' when canon' <> canon -> incr collisions
      | Some _ -> ()
      | None -> Hashtbl.add seen h canon)
    graphs;
  Alcotest.(check int) "no fingerprint collisions" 0 !collisions;
  Alcotest.(check bool) "scan exercised many distinct documents" true
    (Hashtbl.length seen > 100)

(* --- cache ------------------------------------------------------------ *)

let counter_value registry name = Obs.Metrics.value (Obs.Metrics.counter registry name)

let payload_of_int i =
  J.Obj [ ("schema", J.Str "test.payload"); ("i", J.Int i) ]

let test_cache_roundtrip () =
  let registry = Obs.Metrics.create () in
  let dir = tmpdir "mirage_cache" in
  let c = Service.Cache.create ~mem_capacity:8 ~registry ~dir () in
  let fp1 = String.make 32 'a' in
  Alcotest.(check bool) "miss on empty" true (Service.Cache.find c fp1 = None);
  Service.Cache.store c fp1 (payload_of_int 1);
  (match Service.Cache.find c fp1 with
  | Some p -> Alcotest.(check string) "mem hit" (J.to_string (payload_of_int 1)) (J.to_string p)
  | None -> Alcotest.fail "expected a memory hit");
  Service.Cache.clear_mem c;
  (match Service.Cache.find c fp1 with
  | Some p ->
      Alcotest.(check string) "disk hit after clear_mem"
        (J.to_string (payload_of_int 1))
        (J.to_string p)
  | None -> Alcotest.fail "expected a disk hit");
  Alcotest.(check int) "one disk hit counted" 1
    (counter_value registry "service.cache.hit.disk");
  Alcotest.(check bool) "at least one mem hit counted" true
    (counter_value registry "service.cache.hit.mem" >= 1)

let test_cache_lru () =
  let registry = Obs.Metrics.create () in
  let dir = tmpdir "mirage_cache" in
  let c = Service.Cache.create ~mem_capacity:2 ~registry ~dir () in
  let k i = Printf.sprintf "%032d" i in
  List.iter (fun i -> Service.Cache.store c (k i) (payload_of_int i)) [ 1; 2; 3 ];
  Alcotest.(check int) "memory tier capped" 2 (Service.Cache.mem_entries c);
  Alcotest.(check int) "all entries on disk" 3 (Service.Cache.disk_entries c);
  Alcotest.(check int) "evictions counted" 1
    (counter_value registry "service.cache.evict");
  (* the evicted (oldest) entry is still servable from disk *)
  match Service.Cache.find c (k 1) with
  | Some p ->
      Alcotest.(check string) "evicted entry refilled from disk"
        (J.to_string (payload_of_int 1))
        (J.to_string p)
  | None -> Alcotest.fail "evicted entry lost"

let test_cache_quarantine () =
  let registry = Obs.Metrics.create () in
  let dir = tmpdir "mirage_cache" in
  let c = Service.Cache.create ~mem_capacity:8 ~registry ~dir () in
  let corrupt fp content =
    Service.Cache.store c fp (payload_of_int 9);
    let oc = open_out (Service.Cache.entry_path c fp) in
    output_string oc content;
    close_out oc;
    Service.Cache.clear_mem c
  in
  (* unparsable bytes *)
  let fp1 = String.make 32 'b' in
  corrupt fp1 "not json at all {{{";
  Alcotest.(check bool) "corrupt entry is a miss, not a crash" true
    (Service.Cache.find c fp1 = None);
  (* wrong schema *)
  let fp2 = String.make 32 'c' in
  corrupt fp2 {|{"schema":"something.else","fingerprint":"x","payload":{}}|};
  Alcotest.(check bool) "foreign schema is a miss" true
    (Service.Cache.find c fp2 = None);
  (* fingerprint mismatch *)
  let fp3 = String.make 32 'd' in
  corrupt fp3
    (J.to_string
       (J.Obj
          [
            ("schema", J.Str Service.Cache.entry_schema);
            ("fingerprint", J.Str (String.make 32 'z'));
            ("payload", payload_of_int 1);
          ]));
  Alcotest.(check bool) "fingerprint mismatch is a miss" true
    (Service.Cache.find c fp3 = None);
  Alcotest.(check int) "all three quarantined" 3
    (counter_value registry "service.cache.quarantine");
  Alcotest.(check int) "quarantined entries left the store" 0
    (Service.Cache.disk_entries c);
  (* the slot is reusable after quarantine *)
  Service.Cache.store c fp1 (payload_of_int 42);
  match Service.Cache.find c fp1 with
  | Some p ->
      Alcotest.(check string) "slot reusable after quarantine"
        (J.to_string (payload_of_int 42))
        (J.to_string p)
  | None -> Alcotest.fail "store after quarantine failed"

(* --- differential end-to-end ------------------------------------------ *)

let get_exn path j =
  let rec go j = function
    | [] -> j
    | k :: rest -> (
        match J.member k j with
        | Some v -> go v rest
        | None -> Alcotest.fail (Printf.sprintf "response lacks %s" k))
  in
  go j path

let make_server ?(mem_capacity = 64) () =
  let registry = Obs.Metrics.create () in
  Service.Server.create ~mem_capacity ~registry ~device:Gpusim.Device.a100
    ~base_config:(small_config ()) ~verify_trials:2
    ~socket_path:(Filename.temp_file "mirage_sock" ".sock")
    ~cache_dir:(tmpdir "mirage_srv_cache") ()

let optimize_req name = J.Obj [ ("op", J.Str "optimize"); ("benchmark", J.Str name) ]

let test_differential =
  with_reset @@ fun () ->
  let server = make_server () in
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let name = b.Workloads.Bench_defs.name in
      (* cold: the server runs the search *)
      let cold = Service.Server.handle_request server (optimize_req name) in
      Alcotest.(check string)
        (name ^ ": cold status ok") "ok"
        (match get_exn [ "status" ] cold with J.Str s -> s | _ -> "?");
      Alcotest.(check bool) (name ^ ": cold not cached") false
        (get_exn [ "cached" ] cold = J.Bool true);
      (* direct: the same derivation the server used, run by hand *)
      let spec, _ = b.Workloads.Bench_defs.reduced () in
      let config = Search.Config.for_spec ~base:(small_config ()) spec in
      let budget = Search.Budget.of_config config in
      let o =
        Search.Generator.run ~config ~verify_trials:2 ~budget
          ~device:Gpusim.Device.a100 ~spec ()
      in
      let direct_best =
        match o.Search.Generator.best with
        | Some bst -> bst
        | None -> Alcotest.fail "direct search returned no best"
      in
      Alcotest.(check string)
        (name ^ ": best muGraph identical")
        (J.to_string
           (Search.Checkpoint.graph_to_json direct_best.Search.Generator.graph))
        (J.to_string (get_exn [ "result"; "best"; "graph" ] cold));
      Alcotest.(check string)
        (name ^ ": best cost identical")
        (J.to_string (Gpusim.Cost.to_json direct_best.Search.Generator.cost))
        (J.to_string (get_exn [ "result"; "best"; "cost" ] cold));
      (* warm: byte-identical payload out of the cache *)
      let warm = Service.Server.handle_request server (optimize_req name) in
      Alcotest.(check bool) (name ^ ": warm is cached") true
        (get_exn [ "cached" ] warm = J.Bool true);
      Alcotest.(check string)
        (name ^ ": warm payload byte-identical to cold")
        (J.to_string (get_exn [ "result" ] cold))
        (J.to_string (get_exn [ "result" ] warm)))
    (Workloads.Bench_defs.all ())

(* --- single-flight concurrency ---------------------------------------- *)

let count_events events typ =
  List.length (List.filter (fun e -> Obs.Journal.typ_of e = typ) events)

let req_with_id name rid =
  J.Obj
    [
      ("op", J.Str "optimize");
      ("benchmark", J.Str name);
      ("request_id", J.Str rid);
    ]

let test_single_flight =
  with_reset @@ fun () ->
  let journal_path = Filename.temp_file "mirage_svc_journal" ".jsonl" in
  ignore (Obs.Journal.enable journal_path);
  Fun.protect ~finally:Obs.Journal.disable @@ fun () ->
  let server = make_server () in
  let n = 5 in
  let rids = List.init n (Printf.sprintf "sf-%d") in
  let domains =
    List.map
      (fun rid ->
        Domain.spawn (fun () ->
            Service.Server.handle_request server (req_with_id "rmsnorm" rid)))
      rids
  in
  let responses = List.map Domain.join domains in
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "request %d ok" i)
        "ok"
        (match get_exn [ "status" ] r with J.Str s -> s | _ -> "?"))
    responses;
  (* all clients got the same payload *)
  let payloads =
    List.map (fun r -> J.to_string (get_exn [ "result" ] r)) responses
  in
  List.iter
    (fun p -> Alcotest.(check string) "equal results across clients" (List.hd payloads) p)
    payloads;
  Obs.Journal.disable ();
  let events =
    match Obs.Journal.read_file journal_path with
    | Ok evs -> evs
    | Error m -> Alcotest.fail ("journal unreadable: " ^ m)
  in
  Alcotest.(check int) "exactly one underlying search" 1
    (count_events events "search.start");
  Alcotest.(check int) "every lifecycle completed" n
    (count_events events "request.done");
  (* trace propagation through coalescing: every lifecycle event carries
     its request's id, and each follower records the leader's *)
  let done_rids =
    List.filter_map
      (fun e ->
        if Obs.Journal.typ_of e = "request.done" then
          Some (Obs.Journal.rid_of e)
        else None)
      events
  in
  Alcotest.(check (list string))
    "every request id completed" (List.sort compare rids)
    (List.sort compare done_rids);
  List.iter
    (fun e ->
      if Obs.Journal.typ_of e = "request.coalesced" then begin
        let leader =
          match J.member "leader_rid" e with Some (J.Str s) -> s | _ -> "?"
        in
        Alcotest.(check bool) "leader_rid is one of the request ids" true
          (List.mem leader rids);
        Alcotest.(check bool) "follower's leader is another request" true
          (leader <> Obs.Journal.rid_of e)
      end)
    events

let test_corrupt_entry_researched =
  with_reset @@ fun () ->
  let journal_path = Filename.temp_file "mirage_svc_journal" ".jsonl" in
  ignore (Obs.Journal.enable journal_path);
  Fun.protect ~finally:Obs.Journal.disable @@ fun () ->
  let server = make_server () in
  let cache = Service.Server.cache server in
  let r1 = Service.Server.handle_request server (optimize_req "rmsnorm") in
  let fp =
    match get_exn [ "fingerprint" ] r1 with
    | J.Str s -> s
    | _ -> Alcotest.fail "no fingerprint"
  in
  (* corrupt the payload *semantically*: valid envelope, broken graph *)
  let oc = open_out (Service.Cache.entry_path cache fp) in
  output_string oc
    (J.to_string
       (J.Obj
          [
            ("schema", J.Str Service.Cache.entry_schema);
            ("fingerprint", J.Str fp);
            ( "payload",
              J.Obj [ ("best", J.Obj [ ("graph", J.Str "garbage") ]) ] );
          ]));
  close_out oc;
  Service.Cache.clear_mem cache;
  let r2 = Service.Server.handle_request server (optimize_req "rmsnorm") in
  Alcotest.(check string) "re-request survives corruption" "ok"
    (match get_exn [ "status" ] r2 with J.Str s -> s | _ -> "?");
  Alcotest.(check bool) "corrupt entry was not served" false
    (get_exn [ "cached" ] r2 = J.Bool true);
  Alcotest.(check string)
    "re-searched result equals the original"
    (J.to_string (get_exn [ "result"; "best"; "graph" ] r1))
    (J.to_string (get_exn [ "result"; "best"; "graph" ] r2));
  Obs.Journal.disable ();
  let events =
    match Obs.Journal.read_file journal_path with
    | Ok evs -> evs
    | Error m -> Alcotest.fail ("journal unreadable: " ^ m)
  in
  Alcotest.(check int) "corruption journaled as quarantine" 1
    (count_events events "cache.quarantine");
  Alcotest.(check int) "two searches: original and re-search" 2
    (count_events events "search.start")

(* --- telemetry: ids, metrics op, slow-request forensics ----------------- *)

let test_request_id_roundtrip =
  with_reset @@ fun () ->
  let server = make_server () in
  let r1 =
    Service.Server.handle_request server (req_with_id "rmsnorm" "r-echo.1")
  in
  Alcotest.(check string) "explicit id echoed" "r-echo.1"
    (match get_exn [ "request_id" ] r1 with J.Str s -> s | _ -> "?");
  let r2 = Service.Server.handle_request server (optimize_req "rmsnorm") in
  (match get_exn [ "request_id" ] r2 with
  | J.Str rid ->
      Alcotest.(check bool) "bare frame gets a valid minted id" true
        (Service.Reqid.valid rid)
  | _ -> Alcotest.fail "no request_id on response");
  match
    get_exn [ "request_id" ]
      (Service.Server.handle_request server (J.Obj [ ("op", J.Str "status") ]))
  with
  | J.Str _ -> ()
  | _ -> Alcotest.fail "status response lacks request_id"

let test_metrics_op =
  with_reset @@ fun () ->
  let server = make_server () in
  let _cold = Service.Server.handle_request server (optimize_req "rmsnorm") in
  let _warm = Service.Server.handle_request server (optimize_req "rmsnorm") in
  let m =
    Service.Server.handle_request server (J.Obj [ ("op", J.Str "metrics") ])
  in
  (match Service.Telemetry.check_snapshot m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot fails its own validator: %s" e);
  let outcome k =
    match get_exn [ "outcomes"; k ] m with J.Int i -> i | _ -> -1
  in
  Alcotest.(check int) "one miss (cold search)" 1 (outcome "miss");
  Alcotest.(check int) "one hit (warm cache)" 1 (outcome "hit");
  let hist name field =
    match get_exn [ "histograms"; name; field ] m with
    | J.Int i -> i
    | _ -> -1
  in
  Alcotest.(check int) "both requests in serve.total" 2
    (hist "serve.total" "count");
  Alcotest.(check int) "one search timed" 1 (hist "serve.search" "count");
  Alcotest.(check int) "both cache probes timed" 2
    (hist "serve.cache_probe" "count");
  (match get_exn [ "cache"; "hit_rate" ] m with
  | J.Float r ->
      Alcotest.(check (float 1e-9)) "hit rate 1 of 2" 0.5 r
  | _ -> Alcotest.fail "no cache.hit_rate");
  (* prometheus text format *)
  let p =
    Service.Server.handle_request server
      (J.Obj [ ("op", J.Str "metrics"); ("format", J.Str "prometheus") ])
  in
  match get_exn [ "text" ] p with
  | J.Str text ->
      Alcotest.(check bool) "prometheus text mentions the stage sketch" true
        (let sub = "serve_total" in
         let ls = String.length sub and lt = String.length text in
         let rec go i =
           i + ls <= lt && (String.sub text i ls = sub || go (i + 1))
         in
         go 0)
  | _ -> Alcotest.fail "no prometheus text"

let test_slow_forensics =
  with_reset @@ fun () ->
  let journal_path = Filename.temp_file "mirage_slow_journal" ".jsonl" in
  ignore (Obs.Journal.enable journal_path);
  Fun.protect ~finally:Obs.Journal.disable @@ fun () ->
  let slow_dir = tmpdir "mirage_slow" in
  let server =
    Service.Server.create
      ~registry:(Obs.Metrics.create ())
      ~device:Gpusim.Device.a100 ~base_config:(small_config ())
      ~verify_trials:2 ~slow_threshold_s:0.0 ~slow_dir
      ~socket_path:(Filename.temp_file "mirage_sock" ".sock")
      ~cache_dir:(tmpdir "mirage_srv_cache") ()
  in
  let rid = "r-slow.target" and other = "r-slow.other" in
  let r1 = Service.Server.handle_request server (req_with_id "rmsnorm" rid) in
  Alcotest.(check string) "slow request still ok" "ok"
    (match get_exn [ "status" ] r1 with J.Str s -> s | _ -> "?");
  (* a second, distinct request: its events must NOT leak into the
     first request's report *)
  let _r2 =
    Service.Server.handle_request server (req_with_id "gatedmlp" other)
  in
  let rdir = Filename.concat slow_dir rid in
  let report_path = Filename.concat rdir "report.json" in
  Alcotest.(check bool) "report directory written" true
    (Sys.file_exists report_path);
  (match
     Obs.Jsonw.of_string
       (In_channel.with_open_text report_path In_channel.input_all)
   with
  | Error m -> Alcotest.failf "report.json unparsable: %s" m
  | Ok rep ->
      Alcotest.(check string) "report schema" Service.Slowlog.report_schema
        (match get_exn [ "schema" ] rep with J.Str s -> s | _ -> "?");
      Alcotest.(check string) "report rid" rid
        (match get_exn [ "request_id" ] rep with J.Str s -> s | _ -> "?"));
  (* the acceptance invariant: the slice holds exactly this request's
     events — full lifecycle present, other requests absent *)
  (match Obs.Journal.read_file (Filename.concat rdir "journal.jsonl") with
  | Error m -> Alcotest.failf "journal slice unreadable: %s" m
  | Ok events ->
      Alcotest.(check bool) "slice non-empty" true (events <> []);
      List.iter
        (fun e ->
          Alcotest.(check string) "every sliced event carries the rid" rid
            (Obs.Journal.rid_of e))
        events;
      Alcotest.(check int) "request.recv in slice" 1
        (count_events events "request.recv");
      Alcotest.(check int) "request.done in slice" 1
        (count_events events "request.done");
      Alcotest.(check int) "the search itself is in the slice" 1
        (count_events events "search.start"));
  match Service.Server.slowlog server with
  | None -> Alcotest.fail "slowlog not armed"
  | Some sl ->
      Alcotest.(check bool) "captures counted" true
        (Service.Slowlog.captured sl >= 1)

(* --- shared prune helper ----------------------------------------------- *)

(* The refactor pinned one invariant: the helper is the single
   stats/journal site, so the journal's pruned_abstract rejects, the
   stats counter, and the funnel all agree — at both call sites
   (kernel_enum and block_enum) combined. *)
let test_prune_single_site =
  with_reset @@ fun () ->
  let journal_path = Filename.temp_file "mirage_prune_journal" ".jsonl" in
  ignore (Obs.Journal.enable journal_path);
  Fun.protect ~finally:Obs.Journal.disable @@ fun () ->
  let spec = div_matmul_spec ~b:2 ~h:4 ~d:4 () in
  let o =
    Search.Generator.run ~config:(small_config ()) ~device:Gpusim.Device.a100
      ~spec ()
  in
  let snap = o.Search.Generator.stats in
  Obs.Journal.disable ();
  let events =
    match Obs.Journal.read_file journal_path with
    | Ok evs -> evs
    | Error m -> Alcotest.fail ("journal unreadable: " ^ m)
  in
  let journaled =
    List.length
      (List.filter
         (fun e ->
           Obs.Journal.typ_of e = "cand.reject"
           && J.member "reason" e = Some (J.Str "pruned_abstract"))
         events)
  in
  Alcotest.(check bool) "the search exercised abstract pruning" true
    (snap.Search.Stats.pruned_abstract > 0);
  Alcotest.(check int) "journal and stats agree on every reject" journaled
    snap.Search.Stats.pruned_abstract

let test_prune_helper_equivalence () =
  (* The helper is exactly the old inline condition. *)
  let cfg = small_config () in
  let target =
    Mugraph.Abstract.output_exprs (div_matmul_spec ~b:4 ~h:8 ~d:8 ())
  in
  let solver = Smtlite.Solver.create ~target in
  let sub = Absexpr.Nf.of_expr (Absexpr.Expr.var "X") in
  let expected =
    cfg.Search.Config.use_abstract_pruning
    && not (Smtlite.Solver.check_subexpr_nf solver sub)
  in
  Alcotest.(check bool) "check mirrors the inline condition" expected
    (Search.Prune.check cfg ~solver sub);
  let off = { cfg with Search.Config.use_abstract_pruning = false } in
  Alcotest.(check bool) "pruning disabled -> never rejects" false
    (Search.Prune.check off ~solver sub)

(* --- persistent prune-query cache -------------------------------------- *)

(* Round trip through the content-addressed store: a cold search writes
   its decided queries behind; a second search over the same spec (fresh
   solver, same cache dir) answers misses from disk. *)
let test_prune_store_roundtrip =
  with_reset @@ fun () ->
  let dir = tmpdir "mirage_prunecache" in
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:8 () in
  let run_with cache =
    Search.Generator.run ~config:(small_config ())
      ~prune_persist:(Service.Prune_store.attach ~cache)
      ~device:Gpusim.Device.a100 ~spec ()
  in
  let cold = run_with (Service.Cache.create ~dir ()) in
  let sv = cold.Search.Generator.solver in
  Alcotest.(check bool) "cold run persisted decided queries" true
    (sv.Smtlite.Solver.disk_entries > 0);
  Alcotest.(check int) "cold run had no disk hits" 0
    sv.Smtlite.Solver.disk_hits;
  (* the envelope landed at the goals-keyed content address *)
  let probe = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  let fp = Service.Prune_store.fingerprint probe in
  let cache2 = Service.Cache.create ~dir () in
  Alcotest.(check bool) "entry on disk" true
    (Sys.file_exists (Service.Cache.entry_path cache2 fp));
  let warm = run_with cache2 in
  let wv = warm.Search.Generator.solver in
  Alcotest.(check bool) "warm run answered misses from disk" true
    (wv.Smtlite.Solver.disk_hits > 0);
  Alcotest.(check bool) "warm and cold agree on the best cost" true
    (match (cold.Search.Generator.best, warm.Search.Generator.best) with
    | Some a, Some b ->
        a.Search.Generator.cost.Gpusim.Cost.total_us
        = b.Search.Generator.cost.Gpusim.Cost.total_us
    | None, None -> true
    | _ -> false)

(* A tampered envelope is quarantined — at either layer — and the search
   degrades to a cold run instead of failing. *)
let test_prune_store_corrupt_quarantined =
  with_reset @@ fun () ->
  let dir = tmpdir "mirage_prunecache_bad" in
  let spec = div_matmul_spec ~b:4 ~h:8 ~d:8 () in
  let run_with cache =
    Search.Generator.run ~config:(small_config ())
      ~prune_persist:(Service.Prune_store.attach ~cache)
      ~device:Gpusim.Device.a100 ~spec ()
  in
  ignore (run_with (Service.Cache.create ~dir ()));
  let probe = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  let fp = Service.Prune_store.fingerprint probe in
  let path = Service.Cache.entry_path (Service.Cache.create ~dir ()) fp in
  (* layer 1: torn bytes on disk — the store's envelope check catches it *)
  let oc = open_out path in
  output_string oc "{\"torn\":";
  close_out oc;
  let cache = Service.Cache.create ~dir ~recover:false () in
  let o = run_with cache in
  Alcotest.(check int) "torn entry served no hits" 0
    o.Search.Generator.solver.Smtlite.Solver.disk_hits;
  Alcotest.(check bool) "search still produced a best" true
    (o.Search.Generator.best <> None);
  Alcotest.(check bool) "torn entry quarantined off the hot path" true
    (not (Sys.file_exists path)
    || Sys.file_exists (path ^ ".quarantined"));
  (* layer 2: a well-formed store entry whose payload is not a prune
     envelope — the solver's schema check hands it to p_corrupt *)
  let cache = Service.Cache.create ~dir () in
  Service.Cache.store cache fp (J.Obj [ ("schema", J.Str "bogus.v0") ]);
  let o2 = run_with cache in
  Alcotest.(check int) "foreign payload served no hits" 0
    o2.Search.Generator.solver.Smtlite.Solver.disk_hits;
  Alcotest.(check bool) "cold re-run re-persisted a fresh envelope" true
    (o2.Search.Generator.solver.Smtlite.Solver.disk_entries > 0)

(* --- progress streaming ------------------------------------------------ *)

(* In-process: a cold optimize that opted in receives at least one
   schema-valid, rid-tagged frame, and the counters never move
   backwards across the frame sequence. *)
let test_progress_frames =
  with_reset @@ fun () ->
  let server = make_server () in
  let spec = div_matmul_spec ~b:2 ~h:4 ~d:4 () in
  let req extra =
    J.Obj
      ([
         ("op", J.Str "optimize");
         ("graph", Search.Checkpoint.graph_to_json spec);
         ("request_id", J.Str "prog-1");
       ]
      @ extra)
  in
  let opted =
    req [ ("progress", J.Bool true); ("progress_interval_ms", J.Int 10) ]
  in
  let frames = ref [] in
  let resp =
    Service.Server.handle_request ~push:(fun f -> frames := f :: !frames)
      server opted
  in
  Alcotest.(check string) "cold status ok" "ok"
    (match J.member "status" resp with Some (J.Str s) -> s | _ -> "?");
  let frames = List.rev !frames in
  Alcotest.(check bool) "at least one frame streamed" true (frames <> []);
  List.iter
    (fun f ->
      (match Service.Proto.check_progress f with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid frame: %s" m);
      Alcotest.(check bool) "frame is a progress event" true
        (Service.Proto.is_progress f);
      Alcotest.(check string) "frame tagged with the request's rid" "prog-1"
        (match J.member "request_id" f with Some (J.Str s) -> s | _ -> "?"))
    frames;
  let ints k =
    List.map
      (fun f -> match J.member k f with Some (J.Int i) -> i | _ -> -1)
      frames
  in
  let monotone name xs =
    ignore
      (List.fold_left
         (fun prev x ->
           Alcotest.(check bool)
             (Printf.sprintf "%s monotone (%d -> %d)" name prev x)
             true (x >= prev);
           x)
         (-1) xs)
  in
  monotone "seq" (ints "seq");
  List.iteri
    (fun i s ->
      Alcotest.(check int) "seq dense from 0" i s)
    (ints "seq");
  monotone "nodes_expanded" (ints "nodes_expanded");
  monotone "candidates" (ints "candidates");
  monotone "verified" (ints "verified");
  monotone "tasks_stolen" (ints "tasks_stolen");
  (* warm: the cache answers, nothing streams *)
  let warm_frames = ref [] in
  let warm =
    Service.Server.handle_request
      ~push:(fun f -> warm_frames := f :: !warm_frames)
      server opted
  in
  Alcotest.(check bool) "warm served from cache" true
    (J.member "cached" warm = Some (J.Bool true));
  Alcotest.(check int) "cache hit streams no frames" 0
    (List.length !warm_frames)

(* Over the real socket: an opted-in cold request interleaves progress
   frames before the response; a legacy request's response stream is
   byte-identical with and without another client's opt-in — exactly
   one frame, same bytes as an opted-in warm request's only frame. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = Unix.read fd buf off (n - off) in
      if r = 0 then raise End_of_file;
      go (off + r)
    end
  in
  go 0;
  Bytes.to_string buf

let read_raw_frames fd =
  let rec go acc =
    match read_exact fd 4 with
    | exception End_of_file -> List.rev acc
    | hdr ->
        let b i = Char.code hdr.[i] in
        let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        go (read_exact fd n :: acc)
  in
  go []

let raw_request socket_path req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      Service.Proto.write_frame fd req;
      read_raw_frames fd)

let test_progress_wire =
  with_reset @@ fun () ->
  let server = make_server () in
  let socket_path = Filename.temp_file "mirage_prog_sock" ".sock" in
  Sys.remove socket_path;
  let server =
    (* a fresh server bound to a real socket (make_server's path is for
       in-process use); same config and a fresh cache *)
    ignore server;
    Service.Server.create ~registry:(Obs.Metrics.create ())
      ~device:Gpusim.Device.a100 ~base_config:(small_config ())
      ~verify_trials:2 ~socket_path
      ~cache_dir:(tmpdir "mirage_prog_cache") ()
  in
  Service.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Service.Server.wait server)
    (fun () ->
      Alcotest.(check bool) "daemon ready" true
        (Service.Client.wait_ready ~socket_path ());
      let spec = div_matmul_spec ~b:2 ~h:4 ~d:4 () in
      let req rid extra =
        J.Obj
          ([
             ("op", J.Str "optimize");
             ("graph", Search.Checkpoint.graph_to_json spec);
             ("request_id", J.Str rid);
           ]
          @ extra)
      in
      let opted =
        [ ("progress", J.Bool true); ("progress_interval_ms", J.Int 10) ]
      in
      (* cold, opted in: >= 1 progress frame strictly before the result *)
      let cold = raw_request socket_path (req "wire-cold" opted) in
      Alcotest.(check bool) "cold stream has >= 2 frames" true
        (List.length cold >= 2);
      let rec split_last = function
        | [] -> Alcotest.fail "empty stream"
        | [ x ] -> ([], x)
        | x :: rest ->
            let init, last = split_last rest in
            (x :: init, last)
      in
      let progress_raw, final_raw = split_last cold in
      List.iter
        (fun raw ->
          match J.of_string raw with
          | Error m -> Alcotest.failf "unparsable frame: %s" m
          | Ok f ->
              Alcotest.(check bool) "interleaved frame is progress" true
                (Service.Proto.is_progress f);
              (match Service.Proto.check_progress f with
              | Ok () -> ()
              | Error m -> Alcotest.failf "invalid frame: %s" m))
        progress_raw;
      (match J.of_string final_raw with
      | Ok f ->
          Alcotest.(check bool) "final frame is the response" false
            (Service.Proto.is_progress f)
      | Error m -> Alcotest.failf "unparsable response: %s" m);
      (* warm, legacy vs opted in, same rid: byte-identical single
         response frame — opting in costs a silent request nothing and
         legacy clients see exactly the old wire format *)
      let legacy = raw_request socket_path (req "wire-warm" []) in
      let withp = raw_request socket_path (req "wire-warm" opted) in
      Alcotest.(check int) "legacy stream is one frame" 1 (List.length legacy);
      Alcotest.(check int) "warm opted-in stream is one frame" 1
        (List.length withp);
      Alcotest.(check string) "byte-identical responses"
        (List.hd legacy) (List.hd withp))

(* --- hardening: admission, quotas, deadlines, crash-safe cache --------- *)

(* The three admission gates, exercised directly: each bound rejects
   with the right typed kind and retry hint, and releases restore
   capacity. Token-bucket math is checked against an injected clock. *)
let test_admit_gates () =
  let registry = Obs.Metrics.create () in
  let a =
    Service.Admit.create ~registry ~max_connections:2 ~max_queue_depth:1
      ~tenant_rate:0.5 ~tenant_burst:2.0 ~retry_after_s:0.25 ()
  in
  (* live-connection bound *)
  Alcotest.(check bool) "conn 1 admitted" true
    (Service.Admit.try_conn a = Service.Admit.Admitted);
  Alcotest.(check bool) "conn 2 admitted" true
    (Service.Admit.try_conn a = Service.Admit.Admitted);
  (match Service.Admit.try_conn a with
  | Service.Admit.Rejected r ->
      Alcotest.(check string) "conn 3 typed overloaded" "overloaded"
        r.Service.Admit.kind;
      Alcotest.(check (float 1e-9)) "carries the retry hint" 0.25
        r.Service.Admit.retry_after_s
  | Service.Admit.Admitted -> Alcotest.fail "third connection not shed");
  Service.Admit.conn_done a;
  Alcotest.(check bool) "released slot re-admits" true
    (Service.Admit.try_conn a = Service.Admit.Admitted);
  (* search-queue bound *)
  Alcotest.(check bool) "queue 1 admitted" true
    (Service.Admit.try_queue a = Service.Admit.Admitted);
  (match Service.Admit.try_queue a with
  | Service.Admit.Rejected r ->
      Alcotest.(check string) "queue 2 typed overloaded" "overloaded"
        r.Service.Admit.kind
  | Service.Admit.Admitted -> Alcotest.fail "second queued search not shed");
  Service.Admit.queue_done a;
  Alcotest.(check bool) "drained queue re-admits" true
    (Service.Admit.try_queue a = Service.Admit.Admitted);
  (* per-tenant token bucket: burst 2, refill 0.5 tokens/s *)
  let at now who = Service.Admit.check_tenant ~now a (Some who) in
  Alcotest.(check bool) "tenantless traffic exempt" true
    (Service.Admit.check_tenant ~now:0.0 a None = Service.Admit.Admitted);
  Alcotest.(check bool) "burst token 1" true (at 0.0 "acme" = Service.Admit.Admitted);
  Alcotest.(check bool) "burst token 2" true (at 0.0 "acme" = Service.Admit.Admitted);
  (match at 0.0 "acme" with
  | Service.Admit.Rejected r ->
      Alcotest.(check string) "dry bucket typed quota_exceeded"
        "quota_exceeded" r.Service.Admit.kind;
      (* empty bucket at rate 0.5/s: the next token is 2 s away *)
      Alcotest.(check (float 1e-6)) "exact refill wait" 2.0
        r.Service.Admit.retry_after_s
  | Service.Admit.Admitted -> Alcotest.fail "dry bucket admitted");
  Alcotest.(check bool) "other tenants unaffected" true
    (at 0.0 "rival" = Service.Admit.Admitted);
  Alcotest.(check bool) "refill admits again" true
    (at 2.0 "acme" = Service.Admit.Admitted);
  Alcotest.(check int) "rejections counted" 1
    (counter_value registry "service.admit.reject.quota")

(* A quota-armed server answers an out-of-tokens tenant with a typed
   quota_exceeded carrying retry_after_s — it never hangs or drops. *)
let test_quota_server =
  with_reset @@ fun () ->
  let registry = Obs.Metrics.create () in
  let server =
    Service.Server.create ~registry ~device:Gpusim.Device.a100
      ~base_config:(small_config ()) ~verify_trials:2 ~tenant_rate:0.01
      ~tenant_burst:1.0
      ~socket_path:(Filename.temp_file "mirage_sock" ".sock")
      ~cache_dir:(tmpdir "mirage_srv_cache") ()
  in
  let spec = div_matmul_spec ~b:2 ~h:4 ~d:4 () in
  let req =
    J.Obj
      [
        ("op", J.Str "optimize");
        ("graph", Search.Checkpoint.graph_to_json spec);
        ("tenant", J.Str "acme");
      ]
  in
  let r1 = Service.Server.handle_request server req in
  Alcotest.(check string) "first request spends the burst token" "ok"
    (match get_exn [ "status" ] r1 with J.Str s -> s | _ -> "?");
  let r2 = Service.Server.handle_request server req in
  Alcotest.(check string) "second is typed quota_exceeded" "quota_exceeded"
    (match get_exn [ "error" ] r2 with J.Str s -> s | _ -> "?");
  Alcotest.(check bool) "carries a positive retry_after_s" true
    (match get_exn [ "retry_after_s" ] r2 with
    | J.Float s -> s > 0.0
    | _ -> false);
  Alcotest.(check bool) "rid still echoed on rejections" true
    (match J.member "request_id" r2 with Some (J.Str _) -> true | _ -> false);
  Alcotest.(check int) "shed load counted" 1
    (counter_value registry "service.admit.reject.quota")

(* An expired end-to-end deadline answers a typed timeout — the stall is
   injected via serve.slow so the deadline expires deterministically
   before the queue wait — and the abandoned flight is retired, so the
   same fingerprint is immediately searchable again. *)
let test_deadline_timeout =
  with_reset @@ fun () ->
  (match Obs.Fault.configure "serve.slow:1.0:1" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Unix.putenv "MIRAGE_FAULT_SLOW_MS" "150";
  Fun.protect ~finally:(fun () -> Unix.putenv "MIRAGE_FAULT_SLOW_MS" "")
  @@ fun () ->
  let server = make_server () in
  let spec = div_matmul_spec ~b:2 ~h:4 ~d:4 () in
  let req extra =
    J.Obj
      ([ ("op", J.Str "optimize"); ("graph", Search.Checkpoint.graph_to_json spec) ]
      @ extra)
  in
  let r1 =
    Service.Server.handle_request server (req [ ("deadline_ms", J.Float 50.0) ])
  in
  Alcotest.(check string) "typed timeout" "timeout"
    (match get_exn [ "error" ] r1 with J.Str s -> s | _ -> "?");
  Alcotest.(check int) "abandoned flight retired" 0
    (Service.Server.flight_count server);
  (* the fault is spent (count 1): the same fingerprint now searches *)
  let r2 = Service.Server.handle_request server (req []) in
  Alcotest.(check string) "same fingerprint served after the timeout" "ok"
    (match get_exn [ "status" ] r2 with J.Str s -> s | _ -> "?")

(* Crash residue — an orphaned temp file (kill -9 between write and
   rename) and a truncated result.json — is swept aside at startup:
   quarantined, counted, and the intact entry still serves. *)
let test_recovery_sweep () =
  let dir = tmpdir "mirage_cache" in
  let c1 = Service.Cache.create ~registry:(Obs.Metrics.create ()) ~dir () in
  let fp_good = String.make 32 'a' in
  Service.Cache.store c1 fp_good (payload_of_int 1);
  let good_path = Service.Cache.entry_path c1 fp_good in
  (* an orphaned temp next to the good entry *)
  let orphan =
    Filename.concat (Filename.dirname good_path) ".result.json.tmp.12345"
  in
  let oc = open_out orphan in
  output_string oc "{\"torn\":";
  close_out oc;
  (* a truncated envelope for another fingerprint *)
  let fp_torn = String.make 32 'e' in
  let torn_path = Service.Cache.entry_path c1 fp_torn in
  Unix.mkdir (Filename.concat dir "ee") 0o755;
  Unix.mkdir (Filename.dirname torn_path) 0o755;
  let oc = open_out torn_path in
  output_string oc "{\"schema\":\"mirage.service.result.v1\",\"finger";
  close_out oc;
  (* restart: a fresh cache over the same directory runs the sweep *)
  let registry = Obs.Metrics.create () in
  let c2 = Service.Cache.create ~registry ~dir () in
  Alcotest.(check int) "orphan temp recovered" 1
    (counter_value registry "service.cache.recovered");
  Alcotest.(check int) "truncated envelope quarantined" 1
    (counter_value registry "service.cache.quarantine");
  Alcotest.(check bool) "orphan moved out of the entry dir" false
    (Sys.file_exists orphan);
  Alcotest.(check bool) "orphan preserved under quarantine/" true
    (Array.exists
       (fun f -> String.length f >= 4)
       (Sys.readdir (Filename.concat dir "quarantine")));
  Alcotest.(check bool) "torn entry no longer served as truth" true
    (Service.Cache.find c2 fp_torn = None);
  (match Service.Cache.find c2 fp_good with
  | Some p ->
      Alcotest.(check string) "intact entry survives the sweep"
        (J.to_string (payload_of_int 1))
        (J.to_string p)
  | None -> Alcotest.fail "intact entry lost by recovery");
  Alcotest.(check bool) "byte occupancy seeded by the sweep" true
    (Service.Cache.disk_bytes c2 > 0)

(* The disk byte cap evicts least-recently-used entries (mtime order),
   never the entry just stored. *)
let test_disk_cap () =
  let registry = Obs.Metrics.create () in
  let dir = tmpdir "mirage_cache" in
  let big i =
    J.Obj
      [
        ("schema", J.Str "test.payload");
        ("i", J.Int i);
        ("fill", J.Str (String.make 1000 'x'));
      ]
  in
  let c =
    Service.Cache.create ~registry ~max_disk_bytes:2500 ~dir ()
  in
  let k i = Printf.sprintf "%032d" i in
  Service.Cache.store c (k 1) (big 1);
  Service.Cache.store c (k 2) (big 2);
  (* age entry 1 explicitly: mtime order is the eviction order *)
  Unix.utimes (Service.Cache.entry_path c (k 1)) 1.0 1.0;
  Service.Cache.store c (k 3) (big 3);
  Alcotest.(check bool) "tier shrunk to the cap" true
    (Service.Cache.disk_bytes c <= 2500);
  Alcotest.(check int) "oldest entry evicted" 2 (Service.Cache.disk_entries c);
  Alcotest.(check bool) "evictions counted" true
    (counter_value registry "service.cache.evict.disk" >= 1);
  Service.Cache.clear_mem c;
  Alcotest.(check bool) "evicted entry is a disk miss" true
    (Service.Cache.find c (k 1) = None);
  Alcotest.(check bool) "fresh store never self-evicts" true
    (Service.Cache.find c (k 3) <> None)

(* ENOSPC does not take the daemon down: the store degrades to
   memory-only mode (sticky, flagged through the degradation registry)
   and keeps serving from the memory tier. *)
let test_enospc_mem_only =
  with_reset @@ fun () ->
  (match Obs.Fault.configure "cache.enospc:1.0:1" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let dir = tmpdir "mirage_cache" in
  let c = Service.Cache.create ~registry:(Obs.Metrics.create ()) ~dir () in
  let fp1 = String.make 32 'a' in
  Service.Cache.store c fp1 (payload_of_int 1);
  Alcotest.(check bool) "store flipped to memory-only" true
    (Service.Cache.mem_only c);
  Alcotest.(check bool) "degradation registered" true
    (List.mem "service.cache.enospc" (Obs.Budget.degradations ()));
  Alcotest.(check int) "nothing written to the full disk" 0
    (Service.Cache.disk_entries c);
  Alcotest.(check bool) "memory tier still serves" true
    (Service.Cache.find c fp1 <> None);
  (* sticky: the fault is spent, but mem-only persists until restart *)
  let fp2 = String.make 32 'b' in
  Service.Cache.store c fp2 (payload_of_int 2);
  Alcotest.(check int) "later stores stay off disk" 0
    (Service.Cache.disk_entries c);
  Service.Cache.clear_mem c;
  Alcotest.(check bool) "memory-only means no disk fallback" true
    (Service.Cache.find c fp1 = None)

(* --- suite ------------------------------------------------------------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "service"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "alpha renaming preserves fp" `Quick
            test_fp_alpha_invariant;
          Alcotest.test_case "semantic mutations change fp" `Quick
            test_fp_semantic_mutations;
          Alcotest.test_case "device and config sensitivity" `Quick
            test_fp_device_and_config;
          Alcotest.test_case "collision scan over 1k graphs" `Quick
            test_fp_collision_scan;
        ]
        @ qsuite [ prop_alpha_renaming ] );
      ( "cache",
        [
          Alcotest.test_case "store/find roundtrip (mem + disk)" `Quick
            test_cache_roundtrip;
          Alcotest.test_case "memory tier is LRU-bounded" `Quick test_cache_lru;
          Alcotest.test_case "corrupted entries quarantined" `Quick
            test_cache_quarantine;
        ] );
      ( "differential",
        [
          Alcotest.test_case "server == direct search, warm == cold" `Slow
            test_differential;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "N domains, one search" `Slow test_single_flight;
          Alcotest.test_case "corrupt entry re-searched" `Slow
            test_corrupt_entry_researched;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "request ids minted and echoed" `Slow
            test_request_id_roundtrip;
          Alcotest.test_case "metrics op: valid snapshot, counters" `Slow
            test_metrics_op;
          Alcotest.test_case "slow request leaves an rid-exact report" `Slow
            test_slow_forensics;
        ] );
      ( "progress",
        [
          Alcotest.test_case "frames valid, rid-tagged, monotone" `Slow
            test_progress_frames;
          Alcotest.test_case
            "wire: interleaved frames, legacy byte-identical" `Slow
            test_progress_wire;
        ] );
      ( "prune",
        [
          Alcotest.test_case "one stats/journal site" `Quick
            test_prune_single_site;
          Alcotest.test_case "helper mirrors inline condition" `Quick
            test_prune_helper_equivalence;
          Alcotest.test_case "query cache round-trips through the store"
            `Quick test_prune_store_roundtrip;
          Alcotest.test_case "corrupt cache entries quarantined" `Quick
            test_prune_store_corrupt_quarantined;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "admission gates: conn, queue, tenant" `Quick
            test_admit_gates;
          Alcotest.test_case "tenant quota: typed quota_exceeded" `Slow
            test_quota_server;
          Alcotest.test_case "expired deadline: typed timeout" `Slow
            test_deadline_timeout;
          Alcotest.test_case "startup recovery sweeps crash residue" `Quick
            test_recovery_sweep;
          Alcotest.test_case "disk byte cap evicts LRU entries" `Quick
            test_disk_cap;
          Alcotest.test_case "ENOSPC degrades to memory-only" `Quick
            test_enospc_mem_only;
        ] );
    ]
