(* Tests for the 0-1 ILP solver (the Z3 stand-in for layout selection),
   including a brute-force cross-check on random instances. *)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_trivial () =
  let p = Ilp.create () in
  let x = Ilp.new_var ~name:"x" p in
  Ilp.set_objective p [ (1.0, x) ];
  match Ilp.solve_opt p with
  | Some sol ->
      Alcotest.(check bool) "x=0 minimizes" false (Ilp.value sol x);
      Alcotest.(check (float 1e-9)) "objective" 0.0 sol.Ilp.objective
  | None -> Alcotest.fail "feasible problem reported infeasible"

let test_exactly_one () =
  let p = Ilp.create () in
  let a = Ilp.new_var p and b = Ilp.new_var p and c = Ilp.new_var p in
  Ilp.add_exactly_one p [ a; b; c ];
  Ilp.set_objective p [ (3.0, a); (1.0, b); (2.0, c) ];
  match Ilp.solve_opt p with
  | Some sol ->
      Alcotest.(check bool) "picks b" true (Ilp.value sol b);
      Alcotest.(check bool) "not a" false (Ilp.value sol a);
      Alcotest.(check (float 1e-9)) "objective" 1.0 sol.Ilp.objective
  | None -> Alcotest.fail "infeasible"

let test_implies () =
  let p = Ilp.create () in
  let a = Ilp.new_var p and b = Ilp.new_var p in
  Ilp.add_implies p a b;
  Ilp.add_ge p [ (1, a) ] 1;
  (* force a = 1 *)
  Ilp.set_objective p [ (5.0, b) ];
  match Ilp.solve_opt p with
  | Some sol ->
      Alcotest.(check bool) "a" true (Ilp.value sol a);
      Alcotest.(check bool) "b forced" true (Ilp.value sol b)
  | None -> Alcotest.fail "infeasible"

let test_infeasible () =
  let p = Ilp.create () in
  let a = Ilp.new_var p in
  Ilp.add_ge p [ (1, a) ] 1;
  Ilp.add_le p [ (1, a) ] 0;
  Alcotest.(check bool) "infeasible" true (Ilp.solve p = Ilp.Infeasible);
  Alcotest.(check bool) "solve_opt agrees" true (Ilp.solve_opt p = None)

let test_forbid_pair () =
  let p = Ilp.create () in
  let a = Ilp.new_var p and b = Ilp.new_var p in
  Ilp.add_forbid_pair p a b;
  Ilp.add_ge p [ (1, a); (1, b) ] 1;
  Ilp.set_objective p [ (-1.0, a); (-2.0, b) ];
  (* wants both at 1, but the pair is forbidden: picks b *)
  match Ilp.solve_opt p with
  | Some sol ->
      Alcotest.(check bool) "b" true (Ilp.value sol b);
      Alcotest.(check bool) "not a" false (Ilp.value sol a)
  | None -> Alcotest.fail "infeasible"

let test_negative_objective () =
  let p = Ilp.create () in
  let a = Ilp.new_var p and b = Ilp.new_var p in
  Ilp.set_objective p [ (-1.0, a); (2.0, b) ];
  match Ilp.solve_opt p with
  | Some sol ->
      Alcotest.(check bool) "a on" true (Ilp.value sol a);
      Alcotest.(check bool) "b off" false (Ilp.value sol b);
      Alcotest.(check (float 1e-9)) "objective" (-1.0) sol.Ilp.objective
  | None -> Alcotest.fail "infeasible"

(* random instances cross-checked against brute force *)
let instance_gen =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* n_cons = int_range 0 4 in
    let* cons =
      list_repeat n_cons
        (let* coeffs = list_repeat n (int_range (-3) 3) in
         let* bound = int_range (-3) 5 in
         return (coeffs, bound))
    in
    let* obj = list_repeat n (float_range (-4.0) 4.0) in
    return (n, cons, obj))

let brute_force n cons obj =
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let value v = if mask land (1 lsl v) <> 0 then 1 else 0 in
    let feasible =
      List.for_all
        (fun (coeffs, bound) ->
          List.fold_left ( + ) 0 (List.mapi (fun v c -> c * value v) coeffs)
          <= bound)
        cons
    in
    if feasible then begin
      let o =
        List.fold_left ( +. ) 0.0
          (List.mapi (fun v c -> c *. float_of_int (value v)) obj)
      in
      match !best with
      | Some b when b <= o -> ()
      | _ -> best := Some o
    end
  done;
  !best

let prop_matches_brute_force =
  qcheck ~count:300 "B&B matches brute force" instance_gen
    (fun (n, cons, obj) ->
      let p = Ilp.create () in
      let vars = List.init n (fun _ -> Ilp.new_var p) in
      List.iter
        (fun (coeffs, bound) ->
          Ilp.add_le p (List.map2 (fun c v -> (c, v)) coeffs vars) bound)
        cons;
      Ilp.set_objective p (List.map2 (fun c v -> (c, v)) obj vars);
      let expected = brute_force n cons obj in
      match Ilp.solve_opt p, expected with
      | None, None -> true
      | Some sol, Some o -> Float.abs (sol.Ilp.objective -. o) < 1e-6
      | Some _, None | None, Some _ -> false)

let () =
  Alcotest.run "ilp"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "exactly one" `Quick test_exactly_one;
          Alcotest.test_case "implies" `Quick test_implies;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "forbid pair" `Quick test_forbid_pair;
          Alcotest.test_case "negative objective" `Quick
            test_negative_objective;
          prop_matches_brute_force;
        ] );
    ]
