(* Tests for the probabilistic equivalence verifier (paper §5): LAX
   checks, acceptance of equivalent muGraphs, rejection of subtle
   non-equivalences, Theorem 3 arithmetic, and the Sqrt/SiLU
   uninterpreted-function abstraction. *)

open Mugraph
module RT = Verify.Random_test

let prim bld p ins = Graph.Build.prim bld p ins

let simple_graph ops_fn ~inputs =
  let bld = Graph.Build.create () in
  let ins = List.map (fun (n, s) -> Graph.Build.input bld n s) inputs in
  let out = ops_fn bld ins in
  Graph.Build.finish bld ~outputs:[ out ]

(* --- LAX membership ---------------------------------------------------- *)

let test_lax_accepts_core_ops () =
  let g =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x; y ] ->
            let m = prim bld Op.Matmul [ x; y ] in
            let e = prim bld (Op.Unary Op.Exp) [ m ] in
            let s = prim bld (Op.Sum { dim = 1; group = 4 }) [ e ] in
            prim bld (Op.Binary Op.Div) [ e; s ]
        | _ -> assert false)
  in
  Alcotest.(check bool) "softmax-ish graph is LAX" true (Verify.Lax.is_lax g)

let test_lax_rejects_relu () =
  let g =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x ] -> prim bld (Op.Unary Op.Relu) [ x ]
        | _ -> assert false)
  in
  Alcotest.(check bool) "relu not LAX" false (Verify.Lax.is_lax g);
  match Verify.Lax.check g with
  | Verify.Lax.Not_lax m ->
      Alcotest.(check bool) "mentions relu" true
        (Astring_contains.contains m "ReLU")
  | Verify.Lax.Lax -> Alcotest.fail "expected rejection"

let test_lax_one_exp_per_path () =
  let g =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x ] ->
            let e1 = prim bld (Op.Unary Op.Exp) [ x ] in
            prim bld (Op.Unary Op.Exp) [ e1 ]
        | _ -> assert false)
  in
  Alcotest.(check int) "depth 2" 2 (Verify.Lax.max_exp_depth g);
  Alcotest.(check bool) "double exp rejected" false (Verify.Lax.is_lax g);
  (* two exps on PARALLEL paths are fine *)
  let g2 =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x; y ] ->
            let e1 = prim bld (Op.Unary Op.Exp) [ x ] in
            let e2 = prim bld (Op.Unary Op.Exp) [ y ] in
            prim bld (Op.Binary Op.Add) [ e1; e2 ]
        | _ -> assert false)
  in
  Alcotest.(check bool) "parallel exps LAX" true (Verify.Lax.is_lax g2)

(* --- equivalence: positives -------------------------------------------- *)

let test_accepts_identical () =
  let g =
    simple_graph
      ~inputs:[ ("X", [| 3; 5 |]); ("Y", [| 3; 5 |]) ]
      (fun bld -> function
        | [ x; y ] -> prim bld (Op.Binary Op.Add) [ x; y ]
        | _ -> assert false)
  in
  Alcotest.(check string) "same graph" "equivalent"
    (RT.to_string (RT.equivalent ~spec:g g))

let test_accepts_distributivity () =
  (* (X+Y)*Z  vs  X*Z + Y*Z *)
  let lhs =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]); ("Z", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x; y; z ] ->
            let s = prim bld (Op.Binary Op.Add) [ x; y ] in
            prim bld (Op.Binary Op.Mul) [ s; z ]
        | _ -> assert false)
  in
  let rhs =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]); ("Z", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x; y; z ] ->
            let xz = prim bld (Op.Binary Op.Mul) [ x; z ] in
            let yz = prim bld (Op.Binary Op.Mul) [ y; z ] in
            prim bld (Op.Binary Op.Add) [ xz; yz ]
        | _ -> assert false)
  in
  Alcotest.(check string) "distributivity" "equivalent"
    (RT.to_string (RT.equivalent ~spec:lhs rhs))

let test_accepts_matmul_associativity () =
  (* (A x B) x C = A x (B x C) *)
  let inputs = [ ("A", [| 2; 3 |]); ("B", [| 3; 4 |]); ("C", [| 4; 2 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ a; b; c ] ->
          let ab = prim bld Op.Matmul [ a; b ] in
          prim bld Op.Matmul [ ab; c ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ a; b; c ] ->
          let bc = prim bld Op.Matmul [ b; c ] in
          prim bld Op.Matmul [ a; bc ]
      | _ -> assert false)
  in
  Alcotest.(check string) "matmul associativity" "equivalent"
    (RT.to_string (RT.equivalent ~spec:lhs rhs))

let test_accepts_exp_homomorphism () =
  (* exp(x) * exp(y) = exp(x + y): the property Theorem 2's two-field
     construction exists to support. *)
  let inputs = [ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] ->
          let ex = prim bld (Op.Unary Op.Exp) [ x ] in
          let ey = prim bld (Op.Unary Op.Exp) [ y ] in
          prim bld (Op.Binary Op.Mul) [ ex; ey ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] ->
          let s = prim bld (Op.Binary Op.Add) [ x; y ] in
          prim bld (Op.Unary Op.Exp) [ s ]
      | _ -> assert false)
  in
  Alcotest.(check string) "exp homomorphism" "equivalent"
    (RT.to_string (RT.equivalent ~spec:lhs rhs))

let test_accepts_shared_sqrt () =
  (* x / sqrt(s) computed two ways: the sqrt oracle must agree when its
     arguments agree. *)
  let inputs = [ ("X", [| 4; 8 |]) ] in
  let mk reorder =
    simple_graph ~inputs (fun bld -> function
      | [ x ] ->
          let sq = prim bld (Op.Unary Op.Sqr) [ x ] in
          let s = prim bld (Op.Sum { dim = 1; group = 8 }) [ sq ] in
          let r = prim bld (Op.Unary Op.Sqrt) [ s ] in
          if reorder then
            (* (x/r) with mul by one extra identity-ish structure:
               mul(x, x)/ (r * x)? would be cancellation; instead use
               div(mul(x,x), mul(r,x))? not provable. Keep the same
               function built in a different operator order: *)
            prim bld (Op.Binary Op.Div) [ x; r ]
          else prim bld (Op.Binary Op.Div) [ x; r ]
      | _ -> assert false)
  in
  Alcotest.(check string) "sqrt abstraction" "equivalent"
    (RT.to_string (RT.equivalent ~spec:(mk false) (mk true)))

(* --- equivalence: negatives -------------------------------------------- *)

let test_rejects_wrong_constant_structure () =
  (* X + X  vs  X *)
  let inputs = [ ("X", [| 4; 4 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x ] -> prim bld (Op.Binary Op.Add) [ x; x ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x ] -> prim bld (Op.Unary Op.Sqr) [ x ]
      | _ -> assert false)
  in
  match RT.equivalent ~spec:lhs rhs with
  | RT.Not_equivalent _ -> ()
  | r -> Alcotest.failf "expected rejection, got %s" (RT.to_string r)

let test_rejects_transposed_reduction () =
  (* summing rows vs summing columns of a square matrix: identical
     abstract expressions (paper §4.3 observes this), but different
     functions — the verifier must distinguish them. *)
  let inputs = [ ("X", [| 4; 4 |]) ] in
  let rows =
    simple_graph ~inputs (fun bld -> function
      | [ x ] ->
          let s = prim bld (Op.Sum { dim = 1; group = 4 }) [ x ] in
          prim bld (Op.Reshape [| 4 |]) [ s ]
      | _ -> assert false)
  in
  let cols =
    simple_graph ~inputs (fun bld -> function
      | [ x ] ->
          let s = prim bld (Op.Sum { dim = 0; group = 4 }) [ x ] in
          prim bld (Op.Reshape [| 4 |]) [ s ]
      | _ -> assert false)
  in
  Alcotest.(check bool) "identical abstract expressions" true
    (Absexpr.Nf.equivalent
       (List.hd (Abstract.output_exprs rows))
       (List.hd (Abstract.output_exprs cols)));
  match RT.equivalent ~spec:rows cols with
  | RT.Not_equivalent _ -> ()
  | r -> Alcotest.failf "expected rejection, got %s" (RT.to_string r)

let test_rejects_swapped_div () =
  let inputs = [ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Div) [ x; y ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Div) [ y; x ]
      | _ -> assert false)
  in
  match RT.equivalent ~spec:lhs rhs with
  | RT.Not_equivalent _ -> ()
  | r -> Alcotest.failf "expected rejection, got %s" (RT.to_string r)

let test_rejects_interface_mismatch () =
  let a =
    simple_graph
      ~inputs:[ ("X", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x ] -> prim bld (Op.Unary Op.Sqr) [ x ]
        | _ -> assert false)
  in
  let b =
    simple_graph
      ~inputs:[ ("Y", [| 4; 4 |]) ]
      (fun bld -> function
        | [ x ] -> prim bld (Op.Unary Op.Sqr) [ x ]
        | _ -> assert false)
  in
  (match RT.equivalent ~spec:a b with
  | RT.Rejected _ -> ()
  | r -> Alcotest.failf "expected rejection, got %s" (RT.to_string r));
  let c =
    simple_graph
      ~inputs:[ ("X", [| 4; 8 |]) ]
      (fun bld -> function
        | [ x ] -> prim bld (Op.Unary Op.Sqr) [ x ]
        | _ -> assert false)
  in
  match RT.equivalent ~spec:a c with
  | RT.Rejected _ -> ()
  | r -> Alcotest.failf "expected rejection, got %s" (RT.to_string r)

(* --- larger primes / theorem arithmetic -------------------------------- *)

let test_larger_field () =
  (* q | p - 1: 1998 = 2 * 3 * 9 * 37; use p = 1999, q = 37. *)
  let inputs = [ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Mul) [ x; y ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Mul) [ y; x ]
      | _ -> assert false)
  in
  Alcotest.(check string) "p=1999 q=37" "equivalent"
    (RT.to_string (RT.equivalent ~p:1999 ~q:37 ~spec:lhs rhs))

let test_error_bound () =
  Alcotest.(check bool) "bound decreases with trials" true
    (RT.error_bound ~k:4 ~trials:10 < RT.error_bound ~k:4 ~trials:2);
  Alcotest.(check bool) "bound < delta after trials_for" true
    (let k = 8 and delta = 0.01 in
     RT.error_bound ~k ~trials:(RT.trials_for ~k ~delta) <= delta);
  Alcotest.(check int) "k=1 needs one trial" 1 (RT.trials_for ~k:1 ~delta:0.5)

(* --- false-negative-freedom property ------------------------------------ *)

let prop_equivalent_graphs_always_pass =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:"reassociated elementwise chains always pass"
       QCheck2.Gen.(pair (int_range 2 4) (int_range 2 4))
       (fun (r, c) ->
         (* (X + Y) + Z  vs  X + (Y + Z) on random shapes *)
         let inputs =
           [ ("X", [| r; c |]); ("Y", [| r; c |]); ("Z", [| r; c |]) ]
         in
         let lhs =
           simple_graph ~inputs (fun bld -> function
             | [ x; y; z ] ->
                 let s = prim bld (Op.Binary Op.Add) [ x; y ] in
                 prim bld (Op.Binary Op.Add) [ s; z ]
             | _ -> assert false)
         in
         let rhs =
           simple_graph ~inputs (fun bld -> function
             | [ x; y; z ] ->
                 let s = prim bld (Op.Binary Op.Add) [ y; z ] in
                 prim bld (Op.Binary Op.Add) [ x; s ]
             | _ -> assert false)
         in
         RT.equivalent ~spec:lhs rhs = RT.Equivalent))

(* --- symbolic (solver-based) verifier, §7 ------------------------------- *)

module Sym = Verify.Symbolic

let test_symbolic_accepts_relu_program () =
  (* ReLU is outside LAX: the probabilistic verifier rejects the program
     but the symbolic verifier proves equivalence of two arrangements. *)
  let inputs = [ ("X", [| 3; 3 |]); ("Y", [| 3; 3 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] ->
          let r = prim bld (Op.Unary Op.Relu) [ x ] in
          let s = prim bld (Op.Binary Op.Add) [ r; y ] in
          prim bld (Op.Binary Op.Mul) [ s; s ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] ->
          let r = prim bld (Op.Unary Op.Relu) [ x ] in
          let s = prim bld (Op.Binary Op.Add) [ y; r ] in
          prim bld (Op.Unary Op.Sqr) [ s ]
      | _ -> assert false)
  in
  (match RT.equivalent ~spec:lhs rhs with
  | RT.Rejected _ -> ()
  | r -> Alcotest.failf "probabilistic should reject relu, got %s" (RT.to_string r));
  Alcotest.(check string) "symbolic proves it" "equivalent (exact, symbolic)"
    (Sym.to_string (Sym.equivalent ~spec:lhs rhs))

let test_symbolic_exact_fused_rmsnorm () =
  (* the Fig. 4b fused muGraph proven EXACTLY equivalent to its spec:
     no error probability, unlike the finite-field tests *)
  let spec = Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16 in
  let fused =
    Baselines.Templates.rmsnorm_matmul_fused ~b:4 ~h:8 ~d:16 ~grid:2 ~iters:2
  in
  Alcotest.(check string) "fused rmsnorm proven exactly"
    "equivalent (exact, symbolic)"
    (Sym.to_string (Sym.equivalent ~spec fused))

let test_symbolic_rejects_division_swap () =
  let inputs = [ ("X", [| 2; 2 |]); ("Y", [| 2; 2 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Div) [ x; y ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Div) [ y; x ]
      | _ -> assert false)
  in
  match Sym.equivalent ~spec:lhs rhs with
  | Sym.Not_equivalent _ -> ()
  | r -> Alcotest.failf "expected rejection, got %s" (Sym.to_string r)

let test_symbolic_size_guard () =
  let inputs = [ ("X", [| 128; 128 |]) ] in
  let g =
    simple_graph ~inputs (fun bld -> function
      | [ x ] -> prim bld (Op.Unary Op.Sqr) [ x ]
      | _ -> assert false)
  in
  match Sym.equivalent ~max_elements:1000 ~spec:g g with
  | Sym.Too_large _ -> ()
  | r -> Alcotest.failf "expected size guard, got %s" (Sym.to_string r)

let test_symbolic_no_cancellation_needed () =
  (* x/y vs (x*z)/(y*z): equal rational functions; cross-multiplication
     proves it with no GCD computation *)
  let inputs = [ ("X", [| 2; 2 |]); ("Y", [| 2; 2 |]); ("Z", [| 2; 2 |]) ] in
  let lhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y; _ ] -> prim bld (Op.Binary Op.Div) [ x; y ]
      | _ -> assert false)
  in
  let rhs =
    simple_graph ~inputs (fun bld -> function
      | [ x; y; z ] ->
          let xz = prim bld (Op.Binary Op.Mul) [ x; z ] in
          let yz = prim bld (Op.Binary Op.Mul) [ y; z ] in
          prim bld (Op.Binary Op.Div) [ xz; yz ]
      | _ -> assert false)
  in
  Alcotest.(check string) "cancellation-free equality"
    "equivalent (exact, symbolic)"
    (Sym.to_string (Sym.equivalent ~spec:lhs rhs))

(* --- packed fast path vs boxed reference path --------------------------- *)

let detail_t =
  Alcotest.testable
    (fun fmt (d : RT.detail) ->
      Format.fprintf fmt "{%s; trials=%d; resamples=%d}"
        (RT.to_string d.RT.result) d.RT.trials_run d.RT.resamples)
    ( = )

(* A mix of accepting and rejecting pairs; the fast path must return the
   verdict AND the trial/resample counts the reference path does. *)
let fast_ref_pairs () =
  let inputs3 = [ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]); ("Z", [| 4; 4 |]) ] in
  let distr_lhs =
    simple_graph ~inputs:inputs3 (fun bld -> function
      | [ x; y; z ] ->
          let s = prim bld (Op.Binary Op.Add) [ x; y ] in
          prim bld (Op.Binary Op.Mul) [ s; z ]
      | _ -> assert false)
  in
  let distr_rhs =
    simple_graph ~inputs:inputs3 (fun bld -> function
      | [ x; y; z ] ->
          let xz = prim bld (Op.Binary Op.Mul) [ x; z ] in
          let yz = prim bld (Op.Binary Op.Mul) [ y; z ] in
          prim bld (Op.Binary Op.Add) [ xz; yz ]
      | _ -> assert false)
  in
  let inputs2 = [ ("X", [| 4; 4 |]); ("Y", [| 4; 4 |]) ] in
  let div_xy =
    simple_graph ~inputs:inputs2 (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Div) [ x; y ]
      | _ -> assert false)
  in
  let div_yx =
    simple_graph ~inputs:inputs2 (fun bld -> function
      | [ x; y ] -> prim bld (Op.Binary Op.Div) [ y; x ]
      | _ -> assert false)
  in
  let rms_spec = Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16 in
  let rms_fused =
    Baselines.Templates.rmsnorm_matmul_fused ~b:4 ~h:8 ~d:16 ~grid:2 ~iters:2
  in
  [
    ("distributivity", distr_lhs, distr_rhs);
    ("swapped div", div_xy, div_yx);
    ("fused rmsnorm (sqrt oracle)", rms_spec, rms_fused);
  ]

let test_fast_matches_reference () =
  List.iter
    (fun (name, spec, cand) ->
      List.iter
        (fun seed ->
          let fast = RT.equivalent_detailed ~seed ~fast:true ~spec cand in
          let slow = RT.equivalent_detailed ~seed ~fast:false ~spec cand in
          Alcotest.check detail_t
            (Printf.sprintf "%s (seed %d)" name seed)
            slow fast)
        [ 0x5EED; 1; 42 ])
    (fast_ref_pairs ())

let test_fast_matches_reference_resamples () =
  (* X / (Y - Z) hits zero divisor components often enough (64 elements,
     ~1/227 each) that resampling fires across 20 seeds; both paths must
     resample at exactly the same trials. *)
  let inputs = [ ("X", [| 8; 8 |]); ("Y", [| 8; 8 |]); ("Z", [| 8; 8 |]) ] in
  let mk () =
    simple_graph ~inputs (fun bld -> function
      | [ x; y; z ] ->
          let d = prim bld (Op.Binary Op.Sub) [ y; z ] in
          prim bld (Op.Binary Op.Div) [ x; d ]
      | _ -> assert false)
  in
  let spec = mk () and cand = mk () in
  let total = ref 0 in
  for seed = 0 to 19 do
    let fast = RT.equivalent_detailed ~seed ~fast:true ~spec cand in
    let slow = RT.equivalent_detailed ~seed ~fast:false ~spec cand in
    Alcotest.check detail_t (Printf.sprintf "seed %d" seed) slow fast;
    total := !total + fast.RT.resamples
  done;
  Alcotest.(check bool) "resampling actually exercised" true (!total > 0)

let test_session_spec_cache_hits () =
  let pairs = fast_ref_pairs () in
  let _, spec, cand = List.hd pairs in
  let session = RT.make_session ~spec () in
  let hits_c =
    Obs.Metrics.counter (Obs.Metrics.default ()) "verify.spec_cache.hits"
  in
  let before = Obs.Metrics.value hits_c in
  (* Two candidates against one session: the second reuses every trial
     seed's cached spec outputs. *)
  Alcotest.(check string) "cand 1" "equivalent"
    (RT.to_string (RT.equivalent ~session ~spec cand));
  Alcotest.(check string) "cand 2 (spec vs itself)" "equivalent"
    (RT.to_string (RT.equivalent ~session ~spec spec));
  let hits = Obs.Metrics.value hits_c - before in
  Alcotest.(check bool)
    (Printf.sprintf "spec cache shared across candidates (hits=%d)" hits)
    true (hits > 0)

let test_session_path_selection () =
  let _, spec, cand = List.hd (fast_ref_pairs ()) in
  let fast_s = RT.make_session ~spec () in
  Alcotest.(check bool) "default moduli take the packed path" true
    (RT.session_fast fast_s);
  let ref_s = RT.make_session ~fast:false ~spec () in
  Alcotest.(check bool) "~fast:false forces the boxed path" false
    (RT.session_fast ref_s);
  (* Moduli too large for the 8-bit packed layout silently degrade. *)
  let big_s = RT.make_session ~p:1999 ~q:37 ~spec () in
  Alcotest.(check bool) "p=1999 falls back to the boxed path" false
    (RT.session_fast big_s);
  Alcotest.(check string) "boxed fallback still verifies" "equivalent"
    (RT.to_string (RT.equivalent ~session:big_s ~spec cand))

let () =
  Alcotest.run "verify"
    [
      ( "lax",
        [
          Alcotest.test_case "core ops accepted" `Quick
            test_lax_accepts_core_ops;
          Alcotest.test_case "relu rejected" `Quick test_lax_rejects_relu;
          Alcotest.test_case "one exp per path" `Quick
            test_lax_one_exp_per_path;
        ] );
      ( "positive",
        [
          Alcotest.test_case "identical" `Quick test_accepts_identical;
          Alcotest.test_case "distributivity" `Quick
            test_accepts_distributivity;
          Alcotest.test_case "matmul associativity" `Quick
            test_accepts_matmul_associativity;
          Alcotest.test_case "exp homomorphism" `Quick
            test_accepts_exp_homomorphism;
          Alcotest.test_case "sqrt abstraction" `Quick
            test_accepts_shared_sqrt;
          prop_equivalent_graphs_always_pass;
        ] );
      ( "negative",
        [
          Alcotest.test_case "x+x vs x^2" `Quick
            test_rejects_wrong_constant_structure;
          Alcotest.test_case "row vs column sums" `Quick
            test_rejects_transposed_reduction;
          Alcotest.test_case "swapped division" `Quick
            test_rejects_swapped_div;
          Alcotest.test_case "interface mismatch" `Quick
            test_rejects_interface_mismatch;
        ] );
      ( "theory",
        [
          Alcotest.test_case "larger field" `Quick test_larger_field;
          Alcotest.test_case "Theorem 3 arithmetic" `Quick test_error_bound;
        ] );
      ( "fastpath",
        [
          Alcotest.test_case "fast verdicts match reference" `Quick
            test_fast_matches_reference;
          Alcotest.test_case "resample behavior matches" `Quick
            test_fast_matches_reference_resamples;
          Alcotest.test_case "session spec cache hits" `Quick
            test_session_spec_cache_hits;
          Alcotest.test_case "path selection and fallback" `Quick
            test_session_path_selection;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "relu program proven" `Quick
            test_symbolic_accepts_relu_program;
          Alcotest.test_case "fused rmsnorm proven" `Quick
            test_symbolic_exact_fused_rmsnorm;
          Alcotest.test_case "division swap rejected" `Quick
            test_symbolic_rejects_division_swap;
          Alcotest.test_case "size guard" `Quick test_symbolic_size_guard;
          Alcotest.test_case "no cancellation needed" `Quick
            test_symbolic_no_cancellation_needed;
        ] );
    ]
