(* Tests for the top-level pipeline: LAX partitioning and the
   superoptimize entry point, plus the pseudo-CUDA code generator. *)

open Mugraph

let prim bld p ins = Graph.Build.prim bld p ins

(* A program with a ReLU in the middle: LAX / non-LAX / LAX pieces. *)
let program_with_relu () =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 8 |] in
  let c = Graph.Build.input bld "C" [| 4; 1 |] in
  let w = Graph.Build.input bld "W" [| 8; 8 |] in
  let y = prim bld (Op.Binary Op.Div) [ x; c ] in
  let m = prim bld Op.Matmul [ y; w ] in
  let r = prim bld (Op.Unary Op.Relu) [ m ] in
  let z = prim bld (Op.Unary Op.Sqr) [ r ] in
  Graph.Build.finish bld ~outputs:[ z ]

let test_partition_pure_lax () =
  let g = Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16 in
  let p = Mirage.Partition.partition g in
  Alcotest.(check int) "one piece" 1 (List.length p.Mirage.Partition.pieces);
  Alcotest.(check int) "one LAX piece" 1 (Mirage.Partition.num_lax_pieces p);
  let piece = List.hd p.Mirage.Partition.pieces in
  Alcotest.(check int) "same op count" (Graph.kernel_op_count g)
    (Graph.kernel_op_count piece.Mirage.Partition.graph)

let test_partition_splits_at_relu () =
  let g = program_with_relu () in
  let p = Mirage.Partition.partition g in
  Alcotest.(check int) "three pieces" 3 (List.length p.Mirage.Partition.pieces);
  Alcotest.(check int) "two LAX pieces" 2 (Mirage.Partition.num_lax_pieces p);
  (* the relu piece is the non-LAX one and has exactly one operator *)
  let non_lax =
    List.find (fun pc -> not pc.Mirage.Partition.lax) p.Mirage.Partition.pieces
  in
  Alcotest.(check int) "relu alone" 1
    (Graph.kernel_op_count non_lax.Mirage.Partition.graph)

let test_partition_pieces_compose () =
  (* evaluating the pieces in order reproduces the original program *)
  let g = program_with_relu () in
  let p = Mirage.Partition.partition g in
  let st = Random.State.make [| 5 |] in
  let rand shape =
    Tensor.Dense.init shape (fun _ -> 0.1 +. Random.State.float st 1.0)
  in
  let x = rand [| 4; 8 |] and c = rand [| 4; 1 |] and w = rand [| 8; 8 |] in
  let expected =
    List.hd
      (Interp.eval_kernel Tensor.Element.float_ops g ~inputs:[ x; c; w ])
  in
  (* run the pieces, binding produced tensors by input name *)
  let env = Hashtbl.create 8 in
  Hashtbl.replace env "X" x;
  Hashtbl.replace env "C" c;
  Hashtbl.replace env "W" w;
  let last = ref None in
  List.iter
    (fun (piece : Mirage.Partition.piece) ->
      let inputs =
        List.map
          (fun n ->
            match Hashtbl.find_opt env n with
            | Some t -> t
            | None -> Alcotest.failf "unbound piece input %s" n)
          (Graph.input_names piece.Mirage.Partition.graph)
      in
      let outs =
        Interp.eval_kernel Tensor.Element.float_ops
          piece.Mirage.Partition.graph ~inputs
      in
      (* bind outputs under the names later pieces use *)
      List.iteri
        (fun i name ->
          Hashtbl.replace env name (List.nth outs i);
          last := Some (List.nth outs i))
        piece.Mirage.Partition.output_names)
    p.Mirage.Partition.pieces;
  ignore !last;
  (* the composition is checked indirectly: the LAST piece's output must
     match the original program (names flow through the env) *)
  match !last with
  | Some actual ->
      Alcotest.(check bool) "composition reproduces program" true
        (Tensor.Dense.equal
           (fun a b -> Tensor.Element.float_approx_equal ~rtol:1e-6 a b)
           expected actual)
  | None -> Alcotest.fail "no output"

let test_partition_diamond_through_relu () =
  (* m feeds both relu(m) and a matmul that also consumes relu(m): merging
     the two LAX matmuls would make the component graph cyclic (this used
     to trip the piece-ordering assertion). *)
  let bld = Graph.Build.create () in
  let a = Graph.Build.input bld "A" [| 2; 2 |] in
  let m = prim bld Op.Matmul [ a; a ] in
  let r = prim bld (Op.Unary Op.Relu) [ m ] in
  let z = prim bld Op.Matmul [ m; r ] in
  let g = Graph.Build.finish bld ~outputs:[ z ] in
  let check_order g p =
    (* pieces come out in dependency order: each piece's inputs were
       produced by an earlier piece (or are program inputs) *)
    let seen = Hashtbl.create 8 in
    List.iter (fun n -> Hashtbl.replace seen n ()) (Graph.input_names g);
    List.iter
      (fun (piece : Mirage.Partition.piece) ->
        List.iter
          (fun n ->
            if not (Hashtbl.mem seen n) then
              Alcotest.failf "piece %d consumes %s before it is produced"
                piece.Mirage.Partition.id n)
          (Graph.input_names piece.Mirage.Partition.graph);
        List.iter
          (fun n -> Hashtbl.replace seen n ())
          piece.Mirage.Partition.output_names)
      p.Mirage.Partition.pieces
  in
  let p = Mirage.Partition.partition g in
  Alcotest.(check int) "three pieces" 3 (List.length p.Mirage.Partition.pieces);
  Alcotest.(check int) "two LAX pieces" 2 (Mirage.Partition.num_lax_pieces p);
  check_order g p;
  (* the outside path may also leave from deeper inside the producer's
     component: m -> sum(m) -> sub(sum m, relu m) *)
  let bld = Graph.Build.create () in
  let a = Graph.Build.input bld "A" [| 3; 3 |] in
  let m = prim bld Op.Matmul [ a; a ] in
  let r = prim bld (Op.Unary Op.Relu) [ m ] in
  let s = prim bld (Op.Sum { dim = 1; group = 3 }) [ m ] in
  let z = prim bld (Op.Binary Op.Sub) [ s; r ] in
  let g2 = Graph.Build.finish bld ~outputs:[ z ] in
  let p2 = Mirage.Partition.partition g2 in
  check_order g2 p2

let test_partition_rejects_scheduled () =
  let g =
    Baselines.Templates.rmsnorm_matmul_fused ~b:4 ~h:8 ~d:16 ~grid:2 ~iters:2
  in
  match Mirage.Partition.partition g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a graph with custom kernels"

let test_superoptimize_end_to_end () =
  (* small program: div + matmul; the pipeline must find the fused kernel,
     verify it, and report a speedup *)
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 8 |] in
  let c = Graph.Build.input bld "C" [| 4; 1 |] in
  let w = Graph.Build.input bld "W" [| 8; 16 |] in
  let y = prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = prim bld Op.Matmul [ y; w ] in
  let g = Graph.Build.finish bld ~outputs:[ z ] in
  let config =
    Search.Config.for_spec
      ~base:
        {
          Search.Config.default with
          Search.Config.grid_candidates = [ [| 2 |] ];
          forloop_candidates = [ [| 2 |] ];
          max_block_ops = 4;
          num_workers = 1;
          time_budget_s = 60.0;
        }
      g
  in
  let r = Mirage.superoptimize ~config ~device:Gpusim.Device.a100 g in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f > 1.5" r.Mirage.speedup)
    true (r.Mirage.speedup > 1.5);
  Alcotest.(check bool) "summary printable" true
    (String.length (Mirage.summary r) > 0)

(* --- code generation --------------------------------------------------- *)

let test_codegen_structure () =
  let g =
    Baselines.Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128
      ~iters:16
  in
  let cuda = Codegen.Cuda_emit.emit_kernel ~name:"rms" g in
  let has = Astring_contains.contains cuda in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (has needle))
    [
      "__global__";
      "__shared__";
      "__syncthreads()";
      "for (int i = 0; i < 16";
      "mma_tile";
      "accumulate";
      "store_tile";
      "ew_sqrt";
      "<<<dim3(128)";
    ];
  Alcotest.(check bool) "has a meaningful size" true
    (Codegen.Cuda_emit.loc cuda > 30)

let test_codegen_thread_graph () =
  let g =
    Search.Thread_fuse.fuse_kernel
      (Baselines.Templates.ntrans_fused ~b:4 ~d:32 ~grid:4)
  in
  let cuda = Codegen.Cuda_emit.emit_kernel ~name:"ntrans" g in
  Alcotest.(check bool) "register-file thread graph emitted" true
    (Astring_contains.contains cuda "register file")

let test_codegen_library_calls () =
  let g = Baselines.Templates.lora_spec ~m:32 ~k:16 ~r:4 ~n:8 in
  let cuda = Codegen.Cuda_emit.emit_kernel ~name:"lora" g in
  Alcotest.(check bool) "library matmuls" true
    (Astring_contains.contains cuda "library_call_matmul")

let () =
  Alcotest.run "mirage"
    [
      ( "partition",
        [
          Alcotest.test_case "pure LAX" `Quick test_partition_pure_lax;
          Alcotest.test_case "splits at relu" `Quick
            test_partition_splits_at_relu;
          Alcotest.test_case "pieces compose" `Quick
            test_partition_pieces_compose;
          Alcotest.test_case "diamond through relu" `Quick
            test_partition_diamond_through_relu;
          Alcotest.test_case "rejects scheduled graphs" `Quick
            test_partition_rejects_scheduled;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "superoptimize end-to-end" `Slow
            test_superoptimize_end_to_end;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "kernel structure" `Quick test_codegen_structure;
          Alcotest.test_case "thread graphs" `Quick test_codegen_thread_graph;
          Alcotest.test_case "library calls" `Quick test_codegen_library_calls;
        ] );
    ]
