(* Command-line interface to the Mirage reproduction.

   Subcommands:
     optimize  — superoptimize a named benchmark's specification
     stats     — run the search and print the full search funnel
     verify    — check a benchmark's Mirage plan against its spec
     inspect   — print a benchmark's plans, costs, and generated CUDA
     bench     — quick cost comparison across systems and devices
     list      — list available benchmarks *)

open Cmdliner

let device_conv =
  let parse s =
    match Gpusim.Device.by_name s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown device %S (a100|h100)" s))
  in
  Arg.conv (parse, fun fmt d -> Format.fprintf fmt "%s" d.Gpusim.Device.name)

let device_arg =
  Arg.(
    value
    & opt device_conv Gpusim.Device.a100
    & info [ "device"; "d" ] ~docv:"DEV" ~doc:"Target GPU model (a100 or h100).")

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK"
        ~doc:"Benchmark name: gqa, qknorm, rmsnorm, lora, gatedmlp, ntrans.")

let lookup name =
  match Workloads.Bench_defs.by_name name with
  | Some b -> b
  | None ->
      Printf.eprintf "unknown benchmark %S\n" name;
      exit 2

let list_cmd =
  let run () =
    List.iter
      (fun (b : Workloads.Bench_defs.benchmark) ->
        Printf.printf "%-10s %-32s (%s)\n" b.name b.description b.base_arch)
      (Workloads.Bench_defs.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* Runnable backend: compile a winning muGraph with the system C
   compiler and execute it against the muGraph interpreter.            *)

let differential_arg =
  Arg.(
    value & flag
    & info [ "differential" ]
        ~doc:
          "Post-pass on the winning muGraph: lower it to the imperative IR, \
           compile the generated C with the system compiler, execute it on \
           random inputs through the subprocess harness, and compare every \
           output scalar against the muGraph interpreter (tolerance 1e-4). \
           Skipped with a notice when no C compiler is available; exits \
           nonzero on divergence.")

(* [Some ok] when the check ran, [None] when skipped (no C compiler). *)
let differential_post ?report_dir ~label g =
  if not (Codegen.C_exec.cc_available ()) then begin
    Printf.printf
      "differential %s: SKIPPED (no working C compiler on PATH)\n%!" label;
    None
  end
  else
    match Codegen.Differential.check ?report_dir ~name:label g with
    | Error e ->
        Printf.printf "differential %s: ERROR %s\n%!" label e;
        Some false
    | Ok o ->
        Printf.printf "differential: %s\n%!"
          (Codegen.Differential.pp_outcome o);
        Some o.Codegen.Differential.ok

let verify_cmd =
  let run name differential =
    let b = lookup name in
    let spec, plan = b.Workloads.Bench_defs.reduced () in
    Printf.printf "verifying %s Mirage plan against its specification\n"
      b.Workloads.Bench_defs.name;
    let r = Verify.Random_test.equivalent ~trials:3 ~spec plan in
    Printf.printf "result: %s\n" (Verify.Random_test.to_string r);
    (match r with Verify.Random_test.Equivalent -> () | _ -> exit 1);
    if differential then
      match
        differential_post
          ~label:(String.lowercase_ascii b.Workloads.Bench_defs.name)
          plan
      with
      | Some false -> exit 1
      | Some true | None -> ()
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Probabilistically verify a benchmark's Mirage plan (reduced dims)")
    Term.(const run $ bench_arg $ differential_arg)

let inspect_cmd =
  let run name device =
    let b = lookup name in
    let cost g = (Gpusim.Cost.cost device g).Gpusim.Cost.total_us in
    Printf.printf "== %s (%s) on %s\n" b.Workloads.Bench_defs.name
      b.Workloads.Bench_defs.base_arch device.Gpusim.Device.name;
    Printf.printf "-- specification:\n%s\n"
      (Mugraph.Pretty.kernel_graph_to_string b.Workloads.Bench_defs.spec);
    Printf.printf "-- Mirage muGraph (%.2f us):\n%s\n"
      (cost b.Workloads.Bench_defs.mirage)
      (Mugraph.Pretty.kernel_graph_to_string b.Workloads.Bench_defs.mirage);
    Printf.printf "-- optimizer report:\n%s\n"
      (Opt.Optimizer.summary
         (Opt.Optimizer.optimize device b.Workloads.Bench_defs.mirage));
    Printf.printf "-- generated CUDA:\n%s\n"
      (Codegen.Cuda_emit.emit_kernel
         ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
         b.Workloads.Bench_defs.mirage)
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Print plans, costs and generated code")
    Term.(const run $ bench_arg $ device_arg)

let bench_cmd =
  let run device =
    List.iter
      (fun (b : Workloads.Bench_defs.benchmark) ->
        let cost g = (Gpusim.Cost.cost device g).Gpusim.Cost.total_us in
        let mi = cost b.mirage in
        Printf.printf "%-10s Mirage %8.2f us |" b.name mi;
        List.iter
          (fun (n, g) -> Printf.printf " %s %.2f (%.2fx)" n (cost g) (cost g /. mi))
          b.systems;
        print_newline ())
      (Workloads.Bench_defs.all ())
  in
  Cmd.v (Cmd.info "bench" ~doc:"Cost all benchmarks on a device")
    Term.(const run $ device_arg)

(* Shared observability flags: [--trace FILE] records phase spans and
   writes Chrome trace-event JSON; [--metrics] dumps the merged metrics
   registry. Both default to off, leaving the plain output untouched. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record phase spans and write Chrome trace-event JSON to $(docv) \
           (load in chrome://tracing or Perfetto).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the merged metrics registry after the run.")

let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some file ->
      let t = Obs.Trace.enable () in
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.disable ();
          Obs.Trace.dump t file;
          Printf.printf "== trace: %d spans -> %s\n%s" (Obs.Trace.span_count t)
            file (Obs.Trace.summary t))
        f

(* [--report DIR]: a self-contained run directory — report.json,
   trace.json and journal.jsonl. Tracing and the event journal are
   force-enabled for the run, and every finalizer is individually
   exception-protected so a crashed search still leaves its forensics
   behind (with status.state = "crashed" and the error recorded). *)

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"DIR"
        ~doc:
          "Write a self-contained run report to $(docv): report.json (config \
           fingerprint, environment, search funnel, costs, phase timings), \
           trace.json (Chrome trace events) and journal.jsonl (the search \
           flight record, one event per candidate decision).")

let with_artifacts ~kind trace report_dir f =
  match report_dir with
  | None -> with_tracing trace (fun () -> f None)
  | Some dir ->
      Obs.Budget.reset_degradations ();
      let rep = Obs.Report.create ~dir in
      Obs.Report.add rep "kind" (Obs.Jsonw.Str kind);
      Obs.Report.add rep "env" (Obs.Report.env_json ());
      let tr = Obs.Trace.enable () in
      ignore (Obs.Journal.enable (Filename.concat dir "journal.jsonl"));
      let prof = Obs.Profile.enable () in
      let t0 = Unix.gettimeofday () in
      let finalize status err =
        let attempt g = try g () with _ -> () in
        attempt (fun () -> Obs.Trace.disable ());
        attempt (fun () ->
            Obs.Report.add rep "profile"
              (Obs.Profile.snapshot_json (Obs.Profile.snapshot prof)));
        attempt (fun () -> Obs.Profile.disable ());
        (* journal loss accounting must be read before disable closes it *)
        let jdropped_events, jdropped_buffers =
          match Obs.Journal.active () with
          | Some j -> (Obs.Journal.dropped j, Obs.Journal.dropped_buffers j)
          | None -> (0, 0)
        in
        attempt (fun () -> Obs.Journal.disable ());
        attempt (fun () ->
            Obs.Trace.dump tr (Filename.concat dir "trace.json"));
        (match trace with
        | Some file -> attempt (fun () -> Obs.Trace.dump tr file)
        | None -> ());
        attempt (fun () ->
            Obs.Report.add rep "phases" (Obs.Report.phase_timings tr));
        Obs.Report.add rep "timing"
          (Obs.Jsonw.Obj
             [ ("wall_s", Obs.Jsonw.Float (Unix.gettimeofday () -. t0)) ]);
        Obs.Report.add rep "artifacts"
          (Obs.Jsonw.Obj
             [
               ("report", Obs.Jsonw.Str "report.json");
               ("trace", Obs.Jsonw.Str "trace.json");
               ("journal", Obs.Jsonw.Str "journal.jsonl");
             ]);
        (* A run that hit its deadline, lost an ILP solve to the node
           limit, or quarantined a crashed task is "degraded", not "ok":
           the artifacts are valid but some phase fell back. *)
        let degraded = Obs.Budget.degradations () in
        let state =
          if status = "ok" && degraded <> [] then "degraded" else status
        in
        Obs.Report.add rep "status"
          (Obs.Jsonw.Obj
             ([ ("state", Obs.Jsonw.Str state) ]
             @ (if degraded = [] then []
                else
                  [
                    ( "degraded",
                      Obs.Jsonw.List
                        (List.map (fun s -> Obs.Jsonw.Str s) degraded) );
                  ])
             @ (match Obs.Fault.fired () with
               | [] -> []
               | fs ->
                   [
                     ( "faults",
                       Obs.Jsonw.Obj
                         (List.map (fun (k, n) -> (k, Obs.Jsonw.Int n)) fs) );
                   ])
             @ (if jdropped_events = 0 && jdropped_buffers = 0 then []
                else
                  [
                    ( "journal",
                      Obs.Jsonw.Obj
                        [
                          ( "dropped_events",
                            Obs.Jsonw.Int jdropped_events );
                          ( "dropped_buffers",
                            Obs.Jsonw.Int jdropped_buffers );
                        ] );
                  ])
             @ if err = "" then [] else [ ("error", Obs.Jsonw.Str err) ]));
        attempt (fun () -> Obs.Report.write rep);
        Printf.eprintf "== run report: %s\n%!" (Obs.Report.path rep)
      in
      (match f (Some rep) with
      | () -> finalize "ok" ""
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finalize "crashed" (Printexc.to_string e);
          Printexc.raise_with_backtrace e bt)

let funnel_json (s : Search.Stats.snapshot) =
  let open Search.Stats in
  Obs.Jsonw.Obj
    [
      ("expanded", Obs.Jsonw.Int s.expanded);
      ("shape_rejected", Obs.Jsonw.Int s.shape_rejected);
      ("memory_rejected", Obs.Jsonw.Int s.memory_rejected);
      ("pruned_abstract", Obs.Jsonw.Int s.pruned_abstract);
      ("canonical_rejected", Obs.Jsonw.Int s.canonical_rejected);
      ("candidates", Obs.Jsonw.Int s.candidates);
      ("verified", Obs.Jsonw.Int s.verified);
      ("duplicates", Obs.Jsonw.Int s.duplicates);
      ("elapsed_s", Obs.Jsonw.Float s.elapsed_s);
    ]

let sum_funnels snaps =
  let open Search.Stats in
  List.fold_left
    (fun acc s ->
      {
        expanded = acc.expanded + s.expanded;
        shape_rejected = acc.shape_rejected + s.shape_rejected;
        memory_rejected = acc.memory_rejected + s.memory_rejected;
        pruned_abstract = acc.pruned_abstract + s.pruned_abstract;
        canonical_rejected = acc.canonical_rejected + s.canonical_rejected;
        candidates = acc.candidates + s.candidates;
        verified = acc.verified + s.verified;
        duplicates = acc.duplicates + s.duplicates;
        elapsed_s = acc.elapsed_s +. s.elapsed_s;
      })
    {
      expanded = 0;
      shape_rejected = 0;
      memory_rejected = 0;
      pruned_abstract = 0;
      canonical_rejected = 0;
      candidates = 0;
      verified = 0;
      duplicates = 0;
      elapsed_s = 0.0;
    }
    snaps

let solver_json (sv : Smtlite.Solver.stats) =
  Obs.Jsonw.Obj
    [
      ("queries", Obs.Jsonw.Int sv.Smtlite.Solver.queries);
      ("cache_hits", Obs.Jsonw.Int sv.Smtlite.Solver.cache_hits);
      ("accepted", Obs.Jsonw.Int sv.Smtlite.Solver.accepted);
      ("solve_time_s", Obs.Jsonw.Float sv.Smtlite.Solver.solve_time_s);
    ]

(* The process-wide registry holds the verifier's counters; per-search
   registries hold the funnel and enumerator histograms. Merge them for
   one report. *)
let merged_metrics piece_snaps =
  Obs.Metrics.merge
    (piece_snaps @ [ Obs.Metrics.snapshot (Obs.Metrics.default ()) ])

let ops_arg =
  Arg.(
    value & opt int 8
    & info [ "max-block-ops" ] ~docv:"N"
        ~doc:"Maximum operators per block graph during the search.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:
          "Search worker domains. Defaults to the runtime's recommended \
           domain count for this machine, capped at 8.")

(* [--workers] unset → size the pool to the machine (the resolved value
   lands in report.json via the config section and a "workers" field). *)
let resolve_workers = function
  | Some w -> max 1 w
  | None -> Search.Config.default_workers

let budget_arg =
  Arg.(
    value & opt float 120.0
    & info [ "budget" ] ~docv:"SECONDS" ~doc:"Search time budget.")

let ref_verify_arg =
  Arg.(
    value & flag
    & info [ "reference-verify" ]
        ~doc:
          "Verify candidates on the boxed reference finite-field path \
           instead of the packed fast path (same verdicts, slower; kept \
           for debugging and timing comparisons).")

let search_config ~max_ops ~workers ~budget ~reference_verify spec =
  let base =
    {
      Search.Config.default with
      Search.Config.max_block_ops = max_ops;
      num_workers = resolve_workers workers;
      time_budget_s = budget;
      verify_fast_path = not reference_verify;
    }
  in
  Search.Config.for_spec ~base spec

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"RUN_DIR"
        ~doc:
          "Resume an interrupted search from $(docv)/checkpoint.json \
           (written by a previous --report run). Completed enumeration \
           tasks are skipped and previously-found candidates reloaded; \
           the benchmark and search options must match the original run. \
           Implies --report $(docv) unless --report is given.")

let prune_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prune-cache" ] ~docv:"DIR"
        ~doc:
          "Persist the solver's prune-query cache in the content-addressed \
           store at $(docv): decided abstract-expression queries are \
           written behind (crash-safe) as the search runs and reloaded by \
           later searches over the same specification, warm-starting the \
           pruning tier across restarts and machines sharing the \
           directory.")

let optimize_cmd =
  let run name device max_ops workers budget reference_verify trace metrics
      report_dir resume prune_cache differential =
    let b = lookup name in
    (* Superoptimize the reduced-dimension specification: the search is
       exhaustive and the discovered structure is dimension-uniform. *)
    let spec, _ = b.Workloads.Bench_defs.reduced () in
    let config =
      search_config ~max_ops ~workers ~budget ~reference_verify spec
    in
    let fingerprint =
      Search.Checkpoint.config_fingerprint (Search.Config.to_json config)
    in
    let report_dir, checkpoint =
      match resume with
      | Some dir -> (
          match Search.Checkpoint.load dir with
          | Error msg ->
              Printf.eprintf "resume: %s\n" msg;
              exit 2
          | Ok ck ->
              (match Search.Checkpoint.meta ck "benchmark" with
              | Some (Obs.Jsonw.Str n) when n <> name ->
                  Printf.eprintf
                    "resume: checkpoint is for benchmark %S, not %S\n" n name;
                  exit 2
              | _ -> ());
              (match Search.Checkpoint.meta ck "config" with
              | Some (Obs.Jsonw.Str f) when f <> fingerprint ->
                  Printf.eprintf
                    "resume: search config differs from the checkpointed run \
                     (fingerprint %s vs %s); rerun with the original \
                     --max-block-ops/--device options\n"
                    fingerprint f;
                  exit 2
              | _ -> ());
              let rdir =
                match report_dir with
                | Some d -> d
                | None ->
                    if Sys.file_exists dir && Sys.is_directory dir then dir
                    else Filename.dirname dir
              in
              (Some rdir, Some ck))
      | None -> (
          match report_dir with
          | None -> (None, None)
          | Some dir ->
              let ck =
                Search.Checkpoint.create
                  ~path:(Filename.concat dir "checkpoint.json")
                  ()
              in
              Search.Checkpoint.set_meta ck
                [
                  ("benchmark", Obs.Jsonw.Str name);
                  ("config", Obs.Jsonw.Str fingerprint);
                ];
              (Some dir, Some ck))
    in
    with_artifacts ~kind:"optimize" trace report_dir @@ fun rep ->
    (* One budget for the whole invocation: the same deadline is polled
       by the enumerators, the verify loop, the ILP layout solver and
       the memory planner. *)
    let budget_t = Search.Budget.of_config config in
    let prune_persist =
      Option.map
        (fun dir ->
          let cache = Service.Cache.create ~dir () in
          Service.Prune_store.attach ~cache)
        prune_cache
    in
    let report =
      Mirage.superoptimize ~config ~budget:budget_t ?checkpoint ?prune_persist
        ~device spec
    in
    print_string (Mirage.summary report);
    (match Obs.Budget.degradations () with
    | [] -> ()
    | ds -> Printf.printf "degraded: %s\n" (String.concat ", " ds));
    List.iter
      (fun (pr : Mirage.piece_result) ->
        match pr.Mirage.outcome with
        | Some o ->
            Printf.printf "piece %d search: %s\n" pr.piece.Mirage.Partition.id
              (Search.Stats.to_string o.Search.Generator.stats);
            Printf.printf "best muGraph:\n%s\n"
              (Mugraph.Pretty.kernel_graph_to_string pr.Mirage.best)
        | None -> ())
      report.Mirage.pieces;
    let piece_snaps =
      List.filter_map
        (fun (pr : Mirage.piece_result) ->
          Option.map (fun o -> o.Search.Generator.metrics) pr.Mirage.outcome)
        report.Mirage.pieces
    in
    (* Opt-in runnable-backend post-pass: each winning muGraph is
       compiled with the system cc and executed against the muGraph
       interpreter. Forensics land under RUN_DIR/differential/. *)
    let diff_results =
      if not differential then []
      else
        List.map
          (fun (pr : Mirage.piece_result) ->
            let id = pr.Mirage.piece.Mirage.Partition.id in
            let label =
              Printf.sprintf "%s_piece%d"
                (String.lowercase_ascii b.Workloads.Bench_defs.name)
                id
            in
            let rdir =
              Option.map
                (fun d ->
                  Filename.concat (Filename.concat d "differential") label)
                report_dir
            in
            (id, differential_post ?report_dir:rdir ~label pr.Mirage.best))
          report.Mirage.pieces
    in
    (match rep with
    | None -> ()
    | Some r ->
        Obs.Report.add r "benchmark"
          (Obs.Jsonw.Obj
             [
               ("name", Obs.Jsonw.Str b.Workloads.Bench_defs.name);
               ("arch", Obs.Jsonw.Str b.Workloads.Bench_defs.base_arch);
             ]);
        Obs.Report.add r "device"
          (Obs.Jsonw.Str device.Gpusim.Device.name);
        Obs.Report.add r "config" (Search.Config.to_json config);
        (* the resolved worker count, surfaced at top level so scaling
           sweeps don't have to dig it out of the config section *)
        Obs.Report.add r "workers"
          (Obs.Jsonw.Int config.Search.Config.num_workers);
        let outcomes =
          List.filter_map
            (fun (pr : Mirage.piece_result) -> pr.Mirage.outcome)
            report.Mirage.pieces
        in
        Obs.Report.add r "funnel"
          (funnel_json
             (sum_funnels
                (List.map (fun o -> o.Search.Generator.stats) outcomes)));
        let q, h, a, t, dh, de =
          List.fold_left
            (fun (q, h, a, t, dh, de) (o : Search.Generator.outcome) ->
              let sv = o.Search.Generator.solver in
              ( q + sv.Smtlite.Solver.queries,
                h + sv.Smtlite.Solver.cache_hits,
                a + sv.Smtlite.Solver.accepted,
                t +. sv.Smtlite.Solver.solve_time_s,
                dh + sv.Smtlite.Solver.disk_hits,
                de + sv.Smtlite.Solver.disk_entries ))
            (0, 0, 0, 0.0, 0, 0) outcomes
        in
        Obs.Report.add r "solver"
          (Obs.Jsonw.Obj
             [
               ("queries", Obs.Jsonw.Int q);
               ("cache_hits", Obs.Jsonw.Int h);
               ("accepted", Obs.Jsonw.Int a);
               ("solve_time_s", Obs.Jsonw.Float t);
               ("disk_hits", Obs.Jsonw.Int dh);
               ("disk_entries", Obs.Jsonw.Int de);
             ]);
        Obs.Report.add r "cost"
          (Obs.Jsonw.Obj
             [
               ("input_us", Obs.Jsonw.Float report.Mirage.input_us);
               ("optimized_us", Obs.Jsonw.Float report.Mirage.optimized_us);
               ("speedup", Obs.Jsonw.Float report.Mirage.speedup);
               ( "pieces",
                 Obs.Jsonw.List
                   (List.map
                      (fun (pr : Mirage.piece_result) ->
                        Obs.Jsonw.Obj
                          [
                            ( "id",
                              Obs.Jsonw.Int pr.Mirage.piece.Mirage.Partition.id
                            );
                            ( "input_us",
                              Obs.Jsonw.Float
                                pr.Mirage.input_cost.Gpusim.Cost.total_us );
                            ("best", Gpusim.Cost.to_json pr.Mirage.best_cost);
                          ])
                      report.Mirage.pieces) );
             ]);
        (* The winning muGraph per piece, serialized with the checkpoint
           codec: [run-winner RUN_DIR] compiles and executes these. *)
        Obs.Report.add r "winner"
          (Obs.Jsonw.List
             (List.map
                (fun (pr : Mirage.piece_result) ->
                  Obs.Jsonw.Obj
                    [
                      ( "piece",
                        Obs.Jsonw.Int pr.Mirage.piece.Mirage.Partition.id );
                      ( "graph",
                        Search.Checkpoint.graph_to_json pr.Mirage.best );
                    ])
                report.Mirage.pieces));
        if differential then
          Obs.Report.add r "differential"
            (Obs.Jsonw.List
               (List.map
                  (fun (id, res) ->
                    Obs.Jsonw.Obj
                      [
                        ("piece", Obs.Jsonw.Int id);
                        ( "status",
                          Obs.Jsonw.Str
                            (match res with
                            | None -> "skipped"
                            | Some true -> "ok"
                            | Some false -> "mismatch") );
                      ])
                  diff_results));
        Obs.Report.add r "metrics"
          (Obs.Metrics.to_json (merged_metrics piece_snaps)));
    if metrics then
      Printf.printf "== metrics\n%s"
        (Obs.Metrics.to_table (merged_metrics piece_snaps));
    if List.exists (fun (_, res) -> res = Some false) diff_results then exit 1
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run the full superoptimizer on a benchmark (reduced dims)")
    Term.(
      const run $ bench_arg $ device_arg $ ops_arg $ workers_arg $ budget_arg
      $ ref_verify_arg $ trace_arg $ metrics_flag $ report_arg $ resume_arg
      $ prune_cache_arg $ differential_arg)

let stats_cmd =
  let run name device max_ops workers budget reference_verify trace report_dir =
    let b = lookup name in
    let spec, _ = b.Workloads.Bench_defs.reduced () in
    let config =
      search_config ~max_ops ~workers ~budget ~reference_verify spec
    in
    with_artifacts ~kind:"stats" trace report_dir @@ fun rep ->
    let o = Search.Generator.run ~config ~verify_trials:2 ~device ~spec () in
    (match rep with
    | None -> ()
    | Some r ->
        Obs.Report.add r "benchmark"
          (Obs.Jsonw.Obj
             [
               ("name", Obs.Jsonw.Str b.Workloads.Bench_defs.name);
               ("arch", Obs.Jsonw.Str b.Workloads.Bench_defs.base_arch);
             ]);
        Obs.Report.add r "device" (Obs.Jsonw.Str device.Gpusim.Device.name);
        Obs.Report.add r "config" (Search.Config.to_json config);
        Obs.Report.add r "funnel" (funnel_json o.Search.Generator.stats);
        Obs.Report.add r "solver" (solver_json o.Search.Generator.solver);
        (match o.Search.Generator.best with
        | Some best ->
            Obs.Report.add r "cost"
              (Obs.Jsonw.Obj
                 [
                   ( "optimized_us",
                     Obs.Jsonw.Float best.Search.Generator.cost.Gpusim.Cost.total_us
                   );
                   ("best", Gpusim.Cost.to_json best.Search.Generator.cost);
                 ])
        | None -> ());
        Obs.Report.add r "metrics"
          (Obs.Metrics.to_json (merged_metrics [ o.Search.Generator.metrics ])));
    let s = o.Search.Generator.stats in
    let open Search.Stats in
    (* Each stage of the funnel subtracts one rejection class from the
       attempted extensions; non-negative by the funnel invariant. *)
    let shape_ok = s.expanded - s.shape_rejected in
    let mem_ok = shape_ok - s.memory_rejected in
    let not_pruned = mem_ok - s.pruned_abstract in
    let canonical = not_pruned - s.canonical_rejected in
    Printf.printf "== search funnel: %s on %s (reduced dims)\n"
      b.Workloads.Bench_defs.name device.Gpusim.Device.name;
    Printf.printf "  %-24s %9d\n" "expanded" s.expanded;
    Printf.printf "  %-24s %9d   (-%d shape-rejected)\n" "shape-ok" shape_ok
      s.shape_rejected;
    Printf.printf "  %-24s %9d   (-%d over the smem limit)\n" "mem-ok" mem_ok
      s.memory_rejected;
    Printf.printf "  %-24s %9d   (-%d pruned by abstract expr)\n" "not-pruned"
      not_pruned s.pruned_abstract;
    Printf.printf "  %-24s %9d   (-%d non-canonical)\n" "canonical" canonical
      s.canonical_rejected;
    Printf.printf "  %-24s %9d\n" "candidates" s.candidates;
    Printf.printf "  %-24s %9d\n" "verified" s.verified;
    Printf.printf "  %-24s %9d\n" "duplicates" s.duplicates;
    Printf.printf "  funnel invariant: %s; %.2f s elapsed%s\n"
      (if Search.Stats.funnel_ok s then "ok" else "VIOLATED")
      s.elapsed_s
      (if o.Search.Generator.budget_exhausted then " (budget exhausted)"
       else "");
    if o.Search.Generator.task_failures > 0 then
      Printf.printf "  task crashes quarantined: %d\n"
        o.Search.Generator.task_failures;
    (match o.Search.Generator.degraded with
    | [] -> ()
    | ds -> Printf.printf "  degraded: %s\n" (String.concat ", " ds));
    let sv = o.Search.Generator.solver in
    let hit_pct =
      if sv.Smtlite.Solver.queries = 0 then 0.0
      else
        100.0
        *. float_of_int sv.Smtlite.Solver.cache_hits
        /. float_of_int sv.Smtlite.Solver.queries
    in
    Printf.printf
      "== solver: %d queries, %d cache hits (%.1f%%), %d accepted, %.4f s \
       solving\n"
      sv.Smtlite.Solver.queries sv.Smtlite.Solver.cache_hits hit_pct
      sv.Smtlite.Solver.accepted sv.Smtlite.Solver.solve_time_s;
    Printf.printf "== metrics\n%s"
      (Obs.Metrics.to_table (merged_metrics [ o.Search.Generator.metrics ]));
    if not (Search.Stats.funnel_ok s) then exit 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the search on a benchmark and print the full search funnel \
          (expanded, per-stage rejections, candidates, verified), solver and \
          verifier telemetry")
    Term.(
      const run $ bench_arg $ device_arg $ ops_arg $ workers_arg $ budget_arg
      $ ref_verify_arg $ trace_arg $ report_arg)

(* ------------------------------------------------------------------ *)
(* Forensics over run artifacts: explain and diff                      *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN_DIR"
          ~doc:"Run directory from --report (or a journal.jsonl file).")
  in
  let cand_arg =
    Arg.(
      required
      & pos 1 (some int) None
      & info [] ~docv:"CANDIDATE"
          ~doc:"Candidate id (the \"cand\" field of journal events).")
  in
  let run dir cand =
    let jpath =
      if Sys.file_exists dir && Sys.is_directory dir then
        Filename.concat dir "journal.jsonl"
      else dir
    in
    match Obs.Journal.read_file jpath with
    | Error msg ->
        Printf.eprintf "explain: %s: %s\n" jpath msg;
        exit 2
    | Ok events ->
        let mine =
          List.filter (fun e -> Obs.Journal.cand_of e = cand) events
          |> List.sort (fun a b ->
                 compare (Obs.Journal.seq_of a) (Obs.Journal.seq_of b))
        in
        if mine = [] then begin
          Printf.eprintf "explain: no events for candidate %d in %s\n" cand
            jpath;
          exit 1
        end;
        Printf.printf "== candidate %d: %d event(s)\n" cand (List.length mine);
        List.iter
          (fun e ->
            let detail =
              match e with
              | Obs.Jsonw.Obj fields ->
                  fields
                  |> List.filter (fun (k, _) ->
                         not (List.mem k [ "seq"; "ts"; "dom"; "ev"; "cand" ]))
                  |> List.map (fun (k, v) ->
                         Printf.sprintf "%s=%s" k (Obs.Jsonw.to_string v))
                  |> String.concat " "
              | _ -> ""
            in
            let ts =
              match Obs.Jsonw.member "ts" e with
              | Some (Obs.Jsonw.Float f) -> f
              | Some (Obs.Jsonw.Int i) -> float_of_int i
              | _ -> 0.0
            in
            Printf.printf "%8d  %9.4fs  %-16s %s\n" (Obs.Journal.seq_of e) ts
              (Obs.Journal.typ_of e) detail)
          mine;
        (* one line summarizing how the candidate's story ended *)
        let last = List.nth mine (List.length mine - 1) in
        let str_field k e =
          match Obs.Jsonw.member k e with
          | Some (Obs.Jsonw.Str s) -> s
          | _ -> "?"
        in
        (match Obs.Journal.typ_of last with
        | "cand.reject" ->
            Printf.printf "-- rejected: %s\n" (str_field "reason" last)
        | "cand.accept" ->
            Printf.printf "-- accepted into the search prefix\n"
        | "graph.emit" ->
            Printf.printf "-- emitted as a complete muGraph (unverified)\n"
        | "verify.verdict" ->
            Printf.printf "-- verifier verdict: %s\n" (str_field "verdict" last)
        | "cost.total" | "cost.kernel" ->
            Printf.printf "-- selected as the best verified muGraph\n"
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Reconstruct one candidate's lifecycle (expansion, rejection reason, \
          verification verdict, cost attribution) from a run's journal")
    Term.(const run $ dir_arg $ cand_arg)

let diff_cmd =
  let a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN_A" ~doc:"Baseline run directory (or report.json).")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"RUN_B" ~doc:"Candidate run directory (or report.json).")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.05
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:
            "Regression threshold on the gated keys (cost.optimized_us, \
             timing.wall_s) as a fraction: 0.05 = 5%. Exceeding it exits \
             nonzero.")
  in
  let run a b threshold =
    match (Obs.Report.load a, Obs.Report.load b) with
    | Error e, _ ->
        Printf.eprintf "diff: %s: %s\n" a e;
        exit 2
    | _, Error e ->
        Printf.eprintf "diff: %s: %s\n" b e;
        exit 2
    | Ok ja, Ok jb ->
        let ds = Obs.Report.num_deltas ja jb in
        let changed =
          List.filter (fun (d : Obs.Report.delta) -> d.va <> d.vb) ds
        in
        Printf.printf "%-44s %14s %14s %9s\n" "key" "baseline" "candidate"
          "delta";
        List.iter
          (fun (d : Obs.Report.delta) ->
            let r = Obs.Report.rel d in
            Printf.printf "%-44s %14.6g %14.6g %+8.1f%%\n" d.key d.va d.vb
              (100.0 *. r))
          changed;
        Printf.printf "-- %d shared numeric key(s), %d changed\n"
          (List.length ds) (List.length changed);
        let violations = Obs.Report.gate ~threshold ja jb in
        if violations = [] then
          Printf.printf "-- no regression above %.1f%% on gated keys\n"
            (100.0 *. threshold)
        else begin
          List.iter
            (fun (d : Obs.Report.delta) ->
              Printf.printf
                "REGRESSION %s: %.6g -> %.6g (%+.1f%%, threshold %.1f%%)\n"
                d.key d.va d.vb
                (100.0 *. Obs.Report.rel d)
                (100.0 *. threshold))
            violations;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two run reports key by key (funnel, costs, timings); exits \
          nonzero when a gated key regresses beyond the threshold")
    Term.(const run $ a_arg $ b_arg $ threshold_arg)

let emit_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run name out =
    let b = lookup name in
    let cuda =
      Codegen.Cuda_emit.emit_kernel
        ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
        b.Workloads.Bench_defs.mirage
    in
    match out with
    | None -> print_string cuda
    | Some path ->
        let oc = open_out path in
        output_string oc cuda;
        close_out oc;
        Printf.printf "wrote %d lines to %s\n" (Codegen.Cuda_emit.loc cuda)
          path
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit the CUDA for a benchmark's Mirage muGraph")
    Term.(const run $ bench_arg $ out_arg)

let run_winner_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN_DIR"
          ~doc:"Run directory written by optimize --report.")
  in
  let trials_arg =
    Arg.(
      value & opt int 8
      & info [ "trials" ] ~docv:"N" ~doc:"Random input sets to execute.")
  in
  let tol_arg =
    Arg.(
      value & opt float 1e-4
      & info [ "tol" ] ~docv:"EPS" ~doc:"Maximum relative error accepted.")
  in
  let run dir device trials tol =
    let read_file path =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let report_path = Filename.concat dir "report.json" in
    (* Winning muGraphs as persisted by optimize --report. *)
    let winners_of_report () =
      if not (Sys.file_exists report_path) then None
      else
        match Obs.Jsonw.of_string (read_file report_path) with
        | Error msg ->
            Printf.eprintf "run-winner: %s: %s\n" report_path msg;
            exit 2
        | Ok j -> (
            match Obs.Jsonw.member "winner" j with
            | Some (Obs.Jsonw.List l) ->
                Some
                  (List.filter_map
                     (fun e ->
                       match
                         ( Obs.Jsonw.member "piece" e,
                           Obs.Jsonw.member "graph" e )
                       with
                       | Some (Obs.Jsonw.Int id), Some gj -> (
                           match Search.Checkpoint.graph_of_json gj with
                           | Ok g -> Some (id, g)
                           | Error msg ->
                               Printf.eprintf
                                 "run-winner: piece %d: bad winner graph: %s\n"
                                 id msg;
                               exit 2)
                       | _ -> None)
                     l)
            | _ -> None)
    in
    (* Older runs have no winner section: fall back to the checkpoint's
       candidate pool and pick the cheapest per piece under the cost
       model (the same criterion the search's selection uses). *)
    let winners_of_checkpoint () =
      match Search.Checkpoint.load dir with
      | Error msg ->
          Printf.eprintf
            "run-winner: %s has no winner section in report.json and no \
             loadable checkpoint.json (%s)\n"
            dir msg;
          exit 2
      | Ok ck ->
          List.init 64 (fun id -> id)
          |> List.filter_map (fun id ->
                 match Search.Checkpoint.candidates ck ~piece:id with
                 | [] -> None
                 | cands ->
                     let _, best =
                       List.fold_left
                         (fun (bc, bg) (_, g) ->
                           let c = Gpusim.Cost.total_us device g in
                           if c < bc then (c, Some g) else (bc, bg))
                         (infinity, None) cands
                     in
                     Option.map (fun g -> (id, g)) best)
    in
    let winners =
      match winners_of_report () with
      | Some (_ :: _ as ws) -> ws
      | _ -> winners_of_checkpoint ()
    in
    if winners = [] then begin
      Printf.eprintf "run-winner: no winning muGraphs found in %s\n" dir;
      exit 2
    end;
    if not (Codegen.C_exec.cc_available ()) then begin
      Printf.printf
        "*** run-winner: SKIPPED — no working C compiler (cc) on PATH; the \
         runnable backend cannot be exercised here. ***\n";
      exit 0
    end;
    let failed = ref false in
    List.iter
      (fun (id, g) ->
        let label = Printf.sprintf "winner_piece%d" id in
        let rdir =
          Filename.concat (Filename.concat dir "differential") label
        in
        match
          Codegen.Differential.check ~trials ~tol ~report_dir:rdir ~keep:true
            ~name:label g
        with
        | Error e ->
            Printf.printf "piece %d: ERROR %s\n" id e;
            failed := true
        | Ok o ->
            Printf.printf "%s\n" (Codegen.Differential.pp_outcome o);
            Printf.printf "  generated C: %s\n" o.Codegen.Differential.c_file;
            if not o.Codegen.Differential.ok then failed := true)
      winners;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "run-winner"
       ~doc:
         "Lower the winning muGraph(s) of a --report run directory to the \
          imperative IR, compile the generated C with the system compiler, \
          execute on random inputs through the subprocess harness and \
          compare against the muGraph interpreter")
    Term.(const run $ dir_arg $ device_arg $ trials_arg $ tol_arg)

let symverify_cmd =
  let run name =
    let b = lookup name in
    let spec, plan = b.Workloads.Bench_defs.reduced () in
    Printf.printf
      "exact symbolic verification of the %s Mirage plan (reduced dims)\n"
      b.Workloads.Bench_defs.name;
    let r = Verify.Symbolic.equivalent ~spec plan in
    Printf.printf "result: %s\n" (Verify.Symbolic.to_string r);
    match r with Verify.Symbolic.Equivalent -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "symverify"
       ~doc:
         "Prove a benchmark's Mirage plan equivalent with the exact \
          symbolic verifier (paper §7's solver-based path)")
    Term.(const run $ bench_arg)

(* ------------------------------------------------------------------ *)
(* The optimization service: a daemon with a fingerprint-keyed result
   cache, and a one-shot client for it.                                *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/mirage-serve.sock"
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let cache_dir_arg =
    Arg.(
      value
      & opt string ".mirage-cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"On-disk result cache directory (content-addressed).")
  in
  let max_searches_arg =
    Arg.(
      value & opt int 2
      & info [ "max-searches" ] ~docv:"N"
          ~doc:"Concurrent searches the daemon runs (each fans out over \
                --workers domains).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Journal request/search lifecycle events to $(docv).")
  in
  let slow_threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-threshold" ] ~docv:"MS"
          ~doc:
            "Arm slow-request forensics: an optimize request taking at \
             least $(docv) milliseconds leaves a per-request report \
             directory (envelope, rid-filtered journal slice, trace).")
  in
  let slow_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for slow-request reports (default: the cache \
             directory suffixed with -slow).")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Live-connection bound: connections beyond $(docv) are \
             answered with a typed overloaded rejection (0 = unlimited).")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Search-queue bound: at most $(docv) distinct searches may \
             wait for a slot; beyond that, typed overloaded (0 = \
             unlimited).")
  in
  let tenant_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "tenant-rate" ] ~docv:"TOKENS_PER_S"
          ~doc:
            "Arm per-tenant quotas: requests carrying a tenant field \
             draw from a token bucket refilled at $(docv) tokens/s \
             (0 = quotas off).")
  in
  let tenant_burst_arg =
    Arg.(
      value & opt float 10.0
      & info [ "tenant-burst" ] ~docv:"TOKENS"
          ~doc:"Token-bucket capacity per tenant (burst allowance).")
  in
  let frame_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "frame-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-frame read/write deadline: a peer that stalls \
             mid-frame longer than $(docv) is disconnected (slowloris \
             defense; 0 = unlimited).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Idle-connection deadline: a connection that sends nothing \
             for $(docv) is closed (0 = unlimited).")
  in
  let cache_max_bytes_arg =
    Arg.(
      value & opt int 0
      & info [ "cache-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte cap on the on-disk result cache: stores beyond it \
             evict least-recently-used entries (0 = unlimited).")
  in
  let run socket cache_dir device max_ops workers budget reference_verify
      max_searches journal slow_threshold_ms slow_dir max_connections
      max_queue_depth tenant_rate tenant_burst frame_timeout_s idle_timeout_s
      cache_max_bytes =
    (match journal with
    | Some path -> ignore (Obs.Journal.enable path)
    | None -> ());
    let base_config =
      {
        Search.Config.default with
        Search.Config.max_block_ops = max_ops;
        num_workers = resolve_workers workers;
        time_budget_s = budget;
        verify_fast_path = not reference_verify;
      }
    in
    let server =
      Service.Server.create ~device ~base_config
        ~max_concurrent_searches:max_searches ~max_connections
        ~max_queue_depth ~tenant_rate ~tenant_burst ~frame_timeout_s
        ~idle_timeout_s ~cache_max_bytes
        ?slow_threshold_s:(Option.map (fun ms -> ms /. 1e3) slow_threshold_ms)
        ?slow_dir ~socket_path:socket ~cache_dir ()
    in
    (* the ambient profiler records into the telemetry registry, so the
       phase sketches ride the daemon's metrics exposition and `top` *)
    ignore
      (Obs.Profile.enable
         ~registry:(Service.Telemetry.registry (Service.Server.telemetry server))
         ());
    Printf.printf "mirage service: socket %s, cache %s, device %s, %d worker(s)\n%!"
      socket cache_dir device.Gpusim.Device.name
      base_config.Search.Config.num_workers;
    (match Service.Server.slowlog server with
    | Some sl ->
        Printf.printf "slow-request forensics: >= %.1f ms -> %s\n%!"
          (Service.Slowlog.threshold_s sl *. 1e3)
          (Service.Slowlog.dir sl)
    | None -> ());
    (* a live daemon on the socket is a refusal, not a hijack *)
    (try Service.Server.run server
     with Failure m ->
       Printf.eprintf "serve: %s\n" m;
       exit 1);
    (* flush the journal before exiting so the last lifecycle events of
       a short-lived daemon (CI smokes) reach disk *)
    Obs.Journal.disable ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the optimization service daemon: a Unix-socket server with \
          a fingerprint-keyed muGraph result cache and single-flight \
          coalescing of identical concurrent requests")
    Term.(
      const run $ socket_arg $ cache_dir_arg $ device_arg $ ops_arg
      $ workers_arg $ budget_arg $ ref_verify_arg $ max_searches_arg
      $ journal_arg $ slow_threshold_arg $ slow_dir_arg $ max_conns_arg
      $ max_queue_arg $ tenant_rate_arg $ tenant_burst_arg
      $ frame_timeout_arg $ idle_timeout_arg $ cache_max_bytes_arg)

(* Render the search-phase profile captured in a run's report.json:
   the phase tree (count/total/self/p50/p99), the wall-time attribution
   line, and the prune rules ranked by estimated subtree savings. *)
let profile_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN_DIR" ~doc:"Run directory (or report.json).")
  in
  let min_cov_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-coverage" ] ~docv:"FRACTION"
          ~doc:
            "Fail (exit 1) unless at least $(docv) of the dominant root \
             phase's wall time is attributed to its named sub-phases \
             (0.95 = 95%).")
  in
  let run dir min_cov =
    match Obs.Report.load dir with
    | Error e ->
        Printf.eprintf "profile: %s: %s\n" dir e;
        exit 2
    | Ok rep -> (
        match Obs.Jsonw.member "profile" rep with
        | None ->
            Printf.eprintf
              "profile: %s has no \"profile\" section (produced by runs \
               with --report-dir)\n"
              dir;
            exit 2
        | Some pj -> (
            match Obs.Profile.render pj with
            | Error m ->
                Printf.eprintf "profile: %s\n" m;
                exit 2
            | Ok text -> (
                print_string text;
                (* scheduler overlay: the work-stealing counters live in
                   the metrics section, not the phase tree — surface them
                   alongside the profile so scaling runs read one page *)
                (let counter name =
                   match
                     Obs.Jsonw.member "metrics" rep
                     |> Fun.flip Option.bind (Obs.Jsonw.member "counters")
                     |> Fun.flip Option.bind (Obs.Jsonw.member name)
                   with
                   | Some (Obs.Jsonw.Int n) -> n
                   | _ -> 0
                 in
                 let spawned = counter "search.steal.spawned" in
                 let steals = counter "search.steal.count" in
                 if spawned > 0 || steals > 0 then
                   Printf.printf
                     "scheduler: %d subtree task(s) spawned, %d stolen \
                      (%d empty/raced attempts)\n"
                     spawned steals
                     (counter "search.steal.failed"));
                match min_cov with
                | None -> ()
                | Some want -> (
                    match Obs.Profile.coverage pj with
                    | None ->
                        Printf.eprintf
                          "profile: no root phase to gate coverage on\n";
                        exit 1
                    | Some (root, cov) ->
                        if cov < want then begin
                          Printf.eprintf
                            "profile: %.1f%% of %S wall time attributed, \
                             below required %.1f%%\n"
                            (100.0 *. cov) root (100.0 *. want);
                          exit 1
                        end))))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyze the search-phase wall-time profile of a finished run: \
          phase breakdown with self/total attribution, per-phase latency \
          quantiles and prune-rule efficacy (fires and estimated subtree \
          savings), from the run report's profile section")
    Term.(const run $ dir_arg $ min_cov_arg)

let request_cmd =
  let what_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WHAT"
          ~doc:
            "A benchmark name (sends an optimize request), or one of \
             $(b,status), $(b,stats), $(b,metrics), $(b,shutdown).")
  in
  let prom_flag =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "With $(b,metrics): ask for (and print) the Prometheus text \
             exposition instead of the JSON snapshot.")
  in
  let progress_flag =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "With a benchmark: opt into live progress streaming and \
             render the interleaved frames (phase, nodes expanded, \
             candidates, best cost, budget remaining) as an updating \
             line on stderr while the search runs.")
  in
  let tenant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:
            "Tag the request with a tenant: it draws from that tenant's \
             token bucket on a quota-armed daemon (and may be answered \
             with $(b,quota_exceeded)).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "End-to-end deadline in milliseconds: bounds queue wait, \
             search budget and coalesced wait; an expired deadline is \
             answered with a typed $(b,timeout).")
  in
  let retry_flag =
    Arg.(
      value & flag
      & info [ "retry" ]
          ~doc:
            "Retry transient failures (transport errors, typed \
             $(b,overloaded)/$(b,quota_exceeded) rejections) with \
             bounded jittered exponential back-off, honoring the \
             server's retry_after_s hint.")
  in
  let drain_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "drain" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,shutdown): graceful drain — in-flight searches \
             get $(docv) seconds to finish before their budgets are \
             cancelled.")
  in
  let run socket what max_ops workers budget prometheus progress tenant
      deadline_ms retry drain_s =
    (* live progress rendering: one updating stderr line per frame (a
       plain newline-per-frame stream when stderr is not a tty) *)
    let tty = Unix.isatty Unix.stderr in
    let streamed = ref false in
    let on_progress frame =
      streamed := true;
      let num k =
        match Obs.Jsonw.member k frame with
        | Some (Obs.Jsonw.Float f) -> Some f
        | Some (Obs.Jsonw.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let int_ k =
        match Obs.Jsonw.member k frame with
        | Some (Obs.Jsonw.Int i) -> i
        | _ -> 0
      in
      let phase =
        match Obs.Jsonw.member "phase" frame with
        | Some (Obs.Jsonw.Str s) -> s
        | _ -> "?"
      in
      Printf.eprintf
        "%s[%6.1fs] %-9s nodes %-8d candidates %-5d best %s%s%s%s%!"
        (if tty then "\r\027[2K" else "")
        (match num "elapsed_s" with Some s -> s | None -> 0.0)
        phase (int_ "nodes_expanded") (int_ "candidates")
        (match num "best_cost_us" with
        | Some us -> Service.Top.pp_us us
        | None -> "-")
        (match int_ "tasks_stolen" with
        | 0 -> ""
        | n -> Printf.sprintf "  stolen %d" n)
        (match num "budget_remaining_s" with
        | Some s -> Printf.sprintf "  budget %.1fs" s
        | None -> "")
        (if tty then "" else "\n")
    in
    let send ?on_progress ~socket_path req =
      if retry then
        Service.Client.request_with_retry ?on_progress
          ~on_retry:(fun ~attempt ~delay_s ~reason ->
            Printf.eprintf "retry %d in %.2fs (%s)\n%!" attempt delay_s reason)
          ~socket_path req
      else Service.Client.request ?on_progress ~socket_path req
    in
    let resp =
      match what with
      | "metrics" when prometheus ->
          Service.Client.metrics ~format:"prometheus" ~socket_path:socket ()
      | "shutdown" ->
          Service.Client.shutdown ?drain_s ~socket_path:socket ()
      | "status" | "stats" | "metrics" ->
          send ~socket_path:socket (Obs.Jsonw.Obj [ ("op", Obs.Jsonw.Str what) ])
      | benchmark ->
          let fields =
            [
              ("op", Obs.Jsonw.Str "optimize");
              ("benchmark", Obs.Jsonw.Str benchmark);
              ("max_block_ops", Obs.Jsonw.Int max_ops);
              ("workers", Obs.Jsonw.Int (resolve_workers workers));
              ("budget_s", Obs.Jsonw.Float budget);
            ]
            @ (match tenant with
              | Some name -> [ ("tenant", Obs.Jsonw.Str name) ]
              | None -> [])
            @
            match deadline_ms with
            | Some ms -> [ ("deadline_ms", Obs.Jsonw.Float ms) ]
            | None -> []
          in
          send
            ?on_progress:(if progress then Some on_progress else None)
            ~socket_path:socket (Obs.Jsonw.Obj fields)
    in
    if !streamed && tty then Printf.eprintf "\n%!";
    match resp with
    | Error m ->
        Printf.eprintf "request failed: %s\n" m;
        exit 1
    | Ok j -> (
        (match (what, prometheus, Obs.Jsonw.member "text" j) with
        | "metrics", true, Some (Obs.Jsonw.Str text) -> print_string text
        | _ -> print_endline (Obs.Jsonw.pretty j));
        (* a metrics scrape is validated at the edge: a daemon answering
           with a malformed snapshot fails the request loudly *)
        (if what = "metrics" && not prometheus then
           match Service.Telemetry.check_snapshot j with
           | Ok () -> ()
           | Error m ->
               Printf.eprintf "malformed metrics snapshot: %s\n" m;
               exit 1);
        match Obs.Jsonw.member "status" j with
        | Some (Obs.Jsonw.Str "ok") -> ()
        | _ -> exit 1)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running optimization service and print \
          the JSON response")
    Term.(
      const run $ socket_arg $ what_arg $ ops_arg $ workers_arg $ budget_arg
      $ prom_flag $ progress_flag $ tenant_arg $ deadline_arg $ retry_flag
      $ drain_arg)

(* Fetch one validated exposition snapshot from a running daemon. *)
let fetch_snapshot socket =
  match Service.Client.metrics ~socket_path:socket () with
  | Error m ->
      Printf.eprintf "metrics request failed: %s\n" m;
      exit 1
  | Ok snap -> (
      match Service.Telemetry.check_snapshot snap with
      | Ok () -> snap
      | Error m ->
          Printf.eprintf "malformed metrics snapshot: %s\n" m;
          exit 1)

let status_cmd =
  let run socket =
    let snap = fetch_snapshot socket in
    print_string (Service.Top.render ~now:(Unix.gettimeofday ()) snap)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "One-shot health summary of a running optimization service: \
          uptime, requests served, in-flight count, cache hit rate and \
          stage latency quantiles (from the validated metrics snapshot)")
    Term.(const run $ socket_arg)

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "n" ] ~docv:"SECONDS" ~doc:"Poll interval.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count"; "c" ] ~docv:"N"
          ~doc:"Stop after $(docv) polls (0 = run until interrupted).")
  in
  let run socket interval count =
    let interval = Float.max 0.05 interval in
    let prev = ref None in
    let i = ref 0 in
    let continue_ () = count <= 0 || !i < count in
    while continue_ () do
      let snap = fetch_snapshot socket in
      let now = Unix.gettimeofday () in
      (* clear screen + home, like top(1); skipped on the first paint so
         a single poll (--count 1) composes with pipes *)
      if count <> 1 then print_string "\027[2J\027[H";
      print_string (Service.Top.render ?prev:!prev ~now snap);
      flush stdout;
      prev := Some (now, snap);
      incr i;
      if continue_ () then Unix.sleepf interval
    done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live one-screen view of a running optimization service: req/s, \
          outcome and cache-hit tallies, per-stage latency quantiles \
          (p50/p90/p99/max), in-flight count and degradations, refreshed \
          every --interval seconds")
    Term.(const run $ socket_arg $ interval_arg $ count_arg)

let () =
  let info =
    Cmd.info "mirage-cli" ~version:"1.0.0"
      ~doc:"Mirage multi-level tensor-program superoptimizer (reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            verify_cmd;
            symverify_cmd;
            inspect_cmd;
            bench_cmd;
            optimize_cmd;
            stats_cmd;
            emit_cmd;
            run_winner_cmd;
            explain_cmd;
            diff_cmd;
            profile_cmd;
            serve_cmd;
            request_cmd;
            status_cmd;
            top_cmd;
          ]))
