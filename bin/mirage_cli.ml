(* Command-line interface to the Mirage reproduction.

   Subcommands:
     optimize  — superoptimize a named benchmark's specification
     stats     — run the search and print the full search funnel
     verify    — check a benchmark's Mirage plan against its spec
     inspect   — print a benchmark's plans, costs, and generated CUDA
     bench     — quick cost comparison across systems and devices
     list      — list available benchmarks *)

open Cmdliner

let device_conv =
  let parse s =
    match Gpusim.Device.by_name s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown device %S (a100|h100)" s))
  in
  Arg.conv (parse, fun fmt d -> Format.fprintf fmt "%s" d.Gpusim.Device.name)

let device_arg =
  Arg.(
    value
    & opt device_conv Gpusim.Device.a100
    & info [ "device"; "d" ] ~docv:"DEV" ~doc:"Target GPU model (a100 or h100).")

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK"
        ~doc:"Benchmark name: gqa, qknorm, rmsnorm, lora, gatedmlp, ntrans.")

let lookup name =
  match Workloads.Bench_defs.by_name name with
  | Some b -> b
  | None ->
      Printf.eprintf "unknown benchmark %S\n" name;
      exit 2

let list_cmd =
  let run () =
    List.iter
      (fun (b : Workloads.Bench_defs.benchmark) ->
        Printf.printf "%-10s %-32s (%s)\n" b.name b.description b.base_arch)
      (Workloads.Bench_defs.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const run $ const ())

let verify_cmd =
  let run name =
    let b = lookup name in
    let spec, plan = b.Workloads.Bench_defs.reduced () in
    Printf.printf "verifying %s Mirage plan against its specification\n"
      b.Workloads.Bench_defs.name;
    let r = Verify.Random_test.equivalent ~trials:3 ~spec plan in
    Printf.printf "result: %s\n" (Verify.Random_test.to_string r);
    match r with Verify.Random_test.Equivalent -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Probabilistically verify a benchmark's Mirage plan (reduced dims)")
    Term.(const run $ bench_arg)

let inspect_cmd =
  let run name device =
    let b = lookup name in
    let cost g = (Gpusim.Cost.cost device g).Gpusim.Cost.total_us in
    Printf.printf "== %s (%s) on %s\n" b.Workloads.Bench_defs.name
      b.Workloads.Bench_defs.base_arch device.Gpusim.Device.name;
    Printf.printf "-- specification:\n%s\n"
      (Mugraph.Pretty.kernel_graph_to_string b.Workloads.Bench_defs.spec);
    Printf.printf "-- Mirage muGraph (%.2f us):\n%s\n"
      (cost b.Workloads.Bench_defs.mirage)
      (Mugraph.Pretty.kernel_graph_to_string b.Workloads.Bench_defs.mirage);
    Printf.printf "-- optimizer report:\n%s\n"
      (Opt.Optimizer.summary
         (Opt.Optimizer.optimize device b.Workloads.Bench_defs.mirage));
    Printf.printf "-- generated CUDA:\n%s\n"
      (Codegen.Cuda_emit.emit_kernel
         ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
         b.Workloads.Bench_defs.mirage)
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Print plans, costs and generated code")
    Term.(const run $ bench_arg $ device_arg)

let bench_cmd =
  let run device =
    List.iter
      (fun (b : Workloads.Bench_defs.benchmark) ->
        let cost g = (Gpusim.Cost.cost device g).Gpusim.Cost.total_us in
        let mi = cost b.mirage in
        Printf.printf "%-10s Mirage %8.2f us |" b.name mi;
        List.iter
          (fun (n, g) -> Printf.printf " %s %.2f (%.2fx)" n (cost g) (cost g /. mi))
          b.systems;
        print_newline ())
      (Workloads.Bench_defs.all ())
  in
  Cmd.v (Cmd.info "bench" ~doc:"Cost all benchmarks on a device")
    Term.(const run $ device_arg)

(* Shared observability flags: [--trace FILE] records phase spans and
   writes Chrome trace-event JSON; [--metrics] dumps the merged metrics
   registry. Both default to off, leaving the plain output untouched. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record phase spans and write Chrome trace-event JSON to $(docv) \
           (load in chrome://tracing or Perfetto).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the merged metrics registry after the run.")

let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some file ->
      let t = Obs.Trace.enable () in
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.disable ();
          Obs.Trace.dump t file;
          Printf.printf "== trace: %d spans -> %s\n%s" (Obs.Trace.span_count t)
            file (Obs.Trace.summary t))
        f

(* The process-wide registry holds the verifier's counters; per-search
   registries hold the funnel and enumerator histograms. Merge them for
   one report. *)
let merged_metrics piece_snaps =
  Obs.Metrics.merge
    (piece_snaps @ [ Obs.Metrics.snapshot (Obs.Metrics.default ()) ])

let ops_arg =
  Arg.(
    value & opt int 8
    & info [ "max-block-ops" ] ~docv:"N"
        ~doc:"Maximum operators per block graph during the search.")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers"; "j" ] ~docv:"N" ~doc:"Search worker domains.")

let budget_arg =
  Arg.(
    value & opt float 120.0
    & info [ "budget" ] ~docv:"SECONDS" ~doc:"Search time budget.")

let search_config ~max_ops ~workers ~budget spec =
  let base =
    {
      Search.Config.default with
      Search.Config.max_block_ops = max_ops;
      num_workers = workers;
      time_budget_s = budget;
    }
  in
  Search.Config.for_spec ~base spec

let optimize_cmd =
  let run name device max_ops workers budget trace metrics =
    let b = lookup name in
    (* Superoptimize the reduced-dimension specification: the search is
       exhaustive and the discovered structure is dimension-uniform. *)
    let spec, _ = b.Workloads.Bench_defs.reduced () in
    let config = search_config ~max_ops ~workers ~budget spec in
    with_tracing trace @@ fun () ->
    let report = Mirage.superoptimize ~config ~device spec in
    print_string (Mirage.summary report);
    List.iter
      (fun (pr : Mirage.piece_result) ->
        match pr.Mirage.outcome with
        | Some o ->
            Printf.printf "piece %d search: %s\n" pr.piece.Mirage.Partition.id
              (Search.Stats.to_string o.Search.Generator.stats);
            Printf.printf "best muGraph:\n%s\n"
              (Mugraph.Pretty.kernel_graph_to_string pr.Mirage.best)
        | None -> ())
      report.Mirage.pieces;
    if metrics then begin
      let piece_snaps =
        List.filter_map
          (fun (pr : Mirage.piece_result) ->
            Option.map
              (fun o -> o.Search.Generator.metrics)
              pr.Mirage.outcome)
          report.Mirage.pieces
      in
      Printf.printf "== metrics\n%s"
        (Obs.Metrics.to_table (merged_metrics piece_snaps))
    end
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run the full superoptimizer on a benchmark (reduced dims)")
    Term.(
      const run $ bench_arg $ device_arg $ ops_arg $ workers_arg $ budget_arg
      $ trace_arg $ metrics_flag)

let stats_cmd =
  let run name device max_ops workers budget trace =
    let b = lookup name in
    let spec, _ = b.Workloads.Bench_defs.reduced () in
    let config = search_config ~max_ops ~workers ~budget spec in
    with_tracing trace @@ fun () ->
    let o = Search.Generator.run ~config ~verify_trials:2 ~device ~spec () in
    let s = o.Search.Generator.stats in
    let open Search.Stats in
    (* Each stage of the funnel subtracts one rejection class from the
       attempted extensions; non-negative by the funnel invariant. *)
    let shape_ok = s.expanded - s.shape_rejected in
    let mem_ok = shape_ok - s.memory_rejected in
    let not_pruned = mem_ok - s.pruned_abstract in
    let canonical = not_pruned - s.canonical_rejected in
    Printf.printf "== search funnel: %s on %s (reduced dims)\n"
      b.Workloads.Bench_defs.name device.Gpusim.Device.name;
    Printf.printf "  %-24s %9d\n" "expanded" s.expanded;
    Printf.printf "  %-24s %9d   (-%d shape-rejected)\n" "shape-ok" shape_ok
      s.shape_rejected;
    Printf.printf "  %-24s %9d   (-%d over the smem limit)\n" "mem-ok" mem_ok
      s.memory_rejected;
    Printf.printf "  %-24s %9d   (-%d pruned by abstract expr)\n" "not-pruned"
      not_pruned s.pruned_abstract;
    Printf.printf "  %-24s %9d   (-%d non-canonical)\n" "canonical" canonical
      s.canonical_rejected;
    Printf.printf "  %-24s %9d\n" "candidates" s.candidates;
    Printf.printf "  %-24s %9d\n" "verified" s.verified;
    Printf.printf "  %-24s %9d\n" "duplicates" s.duplicates;
    Printf.printf "  funnel invariant: %s; %.2f s elapsed%s\n"
      (if Search.Stats.funnel_ok s then "ok" else "VIOLATED")
      s.elapsed_s
      (if o.Search.Generator.budget_exhausted then " (budget exhausted)"
       else "");
    let sv = o.Search.Generator.solver in
    let hit_pct =
      if sv.Smtlite.Solver.queries = 0 then 0.0
      else
        100.0
        *. float_of_int sv.Smtlite.Solver.cache_hits
        /. float_of_int sv.Smtlite.Solver.queries
    in
    Printf.printf
      "== solver: %d queries, %d cache hits (%.1f%%), %d accepted, %.4f s \
       solving\n"
      sv.Smtlite.Solver.queries sv.Smtlite.Solver.cache_hits hit_pct
      sv.Smtlite.Solver.accepted sv.Smtlite.Solver.solve_time_s;
    Printf.printf "== metrics\n%s"
      (Obs.Metrics.to_table (merged_metrics [ o.Search.Generator.metrics ]));
    if not (Search.Stats.funnel_ok s) then exit 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the search on a benchmark and print the full search funnel \
          (expanded, per-stage rejections, candidates, verified), solver and \
          verifier telemetry")
    Term.(
      const run $ bench_arg $ device_arg $ ops_arg $ workers_arg $ budget_arg
      $ trace_arg)

let emit_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run name out =
    let b = lookup name in
    let cuda =
      Codegen.Cuda_emit.emit_kernel
        ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
        b.Workloads.Bench_defs.mirage
    in
    match out with
    | None -> print_string cuda
    | Some path ->
        let oc = open_out path in
        output_string oc cuda;
        close_out oc;
        Printf.printf "wrote %d lines to %s\n" (Codegen.Cuda_emit.loc cuda)
          path
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit the CUDA for a benchmark's Mirage muGraph")
    Term.(const run $ bench_arg $ out_arg)

let symverify_cmd =
  let run name =
    let b = lookup name in
    let spec, plan = b.Workloads.Bench_defs.reduced () in
    Printf.printf
      "exact symbolic verification of the %s Mirage plan (reduced dims)\n"
      b.Workloads.Bench_defs.name;
    let r = Verify.Symbolic.equivalent ~spec plan in
    Printf.printf "result: %s\n" (Verify.Symbolic.to_string r);
    match r with Verify.Symbolic.Equivalent -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "symverify"
       ~doc:
         "Prove a benchmark's Mirage plan equivalent with the exact \
          symbolic verifier (paper §7's solver-based path)")
    Term.(const run $ bench_arg)

let () =
  let info =
    Cmd.info "mirage-cli" ~version:"1.0.0"
      ~doc:"Mirage multi-level tensor-program superoptimizer (reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            verify_cmd;
            symverify_cmd;
            inspect_cmd;
            bench_cmd;
            optimize_cmd;
            stats_cmd;
            emit_cmd;
          ]))
