(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8). See DESIGN.md §4 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers.

     dune exec bench/main.exe                 # fig7 fig11 gqa_sweep table5(fast) micro
     dune exec bench/main.exe -- fig7
     dune exec bench/main.exe -- fig11
     dune exec bench/main.exe -- table5 [--full]
     dune exec bench/main.exe -- casestudy <gqa|qknorm|rmsnorm|lora|gatedmlp|ntrans>
     dune exec bench/main.exe -- gqa_sweep
     dune exec bench/main.exe -- verify
     dune exec bench/main.exe -- serve
     dune exec bench/main.exe -- profile
     dune exec bench/main.exe -- micro

   Several suites may be given at once (e.g. `fig7 verify --history F`)
   and run left to right into one history entry. *)

open Mugraph

let devices = [ Gpusim.Device.a100; Gpusim.Device.h100 ]

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Machine-readable output: suites append rows here and [--json FILE]
   writes them all at exit. The human-readable tables are unchanged. *)
let json_rows : Obs.Jsonw.t list ref = ref []
let json_suites : string list ref = ref []

(* Estimated Mirage costs of the Fig. 7 workloads, keyed
   "<device>.<benchmark>.mirage_us" — the values the bench history file
   tracks run over run and that the CI regression gate compares. *)
let history_costs : (string * float) list ref = ref []

(* Verifier throughput ratios from the `verify` suite, keyed
   "verify.<benchmark>.fast_over_ref" (fast trial time / reference trial
   time — lower is better). Wall-clock, so the gate treats them with the
   same leniency as wall_s. *)
let history_verify : (string * float) list ref = ref []

(* Work-stealing scaling and prune-cache ratios from the `enum` suite,
   keyed "enum.<benchmark>.speedup_4d" (higher is better) and
   "enum.<benchmark>.prune_warm_over_cold" (lower is better). *)
let history_enum : (string * float) list ref = ref []

(* Service latency ratios from the `serve` suite, keyed
   "serve.<benchmark>.warm_over_cold" (warm-cache request time / cold
   search request time — lower is better, and far below 1 when the
   result cache is healthy). Wall-clock; gated leniently like verify. *)
let history_serve : (string * float) list ref = ref []

(* Runnable-backend timings from the `codegen` suite, keyed
   "codegen.<benchmark>.lower_compile_s" (wall, gated one-sided with
   slack: only increases fail) and ".exec_over_interp" (recorded,
   ungated). *)
let history_codegen : (string * float) list ref = ref []

let jsuite name =
  if not (List.mem name !json_suites) then
    json_suites := !json_suites @ [ name ]

let jpush fields = json_rows := Obs.Jsonw.Obj fields :: !json_rows

(* ------------------------------------------------------------------ *)
(* Figure 7: six benchmarks x two GPUs, all systems normalized to      *)
(* Mirage (higher is better), speedup over the best baseline.          *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  hr "Figure 7: benchmark performance normalized to Mirage (higher = better)";
  jsuite "fig7";
  List.iter
    (fun dev ->
      Printf.printf "\n--- %s ---\n" dev.Gpusim.Device.name;
      Printf.printf "%-10s %-14s %8s %8s\n" "benchmark" "system" "us" "norm";
      List.iter
        (fun (b : Workloads.Bench_defs.benchmark) ->
          let cost g = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_us in
          let mirage_us = cost b.mirage in
          let best =
            List.fold_left (fun acc (_, g) -> Float.min acc (cost g)) infinity
              b.systems
          in
          let row system us =
            jpush
              Obs.Jsonw.
                [
                  ("suite", Str "fig7");
                  ("device", Str dev.Gpusim.Device.name);
                  ("benchmark", Str b.name);
                  ("system", Str system);
                  ("us", Float us);
                  ("norm", Float (mirage_us /. us));
                ]
          in
          List.iter
            (fun (name, g) ->
              let us = cost g in
              row name us;
              Printf.printf "%-10s %-14s %8.2f %8.2f\n" b.name name us
                (mirage_us /. us))
            b.systems;
          row "Mirage" mirage_us;
          history_costs :=
            !history_costs
            @ [
                ( Printf.sprintf "%s.%s.mirage_us" dev.Gpusim.Device.name
                    b.name,
                  mirage_us );
              ];
          Printf.printf "%-10s %-14s %8.2f %8.2f  <= %.2fx over best baseline\n"
            b.name "Mirage" mirage_us 1.0 (best /. mirage_us))
        (Workloads.Bench_defs.all ()))
    devices

(* ------------------------------------------------------------------ *)
(* Figure 11: end-to-end latency, PyTorch vs PyTorch + Mirage kernels  *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  hr "Figure 11: end-to-end inference latency (PyTorch vs PyTorch+Mirage)";
  jsuite "fig11";
  List.iter
    (fun dev ->
      Printf.printf "\n--- %s ---\n" dev.Gpusim.Device.name;
      Printf.printf "%-14s %12s %12s %8s\n" "model" "PyTorch(us)"
        "+Mirage(us)" "speedup";
      List.iter
        (fun m ->
          let base = Workloads.Models.latency_us dev m ~optimized:false in
          let opti = Workloads.Models.latency_us dev m ~optimized:true in
          jpush
            Obs.Jsonw.
              [
                ("suite", Str "fig11");
                ("device", Str dev.Gpusim.Device.name);
                ("model", Str m.Workloads.Models.name);
                ("pytorch_us", Float base);
                ("mirage_us", Float opti);
                ("speedup", Float (base /. opti));
              ];
          Printf.printf "%-14s %12.0f %12.0f %7.2fx\n"
            m.Workloads.Models.name base opti (base /. opti))
        (Workloads.Models.all ()))
    devices

(* ------------------------------------------------------------------ *)
(* Table 5: search-time ablation on RMSNorm (multithreading and        *)
(* abstract-expression pruning) vs max operators per block graph.      *)
(* ------------------------------------------------------------------ *)

let table5 ~full () =
  hr "Table 5: muGraph generation time for RMSNorm (seconds)";
  let spec = Baselines.Templates.rmsnorm_matmul_spec ~b:16 ~h:1024 ~d:4096 in
  let cap = if full then 600.0 else 60.0 in
  let workers = max 2 (Domain.recommended_domain_count ()) in
  Printf.printf
    "(host has %d core(s); the multithreaded column uses %d domains)\n"
    (Domain.recommended_domain_count ())
    workers;
  Printf.printf
    "(cells hitting the %.0fs cap report \">%.0f\"; use --full for the 600s \
     cap and ops up to 11)\n\n"
    cap cap;
  let base =
    {
      Search.Config.default with
      Search.Config.grid_candidates = [ [| 128 |] ];
      forloop_candidates = [ [| 16 |] ];
      time_budget_s = cap;
    }
  in
  let measure ~ops ~nworkers ~pruning =
    let cfg =
      Search.Config.for_spec
        ~base:
          {
            base with
            Search.Config.max_block_ops = ops;
            num_workers = nworkers;
            use_abstract_pruning = pruning;
          }
        spec
    in
    let t, exhausted = Search.Generator.search_time ~config:cfg ~spec () in
    if exhausted then Printf.sprintf ">%.0f" cap else Printf.sprintf "%.1f" t
  in
  let op_range = if full then [ 5; 6; 7; 8; 9; 10; 11 ] else [ 5; 6; 7; 8 ] in
  Printf.printf "%-18s %12s %22s %22s\n" "max ops in block" "Mirage"
    "w/o multithreading" "w/o abstract expr";
  List.iter
    (fun ops ->
      let m = measure ~ops ~nworkers:workers ~pruning:true in
      let s = measure ~ops ~nworkers:1 ~pruning:true in
      let n = measure ~ops ~nworkers:1 ~pruning:false in
      Printf.printf "%-18d %12s %22s %22s\n%!" ops m s n)
    op_range

(* ------------------------------------------------------------------ *)
(* Case studies (Figs. 4b, 8b, 9b, 10b + GQA/nTrans): run the actual   *)
(* search on the reduced-dimension spec, verify what it finds, and     *)
(* compare against the paper's discovered muGraph (our template).      *)
(* ------------------------------------------------------------------ *)

let casestudy name () =
  let b =
    match Workloads.Bench_defs.by_name name with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %S\n" name;
        exit 2
  in
  hr
    (Printf.sprintf "Case study: %s (%s)" b.Workloads.Bench_defs.name
       b.Workloads.Bench_defs.base_arch);
  let _, template = b.Workloads.Bench_defs.reduced () in
  (* The search spec uses reduced but shape-distinctive dimensions: the
     generator's work depends only on shapes, and dims like 4/64/256 avoid
     the accidental shape coincidences of tiny test dims while keeping
     finite-field verification fast. *)
  let spec, grids, loops =
    match String.lowercase_ascii name with
    | "rmsnorm" ->
        ( Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:64 ~d:256,
          [ [| 8 |] ],
          [ [| 4 |] ] )
    | "gatedmlp" ->
        ( Baselines.Templates.gated_mlp_spec ~b:4 ~h:64 ~f:256,
          [ [| 8 |] ],
          [ [| 4 |] ] )
    | "lora" ->
        ( Baselines.Templates.lora_spec ~m:64 ~k:32 ~r:4 ~n:8,
          [ [| 8 |] ],
          [ [| 4 |] ] )
    | "ntrans" ->
        ( Baselines.Templates.ntrans_spec ~b:8 ~d:64,
          [ [| 4 |] ],
          [ [||] ] )
    | _ -> (fst (b.Workloads.Bench_defs.reduced ()), [ [| 2 |]; [| 4 |] ], [ [||]; [| 2 |] ])
  in
  let spec_small, _ = b.Workloads.Bench_defs.reduced () in
  Printf.printf "specification (search dims):\n%s\n\n"
    (Pretty.kernel_graph_to_string spec);
  Printf.printf "paper-discovered muGraph (template): verification %s\n\n"
    (Verify.Random_test.to_string
       (Verify.Random_test.equivalent ~trials:3 ~spec:spec_small template));
  (* run the expression-guided generator on the spec *)
  let budget = 120.0 in
  let base =
    {
      Search.Config.default with
      Search.Config.grid_candidates = grids;
      forloop_candidates = loops;
      max_block_ops = 8;
      num_workers = 1;
      time_budget_s = budget;
    }
  in
  let cfg = Search.Config.for_spec ~base spec in
  Printf.printf "running the search (budget %.0fs, max 8 block ops)...\n%!"
    budget;
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  Printf.printf "search: %s\n" (Search.Stats.to_string o.Search.Generator.stats);
  Printf.printf "solver: %d queries, %d cache hits\n"
    o.Search.Generator.solver.Smtlite.Solver.queries
    o.Search.Generator.solver.Smtlite.Solver.cache_hits;
  (match o.Search.Generator.best with
  | Some r ->
      Printf.printf "best verified muGraph (%.2f us vs spec %.2f us):\n%s\n"
        r.Search.Generator.cost.Gpusim.Cost.total_us
        (Gpusim.Cost.cost Gpusim.Device.a100 spec).Gpusim.Cost.total_us
        (Pretty.kernel_graph_to_string r.Search.Generator.graph)
  | None -> print_endline "no muGraph found");
  Printf.printf "generated CUDA for the template at paper dims:\n%s\n"
    (Codegen.Cuda_emit.emit_kernel
       ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
       b.Workloads.Bench_defs.mirage)

(* ------------------------------------------------------------------ *)
(* GQA sweep (§8.2): traffic and runtime vs batch and system; the      *)
(* up-to-7x device-memory-access reduction.                            *)
(* ------------------------------------------------------------------ *)

let gqa_sweep () =
  hr "GQA sweep (paper §8.2): SM grids, DRAM traffic and runtime";
  let gk = 2 and grp = 8 and s = 4096 and dh = 128 in
  List.iter
    (fun b ->
      List.iter
        (fun dev ->
          Printf.printf "\n--- batch %d on %s ---\n" b dev.Gpusim.Device.name;
          Printf.printf "%-34s %10s %12s\n" "system" "us" "DRAM (MB)";
          let plans =
            [
              ( "PyTorch (unfused)",
                Baselines.Templates.attention_unfused ~b ~gk ~grp ~s ~dh );
              ( "TensorRT-LLM (heads grid)",
                Baselines.Templates.attention_fused_heads ~b ~gk ~grp ~s ~dh
              );
              ( "FlashDecoding (split 4, per-head)",
                Baselines.Templates.attention_fused_split_kv ~b ~gk ~grp ~s
                  ~dh ~split:4 ~group_in_block:false );
              ( "Mirage (group-in-block)",
                Baselines.Templates.attention_fused_split_kv ~b ~gk ~grp ~s
                  ~dh
                  ~split:(if b = 1 then 64 else 8)
                  ~group_in_block:true );
            ]
          in
          let mirage_traffic = ref 1.0 in
          List.iter
            (fun (name, g) ->
              let c = Gpusim.Cost.cost dev g in
              if name = "Mirage (group-in-block)" then
                mirage_traffic := c.Gpusim.Cost.total_dram_bytes;
              Printf.printf "%-34s %10.2f %12.2f\n" name
                c.Gpusim.Cost.total_us
                (c.Gpusim.Cost.total_dram_bytes /. 1.0e6))
            plans;
          let fd =
            Gpusim.Cost.cost dev
              (Baselines.Templates.attention_fused_split_kv ~b ~gk ~grp ~s
                 ~dh ~split:4 ~group_in_block:false)
          in
          Printf.printf
            "DRAM reduction vs per-head split-KV: %.2fx (paper: up to 7x)\n"
            (fd.Gpusim.Cost.total_dram_bytes /. !mirage_traffic))
        devices)
    [ 1; 8 ]

(* ------------------------------------------------------------------ *)
(* Ablations of the muGraph optimizer's design choices (§6 + §4.2):    *)
(* depth scheduling vs one-barrier-per-op, DSA memory planning vs      *)
(* no-reuse, ILP layouts vs all-row-major, thread fusion vs none.      *)
(* ------------------------------------------------------------------ *)

let ablation () =
  hr "Ablations: optimizer passes across the Mirage plans (A100)";
  Printf.printf "%-10s %7s %7s | %9s %9s | %7s %7s | %8s\n" "benchmark"
    "sync" "naive" "smem(B)" "naive(B)" "layout" "naive" "tgraph-ops";
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let g = b.mirage in
      let r = Opt.Optimizer.optimize Gpusim.Device.a100 g in
      let syncs, naive_syncs, peak, naive_peak =
        List.fold_left
          (fun (s, ns, p, np) (k : Opt.Optimizer.kernel_report) ->
            ( s + k.Opt.Optimizer.schedule.Opt.Schedule.syncthreads,
              ns + k.Opt.Optimizer.schedule.Opt.Schedule.naive_syncthreads,
              max p k.Opt.Optimizer.memplan.Opt.Memplan.peak_bytes,
              max np (Opt.Memplan.naive_peak k.Opt.Optimizer.memplan) ))
          (0, 0, 0, 0) r.Opt.Optimizer.kernels
      in
      let fused = Search.Thread_fuse.fuse_kernel g in
      Printf.printf "%-10s %7d %7d | %9d %9d | %7.2f %7.2f | %8d\n" b.name
        syncs naive_syncs peak naive_peak r.Opt.Optimizer.layout_cost
        r.Opt.Optimizer.layout_naive_cost
        (Search.Thread_fuse.fused_op_count fused))
    (Workloads.Bench_defs.all ());
  (* thread fusion effect on the cost model *)
  Printf.printf "\n%-10s %12s %12s\n" "benchmark" "no-tfusion" "tfusion";
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let plain = (Gpusim.Cost.cost Gpusim.Device.a100 b.mirage).Gpusim.Cost.total_us in
      let fused =
        (Gpusim.Cost.cost Gpusim.Device.a100
           (Search.Thread_fuse.fuse_kernel b.mirage))
          .Gpusim.Cost.total_us
      in
      Printf.printf "%-10s %10.2fus %10.2fus\n" b.name plain fused)
    (Workloads.Bench_defs.all ())

(* ------------------------------------------------------------------ *)
(* Verifier microbenchmark: trials/s and elements/s of the packed fast *)
(* path (with spec-output memoization, as the search runs it) against  *)
(* the boxed reference path as it behaves without a session (spec      *)
(* re-evaluated per call — the pre-fast-path behavior). Fig. 7         *)
(* workloads at reduced dimensions, template plan vs spec.             *)
(* ------------------------------------------------------------------ *)

let verify_bench () =
  hr "Verifier throughput: packed fast path vs boxed reference path";
  jsuite "verify";
  let reg = Obs.Metrics.default () in
  let hits_c = Obs.Metrics.counter reg "verify.spec_cache.hits" in
  Printf.printf "%-10s %10s %10s %8s %14s %6s\n" "benchmark" "ref tr/s"
    "fast tr/s" "speedup" "fast elems/s" "hits";
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let spec, plan = b.Workloads.Bench_defs.reduced () in
      let elems =
        List.fold_left
          (fun acc s -> acc + Tensor.Shape.numel s)
          0
          (Graph.input_shapes plan @ Infer.output_shapes plan)
      in
      (* Measure whole verification calls (30 trials each) for at least
         0.3 s and 3 reps per path; trials/s counts trials actually run
         (resampled trials included — both paths resample identically).
         Best of 3 windows per path: a single window's wall-clock rate
         jitters 2-3x when the host is otherwise loaded, and the
         history gate's 50% leniency cannot absorb that — the max
         estimates capability, not contention. *)
      let time_path run_once =
        ignore (run_once ());
        (* warm: inverse tables, first spec eval *)
        let window () =
          let t0 = Unix.gettimeofday () in
          let trials = ref 0 and reps = ref 0 in
          while Unix.gettimeofday () -. t0 < 0.3 || !reps < 3 do
            let d : Verify.Random_test.detail = run_once () in
            trials := !trials + d.Verify.Random_test.trials_run;
            incr reps
          done;
          float_of_int !trials /. (Unix.gettimeofday () -. t0)
        in
        let best = ref 0.0 in
        for _ = 1 to 3 do
          best := Float.max !best (window ())
        done;
        !best
      in
      (* Reference: no session — every call re-evaluates the spec per
         trial over boxed Fpair records, as the verifier did before the
         fast path existed. *)
      let ref_tps =
        time_path (fun () ->
            Verify.Random_test.equivalent_detailed ~trials:30 ~fast:false ~spec
              plan)
      in
      (* Fast: one session for the whole run — packed representation plus
         the spec-output cache shared across calls, as Generator.run
         drives it across candidates. *)
      let session = Verify.Random_test.make_session ~spec () in
      let hits0 = Obs.Metrics.value hits_c in
      let fast_tps =
        time_path (fun () ->
            Verify.Random_test.equivalent_detailed ~trials:30 ~session ~spec
              plan)
      in
      let hits = Obs.Metrics.value hits_c - hits0 in
      let speedup = fast_tps /. ref_tps in
      let fast_elems_s = fast_tps *. float_of_int elems in
      Printf.printf "%-10s %10.1f %10.1f %7.2fx %14.3e %6d\n"
        b.Workloads.Bench_defs.name ref_tps fast_tps speedup fast_elems_s hits;
      jpush
        Obs.Jsonw.
          [
            ("suite", Str "verify");
            ("benchmark", Str b.Workloads.Bench_defs.name);
            ("elems_per_trial", Int elems);
            ("ref_trials_per_s", Float ref_tps);
            ("fast_trials_per_s", Float fast_tps);
            ("fast_elems_per_s", Float fast_elems_s);
            ("speedup", Float speedup);
            ("spec_cache_hits", Int hits);
          ];
      history_verify :=
        !history_verify
        @ [
            ( Printf.sprintf "verify.%s.fast_over_ref"
                b.Workloads.Bench_defs.name,
              ref_tps /. fast_tps );
          ])
    (Workloads.Bench_defs.all ())

(* ------------------------------------------------------------------ *)
(* Optimization service: cold search vs warm cache, measured through   *)
(* the real Unix socket (connect + frame + search-or-cache + reply).   *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  hr "Service latency: cold search vs warm result cache (through the socket)";
  jsuite "serve";
  let socket_path = Filename.temp_file "mirage_serve" ".sock" in
  let cache_dir = Filename.temp_file "mirage_serve_cache" "" in
  Sys.remove cache_dir;
  Unix.mkdir cache_dir 0o755;
  (* The same small deterministic search the service tests use: every
     benchmark's cold search finishes in seconds, so one bench run
     exercises all six cold/warm pairs. *)
  let base_config =
    {
      Search.Config.default with
      Search.Config.grid_candidates = [ [| 2 |] ];
      forloop_candidates = [ [| 2 |] ];
      max_block_ops = 3;
      num_workers = 1;
      time_budget_s = 90.0;
    }
  in
  let server =
    Service.Server.create ~base_config ~socket_path ~cache_dir ()
  in
  Service.Server.start server;
  if not (Service.Client.wait_ready ~socket_path ()) then begin
    Printf.eprintf "serve: daemon did not come up on %s\n" socket_path;
    exit 1
  end;
  Printf.printf "%-10s %10s %10s %9s %7s\n" "benchmark" "cold ms" "warm ms"
    "speedup" "cached";
  let failures = ref 0 in
  let min_warm_s = ref infinity in
  List.iter
    (fun (b : Workloads.Bench_defs.benchmark) ->
      let name = b.Workloads.Bench_defs.name in
      let timed () =
        let t0 = Unix.gettimeofday () in
        match Service.Client.optimize ~socket_path ~benchmark:name () with
        | Ok resp -> (Unix.gettimeofday () -. t0, resp)
        | Error m ->
            Printf.eprintf "serve: %s request failed: %s\n" name m;
            exit 1
      in
      let cold_s, cold_resp = timed () in
      (* best of five warm round trips: the cache answer is microseconds,
         the socket round trip dominates and jitters *)
      let warm_s = ref infinity in
      let warm_resp = ref cold_resp in
      for _ = 1 to 5 do
        let s, r = timed () in
        if s < !warm_s then begin
          warm_s := s;
          warm_resp := r
        end
      done;
      if !warm_s < !min_warm_s then min_warm_s := !warm_s;
      let cached j =
        match Obs.Jsonw.member "cached" j with
        | Some (Obs.Jsonw.Bool v) -> v
        | _ -> false
      in
      if cached cold_resp || not (cached !warm_resp) then begin
        Printf.eprintf "serve: %s cold/warm cache states wrong\n" name;
        incr failures
      end;
      let speedup = cold_s /. !warm_s in
      if speedup < 50.0 then begin
        Printf.eprintf "serve: %s warm speedup %.1fx below the 50x floor\n"
          name speedup;
        incr failures
      end;
      Printf.printf "%-10s %10.1f %10.2f %8.0fx %7b\n" name (1e3 *. cold_s)
        (1e3 *. !warm_s) speedup (cached !warm_resp);
      jpush
        Obs.Jsonw.
          [
            ("suite", Str "serve");
            ("benchmark", Str name);
            ("cold_s", Float cold_s);
            ("warm_s", Float !warm_s);
            ("speedup", Float speedup);
          ];
      history_serve :=
        !history_serve
        @ [ (Printf.sprintf "serve.%s.warm_over_cold" name, !warm_s /. cold_s) ])
    (Workloads.Bench_defs.all ());
  (* Stage-level quantiles from the live telemetry plane: scrape the
     daemon's `metrics` snapshot (validating it against the exposition
     schema) and export the per-stage p50/p99 plus the cache hit rate
     into the history, so the gate watches them run over run.

     A sample is folded into the registry just AFTER its response bytes
     go out, so a scrape racing the last response can miss it by one —
     poll until every request this suite sent has landed. *)
  let fnum j =
    match j with
    | Some (Obs.Jsonw.Float f) -> f
    | Some (Obs.Jsonw.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let expected_total = 6 * List.length (Workloads.Bench_defs.all ()) in
  let scrape () =
    match Service.Client.metrics ~socket_path () with
    | Error m ->
        Printf.eprintf "serve: metrics scrape failed: %s\n" m;
        exit 1
    | Ok snap -> snap
  in
  let settled snap =
    match
      Option.bind (Obs.Jsonw.member "histograms" snap) (fun h ->
          Option.bind (Obs.Jsonw.member "serve.total" h)
            (Obs.Jsonw.member "count"))
    with
    | Some (Obs.Jsonw.Int n) -> n >= expected_total
    | _ -> false
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec scrape_settled () =
    let snap = scrape () in
    if settled snap || Unix.gettimeofday () > deadline then snap
    else begin
      ignore (Unix.select [] [] [] 0.05);
      scrape_settled ()
    end
  in
  (match scrape_settled () with
  | snap ->
      if not (settled snap) then begin
        Printf.eprintf "serve: telemetry never settled to %d samples\n"
          expected_total;
        incr failures
      end;
      (match Service.Telemetry.check_snapshot snap with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "serve: metrics snapshot malformed: %s\n" m;
          exit 1);
      (match Obs.Jsonw.member "histograms" snap with
      | Some (Obs.Jsonw.Obj hists) when hists <> [] ->
          Printf.printf "\n%-20s %8s %12s %12s\n" "stage" "count" "p50" "p99";
          List.iter
            (fun (hname, h) ->
              let count =
                match Obs.Jsonw.member "count" h with
                | Some (Obs.Jsonw.Int i) -> i
                | _ -> 0
              in
              if count > 0 then begin
                let p50 = fnum (Obs.Jsonw.member "p50_us" h)
                and p99 = fnum (Obs.Jsonw.member "p99_us" h) in
                Printf.printf "%-20s %8d %12.1f %12.1f\n" hname count p50 p99;
                jpush
                  Obs.Jsonw.
                    [
                      ("suite", Str "serve");
                      ("stage", Str hname);
                      ("count", Int count);
                      ("p50_us", Float p50);
                      ("p99_us", Float p99);
                    ];
                history_serve :=
                  !history_serve
                  @ [ (hname ^ ".p50_us", p50); (hname ^ ".p99_us", p99) ]
              end)
            hists
      | _ ->
          Printf.eprintf "serve: metrics snapshot has no stage histograms\n";
          incr failures);
      let hit_rate =
        fnum
          (Option.bind (Obs.Jsonw.member "cache" snap)
             (Obs.Jsonw.member "hit_rate"))
      in
      Printf.printf "cache hit rate %.1f%%\n" (100.0 *. hit_rate);
      jpush
        Obs.Jsonw.
          [ ("suite", Str "serve"); ("cache_hit_rate", Float hit_rate) ];
      history_serve := !history_serve @ [ ("serve.cache.hit_rate", hit_rate) ]);
  ignore (Service.Client.shutdown ~socket_path ());
  Service.Server.wait server;
  (* The telemetry plane must be noise on the request path: record 200k
     samples into a standalone sketch and demand the per-record cost
     stays under 1% of the fastest warm request measured above. *)
  let probe = Obs.Hdr.create ~help:"overhead probe" "serve.overhead_probe" in
  let n = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    Obs.Hdr.record probe (1e-6 *. float_of_int (1 + (i land 1023)))
  done;
  let per_record_s = (Unix.gettimeofday () -. t0) /. float_of_int n in
  let budget_s = 0.01 *. !min_warm_s in
  Printf.printf
    "hdr record overhead %.1f ns/record (budget %.0f ns = 1%% of fastest warm \
     request)\n"
    (1e9 *. per_record_s) (1e9 *. budget_s);
  if per_record_s >= budget_s then begin
    Printf.eprintf
      "serve: hdr record overhead %.1f ns exceeds 1%% of the %.0f ns fastest \
       warm request\n"
      (1e9 *. per_record_s)
      (1e9 *. !min_warm_s);
    incr failures
  end;
  jpush
    Obs.Jsonw.
      [
        ("suite", Str "serve");
        ("check", Str "hdr_overhead");
        ("per_record_ns", Float (1e9 *. per_record_s));
        ("budget_ns", Float (1e9 *. budget_s));
      ];
  if !failures > 0 then begin
    Printf.eprintf "serve suite FAILED (%d violation(s))\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Obs.Profile overhead: the recording primitives, at the record        *)
(* volume a real cold search drives through them, must cost under 1%   *)
(* of that search's wall time. Measured as per-record primitive cost   *)
(* x observed record count rather than an A/B wall comparison — the    *)
(* search itself jitters far more than 1% between runs.                *)
(* ------------------------------------------------------------------ *)

let profile_bench () =
  hr "Profiler overhead: record cost vs a cold rmsnorm search";
  jsuite "profile";
  (* (a) A cold profiled search — the reduced rmsnorm spec at the CLI's
     default grid/loop candidates, the same search `mirage_cli optimize
     rmsnorm` runs — to observe the record volume and wall time the
     profiler sees in practice. *)
  let spec = Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16 in
  let base =
    {
      Search.Config.default with
      Search.Config.max_block_ops = 3;
      num_workers = 1;
      time_budget_s = 10.0;
    }
  in
  let cfg = Search.Config.for_spec ~base spec in
  let prof = Obs.Profile.enable () in
  let t0 = Unix.gettimeofday () in
  let o =
    Search.Generator.run ~config:cfg ~device:Gpusim.Device.a100 ~spec ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let snap = Obs.Profile.snapshot prof in
  Obs.Profile.disable ();
  let phase_records =
    List.fold_left
      (fun acc (p : Obs.Profile.phase_snap) -> acc + p.Obs.Profile.p_count)
      0 snap.Obs.Profile.phases
  in
  let rule_records =
    List.fold_left
      (fun acc (r : Obs.Profile.rule_snap) -> acc + r.Obs.Profile.r_fires)
      0 snap.Obs.Profile.prune_rules
  in
  Printf.printf "cold search: %.2fs wall, %d phase records, %d rule fires\n"
    wall_s phase_records rule_records;
  Printf.printf "search: %s\n" (Search.Stats.to_string o.Search.Generator.stats);
  (* (b) Net per-record cost of each primitive: the same loop timed with
     the ambient profiler enabled and disabled. The difference is what
     enabling profiling adds — the disabled checks are paid either way,
     and handles created while disabled are inert, which is exactly the
     profiler-off execution of the instrumented sites. *)
  let per_record label n run =
    let time () =
      let t0 = Unix.gettimeofday () in
      run n;
      (Unix.gettimeofday () -. t0) /. float_of_int n
    in
    Obs.Profile.disable ();
    let off = time () in
    ignore (Obs.Profile.enable ());
    let on = time () in
    Obs.Profile.disable ();
    let net = Float.max 0.0 (on -. off) in
    Printf.printf "%-28s %8.1f ns/record (%.1f on - %.1f off)\n" label
      (1e9 *. net) (1e9 *. on) (1e9 *. off);
    net
  in
  let sink = ref 0 in
  let phase_cost =
    per_record "with_phase" 100_000 (fun n ->
        Obs.Profile.with_phase "bench" (fun () ->
            for i = 1 to n do
              Obs.Profile.with_phase "p" (fun () -> sink := !sink + i)
            done))
  in
  let timed_cost =
    per_record "timed (batched)" 400_000 (fun n ->
        Obs.Profile.with_phase "bench" (fun () ->
            let tm = Obs.Profile.timer "t" in
            for i = 1 to n do
              Obs.Profile.timed tm (fun () -> sink := !sink + i)
            done;
            Obs.Profile.flush_timer tm))
  in
  let fire_cost =
    per_record "fire (batched)" 400_000 (fun n ->
        let ru = Obs.Profile.prune_rule "bench.rule" in
        for i = 1 to n do
          Obs.Profile.fire ru ~remaining:(i land 7)
        done;
        Obs.Profile.flush_rule ru)
  in
  Obs.Profile.disable ();
  (* Phase records are dominated by batched-timer entries (the abstract
     prune check runs per attempted extension; with_phase sites fire per
     task or candidate, orders of magnitude less often), so timed_cost
     prices the phase volume; with_phase cost is reported above and
     gated only through the blended estimate's slack. *)
  let overhead_s =
    (timed_cost *. float_of_int phase_records)
    +. (fire_cost *. float_of_int rule_records)
  in
  let frac = overhead_s /. wall_s in
  Printf.printf
    "estimated record overhead %.1f ms over %.2f s search wall = %.3f%% \
     (budget 1%%)\n"
    (1e3 *. overhead_s) wall_s (100.0 *. frac);
  jpush
    Obs.Jsonw.
      [
        ("suite", Str "profile");
        ("check", Str "record_overhead");
        ("search_wall_s", Float wall_s);
        ("phase_records", Int phase_records);
        ("rule_records", Int rule_records);
        ("with_phase_ns", Float (1e9 *. phase_cost));
        ("timed_ns", Float (1e9 *. timed_cost));
        ("fire_ns", Float (1e9 *. fire_cost));
        ("overhead_frac", Float frac);
      ];
  if frac >= 0.01 then begin
    Printf.eprintf
      "profile: estimated record overhead %.3f%% of search wall exceeds the \
       1%% budget\n"
      (100.0 *. frac);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (Bechamel): real wall-clock of this reproduction's  *)
(* own components.                                                     *)
(* ------------------------------------------------------------------ *)

let micro () =
  hr "Microbenchmarks (Bechamel, wall clock of reproduction components)";
  let open Bechamel in
  let spec = Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16 in
  let fused =
    Baselines.Templates.rmsnorm_matmul_fused ~b:4 ~h:8 ~d:16 ~grid:2 ~iters:2
  in
  let e_goal = List.hd (Abstract.output_exprs spec) in
  let nf_goal = Absexpr.Nf.of_expr e_goal in
  let solver = Smtlite.Solver.create ~target:[ e_goal ] in
  let prefix = Absexpr.Expr.(mul (var "X") (var "G")) in
  let st = Random.State.make [| 3 |] in
  let inputs =
    List.map
      (fun shape ->
        Tensor.Dense.init shape (fun _ -> Random.State.float st 1.0))
      (Graph.input_shapes spec)
  in
  let tests =
    [
      Test.make ~name:"nf-normalize goal expr"
        (Staged.stage (fun () -> ignore (Absexpr.Nf.of_expr e_goal)));
      Test.make ~name:"subexpr query uncached"
        (Staged.stage (fun () ->
             ignore
               (Absexpr.Nf.is_subexpr (Absexpr.Nf.of_expr prefix) nf_goal)));
      Test.make ~name:"subexpr query solver-cache"
        (Staged.stage (fun () ->
             ignore (Smtlite.Solver.check_subexpr solver prefix)));
      Test.make ~name:"interpreter fused-rmsnorm float"
        (Staged.stage (fun () ->
             ignore
               (Interp.eval_kernel Tensor.Element.float_ops fused ~inputs)));
      Test.make ~name:"verifier trial finite-fields"
        (Staged.stage (fun () ->
             ignore (Verify.Random_test.equivalent ~trials:1 ~spec fused)));
      Test.make ~name:"cost model fused-rmsnorm"
        (Staged.stage (fun () ->
             ignore (Gpusim.Cost.cost Gpusim.Device.a100 fused)));
      Test.make ~name:"shape inference fused-rmsnorm"
        (Staged.stage (fun () -> ignore (Infer.kernel_shapes fused)));
      Test.make ~name:"optimizer schedule+memplan+layout"
        (Staged.stage (fun () ->
             ignore (Opt.Optimizer.optimize Gpusim.Device.a100 fused)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let grouped = Test.make_grouped ~name:"mirage" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-42s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-42s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* enum: work-stealing enumeration scaling and the persistent prune    *)
(* cache. Cold generation wall at 1 vs 4 (and, on wide hosts, 8)       *)
(* domains -> enum.<b>.speedup_4d (higher is better; the >=2x floor    *)
(* is asserted only when the host actually has >= 4 cores — domains    *)
(* time-slicing one core cannot speed anything up), plus a full search *)
(* warm vs cold over a shared prune-cache dir ->                       *)
(* enum.<b>.prune_warm_over_cold (lower is better: disk hits replace   *)
(* normal-form decisions). Both keys land in the bench history, so     *)
(* the gate watches scaling and cache efficacy run over run.           *)
(* ------------------------------------------------------------------ *)

let enum_bench () =
  hr "enum: work-stealing scaling & persistent prune-query cache";
  jsuite "enum";
  let name = "rmsnorm" in
  let spec = Baselines.Templates.rmsnorm_matmul_spec ~b:16 ~h:1024 ~d:4096 in
  let cores = try Domain.recommended_domain_count () with _ -> 1 in
  let base =
    {
      Search.Config.default with
      Search.Config.grid_candidates = [ [| 128 |] ];
      forloop_candidates = [ [| 16 |] ];
      max_block_ops = 6;
      (* spawn aggressively: scaling is the point of this suite *)
      steal_depth_cutoff = 2;
      time_budget_s = 600.0;
    }
  in
  let gen_time workers =
    let cfg =
      Search.Config.for_spec
        ~base:{ base with Search.Config.num_workers = workers }
        spec
    in
    let t, exhausted = Search.Generator.search_time ~config:cfg ~spec () in
    if exhausted then begin
      Printf.eprintf "enum: %d-domain generation hit the time budget\n" workers;
      exit 1
    end;
    t
  in
  Printf.printf "(host has %d core(s))\n%!" cores;
  let t1 = gen_time 1 in
  let t4 = gen_time 4 in
  let speedup4 = t1 /. t4 in
  Printf.printf "cold generation, %s:  1 domain %6.2fs\n" name t1;
  Printf.printf "                      4 domains %6.2fs   %.2fx\n%!" t4 speedup4;
  if cores >= 4 && speedup4 < 2.0 then begin
    Printf.eprintf
      "enum: 4-domain speedup %.2fx below the 2x floor on a %d-core host\n"
      speedup4 cores;
    exit 1
  end;
  jpush
    Obs.Jsonw.
      [
        ("suite", Str "enum");
        ("benchmark", Str name);
        ("cores", Int cores);
        ("gen_1d_s", Float t1);
        ("gen_4d_s", Float t4);
        ("speedup_4d", Float speedup4);
      ];
  history_enum :=
    !history_enum
    @ [ (Printf.sprintf "enum.%s.speedup_4d" name, speedup4) ];
  (* near-linear-to-8 check rides along only where 8 cores exist; the
     key is host-dependent, so it is recorded but the gate treats it
     like every other enum key (lenient, run-over-run) *)
  if cores >= 8 then begin
    let t8 = gen_time 8 in
    let speedup8 = t1 /. t8 in
    Printf.printf "                      8 domains %6.2fs   %.2fx\n%!" t8
      speedup8;
    jpush
      Obs.Jsonw.
        [
          ("suite", Str "enum");
          ("benchmark", Str name);
          ("gen_8d_s", Float t8);
          ("speedup_8d", Float speedup8);
        ];
    history_enum :=
      !history_enum
      @ [ (Printf.sprintf "enum.%s.speedup_8d" name, speedup8) ]
  end;
  (* prune-cache warm start: two identical full searches sharing one
     cache directory — the second answers its solver misses from disk *)
  let dir = Filename.temp_file "mirage_enum_prune" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let timed_run () =
    let cache = Service.Cache.create ~dir () in
    let cfg =
      Search.Config.for_spec
        ~base:{ base with Search.Config.num_workers = min cores 4 }
        spec
    in
    let t0 = Unix.gettimeofday () in
    let o =
      Search.Generator.run ~config:cfg
        ~prune_persist:(Service.Prune_store.attach ~cache)
        ~device:Gpusim.Device.a100 ~spec ()
    in
    (Unix.gettimeofday () -. t0, o)
  in
  let cold_s, cold_o = timed_run () in
  let warm_s, warm_o = timed_run () in
  let sv (o : Search.Generator.outcome) = o.Search.Generator.solver in
  if (sv cold_o).Smtlite.Solver.disk_entries = 0 then begin
    Printf.eprintf "enum: cold run persisted no prune queries\n";
    exit 1
  end;
  if (sv warm_o).Smtlite.Solver.disk_hits = 0 then begin
    Printf.eprintf "enum: warm run hit the prune cache zero times\n";
    exit 1
  end;
  (* the ratio is taken on the decision-procedure time — the cost the
     cache actually removes — because total wall jitters more than the
     win on small hosts; wall rides along in the JSON rows *)
  let cold_solve = (sv cold_o).Smtlite.Solver.solve_time_s in
  let warm_solve = (sv warm_o).Smtlite.Solver.solve_time_s in
  if cold_solve <= 0.0 then begin
    Printf.eprintf "enum: cold run spent no time in the decision procedure\n";
    exit 1
  end;
  if warm_solve >= cold_solve then begin
    Printf.eprintf
      "enum: warm run solve time %.4fs did not beat cold %.4fs\n" warm_solve
      cold_solve;
    exit 1
  end;
  let warm_over_cold = warm_solve /. cold_solve in
  Printf.printf
    "prune cache, %s: cold %.2fs wall / %.4fs solve (%d queries persisted)\n"
    name cold_s cold_solve
    (sv cold_o).Smtlite.Solver.disk_entries;
  Printf.printf
    "                  warm %.2fs wall / %.4fs solve (%d disk hits)  solve \
     ratio %.3f\n%!"
    warm_s warm_solve
    (sv warm_o).Smtlite.Solver.disk_hits
    warm_over_cold;
  jpush
    Obs.Jsonw.
      [
        ("suite", Str "enum");
        ("benchmark", Str name);
        ("prune_cold_s", Float cold_s);
        ("prune_warm_s", Float warm_s);
        ("prune_cold_solve_s", Float cold_solve);
        ("prune_warm_solve_s", Float warm_solve);
        ("prune_warm_over_cold", Float warm_over_cold);
        ("disk_hits", Int (sv warm_o).Smtlite.Solver.disk_hits);
      ];
  history_enum :=
    !history_enum
    @ [ (Printf.sprintf "enum.%s.prune_warm_over_cold" name, warm_over_cold) ]

(* ------------------------------------------------------------------ *)
(* codegen: the runnable backend. Lower+compile wall time for the      *)
(* rmsnorm winner (codegen.rmsnorm.lower_compile_s, gated one-sided:   *)
(* an increase beyond the lenient threshold plus absolute slack fails, *)
(* a decrease never does) and executed-vs-interpreter throughput       *)
(* (codegen.rmsnorm.exec_over_interp, recorded but not gated — the     *)
(* subprocess spawn dominates at reduced dims).                        *)
(* ------------------------------------------------------------------ *)

let codegen_bench () =
  hr "codegen: runnable backend lower+compile wall and executed throughput";
  jsuite "codegen";
  let name = "rmsnorm" in
  if not (Codegen.C_exec.cc_available ()) then
    Printf.printf
      "*** codegen suite SKIPPED: no working C compiler (cc) on PATH ***\n"
  else begin
    let b =
      match Workloads.Bench_defs.by_name name with
      | Some b -> b
      | None ->
          Printf.eprintf "codegen: benchmark %s missing\n" name;
          exit 1
    in
    let _, plan = b.Workloads.Bench_defs.reduced () in
    let t0 = Unix.gettimeofday () in
    let prog = Impir.Lower.lower ~name plan in
    let lower_s = Unix.gettimeofday () -. t0 in
    let dir = Filename.temp_file "mirage_bench_codegen" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    match Codegen.C_exec.compile ~cflags:[ "-O1" ] ~dir prog with
    | Error m ->
        Printf.eprintf "codegen: compile failed: %s\n" m;
        exit 1
    | Ok compiled ->
        let lower_compile_s = lower_s +. compiled.Codegen.C_exec.compile_s in
        let shapes = Mugraph.Graph.input_shapes plan in
        let st = Random.State.make [| 7 |] in
        let inputs =
          List.map
            (fun shape ->
              Array.init (Tensor.Shape.numel shape) (fun _ ->
                  0.25 +. (1.5 *. Random.State.float st 1.0)))
            shapes
        in
        let dense_inputs =
          List.map2
            (fun shape arr -> Tensor.Dense.create shape arr)
            shapes inputs
        in
        let iters = 30 in
        let t1 = Unix.gettimeofday () in
        for _ = 1 to iters do
          match Codegen.C_exec.run compiled inputs with
          | Ok _ -> ()
          | Error m ->
              Printf.eprintf "codegen: execution failed: %s\n" m;
              exit 1
        done;
        let exec_s = Unix.gettimeofday () -. t1 in
        let t2 = Unix.gettimeofday () in
        for _ = 1 to iters do
          ignore
            (Mugraph.Interp.eval_kernel Tensor.Element.float_ops plan
               ~inputs:dense_inputs)
        done;
        let interp_s = Unix.gettimeofday () -. t2 in
        let out_scalars = Impir.Ir.output_size prog in
        let tput s =
          if s > 0.0 then float_of_int (iters * out_scalars) /. s else 0.0
        in
        let exec_over_interp =
          if tput interp_s > 0.0 then tput exec_s /. tput interp_s else 0.0
        in
        Printf.printf
          "%s winner: lower %.4fs + compile %.2fs = %.2fs  (cc -O1, %d-line \
           C)\n"
          name lower_s compiled.Codegen.C_exec.compile_s lower_compile_s
          (Codegen.C_emit.loc (Codegen.C_emit.emit prog));
        Printf.printf
          "executed %d runs: %.3fs (%.0f scalars/s) vs interpreter %.3fs \
           (%.0f scalars/s)  ratio %.3f\n%!"
          iters exec_s (tput exec_s) interp_s (tput interp_s) exec_over_interp;
        jpush
          Obs.Jsonw.
            [
              ("suite", Str "codegen");
              ("benchmark", Str name);
              ("lower_s", Float lower_s);
              ("compile_s", Float compiled.Codegen.C_exec.compile_s);
              ("lower_compile_s", Float lower_compile_s);
              ("exec_s", Float exec_s);
              ("interp_s", Float interp_s);
              ("exec_over_interp", Float exec_over_interp);
            ];
        history_codegen :=
          !history_codegen
          @ [
              ( Printf.sprintf "codegen.%s.lower_compile_s" name,
                lower_compile_s );
              ( Printf.sprintf "codegen.%s.exec_over_interp" name,
                exec_over_interp );
            ];
        (* scratch dir: keep nothing on success *)
        let rec rm_rf path =
          if Sys.file_exists path then
            if Sys.is_directory path then begin
              Array.iter
                (fun e -> rm_rf (Filename.concat path e))
                (Sys.readdir path);
              try Unix.rmdir path with _ -> ()
            end
            else try Sys.remove path with _ -> ()
        in
        rm_rf dir
  end

let write_json file =
  (* The suites keep their metrics in per-run registries, so the
     process-wide default registry is usually empty here; emitting the
     empty shell ({"counters":{},...}) just misleads readers into
     thinking the run recorded nothing. Only attach the field when the
     default registry actually saw updates. *)
  let metrics_field =
    let s = Obs.Metrics.snapshot (Obs.Metrics.default ()) in
    if
      s.Obs.Metrics.counters = [] && s.Obs.Metrics.hists = []
      && s.Obs.Metrics.gauges = [] && s.Obs.Metrics.hdrs = []
    then []
    else [ ("metrics", Obs.Metrics.to_json s) ]
  in
  let doc =
    Obs.Jsonw.Obj
      ([
         ("schema", Obs.Jsonw.Str "mirage.bench.v2");
         ( "suites",
           Obs.Jsonw.List
             (List.map (fun s -> Obs.Jsonw.Str s) !json_suites) );
         ("rows", Obs.Jsonw.List (List.rev !json_rows));
       ]
      @ metrics_field)
  in
  Obs.Jsonw.to_file file doc;
  Printf.printf "\nwrote %d JSON rows to %s\n" (List.length !json_rows) file

(* ------------------------------------------------------------------ *)
(* Bench history: [--history FILE] appends one JSONL entry per run     *)
(* (schema mirage.bench_history.v1: timestamp, wall time, the Fig. 7   *)
(* Mirage costs); [--gate PCT] first compares against the file's last  *)
(* entry and fails — without appending — when any cost regresses by    *)
(* more than PCT percent, or wall time blows up (10x PCT relative and  *)
(* at least +2s absolute, lenient because wall time is noisy where the *)
(* cost model is deterministic).                                       *)
(* ------------------------------------------------------------------ *)

let history_schema = "mirage.bench_history.v1"

let jnum = function
  | Obs.Jsonw.Int i -> Some (float_of_int i)
  | Obs.Jsonw.Float f -> Some f
  | _ -> None

let read_last_entry file =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in file in
    let last = ref None in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then last := Some line
       done
     with End_of_file -> ());
    close_in ic;
    match !last with
    | None -> None
    | Some line -> (
        match Obs.Jsonw.of_string line with
        | Ok j -> Some j
        | Error msg ->
            Printf.eprintf "--history: unparsable last entry in %s: %s\n" file
              msg;
            exit 2)
  end

let gate_history ~prev ~wall_s ~pct =
  let frac = pct /. 100.0 in
  let cost_viols =
    match Obs.Jsonw.member "costs" prev with
    | Some (Obs.Jsonw.Obj kvs) ->
        List.filter_map
          (fun (key, v) ->
            match (jnum v, List.assoc_opt key !history_costs) with
            | Some old_us, Some new_us
              when old_us > 0.0 && (new_us -. old_us) /. old_us > frac ->
                Some
                  (Printf.sprintf
                     "%s: %.2f us -> %.2f us (%+.1f%%, threshold %.1f%%)" key
                     old_us new_us
                     (100.0 *. (new_us -. old_us) /. old_us)
                     pct)
            | _ -> None)
          kvs
    | _ -> []
  in
  let verify_viols =
    (* Wall-clock ratios, so they get the same leniency as wall_s: 10x the
       cost threshold relative AND an absolute slack (+0.02 on a ratio that
       sits well under 0.5 when the fast path is healthy). *)
    match Obs.Jsonw.member "verify" prev with
    | Some (Obs.Jsonw.Obj kvs) ->
        List.filter_map
          (fun (key, v) ->
            match (jnum v, List.assoc_opt key !history_verify) with
            | Some old_r, Some new_r
              when old_r > 0.0
                   && new_r -. old_r > 10.0 *. frac *. old_r
                   && new_r -. old_r > 0.02 ->
                Some
                  (Printf.sprintf
                     "%s: %.4f -> %.4f (%+.1f%%, lenient threshold %.1f%% and \
                      +0.02)"
                     key old_r new_r
                     (100.0 *. (new_r -. old_r) /. old_r)
                     (10.0 *. pct))
            | _ -> None)
          kvs
    | _ -> []
  in
  let serve_viols =
    (* Three kinds of serve keys, three gates — all wall-clock, so all
       lenient (10x the cost threshold):
         *.warm_over_cold  ratio, higher is worse, absolute slack +0.02
         *.p50_us/p99_us   stage latency quantile, higher is worse,
                           absolute slack +0.1s (socket jitter dwarfs
                           the microsecond stages)
         *.hit_rate        fraction, LOWER is worse, slack -0.02 *)
    let ends_with suf s =
      let ls = String.length s and lu = String.length suf in
      ls >= lu && String.sub s (ls - lu) lu = suf
    in
    match Obs.Jsonw.member "serve" prev with
    | Some (Obs.Jsonw.Obj kvs) ->
        List.filter_map
          (fun (key, v) ->
            match (jnum v, List.assoc_opt key !history_serve) with
            | Some old_r, Some new_r when ends_with "hit_rate" key ->
                if
                  old_r > 0.0
                  && old_r -. new_r > 10.0 *. frac *. old_r
                  && old_r -. new_r > 0.02
                then
                  Some
                    (Printf.sprintf
                       "%s: %.4f -> %.4f (%+.1f%%, lenient threshold -%.1f%% \
                        and -0.02)"
                       key old_r new_r
                       (100.0 *. (new_r -. old_r) /. old_r)
                       (10.0 *. pct))
                else None
            | Some old_r, Some new_r when ends_with "_us" key ->
                if
                  old_r > 0.0
                  && new_r -. old_r > 10.0 *. frac *. old_r
                  && new_r -. old_r > 100_000.0
                then
                  Some
                    (Printf.sprintf
                       "%s: %.1f us -> %.1f us (%+.1f%%, lenient threshold \
                        %.1f%% and +0.1s)"
                       key old_r new_r
                       (100.0 *. (new_r -. old_r) /. old_r)
                       (10.0 *. pct))
                else None
            | Some old_r, Some new_r
              when old_r > 0.0
                   && new_r -. old_r > 10.0 *. frac *. old_r
                   && new_r -. old_r > 0.02 ->
                Some
                  (Printf.sprintf
                     "%s: %.4f -> %.4f (%+.1f%%, lenient threshold %.1f%% and \
                      +0.02)"
                     key old_r new_r
                     (100.0 *. (new_r -. old_r) /. old_r)
                     (10.0 *. pct))
            | _ -> None)
          kvs
    | _ -> []
  in
  let wall_viols =
    (* Wall time is only comparable when the same suites ran: a run that
       adds a suite is slower by construction, not by regression. Entries
       that predate the "suites" field can't be compared either way, so
       the wall gate skips them (and resumes at the next entry). *)
    let same_suites =
      match Obs.Jsonw.member "suites" prev with
      | Some (Obs.Jsonw.List l) ->
          List.filter_map (function Obs.Jsonw.Str s -> Some s | _ -> None) l
          = !json_suites
      | _ -> false
    in
    match
      if same_suites then Option.bind (Obs.Jsonw.member "wall_s" prev) jnum
      else None
    with
    | Some old_s
      when old_s > 0.0
           && (wall_s -. old_s) /. old_s > 10.0 *. frac
           && wall_s -. old_s > 2.0 ->
        [
          Printf.sprintf
            "wall_s: %.2f s -> %.2f s (%+.1f%%, lenient threshold %.1f%% and \
             +2s)"
            old_s wall_s
            (100.0 *. (wall_s -. old_s) /. old_s)
            (10.0 *. pct);
        ]
    | _ -> []
  in
  let enum_viols =
    (* Scaling and cache ratios are wall-clock, so lenient like serve:
         *.speedup_4d / _8d      higher is better, slack -0.5x
         *.prune_warm_over_cold  lower is better, slack +0.05 *)
    let ends_with suf s =
      let ls = String.length s and lu = String.length suf in
      ls >= lu && String.sub s (ls - lu) lu = suf
    in
    match Obs.Jsonw.member "enum" prev with
    | Some (Obs.Jsonw.Obj kvs) ->
        List.filter_map
          (fun (key, v) ->
            match (jnum v, List.assoc_opt key !history_enum) with
            | Some old_r, Some new_r when ends_with "warm_over_cold" key ->
                if
                  old_r > 0.0
                  && new_r -. old_r > 10.0 *. frac *. old_r
                  && new_r -. old_r > 0.05
                then
                  Some
                    (Printf.sprintf
                       "%s: %.3f -> %.3f (%+.1f%%, lenient threshold %.1f%% \
                        and +0.05)"
                       key old_r new_r
                       (100.0 *. (new_r -. old_r) /. old_r)
                       (10.0 *. pct))
                else None
            | Some old_r, Some new_r
              when old_r > 0.0
                   && old_r -. new_r > 10.0 *. frac *. old_r
                   && old_r -. new_r > 0.5 ->
                Some
                  (Printf.sprintf
                     "%s: %.2fx -> %.2fx (%+.1f%%, lenient threshold -%.1f%% \
                      and -0.5x)"
                     key old_r new_r
                     (100.0 *. (new_r -. old_r) /. old_r)
                     (10.0 *. pct))
            | _ -> None)
          kvs
    | _ -> []
  in
  let codegen_viols =
    (* Compile time is wall-clock and gated one-sided: only an increase
       beyond the lenient threshold AND an absolute +0.25s slack fails
       (a decrease is always fine). The throughput ratio is recorded
       but never gated — subprocess spawn noise dominates it. *)
    let ends_with suf s =
      let ls = String.length s and lu = String.length suf in
      ls >= lu && String.sub s (ls - lu) lu = suf
    in
    match Obs.Jsonw.member "codegen" prev with
    | Some (Obs.Jsonw.Obj kvs) ->
        List.filter_map
          (fun (key, v) ->
            match (jnum v, List.assoc_opt key !history_codegen) with
            | Some old_s, Some new_s when ends_with "lower_compile_s" key ->
                if
                  old_s > 0.0
                  && new_s -. old_s > 10.0 *. frac *. old_s
                  && new_s -. old_s > 0.25
                then
                  Some
                    (Printf.sprintf
                       "%s: %.2fs -> %.2fs (%+.1f%%, lenient threshold %.1f%% \
                        and +0.25s)"
                       key old_s new_s
                       (100.0 *. (new_s -. old_s) /. old_s)
                       (10.0 *. pct))
                else None
            | _ -> None)
          kvs
    | _ -> []
  in
  cost_viols @ verify_viols @ serve_viols @ enum_viols @ codegen_viols
  @ wall_viols

let append_history ~file ~wall_s =
  let entry =
    Obs.Jsonw.Obj
      ([
         ("schema", Obs.Jsonw.Str history_schema);
         ("ts", Obs.Jsonw.Float (Unix.gettimeofday ()));
         ("wall_s", Obs.Jsonw.Float wall_s);
         ( "suites",
           Obs.Jsonw.List
             (List.map (fun s -> Obs.Jsonw.Str s) !json_suites) );
         ( "costs",
           Obs.Jsonw.Obj
             (List.map (fun (k, v) -> (k, Obs.Jsonw.Float v)) !history_costs)
         );
       ]
      @ (if !history_verify = [] then []
         else
           [
             ( "verify",
               Obs.Jsonw.Obj
                 (List.map
                    (fun (k, v) -> (k, Obs.Jsonw.Float v))
                    !history_verify) );
           ])
      @ (if !history_serve = [] then []
         else
           [
             ( "serve",
               Obs.Jsonw.Obj
                 (List.map
                    (fun (k, v) -> (k, Obs.Jsonw.Float v))
                    !history_serve) );
           ])
      @ (if !history_enum = [] then []
         else
           [
             ( "enum",
               Obs.Jsonw.Obj
                 (List.map (fun (k, v) -> (k, Obs.Jsonw.Float v)) !history_enum)
             );
           ])
      @
      if !history_codegen = [] then []
      else
        [
          ( "codegen",
            Obs.Jsonw.Obj
              (List.map
                 (fun (k, v) -> (k, Obs.Jsonw.Float v))
                 !history_codegen) );
        ])
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  output_string oc (Obs.Jsonw.to_string entry);
  output_char oc '\n';
  close_out oc

let finish_history ~file ~gate_pct ~wall_s =
  if
    !history_costs = [] && !history_verify = [] && !history_serve = []
    && !history_enum = [] && !history_codegen = []
  then begin
    Printf.eprintf
      "--history: nothing recorded (run the fig7, verify, serve, enum and/or \
       codegen suite)\n";
    exit 2
  end;
  let violations =
    match (gate_pct, read_last_entry file) with
    | Some pct, Some prev -> gate_history ~prev ~wall_s ~pct
    | _ -> []
  in
  if violations = [] then begin
    append_history ~file ~wall_s;
    Printf.printf
      "appended bench history entry (%d costs, %d verify ratios, %d serve \
       ratios, %d enum metrics) to %s\n"
      (List.length !history_costs)
      (List.length !history_verify)
      (List.length !history_serve)
      (List.length !history_enum)
      file
  end
  else begin
    List.iter (fun v -> Printf.eprintf "REGRESSION %s\n" v) violations;
    Printf.eprintf "bench history gate FAILED against %s (entry not appended)\n"
      file;
    exit 1
  end

let () =
  (* [--json FILE], [--history FILE] and [--gate PCT] may appear
     anywhere; they are stripped before dispatch. *)
  let strip_opt key args =
    let rec go acc = function
      | k :: v :: rest when k = key -> (Some v, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let json_file, args = strip_opt "--json" (Array.to_list Sys.argv) in
  let history_file, args = strip_opt "--history" args in
  let gate_arg, args = strip_opt "--gate" args in
  let gate_pct =
    Option.map
      (fun s ->
        match float_of_string_opt s with
        | Some pct when pct > 0.0 -> pct
        | _ ->
            Printf.eprintf "--gate: expected a positive percentage, got %S\n" s;
            exit 2)
      gate_arg
  in
  let t0 = Unix.gettimeofday () in
  let usage () =
    prerr_endline
      "usage: main.exe [fig7|fig11|verify|serve|enum|profile|codegen|table5 \
       [--full]|casestudy <name>|gqa_sweep|ablation|micro]... [--json FILE] \
       [--history FILE [--gate PCT]]";
    exit 2
  in
  (* Suites run left to right; several may be combined into one run (and
     hence one history entry), e.g. `fig7 verify --history F --gate 5`. *)
  let rec dispatch = function
    | [] -> ()
    | "fig7" :: rest ->
        fig7 ();
        dispatch rest
    | "fig11" :: rest ->
        fig11 ();
        dispatch rest
    | "verify" :: rest ->
        verify_bench ();
        dispatch rest
    | "table5" :: "--full" :: rest ->
        table5 ~full:true ();
        dispatch rest
    | "table5" :: rest ->
        table5 ~full:false ();
        dispatch rest
    | "casestudy" :: name :: rest ->
        casestudy name ();
        dispatch rest
    | "gqa_sweep" :: rest ->
        gqa_sweep ();
        dispatch rest
    | "ablation" :: rest ->
        ablation ();
        dispatch rest
    | "micro" :: rest ->
        micro ();
        dispatch rest
    | "serve" :: rest ->
        serve_bench ();
        dispatch rest
    | "enum" :: rest ->
        enum_bench ();
        dispatch rest
    | "profile" :: rest ->
        profile_bench ();
        dispatch rest
    | "codegen" :: rest ->
        codegen_bench ();
        dispatch rest
    | _ -> usage ()
  in
  (match args with
  | _ :: [] | [] ->
      fig7 ();
      fig11 ();
      gqa_sweep ();
      ablation ();
      table5 ~full:false ();
      micro ()
  | _ :: suites -> dispatch suites);
  Option.iter write_json json_file;
  Option.iter
    (fun file ->
      finish_history ~file ~gate_pct ~wall_s:(Unix.gettimeofday () -. t0))
    history_file
