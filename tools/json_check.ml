(* Validate that a file parses as JSON (used by CI on trace, report and
   bench output). Files ending in .jsonl are validated line by line —
   every non-blank line must be a complete JSON document (the journal
   and bench-history formats). Exits 0 and prints a short shape summary,
   or 1 with the parse error. *)

let describe = function
  | Obs.Jsonw.List l -> Printf.sprintf "array of %d elements" (List.length l)
  | Obs.Jsonw.Obj kvs ->
      Printf.sprintf "object with keys [%s]"
        (String.concat "; " (List.map fst kvs))
  | Obs.Jsonw.Str _ -> "string"
  | Obs.Jsonw.Int _ -> "int"
  | Obs.Jsonw.Float _ -> "float"
  | Obs.Jsonw.Bool _ -> "bool"
  | Obs.Jsonw.Null -> "null"

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: json_check FILE...";
    exit 2
  end;
  Array.iteri
    (fun i path ->
      if i > 0 then
        if Filename.check_suffix path ".jsonl" then begin
          let ic = open_in path in
          let ok = ref 0 and lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               incr lineno;
               if String.trim line <> "" then
                 match Obs.Jsonw.of_string line with
                 | Ok _ -> incr ok
                 | Error msg ->
                     Printf.eprintf "%s: INVALID JSONL at line %d: %s\n" path
                       !lineno msg;
                     close_in ic;
                     exit 1
             done
           with End_of_file -> ());
          close_in ic;
          Printf.printf "%s: valid JSONL, %d line(s)\n" path !ok
        end
        else begin
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          match Obs.Jsonw.of_string s with
          | Ok j -> Printf.printf "%s: valid JSON, %s\n" path (describe j)
          | Error msg ->
              Printf.eprintf "%s: INVALID JSON: %s\n" path msg;
              exit 1
        end)
    Sys.argv
