type ctx = { p : int; q : int; omega : int }

exception Not_lax
exception Unsupported of string

type t = { vp : int; vq : int option }

let make_ctx ?(p = Zmod.default_p) ?(q = Zmod.default_q) ~omega () =
  if not (Zmod.is_prime p) then invalid_arg "Fpair.make_ctx: p not prime";
  if not (Zmod.is_prime q) then invalid_arg "Fpair.make_ctx: q not prime";
  if (p - 1) mod q <> 0 then invalid_arg "Fpair.make_ctx: q must divide p-1";
  if Zmod.pow ~modulus:p omega q <> 1 then
    invalid_arg "Fpair.make_ctx: omega is not a q-th root of unity";
  { p; q; omega }

let random_ctx ?(p = Zmod.default_p) ?(q = Zmod.default_q) st =
  make_ctx ~p ~q ~omega:(Zmod.random_root_of_unity ~p ~q st) ()

let of_int c n =
  { vp = Zmod.normalize ~modulus:c.p n; vq = Some (Zmod.normalize ~modulus:c.q n) }

let zero = { vp = 0; vq = Some 0 }
let one = { vp = 1; vq = Some 1 }

let equal a b =
  a.vp = b.vp
  && match a.vq, b.vq with Some x, Some y -> x = y | _ -> true

let lift2 c fp fq a b =
  { vp = fp ~modulus:c.p a.vp b.vp;
    vq =
      (match a.vq, b.vq with
      | Some x, Some y -> Some (fq ~modulus:c.q x y)
      | _ -> None) }

let add c a b = lift2 c Zmod.add Zmod.add a b
let sub c a b = lift2 c Zmod.sub Zmod.sub a b
let mul c a b = lift2 c Zmod.mul Zmod.mul a b
let div c a b = lift2 c Zmod.div Zmod.div a b

let exp c x =
  match x.vq with
  | None -> raise Not_lax
  | Some e -> { vp = Zmod.pow ~modulus:c.p c.omega e; vq = None }

let sqrt _ _ = raise (Unsupported "sqrt")
let silu _ _ = raise (Unsupported "silu")

(* Record fields evaluate in unspecified order; draw through lets so the
   consumption order (vp then vq) is defined — {!Fpacked.random} promises
   stream parity with it. *)
let random c st =
  let vp = Random.State.int st c.p in
  { vp; vq = Some (Random.State.int st c.q) }

let pp fmt x =
  match x.vq with
  | Some q -> Format.fprintf fmt "(%d,%d)" x.vp q
  | None -> Format.fprintf fmt "(%d,-)" x.vp

let to_string x = Format.asprintf "%a" pp x
