(* Packed Z_p x Z_q elements: both components live in one immediate int so
   the verifier's hot loops run over flat [int array]s with no boxing.
   Layout: bits 0-7 hold vp, bits 8-15 hold vq, bit 16 is set when the
   Z_q component has been consumed by an exponentiation. Both default
   moduli (227, 113) fit in 8 bits; [packable] gates the fast path so
   larger test fields fall back to the boxed {!Fpair} representation. *)

type t = int

let no_q = 1 lsl 16
let pack vp vq = vp lor (vq lsl 8)
let vp x = x land 0xff
let vq x = (x lsr 8) land 0xff
let has_q x = x land no_q = 0
let without_q vp = vp lor no_q

let packable ~p ~q = p > 1 && q > 1 && p < 256 && q < 256

type ctx = {
  p : int;
  q : int;
  omega : int;
  inv_p : int array;  (* inv_p.(x) = x^-1 mod p; slot 0 unused *)
  inv_q : int array;  (* inv_q.(x) = x^-1 mod q; slot 0 unused *)
  omega_pow : int array;  (* omega_pow.(e) = omega^e mod p, e in [0, q) *)
}

(* The inverse tables depend only on (p, q); contexts differ per trial only
   in omega, so the tables are built once per field and shared. Guarded by
   a mutex because verification runs across domains. *)
let table_cache : (int * int, int array * int array) Hashtbl.t =
  Hashtbl.create 4

let table_lock = Mutex.create ()

let inv_table modulus =
  Array.init modulus (fun x -> if x = 0 then 0 else Zmod.inv ~modulus x)

let inv_tables ~p ~q =
  Mutex.lock table_lock;
  let tables =
    match Hashtbl.find_opt table_cache (p, q) with
    | Some t -> t
    | None ->
        let t = (inv_table p, inv_table q) in
        Hashtbl.add table_cache (p, q) t;
        t
  in
  Mutex.unlock table_lock;
  tables

let make_ctx ?(p = Zmod.default_p) ?(q = Zmod.default_q) ~omega () =
  if not (packable ~p ~q) then
    invalid_arg "Fpacked.make_ctx: moduli must fit in 8 bits";
  if not (Zmod.is_prime p) then invalid_arg "Fpacked.make_ctx: p not prime";
  if not (Zmod.is_prime q) then invalid_arg "Fpacked.make_ctx: q not prime";
  if (p - 1) mod q <> 0 then
    invalid_arg "Fpacked.make_ctx: q must divide p-1";
  if Zmod.pow ~modulus:p omega q <> 1 then
    invalid_arg "Fpacked.make_ctx: omega is not a q-th root of unity";
  let inv_p, inv_q = inv_tables ~p ~q in
  let omega_pow = Array.make q 1 in
  for e = 1 to q - 1 do
    omega_pow.(e) <- omega_pow.(e - 1) * omega mod p
  done;
  { p; q; omega; inv_p; inv_q; omega_pow }

let random_ctx ?(p = Zmod.default_p) ?(q = Zmod.default_q) st =
  make_ctx ~p ~q ~omega:(Zmod.random_root_of_unity ~p ~q st) ()

let of_int c n =
  pack (Zmod.normalize ~modulus:c.p n) (Zmod.normalize ~modulus:c.q n)

let zero = pack 0 0
let one = pack 1 1

(* Same rule as Fpair.equal: vp must agree; vq must agree only when both
   sides still carry a Z_q component. *)
let equal a b =
  a land 0xff = b land 0xff
  && ((a lor b) land no_q <> 0 || a land 0xff00 = b land 0xff00)

let add c a b =
  let rp =
    let s = (a land 0xff) + (b land 0xff) in
    if s >= c.p then s - c.p else s
  in
  if (a lor b) land no_q <> 0 then rp lor no_q
  else
    let s = ((a lsr 8) land 0xff) + ((b lsr 8) land 0xff) in
    rp lor ((if s >= c.q then s - c.q else s) lsl 8)

let sub c a b =
  let rp =
    let d = (a land 0xff) - (b land 0xff) in
    if d < 0 then d + c.p else d
  in
  if (a lor b) land no_q <> 0 then rp lor no_q
  else
    let d = ((a lsr 8) land 0xff) - ((b lsr 8) land 0xff) in
    rp lor ((if d < 0 then d + c.q else d) lsl 8)

let mul c a b =
  let rp = (a land 0xff) * (b land 0xff) mod c.p in
  if (a lor b) land no_q <> 0 then rp lor no_q
  else rp lor ((((a lsr 8) land 0xff) * ((b lsr 8) land 0xff) mod c.q) lsl 8)

let div c a b =
  let bp = b land 0xff in
  if bp = 0 then raise Zmod.Division_by_zero;
  let rp = (a land 0xff) * c.inv_p.(bp) mod c.p in
  if (a lor b) land no_q <> 0 then rp lor no_q
  else begin
    let bq = (b lsr 8) land 0xff in
    if bq = 0 then raise Zmod.Division_by_zero;
    rp lor ((((a lsr 8) land 0xff) * c.inv_q.(bq) mod c.q) lsl 8)
  end

let pow c x e =
  let rp = Zmod.pow ~modulus:c.p (x land 0xff) e in
  if x land no_q <> 0 then rp lor no_q
  else rp lor (Zmod.pow ~modulus:c.q ((x lsr 8) land 0xff) e lsl 8)

let exp c x =
  if x land no_q <> 0 then raise Fpair.Not_lax
  else c.omega_pow.((x lsr 8) land 0xff) lor no_q

(* Same Random.State consumption order as Fpair.random, so a shared state
   yields value-identical streams across both representations. *)
let random c st =
  let rp = Random.State.int st c.p in
  pack rp (Random.State.int st c.q)

let of_fpair (x : Fpair.t) =
  match x.Fpair.vq with
  | Some v -> pack x.Fpair.vp v
  | None -> without_q x.Fpair.vp

let to_fpair x =
  { Fpair.vp = vp x; vq = (if has_q x then Some (vq x) else None) }

let to_string x =
  if has_q x then Printf.sprintf "(%d,%d)" (vp x) (vq x)
  else Printf.sprintf "(%d,-)" (vp x)

(* Monomorphic matmul inner kernel: the generic [Dense.matmul] loop pays a
   closure-indirect call per [mul]/[add] plus the polymorphic-array float
   tag check per element access; over packed ints all of it folds into
   straight-line integer arithmetic on [int array]s. Semantically the
   accumulation is exactly [fold add (mul x y)]: once any product has a
   consumed Z_q component the whole sum does, so the q-sum is tracked in a
   local and discarded when the flag fires. *)
let matmul_inner c ~m ~n ~k ~a ~base_a ~sa_i ~sa_l ~b ~base_b ~sb_l ~sb_j ~out
    ~out_base =
  let p = c.p and q = c.q in
  let idx = ref out_base in
  for i = 0 to m - 1 do
    let arow = base_a + (i * sa_i) in
    for j = 0 to n - 1 do
      let bcol = base_b + (j * sb_j) in
      (* Products are < 2^16 and k is bounded by memory (< 2^46), so the
         sums cannot overflow a 63-bit int: reduce mod p / mod q once per
         dot product instead of per element. Modular addition is
         associative, so this equals the per-element [fold add (mul x y)]
         exactly. *)
      let accp = ref 0 and accq = ref 0 and noq = ref 0 in
      let ia = ref arow and ib = ref bcol in
      for _l = 0 to k - 1 do
        let x = Array.unsafe_get a !ia and y = Array.unsafe_get b !ib in
        accp := !accp + ((x land 0xff) * (y land 0xff));
        let nq = (x lor y) land no_q in
        if nq = 0 then
          accq := !accq + (((x lsr 8) land 0xff) * ((y lsr 8) land 0xff))
        else noq := no_q;
        ia := !ia + sa_l;
        ib := !ib + sb_l
      done;
      Array.unsafe_set out !idx
        (if !noq <> 0 then !accp mod p lor no_q
         else !accp mod p lor ((!accq mod q) lsl 8));
      incr idx
    done
  done

(* Stateless splitmix-style finalizer used by the verifier's uninterpreted
   function oracle in place of per-element Random.State allocation. The
   multipliers are 62-bit truncations of the splitmix64 constants (OCaml
   ints are 63-bit); avalanche quality is ample for test-input hashing. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1E3779B97F4A7C15 in
  let x = x lxor (x lsr 31) in
  x land max_int
