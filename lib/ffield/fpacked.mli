(** Packed [Z_p x Z_q] test values for the verifier fast path.

    Semantically identical to {!Fpair} — same field, same LAX rules, same
    exceptions — but a value is a single immediate [int]: bits 0-7 hold the
    [Z_p] component, bits 8-15 the [Z_q] component, and bit 16 marks a
    consumed [Z_q] component (post-exponentiation). Tensors of these values
    are flat [int array]s with no per-element boxing, divisions are inverse
    table lookups instead of Fermat [pow], and exponentiation is an
    [omega^e] table lookup.

    Only fields whose moduli fit in 8 bits are representable; use
    {!packable} to decide between this module and the boxed {!Fpair}
    reference path. *)

type t = private int
(** A packed test value. Immediate (never boxed). *)

type ctx = private {
  p : int;
  q : int;
  omega : int;
  inv_p : int array;
  inv_q : int array;
  omega_pow : int array;
}
(** Field parameters, the sampled root of unity, and the precomputed
    inverse / omega-power tables. Inverse tables are cached per [(p, q)]
    and shared across contexts (and domains). *)

val packable : p:int -> q:int -> bool
(** Whether both moduli fit the 8-bit packed layout. *)

val make_ctx : ?p:int -> ?q:int -> omega:int -> unit -> ctx
(** Same validation as {!Fpair.make_ctx}, plus [packable]. Defaults are
    the paper's p = 227, q = 113. *)

val random_ctx : ?p:int -> ?q:int -> Random.State.t -> ctx
(** Context with a uniformly random root of unity; consumes the same
    amount of randomness as {!Fpair.random_ctx}. *)

val pack : int -> int -> t
(** [pack vp vq]; both components must already be canonical (in range). *)

val without_q : int -> t
(** A value whose [Z_q] component has been consumed. *)

val vp : t -> int

val vq : t -> int
(** Meaningless unless [has_q]. *)

val has_q : t -> bool

val of_int : ctx -> int -> t
val zero : t
val one : t

val equal : t -> t -> bool
(** Same rule as {!Fpair.equal}: [vp] must agree, [vq] only when both
    sides still carry one. *)

val add : ctx -> t -> t -> t
val sub : ctx -> t -> t -> t
val mul : ctx -> t -> t -> t

val div : ctx -> t -> t -> t
(** Inverse-table division. @raise Zmod.Division_by_zero exactly when
    {!Fpair.div} would: zero [Z_p] divisor, or zero [Z_q] divisor when
    both operands still carry a [Z_q] component. *)

val pow : ctx -> t -> int -> t
(** Componentwise [Zmod.pow]; exponent must be non-negative. *)

val exp : ctx -> t -> t
(** Table lookup [omega^vq]. @raise Fpair.Not_lax if the [Z_q] component
    was already consumed. *)

val random : ctx -> Random.State.t -> t
(** Uniform element; consumes randomness in the same order as
    {!Fpair.random} so shared states produce identical streams. *)

val of_fpair : Fpair.t -> t
val to_fpair : t -> Fpair.t
val to_string : t -> string

val matmul_inner :
  ctx ->
  m:int ->
  n:int ->
  k:int ->
  a:t array ->
  base_a:int ->
  sa_i:int ->
  sa_l:int ->
  b:t array ->
  base_b:int ->
  sb_l:int ->
  sb_j:int ->
  out:t array ->
  out_base:int ->
  unit
(** One [m x k] by [k x n] product written row-major at [out_base], with
    arbitrary input strides. Monomorphic over the packed representation so
    the field arithmetic is straight-line integer code — no closure calls,
    no polymorphic-array tag checks. Exactly equivalent to the generic
    [fold add (mul x y)] accumulation (including consumed-[Z_q]
    propagation); {!Tensor.Dense.matmul} dispatches here for packed
    element domains. *)

val mix : int -> int
(** Stateless splitmix-style avalanche hash onto [0, max_int]; the
    verifier's oracle for abstracted operators (Sqrt/SiLU) is built on
    this instead of allocating a [Random.State] per element. *)
