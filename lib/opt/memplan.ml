open Tensor
open Mugraph

type tensor_info = {
  node : int;
  size_bytes : int;
  first : int;
  last : int;
}

type plan = {
  tensors : tensor_info list;
  offsets : (int * int) list;
  peak_bytes : int;
  optimal : bool;
}

let exhaustive_limit = 8

(* High-water marks across every plan of the process, in the default
   registry (memory planning has no per-run registry). *)
let g_peak =
  lazy
    (Obs.Metrics.gauge (Obs.Metrics.default ())
       ~help:"largest planned shared-memory footprint (bytes)"
       "opt.memplan.peak_smem_bytes")

let c_plans =
  lazy
    (Obs.Metrics.counter (Obs.Metrics.default ())
       ~help:"block graphs memory-planned" "opt.memplan.plans")

let lifetimes ~elt_bytes (bg : Graph.block_graph) ~kernel_inputs =
  let shapes = Infer.block_shapes bg ~kernel_inputs in
  let sched = Schedule.block_schedule bg in
  let n = Array.length bg.bnodes in
  let pos = Array.make n 0 in
  List.iteri (fun p i -> pos.(i) <- p) sched.Schedule.order;
  let invariant = Graph.loop_invariant_nodes bg in
  let post = Graph.post_loop_nodes bg in
  let last_use = Array.make n 0 in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      last_use.(i) <- pos.(i);
      List.iter
        (fun j -> last_use.(j) <- max last_use.(j) pos.(i))
        node.bins)
    bg.bnodes;
  let max_pos = n in
  Array.to_list bg.bnodes
  |> List.mapi (fun i node -> (i, node))
  |> List.filter_map (fun (i, (node : Graph.block_node)) ->
         match node.bop with
         | Graph.B_outsaver _ -> None
         | Graph.B_initer _ | Graph.B_prim _ | Graph.B_accum _
         | Graph.B_threadgraph _ ->
             let has_loop = Graph.total_iters bg > 1 in
             let persists =
               (* Values crossing the loop boundary live for the whole
                  kernel: accumulators, loop-invariant tiles read in the
                  epilogue, and loop-body values feeding epilogue nodes. *)
               has_loop
               && ((match node.bop with Graph.B_accum _ -> true | _ -> false)
                  || (invariant.(i) && last_use.(i) > pos.(i))
                  || (not post.(i))
                     && Array.exists
                          (fun (m : Graph.block_node) ->
                            List.mem i m.bins
                            &&
                            match m.bop with
                            | Graph.B_accum _ -> true
                            | _ -> false)
                          bg.bnodes)
             in
             Some
               {
                 node = i;
                 size_bytes = Shape.numel shapes.(i) * elt_bytes;
                 first = pos.(i);
                 last = (if persists then max_pos else last_use.(i));
               })

let overlap a b = a.first <= b.last && b.first <= a.last

(* First-fit placement in the given order. *)
let first_fit tensors =
  let placed = ref [] in
  let offsets =
    List.map
      (fun t ->
        (* candidate offsets: 0 and the end of every placed tensor *)
        let candidates =
          0
          :: List.filter_map
               (fun (t', off) ->
                 if overlap t t' then Some (off + t'.size_bytes) else None)
               !placed
          |> List.sort_uniq Stdlib.compare
        in
        let fits off =
          List.for_all
            (fun (t', off') ->
              (not (overlap t t'))
              || off + t.size_bytes <= off'
              || off' + t'.size_bytes <= off)
            !placed
        in
        let off = List.find fits candidates in
        placed := (t, off) :: !placed;
        (t.node, off))
      tensors
  in
  let peak =
    List.fold_left
      (fun acc (t, off) -> max acc (off + t.size_bytes))
      0 !placed
  in
  (offsets, peak)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let finish plan =
  Obs.Metrics.bump (Lazy.force c_plans);
  Obs.Metrics.max_gauge (Lazy.force g_peak) (float_of_int plan.peak_bytes);
  plan

let plan_block ?budget ~elt_bytes bg ~kernel_inputs =
  finish
  @@
  let tensors = lifetimes ~elt_bytes bg ~kernel_inputs in
  (* Past the deadline the exhaustive permutation search is skipped:
     first-fit always yields a valid plan, just not a provably optimal
     peak. *)
  let out_of_time =
    match budget with
    | Some b when Obs.Budget.over_deadline b || Obs.Budget.cancelled b ->
        Obs.Budget.note b "memplan.deadline";
        true
    | _ -> false
  in
  if tensors = [] then
    { tensors; offsets = []; peak_bytes = 0; optimal = true }
  else if (not out_of_time) && List.length tensors <= exhaustive_limit
  then begin
    let best = ref None in
    List.iter
      (fun order ->
        let offsets, peak = first_fit order in
        match !best with
        | Some (_, p) when p <= peak -> ()
        | _ -> best := Some (offsets, peak))
      (permutations tensors);
    let offsets, peak = Option.get !best in
    { tensors; offsets; peak_bytes = peak; optimal = true }
  end
  else begin
    let order =
      List.sort (fun a b -> Stdlib.compare b.size_bytes a.size_bytes) tensors
    in
    let offsets, peak = first_fit order in
    { tensors; offsets; peak_bytes = peak; optimal = false }
  end

let valid plan =
  let find_info node = List.find (fun t -> t.node = node) plan.tensors in
  let items = List.map (fun (n, off) -> (find_info n, off)) plan.offsets in
  let ok = ref true in
  List.iteri
    (fun i (t, off) ->
      if off < 0 || off + t.size_bytes > plan.peak_bytes then ok := false;
      List.iteri
        (fun j (t', off') ->
          if
            i < j && overlap t t'
            && not (off + t.size_bytes <= off' || off' + t'.size_bytes <= off)
          then ok := false)
        items)
    items;
  !ok

let naive_peak plan =
  List.fold_left (fun acc t -> acc + t.size_bytes) 0 plan.tensors
