(** Tensor layout selection (paper §6, "Tensor layouts"), as a 0-1 ILP.

    For every shared-memory tensor of a block graph and every candidate
    layout, a boolean selection variable is created; operator
    requirements become linear constraints and per-choice cost terms
    model the performance effect:
    - input iterators prefer the device tensor's layout (row-major) so
      the tile can be bulk-copied;
    - matmul prefers a row-major left operand and a column-major right
      operand (cuTLASS fragment loading);
    - elementwise operators require all operands and the result to share
      a layout (hard constraint);
    - accumulators preserve their input's layout (hard constraint);
    - output savers prefer row-major (device tensors are row-major).

    The exact B&B solver of {!Ilp} returns the optimal assignment. *)

open Tensor

type source =
  | Ilp_optimal  (** proven optimal ILP solution *)
  | Ilp_incumbent
      (** node limit / deadline cut the solve; best feasible incumbent *)
  | Greedy  (** solver yielded nothing usable; all-row-major fallback *)

type assignment = {
  layouts : (int * Layout.t) list;  (** block node -> chosen layout *)
  cost : float;  (** total penalty of the choice, in model cost units *)
  naive_cost : float;  (** penalty of the all-row-major strawman *)
  source : source;
      (** how the assignment was obtained; anything but [Ilp_optimal] is
          a degraded solve, counted in the [opt.layout.fallback.*]
          metrics and the global degradation registry *)
}

val source_to_string : source -> string

val optimize_block :
  ?node_limit:int ->
  ?budget:Obs.Budget.t ->
  Mugraph.Graph.block_graph ->
  kernel_inputs:Shape.t list ->
  assignment option
(** [None] when the hard constraints are unsatisfiable (does not happen
    for well-formed block graphs — elementwise chains can always fall
    back to row-major). A cut-short or fault-injected solve degrades to
    the ILP incumbent or the greedy row-major assignment instead of
    raising. *)

val optimize :
  ?node_limit:int ->
  ?budget:Obs.Budget.t ->
  Mugraph.Graph.kernel_graph ->
  (int * assignment) list
(** One assignment per graph-defined kernel node. *)

val total_cost : Mugraph.Graph.kernel_graph -> float * float
(** (optimal, naive) summed over custom kernels. *)
