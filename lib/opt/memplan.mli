(** Memory planning (paper §6, "Memory planning"): assign shared-memory
    offsets to all block-graph tensors — a dynamic storage allocation
    problem. Tensors whose lifetimes do not overlap may share space.

    For the small tensor counts of block graphs the planner enumerates
    placement orders exhaustively (first-fit per order) and returns a
    provably optimal peak for up to [exhaustive_limit] tensors, falling
    back to decreasing-size first-fit beyond that. *)

open Tensor

type tensor_info = {
  node : int;  (** block-graph node index *)
  size_bytes : int;
  first : int;  (** definition position in the schedule *)
  last : int;  (** last-use position *)
}

type plan = {
  tensors : tensor_info list;
  offsets : (int * int) list;  (** node index -> byte offset *)
  peak_bytes : int;
  optimal : bool;  (** exhaustive search completed *)
}

val exhaustive_limit : int

val lifetimes :
  elt_bytes:int ->
  Mugraph.Graph.block_graph ->
  kernel_inputs:Shape.t list ->
  tensor_info list
(** Shared-memory resident tensors with schedule-order lifetimes.
    Accumulators and loop-invariant input tiles persist across the whole
    for-loop. *)

val plan_block :
  ?budget:Obs.Budget.t ->
  elt_bytes:int ->
  Mugraph.Graph.block_graph ->
  kernel_inputs:Shape.t list ->
  plan
(** When [budget] is past its deadline (or cancelled) the exhaustive
    permutation search is skipped and the decreasing-size first-fit
    plan is returned ([optimal = false]), with ["memplan.deadline"]
    noted on the budget. *)

val valid : plan -> bool
(** No two simultaneously-live tensors overlap (used by tests). *)

val naive_peak : plan -> int
(** Peak of the no-reuse allocation (every tensor gets fresh space) —
    what the generator's conservative MemoryCheck assumes. *)
