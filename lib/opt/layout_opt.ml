open Tensor
open Mugraph

type source = Ilp_optimal | Ilp_incumbent | Greedy

type assignment = {
  layouts : (int * Layout.t) list;
  cost : float;
  naive_cost : float;
  source : source;
}

let source_to_string = function
  | Ilp_optimal -> "ilp_optimal"
  | Ilp_incumbent -> "ilp_incumbent"
  | Greedy -> "greedy"

(* Degraded-solve telemetry in the process-wide registry (layout
   selection has no per-run registry). *)
let c_incumbent =
  lazy
    (Obs.Metrics.counter (Obs.Metrics.default ())
       ~help:"layout solves degraded to the best ILP incumbent"
       "opt.layout.fallback.incumbent")

let c_greedy =
  lazy
    (Obs.Metrics.counter (Obs.Metrics.default ())
       ~help:"layout solves degraded to the greedy row-major assignment"
       "opt.layout.fallback.greedy")

(* Penalty model (cost units = KiB of extra shared-memory traffic-ish):
   proportional to the tensor size so that mislaying out a large tile
   costs more than a small vector. *)
let penalty_scale shape = float_of_int (Shape.numel shape) /. 512.0

let optimize_block ?node_limit ?budget (bg : Graph.block_graph)
    ~kernel_inputs =
  let shapes = Infer.block_shapes bg ~kernel_inputs in
  let n = Array.length bg.bnodes in
  let p = Ilp.create () in
  (* vars.(i) = list of (layout, var); empty for outsavers. *)
  let vars = Array.make n [] in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.bop with
      | Graph.B_outsaver _ -> ()
      | _ ->
          let cands = Layout.candidates shapes.(i) in
          vars.(i) <-
            List.map
              (fun l ->
                ( l,
                  Ilp.new_var
                    ~name:(Printf.sprintf "b%d:%s" i (Layout.to_string l))
                    p ))
              cands;
          Ilp.add_exactly_one p (List.map snd vars.(i)))
    bg.bnodes;
  let var_of i l =
    List.assoc_opt l vars.(i)
  in
  let objective = ref [] in
  let penalize i l w =
    match var_of i l with
    | Some v -> objective := (w, v) :: !objective
    | None -> ()
  in
  let same_layout i j =
    (* for each layout l: x_{i,l} <-> x_{j,l} *)
    List.iter
      (fun (l, v) ->
        match var_of j l with
        | Some v' ->
            Ilp.add_implies p v v';
            Ilp.add_implies p v' v
        | None ->
            (* j cannot take layout l at all: forbid it for i too *)
            Ilp.add_eq p [ (1, v) ] 0)
      vars.(i)
  in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.bop with
      | Graph.B_initer _ ->
          (* device tensors are row-major; a col-major tile forgoes the
             bulk copy *)
          penalize i Layout.Col_major (penalty_scale shapes.(i))
      | Graph.B_prim Op.Matmul -> (
          match node.bins with
          | [ a; b ] ->
              penalize a Layout.Col_major (penalty_scale shapes.(a));
              penalize b Layout.Row_major (penalty_scale shapes.(b))
          | _ -> ())
      | Graph.B_prim (Op.Binary _ | Op.Unary _) | Graph.B_threadgraph _ ->
          List.iter
            (fun j -> if vars.(j) <> [] && vars.(i) <> [] then same_layout i j)
            node.bins
      | Graph.B_accum _ -> (
          match node.bins with
          | [ j ] when vars.(j) <> [] && vars.(i) <> [] -> same_layout i j
          | _ -> ())
      | Graph.B_prim _ -> ()
      | Graph.B_outsaver _ -> (
          match node.bins with
          | [ j ] -> penalize j Layout.Col_major (penalty_scale shapes.(j))
          | _ -> ()))
    bg.bnodes;
  Ilp.set_objective p !objective;
  (* naive = all row-major: sum the penalties that assignment incurs *)
  let naive_cost =
    List.fold_left
      (fun acc (w, v) ->
        let name = Ilp.var_name p v in
        (* row-major choices incur their penalty iff the penalized
           layout is row-major *)
        let is_row =
          String.length name >= 9
          && String.sub name (String.length name - 9) 9 = "row-major"
        in
        if is_row then acc +. w else acc)
      0.0 !objective
  in
  let of_solution source (sol : Ilp.solution) =
    let layouts =
      Array.to_list bg.bnodes
      |> List.mapi (fun i _ -> i)
      |> List.filter_map (fun i ->
             match
               List.find_opt (fun (_, v) -> Ilp.value sol v) vars.(i)
             with
             | Some (l, _) -> Some (i, l)
             | None -> None)
    in
    Some { layouts; cost = sol.Ilp.objective; naive_cost; source }
  in
  (* Last-resort assignment when the solver yields nothing usable:
     everything row-major. Row-major is a candidate for every shape and
     a uniform choice satisfies all same-layout constraints, so this is
     always well-formed — just not optimal. *)
  let greedy () =
    Obs.Metrics.bump (Lazy.force c_greedy);
    Obs.Budget.degrade "layout.greedy";
    let layouts =
      Array.to_list bg.bnodes
      |> List.mapi (fun i _ -> i)
      |> List.filter_map (fun i ->
             if vars.(i) = [] then None else Some (i, Layout.Row_major))
    in
    Some { layouts; cost = naive_cost; naive_cost; source = Greedy }
  in
  match Ilp.solve ?node_limit ?budget p with
  | Ilp.Optimal sol -> of_solution Ilp_optimal sol
  | Ilp.Feasible_incumbent sol ->
      Obs.Metrics.bump (Lazy.force c_incumbent);
      Obs.Budget.degrade "layout.incumbent";
      of_solution Ilp_incumbent sol
  | Ilp.Node_limit -> greedy ()
  | Ilp.Infeasible -> None
  | exception Obs.Fault.Injected _ -> greedy ()

let optimize ?node_limit ?budget (g : Graph.kernel_graph) =
  let shapes = Infer.kernel_shapes g in
  Array.to_list g.knodes
  |> List.mapi (fun i node -> (i, node))
  |> List.filter_map (fun (i, (node : Graph.kernel_node)) ->
         match node.kop with
         | Graph.K_graphdef bg ->
             let kernel_inputs =
               List.map
                 (fun ({ node = j; port } : Graph.tensor_ref) ->
                   shapes.(j).(port))
                 node.kins
             in
             Option.map
               (fun a -> (i, a))
               (optimize_block ?node_limit ?budget bg ~kernel_inputs)
         | Graph.K_input _ | Graph.K_prim _ -> None)

let total_cost g =
  List.fold_left
    (fun (o, n) (_, a) -> (o +. a.cost, n +. a.naive_cost))
    (0.0, 0.0) (optimize g)
