open Mugraph

type kernel_report = {
  node : int;
  schedule : Schedule.t;
  memplan : Memplan.plan;
  layout : Layout_opt.assignment option;
}

type report = {
  kernels : kernel_report list;
  syncthreads : int;
  smem_peak_bytes : int;
  layout_cost : float;
  layout_naive_cost : float;
  degraded_layouts : int;
  degraded_memplans : int;
}

let optimize ?budget (device : Gpusim.Device.t) (g : Graph.kernel_graph) =
  Obs.Trace.with_span ~cat:"opt" "optimize" @@ fun () ->
  let shapes = Infer.kernel_shapes g in
  let kernels =
    Array.to_list g.knodes
    |> List.mapi (fun i node -> (i, node))
    |> List.filter_map (fun (i, (node : Graph.kernel_node)) ->
           match node.kop with
           | Graph.K_graphdef bg ->
               let args = [ ("kernel", string_of_int i) ] in
               let kernel_inputs =
                 List.map
                   (fun ({ node = j; port } : Graph.tensor_ref) ->
                     shapes.(j).(port))
                   node.kins
               in
               Some
                 {
                   node = i;
                   schedule =
                     Obs.Trace.with_span ~cat:"opt" ~args "opt.schedule"
                       (fun () -> Schedule.block_schedule bg);
                   memplan =
                     Obs.Trace.with_span ~cat:"opt" ~args "opt.memplan"
                       (fun () ->
                         Memplan.plan_block ?budget
                           ~elt_bytes:device.Gpusim.Device.elt_bytes bg
                           ~kernel_inputs);
                   layout =
                     Obs.Trace.with_span ~cat:"opt" ~args "opt.layout"
                       (fun () ->
                         Layout_opt.optimize_block ?budget bg ~kernel_inputs);
                 }
           | Graph.K_input _ | Graph.K_prim _ -> None)
  in
  let layout_cost, layout_naive_cost =
    List.fold_left
      (fun (o, n) k ->
        match k.layout with
        | Some a -> (o +. a.Layout_opt.cost, n +. a.Layout_opt.naive_cost)
        | None -> (o, n))
      (0.0, 0.0) kernels
  in
  {
    kernels;
    syncthreads = Schedule.total_syncthreads g;
    smem_peak_bytes =
      List.fold_left
        (fun acc k -> max acc k.memplan.Memplan.peak_bytes)
        0 kernels;
    layout_cost;
    layout_naive_cost;
    degraded_layouts =
      List.fold_left
        (fun acc k ->
          match k.layout with
          | Some { Layout_opt.source = Layout_opt.Ilp_optimal; _ } | None ->
              acc
          | Some _ -> acc + 1)
        0 kernels;
    degraded_memplans =
      List.fold_left
        (fun acc k ->
          if k.memplan.Memplan.optimal then acc else acc + 1)
        0 kernels;
  }

let fits (device : Gpusim.Device.t) r =
  r.smem_peak_bytes <= device.Gpusim.Device.smem_per_sm_bytes

let summary r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "optimizer: %d custom kernels, %d syncthreads, %d B smem peak, layout \
        cost %.2f (naive %.2f)%s\n"
       (List.length r.kernels) r.syncthreads r.smem_peak_bytes r.layout_cost
       r.layout_naive_cost
       (if r.degraded_layouts = 0 then ""
        else Printf.sprintf ", %d degraded layout solve(s)" r.degraded_layouts));
  List.iter
    (fun k ->
      Buffer.add_string buf
        (Printf.sprintf
           "  k%d: %d sync (naive %d), smem peak %d B (naive %d B), planner \
            %s, layout %s\n"
           k.node k.schedule.Schedule.syncthreads
           k.schedule.Schedule.naive_syncthreads k.memplan.Memplan.peak_bytes
           (Memplan.naive_peak k.memplan)
           (if k.memplan.Memplan.optimal then "optimal" else "first-fit")
           (match k.layout with
           | Some a -> Layout_opt.source_to_string a.Layout_opt.source
           | None -> "none")))
    r.kernels;
  Buffer.contents buf
