(** The post-verification muGraph optimizer (paper §6): tensor layouts,
    operator scheduling and memory planning for every custom kernel of a
    verified muGraph. These passes never change the computed function —
    which is exactly why Mirage defers them until after verification. *)

type kernel_report = {
  node : int;
  schedule : Schedule.t;
  memplan : Memplan.plan;
  layout : Layout_opt.assignment option;
}

type report = {
  kernels : kernel_report list;
  syncthreads : int;  (** total barriers per graph execution *)
  smem_peak_bytes : int;  (** max over custom kernels after planning *)
  layout_cost : float;
  layout_naive_cost : float;
  degraded_layouts : int;
      (** kernels whose layout solve fell back (incumbent or greedy) *)
  degraded_memplans : int;  (** kernels planned first-fit, not optimally *)
}

val optimize :
  ?budget:Obs.Budget.t -> Gpusim.Device.t -> Mugraph.Graph.kernel_graph -> report
(** [budget] bounds layout selection and memory planning: past the
    deadline both degrade (ILP incumbent / greedy layouts, first-fit
    plans) instead of running to completion or crashing. *)

val fits : Gpusim.Device.t -> report -> bool
(** Planned peak fits the device's shared memory. *)

val summary : report -> string
