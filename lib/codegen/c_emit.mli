(** Portable C99 renderer for {!Impir.Ir} programs — the runnable
    backend. The emitted translation unit is self-contained (only
    [math.h]/[string.h]), computes in double precision, and exports:

    - [void mirage_entry(const double **in, double **out)] — runs the
      whole program on flat row-major buffers;
    - [int mirage_num_inputs(void)] / [long mirage_input_size(int)] and
      the output counterparts — the shape metadata a generic harness
      needs to drive it without any program-specific knowledge.

    Grid loops run serially, [Barrier] is a no-op (single thread), and
    shared/local scratch become function-scoped [static] arrays. *)

val emit : Impir.Ir.program -> string

val loc : string -> int
(** Lines of emitted code (for reporting). *)
