(** Compile-and-execute harness for the C backend.

    [compile] renders an {!Impir.Ir.program} with {!C_emit}, compiles it
    into a shared object with the system [cc], and (once per directory)
    builds a tiny generic runner that [dlopen]s any such object. The
    runner speaks a ctypes-free subprocess protocol: raw native-endian
    doubles for every input on stdin, raw doubles for every output on
    stdout, sizes taken from the object's own metadata symbols.

    Everything lands in the caller-chosen directory so a failing case
    leaves its [.c] file behind for forensics. *)

type compiled = {
  dir : string;
  c_file : string;
  so_file : string;
  runner : string;
  prog : Impir.Ir.program;
  compile_s : float;  (** wall time of render + both cc invocations *)
}

val cc_available : unit -> bool
(** Is a working system [cc] on PATH? Memoized probe. *)

val asan_available : unit -> bool
(** Does [cc -fsanitize=address] link and run here? Memoized probe; the
    differential suite degrades to plain [-O1] with a notice when it
    does not. *)

val default_cflags : unit -> string list
(** [-O1 -fsanitize=address] when available, else [-O1]. *)

val compile :
  ?cflags:string list -> dir:string -> Impir.Ir.program ->
  (compiled, string) result
(** [dir] is created if missing. Errors carry the compiler's stderr. *)

val run :
  compiled -> float array list -> (float array list, string) result
(** Execute on one input set (flat row-major arrays, matching the
    program's input buffers). Errors carry the runner's stderr — an ASAN
    report, a size mismatch, or a crash. *)
