(** Pseudo-CUDA rendering of {!Impir.Ir} programs — the stand-in for the
    paper's JIT path (§7: "Mirage produces CUDA source code for all
    custom kernels ... and compiles the code into binary").

    Without nvcc in the environment, this backend renders human-readable
    CUDA-style source documenting exactly what the real backend would
    generate: one [__global__] function per graph-defined operator with
    grid axes mapped to [blockIdx], shared-memory buffers at the offsets
    chosen by the memory planner, the data-stream for-loop with
    [__syncthreads()] at schedule depth boundaries, and the epilogue with
    output stores. Kernel-level operators render as cuBLAS/cuDNN-style
    library calls in the host launcher.

    It consumes the same {!Impir.Lower} output as the runnable C backend
    ({!C_emit}), so the two paths cannot drift: the loop nests, index
    expressions and barrier placement are rendered from one IR. *)

open Mugraph

val emit_program : Impir.Ir.program -> string
(** Render an already-lowered program. *)

val emit_kernel : name:string -> Graph.kernel_graph -> string
(** Lower and render: full translation unit, kernels + host launcher. *)

val loc : string -> int
(** Lines of emitted code (for reporting). *)
