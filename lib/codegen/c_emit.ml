open Impir
open Mugraph

let shape_str s =
  String.concat "][" (Array.to_list (Array.map string_of_int s))

let iexp_str = Ir.iexp_to_string

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec vexp_str (e : Ir.vexp) =
  match e with
  | Ir.Const f -> float_str f
  | Ir.Temp v -> v
  | Ir.Load (b, i) -> Printf.sprintf "%s[%s]" b.Ir.bname (iexp_str i)
  | Ir.Bin (op, a, b) ->
      let s =
        match op with
        | Op.Add -> "+"
        | Op.Mul -> "*"
        | Op.Div -> "/"
        | Op.Sub -> "-"
      in
      Printf.sprintf "(%s %s %s)" (vexp_str a) s (vexp_str b)
  | Ir.Un (op, a) ->
      let f =
        match op with
        | Op.Exp -> "exp"
        | Op.Sqrt -> "sqrt"
        | Op.Sqr -> "mir_sqr"
        | Op.Silu -> "mir_silu"
        | Op.Relu -> "mir_relu"
      in
      Printf.sprintf "%s(%s)" f (vexp_str a)

let rec emit_stmt buf indent (s : Ir.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ir.Comment c -> Buffer.add_string buf (Printf.sprintf "%s/* %s */\n" pad c)
  | Ir.Barrier ->
      Buffer.add_string buf (Printf.sprintf "%s/* barrier */\n" pad)
  | Ir.Decl { v; init } ->
      Buffer.add_string buf
        (Printf.sprintf "%sdouble %s = %s;\n" pad v (vexp_str init))
  | Ir.Assign { v; e } ->
      Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" pad v (vexp_str e))
  | Ir.Store { dst; idx; e } ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] = %s;\n" pad dst.Ir.bname (iexp_str idx)
           (vexp_str e))
  | Ir.Store_add { dst; idx; e } ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] += %s;\n" pad dst.Ir.bname (iexp_str idx)
           (vexp_str e))
  | Ir.For { v; n; kind; body } ->
      let note =
        match kind with
        | Ir.Grid a -> Printf.sprintf " /* grid axis %d */" a
        | Ir.Forloop _ -> " /* data-stream loop */"
        | Ir.Serial | Ir.Reduce -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {%s\n" pad v v n v
           note);
      List.iter (emit_stmt buf (indent + 2)) body;
      Buffer.add_string buf (Printf.sprintf "%s}\n" pad)

let emit_kernel buf (k : Ir.kernel) =
  let param (j : int) (b : Ir.buf) =
    Printf.sprintf "%sdouble *%s"
      (if j < k.Ir.n_inputs then "const " else "")
      b.Ir.bname
  in
  Buffer.add_string buf
    (Printf.sprintf "static void %s(%s) {\n" k.Ir.kname
       (String.concat ", " (List.mapi param k.Ir.params)));
  List.iter
    (fun ((b : Ir.buf), off) ->
      Buffer.add_string buf
        (Printf.sprintf "  static double %s[%d]; /* [%s] %s, smem+%d */\n"
           b.Ir.bname (Ir.numel b) (shape_str b.Ir.shape)
           (Tensor.Layout.to_string b.Ir.layout)
           off))
    k.Ir.shared;
  List.iter
    (fun (b : Ir.buf) ->
      Buffer.add_string buf
        (Printf.sprintf "  double %s[%d]; /* [%s] register file */\n"
           b.Ir.bname (Ir.numel b) (shape_str b.Ir.shape)))
    k.Ir.locals;
  List.iter (emit_stmt buf 2) k.Ir.body;
  Buffer.add_string buf "}\n\n"

let emit (p : Ir.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "/* Mirage runnable C backend: %s */\n" p.Ir.pname);
  Buffer.add_string buf "#include <math.h>\n#include <string.h>\n\n";
  Buffer.add_string buf
    "static double mir_sqr(double x) { return x * x; }\n\
     static double mir_silu(double x) { return x / (1.0 + exp(-x)); }\n\
     static double mir_relu(double x) { return x > 0.0 ? x : 0.0; }\n\n";
  (* Inter-kernel temporaries live in BSS so large reduced workloads
     cannot overflow the stack. *)
  if p.Ir.temps <> [] then begin
    Buffer.add_string buf "/* inter-kernel temporaries */\n";
    List.iter
      (fun (b : Ir.buf) ->
        Buffer.add_string buf
          (Printf.sprintf "static double %s[%d]; /* [%s] */\n" b.Ir.bname
             (Ir.numel b) (shape_str b.Ir.shape)))
      p.Ir.temps;
    Buffer.add_string buf "\n"
  end;
  List.iter (emit_kernel buf) p.Ir.kernels;
  (* Harness metadata *)
  let sizes which bufs =
    Buffer.add_string buf
      (Printf.sprintf "long mirage_%s_size(int i) {\n  switch (i) {\n" which);
    List.iteri
      (fun j (b : Ir.buf) ->
        Buffer.add_string buf
          (Printf.sprintf "  case %d: return %d;\n" j (Ir.numel b)))
      bufs;
    Buffer.add_string buf "  default: return -1;\n  }\n}\n\n"
  in
  Buffer.add_string buf
    (Printf.sprintf "int mirage_num_inputs(void) { return %d; }\n\n"
       (List.length p.Ir.inputs));
  sizes "input" p.Ir.inputs;
  Buffer.add_string buf
    (Printf.sprintf "int mirage_num_outputs(void) { return %d; }\n\n"
       (List.length p.Ir.outputs));
  sizes "output" p.Ir.outputs;
  (* Entry: program inputs arrive as in[0..]; map each global buffer
     name to its C expression. *)
  let name_of =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun j (b : Ir.buf) ->
        Hashtbl.replace tbl b.Ir.bname (Printf.sprintf "in[%d]" j))
      p.Ir.inputs;
    List.iter
      (fun (b : Ir.buf) -> Hashtbl.replace tbl b.Ir.bname b.Ir.bname)
      p.Ir.temps;
    fun (b : Ir.buf) ->
      match Hashtbl.find_opt tbl b.Ir.bname with
      | Some s -> s
      | None -> b.Ir.bname
  in
  Buffer.add_string buf
    "void mirage_entry(const double **in, double **out) {\n";
  List.iter
    (fun (kname, args) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s(%s);\n" kname
           (String.concat ", " (List.map name_of args))))
    p.Ir.calls;
  List.iteri
    (fun j (b : Ir.buf) ->
      Buffer.add_string buf
        (Printf.sprintf "  memcpy(out[%d], %s, %d * sizeof(double));\n" j
           (name_of b) (Ir.numel b)))
    p.Ir.outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let loc s = List.length (String.split_on_char '\n' s)
