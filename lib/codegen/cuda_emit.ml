open Impir
open Mugraph

let shape_str s =
  String.concat "][" (Array.to_list (Array.map string_of_int s))

let dims_str a =
  match Array.length a with
  | 0 -> "1"
  | _ -> String.concat ", " (Array.to_list (Array.map string_of_int a))

let iexp_str = Ir.iexp_to_string

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1ff" f
  else Printf.sprintf "%.9gf" f

let rec vexp_str (e : Ir.vexp) =
  match e with
  | Ir.Const f -> float_str f
  | Ir.Temp v -> v
  | Ir.Load (b, i) -> Printf.sprintf "%s[%s]" b.Ir.bname (iexp_str i)
  | Ir.Bin (op, a, b) ->
      let s =
        match op with
        | Op.Add -> "+"
        | Op.Mul -> "*"
        | Op.Div -> "/"
        | Op.Sub -> "-"
      in
      Printf.sprintf "(%s %s %s)" (vexp_str a) s (vexp_str b)
  | Ir.Un (op, a) ->
      let f =
        match op with
        | Op.Exp -> "expf"
        | Op.Sqrt -> "sqrtf"
        | Op.Sqr -> "sqr"
        | Op.Silu -> "silu"
        | Op.Relu -> "relu"
      in
      Printf.sprintf "%s(%s)" f (vexp_str a)

let blockidx = [| "blockIdx.x"; "blockIdx.y"; "blockIdx.z" |]

let rec emit_stmt buf indent (s : Ir.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ir.Comment c -> Buffer.add_string buf (Printf.sprintf "%s// %s\n" pad c)
  | Ir.Barrier ->
      Buffer.add_string buf (Printf.sprintf "%s__syncthreads();\n" pad)
  | Ir.Decl { v; init } ->
      Buffer.add_string buf
        (Printf.sprintf "%sfloat %s = %s;\n" pad v (vexp_str init))
  | Ir.Assign { v; e } ->
      Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" pad v (vexp_str e))
  | Ir.Store { dst; idx; e } ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] = %s;\n" pad dst.Ir.bname (iexp_str idx)
           (vexp_str e))
  | Ir.Store_add { dst; idx; e } ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] += %s;\n" pad dst.Ir.bname (iexp_str idx)
           (vexp_str e))
  | Ir.For { v; n; kind = Ir.Grid a; body } ->
      (* Grid axes are CUDA's block parallelism, not loops. *)
      Buffer.add_string buf
        (Printf.sprintf "%sconst int %s = %s; // %d thread blocks on axis %d\n"
           pad v blockidx.(a) n a);
      List.iter (emit_stmt buf indent) body
  | Ir.For { v; n; kind; body } ->
      let note =
        match kind with Ir.Forloop _ -> " // data-stream loop" | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {%s\n" pad v v n v
           note);
      List.iter (emit_stmt buf (indent + 2)) body;
      Buffer.add_string buf (Printf.sprintf "%s}\n" pad)

let emit_block_kernel buf (k : Ir.kernel) =
  Buffer.add_string buf
    (Printf.sprintf
       "// grid(%s) forloop(%s), %d B shared memory (planner: %s)\n"
       (dims_str k.Ir.grid) (dims_str k.Ir.forloop) k.Ir.smem_bytes
       (if k.Ir.planner_optimal then "optimal" else "first-fit"));
  let param (j : int) (b : Ir.buf) =
    Printf.sprintf "%shalf *%s"
      (if j < k.Ir.n_inputs then "const " else "")
      b.Ir.bname
  in
  Buffer.add_string buf
    (Printf.sprintf "__global__ void %s(%s) {\n" k.Ir.kname
       (String.concat ", " (List.mapi param k.Ir.params)));
  Buffer.add_string buf
    (Printf.sprintf "  extern __shared__ half smem[]; // %d bytes planned\n"
       k.Ir.smem_bytes);
  List.iter
    (fun ((b : Ir.buf), off) ->
      Buffer.add_string buf
        (Printf.sprintf "  auto %s /*[%s] %s*/ = smem + %d;\n" b.Ir.bname
           (shape_str b.Ir.shape)
           (Tensor.Layout.to_string b.Ir.layout)
           (off / 2)))
    k.Ir.shared;
  if k.Ir.locals <> [] then begin
    Buffer.add_string buf
      "  // thread graph: intermediates in the register file\n";
    List.iter
      (fun (b : Ir.buf) ->
        Buffer.add_string buf
          (Printf.sprintf "  half %s[%d]; /*[%s]*/\n" b.Ir.bname (Ir.numel b)
             (shape_str b.Ir.shape)))
      k.Ir.locals
  end;
  List.iter (emit_stmt buf 2) k.Ir.body;
  Buffer.add_string buf "}\n\n"

let emit_program (p : Ir.program) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "// Mirage-generated program: %s\n" p.Ir.pname);
  Buffer.add_string buf "#include \"mirage_runtime.cuh\"\n\n";
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun (k : Ir.kernel) ->
      Hashtbl.replace by_name k.Ir.kname k;
      if k.Ir.grid <> [||] then emit_block_kernel buf k)
    p.Ir.kernels;
  Buffer.add_string buf
    (Printf.sprintf "void %s_launch(Tensors &t) {\n" p.Ir.pname);
  (* Device buffers: program inputs then inter-kernel temporaries. *)
  let names =
    match
      List.length p.Ir.input_names = List.length p.Ir.inputs
    with
    | true -> p.Ir.input_names
    | false -> List.map (fun (b : Ir.buf) -> b.Ir.bname) p.Ir.inputs
  in
  List.iteri
    (fun j (b : Ir.buf) ->
      Buffer.add_string buf
        (Printf.sprintf "  half *%s = t.in(%d); // input %s [%s]\n" b.Ir.bname
           j (List.nth names j) (shape_str b.Ir.shape)))
    p.Ir.inputs;
  List.iter
    (fun (b : Ir.buf) ->
      Buffer.add_string buf
        (Printf.sprintf "  half *%s = t.alloc(%d); // [%s]\n" b.Ir.bname
           (Ir.numel b) (shape_str b.Ir.shape)))
    p.Ir.temps;
  List.iter
    (fun (kname, args) ->
      let argl =
        String.concat ", " (List.map (fun (b : Ir.buf) -> b.Ir.bname) args)
      in
      match Hashtbl.find_opt by_name kname with
      | Some k when k.Ir.grid = [||] ->
          let op =
            match k.Ir.libcall with Some o -> o | None -> "op"
          in
          Buffer.add_string buf
            (Printf.sprintf "  library_call_%s(%s); // %s\n"
               (String.lowercase_ascii op) argl op)
      | Some k ->
          Buffer.add_string buf
            (Printf.sprintf "  %s<<<dim3(%s), dim3(128), %d>>>(%s);\n" kname
               (dims_str k.Ir.grid) k.Ir.smem_bytes argl)
      | None ->
          Buffer.add_string buf (Printf.sprintf "  %s(%s);\n" kname argl))
    p.Ir.calls;
  List.iteri
    (fun j (b : Ir.buf) ->
      Buffer.add_string buf
        (Printf.sprintf "  t.mark_output(%d, %s); // [%s]\n" j b.Ir.bname
           (shape_str b.Ir.shape)))
    p.Ir.outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_kernel ~name (g : Graph.kernel_graph) =
  emit_program (Lower.lower ~name g)

let loc s = List.length (String.split_on_char '\n' s)
