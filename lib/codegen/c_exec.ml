open Impir

type compiled = {
  dir : string;
  c_file : string;
  so_file : string;
  runner : string;
  prog : Ir.program;
  compile_s : float;
}

let runner_source =
  {c|/* Generic driver for Mirage C-backend shared objects.
   Protocol: raw native doubles for each input on stdin, raw doubles
   for each output on stdout. Sizes come from the object's metadata. */
#include <dlfcn.h>
#include <stdio.h>
#include <stdlib.h>

typedef int (*count_fn)(void);
typedef long (*size_fn)(int);
typedef void (*entry_fn)(const double **, double **);

static void *need(void *h, const char *sym) {
  void *p = dlsym(h, sym);
  if (!p) {
    fprintf(stderr, "runner: missing symbol %s: %s\n", sym, dlerror());
    exit(2);
  }
  return p;
}

int main(int argc, char **argv) {
  if (argc != 2) {
    fprintf(stderr, "usage: runner KERNEL.so\n");
    return 2;
  }
  void *h = dlopen(argv[1], RTLD_NOW | RTLD_LOCAL);
  if (!h) {
    fprintf(stderr, "runner: dlopen: %s\n", dlerror());
    return 2;
  }
  count_fn n_in = (count_fn)need(h, "mirage_num_inputs");
  count_fn n_out = (count_fn)need(h, "mirage_num_outputs");
  size_fn in_size = (size_fn)need(h, "mirage_input_size");
  size_fn out_size = (size_fn)need(h, "mirage_output_size");
  entry_fn entry = (entry_fn)need(h, "mirage_entry");
  int ni = n_in(), no = n_out();
  const double **ins = malloc(sizeof(double *) * (ni ? ni : 1));
  double **outs = malloc(sizeof(double *) * (no ? no : 1));
  for (int i = 0; i < ni; i++) {
    long sz = in_size(i);
    double *b = malloc(sizeof(double) * sz);
    if (fread(b, sizeof(double), (size_t)sz, stdin) != (size_t)sz) {
      fprintf(stderr, "runner: short read on input %d (want %ld doubles)\n",
              i, sz);
      return 2;
    }
    ins[i] = b;
  }
  for (int i = 0; i < no; i++)
    outs[i] = malloc(sizeof(double) * out_size(i));
  entry(ins, outs);
  for (int i = 0; i < no; i++)
    if (fwrite(outs[i], sizeof(double), (size_t)out_size(i), stdout) !=
        (size_t)out_size(i)) {
      fprintf(stderr, "runner: short write on output %d\n", i);
      return 2;
    }
  fflush(stdout);
  for (int i = 0; i < ni; i++) free((void *)ins[i]);
  for (int i = 0; i < no; i++) free(outs[i]);
  free(ins);
  free(outs);
  return 0;
}
|c}

(* ------------------------------------------------------------------ *)
(* Process plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with _ -> ""

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* Run argv with stdout/stderr captured to files; return exit status. *)
let run_cmd argv ~stderr_file =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let errfd =
    Unix.openfile stderr_file
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let pid =
    Unix.create_process argv.(0) argv devnull Unix.stdout errfd
  in
  Unix.close devnull;
  Unix.close errfd;
  let _, status = Unix.waitpid [] pid in
  status

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let probe_with cflags =
  let dir = Filename.get_temp_dir_name () in
  let base = Filename.temp_file ~temp_dir:dir "mirage_cc_probe" ".c" in
  let out = base ^ ".bin" in
  let err = base ^ ".err" in
  write_file base "int main(void) { return 0; }\n";
  let argv =
    Array.of_list (("cc" :: cflags) @ [ base; "-o"; out ])
  in
  let ok =
    (try run_cmd argv ~stderr_file:err = Unix.WEXITED 0
     with Unix.Unix_error _ -> false)
    && (try run_cmd [| out |] ~stderr_file:err = Unix.WEXITED 0
        with Unix.Unix_error _ -> false)
  in
  List.iter (fun f -> try Sys.remove f with _ -> ()) [ base; out; err ];
  ok

let cc_available =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some b -> b
    | None ->
        let b = probe_with [] in
        memo := Some b;
        b

let asan_available =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some b -> b
    | None ->
        let b = cc_available () && probe_with [ "-fsanitize=address" ] in
        memo := Some b;
        b

let default_cflags () =
  if asan_available () then [ "-O1"; "-fsanitize=address" ] else [ "-O1" ]

(* ------------------------------------------------------------------ *)
(* Compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile ?(cflags = [ "-O1" ]) ~dir (prog : Ir.program) =
  mkdir_p dir;
  let t0 = Unix.gettimeofday () in
  let base = Filename.concat dir prog.Ir.pname in
  let c_file = base ^ ".c" in
  let so_file = base ^ ".so" in
  write_file c_file (C_emit.emit prog);
  let err = base ^ ".cc.err" in
  let argv =
    Array.of_list
      (("cc" :: "-std=c99" :: "-fPIC" :: "-shared" :: cflags)
      @ [ c_file; "-o"; so_file; "-lm" ])
  in
  match run_cmd argv ~stderr_file:err with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cc unavailable: %s" (Unix.error_message e))
  | Unix.WEXITED 0 -> begin
      (* One runner per directory, compiled with the same flags so an
         ASAN-instrumented object links against a matching runtime. *)
      let runner = Filename.concat dir "runner" in
      let runner_ok =
        Sys.file_exists runner
        ||
        let rc = Filename.concat dir "runner.c" in
        write_file rc runner_source;
        let rerr = Filename.concat dir "runner.cc.err" in
        let rargv =
          Array.of_list
            (("cc" :: cflags) @ [ rc; "-o"; runner; "-ldl" ])
        in
        run_cmd rargv ~stderr_file:rerr = Unix.WEXITED 0
        ||
        (* some toolchains reject -ldl (glibc >= 2.34 folds it in) *)
        run_cmd
          (Array.of_list (("cc" :: cflags) @ [ rc; "-o"; runner ]))
          ~stderr_file:rerr
        = Unix.WEXITED 0
      in
      if not runner_ok then
        Error
          (Printf.sprintf "runner build failed:\n%s"
             (read_file (Filename.concat dir "runner.cc.err")))
      else
        Ok
          {
            dir;
            c_file;
            so_file;
            runner;
            prog;
            compile_s = Unix.gettimeofday () -. t0;
          }
    end
  | st ->
      Error
        (Printf.sprintf "cc failed (%s) on %s:\n%s" (status_str st) c_file
           (read_file err))

(* ------------------------------------------------------------------ *)
(* Execute                                                             *)
(* ------------------------------------------------------------------ *)

let write_doubles oc arr =
  let b = Bytes.create 8 in
  Array.iter
    (fun f ->
      Bytes.set_int64_ne b 0 (Int64.bits_of_float f);
      output_bytes oc b)
    arr

let read_doubles ic n =
  let b = Bytes.create (8 * n) in
  really_input ic b 0 (8 * n);
  Array.init n (fun i -> Int64.float_of_bits (Bytes.get_int64_ne b (i * 8)))

let run (c : compiled) (inputs : float array list) =
  let expected =
    List.map (fun (b : Ir.buf) -> Ir.numel b) c.prog.Ir.inputs
  in
  let given = List.map Array.length inputs in
  if expected <> given then
    Error
      (Printf.sprintf "input sizes %s, program wants %s"
         (String.concat "," (List.map string_of_int given))
         (String.concat "," (List.map string_of_int expected)))
  else begin
    let out_sizes = List.map Ir.numel c.prog.Ir.outputs in
    let total_out = List.fold_left ( + ) 0 out_sizes in
    (* A runner that dies mid-protocol (dlopen failure, ASAN abort) must
       surface as an Error, not kill this process via SIGPIPE. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let restore () =
      match old_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
      | None -> ()
    in
    match
      Unix.open_process_args_full c.runner
        [| c.runner; c.so_file |]
        (Unix.environment ())
    with
    | exception e ->
        restore ();
        Error (Printexc.to_string e)
    | proc_out, proc_in, proc_err ->
        (* The runner reads every input before writing anything, so
           writing all inputs, then reading all outputs, then draining
           stderr (closed at process exit) cannot deadlock. *)
        let result =
          try
            List.iter (write_doubles proc_in) inputs;
            flush proc_in;
            close_out proc_in;
            let flat = read_doubles proc_out total_out in
            let outs =
              let off = ref 0 in
              List.map
                (fun n ->
                  let a = Array.sub flat !off n in
                  off := !off + n;
                  a)
                out_sizes
            in
            Ok outs
          with
          | End_of_file -> Error "runner produced short output"
          | Sys_error m -> Error (Printf.sprintf "runner I/O error: %s" m)
        in
        let stderr_txt =
          let b = Buffer.create 256 in
          (try
             while true do
               Buffer.add_channel b proc_err 256
             done
           with _ -> ());
          Buffer.contents b
        in
        let status = Unix.close_process_full (proc_out, proc_in, proc_err) in
        restore ();
        (match (status, result) with
        | Unix.WEXITED 0, Ok outs -> Ok outs
        | Unix.WEXITED 0, Error m ->
            Error
              (m ^ if stderr_txt = "" then "" else ":\n" ^ stderr_txt)
        | st, _ ->
            Error
              (Printf.sprintf "runner %s%s" (status_str st)
                 (if stderr_txt = "" then "" else ":\n" ^ stderr_txt)))
  end
