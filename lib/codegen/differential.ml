open Tensor
open Mugraph

type outcome = {
  workload : string;
  trials : int;
  max_rel_err : float;
  tol : float;
  compile_s : float;
  run_s : float;
  interp_s : float;
  c_file : string;
  ok : bool;
  report : string option;
}

let pp_outcome o =
  Printf.sprintf
    "%s: %s (trials=%d max_rel_err=%.3g tol=%.3g compile=%.2fs run=%.3fs \
     interp=%.3fs)%s"
    o.workload
    (if o.ok then "OK" else "MISMATCH")
    o.trials o.max_rel_err o.tol o.compile_s o.run_s o.interp_s
    (match o.report with
    | Some d -> Printf.sprintf " report=%s" d
    | None -> "")

(* |a-b| relative to the larger magnitude; tiny values compare almost
   absolutely. Non-finite values must agree exactly in class. *)
let rel_err a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0.0
  | true, false | false, true -> infinity
  | false, false ->
      if a = b then 0.0
      else if Float.is_finite a && Float.is_finite b then
        Float.abs (a -. b)
        /. Float.max 1e-6 (Float.max (Float.abs a) (Float.abs b))
      else infinity

let fresh_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with _ -> ()
    end
    else try Sys.remove path with _ -> ()

let dump_floats path arrs =
  let oc = open_out path in
  List.iteri
    (fun i arr ->
      Printf.fprintf oc "# tensor %d (%d values)\n" i (Array.length arr);
      Array.iter (fun f -> Printf.fprintf oc "%.17g\n" f) arr)
    arrs;
  close_out oc

let random_inputs st shapes =
  List.map
    (fun shape ->
      Array.init (Shape.numel shape) (fun _ ->
          0.25 +. (1.5 *. Random.State.float st 1.0)))
    shapes

let flatten t = Array.init (Dense.numel t) (Dense.get_linear t)

let check ?(trials = 8) ?(tol = 1e-4) ?(seed = 42) ?cflags ?report_dir
    ?(keep = false) ~name (g : Graph.kernel_graph) =
  if not (C_exec.cc_available ()) then
    Error "system cc not available (differential check needs a C compiler)"
  else
    match Impir.Lower.lower ~name g with
    | exception e -> Error ("lowering failed: " ^ Printexc.to_string e)
    | prog -> (
        match Impir.Ir.check_program prog with
        | Error m -> Error ("lowering produced ill-formed impir: " ^ m)
        | Ok () -> (
            let dir =
              match report_dir with
              | Some d -> d
              | None -> fresh_dir "mirage_diff"
            in
            let cflags =
              match cflags with
              | Some c -> c
              | None -> C_exec.default_cflags ()
            in
            match C_exec.compile ~cflags ~dir prog with
            | Error m -> Error (Printf.sprintf "compile failed: %s" m)
            | Ok compiled ->
                let shapes = Graph.input_shapes g in
                let st = Random.State.make [| seed |] in
                let max_err = ref 0.0 in
                let run_s = ref 0.0 and interp_s = ref 0.0 in
                let failure = ref None in
                let trial = ref 0 in
                while !trial < trials && !failure = None do
                  let t = !trial in
                  let ins = random_inputs st shapes in
                  let t0 = Unix.gettimeofday () in
                  let expected =
                    Interp.eval_kernel Element.float_ops g
                      ~inputs:
                        (List.map2
                           (fun shape arr -> Dense.create shape arr)
                           shapes ins)
                    |> List.map flatten
                  in
                  interp_s := !interp_s +. Unix.gettimeofday () -. t0;
                  let t1 = Unix.gettimeofday () in
                  (match C_exec.run compiled ins with
                  | Error m ->
                      run_s := !run_s +. Unix.gettimeofday () -. t1;
                      dump_floats
                        (Filename.concat dir
                           (Printf.sprintf "inputs_trial%d.txt" t))
                        ins;
                      let oc =
                        open_out (Filename.concat dir "error.txt")
                      in
                      Printf.fprintf oc "trial %d: %s\n" t m;
                      close_out oc;
                      failure := Some (Printf.sprintf "trial %d: %s" t m)
                  | Ok actual ->
                      run_s := !run_s +. Unix.gettimeofday () -. t1;
                      let worst = ref 0.0 in
                      List.iter2
                        (fun e a ->
                          Array.iteri
                            (fun i x ->
                              worst := Float.max !worst (rel_err x a.(i)))
                            e)
                        expected actual;
                      max_err := Float.max !max_err !worst;
                      if !worst > tol then begin
                        dump_floats
                          (Filename.concat dir
                             (Printf.sprintf "inputs_trial%d.txt" t))
                          ins;
                        dump_floats
                          (Filename.concat dir
                             (Printf.sprintf "expected_trial%d.txt" t))
                          expected;
                        dump_floats
                          (Filename.concat dir
                             (Printf.sprintf "actual_trial%d.txt" t))
                          actual;
                        failure :=
                          Some
                            (Printf.sprintf
                               "trial %d: max relative error %.3g > %.3g" t
                               !worst tol)
                      end);
                  incr trial
                done;
                let ok = !failure = None in
                let outcome =
                  {
                    workload = name;
                    trials = !trial;
                    max_rel_err = !max_err;
                    tol;
                    compile_s = compiled.C_exec.compile_s;
                    run_s = !run_s;
                    interp_s = !interp_s;
                    c_file = compiled.C_exec.c_file;
                    ok;
                    report = (if ok then None else Some dir);
                  }
                in
                if ok && (not keep) && report_dir = None then rm_rf dir;
                Ok outcome))
