(** Differential testing of the runnable backend against the muGraph
    float interpreter — the second, independent soundness check next to
    the finite-field verifier: the paper's probabilistic equivalence
    test certifies a candidate against the spec, this one certifies the
    *generated code* against the candidate.

    [check] lowers the graph, compiles it with the system [cc], executes
    it on random input sets through the subprocess harness, and compares
    every output scalar against {!Mugraph.Interp.eval_kernel} under
    {!Tensor.Element.float_ops}. On failure the C file, the offending
    inputs and both result sets are left in a report directory for
    forensics. *)

type outcome = {
  workload : string;
  trials : int;  (** input sets actually executed *)
  max_rel_err : float;
  tol : float;
  compile_s : float;
  run_s : float;  (** total subprocess execution wall time *)
  interp_s : float;  (** total interpreter wall time *)
  c_file : string;
  ok : bool;
  report : string option;  (** forensics directory, present iff failed *)
}

val pp_outcome : outcome -> string

val check :
  ?trials:int ->
  ?tol:float ->
  ?seed:int ->
  ?cflags:string list ->
  ?report_dir:string ->
  ?keep:bool ->
  name:string ->
  Mugraph.Graph.kernel_graph ->
  (outcome, string) result
(** Defaults: 8 trials, tolerance 1e-4, seed 42, flags from
    {!C_exec.default_cflags}, scratch directory deleted on success
    unless [keep]. [Error] is reserved for infrastructure failures
    (no [cc], lowering raised); a numeric mismatch returns
    [Ok { ok = false; report = Some dir; _ }]. *)
