module Nf = Absexpr.Nf

type stats = {
  queries : int;
  cache_hits : int;
  cache_misses : int;
  accepted : int;
  solve_time_s : float;
  disk_hits : int;
  disk_entries : int;
}

type persist = {
  p_load : unit -> Obs.Jsonw.t option;
  p_store : Obs.Jsonw.t -> unit;
  p_corrupt : string -> unit;
}

type t = {
  id : int;
  goals : Nf.t list;
  cache : (Nf.t, bool) Hashtbl.t;  (** shared across domains, locked *)
  lock : Mutex.t;
  queries : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  accepted : int Atomic.t;
  solve_ns : int Atomic.t;  (** cumulative decision-procedure time *)
  (* On-disk tier: string-keyed (Nf.to_string) so a loaded envelope
     never needs a normal-form parser. [persist] is set once, before
     search domains spawn; the table and the write-behind counters are
     guarded by [lock]. *)
  mutable persist : persist option;
  disk : (string, bool) Hashtbl.t;
  mutable disk_new : int;  (** entries added since the last flush *)
  mutable flushing : bool;  (** one flush at a time, outside [lock] *)
  disk_hits : int Atomic.t;
}

let next_id = Atomic.make 0

(* Per-domain front cache: lock-free fast path for the generator's hot
   loop. Keyed by solver id so several solvers coexist. *)
let local_caches : (int * Nf.t, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let create ~target =
  {
    id = Atomic.fetch_and_add next_id 1;
    goals = List.map Nf.of_expr target;
    cache = Hashtbl.create 4096;
    lock = Mutex.create ();
    queries = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    accepted = Atomic.make 0;
    solve_ns = Atomic.make 0;
    persist = None;
    disk = Hashtbl.create 4096;
    disk_new = 0;
    flushing = false;
    disk_hits = Atomic.make 0;
  }

let prunecache_schema = "mirage.smtlite.prunecache.v1"

(* The cache file is only meaningful for the goal set it was built
   against: a decided query is [subexpr nf goals], so the key must bind
   the goals. Sorted so goal order doesn't split the cache. *)
let goals_key t =
  t.goals |> List.map Nf.to_string
  |> List.sort String.compare
  |> String.concat "\n"
  |> Digest.string
  |> Digest.to_hex

module J = Obs.Jsonw

let envelope_locked t =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, J.Bool v) :: acc) t.disk []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  J.Obj
    [
      ("schema", J.Str prunecache_schema);
      ("goals_key", J.Str (goals_key t));
      ("entries", J.Obj entries);
    ]

let flush_persist t =
  match t.persist with
  | None -> ()
  | Some p ->
      let j =
        Mutex.lock t.lock;
        let should = t.disk_new > 0 && not t.flushing in
        let j =
          if should then begin
            t.flushing <- true;
            t.disk_new <- 0;
            Some (envelope_locked t)
          end
          else None
        in
        Mutex.unlock t.lock;
        j
      in
      Option.iter
        (fun j ->
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock t.lock;
              t.flushing <- false;
              Mutex.unlock t.lock)
            (fun () -> p.p_store j))
        j

(* Write-behind cadence: batch enough new decisions to amortize the
   store's temp+rename, small enough that a killed search loses little. *)
let flush_every = 256

let attach_persist t p =
  t.persist <- Some p;
  match p.p_load () with
  | None -> ()
  | Some j -> (
      match (J.member "schema" j, J.member "goals_key" j, J.member "entries" j)
      with
      | Some (J.Str s), _, _ when s <> prunecache_schema ->
          p.p_corrupt (Printf.sprintf "unknown prune-cache schema %S" s)
      | Some (J.Str _), Some (J.Str gk), Some (J.Obj entries) ->
          (* A different goal set is a different search, not corruption:
             leave the entry alone and start fresh in memory. *)
          if gk = goals_key t then begin
            let malformed = ref 0 in
            Mutex.lock t.lock;
            List.iter
              (fun (k, v) ->
                match v with
                | J.Bool b -> Hashtbl.replace t.disk k b
                | _ -> incr malformed)
              entries;
            Mutex.unlock t.lock;
            if !malformed > 0 then
              p.p_corrupt
                (Printf.sprintf "%d non-boolean prune-cache entries" !malformed)
          end
      | _ -> p.p_corrupt "malformed prune-cache envelope")

let check_subexpr_nf t nf =
  Atomic.incr t.queries;
  let local = Domain.DLS.get local_caches in
  match Hashtbl.find_opt local (t.id, nf) with
  | Some r ->
      Atomic.incr t.cache_hits;
      if r then Atomic.incr t.accepted;
      r
  | None ->
      let shared =
        Mutex.lock t.lock;
        let r = Hashtbl.find_opt t.cache nf in
        Mutex.unlock t.lock;
        r
      in
      let r =
        match shared with
        | Some r ->
            Atomic.incr t.cache_hits;
            r
        | None -> (
            let disk_key =
              if t.persist = None then None else Some (Nf.to_string nf)
            in
            let disk =
              match disk_key with
              | None -> None
              | Some k ->
                  Mutex.lock t.lock;
                  let r = Hashtbl.find_opt t.disk k in
                  Mutex.unlock t.lock;
                  r
            in
            match disk with
            | Some r ->
                Atomic.incr t.cache_hits;
                Atomic.incr t.disk_hits;
                Mutex.lock t.lock;
                Hashtbl.replace t.cache nf r;
                Mutex.unlock t.lock;
                r
            | None ->
                Atomic.incr t.cache_misses;
                let t0 = Unix.gettimeofday () in
                let r =
                  List.exists (fun goal -> Nf.is_subexpr nf goal) t.goals
                in
                let dt_ns =
                  int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
                in
                ignore (Atomic.fetch_and_add t.solve_ns dt_ns);
                (* overlay: decision-procedure time only (cache misses), so
                   the profile can split "prune check" into lookup vs solve *)
                Obs.Profile.note "smtlite.decide" (float_of_int dt_ns *. 1e-9);
                let want_flush =
                  Mutex.lock t.lock;
                  Hashtbl.replace t.cache nf r;
                  (match disk_key with
                  | Some k ->
                      Hashtbl.replace t.disk k r;
                      t.disk_new <- t.disk_new + 1
                  | None -> ());
                  let w = t.disk_new >= flush_every && not t.flushing in
                  Mutex.unlock t.lock;
                  w
                in
                if want_flush then flush_persist t;
                r)
      in
      Hashtbl.replace local (t.id, nf) r;
      if r then Atomic.incr t.accepted;
      r

let check_subexpr t e = check_subexpr_nf t (Nf.of_expr e)

let check_equiv_target t es =
  let candidate = List.sort Nf.compare (List.map Nf.of_expr es) in
  let goals = List.sort Nf.compare t.goals in
  List.length candidate = List.length goals
  && List.for_all2 Nf.equal candidate goals

let stats t =
  {
    queries = Atomic.get t.queries;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    accepted = Atomic.get t.accepted;
    solve_time_s = float_of_int (Atomic.get t.solve_ns) /. 1e9;
    disk_hits = Atomic.get t.disk_hits;
    disk_entries = Hashtbl.length t.disk;
  }

let reset_stats t =
  Atomic.set t.queries 0;
  Atomic.set t.cache_hits 0;
  Atomic.set t.cache_misses 0;
  Atomic.set t.accepted 0;
  Atomic.set t.solve_ns 0
