module Nf = Absexpr.Nf

type stats = {
  queries : int;
  cache_hits : int;
  cache_misses : int;
  accepted : int;
  solve_time_s : float;
}

type t = {
  id : int;
  goals : Nf.t list;
  cache : (Nf.t, bool) Hashtbl.t;  (** shared across domains, locked *)
  lock : Mutex.t;
  queries : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  accepted : int Atomic.t;
  solve_ns : int Atomic.t;  (** cumulative decision-procedure time *)
}

let next_id = Atomic.make 0

(* Per-domain front cache: lock-free fast path for the generator's hot
   loop. Keyed by solver id so several solvers coexist. *)
let local_caches : (int * Nf.t, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let create ~target =
  {
    id = Atomic.fetch_and_add next_id 1;
    goals = List.map Nf.of_expr target;
    cache = Hashtbl.create 4096;
    lock = Mutex.create ();
    queries = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    accepted = Atomic.make 0;
    solve_ns = Atomic.make 0;
  }

let check_subexpr_nf t nf =
  Atomic.incr t.queries;
  let local = Domain.DLS.get local_caches in
  match Hashtbl.find_opt local (t.id, nf) with
  | Some r ->
      Atomic.incr t.cache_hits;
      if r then Atomic.incr t.accepted;
      r
  | None ->
      let shared =
        Mutex.lock t.lock;
        let r = Hashtbl.find_opt t.cache nf in
        Mutex.unlock t.lock;
        r
      in
      let r =
        match shared with
        | Some r ->
            Atomic.incr t.cache_hits;
            r
        | None ->
            Atomic.incr t.cache_misses;
            let t0 = Unix.gettimeofday () in
            let r = List.exists (fun goal -> Nf.is_subexpr nf goal) t.goals in
            let dt_ns =
              int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
            in
            ignore (Atomic.fetch_and_add t.solve_ns dt_ns);
            (* overlay: decision-procedure time only (cache misses), so
               the profile can split "prune check" into lookup vs solve *)
            Obs.Profile.note "smtlite.decide" (float_of_int dt_ns *. 1e-9);
            Mutex.lock t.lock;
            Hashtbl.replace t.cache nf r;
            Mutex.unlock t.lock;
            r
      in
      Hashtbl.replace local (t.id, nf) r;
      if r then Atomic.incr t.accepted;
      r

let check_subexpr t e = check_subexpr_nf t (Nf.of_expr e)

let check_equiv_target t es =
  let candidate = List.sort Nf.compare (List.map Nf.of_expr es) in
  let goals = List.sort Nf.compare t.goals in
  List.length candidate = List.length goals
  && List.for_all2 Nf.equal candidate goals

let stats t =
  {
    queries = Atomic.get t.queries;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    accepted = Atomic.get t.accepted;
    solve_time_s = float_of_int (Atomic.get t.solve_ns) /. 1e9;
  }

let reset_stats t =
  Atomic.set t.queries 0;
  Atomic.set t.cache_hits 0;
  Atomic.set t.cache_misses 0;
  Atomic.set t.accepted 0;
  Atomic.set t.solve_ns 0
