(** The solver front-end used by the generator for abstract-expression
    queries — the stand-in for Z3 in the paper's implementation (§4.3:
    "check results are cached and reused, since during the search Mirage
    may encounter multiple muGraphs with identical abstract expressions
    and SMT queries are relatively expensive").

    Queries of the form [subexpr(E(G), E_O)] are decided by the normal-form
    procedure in {!Absexpr.Nf} and memoized on the *normal form* of the
    left-hand side, so syntactically different prefixes with equal abstract
    expressions hit the cache. Thread-safe: a solver may be shared across
    search domains. *)

type t

type stats = {
  queries : int;  (** total subexpr queries issued *)
  cache_hits : int;
  cache_misses : int;
  accepted : int;  (** queries that returned true *)
  solve_time_s : float;
      (** cumulative wall time in the normal-form decision procedure
          (cache misses only — the paper's "SMT queries are relatively
          expensive" cost) *)
  disk_hits : int;  (** misses answered by the persistent cache *)
  disk_entries : int;  (** persistent-tier entries (loaded + new) *)
}

type persist = {
  p_load : unit -> Obs.Jsonw.t option;
      (** fetch the stored envelope, [None] on miss *)
  p_store : Obs.Jsonw.t -> unit;  (** durably store; must not raise *)
  p_corrupt : string -> unit;  (** quarantine an unusable stored entry *)
}
(** Storage hooks for the persistent query cache. The solver stays
    storage-agnostic: [Service.Prune_store] wires these to the
    content-addressed result store; tests wire them to a temp file. *)

val create : target:Absexpr.Expr.t list -> t
(** A solver for a fixed set of goal expressions [E_O] (one per output of
    the reference program). A query succeeds if the candidate expression is
    a subexpression of at least one goal. *)

val check_subexpr : t -> Absexpr.Expr.t -> bool
(** Memoized [A_eq ∪ A_sub ⊨ subexpr(e, E_O)]. *)

val check_subexpr_nf : t -> Absexpr.Nf.t -> bool
(** Same, when the caller already normalized. *)

val check_equiv_target : t -> Absexpr.Expr.t list -> bool
(** Whether candidate outputs are [A_eq]-equivalent to the goals, as a
    multiset (used to decide that a candidate muGraph is complete before
    handing it to the probabilistic verifier). *)

val stats : t -> stats
val reset_stats : t -> unit

val prunecache_schema : string
(** ["mirage.smtlite.prunecache.v1"] — the on-disk envelope schema. *)

val goals_key : t -> string
(** Digest of the sorted goal normal forms. A stored envelope whose
    [goals_key] differs answers a different search and is ignored (not
    quarantined) on load. *)

val attach_persist : t -> persist -> unit
(** Load any stored envelope into the persistent tier (schema checked,
    mismatched goal sets skipped, corrupt envelopes handed to
    [p_corrupt]) and arm write-behind stores: new decisions batch and
    flush every few hundred entries. Call once, before sharing the
    solver across domains. *)

val flush_persist : t -> unit
(** Force any batched new decisions to storage (no-op without
    {!attach_persist} or when nothing is new). Called by the generator
    when a search finishes, so a cache is complete even if the last
    batch was short. *)
