(** The one lowering pass [Mugraph -> impir].

    Every backend consumes its output, so block-level semantics (initer
    slicing, accumulator placement, epilogue discipline, omap
    concatenation) are encoded here exactly once, mirroring
    {!Mugraph.Interp.eval_block}:

    - grid axes become [Grid] loops (a CUDA backend maps them to
      [blockIdx]; the C backend runs them serially);
    - initers copy the imap/fmap-sliced tile of a kernel input into a
      shared buffer whose layout comes from {!Opt.Layout_opt};
    - the for-loop body follows {!Opt.Schedule.block_schedule} order with
      a [Barrier] between depth levels;
    - accumulators add into a zero-initialized buffer, offset along each
      fmap data dim by the loop coordinate (concatenation in mesh order;
      [Replica] sums in place);
    - post-loop nodes run once in the epilogue, and outsavers write each
      block's tile at its omap offset;
    - thread graphs compute through [Local] (register) buffers.

    Shared-memory offsets come from {!Opt.Memplan.plan_block} and every
    address is built by {!Ir.index} from the buffer's layout strides. *)

val lower :
  ?layouts:(int * Opt.Layout_opt.assignment) list ->
  name:string ->
  Mugraph.Graph.kernel_graph ->
  Ir.program
(** Lower a validated muGraph. [layouts] defaults to
    [Opt.Layout_opt.optimize]; pass it explicitly to pin a layout choice
    (the round-trip test does). Raises [Graph.Ill_formed] or
    [Invalid_argument] only on graphs that fail shape inference — on any
    well-typed graph, lowering is total (the qcheck property). *)
