type iexp =
  | Iconst of int
  | Ivar of string
  | Iadd of iexp * iexp
  | Imul of iexp * iexp
  | Idiv of iexp * iexp
  | Imod of iexp * iexp

let iconst n = Iconst n
let ivar v = Ivar v

let iadd a b =
  match (a, b) with
  | Iconst 0, x | x, Iconst 0 -> x
  | Iconst a, Iconst b -> Iconst (a + b)
  | _ -> Iadd (a, b)

let imul a b =
  match (a, b) with
  | Iconst 0, _ | _, Iconst 0 -> Iconst 0
  | Iconst 1, x | x, Iconst 1 -> x
  | Iconst a, Iconst b -> Iconst (a * b)
  | _ -> Imul (a, b)

let idiv a b =
  match (a, b) with
  | x, Iconst 1 -> x
  | Iconst 0, _ -> Iconst 0
  | Iconst a, Iconst b when b <> 0 -> Iconst (a / b)
  | _ -> Idiv (a, b)

let imod a b =
  match (a, b) with
  | _, Iconst 1 -> Iconst 0
  | Iconst 0, _ -> Iconst 0
  | Iconst a, Iconst b when b <> 0 -> Iconst (a mod b)
  | _ -> Imod (a, b)

let rec eval_iexp env = function
  | Iconst n -> n
  | Ivar v -> env v
  | Iadd (a, b) -> eval_iexp env a + eval_iexp env b
  | Imul (a, b) -> eval_iexp env a * eval_iexp env b
  | Idiv (a, b) -> eval_iexp env a / eval_iexp env b
  | Imod (a, b) -> eval_iexp env a mod eval_iexp env b

let rec iexp_to_string = function
  | Iconst n -> string_of_int n
  | Ivar v -> v
  | Iadd (a, b) ->
      Printf.sprintf "(%s + %s)" (iexp_to_string a) (iexp_to_string b)
  | Imul (a, b) ->
      Printf.sprintf "(%s * %s)" (iexp_to_string a) (iexp_to_string b)
  | Idiv (a, b) ->
      Printf.sprintf "(%s / %s)" (iexp_to_string a) (iexp_to_string b)
  | Imod (a, b) ->
      Printf.sprintf "(%s %% %s)" (iexp_to_string a) (iexp_to_string b)

let iexp_vars e =
  let rec go acc = function
    | Iconst _ -> acc
    | Ivar v -> v :: acc
    | Iadd (a, b) | Imul (a, b) | Idiv (a, b) | Imod (a, b) -> go (go acc a) b
  in
  List.sort_uniq String.compare (go [] e)

type space = Global | Shared | Local

type buf = {
  bname : string;
  space : space;
  shape : int array;
  layout : Tensor.Layout.t;
}

let numel b = Array.fold_left ( * ) 1 b.shape
let strides b = Tensor.Layout.strides b.layout b.shape

let index b coords =
  let st = strides b in
  if Array.length coords <> Array.length st then
    invalid_arg
      (Printf.sprintf "Ir.index: buffer %s has rank %d, got %d coords" b.bname
         (Array.length st) (Array.length coords));
  let acc = ref (Iconst 0) in
  Array.iteri (fun d c -> acc := iadd !acc (imul c (iconst st.(d)))) coords;
  !acc

type vexp =
  | Const of float
  | Load of buf * iexp
  | Temp of string
  | Bin of Mugraph.Op.binary * vexp * vexp
  | Un of Mugraph.Op.unary * vexp

type loop_kind = Grid of int | Forloop of int | Serial | Reduce

type stmt =
  | For of { v : string; n : int; kind : loop_kind; body : stmt list }
  | Decl of { v : string; init : vexp }
  | Assign of { v : string; e : vexp }
  | Store of { dst : buf; idx : iexp; e : vexp }
  | Store_add of { dst : buf; idx : iexp; e : vexp }
  | Barrier
  | Comment of string

type kernel = {
  kname : string;
  params : buf list;
  n_inputs : int;
  shared : (buf * int) list;
  locals : buf list;
  grid : int array;
  forloop : int array;
  smem_bytes : int;
  planner_optimal : bool;
  libcall : string option;
  body : stmt list;
}

type program = {
  pname : string;
  inputs : buf list;
  input_names : string list;
  outputs : buf list;
  temps : buf list;
  kernels : kernel list;
  calls : (string * buf list) list;
}

let output_size p =
  List.fold_left (fun acc b -> acc + numel b) 0 p.outputs

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

exception Ill_formed of string

let illf fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* Scope during a kernel walk: buffers reachable by name, bound loop
   variables, declared scalar temporaries. *)
type scope = {
  bufs : buf SMap.t;
  ivars : SSet.t;
  mutable temps : SSet.t;
}

let check_iexp k sc e =
  List.iter
    (fun v ->
      if not (SSet.mem v sc.ivars) then
        illf "%s: unbound index variable %s" k v)
    (iexp_vars e)

let check_buf_ref k sc b =
  match SMap.find_opt b.bname sc.bufs with
  | None -> illf "%s: buffer %s not in scope" k b.bname
  | Some b' ->
      if b'.shape <> b.shape || b'.space <> b.space then
        illf "%s: buffer %s referenced with mismatched shape/space" k b.bname

let rec check_vexp k sc = function
  | Const _ -> ()
  | Temp v ->
      if not (SSet.mem v sc.temps) then illf "%s: undeclared temp %s" k v
  | Load (b, i) ->
      check_buf_ref k sc b;
      check_iexp k sc i
  | Bin (_, a, b) ->
      check_vexp k sc a;
      check_vexp k sc b
  | Un (_, a) -> check_vexp k sc a

let check_kernel ker =
  let k = ker.kname in
  if ker.n_inputs < 0 || ker.n_inputs > List.length ker.params then
    illf "%s: n_inputs out of range" k;
  List.iter
    (fun b ->
      if b.space <> Global then illf "%s: param %s not Global" k b.bname)
    ker.params;
  List.iter
    (fun (b, off) ->
      if b.space <> Shared then illf "%s: shared buf %s not Shared" k b.bname;
      if off < 0 then illf "%s: negative smem offset for %s" k b.bname)
    ker.shared;
  List.iter
    (fun b ->
      if b.space <> Local then illf "%s: local buf %s not Local" k b.bname)
    ker.locals;
  let bufs =
    List.fold_left
      (fun m b ->
        if SMap.mem b.bname m then illf "%s: duplicate buffer name %s" k b.bname;
        SMap.add b.bname b m)
      SMap.empty
      (ker.params @ List.map fst ker.shared @ ker.locals)
  in
  let sc = { bufs; ivars = SSet.empty; temps = SSet.empty } in
  let outs =
    let rec drop n = function
      | l when n = 0 -> l
      | _ :: tl -> drop (n - 1) tl
      | [] -> []
    in
    drop ker.n_inputs ker.params
    |> List.fold_left (fun s b -> SSet.add b.bname s) SSet.empty
  in
  let check_store sc dst idx e =
    check_buf_ref k sc dst;
    check_iexp k sc idx;
    check_vexp k sc e;
    if dst.space = Global && not (SSet.mem dst.bname outs) then
      illf "%s: store into read-only param %s" k dst.bname
  in
  let rec walk sc = function
    | For { v; n; kind; body } ->
        if n <= 0 then illf "%s: loop %s has non-positive bound %d" k v n;
        if SSet.mem v sc.ivars then illf "%s: loop variable %s shadowed" k v;
        (match kind with
        | Grid a ->
            if a < 0 || a >= Array.length ker.grid then
              illf "%s: grid loop axis %d outside grid rank" k a
            else if ker.grid.(a) <> n then
              illf "%s: grid loop %s bound %d disagrees with grid dim %d" k v n
                ker.grid.(a)
        | Forloop l ->
            if l < 0 || l >= Array.length ker.forloop then
              illf "%s: forloop axis %d outside forloop rank" k l
            else if ker.forloop.(l) <> n then
              illf "%s: forloop %s bound %d disagrees with forloop dim %d" k v n
                ker.forloop.(l)
        | Serial | Reduce -> ());
        let sc' =
          { bufs = sc.bufs; ivars = SSet.add v sc.ivars; temps = sc.temps }
        in
        List.iter (walk sc') body;
        (* scalar temps declared inside the loop do not escape it *)
        ()
    | Decl { v; init } ->
        check_vexp k sc init;
        sc.temps <- SSet.add v sc.temps
    | Assign { v; e } ->
        if not (SSet.mem v sc.temps) then illf "%s: assign to undeclared %s" k v;
        check_vexp k sc e
    | Store { dst; idx; e } | Store_add { dst; idx; e } ->
        check_store sc dst idx e
    | Barrier | Comment _ -> ()
  in
  List.iter (walk sc) ker.body

let check_program p =
  try
    let knames =
      List.fold_left
        (fun m ker ->
          if SMap.mem ker.kname m then illf "duplicate kernel %s" ker.kname;
          check_kernel ker;
          SMap.add ker.kname ker m)
        SMap.empty p.kernels
    in
    let globals =
      List.fold_left
        (fun m b ->
          if b.space <> Global then illf "global buf %s not Global" b.bname;
          SMap.add b.bname b m)
        SMap.empty (p.inputs @ p.temps)
    in
    List.iter
      (fun ob ->
        if not (SMap.mem ob.bname globals) then
          illf "output %s is not a program buffer" ob.bname)
      p.outputs;
    List.iter
      (fun (kname, args) ->
        match SMap.find_opt kname knames with
        | None -> illf "call to unknown kernel %s" kname
        | Some ker ->
            if List.length args <> List.length ker.params then
              illf "call %s: arity %d, expected %d" kname (List.length args)
                (List.length ker.params);
            List.iter2
              (fun a f ->
                (match SMap.find_opt a.bname globals with
                | None -> illf "call %s: arg %s not a program buffer" kname a.bname
                | Some g ->
                    if g.shape <> a.shape then
                      illf "call %s: arg %s shape drifted" kname a.bname);
                if numel a <> numel f then
                  illf "call %s: arg %s has %d elements, formal %s wants %d"
                    kname a.bname (numel a) f.bname (numel f))
              args ker.params)
      p.calls;
    Ok ()
  with Ill_formed m -> Error m
