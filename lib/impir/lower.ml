open Mugraph
module Shape = Tensor.Shape
module Layout = Tensor.Layout

type ctx = { mutable next : int }

let fresh ctx prefix =
  let i = ctx.next in
  ctx.next <- i + 1;
  Printf.sprintf "%s%d" prefix i

(* A loop of extent 1 contributes coordinate 0 without emitting a loop,
   which keeps reduced-size programs readable and fold-friendly. *)
let for_loop ctx ?(kind = Ir.Serial) ?(prefix = "i") n
    (body : Ir.iexp -> Ir.stmt list) =
  if n = 1 then body (Ir.iconst 0)
  else
    let v = fresh ctx prefix in
    [ Ir.For { v; n; kind; body = body (Ir.ivar v) } ]

let axis_loop kind v n (body : Ir.iexp -> Ir.stmt list) =
  if n = 1 then body (Ir.iconst 0)
  else [ Ir.For { v; n; kind; body = body (Ir.ivar v) } ]

let loop_nest ctx shape (body : Ir.iexp array -> Ir.stmt list) =
  let rank = Array.length shape in
  let coords = Array.make rank (Ir.iconst 0) in
  let rec go d =
    if d = rank then body (Array.copy coords)
    else
      for_loop ctx shape.(d) (fun c ->
          coords.(d) <- c;
          go (d + 1))
  in
  go 0

(* Right-aligned broadcast: [coords] ranges over the output shape (or a
   suffix-aligned batch of it); size-1 input dims pin to 0. *)
let bcast_coords coords in_shape =
  let ro = Array.length coords and ri = Array.length in_shape in
  Array.init ri (fun d ->
      if in_shape.(d) = 1 then Ir.iconst 0 else coords.(ro - ri + d))

let store dst co e = Ir.Store { dst; idx = Ir.index dst co; e }
let load (b : Ir.buf) co = Ir.Load (b, Ir.index b co)

(* Annotation in the historical pseudo-library vocabulary; both backends
   print these comments above the corresponding loop nest. *)
let call_label (p : Op.prim) args out =
  let a n = List.nth args n in
  match p with
  | Op.Matmul -> Printf.sprintf "mma_tile(%s, %s, %s)" out (a 0) (a 1)
  | Op.Binary b ->
      let f =
        match b with
        | Op.Add -> "ew_add"
        | Op.Mul -> "ew_mul"
        | Op.Div -> "ew_div"
        | Op.Sub -> "ew_sub"
      in
      Printf.sprintf "%s(%s, %s, %s)" f out (a 0) (a 1)
  | Op.Unary u ->
      let f =
        match u with
        | Op.Exp -> "ew_exp"
        | Op.Sqr -> "ew_sqr"
        | Op.Sqrt -> "ew_sqrt"
        | Op.Silu -> "ew_silu"
        | Op.Relu -> "ew_relu"
      in
      Printf.sprintf "%s(%s, %s)" f out (a 0)
  | Op.Sum { dim; group } ->
      Printf.sprintf "reduce_sum<%d, %d>(%s, %s)" dim group out (a 0)
  | Op.Repeat { dim; times } ->
      Printf.sprintf "repeat<%d, %d>(%s, %s)" dim times out (a 0)
  | Op.Reshape _ -> Printf.sprintf "reshape(%s, %s)" out (a 0)
  | Op.Transpose -> Printf.sprintf "transpose(%s, %s)" out (a 0)
  | Op.Concat_matmul ->
      Printf.sprintf "concat_mma(%s, %s, %s, %s, %s)" out (a 0) (a 1) (a 2)
        (a 3)

(* Lower one primitive into [dst], reading [ins]; works uniformly over
   Global, Shared and Local buffers, so kernel-level library ops, block
   prims and thread-graph nodes all share it. *)
let op_lower ctx (p : Op.prim) ~(dst : Ir.buf) ~(ins : Ir.buf list) :
    Ir.stmt list =
  match (p, ins) with
  | Op.Binary b, [ x; y ] ->
      loop_nest ctx dst.shape (fun co ->
          [
            store dst co
              (Ir.Bin
                 ( b,
                   load x (bcast_coords co x.shape),
                   load y (bcast_coords co y.shape) ));
          ])
  | Op.Unary u, [ x ] ->
      loop_nest ctx dst.shape (fun co -> [ store dst co (Ir.Un (u, load x co)) ])
  | Op.Matmul, [ a; b ] ->
      let ra = Array.length a.shape and rb = Array.length b.shape in
      let ro = Array.length dst.shape in
      let k = a.shape.(ra - 1) in
      loop_nest ctx dst.shape (fun co ->
          let batch = Array.sub co 0 (ro - 2) in
          let m = co.(ro - 2) and n = co.(ro - 1) in
          let ab = bcast_coords batch (Array.sub a.shape 0 (ra - 2)) in
          let bb = bcast_coords batch (Array.sub b.shape 0 (rb - 2)) in
          let acc = fresh ctx "acc" in
          (Ir.Decl { v = acc; init = Ir.Const 0.0 }
          :: for_loop ctx ~kind:Ir.Reduce ~prefix:"r" k (fun r ->
                 [
                   Ir.Assign
                     {
                       v = acc;
                       e =
                         Ir.Bin
                           ( Op.Add,
                             Ir.Temp acc,
                             Ir.Bin
                               ( Op.Mul,
                                 load a (Array.append ab [| m; r |]),
                                 load b (Array.append bb [| r; n |]) ) );
                     };
                 ]))
          @ [ store dst co (Ir.Temp acc) ])
  | Op.Sum { dim; group }, [ x ] ->
      loop_nest ctx dst.shape (fun co ->
          let acc = fresh ctx "acc" in
          (Ir.Decl { v = acc; init = Ir.Const 0.0 }
          :: for_loop ctx ~kind:Ir.Reduce ~prefix:"r" group (fun g ->
                 let ci = Array.copy co in
                 ci.(dim) <- Ir.iadd (Ir.imul co.(dim) (Ir.iconst group)) g;
                 [
                   Ir.Assign
                     {
                       v = acc;
                       e = Ir.Bin (Op.Add, Ir.Temp acc, load x ci);
                     };
                 ]))
          @ [ store dst co (Ir.Temp acc) ])
  | Op.Repeat { dim; _ }, [ x ] ->
      loop_nest ctx dst.shape (fun co ->
          let ci = Array.copy co in
          ci.(dim) <- Ir.imod co.(dim) (Ir.iconst x.shape.(dim));
          [ store dst co (load x ci) ])
  | Op.Reshape _, [ x ] ->
      (* Row-major reinterpretation: linearize the output coordinate and
         delinearize over the input shape. *)
      let rmo = Layout.strides Layout.Row_major dst.shape in
      let rmi = Layout.strides Layout.Row_major x.shape in
      loop_nest ctx dst.shape (fun co ->
          let lin = ref (Ir.iconst 0) in
          Array.iteri
            (fun d c -> lin := Ir.iadd !lin (Ir.imul c (Ir.iconst rmo.(d))))
            co;
          let ci =
            Array.init (Array.length x.shape) (fun j ->
                Ir.imod
                  (Ir.idiv !lin (Ir.iconst rmi.(j)))
                  (Ir.iconst x.shape.(j)))
          in
          [ store dst co (load x ci) ])
  | Op.Transpose, [ x ] ->
      let r = Array.length dst.shape in
      loop_nest ctx dst.shape (fun co ->
          let ci = Array.copy co in
          ci.(r - 2) <- co.(r - 1);
          ci.(r - 1) <- co.(r - 2);
          [ store dst co (load x ci) ])
  | Op.Concat_matmul, [ w; x; y; z ] ->
      let k1 = w.shape.(1) and k2 = x.shape.(1) in
      loop_nest ctx dst.shape (fun co ->
          let m = co.(0) and n = co.(1) in
          let acc = fresh ctx "acc" in
          let dot u v k =
            for_loop ctx ~kind:Ir.Reduce ~prefix:"r" k (fun r ->
                [
                  Ir.Assign
                    {
                      v = acc;
                      e =
                        Ir.Bin
                          ( Op.Add,
                            Ir.Temp acc,
                            Ir.Bin
                              (Op.Mul, load u [| m; r |], load v [| r; n |]) );
                    };
                ])
          in
          (Ir.Decl { v = acc; init = Ir.Const 0.0 } :: dot w y k1)
          @ dot x z k2
          @ [ store dst co (Ir.Temp acc) ])
  | _ ->
      invalid_arg
        (Printf.sprintf "Lower.op_lower: %s with %d inputs" (Op.name p)
           (List.length ins))

(* ------------------------------------------------------------------ *)
(* Block (graph-defined) kernels                                       *)
(* ------------------------------------------------------------------ *)

let lower_block ctx ~kname ~(kin_bufs : Ir.buf list)
    ~(assignment : Opt.Layout_opt.assignment option) (bg : Graph.block_graph) :
    Ir.kernel =
  let kin = Array.of_list kin_bufs in
  let kin_shapes =
    List.map (fun (b : Ir.buf) -> Shape.create b.Ir.shape) kin_bufs
  in
  let shapes = Infer.block_shapes bg ~kernel_inputs:kin_shapes in
  let plan = Opt.Memplan.plan_block ~elt_bytes:2 bg ~kernel_inputs:kin_shapes in
  let offset i =
    match List.assoc_opt i plan.Opt.Memplan.offsets with
    | Some o -> o
    | None -> 0
  in
  let layout_of i =
    match assignment with
    | None -> Layout.Row_major
    | Some a -> (
        match List.assoc_opt i a.Opt.Layout_opt.layouts with
        | Some l when Layout.is_valid l shapes.(i) -> l
        | _ -> Layout.Row_major)
  in
  let n = Array.length bg.bnodes in
  let sbuf = Array.make n None in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.bop with
      | Graph.B_outsaver _ -> ()
      | _ ->
          sbuf.(i) <-
            Some
              {
                Ir.bname = Printf.sprintf "s%d" i;
                space = Ir.Shared;
                shape = Array.copy shapes.(i);
                layout = layout_of i;
              })
    bg.bnodes;
  let sb i = Option.get sbuf.(i) in
  (* Out formals in outsaver order, at kernel-level (omap-assembled)
     shapes. *)
  let outs =
    let acc = ref [] and j = ref 0 in
    Array.iteri
      (fun i (node : Graph.block_node) ->
        match node.bop with
        | Graph.B_outsaver { omap } ->
            let b =
              {
                Ir.bname = Printf.sprintf "o%d" !j;
                space = Ir.Global;
                shape = Array.copy shapes.(i);
                layout = Layout.Row_major;
              }
            in
            incr j;
            acc := (i, omap, b) :: !acc
        | _ -> ())
      bg.bnodes;
    List.rev !acc
  in
  let locals = ref [] in
  let sched = Opt.Schedule.block_schedule bg in
  let post = Graph.post_loop_nodes bg in
  let is_accum i =
    match bg.bnodes.(i).bop with Graph.B_accum _ -> true | _ -> false
  in
  let is_outsaver i =
    match bg.bnodes.(i).bop with Graph.B_outsaver _ -> true | _ -> false
  in
  let emit_node gvars fvars i : Ir.stmt list =
    let node = bg.bnodes.(i) in
    match node.bop with
    | Graph.B_initer { input; imap; fmap } ->
        let src = kin.(input) in
        let dst = sb i in
        let rank = Array.length src.Ir.shape in
        let cur = Array.copy src.Ir.shape in
        let offs = Array.make rank (Ir.iconst 0) in
        (* Sequential slicing, exactly as Dmap.slice: each map entry
           offsets into the remaining extent of its data dim, then
           shrinks it. *)
        let apply maps counts vars =
          Array.iteri
            (fun k t ->
              match t with
              | Dmap.Dim d ->
                  let chunk = cur.(d) / counts.(k) in
                  offs.(d) <-
                    Ir.iadd offs.(d) (Ir.imul vars.(k) (Ir.iconst chunk));
                  cur.(d) <- chunk
              | Dmap.Replica -> ())
            maps
        in
        apply imap bg.grid gvars;
        apply fmap bg.forloop fvars;
        Ir.Comment
          (Printf.sprintf "copy_tile(%s, %s, %s, %s)" dst.Ir.bname
             src.Ir.bname (Dmap.imap_to_string imap)
             (Dmap.fmap_to_string fmap))
        :: loop_nest ctx dst.Ir.shape (fun co ->
               let sco = Array.mapi (fun d c -> Ir.iadd c offs.(d)) co in
               [ store dst co (load src sco) ])
    | Graph.B_prim p ->
        let ins = List.map sb node.bins in
        Ir.Comment
          (call_label p
             (List.map (fun (b : Ir.buf) -> b.Ir.bname) ins)
             (sb i).Ir.bname)
        :: op_lower ctx p ~dst:(sb i) ~ins
    | Graph.B_threadgraph tg ->
        let bin_arr = Array.of_list (List.map sb node.bins) in
        let tshapes =
          Infer.thread_shapes tg
            ~inputs:
              (List.map
                 (fun (b : Ir.buf) -> Shape.create b.Ir.shape)
                 (Array.to_list bin_arr))
        in
        let nt = Array.length tg.tnodes in
        let tvals = Array.make nt None in
        let stmts = ref [] in
        Array.iteri
          (fun j (tn : Graph.thread_node) ->
            match tn.top with
            | Graph.T_input k -> tvals.(j) <- Some bin_arr.(k)
            | Graph.T_prim p ->
                let dst =
                  if j = nt - 1 then sb i
                  else begin
                    let b =
                      {
                        Ir.bname = Printf.sprintf "r%d_%d" i j;
                        space = Ir.Local;
                        shape = Array.copy tshapes.(j);
                        layout = Layout.Row_major;
                      }
                    in
                    locals := b :: !locals;
                    b
                  end
                in
                tvals.(j) <- Some dst;
                stmts :=
                  !stmts
                  @ op_lower ctx p ~dst
                      ~ins:(List.map (fun q -> Option.get tvals.(q)) tn.tins))
          tg.tnodes;
        Ir.Comment
          (Printf.sprintf
             "thread_graph(%s; %s): intermediates in the register file"
             (sb i).Ir.bname
             (String.concat ", "
                (Array.to_list
                   (Array.map (fun (b : Ir.buf) -> b.Ir.bname) bin_arr))))
        :: !stmts
    | Graph.B_accum { fmap } ->
        let src = sb (List.hd node.bins) in
        let dst = sb i in
        let tile = src.Ir.shape in
        (* Loop coordinate l lands at offset l * mult along its data dim,
           where mult covers the extents of later loop axes mapped to the
           same dim — concatenation in row-major mesh order, matching
           Interp.combine_mesh. Replica axes contribute no offset: the
           repeated += realizes their elementwise sum. *)
        let nl = Array.length fmap in
        let mults = Array.make nl 0 in
        for l = 0 to nl - 1 do
          match fmap.(l) with
          | Dmap.Replica -> ()
          | Dmap.Dim d ->
              let later = ref 1 in
              for l' = l + 1 to nl - 1 do
                match fmap.(l') with
                | Dmap.Dim d' when d' = d -> later := !later * bg.forloop.(l')
                | _ -> ()
              done;
              mults.(l) <- tile.(d) * !later
        done;
        Ir.Comment
          (Printf.sprintf "accumulate(%s, %s, %s)" dst.Ir.bname src.Ir.bname
             (Dmap.fmap_to_string fmap))
        :: loop_nest ctx tile (fun co ->
               let dco = Array.copy co in
               Array.iteri
                 (fun l t ->
                   match t with
                   | Dmap.Dim d ->
                       dco.(d) <-
                         Ir.iadd dco.(d)
                           (Ir.imul fvars.(l) (Ir.iconst mults.(l)))
                   | Dmap.Replica -> ())
                 fmap;
               [
                 Ir.Store_add
                   { dst; idx = Ir.index dst dco; e = load src co };
               ])
    | Graph.B_outsaver _ -> []
  in
  let zero_accums =
    List.concat_map
      (fun i ->
        if is_accum i then
          let b = sb i in
          Ir.Comment (Printf.sprintf "%s = 0" b.Ir.bname)
          :: loop_nest ctx b.Ir.shape (fun co ->
                 [ store b co (Ir.Const 0.0) ])
        else [])
      (List.init n Fun.id)
  in
  let loop_body gvars fvars =
    let last_depth = ref (-1) in
    List.concat_map
      (fun i ->
        if is_outsaver i || (post.(i) && not (is_accum i)) then []
        else begin
          let d = sched.Opt.Schedule.depths.(i) in
          let bar =
            if !last_depth >= 0 && d <> !last_depth then [ Ir.Barrier ]
            else []
          in
          last_depth := d;
          bar @ emit_node gvars fvars i
        end)
      sched.Opt.Schedule.order
  in
  let epilogue gvars =
    List.concat_map
      (fun i ->
        if post.(i) && (not (is_accum i)) && not (is_outsaver i) then
          emit_node gvars [||] i
        else [])
      sched.Opt.Schedule.order
  in
  let save_outputs gvars =
    List.concat_map
      (fun (i, omap, obuf) ->
        let node = bg.bnodes.(i) in
        let src = sb (List.hd node.bins) in
        let tile = src.Ir.shape in
        Ir.Comment
          (Printf.sprintf "store_tile(%s, %s, %s)" obuf.Ir.bname
             src.Ir.bname (Dmap.omap_to_string omap))
        :: loop_nest ctx tile (fun co ->
               let dco = Array.copy co in
               Array.iteri
                 (fun a d ->
                   dco.(d) <-
                     Ir.iadd dco.(d) (Ir.imul gvars.(a) (Ir.iconst tile.(d))))
                 omap;
               [ store obuf dco (load src co) ]))
      outs
  in
  (* The (at most two) data-stream loop variables keep the traditional
     names i and j. *)
  let rec forloops l acc k =
    if l = Array.length bg.forloop then k (Array.of_list (List.rev acc))
    else
      axis_loop (Ir.Forloop l)
        (if l = 0 then "i" else "j")
        bg.forloop.(l)
        (fun c -> forloops (l + 1) (c :: acc) k)
  in
  let rec gridloops a acc k =
    if a = Array.length bg.grid then k (Array.of_list (List.rev acc))
    else
      axis_loop (Ir.Grid a)
        (Printf.sprintf "g%d" a)
        bg.grid.(a)
        (fun c -> gridloops (a + 1) (c :: acc) k)
  in
  let body =
    gridloops 0 [] (fun gvars ->
        zero_accums
        @ forloops 0 [] (fun fvars -> loop_body gvars fvars)
        @ [ Ir.Barrier ]
        @ epilogue gvars
        @ save_outputs gvars)
  in
  {
    Ir.kname;
    params = kin_bufs @ List.map (fun (_, _, b) -> b) outs;
    n_inputs = List.length kin_bufs;
    shared =
      List.filter_map
        (fun i ->
          match sbuf.(i) with Some b -> Some (b, offset i) | None -> None)
        (List.init n Fun.id);
    locals = List.rev !locals;
    grid = Array.copy bg.grid;
    forloop = Array.copy bg.forloop;
    smem_bytes = plan.Opt.Memplan.peak_bytes;
    planner_optimal = plan.Opt.Memplan.optimal;
    libcall = None;
    body;
  }

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let lower ?layouts ~name (g : Graph.kernel_graph) : Ir.program =
  let shapes = Infer.kernel_shapes g in
  let layouts =
    match layouts with Some l -> l | None -> Opt.Layout_opt.optimize g
  in
  let n = Array.length g.knodes in
  let gbufs = Array.make n [||] in
  let inputs = ref [] in
  let input_idx = ref 0 in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      match node.kop with
      | Graph.K_input _ ->
          let b =
            {
              Ir.bname = Printf.sprintf "in_%d" !input_idx;
              space = Ir.Global;
              shape = Array.copy shapes.(i).(0);
              layout = Layout.Row_major;
            }
          in
          incr input_idx;
          inputs := b :: !inputs;
          gbufs.(i) <- [| b |]
      | _ ->
          gbufs.(i) <-
            Array.init
              (Graph.num_outputs node.kop)
              (fun p ->
                {
                  Ir.bname = Printf.sprintf "t%d_%d" i p;
                  space = Ir.Global;
                  shape = Array.copy shapes.(i).(p);
                  layout = Layout.Row_major;
                }))
    g.knodes;
  let kernels = ref [] and calls = ref [] in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let actual_ins =
        List.map
          (fun (r : Graph.tensor_ref) -> gbufs.(r.node).(r.port))
          node.kins
      in
      let formals_in =
        List.mapi
          (fun j (b : Ir.buf) -> { b with Ir.bname = Printf.sprintf "a%d" j })
          actual_ins
      in
      match node.kop with
      | Graph.K_input _ -> ()
      | Graph.K_prim p ->
          let ctx = { next = 0 } in
          let out = gbufs.(i).(0) in
          let formal_out = { out with Ir.bname = "o0" } in
          let kname = Printf.sprintf "%s_op_%d" name i in
          let body =
            Ir.Comment
              (Printf.sprintf "o0 = %s(%s)" (Op.to_string p)
                 (String.concat ", "
                    (List.map (fun (b : Ir.buf) -> b.Ir.bname) formals_in)))
            :: op_lower ctx p ~dst:formal_out ~ins:formals_in
          in
          kernels :=
            {
              Ir.kname;
              params = formals_in @ [ formal_out ];
              n_inputs = List.length formals_in;
              shared = [];
              locals = [];
              grid = [||];
              forloop = [||];
              smem_bytes = 0;
              planner_optimal = true;
              libcall = Some (Op.name p);
              body;
            }
            :: !kernels;
          calls := (kname, actual_ins @ [ out ]) :: !calls
      | Graph.K_graphdef bg ->
          let ctx = { next = 0 } in
          let kname = Printf.sprintf "%s_kernel_%d" name i in
          let assignment = List.assoc_opt i layouts in
          let ker = lower_block ctx ~kname ~kin_bufs:formals_in ~assignment bg in
          kernels := ker :: !kernels;
          calls := (kname, actual_ins @ Array.to_list gbufs.(i)) :: !calls)
    g.knodes;
  let temps =
    List.concat
      (List.filteri
         (fun i _ ->
           match g.knodes.(i).kop with Graph.K_input _ -> false | _ -> true)
         (Array.to_list gbufs |> List.map Array.to_list))
  in
  let outputs =
    List.map (fun (r : Graph.tensor_ref) -> gbufs.(r.node).(r.port)) g.outputs
  in
  {
    Ir.pname = name;
    inputs = List.rev !inputs;
    input_names = Graph.input_names g;
    outputs;
    temps;
    kernels = List.rev !kernels;
    calls = List.rev !calls;
  }
