(** A typed, explicit-memory imperative IR — the seam between muGraphs
    and every code backend (the Futhark-style lowering pipeline of
    DESIGN.md: explicit buffers, index-function layouts, loops, stores
    and barriers instead of pseudo-library calls).

    Programs are first-order and fully static: every loop bound, buffer
    shape and stride is a compile-time constant, so a backend renders
    them without any runtime shape machinery. Memory is explicit — a
    value lives in a named {!buf} with a {!Tensor.Layout.t} index
    function, and every read/write goes through a linear index
    expression built by {!index} from that layout's strides. Both the
    runnable C backend ({!Codegen.C_emit}) and the pseudo-CUDA printer
    ({!Codegen.Cuda_emit}) consume this IR, so the two can never drift:
    there is exactly one lowering ({!Lower}). *)

(** Integer index expressions over loop variables. Build them with the
    constant-folding smart constructors below so emitted addressing code
    stays readable. *)
type iexp =
  | Iconst of int
  | Ivar of string
  | Iadd of iexp * iexp
  | Imul of iexp * iexp
  | Idiv of iexp * iexp  (** truncated; operands are non-negative *)
  | Imod of iexp * iexp

val iconst : int -> iexp
val ivar : string -> iexp
val iadd : iexp -> iexp -> iexp
val imul : iexp -> iexp -> iexp
val idiv : iexp -> iexp -> iexp
val imod : iexp -> iexp -> iexp

val eval_iexp : (string -> int) -> iexp -> int
(** Evaluate under an environment for the loop variables. *)

val iexp_vars : iexp -> string list
(** Free variables, sorted, deduplicated. *)

val iexp_to_string : iexp -> string
(** C-syntax rendering (valid in both C99 and CUDA). *)

(** Where a buffer lives. [Global] is device memory (kernel parameters
    and inter-kernel temporaries), [Shared] is block-level scratch (the
    planner assigns it a shared-memory offset), [Local] is the register
    file of a lowered thread graph. *)
type space = Global | Shared | Local

type buf = {
  bname : string;
  space : space;
  shape : int array;
  layout : Tensor.Layout.t;
}

val numel : buf -> int

val strides : buf -> int array
(** The buffer's index function: strides of its layout over its shape. *)

val index : buf -> iexp array -> iexp
(** [index b coords] is the linear address [sum_d coords.(d) * strides
    b.(d)] — every access the lowering emits goes through this, which is
    what makes layout choices honored by construction. *)

(** Scalar (double-precision) value expressions. *)
type vexp =
  | Const of float
  | Load of buf * iexp
  | Temp of string  (** a declared scalar temporary *)
  | Bin of Mugraph.Op.binary * vexp * vexp
  | Un of Mugraph.Op.unary * vexp

(** Loop annotations: [Grid a] iterates grid axis [a] (a CUDA backend
    maps it to [blockIdx], a CPU backend runs it serially), [Forloop l]
    is the block graph's data-streaming for-loop axis [l], [Serial] is
    an elementwise data loop and [Reduce] a reduction loop carrying a
    scalar accumulator. *)
type loop_kind = Grid of int | Forloop of int | Serial | Reduce

type stmt =
  | For of { v : string; n : int; kind : loop_kind; body : stmt list }
  | Decl of { v : string; init : vexp }  (** mutable scalar temporary *)
  | Assign of { v : string; e : vexp }
  | Store of { dst : buf; idx : iexp; e : vexp }
  | Store_add of { dst : buf; idx : iexp; e : vexp }  (** [dst[idx] += e] *)
  | Barrier  (** block-level sync; a no-op for a single-threaded backend *)
  | Comment of string

type kernel = {
  kname : string;
  params : buf list;
      (** formal parameters, all [Global]: inputs then outputs *)
  n_inputs : int;  (** first [n_inputs] params are read-only *)
  shared : (buf * int) list;  (** [Shared] scratch with its smem byte offset *)
  locals : buf list;  (** [Local] thread-graph scratch *)
  grid : int array;  (** [[||]] for a kernel-level library op *)
  forloop : int array;
  smem_bytes : int;
  planner_optimal : bool;  (** the memory plan's exhaustive search finished *)
  libcall : string option;
      (** for kernel-level library ops, the operator name ([Op.name]); a
          pseudo-CUDA backend renders the call as a library invocation
          instead of the loop body *)
  body : stmt list;
}

type program = {
  pname : string;
  inputs : buf list;  (** program inputs, in muGraph input order *)
  input_names : string list;  (** the muGraph's declared input names *)
  outputs : buf list;
      (** per muGraph output, the global buffer holding its value (may
          alias an input or repeat) *)
  temps : buf list;  (** inter-kernel global temporaries *)
  kernels : kernel list;
  calls : (string * buf list) list;
      (** the entry sequence: kernel name, actual arguments in formal
          parameter order *)
}

val check_program : program -> (unit, string) result
(** Static well-formedness: distinct kernel names, calls matching formal
    arity/shape/spaces, every load/store in scope, loop variables bound
    and unshadowed, scalar temporaries declared before use, positive
    loop bounds, grid loops agreeing with the kernel's grid. The qcheck
    totality property runs every lowered graph through this. *)

val output_size : program -> int
(** Total number of scalars across the program outputs. *)
