open Mugraph
module Partition = Partition

type piece_result = {
  piece : Partition.piece;
  outcome : Search.Generator.outcome option;
  best : Graph.kernel_graph;
  best_cost : Gpusim.Cost.graph_cost;
  input_cost : Gpusim.Cost.graph_cost;
  opt_report : Opt.Optimizer.report;
}

type report = {
  device : Gpusim.Device.t;
  partition : Partition.t;
  pieces : piece_result list;
  input_us : float;
  optimized_us : float;
  speedup : float;
}

let superoptimize ?config ?(verify_trials = 2) ?budget ?checkpoint
    ?prune_persist ~(device : Gpusim.Device.t) program =
  Obs.Trace.with_span ~cat:"mirage" "superoptimize" @@ fun () ->
  let partition =
    Obs.Trace.with_span ~cat:"mirage" "partition" (fun () ->
        Partition.partition program)
  in
  Obs.Log.info (fun m ->
      m "superoptimize: %d pieces on %s"
        (List.length partition.Partition.pieces)
        device.Gpusim.Device.name);
  let pieces =
    List.map
      (fun (p : Partition.piece) ->
        Obs.Trace.with_span ~cat:"mirage"
          ~args:
            [
              ("piece", string_of_int p.Partition.id);
              ("lax", string_of_bool p.Partition.lax);
            ]
          "piece"
        @@ fun () ->
        let input_cost = Gpusim.Cost.cost device p.Partition.graph in
        if not p.Partition.lax then
          {
            piece = p;
            outcome = None;
            best = p.Partition.graph;
            best_cost = input_cost;
            input_cost;
            opt_report = Opt.Optimizer.optimize ?budget device p.Partition.graph;
          }
        else begin
          let outcome =
            Search.Generator.run ?config ~verify_trials ?budget ?checkpoint
              ?prune_persist ~piece:p.Partition.id ~device
              ~spec:p.Partition.graph ()
          in
          let best_graph, best_cost =
            match outcome.Search.Generator.best with
            | Some r -> (r.Search.Generator.graph, r.Search.Generator.cost)
            | None -> (p.Partition.graph, input_cost)
          in
          {
            piece = p;
            outcome = Some outcome;
            best = best_graph;
            best_cost;
            input_cost;
            opt_report = Opt.Optimizer.optimize ?budget device best_graph;
          }
        end)
      partition.Partition.pieces
  in
  let input_us =
    List.fold_left
      (fun acc r -> acc +. r.input_cost.Gpusim.Cost.total_us)
      0.0 pieces
  in
  let optimized_us =
    List.fold_left
      (fun acc r -> acc +. r.best_cost.Gpusim.Cost.total_us)
      0.0 pieces
  in
  {
    device;
    partition;
    pieces;
    input_us;
    optimized_us;
    speedup = input_us /. optimized_us;
  }

let summary r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Mirage on %s: %.2f us -> %.2f us (%.2fx)\n"
       r.device.Gpusim.Device.name r.input_us r.optimized_us r.speedup);
  List.iter
    (fun pr ->
      Buffer.add_string buf
        (Printf.sprintf "  piece %d (%s): %.2f -> %.2f us%s\n"
           pr.piece.Partition.id
           (if pr.piece.Partition.lax then "LAX" else "non-LAX")
           pr.input_cost.Gpusim.Cost.total_us
           pr.best_cost.Gpusim.Cost.total_us
           (match pr.outcome with
           | Some o ->
               Printf.sprintf " [%d candidates, %d verified]"
                 o.Search.Generator.generated
                 (List.length o.Search.Generator.verified)
           | None -> "")))
    r.pieces;
  Buffer.contents buf
