(** The Mirage superoptimizer, end to end (paper Fig. 1):

    input program → LAX partitioning → expression-guided muGraph
    generation → probabilistic equivalence verification → muGraph
    optimization (layouts, scheduling, memory planning) → best verified
    plan per LAX piece. *)

open Mugraph

module Partition = Partition
(** LAX partitioning (re-exported: this module is the library root). *)

type piece_result = {
  piece : Partition.piece;
  outcome : Search.Generator.outcome option;  (** None for non-LAX pieces *)
  best : Graph.kernel_graph;  (** the chosen plan (input if no better) *)
  best_cost : Gpusim.Cost.graph_cost;
  input_cost : Gpusim.Cost.graph_cost;
  opt_report : Opt.Optimizer.report;  (** §6 passes on the chosen plan *)
}

type report = {
  device : Gpusim.Device.t;
  partition : Partition.t;
  pieces : piece_result list;
  input_us : float;
  optimized_us : float;
  speedup : float;
}

val superoptimize :
  ?config:Search.Config.t ->
  ?verify_trials:int ->
  ?budget:Search.Budget.t ->
  ?checkpoint:Search.Checkpoint.t ->
  ?prune_persist:(Smtlite.Solver.t -> unit) ->
  device:Gpusim.Device.t ->
  Graph.kernel_graph ->
  report
(** Superoptimize every LAX piece of the program. The returned plans are
    verified equivalent to their pieces; non-LAX pieces pass through
    unchanged. Never slower than the input program under the cost
    model.

    [budget] is shared across all pieces and every phase (enumeration,
    verification, ILP layout solve, memory planning): one wall deadline
    for the whole invocation, with degradations recorded per phase.
    [checkpoint] persists search progress per piece (pieces are keyed by
    partition id) for [--resume]. [prune_persist] runs once on each
    piece's freshly created solver — the hook for attaching the on-disk
    prune-query cache (see {!Search.Generator.run}). *)

val summary : report -> string
