open Mugraph

type piece = {
  id : int;
  graph : Graph.kernel_graph;
  lax : bool;
  output_names : string list;
}

type t = { pieces : piece list; original : Graph.kernel_graph }

let node_is_lax (node : Graph.kernel_node) =
  match node.kop with
  | Graph.K_input _ -> true
  | Graph.K_prim p -> Op.is_lax p
  | Graph.K_graphdef _ -> true

(* Union-find over node indices. *)
let rec find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- find parent parent.(i);
    parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let partition (g : Graph.kernel_graph) =
  Array.iter
    (fun (n : Graph.kernel_node) ->
      match n.kop with
      | Graph.K_graphdef _ ->
          invalid_arg "Partition.partition: input already contains custom kernels"
      | Graph.K_input _ | Graph.K_prim _ -> ())
    g.knodes;
  let n = Array.length g.knodes in
  let shapes = Infer.kernel_shapes g in
  let is_op i =
    match g.knodes.(i).Graph.kop with Graph.K_input _ -> false | _ -> true
  in
  let lax i = node_is_lax g.knodes.(i) in
  let parent = Array.init n Fun.id in
  (* Merging the components of producer [j] and consumer [i] is unsafe
     when some path between two nodes of the would-be merged component
     passes through a node outside it (e.g. m -> relu(m) -> f(m, relu m):
     the merged component would depend on a component that depends on it,
     and no piece order would exist). Since existing components are
     acyclic, walking backward from each member and looking for a re-entry
     after leaving the merged set finds exactly the new cycles. *)
  let creates_cycle ~prod:j ~cons:i =
    let ri = find parent i and rj = find parent j in
    let in_merged k =
      is_op k && (find parent k = ri || find parent k = rj)
    in
    let seen = Hashtbl.create 16 in
    let rec back k outside =
      if in_merged k && outside then true
      else if Hashtbl.mem seen (k, outside) then false
      else begin
        Hashtbl.add seen (k, outside) ();
        let outside = outside || not (in_merged k) in
        List.exists
          (fun ({ node = l; _ } : Graph.tensor_ref) ->
            is_op l && back l outside)
          g.knodes.(k).Graph.kins
      end
    in
    List.exists
      (fun v ->
        in_merged v
        && List.exists
             (fun ({ node = l; _ } : Graph.tensor_ref) ->
               is_op l && back l false)
             g.knodes.(v).Graph.kins)
      (List.init n Fun.id)
  in
  (* merge adjacent LAX operators (when acyclicity allows) *)
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      if is_op i && lax i then
        List.iter
          (fun ({ node = j; _ } : Graph.tensor_ref) ->
            if
              is_op j && lax j
              && find parent i <> find parent j
              && not (creates_cycle ~prod:j ~cons:i)
            then union parent i j)
          node.kins)
    g.knodes;
  (* component representative per operator node *)
  let comp i = find parent i in
  let comp_ids =
    List.init n Fun.id
    |> List.filter is_op
    |> List.map comp
    |> List.sort_uniq Stdlib.compare
  in
  (* which tensors are consumed outside their component or are outputs *)
  let exported = Hashtbl.create 16 in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      if is_op i then
        List.iter
          (fun ({ node = j; port } : Graph.tensor_ref) ->
            if is_op j && comp j <> comp i then
              Hashtbl.replace exported (j, port) ())
          node.kins)
    g.knodes;
  List.iter
    (fun ({ node = j; port } : Graph.tensor_ref) ->
      if is_op j then Hashtbl.replace exported (j, port) ())
    g.outputs;
  (* build one piece per component, in dependency (Kahn) order *)
  let comp_nodes c =
    List.init n Fun.id |> List.filter (fun i -> is_op i && comp i = c)
  in
  let comp_deps c =
    comp_nodes c
    |> List.concat_map (fun i -> g.knodes.(i).Graph.kins)
    |> List.filter_map (fun ({ node = j; _ } : Graph.tensor_ref) ->
           if is_op j && comp j <> c then Some (comp j) else None)
    |> List.sort_uniq Stdlib.compare
  in
  let build_piece idx c =
    let members = comp_nodes c in
    let bld = Graph.Build.create () in
    (* map from original tensor_ref to new ref *)
    let mapping = Hashtbl.create 16 in
    let input_of ({ node = j; port } : Graph.tensor_ref) =
      match Hashtbl.find_opt mapping (j, port) with
      | Some r -> r
      | None ->
          let name =
            match g.knodes.(j).Graph.kop with
            | Graph.K_input { name; _ } -> name
            | _ -> Printf.sprintf "t%d_%d" j port
          in
          let r = Graph.Build.input bld name shapes.(j).(port) in
          Hashtbl.replace mapping (j, port) r;
          r
    in
    List.iter
      (fun i ->
        let node = g.knodes.(i) in
        let ins =
          List.map
            (fun ({ node = j; port } as tr : Graph.tensor_ref) ->
              if is_op j && comp j = c then Hashtbl.find mapping (j, port)
              else input_of tr)
            node.Graph.kins
        in
        match node.Graph.kop with
        | Graph.K_prim p ->
            let r = Graph.Build.prim bld p ins in
            Hashtbl.replace mapping (i, 0) r
        | Graph.K_input _ | Graph.K_graphdef _ -> assert false)
      members;
    let exported_members =
      List.filter (fun i -> Hashtbl.mem exported (i, 0)) members
    in
    let exported_members =
      (* a component whose results are all internal (possible only for
         dead code) still needs an output to be a valid graph *)
      if exported_members = [] then [ List.hd (List.rev members) ]
      else exported_members
    in
    let outputs =
      List.map (fun i -> Hashtbl.find mapping (i, 0)) exported_members
    in
    {
      id = idx;
      graph = Graph.Build.finish bld ~outputs;
      lax = List.for_all lax members;
      output_names =
        List.map (fun i -> Printf.sprintf "t%d_0" i) exported_members;
    }
  in
  (* Kahn order over components *)
  let remaining = ref comp_ids in
  let done_ = Hashtbl.create 8 in
  let order = ref [] in
  while !remaining <> [] do
    let ready, blocked =
      List.partition
        (fun c -> List.for_all (Hashtbl.mem done_) (comp_deps c))
        !remaining
    in
    assert (ready <> []);
    List.iter
      (fun c ->
        order := c :: !order;
        Hashtbl.replace done_ c ())
      ready;
    remaining := blocked
  done;
  let pieces = List.rev !order |> List.mapi build_piece in
  { pieces; original = g }

let num_lax_pieces t =
  List.length (List.filter (fun p -> p.lax) t.pieces)

let total_cost device t ~replacements =
  List.map
    (fun p ->
      let g =
        match List.assoc_opt p.id replacements with
        | Some g' -> g'
        | None -> p.graph
      in
      Gpusim.Cost.cost device g)
    t.pieces
