type var = int

type cmp = Le | Eq

type lincon = { coeffs : (int * var) list; bound : int; cmp : cmp }

type t = {
  mutable n : int;
  mutable names : string list;  (* reversed *)
  mutable cons : lincon list;
  mutable objective : (float * var) list;
}

type solution = { values : bool array; objective : float }

type outcome =
  | Optimal of solution
  | Feasible_incumbent of solution
  | Node_limit
  | Infeasible

(* Solver telemetry in the process-wide registry (layout selection has no
   per-run registry); resolved lazily so unused programs pay nothing. *)
module Im = struct
  let reg () = Obs.Metrics.default ()

  let solves =
    lazy (Obs.Metrics.counter (reg ()) ~help:"branch-and-bound invocations" "ilp.solves")

  let nodes =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"branch-and-bound nodes visited (iterations)" "ilp.nodes")

  let infeasible_cuts =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"subtrees cut: some constraint already violated"
         "ilp.cuts.infeasible")

  let bound_cuts =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"subtrees cut: objective bound cannot beat incumbent"
         "ilp.cuts.bound")

  let nodes_per_solve =
    lazy
      (Obs.Metrics.histogram (reg ())
         ~help:"branch-and-bound nodes per solve"
         ~buckets:[| 1.; 10.; 100.; 1000.; 10_000.; 100_000.; 1_000_000. |]
         "ilp.nodes_per_solve")

  let limit_hits =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"solves cut short by the node limit or deadline"
         "ilp.limit_hits")
end

let create () = { n = 0; names = []; cons = []; objective = [] }

let num_vars p = p.n

let new_var ?name p =
  let v = p.n in
  p.n <- p.n + 1;
  p.names <-
    (match name with Some s -> s | None -> Printf.sprintf "x%d" v)
    :: p.names;
  v

let check_var p v =
  if v < 0 || v >= p.n then invalid_arg "Ilp: variable out of range"

let add_con p coeffs bound cmp =
  List.iter (fun (_, v) -> check_var p v) coeffs;
  p.cons <- { coeffs; bound; cmp } :: p.cons

let add_le p coeffs b = add_con p coeffs b Le
let add_ge p coeffs b =
  add_con p (List.map (fun (c, v) -> (-c, v)) coeffs) (-b) Le
let add_eq p coeffs b = add_con p coeffs b Eq

let add_exactly_one p vars = add_eq p (List.map (fun v -> (1, v)) vars) 1
let add_implies p x y = add_le p [ (1, x); (-1, y) ] 0
let add_forbid_pair p x y = add_le p [ (1, x); (1, y) ] 1

let set_objective p terms =
  List.iter (fun (_, v) -> check_var p v) terms;
  p.objective <- terms

let var_name p v =
  check_var p v;
  List.nth (List.rev p.names) v

exception Limit_hit

(* Branch and bound over assignment arrays: -1 unknown, 0, 1. *)
let solve_unprofiled ?(node_limit = 10_000_000) ?budget p =
  Obs.Fault.trip "ilp";
  let n = p.n in
  let cons = Array.of_list p.cons in
  let assign = Array.make n (-1) in
  let best : solution option ref = ref None in
  let nodes = ref 0 in
  (* Objective contribution bounds. *)
  let obj_value () =
    List.fold_left
      (fun acc (c, v) -> if assign.(v) = 1 then acc +. c else acc)
      0.0 p.objective
  in
  let obj_lower_bound () =
    (* fixed part + best possible completion (take negatives). *)
    List.fold_left
      (fun acc (c, v) ->
        match assign.(v) with
        | 1 -> acc +. c
        | 0 -> acc
        | _ -> if c < 0.0 then acc +. c else acc)
      0.0 p.objective
  in
  (* A constraint is violated if even its most favorable completion
     fails; satisfied-for-sure if its least favorable completion holds. *)
  let feasible_so_far () =
    Array.for_all
      (fun { coeffs; bound; cmp } ->
        let mini = ref 0 and maxi = ref 0 in
        List.iter
          (fun (c, v) ->
            match assign.(v) with
            | 1 ->
                mini := !mini + c;
                maxi := !maxi + c
            | 0 -> ()
            | _ ->
                if c < 0 then mini := !mini + c else maxi := !maxi + c)
          coeffs;
        match cmp with
        | Le -> !mini <= bound
        | Eq -> !mini <= bound && bound <= !maxi)
      cons
  in
  let better obj =
    match !best with None -> true | Some b -> obj < b.objective -. 1e-12
  in
  let rec go v =
    incr nodes;
    (* Exhausting the limit is not a crash: the caller gets the best
       incumbent found so far and decides how to degrade. The deadline
       is polled every 4096 nodes to keep gettimeofday off the hot
       path. *)
    if !nodes > node_limit then raise Limit_hit;
    (match budget with
    | Some b
      when !nodes land 4095 = 0
           && (Obs.Budget.over_deadline b || Obs.Budget.cancelled b) ->
        Obs.Budget.note b "ilp.deadline";
        raise Limit_hit
    | _ -> ());
    if not (feasible_so_far ()) then
      Obs.Metrics.bump (Lazy.force Im.infeasible_cuts)
    else if not (better (obj_lower_bound ())) then
      Obs.Metrics.bump (Lazy.force Im.bound_cuts)
    else if v = n then begin
      let obj = obj_value () in
      if better obj then
        best := Some { values = Array.map (fun a -> a = 1) assign; objective = obj }
    end
    else begin
      (* Try the cheaper objective direction first. *)
      let c =
        List.fold_left
          (fun acc (c, v') -> if v' = v then acc +. c else acc)
          0.0 p.objective
      in
      let order = if c <= 0.0 then [ 1; 0 ] else [ 0; 1 ] in
      List.iter
        (fun b ->
          assign.(v) <- b;
          go (v + 1);
          assign.(v) <- -1)
        order
    end
  in
  Obs.Metrics.bump (Lazy.force Im.solves);
  let limited = ref false in
  Fun.protect
    ~finally:(fun () ->
      (* counts survive a cut-short solve, so the blown-up solve is
         still visible in the metrics table *)
      Obs.Metrics.add (Lazy.force Im.nodes) !nodes;
      Obs.Metrics.observe (Lazy.force Im.nodes_per_solve) (float_of_int !nodes))
    (fun () -> try go 0 with Limit_hit -> limited := true);
  if !limited then Obs.Metrics.bump (Lazy.force Im.limit_hits);
  match (!best, !limited) with
  | Some s, false -> Optimal s
  | Some s, true -> Feasible_incumbent s
  | None, true -> Node_limit
  | None, false -> Infeasible

(* Phase-accounted entry point: branch-and-bound time shows up in the
   search profile wherever the planner is called from. *)
let solve ?node_limit ?budget p =
  Obs.Profile.with_phase "ilp.solve" (fun () ->
      solve_unprofiled ?node_limit ?budget p)

let solve_opt ?node_limit ?budget p =
  match solve ?node_limit ?budget p with
  | Optimal s | Feasible_incumbent s -> Some s
  | Node_limit | Infeasible -> None

let value sol (v : var) = sol.values.(v)
