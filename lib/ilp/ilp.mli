(** A small exact 0-1 integer linear programming solver.

    The paper solves tensor-layout selection with Z3's optimization
    engine (§6, "Tensor layouts"); this module is the sealed-container
    substitute. It handles the boolean selection problems the muGraph
    optimizer produces — tens of variables, exactly-one groups, linear
    side constraints, linear objective — by branch and bound with unit
    propagation and objective bounding, returning a provably optimal
    solution. *)

type t
type var = private int

val create : unit -> t

val num_vars : t -> int

val new_var : ?name:string -> t -> var

val add_le : t -> (int * var) list -> int -> unit
(** [add_le p terms b]: Σ cᵢ·xᵢ ≤ b. *)

val add_ge : t -> (int * var) list -> int -> unit
val add_eq : t -> (int * var) list -> int -> unit

val add_exactly_one : t -> var list -> unit
(** Exactly one of the variables is 1 (layout choice per tensor). *)

val add_implies : t -> var -> var -> unit
(** x → y (operator compatibility constraints). *)

val add_forbid_pair : t -> var -> var -> unit
(** ¬(x ∧ y). *)

val set_objective : t -> (float * var) list -> unit
(** Minimize Σ cᵢ·xᵢ; coefficients may be negative. *)

type solution = { values : bool array; objective : float }

type outcome =
  | Optimal of solution  (** proven optimal *)
  | Feasible_incumbent of solution
      (** the node limit / deadline cut the search, but a feasible
          incumbent was in hand — callers degrade to it *)
  | Node_limit  (** cut before any feasible point was found *)
  | Infeasible  (** proven infeasible *)

val solve : ?node_limit:int -> ?budget:Obs.Budget.t -> t -> outcome
(** Branch and bound, never raises on exhaustion: hitting [node_limit]
    (default 10 million) or the [budget]'s wall deadline returns
    [Feasible_incumbent]/[Node_limit] so the caller can fall back
    instead of crashing. A deadline cut also notes ["ilp.deadline"] on
    the budget. *)

val solve_opt : ?node_limit:int -> ?budget:Obs.Budget.t -> t -> solution option
(** [solve] collapsed to the solution when one exists ([Optimal] or
    [Feasible_incumbent]); for callers that only need a best-effort
    assignment. *)

val value : solution -> var -> bool
val var_name : t -> var -> string
