type 'a t = { shape : Shape.t; data : 'a array }

let create shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Dense.create: %d elements for shape %s"
         (Array.length data) (Shape.to_string shape));
  { shape = Shape.create shape; data = Array.copy data }

let init shape f =
  let shape = Shape.create shape in
  let n = Shape.numel shape in
  if n = 0 then { shape; data = [||] }
  else begin
    let data = Array.make n (f (Shape.coords_of_index shape 0)) in
    let i = ref 0 in
    Shape.iter_coords shape (fun coords ->
        data.(!i) <- f coords;
        incr i);
    { shape; data }
  end

let fill shape v = { shape = Shape.create shape; data = Array.make (Shape.numel shape) v }
let scalar v = { shape = [||]; data = [| v |] }

let of_list shape l = create shape (Array.of_list l)
let shape t = t.shape
let numel t = Array.length t.data

let get t coords =
  let strides = Shape.row_major_strides t.shape in
  t.data.(Shape.index_of_coords ~strides coords)

let get_linear t i = t.data.(i)

let equal eq a b =
  Shape.equal a.shape b.shape
  && Array.for_all2 (fun x y -> eq x y) a.data b.data

let map f t = { shape = t.shape; data = Array.map f t.data }

(* Right-aligned effective strides of [t] against a result shape of rank
   [r]: 0 where the dim is missing or broadcast, so walking the result's
   odometer with these strides visits the right source element without
   materializing coordinates. *)
let effective_strides t r =
  let rt = Shape.rank t.shape in
  let strides = Shape.row_major_strides t.shape in
  Array.init r (fun i ->
      let j = i - (r - rt) in
      if j < 0 || t.shape.(j) = 1 then 0 else strides.(j))

let map2 ops f a b =
  if Shape.equal a.shape b.shape then begin
    (* Hot case in verification: elementwise over identical shapes is a
       single flat loop with no index arithmetic at all. *)
    let da = a.data and db = b.data in
    let n = Array.length da in
    if n = 0 then { shape = a.shape; data = [||] }
    else begin
      let out = Array.make n ops.Element.zero in
      for i = 0 to n - 1 do
        Array.unsafe_set out i
          (f (Array.unsafe_get da i) (Array.unsafe_get db i))
      done;
      { shape = a.shape; data = out }
    end
  end
  else begin
    let result_shape = Shape.broadcast a.shape b.shape in
    let r = Shape.rank result_shape in
    let sa = effective_strides a r and sb = effective_strides b r in
    let n = Shape.numel result_shape in
    let da = a.data and db = b.data in
    let out = Array.make n ops.Element.zero in
    let coords = Array.make r 0 in
    let ia = ref 0 and ib = ref 0 in
    for idx = 0 to n - 1 do
      Array.unsafe_set out idx (f (Array.unsafe_get da !ia) (Array.unsafe_get db !ib));
      (* Mixed-radix odometer bump, updating both source offsets
         incrementally. *)
      let k = ref (r - 1) in
      let carry = ref true in
      while !carry && !k >= 0 do
        let d = !k in
        coords.(d) <- coords.(d) + 1;
        ia := !ia + sa.(d);
        ib := !ib + sb.(d);
        if coords.(d) = result_shape.(d) then begin
          coords.(d) <- 0;
          ia := !ia - (sa.(d) * result_shape.(d));
          ib := !ib - (sb.(d) * result_shape.(d))
        end
        else carry := false;
        decr k
      done
    done;
    { shape = result_shape; data = out }
  end

(* Locally abstract element type so matching the ops' [repr] witness can
   refine it: for the packed finite field the inner product runs in the
   monomorphic {!Ffield.Fpacked.matmul_inner} kernel (straight-line int
   arithmetic) instead of closure-indirect [mul]/[add] calls. *)
let matmul : type elt. elt Element.ops -> elt t -> elt t -> elt t =
 fun ops a b ->
  let ra = Shape.rank a.shape and rb = Shape.rank b.shape in
  if ra < 2 || rb < 2 then invalid_arg "Dense.matmul: rank must be >= 2";
  let m = a.shape.(ra - 2) and k = a.shape.(ra - 1) in
  let k' = b.shape.(rb - 2) and n = b.shape.(rb - 1) in
  if k <> k' then
    invalid_arg
      (Printf.sprintf "Dense.matmul: inner dims %d vs %d (shapes %s x %s)" k
         k'
         (Shape.to_string a.shape)
         (Shape.to_string b.shape));
  let batch_a = Array.sub a.shape 0 (ra - 2)
  and batch_b = Array.sub b.shape 0 (rb - 2) in
  let batch = Shape.broadcast batch_a batch_b in
  let result_shape = Shape.create (Array.append batch [| m; n |]) in
  let rbatch = Array.length batch in
  let sa = Shape.row_major_strides a.shape
  and sb = Shape.row_major_strides b.shape in
  (* Effective batch strides against the broadcast batch shape (0 where the
     tensor's batch dim is 1 or missing). *)
  let eff t strides tr =
    let rt = tr - 2 in
    Array.init rbatch (fun i ->
        let j = i - (rbatch - rt) in
        if j < 0 || t.shape.(j) = 1 then 0 else strides.(j))
  in
  let ba = eff a sa ra and bb = eff b sb rb in
  let sa_i = sa.(ra - 2) and sa_l = sa.(ra - 1) in
  let sb_l = sb.(rb - 2) and sb_j = sb.(rb - 1) in
  let nbatch = Shape.numel batch in
  let da = a.data and db = b.data in
  let zero = ops.Element.zero
  and add = ops.Element.add
  and mul = ops.Element.mul in
  let out = Array.make (nbatch * m * n) zero in
  let coords = Array.make rbatch 0 in
  let base_a = ref 0 and base_b = ref 0 in
  let idx = ref 0 in
  let one_batch =
    match ops.Element.repr with
    | Element.Packed_field c ->
        fun () ->
          Ffield.Fpacked.matmul_inner c ~m ~n ~k ~a:da ~base_a:!base_a ~sa_i
            ~sa_l ~b:db ~base_b:!base_b ~sb_l ~sb_j ~out ~out_base:!idx;
          idx := !idx + (m * n)
    | _ ->
        fun () ->
          for i = 0 to m - 1 do
            let arow = !base_a + (i * sa_i) in
            for j = 0 to n - 1 do
              let bcol = !base_b + (j * sb_j) in
              let acc = ref zero in
              for l = 0 to k - 1 do
                acc :=
                  add !acc
                    (mul
                       (Array.unsafe_get da (arow + (l * sa_l)))
                       (Array.unsafe_get db (bcol + (l * sb_l))))
              done;
              Array.unsafe_set out !idx !acc;
              incr idx
            done
          done
  in
  for _ = 1 to nbatch do
    one_batch ();
    (* Bump the batch odometer, updating both base offsets incrementally. *)
    let d = ref (rbatch - 1) in
    let carry = ref true in
    while !carry && !d >= 0 do
      let i = !d in
      coords.(i) <- coords.(i) + 1;
      base_a := !base_a + ba.(i);
      base_b := !base_b + bb.(i);
      if coords.(i) = batch.(i) then begin
        coords.(i) <- 0;
        base_a := !base_a - (ba.(i) * batch.(i));
        base_b := !base_b - (bb.(i) * batch.(i))
      end
      else carry := false;
      decr d
    done
  done;
  { shape = result_shape; data = out }

(* Strided copy shared by the data-movement ops (slice / repeat / concat /
   transpose): walk [shape] row-major maintaining both offsets with an
   odometer; when both innermost strides are 1 each row is one
   [Array.blit]. Replaces the per-coordinate [init] closures (coordinate
   array copies, [index_of_coords]) on the interpreter's hot path. *)
let copy_strided ~src ~src_base ~sstrides ~dst ~dst_base ~dstrides ~shape =
  let r = Array.length shape in
  if r = 0 then dst.(dst_base) <- src.(src_base)
  else begin
    let inner = shape.(r - 1) in
    let si = sstrides.(r - 1) and di = dstrides.(r - 1) in
    let outer = ref 1 in
    for i = 0 to r - 2 do
      outer := !outer * shape.(i)
    done;
    let coords = Array.make (max 1 (r - 1)) 0 in
    let soff = ref src_base and doff = ref dst_base in
    for _ = 1 to !outer do
      if si = 1 && di = 1 then Array.blit src !soff dst !doff inner
      else begin
        let s = ref !soff and d = ref !doff in
        for _ = 1 to inner do
          Array.unsafe_set dst !d (Array.unsafe_get src !s);
          s := !s + si;
          d := !d + di
        done
      end;
      let k = ref (r - 2) in
      let carry = ref true in
      while !carry && !k >= 0 do
        let dk = !k in
        coords.(dk) <- coords.(dk) + 1;
        soff := !soff + sstrides.(dk);
        doff := !doff + dstrides.(dk);
        if coords.(dk) = shape.(dk) then begin
          coords.(dk) <- 0;
          soff := !soff - (sstrides.(dk) * shape.(dk));
          doff := !doff - (dstrides.(dk) * shape.(dk))
        end
        else carry := false;
        decr k
      done
    done
  end

let sum_grouped ops ~dim ~group t =
  let r = Shape.rank t.shape in
  if dim < 0 || dim >= r then invalid_arg "Dense.sum_grouped: bad dim";
  if group <= 0 || t.shape.(dim) mod group <> 0 then
    invalid_arg
      (Printf.sprintf "Dense.sum_grouped: group %d does not divide dim %d"
         group t.shape.(dim));
  let out_shape = Array.copy t.shape in
  out_shape.(dim) <- t.shape.(dim) / group;
  let out_shape = Shape.create out_shape in
  let strides = Shape.row_major_strides t.shape in
  let sdim = strides.(dim) in
  (* Source stride per unit of each *output* coordinate: along [dim] one
     output step spans [group] source elements. *)
  let sstrides =
    Array.mapi (fun i s -> if i = dim then s * group else s) strides
  in
  let n = Shape.numel out_shape in
  if n = 0 then { shape = out_shape; data = [||] }
  else begin
    let zero = ops.Element.zero and add = ops.Element.add in
    let src = t.data in
    let out = Array.make n zero in
    let coords = Array.make r 0 in
    let soff = ref 0 in
    for idx = 0 to n - 1 do
      let acc = ref zero in
      let s = ref !soff in
      for _ = 1 to group do
        acc := add !acc (Array.unsafe_get src !s);
        s := !s + sdim
      done;
      Array.unsafe_set out idx !acc;
      let k = ref (r - 1) in
      let carry = ref true in
      while !carry && !k >= 0 do
        let dk = !k in
        coords.(dk) <- coords.(dk) + 1;
        soff := !soff + sstrides.(dk);
        if coords.(dk) = out_shape.(dk) then begin
          coords.(dk) <- 0;
          soff := !soff - (sstrides.(dk) * out_shape.(dk))
        end
        else carry := false;
        decr k
      done
    done;
    { shape = out_shape; data = out }
  end

let repeat _ops ~dim ~times t =
  let r = Shape.rank t.shape in
  if dim < 0 || dim >= r || times <= 0 then invalid_arg "Dense.repeat";
  let out_shape = Shape.create (Shape.scale_dim t.shape ~dim ~times) in
  let n = Shape.numel out_shape in
  if n = 0 then { shape = out_shape; data = [||] }
  else begin
    let out = Array.make n t.data.(0) in
    let sstrides = Shape.row_major_strides t.shape in
    let dstrides = Shape.row_major_strides out_shape in
    (* Each repetition is one source-shaped copy shifted along [dim]. *)
    for rep = 0 to times - 1 do
      copy_strided ~src:t.data ~src_base:0 ~sstrides ~dst:out
        ~dst_base:(rep * t.shape.(dim) * dstrides.(dim))
        ~dstrides ~shape:t.shape
    done;
    { shape = out_shape; data = out }
  end

let reshape new_shape t =
  let new_shape = Shape.create new_shape in
  if Shape.numel new_shape <> numel t then
    invalid_arg
      (Printf.sprintf "Dense.reshape: %s -> %s" (Shape.to_string t.shape)
         (Shape.to_string new_shape));
  { shape = new_shape; data = Array.copy t.data }

let slice ~dim ~index ~chunks t =
  let r = Shape.rank t.shape in
  if dim < 0 || dim >= r then invalid_arg "Dense.slice: bad dim";
  if not (Shape.divides t.shape ~chunks ~dim) then
    invalid_arg
      (Printf.sprintf "Dense.slice: %d chunks of dim %d in %s" chunks dim
         (Shape.to_string t.shape));
  if index < 0 || index >= chunks then invalid_arg "Dense.slice: bad index";
  let chunk = t.shape.(dim) / chunks in
  let out_shape = Shape.create (Shape.split_dim t.shape ~dim ~chunks) in
  let n = Shape.numel out_shape in
  if n = 0 then { shape = out_shape; data = [||] }
  else begin
    let out = Array.make n t.data.(0) in
    let sstrides = Shape.row_major_strides t.shape in
    copy_strided ~src:t.data
      ~src_base:(index * chunk * sstrides.(dim))
      ~sstrides ~dst:out ~dst_base:0
      ~dstrides:(Shape.row_major_strides out_shape)
      ~shape:out_shape;
    { shape = out_shape; data = out }
  end

let concat ~dim ts =
  match ts with
  | [] -> invalid_arg "Dense.concat: empty"
  | first :: rest ->
      let r = Shape.rank first.shape in
      if dim < 0 || dim >= r then invalid_arg "Dense.concat: bad dim";
      List.iter
        (fun t ->
          if Shape.rank t.shape <> r then
            invalid_arg "Dense.concat: rank mismatch";
          Array.iteri
            (fun i d ->
              if i <> dim && d <> first.shape.(i) then
                invalid_arg "Dense.concat: shape mismatch off-axis")
            t.shape)
        rest;
      let total = List.fold_left (fun acc t -> acc + t.shape.(dim)) 0 ts in
      let out_shape = Array.copy first.shape in
      out_shape.(dim) <- total;
      let out_shape = Shape.create out_shape in
      let n = Shape.numel out_shape in
      if n = 0 then { shape = out_shape; data = [||] }
      else begin
        (* n > 0 implies some piece is non-empty to seed the array. *)
        let seed = (List.find (fun t -> numel t > 0) ts).data.(0) in
        let out = Array.make n seed in
        let dstrides = Shape.row_major_strides out_shape in
        (* Each piece is one piece-shaped copy at its prefix offset. *)
        let off = ref 0 in
        List.iter
          (fun t ->
            if numel t > 0 then
              copy_strided ~src:t.data ~src_base:0
                ~sstrides:(Shape.row_major_strides t.shape)
                ~dst:out
                ~dst_base:(!off * dstrides.(dim))
                ~dstrides ~shape:t.shape;
            off := !off + t.shape.(dim))
          ts;
        { shape = out_shape; data = out }
      end

let add_inplace_like ops a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Dense.add_inplace_like: shape mismatch";
  { shape = a.shape; data = Array.map2 ops.Element.add a.data b.data }

let transpose_last2 t =
  let r = Shape.rank t.shape in
  if r < 2 then invalid_arg "Dense.transpose_last2: rank < 2";
  let out_shape = Array.copy t.shape in
  out_shape.(r - 2) <- t.shape.(r - 1);
  out_shape.(r - 1) <- t.shape.(r - 2);
  let out_shape = Shape.create out_shape in
  let n = Shape.numel out_shape in
  if n = 0 then { shape = out_shape; data = [||] }
  else begin
    let out = Array.make n t.data.(0) in
    let sstrides = Array.copy (Shape.row_major_strides t.shape) in
    let tmp = sstrides.(r - 2) in
    sstrides.(r - 2) <- sstrides.(r - 1);
    sstrides.(r - 1) <- tmp;
    copy_strided ~src:t.data ~src_base:0 ~sstrides ~dst:out ~dst_base:0
      ~dstrides:(Shape.row_major_strides out_shape)
      ~shape:out_shape;
    { shape = out_shape; data = out }
  end

let to_string elt t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Shape.to_string t.shape);
  Buffer.add_char buf '{';
  let n = min (numel t) 32 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (elt t.data.(i))
  done;
  if numel t > n then Buffer.add_string buf ", ...";
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp elt fmt t =
  Format.fprintf fmt "%s{" (Shape.to_string t.shape);
  let n = min (numel t) 32 in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    elt fmt t.data.(i)
  done;
  if numel t > n then Format.fprintf fmt ", ...";
  Format.fprintf fmt "}"
