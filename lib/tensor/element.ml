type _ repr =
  | Generic : 'a repr
  | Packed_field : Ffield.Fpacked.ctx -> Ffield.Fpacked.t repr

type 'a ops = {
  zero : 'a;
  one : 'a;
  of_int : int -> 'a;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  div : 'a -> 'a -> 'a;
  exp : 'a -> 'a;
  sqrt : 'a -> 'a;
  silu : 'a -> 'a;
  relu : 'a -> 'a;
  equal : 'a -> 'a -> bool;
  to_string : 'a -> string;
  repr : 'a repr;
}

let float_ops =
  {
    zero = 0.0;
    one = 1.0;
    of_int = float_of_int;
    add = ( +. );
    sub = ( -. );
    mul = ( *. );
    div = ( /. );
    exp = Stdlib.exp;
    sqrt = Stdlib.sqrt;
    silu = (fun x -> x /. (1.0 +. Stdlib.exp (-.x)));
    relu = (fun x -> Float.max 0.0 x);
    equal = (fun a b -> Float.equal a b);
    to_string = (fun x -> Printf.sprintf "%g" x);
    repr = Generic;
  }

let float_approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let fpacked_ops ctx =
  let open Ffield in
  {
    zero = Fpacked.zero;
    one = Fpacked.one;
    of_int = Fpacked.of_int ctx;
    add = Fpacked.add ctx;
    sub = Fpacked.sub ctx;
    mul = Fpacked.mul ctx;
    div = Fpacked.div ctx;
    exp = Fpacked.exp ctx;
    sqrt = (fun _ -> raise (Fpair.Unsupported "sqrt"));
    silu = (fun _ -> raise (Fpair.Unsupported "silu"));
    relu = (fun _ -> raise (Fpair.Unsupported "relu"));
    equal = Fpacked.equal;
    to_string = Fpacked.to_string;
    repr = Packed_field ctx;
  }

let fpair_ops ctx =
  let open Ffield in
  {
    zero = Fpair.zero;
    one = Fpair.one;
    of_int = Fpair.of_int ctx;
    add = Fpair.add ctx;
    sub = Fpair.sub ctx;
    mul = Fpair.mul ctx;
    div = Fpair.div ctx;
    exp = Fpair.exp ctx;
    sqrt = Fpair.sqrt ctx;
    silu = Fpair.silu ctx;
    relu = (fun _ -> raise (Fpair.Unsupported "relu"));
    equal = Fpair.equal;
    to_string = Fpair.to_string;
    repr = Generic;
  }
