(** Element domains for tensor evaluation.

    The muGraph interpreter is generic over the scalar domain: examples and
    the cost model run over floats, the probabilistic verifier over
    [Z_p x Z_q] (paper §5.2). A domain is a first-class record of
    operations so that field parameters (p, q, omega) sampled at run time
    can be captured in closures. *)

type _ repr =
  | Generic : 'a repr
  | Packed_field : Ffield.Fpacked.ctx -> Ffield.Fpacked.t repr
      (** Witness that the element domain is the packed finite field over
          this context, with [add]/[mul] agreeing with {!Ffield.Fpacked}
          — {!Dense} dispatches its hot loops to monomorphic kernels on
          the strength of it. Overriding the abstracted operators
          ([sqrt]/[silu]) preserves the claim; overriding the ring
          operations would not. *)

type 'a ops = {
  zero : 'a;
  one : 'a;
  of_int : int -> 'a;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  div : 'a -> 'a -> 'a;
  exp : 'a -> 'a;
  sqrt : 'a -> 'a;
  silu : 'a -> 'a;
  relu : 'a -> 'a;
  equal : 'a -> 'a -> bool;
  to_string : 'a -> string;
  repr : 'a repr;
}

val float_ops : float ops
(** IEEE floats with [exp]/[sqrt] from [Stdlib] and
    [silu x = x / (1 + exp (-x))]. Equality is exact (used only on
    bit-identical evaluation paths); see [float_approx_equal]. *)

val float_approx_equal : ?rtol:float -> ?atol:float -> float -> float -> bool
(** Tolerant comparison for cross-algorithm float checks in tests. *)

val fpair_ops : Ffield.Fpair.ctx -> Ffield.Fpair.t ops
(** The finite-field domain of paper Table 3 for a sampled context. *)

val fpacked_ops : Ffield.Fpacked.ctx -> Ffield.Fpacked.t ops
(** The same finite-field domain over the packed immediate representation
    (verifier fast path). [sqrt]/[silu]/[relu] raise
    {!Ffield.Fpair.Unsupported}; the verifier overrides them with its
    oracle, exactly as for [fpair_ops]. *)
