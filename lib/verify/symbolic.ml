open Tensor
open Mugraph

(* Atoms are input-element variables or uninterpreted applications; an
   application's key is the (not-necessarily-canonical) rational argument,
   so semantically-equal-but-syntactically-different arguments yield
   distinct atoms — a source of incompleteness, never of unsoundness. *)
type atom = Var of int | App of string * value

and mono = atom list (* sorted multiset *)

and poly = (mono * int) list (* sorted by monomial, coefficients nonzero *)

and value = { num : poly; den : poly }

exception Too_big

let size_limit = 200_000

let compare_atom : atom -> atom -> int = Stdlib.compare
let compare_mono : mono -> mono -> int = Stdlib.compare

let guard (p : poly) =
  if List.length p > size_limit then raise Too_big;
  p

let poly_zero : poly = []
let poly_const c : poly = if c = 0 then [] else [ ([], c) ]
let poly_var v : poly = [ ([ Var v ], 1) ]
let poly_atom a : poly = [ ([ a ], 1) ]

let rec poly_add (a : poly) (b : poly) : poly =
  match a, b with
  | [], p | p, [] -> p
  | (ma, ca) :: ra, (mb, cb) :: rb ->
      let c = compare_mono ma mb in
      if c = 0 then
        let s = ca + cb in
        if s = 0 then poly_add ra rb else (ma, s) :: poly_add ra rb
      else if c < 0 then (ma, ca) :: poly_add ra b
      else (mb, cb) :: poly_add a rb

let mono_mul (a : mono) (b : mono) : mono = List.sort compare_atom (a @ b)

let poly_mul (a : poly) (b : poly) : poly =
  guard
    (List.fold_left
       (fun acc (ma, ca) ->
         poly_add acc
           (List.sort
              (fun (m1, _) (m2, _) -> compare_mono m1 m2)
              (List.map (fun (mb, cb) -> (mono_mul ma mb, ca * cb)) b)))
       poly_zero a)

let poly_neg (a : poly) : poly = List.map (fun (m, c) -> (m, -c)) a
let poly_equal (a : poly) (b : poly) = Stdlib.compare a b = 0

let v_of_poly p = { num = p; den = poly_const 1 }
let v_const c = v_of_poly (poly_const c)
let v_zero = v_const 0
let v_one = v_const 1

let v_add a b =
  {
    num = poly_add (poly_mul a.num b.den) (poly_mul b.num a.den);
    den = poly_mul a.den b.den;
  }

let v_sub a b =
  {
    num = poly_add (poly_mul a.num b.den) (poly_neg (poly_mul b.num a.den));
    den = poly_mul a.den b.den;
  }

let v_mul a b = { num = poly_mul a.num b.num; den = poly_mul a.den b.den }
let v_div a b = { num = poly_mul a.num b.den; den = poly_mul a.den b.num }

let v_app name a = v_of_poly (poly_atom (App (name, a)))

(* Exact equality of rational functions: cross-multiplication avoids any
   need for cancellation or GCDs. *)
let v_equal a b =
  poly_equal (poly_mul a.num b.den) (poly_mul b.num a.den)

let rec v_to_string v =
  let atom_str = function
    | Var i -> Printf.sprintf "x%d" i
    | App (f, a) -> Printf.sprintf "%s(%s)" f (v_to_string a)
  in
  let mono_str = function
    | [] -> "1"
    | m -> String.concat "*" (List.map atom_str m)
  in
  let poly_str p =
    match p with
    | [] -> "0"
    | _ ->
        String.concat " + "
          (List.map
             (fun (m, c) ->
               if c = 1 then mono_str m
               else Printf.sprintf "%d*%s" c (mono_str m))
             p)
  in
  if poly_equal v.den (poly_const 1) then poly_str v.num
  else Printf.sprintf "(%s)/(%s)" (poly_str v.num) (poly_str v.den)

let symbolic_ops : value Element.ops =
  {
    Element.zero = v_zero;
    one = v_one;
    of_int = v_const;
    add = v_add;
    sub = v_sub;
    mul = v_mul;
    div = v_div;
    exp = v_app "exp";
    sqrt = v_app "sqrt";
    silu = v_app "silu";
    relu = v_app "relu";
    equal = v_equal;
    to_string = v_to_string;
    repr = Generic;
  }

type result =
  | Equivalent
  | Not_equivalent of string
  | Too_large of string

let equivalent ?(max_elements = 4096) ~spec g =
  let shapes_s = Graph.input_shapes spec and shapes_g = Graph.input_shapes g in
  if
    List.length shapes_s <> List.length shapes_g
    || (not (List.for_all2 Shape.equal shapes_s shapes_g))
    || Graph.input_names spec <> Graph.input_names g
  then Not_equivalent "input interfaces differ"
  else begin
    let total = List.fold_left (fun acc s -> acc + Shape.numel s) 0 shapes_s in
    if total > max_elements then
      Too_large
        (Printf.sprintf "%d input elements exceed the %d-element bound" total
           max_elements)
    else begin
      let next = ref 0 in
      let inputs =
        List.map
          (fun shape ->
            Dense.init shape (fun _ ->
                let v = v_of_poly (poly_var !next) in
                incr next;
                v))
          shapes_s
      in
      match
        ( Interp.eval_kernel symbolic_ops spec ~inputs,
          Interp.eval_kernel symbolic_ops g ~inputs )
      with
      | out_s, out_g ->
          if List.length out_s <> List.length out_g then
            Not_equivalent "different numbers of outputs"
          else begin
            let bad = ref None in
            List.iteri
              (fun k (a, b) ->
                if !bad = None && not (Dense.equal v_equal a b) then
                  bad := Some k)
              (List.combine out_s out_g);
            match !bad with
            | None -> Equivalent
            | Some k ->
                Not_equivalent
                  (Printf.sprintf "output %d differs symbolically" k)
          end
      | exception Too_big ->
          Too_large "symbolic polynomials exceeded the size guard"
      | exception (Graph.Ill_formed m) -> Not_equivalent m
      | exception Invalid_argument m -> Not_equivalent m
    end
  end

let to_string = function
  | Equivalent -> "equivalent (exact, symbolic)"
  | Not_equivalent m -> "NOT equivalent: " ^ m
  | Too_large m -> "too large for symbolic verification: " ^ m
