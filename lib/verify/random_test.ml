open Tensor
open Mugraph
module Fpair = Ffield.Fpair

type result =
  | Equivalent
  | Not_equivalent of string
  | Rejected of string

exception Resample

(* Verifier telemetry, in the process-wide registry (the verifier has no
   per-run registry of its own). Off the printed path by default. *)
module Vm = struct
  let reg () = Obs.Metrics.default ()

  let trials =
    lazy (Obs.Metrics.counter (reg ()) ~help:"finite-field trials run" "verify.trials")

  let resamples =
    lazy
      (Obs.Metrics.counter (reg ()) ~help:"trials resampled on a zero divisor"
         "verify.resamples")

  let equivalent =
    lazy (Obs.Metrics.counter (reg ()) ~help:"candidates found equivalent" "verify.equivalent")

  let not_equivalent =
    lazy
      (Obs.Metrics.counter (reg ()) ~help:"candidates refuted by a trial"
         "verify.not_equivalent")

  let rejected_interface =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"candidates rejected before any trial (interface mismatch)"
         "verify.rejected.interface")

  let rejected_lax =
    lazy
      (Obs.Metrics.counter (reg ()) ~help:"candidates rejected as non-LAX"
         "verify.rejected.not_lax")

  let rejected_resample =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"candidates rejected after too many zero-divisor resamples"
         "verify.rejected.resample_limit")

  let trial_s =
    lazy
      (Obs.Metrics.histogram (reg ()) ~help:"wall time of one trial (s)"
         "verify.trial_s")
end

(* A keyed random oracle over field elements: the uninterpreted-function
   abstraction for Sqrt and SiLU. Deterministic within one trial (the
   trial seed is part of the key), so equal arguments give equal results
   in both graphs. *)
let oracle_general ~p ~q ~trial_seed ~salt (x : Fpair.t) : Fpair.t =
  let key = Hashtbl.hash (trial_seed, salt, x.Fpair.vp, x.Fpair.vq) in
  let st = Random.State.make [| key |] in
  (* Nonzero components: sqrt results are overwhelmingly used as
     divisors (normalizations), and an oracle that avoids 0 keeps the
     zero-divisor resampling rate independent of tensor sizes. Any
     injective-ish function is a valid realization of an uninterpreted
     function. *)
  {
    Fpair.vp = 1 + Random.State.int st (p - 1);
    vq = Some (1 + Random.State.int st (q - 1));
  }

let field_ops ~p ~q ~trial_seed ctx : Fpair.t Element.ops =
  let base = Element.fpair_ops ctx in
  {
    base with
    Element.sqrt = oracle_general ~p ~q ~trial_seed ~salt:1;
    silu = oracle_general ~p ~q ~trial_seed ~salt:2;
    relu =
      (fun _ -> raise (Fpair.Unsupported "relu reached the LAX verifier"));
  }

let interface_mismatch ~spec g =
  let names_s = Graph.input_names spec and names_g = Graph.input_names g in
  let shapes_s = Graph.input_shapes spec and shapes_g = Graph.input_shapes g in
  if names_s <> names_g then Some "input names differ"
  else if
    List.length shapes_s <> List.length shapes_g
    || not (List.for_all2 Shape.equal shapes_s shapes_g)
  then Some "input shapes differ"
  else
    match Infer.infer_opt spec, Infer.infer_opt g with
    | None, _ | _, None -> Some "shape inference failed"
    | Some _, Some _ ->
        let out_s = Infer.output_shapes spec
        and out_g = Infer.output_shapes g in
        if List.length out_s <> List.length out_g then
          Some "different number of outputs"
        else if not (List.for_all2 Shape.equal out_s out_g) then
          Some "output shapes differ"
        else None

let one_trial ~p ~q ~trial_seed ~spec g =
  let st = Random.State.make [| trial_seed |] in
  let ctx = Fpair.random_ctx ~p ~q st in
  let ops = field_ops ~p ~q ~trial_seed ctx in
  let inputs =
    List.map
      (fun shape -> Dense.init shape (fun _ -> Fpair.random ctx st))
      (Graph.input_shapes spec)
  in
  match
    ( Interp.eval_kernel ops spec ~inputs,
      Interp.eval_kernel ops g ~inputs )
  with
  | out_s, out_g ->
      let ok = List.for_all2 (Dense.equal Fpair.equal) out_s out_g in
      if ok then Ok ()
      else Error "outputs differ on a random finite-field test"
  | exception Ffield.Zmod.Division_by_zero -> raise Resample
  | exception Fpair.Not_lax ->
      Error "exponentiation applied twice along a path at run time"

let timed_trial ~p ~q ~trial_seed ~spec g =
  Obs.Metrics.bump (Lazy.force Vm.trials);
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.observe (Lazy.force Vm.trial_s)
        (Unix.gettimeofday () -. t0))
    (fun () -> one_trial ~p ~q ~trial_seed ~spec g)

let equivalent ?(trials = 3) ?(p = Ffield.Zmod.default_p)
    ?(q = Ffield.Zmod.default_q) ?(seed = 0x5EED) ?(cand = -1) ~spec g =
  Obs.Fault.trip "verify";
  let journal = Obs.Journal.active () in
  let t0 = Unix.gettimeofday () in
  let trials_run = ref 0 and resamples = ref 0 in
  let result =
    match interface_mismatch ~spec g with
    | Some msg ->
        Obs.Metrics.bump (Lazy.force Vm.rejected_interface);
        Rejected msg
    | None -> (
        match Lax.check spec, Lax.check g with
        | Lax.Not_lax m, _ ->
            Obs.Metrics.bump (Lazy.force Vm.rejected_lax);
            Rejected ("spec not LAX: " ^ m)
        | _, Lax.Not_lax m ->
            Obs.Metrics.bump (Lazy.force Vm.rejected_lax);
            Rejected ("candidate not LAX: " ^ m)
        | Lax.Lax, Lax.Lax ->
            let rec run trial attempts =
              if trial >= trials then begin
                Obs.Metrics.bump (Lazy.force Vm.equivalent);
                Equivalent
              end
              else if attempts > 50 then begin
                Obs.Metrics.bump (Lazy.force Vm.rejected_resample);
                Rejected "too many zero-divisor resamples"
              end
              else
                let trial_seed = seed + (trial * 7919) + (attempts * 104729) in
                incr trials_run;
                match timed_trial ~p ~q ~trial_seed ~spec g with
                | Ok () -> run (trial + 1) 0
                | Error msg ->
                    Obs.Log.debug (fun m ->
                        m "verify: candidate refuted on trial %d: %s" trial msg);
                    Obs.Metrics.bump (Lazy.force Vm.not_equivalent);
                    Not_equivalent msg
                | exception Resample ->
                    Obs.Metrics.bump (Lazy.force Vm.resamples);
                    incr resamples;
                    run trial (attempts + 1)
            in
            run 0 0)
  in
  (match journal with
  | None -> ()
  | Some j ->
      let verdict, detail =
        match result with
        | Equivalent -> ("equivalent", "")
        | Not_equivalent m -> ("not_equivalent", m)
        | Rejected m -> ("rejected", m)
      in
      Obs.Journal.emit j ~cand ~typ:"verify.verdict"
        ([
           ("verdict", Obs.Jsonw.Str verdict);
           ("trials_requested", Obs.Jsonw.Int trials);
           ("trials_run", Obs.Jsonw.Int !trials_run);
           ("resamples", Obs.Jsonw.Int !resamples);
           ("elapsed_s", Obs.Jsonw.Float (Unix.gettimeofday () -. t0));
         ]
        @ if detail = "" then [] else [ ("detail", Obs.Jsonw.Str detail) ]));
  result

let error_bound ~k ~trials =
  let k = max 1 k in
  (1.0 -. (1.0 /. float_of_int k)) ** float_of_int trials

let trials_for ~k ~delta =
  let k = max 1 k in
  if k = 1 || delta >= 1.0 then 1
  else
    let per = Stdlib.log (1.0 -. (1.0 /. float_of_int k)) in
    max 1 (int_of_float (Float.ceil (Stdlib.log delta /. per)))

let to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent m -> "NOT equivalent: " ^ m
  | Rejected m -> "rejected: " ^ m
