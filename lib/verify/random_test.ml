open Tensor
open Mugraph
module Fpair = Ffield.Fpair
module Fpacked = Ffield.Fpacked
module Zmod = Ffield.Zmod

type result =
  | Equivalent
  | Not_equivalent of string
  | Rejected of string

type detail = { result : result; trials_run : int; resamples : int }

exception Resample

(* Verifier telemetry, in the process-wide registry (the verifier has no
   per-run registry of its own). Off the printed path by default. *)
module Vm = struct
  let reg () = Obs.Metrics.default ()

  let trials =
    lazy (Obs.Metrics.counter (reg ()) ~help:"finite-field trials run" "verify.trials")

  let resamples =
    lazy
      (Obs.Metrics.counter (reg ()) ~help:"trials resampled on a zero divisor"
         "verify.resamples")

  let equivalent =
    lazy (Obs.Metrics.counter (reg ()) ~help:"candidates found equivalent" "verify.equivalent")

  let not_equivalent =
    lazy
      (Obs.Metrics.counter (reg ()) ~help:"candidates refuted by a trial"
         "verify.not_equivalent")

  let rejected_interface =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"candidates rejected before any trial (interface mismatch)"
         "verify.rejected.interface")

  let rejected_lax =
    lazy
      (Obs.Metrics.counter (reg ()) ~help:"candidates rejected as non-LAX"
         "verify.rejected.not_lax")

  let rejected_resample =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"candidates rejected after too many zero-divisor resamples"
         "verify.rejected.resample_limit")

  let trial_s =
    lazy
      (Obs.Metrics.histogram (reg ()) ~help:"wall time of one trial (s)"
         "verify.trial_s")

  let spec_cache_hits =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"trial lookups served from the spec-output cache"
         "verify.spec_cache.hits")

  let spec_cache_misses =
    lazy
      (Obs.Metrics.counter (reg ())
         ~help:"trial lookups that evaluated the spec graph"
         "verify.spec_cache.misses")

  let throughput_buckets =
    [| 1e3; 3e3; 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8; 3e8; 1e9 |]

  let throughput =
    lazy
      (Obs.Metrics.histogram (reg ())
         ~help:"per-trial verification throughput (tensor elements / s)"
         ~buckets:throughput_buckets "verify.throughput_elems_s")
end

(* OCaml's Lazy is not domain-safe; parallel verification forces every
   handle from the spawning domain first. *)
let warm () =
  ignore (Lazy.force Vm.trials);
  ignore (Lazy.force Vm.resamples);
  ignore (Lazy.force Vm.equivalent);
  ignore (Lazy.force Vm.not_equivalent);
  ignore (Lazy.force Vm.rejected_interface);
  ignore (Lazy.force Vm.rejected_lax);
  ignore (Lazy.force Vm.rejected_resample);
  ignore (Lazy.force Vm.trial_s);
  ignore (Lazy.force Vm.spec_cache_hits);
  ignore (Lazy.force Vm.spec_cache_misses);
  ignore (Lazy.force Vm.throughput)

(* A keyed random oracle over raw field components: the
   uninterpreted-function abstraction for Sqrt and SiLU. Deterministic
   within one trial (the trial seed is part of the key), so equal
   arguments give equal results in both graphs. Built on a stateless
   splitmix-style mix instead of allocating a [Random.State] per element;
   shared by the packed and boxed representations so the two paths are
   value-identical. [vq_code] is -1 when the Z_q component is consumed.

   Nonzero components: sqrt results are overwhelmingly used as divisors
   (normalizations), and an oracle that avoids 0 keeps the zero-divisor
   resampling rate independent of tensor sizes. Any injective-ish
   function is a valid realization of an uninterpreted function. *)
let oracle_vals ~p ~q ~trial_seed ~salt vp vq_code =
  let k0 = Fpacked.mix (trial_seed lxor (salt * 0x9E3779B1)) in
  let k1 = Fpacked.mix (k0 lxor vp) in
  let k2 = Fpacked.mix (k1 lxor (vq_code + 1)) in
  (1 + (k2 mod (p - 1)), 1 + (Fpacked.mix k2 mod (q - 1)))

let field_ops ~p ~q ~trial_seed ctx : Fpair.t Element.ops =
  let base = Element.fpair_ops ctx in
  let oracle salt (x : Fpair.t) =
    let vq_code = match x.Fpair.vq with Some v -> v | None -> -1 in
    let rp, rq = oracle_vals ~p ~q ~trial_seed ~salt x.Fpair.vp vq_code in
    { Fpair.vp = rp; vq = Some rq }
  in
  {
    base with
    Element.sqrt = oracle 1;
    silu = oracle 2;
    relu =
      (fun _ -> raise (Fpair.Unsupported "relu reached the LAX verifier"));
  }

let packed_ops ~p ~q ~trial_seed (ctx : Fpacked.ctx) : Fpacked.t Element.ops =
  let base = Element.fpacked_ops ctx in
  let oracle salt x =
    let vq_code = if Fpacked.has_q x then Fpacked.vq x else -1 in
    let rp, rq = oracle_vals ~p ~q ~trial_seed ~salt (Fpacked.vp x) vq_code in
    Fpacked.pack rp rq
  in
  { base with Element.sqrt = oracle 1; silu = oracle 2 }

let interface_mismatch ~spec g =
  let names_s = Graph.input_names spec and names_g = Graph.input_names g in
  let shapes_s = Graph.input_shapes spec and shapes_g = Graph.input_shapes g in
  if names_s <> names_g then Some "input names differ"
  else if
    List.length shapes_s <> List.length shapes_g
    || not (List.for_all2 Shape.equal shapes_s shapes_g)
  then Some "input shapes differ"
  else
    match Infer.infer_opt spec, Infer.infer_opt g with
    | None, _ | _, None -> Some "shape inference failed"
    | Some _, Some _ ->
        let out_s = Infer.output_shapes spec
        and out_g = Infer.output_shapes g in
        if List.length out_s <> List.length out_g then
          Some "different number of outputs"
        else if not (List.for_all2 Shape.equal out_s out_g) then
          Some "output shapes differ"
        else None

(* Raw trial sampling, shared by both representations: the root of unity
   and every input component are drawn from one [Random.State] in a fixed
   order (vp then vq per element, row-major, inputs in graph order), so
   the packed and boxed paths see exactly the same field values. *)
let sample_raw ~p ~q ~trial_seed shapes =
  let st = Random.State.make [| trial_seed |] in
  let omega = Zmod.random_root_of_unity ~p ~q st in
  let raw =
    List.map
      (fun shape ->
        let n = Shape.numel shape in
        let vps = Array.make n 0 and vqs = Array.make n 0 in
        for i = 0 to n - 1 do
          vps.(i) <- Random.State.int st p;
          vqs.(i) <- Random.State.int st q
        done;
        (shape, vps, vqs))
      shapes
  in
  (omega, raw)

(* One memoized trial: the random inputs and the *spec* outputs depend
   only on (trial_seed, spec, p, q), so they are computed once per trial
   seed and shared across every candidate of a run (tentpole part 3). *)
type entry =
  | Packed_ok of Fpacked.ctx * Fpacked.t Dense.t list * Fpacked.t Dense.t list
  | Boxed_ok of Fpair.ctx * Fpair.t Dense.t list * Fpair.t Dense.t list
  | Spec_resample  (** the spec itself hit a zero divisor at this seed *)
  | Spec_not_lax

type session = {
  s_spec : Graph.kernel_graph;
  s_p : int;
  s_q : int;
  s_fast : bool;
  s_table : (int, entry) Hashtbl.t;
  s_lock : Mutex.t;
}

let make_session ?(p = Zmod.default_p) ?(q = Zmod.default_q) ?(fast = true)
    ~spec () =
  {
    s_spec = spec;
    s_p = p;
    s_q = q;
    s_fast = fast && Fpacked.packable ~p ~q;
    s_table = Hashtbl.create 64;
    s_lock = Mutex.create ();
  }

let session_fast s = s.s_fast

let compute_entry ~fast ~p ~q ~trial_seed ~spec =
  let omega, raw = sample_raw ~p ~q ~trial_seed (Graph.input_shapes spec) in
  if fast then begin
    let ctx = Fpacked.make_ctx ~p ~q ~omega () in
    let inputs =
      List.map
        (fun (shape, vps, vqs) ->
          Dense.create shape
            (Array.init (Array.length vps) (fun i ->
                 Fpacked.pack vps.(i) vqs.(i))))
        raw
    in
    match Interp.eval_kernel (packed_ops ~p ~q ~trial_seed ctx) spec ~inputs with
    | outs -> Packed_ok (ctx, inputs, outs)
    | exception Zmod.Division_by_zero -> Spec_resample
    | exception Fpair.Not_lax -> Spec_not_lax
  end
  else begin
    let ctx = Fpair.make_ctx ~p ~q ~omega () in
    let inputs =
      List.map
        (fun (shape, vps, vqs) ->
          Dense.create shape
            (Array.init (Array.length vps) (fun i ->
                 { Fpair.vp = vps.(i); vq = Some vqs.(i) })))
        raw
    in
    match Interp.eval_kernel (field_ops ~p ~q ~trial_seed ctx) spec ~inputs with
    | outs -> Boxed_ok (ctx, inputs, outs)
    | exception Zmod.Division_by_zero -> Spec_resample
    | exception Fpair.Not_lax -> Spec_not_lax
  end

(* The lock is held across a miss's spec evaluation on purpose: all
   candidates of a run share trial seeds, so this guarantees the spec is
   evaluated once per seed even when verification runs across domains. *)
let session_entry session ~trial_seed =
  Mutex.lock session.s_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock session.s_lock)
    (fun () ->
      match Hashtbl.find_opt session.s_table trial_seed with
      | Some e ->
          Obs.Metrics.bump (Lazy.force Vm.spec_cache_hits);
          e
      | None ->
          Obs.Metrics.bump (Lazy.force Vm.spec_cache_misses);
          let e =
            compute_entry ~fast:session.s_fast ~p:session.s_p ~q:session.s_q
              ~trial_seed ~spec:session.s_spec
          in
          Hashtbl.add session.s_table trial_seed e;
          e)

let not_lax_msg = "exponentiation applied twice along a path at run time"

let one_trial ~session ~trial_seed g =
  let p = session.s_p and q = session.s_q in
  match session_entry session ~trial_seed with
  | Spec_resample -> raise Resample
  | Spec_not_lax -> Error not_lax_msg
  | Packed_ok (ctx, inputs, out_s) -> (
      match Interp.eval_kernel (packed_ops ~p ~q ~trial_seed ctx) g ~inputs with
      | out_g ->
          if List.for_all2 (Dense.equal Fpacked.equal) out_s out_g then Ok ()
          else Error "outputs differ on a random finite-field test"
      | exception Zmod.Division_by_zero -> raise Resample
      | exception Fpair.Not_lax -> Error not_lax_msg)
  | Boxed_ok (ctx, inputs, out_s) -> (
      match Interp.eval_kernel (field_ops ~p ~q ~trial_seed ctx) g ~inputs with
      | out_g ->
          if List.for_all2 (Dense.equal Fpair.equal) out_s out_g then Ok ()
          else Error "outputs differ on a random finite-field test"
      | exception Zmod.Division_by_zero -> raise Resample
      | exception Fpair.Not_lax -> Error not_lax_msg)

let timed_trial ~session ~elems ~trial_seed g =
  Obs.Metrics.bump (Lazy.force Vm.trials);
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      Obs.Metrics.observe (Lazy.force Vm.trial_s) dt;
      if dt > 0.0 && elems > 0 then
        Obs.Metrics.observe (Lazy.force Vm.throughput)
          (float_of_int elems /. dt))
    (fun () -> one_trial ~session ~trial_seed g)

let equivalent_detailed ?(trials = 3) ?(p = Zmod.default_p)
    ?(q = Zmod.default_q) ?(seed = 0x5EED) ?(cand = -1) ?fast ?session:sess
    ~spec g =
  Obs.Fault.trip "verify";
  let session =
    match sess with Some s -> s | None -> make_session ~p ~q ?fast ~spec ()
  in
  let journal = Obs.Journal.active () in
  let t0 = Unix.gettimeofday () in
  let trials_run = ref 0 and resamples = ref 0 in
  let result =
    match interface_mismatch ~spec:session.s_spec g with
    | Some msg ->
        Obs.Metrics.bump (Lazy.force Vm.rejected_interface);
        Rejected msg
    | None -> (
        match Lax.check session.s_spec, Lax.check g with
        | Lax.Not_lax m, _ ->
            Obs.Metrics.bump (Lazy.force Vm.rejected_lax);
            Rejected ("spec not LAX: " ^ m)
        | _, Lax.Not_lax m ->
            Obs.Metrics.bump (Lazy.force Vm.rejected_lax);
            Rejected ("candidate not LAX: " ^ m)
        | Lax.Lax, Lax.Lax ->
            let elems =
              List.fold_left
                (fun acc s -> acc + Shape.numel s)
                0
                (Graph.input_shapes g @ Infer.output_shapes g)
            in
            let rec run trial attempts =
              if trial >= trials then begin
                Obs.Metrics.bump (Lazy.force Vm.equivalent);
                Equivalent
              end
              else if attempts > 50 then begin
                Obs.Metrics.bump (Lazy.force Vm.rejected_resample);
                Rejected "too many zero-divisor resamples"
              end
              else
                let trial_seed = seed + (trial * 7919) + (attempts * 104729) in
                incr trials_run;
                match timed_trial ~session ~elems ~trial_seed g with
                | Ok () -> run (trial + 1) 0
                | Error msg ->
                    Obs.Log.debug (fun m ->
                        m "verify: candidate refuted on trial %d: %s" trial msg);
                    Obs.Metrics.bump (Lazy.force Vm.not_equivalent);
                    Not_equivalent msg
                | exception Resample ->
                    Obs.Metrics.bump (Lazy.force Vm.resamples);
                    incr resamples;
                    run trial (attempts + 1)
            in
            run 0 0)
  in
  (match journal with
  | None -> ()
  | Some j ->
      let verdict, detail =
        match result with
        | Equivalent -> ("equivalent", "")
        | Not_equivalent m -> ("not_equivalent", m)
        | Rejected m -> ("rejected", m)
      in
      Obs.Journal.emit j ~cand ~typ:"verify.verdict"
        ([
           ("verdict", Obs.Jsonw.Str verdict);
           ("trials_requested", Obs.Jsonw.Int trials);
           ("trials_run", Obs.Jsonw.Int !trials_run);
           ("resamples", Obs.Jsonw.Int !resamples);
           ("elapsed_s", Obs.Jsonw.Float (Unix.gettimeofday () -. t0));
         ]
        @ if detail = "" then [] else [ ("detail", Obs.Jsonw.Str detail) ]));
  { result; trials_run = !trials_run; resamples = !resamples }

let equivalent ?trials ?p ?q ?seed ?cand ?fast ?session ~spec g =
  (equivalent_detailed ?trials ?p ?q ?seed ?cand ?fast ?session ~spec g).result

let error_bound ~k ~trials =
  let k = max 1 k in
  (1.0 -. (1.0 /. float_of_int k)) ** float_of_int trials

let trials_for ~k ~delta =
  let k = max 1 k in
  if k = 1 || delta >= 1.0 then 1
  else
    let per = Stdlib.log (1.0 -. (1.0 /. float_of_int k)) in
    max 1 (int_of_float (Float.ceil (Stdlib.log delta /. per)))

let to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent m -> "NOT equivalent: " ^ m
  | Rejected m -> "rejected: " ^ m
