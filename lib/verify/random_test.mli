(** Probabilistic equivalence verification over finite fields
    (paper §5.2, Table 3).

    Both muGraphs are evaluated on the same random inputs drawn from
    [Z_p × Z_q] with a freshly sampled q-th root of unity per trial.
    Division by a zero component resamples the trial (conditioning on the
    event [E] of Theorem 2); exponentiation maps through
    [omega^{x_q} mod p].

    [Sqrt] and [SiLU] are outside the LAX fragment; they are abstracted
    as opaque uninterpreted functions realized as keyed random oracles
    over the field elements (DESIGN.md §2): graphs applying them to
    equivalent arguments still agree, and disagreeing arguments produce
    fresh pseudo-random values that collide with probability ~1/(p·q).

    By Theorem 3, equivalent LAX muGraphs always pass, and non-equivalent
    ones pass [t] trials with probability at most [(1 - 1/k + o(1/k))^t].

    {b Fast path.} When both moduli fit in 8 bits (the default p = 227,
    q = 113 do), trials run over the packed {!Ffield.Fpacked}
    representation: flat [int array] tensors, table-lookup division, and
    a stateless splitmix oracle. The boxed {!Ffield.Fpair} reference path
    is kept behind [~fast:false] (and is selected automatically for
    larger moduli); both paths sample identical field values, so their
    verdicts — including resample behavior — coincide exactly. *)

type result =
  | Equivalent
  | Not_equivalent of string  (** first mismatch, human-readable *)
  | Rejected of string  (** not LAX / interface mismatch *)

type detail = { result : result; trials_run : int; resamples : int }
(** A verdict plus the trial/resample counts behind it (what the journal
    event records), for tests that assert the two paths behave
    identically. *)

type session
(** A verification session: one spec graph plus a mutex-guarded cache of
    per-trial-seed random inputs and {e spec} outputs. The spec result
    depends only on [(trial_seed, spec, p, q)], so across the many
    candidates of a search run every trial seed evaluates the spec once
    ([verify.spec_cache.hits] counts the sharing). Safe to share across
    domains. *)

val make_session :
  ?p:int -> ?q:int -> ?fast:bool -> spec:Mugraph.Graph.kernel_graph -> unit ->
  session
(** [fast] defaults to true and silently degrades to the boxed reference
    path when the moduli do not fit the packed layout. *)

val session_fast : session -> bool
(** Whether the session actually uses the packed fast path. *)

val warm : unit -> unit
(** Force every lazily-registered verifier metric handle. [Lazy] is not
    domain-safe in OCaml 5; call this from the spawning domain before
    verifying across domains. *)

val equivalent :
  ?trials:int ->
  ?p:int ->
  ?q:int ->
  ?seed:int ->
  ?cand:int ->
  ?fast:bool ->
  ?session:session ->
  spec:Mugraph.Graph.kernel_graph ->
  Mugraph.Graph.kernel_graph ->
  result
(** Default 3 trials with p = 227, q = 113 (the paper's single-test GPU
    configuration uses 1; we iterate per Theorem 3). Checks interface
    compatibility (input names and shapes, output count and shapes) and
    LAX membership first.

    When [session] is given it supplies the spec, field parameters and
    path selection ([p]/[q]/[fast]/[spec] arguments are ignored) and its
    spec-output cache is consulted per trial seed. Otherwise a throwaway
    session is built from the arguments.

    When the global {!Obs.Journal} is enabled, every call emits one
    [verify.verdict] event — verdict, trials actually run, resamples,
    elapsed seconds — tagged with candidate id [cand] (the search
    generator passes the candidate's journal id). *)

val equivalent_detailed :
  ?trials:int ->
  ?p:int ->
  ?q:int ->
  ?seed:int ->
  ?cand:int ->
  ?fast:bool ->
  ?session:session ->
  spec:Mugraph.Graph.kernel_graph ->
  Mugraph.Graph.kernel_graph ->
  detail
(** Same as {!equivalent} but also returns the trial and resample
    counts. *)

val error_bound : k:int -> trials:int -> float
(** Theorem 3's bound on accepting non-equivalent graphs: [(1 - 1/k)^trials]
    where [k] is the number of distinct exponent arguments (use the number
    of terms of the output polynomial as a proxy). *)

val trials_for : k:int -> delta:float -> int
(** Minimal trials so that [error_bound <= delta] — the Ω(k·ln(1/δ))
    of Theorem 3. *)

val to_string : result -> string
