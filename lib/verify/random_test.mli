(** Probabilistic equivalence verification over finite fields
    (paper §5.2, Table 3).

    Both muGraphs are evaluated on the same random inputs drawn from
    [Z_p × Z_q] with a freshly sampled q-th root of unity per trial.
    Division by a zero component resamples the trial (conditioning on the
    event [E] of Theorem 2); exponentiation maps through
    [omega^{x_q} mod p].

    [Sqrt] and [SiLU] are outside the LAX fragment; they are abstracted
    as opaque uninterpreted functions realized as keyed random oracles
    over the field elements (DESIGN.md §2): graphs applying them to
    equivalent arguments still agree, and disagreeing arguments produce
    fresh pseudo-random values that collide with probability ~1/(p·q).

    By Theorem 3, equivalent LAX muGraphs always pass, and non-equivalent
    ones pass [t] trials with probability at most [(1 - 1/k + o(1/k))^t]. *)

type result =
  | Equivalent
  | Not_equivalent of string  (** first mismatch, human-readable *)
  | Rejected of string  (** not LAX / interface mismatch *)

val equivalent :
  ?trials:int ->
  ?p:int ->
  ?q:int ->
  ?seed:int ->
  ?cand:int ->
  spec:Mugraph.Graph.kernel_graph ->
  Mugraph.Graph.kernel_graph ->
  result
(** Default 3 trials with p = 227, q = 113 (the paper's single-test GPU
    configuration uses 1; we iterate per Theorem 3). Checks interface
    compatibility (input names and shapes, output count and shapes) and
    LAX membership first.

    When the global {!Obs.Journal} is enabled, every call emits one
    [verify.verdict] event — verdict, trials actually run, resamples,
    elapsed seconds — tagged with candidate id [cand] (the search
    generator passes the candidate's journal id). *)

val error_bound : k:int -> trials:int -> float
(** Theorem 3's bound on accepting non-equivalent graphs: [(1 - 1/k)^trials]
    where [k] is the number of distinct exponent arguments (use the number
    of terms of the output polynomial as a proxy). *)

val trials_for : k:int -> delta:float -> int
(** Minimal trials so that [error_bound <= delta] — the Ω(k·ln(1/δ))
    of Theorem 3. *)

val to_string : result -> string
