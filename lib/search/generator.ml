open Mugraph

type result = {
  graph : Graph.kernel_graph;
  cost : Gpusim.Cost.graph_cost;
}

type outcome = {
  best : result option;
  verified : result list;
  generated : int;
  stats : Stats.snapshot;
  metrics : Obs.Metrics.snapshot;
  solver : Smtlite.Solver.stats;
  budget_exhausted : bool;
}

type task = T_kernel | T_root of Block_enum.root

(* Run the enumerators over all tasks, collecting deduplicated raw
   candidates. Workers pull tasks from a shared atomic counter. *)
let generate (cfg : Config.t) ~spec ~solver ~stats ~limits =
  let deadline =
    if cfg.Config.time_budget_s > 0.0 then
      Unix.gettimeofday () +. cfg.Config.time_budget_s
    else 0.0
  in
  let roots =
    Block_enum.enumerate_roots cfg ~input_shapes:(Graph.input_shapes spec)
  in
  let tasks = Array.of_list (T_kernel :: List.map (fun r -> T_root r) roots) in
  Obs.Log.debug (fun m ->
      m "generate: %d tasks (%d roots), %d worker(s), budget %.1fs"
        (Array.length tasks) (List.length roots) cfg.Config.num_workers
        cfg.Config.time_budget_s);
  let next = Atomic.make 0 in
  let lock = Mutex.create () in
  let seen = Hashtbl.create 256 in
  let candidates = ref [] in
  let exhausted = Atomic.make false in
  (* Graph-level candidate ids share the journal's id counter with the
     per-extension ids, so `explain` resolves either kind. When the
     journal is off, ids still flow (from a local counter) but no events
     are written. *)
  let journal = Obs.Journal.active () in
  let next_gid = ref 0 in
  let emit g =
    Mutex.lock lock;
    let h = Graph.hash g in
    let dup =
      match Hashtbl.find_all seen h with
      | l -> List.exists (fun g' -> Graph.equal g g') l
    in
    if dup then begin
      Stats.bump_duplicates stats;
      match journal with
      | Some j ->
          Obs.Journal.emit j ~typ:"graph.duplicate"
            [ ("hash", Obs.Jsonw.Int h) ]
      | None -> ()
    end
    else begin
      Hashtbl.add seen h g;
      let gid =
        match journal with
        | Some j ->
            let gid = Obs.Journal.fresh_id j in
            Obs.Journal.emit j ~cand:gid ~typ:"graph.emit"
              [
                ("hash", Obs.Jsonw.Int h);
                ("knodes", Obs.Jsonw.Int (Array.length g.Graph.knodes));
              ];
            gid
        | None ->
            incr next_gid;
            !next_gid
      in
      candidates := (gid, g) :: !candidates
    end;
    Mutex.unlock lock
  in
  let worker () =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= Array.length tasks || Atomic.get exhausted then
        continue_ := false
      else
        try
          match tasks.(i) with
          | T_kernel ->
              Obs.Trace.with_span ~cat:"search" "enumerate.kernel" (fun () ->
                  Kernel_enum.search cfg ~spec ~solver ~stats ~limits
                    ~deadline ~emit)
          | T_root root ->
              Obs.Trace.with_span ~cat:"search"
                ~args:[ ("task", string_of_int i) ]
                "enumerate.root"
                (fun () ->
                  Block_enum.search_root cfg ~spec ~solver ~stats ~limits
                    ~deadline ~emit root)
        with Block_enum.Budget_exhausted -> Atomic.set exhausted true
    done
  in
  let workers = max 1 cfg.Config.num_workers in
  if workers = 1 then worker ()
  else begin
    let domains =
      List.init (min workers (Array.length tasks)) (fun _ ->
          Domain.spawn worker)
    in
    List.iter Domain.join domains
  end;
  (!candidates, Atomic.get exhausted)

let run ?config ?registry ?(verify_trials = 2) ?(verify_all = false)
    ~(device : Gpusim.Device.t) ~spec () =
  let cfg =
    match config with Some c -> c | None -> Config.for_spec spec
  in
  let solver = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  let stats = Stats.create ?registry () in
  let limits = Gpusim.Device.limits device in
  let candidates, budget_exhausted =
    Obs.Trace.with_span ~cat:"search" "enumerate" (fun () ->
        generate cfg ~spec ~solver ~stats ~limits)
  in
  Obs.Log.info (fun m ->
      m "search: %d candidate muGraph(s) generated%s"
        (List.length candidates)
        (if budget_exhausted then " (budget exhausted)" else ""));
  (* Cost first (cheap), then verify cheapest-first with a single random
     test, stopping at the first success unless [verify_all]. *)
  let costed =
    Obs.Trace.with_span ~cat:"search" "cost" (fun () ->
        List.sort
          (fun ((_, _), a) ((_, _), b) ->
            Float.compare a.Gpusim.Cost.total_us b.Gpusim.Cost.total_us)
          (List.map
             (fun (gid, g) -> ((gid, g), Gpusim.Cost.cost device g))
             candidates))
  in
  let finish gid g =
    Stats.bump_verified stats;
    let g =
      if cfg.Config.use_thread_fusion then Thread_fuse.fuse_kernel g else g
    in
    (gid, { graph = g; cost = Gpusim.Cost.cost device g })
  in
  let check ~trials ~cand g =
    Obs.Trace.with_span ~cat:"search" "verify.candidate" (fun () ->
        Verify.Random_test.equivalent ~trials ~cand ~spec g)
  in
  let verified =
    Obs.Trace.with_span ~cat:"search" "verify" (fun () ->
        if verify_all then
          List.filter_map
            (fun ((gid, g), _) ->
              match check ~trials:verify_trials ~cand:gid g with
              | Verify.Random_test.Equivalent -> Some (finish gid g)
              | Verify.Random_test.Not_equivalent _
              | Verify.Random_test.Rejected _ ->
                  None)
            costed
        else
          let rec first = function
            | [] -> []
            | ((gid, g), _) :: rest -> (
                match check ~trials:1 ~cand:gid g with
                | Verify.Random_test.Equivalent -> (
                    (* confirm the winner with the full trial count *)
                    match check ~trials:verify_trials ~cand:gid g with
                    | Verify.Random_test.Equivalent -> [ finish gid g ]
                    | Verify.Random_test.Not_equivalent _
                    | Verify.Random_test.Rejected _ ->
                        first rest)
                | Verify.Random_test.Not_equivalent _
                | Verify.Random_test.Rejected _ ->
                    first rest)
          in
          first costed)
  in
  (* The input program always participates, so the optimizer never
     regresses. The spec carries id -1 (no journal lifecycle of its own). *)
  let spec_result =
    (-1, { graph = spec; cost = Gpusim.Cost.cost device spec })
  in
  let all =
    List.sort
      (fun (_, a) (_, b) ->
        Float.compare a.cost.Gpusim.Cost.total_us b.cost.Gpusim.Cost.total_us)
      (spec_result :: verified)
  in
  (* Cost attribution for the winner: one event per simulated kernel. *)
  (match (Obs.Journal.active (), all) with
  | Some j, (gid, r) :: _ -> Gpusim.Cost.journal_attribution ~cand:gid j r.cost
  | _ -> ());
  {
    best = (match all with [] -> None | (_, r) :: _ -> Some r);
    verified = List.map snd all;
    generated = List.length candidates;
    stats = Stats.snapshot stats;
    metrics = Obs.Metrics.snapshot (Stats.registry stats);
    solver = Smtlite.Solver.stats solver;
    budget_exhausted;
  }

let search_time ?config ?(device = Gpusim.Device.a100) ~spec () =
  let cfg =
    match config with Some c -> c | None -> Config.for_spec spec
  in
  let solver = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  let stats = Stats.create () in
  let limits = Gpusim.Device.limits device in
  let t0 = Unix.gettimeofday () in
  let _, exhausted = generate cfg ~spec ~solver ~stats ~limits in
  (Unix.gettimeofday () -. t0, exhausted)
