open Mugraph

type result = {
  graph : Graph.kernel_graph;
  cost : Gpusim.Cost.graph_cost;
}

type outcome = {
  best : result option;
  verified : result list;
  generated : int;
  stats : Stats.snapshot;
  metrics : Obs.Metrics.snapshot;
  solver : Smtlite.Solver.stats;
  budget_exhausted : bool;
  task_failures : int;
  degraded : string list;
}

type task = T_kernel | T_root of Block_enum.root

let task_label = function
  | T_kernel -> "kernel"
  | T_root _ -> "root"

(* Worker domains inherit the spawner's ambient journal context (the
   serving tier's request id), so a request's id survives the fan-out
   and its search events stay filterable by rid — and the spawner's
   profile phase path, so a worker's task phases land under the
   spawning phase ([search/enumerate/task.kernel]) instead of floating
   at the root of a fresh stack. *)
let spawn_worker f =
  let ctx = Obs.Journal.context () in
  let ppath = Obs.Profile.saved_path () in
  Domain.spawn (fun () ->
      Obs.Journal.set_context ctx;
      Fun.protect
        ~finally:(fun () -> Obs.Journal.set_context [])
        (fun () -> Obs.Profile.with_base ppath f))

(* Run the enumerators over all tasks, collecting deduplicated raw
   candidates. Tasks seed a work-stealing pool (one Chase–Lev deque per
   worker domain); below [steal_depth_cutoff] the enumerators publish
   subtree continuations back onto it, so one deep root no longer
   serializes the search while the other domains idle.

   Each item (a task's root or one of its spawned subtrees) runs
   quarantined: an unexpected exception is journaled as cand.crash (with
   backtrace) and counted, and the worker moves on. Only past
   [cfg.max_task_failures] crashes does the whole search abort — and
   even then candidates already emitted survive, because emission goes
   through the shared accumulator as graphs are found, not at task
   completion. A task advances the resume cursor only when its root and
   every spawned subtree finished cleanly. *)
let n_shards = 16 (* power of two; shard = hash low bits *)

let generate (cfg : Config.t) ~spec ~solver ~stats ~limits ~budget ?checkpoint
    ?(piece = 0) ?on_pool () =
  Printexc.record_backtrace true;
  let roots =
    Block_enum.enumerate_roots cfg ~input_shapes:(Graph.input_shapes spec)
  in
  let tasks = Array.of_list (T_kernel :: List.map (fun r -> T_root r) roots) in
  let n_tasks = Array.length tasks in
  let skip =
    match checkpoint with
    | Some ck ->
        let done_ = Checkpoint.completed ck ~piece in
        let a = Array.make n_tasks false in
        List.iter (fun i -> if i < Array.length a then a.(i) <- true) done_;
        a
    | None -> Array.make n_tasks false
  in
  Obs.Log.debug (fun m ->
      m "generate: %d tasks (%d roots, %d resumed), %d worker(s)"
        n_tasks (List.length roots)
        (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 skip)
        cfg.Config.num_workers);
  let exhausted = Atomic.make false in
  let failures = Atomic.make 0 in
  let reg = Stats.registry stats in
  let c_crash =
    Obs.Metrics.counter reg ~help:"enumeration tasks that crashed and were quarantined"
      "search.task.crashes"
  in
  (* Dedup sharded by graph hash: emission from different subtrees only
     contends when two candidates land in the same shard, instead of
     every worker serializing on one table mutex. *)
  let shards =
    Array.init n_shards (fun _ ->
        (Mutex.create (), Hashtbl.create 64, ref []))
  in
  (* Graph-level candidate ids share the journal's id counter with the
     per-extension ids, so `explain` resolves either kind. When the
     journal is off, ids still flow (from a shared counter) but no events
     are written. *)
  let journal = Obs.Journal.active () in
  let next_gid = Atomic.make 0 in
  (* Resume: preload previously-emitted candidates so re-run partial
     tasks deduplicate against them instead of double-counting. Runs
     before any worker exists, so plain updates are safe. *)
  (match checkpoint with
  | Some ck ->
      List.iter
        (fun (gid, g) ->
          let h = Graph.hash g in
          let _, seen, cands = shards.(h land (n_shards - 1)) in
          Hashtbl.add seen h g;
          cands := (gid, g) :: !cands;
          if gid > Atomic.get next_gid then Atomic.set next_gid gid)
        (Checkpoint.candidates ck ~piece)
  | None -> ());
  let emit g =
    (* Hash outside the lock: hashing is the expensive part of dedup, and
       computing it inside the critical section serialized all workers on
       it. It also picks the shard. *)
    let h = Graph.hash g in
    let lock, seen, cands = shards.(h land (n_shards - 1)) in
    Mutex.lock lock;
    let dup = List.exists (fun g' -> Graph.equal g g') (Hashtbl.find_all seen h) in
    if dup then begin
      Stats.bump_duplicates stats;
      match journal with
      | Some j ->
          Obs.Journal.emit j ~typ:"graph.duplicate"
            [ ("hash", Obs.Jsonw.Int h) ]
      | None -> ()
    end
    else begin
      Hashtbl.add seen h g;
      let gid =
        match journal with
        | Some j ->
            let gid = Obs.Journal.fresh_id j in
            Obs.Journal.emit j ~cand:gid ~typ:"graph.emit"
              [
                ("hash", Obs.Jsonw.Int h);
                ("knodes", Obs.Jsonw.Int (Array.length g.Graph.knodes));
              ];
            gid
        | None -> 1 + Atomic.fetch_and_add next_gid 1
      in
      cands := (gid, g) :: !cands;
      match checkpoint with
      | Some ck -> Checkpoint.add_candidate ck ~piece ~gid g
      | None -> ()
    end;
    Mutex.unlock lock
  in
  let record_crash i exn bt =
    let n = 1 + Atomic.fetch_and_add failures 1 in
    Obs.Metrics.add c_crash 1;
    Obs.Budget.note budget "worker.crash";
    let msg = Printexc.to_string exn in
    Obs.Log.warn (fun m ->
        m "task %d (%s) crashed (%d/%d tolerated): %s" i
          (task_label tasks.(i)) n cfg.Config.max_task_failures msg);
    (match journal with
    | Some j ->
        Obs.Journal.emit j ~typ:"cand.crash"
          [
            ("task", Obs.Jsonw.Int i);
            ("kind", Obs.Jsonw.Str (task_label tasks.(i)));
            ("exn", Obs.Jsonw.Str msg);
            ("backtrace", Obs.Jsonw.Str (Printexc.raw_backtrace_to_string bt));
            ("failures", Obs.Jsonw.Int n);
          ]
    | None -> ());
    if n > cfg.Config.max_task_failures then begin
      Obs.Budget.note budget "worker.abort";
      Obs.Log.warn (fun m ->
          m "aborting search: %d task crashes exceed max_task_failures=%d" n
            cfg.Config.max_task_failures);
      Atomic.set exhausted true
    end
  in
  let workers = max 1 cfg.Config.num_workers in
  let pool = Deque.Pool.create ~registry:reg ~workers () in
  (match on_pool with Some f -> f pool | None -> ());
  (* Per-task completion accounting at item granularity: a task's
     pending count covers its root item plus every spawned subtree, and
     only a clean drain to zero advances the resume cursor. A crashed or
     budget-cut item taints its task, so resume re-runs it (emitted
     candidates are preloaded, so the re-run deduplicates instead of
     double-counting). *)
  let t_pending = Array.init n_tasks (fun _ -> Atomic.make 0) in
  let t_bad = Array.init n_tasks (fun _ -> Atomic.make false) in
  let item_done i =
    if Atomic.fetch_and_add t_pending.(i) (-1) = 1 then
      if not (Atomic.get t_bad.(i)) then
        match checkpoint with
        | Some ck -> Checkpoint.task_done ck ~piece ~task:i ~tasks_total:n_tasks
        | None -> ()
  in
  let run_body i body =
    if Atomic.get exhausted then Atomic.set t_bad.(i) true
    else
      try body () with
      | Block_enum.Budget_exhausted ->
          Atomic.set t_bad.(i) true;
          Atomic.set exhausted true
      | exn ->
          Atomic.set t_bad.(i) true;
          record_crash i exn (Printexc.get_raw_backtrace ())
  in
  let task_phase i =
    match tasks.(i) with T_kernel -> "task.kernel" | T_root _ -> "task.root"
  in
  (* [spawn] handed to the enumerators for task [i]: publish a subtree
     continuation onto the calling worker's deque. The pending bump
     happens before the push — the spawning item is itself still pending,
     so the count can never drain to zero with this subtree in flight. *)
  let rec spawn_for i k =
    Atomic.incr t_pending.(i);
    if Deque.Pool.spawn pool (fun () -> subtree_item i k) then true
    else begin
      Atomic.decr t_pending.(i);
      false
    end
  and subtree_item i k =
    Fun.protect
      ~finally:(fun () -> item_done i)
      (fun () ->
        run_body i (fun () -> Obs.Profile.with_phase (task_phase i) k))
  in
  let root_item i () =
    Fun.protect
      ~finally:(fun () -> item_done i)
      (fun () ->
        run_body i (fun () ->
            match tasks.(i) with
            | T_kernel ->
                Obs.Profile.with_phase "task.kernel" (fun () ->
                    Obs.Trace.with_span ~cat:"search" "enumerate.kernel"
                      (fun () ->
                        Kernel_enum.search cfg ~spec ~solver ~stats ~limits
                          ~budget ~spawn:(spawn_for i) ~emit ()))
            | T_root root ->
                Obs.Profile.with_phase "task.root" (fun () ->
                    Obs.Trace.with_span ~cat:"search"
                      ~args:[ ("task", string_of_int i) ]
                      "enumerate.root"
                      (fun () ->
                        Block_enum.search_root cfg ~spec ~solver ~stats ~limits
                          ~budget ~spawn:(spawn_for i) ~emit root))))
  in
  for i = 0 to n_tasks - 1 do
    if not skip.(i) then begin
      Atomic.set t_pending.(i) 1;
      Deque.Pool.seed pool (root_item i)
    end
  done;
  let stop () = Atomic.get exhausted in
  let run_item f = f () in
  if workers = 1 then Deque.Pool.run_worker pool ~id:0 ~stop ~run:run_item
  else begin
    let domains =
      List.init workers (fun id ->
          spawn_worker (fun () ->
              Deque.Pool.run_worker pool ~id ~stop ~run:run_item))
    in
    (* Salvage-then-report: join every domain before deciding the run's
       fate, so a crash that escaped one worker's quarantine (e.g. in the
       loop itself) never discards candidates other workers emitted. *)
    let escaped = ref None in
    List.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception exn -> if !escaped = None then escaped := Some exn)
      domains;
    match !escaped with
    | Some exn ->
        let n = 1 + Atomic.fetch_and_add failures 1 in
        Obs.Metrics.add c_crash 1;
        Obs.Budget.note budget "worker.crash";
        Obs.Log.warn (fun m ->
            m "worker domain died outside task quarantine (%d total): %s" n
              (Printexc.to_string exn))
    | None -> ()
  end;
  let candidates =
    Array.fold_left (fun acc (_, _, cands) -> !cands @ acc) [] shards
  in
  (candidates, Atomic.get exhausted, Atomic.get failures)

let run ?config ?registry ?(verify_trials = 2) ?(verify_all = false) ?budget
    ?checkpoint ?(piece = 0) ?progress ?prune_persist
    ~(device : Gpusim.Device.t) ~spec () =
  Obs.Profile.with_phase "search" @@ fun () ->
  let cfg =
    match config with Some c -> c | None -> Config.for_spec spec
  in
  let budget =
    match budget with Some b -> b | None -> Budget.of_config cfg
  in
  let solver = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  (* Persistent prune cache: the hook attaches storage (and loads any
     prior envelope) before the first query; the generator flushes the
     final batch at finalize. *)
  (match prune_persist with Some f -> f solver | None -> ());
  let stats = Stats.create ?registry () in
  let limits = Gpusim.Device.limits device in
  (* Live progress: wire in the funnel counters and seed the best-known
     cost with the spec's (the search never regresses below it). *)
  (match progress with
  | Some p ->
      Progress.attach_stats p stats;
      Progress.note_best p (Gpusim.Cost.cost device spec).Gpusim.Cost.total_us;
      Progress.set_phase p "enumerate"
  | None -> ());
  let on_pool pool =
    match progress with
    | Some p -> Progress.attach_stolen p (fun () -> Deque.Pool.steals pool)
    | None -> ()
  in
  let candidates, budget_exhausted, task_failures =
    Obs.Profile.with_phase "enumerate" (fun () ->
        Obs.Trace.with_span ~cat:"search" "enumerate" (fun () ->
            generate cfg ~spec ~solver ~stats ~limits ~budget ?checkpoint
              ~piece ~on_pool ()))
  in
  (* Branching factor for the prune-savings model: attempted extensions
     per accepted (recursed-into) prefix. *)
  (let s = Stats.snapshot stats in
   let accepted =
     s.Stats.expanded - s.Stats.shape_rejected - s.Stats.memory_rejected
     - s.Stats.pruned_abstract - s.Stats.canonical_rejected
     - s.Stats.duplicates
   in
   if s.Stats.expanded > 0 then
     Obs.Profile.note_branching
       (float_of_int s.Stats.expanded /. float_of_int (max 1 accepted)));
  Obs.Log.info (fun m ->
      m "search: %d candidate muGraph(s) generated%s%s"
        (List.length candidates)
        (if budget_exhausted then " (budget exhausted)" else "")
        (if task_failures = 0 then ""
         else Printf.sprintf " (%d task crash(es) quarantined)" task_failures));
  (* Cost first (cheap), then verify cheapest-first with a single random
     test, stopping at the first success unless [verify_all]. Cost ties
     break on the graph hash and then structurally, so the verification
     order — and therefore the winner — is independent of emission order
     (which varies with the number of enumeration workers and the steal
     schedule). The structural fallback matters: [Graph.hash] only
     traverses a bounded prefix, so distinct graphs can collide. *)
  (match progress with Some p -> Progress.set_phase p "cost" | None -> ());
  let costed =
    Obs.Profile.with_phase "cost" @@ fun () ->
    Obs.Trace.with_span ~cat:"search" "cost" (fun () ->
        List.map
          (fun (x, c, _) -> (x, c))
          (List.sort
             (fun ((_, ga), a, ha) ((_, gb), b, hb) ->
               let c =
                 Float.compare a.Gpusim.Cost.total_us b.Gpusim.Cost.total_us
               in
               if c <> 0 then c
               else
                 let hc = Int.compare ha hb in
                 if hc <> 0 then hc else Stdlib.compare ga gb)
             (List.map
                (fun (gid, g) ->
                  ((gid, g), Gpusim.Cost.cost device g, Graph.hash g))
                candidates)))
  in
  let finish gid g =
    Stats.bump_verified stats;
    let g =
      if cfg.Config.use_thread_fusion then Thread_fuse.fuse_kernel g else g
    in
    let cost = Gpusim.Cost.cost device g in
    (match progress with
    | Some p -> Progress.note_best p cost.Gpusim.Cost.total_us
    | None -> ());
    (gid, { graph = g; cost })
  in
  let journal = Obs.Journal.active () in
  (* One verification session for the whole run: all candidates share the
     per-trial-seed random inputs and spec outputs (the spec result
     depends only on the trial seed), and the config flag selects the
     packed fast path or the boxed reference path. *)
  let session =
    Obs.Profile.with_phase "verify.setup" (fun () ->
        Verify.Random_test.make_session ~fast:cfg.Config.verify_fast_path ~spec
          ())
  in
  (* Verification runs quarantined too: a verifier crash on one candidate
     rejects that candidate (journaled as cand.crash) instead of sinking
     the whole run. *)
  let check ~trials ~cand g =
    Obs.Profile.with_phase "candidate" @@ fun () ->
    Obs.Trace.with_span ~cat:"search" "verify.candidate" (fun () ->
        match Verify.Random_test.equivalent ~trials ~cand ~session ~spec g with
        | v -> v
        | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            Obs.Budget.note budget "verify.crash";
            Obs.Log.warn (fun m ->
                m "verifier crashed on candidate %d: %s" cand
                  (Printexc.to_string exn));
            (match journal with
            | Some j ->
                Obs.Journal.emit j ~cand ~typ:"cand.crash"
                  [
                    ("phase", Obs.Jsonw.Str "verify");
                    ("exn", Obs.Jsonw.Str (Printexc.to_string exn));
                    ( "backtrace",
                      Obs.Jsonw.Str (Printexc.raw_backtrace_to_string bt) );
                  ]
            | None -> ());
            Verify.Random_test.Rejected "verifier crash")
  in
  (* The deadline applies to verification as well as enumeration: a run
     that spent its whole budget enumerating still reports best-so-far
     (the spec at worst) instead of overshooting in the verify loop. *)
  let out_of_time () =
    if Obs.Budget.over_deadline budget || Obs.Budget.cancelled budget then begin
      Obs.Budget.note budget "deadline";
      true
    end
    else false
  in
  (* Sequential reference loop, and a parallel version for
     [num_workers > 1]: indices into the cost-sorted array are handed out
     through an atomic dispenser (so claims happen in cost order) and, in
     first-winner mode, a found-winner atomic holds the minimal passing
     index. A worker only skips an index when a strictly cheaper winner
     is already confirmed, so the minimal passing index is always fully
     processed — the parallel winner equals the sequential one. *)
  let sequential () =
    if verify_all then
      let rec all acc = function
        | [] -> List.rev acc
        | _ :: _ when out_of_time () -> List.rev acc
        | ((gid, g), _) :: rest -> (
            match check ~trials:verify_trials ~cand:gid g with
            | Verify.Random_test.Equivalent -> all (finish gid g :: acc) rest
            | Verify.Random_test.Not_equivalent _
            | Verify.Random_test.Rejected _ ->
                all acc rest)
      in
      all [] costed
    else
      let rec first = function
        | [] -> []
        | _ :: _ when out_of_time () -> []
        | ((gid, g), _) :: rest -> (
            match check ~trials:1 ~cand:gid g with
            | Verify.Random_test.Equivalent -> (
                (* confirm the winner with the full trial count *)
                match check ~trials:verify_trials ~cand:gid g with
                | Verify.Random_test.Equivalent -> [ finish gid g ]
                | Verify.Random_test.Not_equivalent _
                | Verify.Random_test.Rejected _ ->
                    first rest)
            | Verify.Random_test.Not_equivalent _
            | Verify.Random_test.Rejected _ ->
                first rest)
      in
      first costed
  in
  let parallel vworkers =
    (* Lazy metric handles are not domain-safe; force them here, in the
       spawning domain. *)
    Verify.Random_test.warm ();
    let arr = Array.of_list costed in
    let n = Array.length arr in
    let next = Atomic.make 0 in
    let join domains =
      List.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception exn ->
              Obs.Budget.note budget "verify.crash";
              Obs.Log.warn (fun m ->
                  m "verify worker died outside candidate quarantine: %s"
                    (Printexc.to_string exn)))
        domains
    in
    if verify_all then begin
      let passed = Array.make n false in
      let worker () =
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || out_of_time () then continue_ := false
          else
            let (gid, g), _ = arr.(i) in
            match check ~trials:verify_trials ~cand:gid g with
            | Verify.Random_test.Equivalent -> passed.(i) <- true
            | Verify.Random_test.Not_equivalent _
            | Verify.Random_test.Rejected _ ->
                ()
        done
      in
      join (List.init vworkers (fun _ -> spawn_worker worker));
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if passed.(i) then
          let (gid, g), _ = arr.(i) in
          acc := finish gid g :: !acc
      done;
      !acc
    end
    else begin
      let winner = Atomic.make max_int in
      let worker () =
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || i > Atomic.get winner || out_of_time () then
            continue_ := false
          else
            let (gid, g), _ = arr.(i) in
            match check ~trials:1 ~cand:gid g with
            | Verify.Random_test.Equivalent -> (
                match check ~trials:verify_trials ~cand:gid g with
                | Verify.Random_test.Equivalent ->
                    (* CAS-min: keep the cheapest confirmed index. All
                       indices below it were already claimed, so no
                       cheaper candidate can appear later. *)
                    let rec claim () =
                      let w = Atomic.get winner in
                      if i < w && not (Atomic.compare_and_set winner w i)
                      then claim ()
                    in
                    claim ();
                    continue_ := false
                | Verify.Random_test.Not_equivalent _
                | Verify.Random_test.Rejected _ ->
                    ())
            | Verify.Random_test.Not_equivalent _
            | Verify.Random_test.Rejected _ ->
                ()
        done
      in
      join (List.init vworkers (fun _ -> spawn_worker worker));
      match Atomic.get winner with
      | w when w < n ->
          let (gid, g), _ = arr.(w) in
          [ finish gid g ]
      | _ -> []
    end
  in
  (match progress with Some p -> Progress.set_phase p "verify" | None -> ());
  let verified =
    Obs.Profile.with_phase "verify" @@ fun () ->
    Obs.Trace.with_span ~cat:"search" "verify" (fun () ->
        let vworkers =
          min (max 1 cfg.Config.num_workers) (List.length costed)
        in
        if vworkers <= 1 then sequential () else parallel vworkers)
  in
  (match progress with Some p -> Progress.set_phase p "finalize" | None -> ());
  Obs.Profile.with_phase "finalize" @@ fun () ->
  (* The input program always participates, so the optimizer never
     regresses. The spec carries id -1 (no journal lifecycle of its own). *)
  let spec_result =
    (-1, { graph = spec; cost = Gpusim.Cost.cost device spec })
  in
  let all =
    List.sort
      (fun (_, a) (_, b) ->
        Float.compare a.cost.Gpusim.Cost.total_us b.cost.Gpusim.Cost.total_us)
      (spec_result :: verified)
  in
  (* Cost attribution for the winner: one event per simulated kernel. *)
  (match (Obs.Journal.active (), all) with
  | Some j, (gid, r) :: _ -> Gpusim.Cost.journal_attribution ~cand:gid j r.cost
  | _ -> ());
  (* Complete the persistent prune cache even when the last write-behind
     batch was short — a warm restart should see every decided query. *)
  Smtlite.Solver.flush_persist solver;
  (match checkpoint with
  | Some ck ->
      (* solver cache stats ride along in the checkpoint meta so a
         resumed run's report can account for pre-interrupt work *)
      let sv = Smtlite.Solver.stats solver in
      Checkpoint.set_meta ck
        [
          ( "solver",
            Obs.Jsonw.Obj
              [
                ("queries", Obs.Jsonw.Int sv.Smtlite.Solver.queries);
                ("cache_hits", Obs.Jsonw.Int sv.Smtlite.Solver.cache_hits);
                ("accepted", Obs.Jsonw.Int sv.Smtlite.Solver.accepted);
                ("solve_time_s", Obs.Jsonw.Float sv.Smtlite.Solver.solve_time_s);
                ("disk_hits", Obs.Jsonw.Int sv.Smtlite.Solver.disk_hits);
                ("disk_entries", Obs.Jsonw.Int sv.Smtlite.Solver.disk_entries);
              ] );
        ];
      Checkpoint.save ck
  | None -> ());
  {
    best = (match all with [] -> None | (_, r) :: _ -> Some r);
    verified = List.map snd all;
    generated = List.length candidates;
    stats = Stats.snapshot stats;
    metrics = Obs.Metrics.snapshot (Stats.registry stats);
    solver = Smtlite.Solver.stats solver;
    budget_exhausted;
    task_failures;
    degraded = Obs.Budget.reasons budget;
  }

let search_time ?config ?(device = Gpusim.Device.a100) ~spec () =
  let cfg =
    match config with Some c -> c | None -> Config.for_spec spec
  in
  let solver = Smtlite.Solver.create ~target:(Abstract.output_exprs spec) in
  let stats = Stats.create () in
  let limits = Gpusim.Device.limits device in
  let budget = Budget.of_config cfg in
  let t0 = Unix.gettimeofday () in
  let _, exhausted, _ =
    generate cfg ~spec ~solver ~stats ~limits ~budget ()
  in
  (Unix.gettimeofday () -. t0, exhausted)
