(** Live-progress state shared between an in-flight search and its
    observers (the serving tier's progress streaming). Lock-free: the
    generator writes from worker domains, an observer thread polls
    concurrently. [nodes_expanded] is monotone across reads because it
    is read straight from the search's exact funnel counters. *)

type t

val create : unit -> t

val set_phase : t -> string -> unit
(** The coarse search phase ([enumerate] / [cost] / [verify] / [done]). *)

val phase : t -> string

val attach_stats : t -> Stats.t -> unit
(** Wire the search's funnel counters in; until then the view reports
    zero nodes. *)

val note_best : t -> float -> unit
(** Lower the best-known candidate cost (µs); min-merged, so racing
    workers cannot regress it. *)

val attach_stolen : t -> (unit -> int) -> unit
(** Wire in the work-stealing pool's successful-steal counter; until
    then the view reports zero steals. *)

type view = {
  v_phase : string;
  v_nodes_expanded : int;
  v_candidates : int;
  v_verified : int;
  v_best_us : float option;  (** [None] until a cost is known *)
  v_tasks_stolen : int;  (** successful work steals so far *)
}

val view : t -> view
