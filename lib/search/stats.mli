(** Search statistics: how many extensions the enumerators attempted, and
    why candidates were discarded. Thread-safe; shared across search
    workers.

    Counters are backed by a named {!Obs.Metrics} registry (one fresh
    registry per search unless the caller supplies one), so the same
    numbers are available both as this fixed [snapshot] record — the
    stable programmatic interface — and through the registry's generic
    snapshot/table/JSON machinery, alongside any extra metrics the
    enumerators register dynamically (per-depth histograms, auxiliary
    rejection counters).

    The funnel invariant, by construction (every attempted extension is
    counted once, and every rejection and every candidate corresponds to
    a distinct attempt):

    [expanded >= shape_rejected + memory_rejected + pruned_abstract +
     canonical_rejected + candidates] *)

type snapshot = {
  expanded : int;
      (** extensions attempted by the enumerators (one per operator
          instantiation considered against a prefix) *)
  shape_rejected : int;  (** shape inference failed *)
  memory_rejected : int;  (** exceeded the shared-memory limit *)
  pruned_abstract : int;  (** rejected by the subexpression check *)
  canonical_rejected : int;  (** violated the canonical rank order *)
  candidates : int;  (** completing prefixes submitted to verification *)
  verified : int;
  duplicates : int;  (** recomputed an existing value or muGraph *)
  elapsed_s : float;
}

type t

val create : ?registry:Obs.Metrics.t -> unit -> t
(** Registers the funnel counters (named [search.*]) in [registry]
    (default: a fresh registry, so concurrent searches do not share).
    Passing a shared registry accumulates across searches. *)

val registry : t -> Obs.Metrics.t
(** The backing registry — enumerators register their own histograms
    here, and callers can render everything with
    [Obs.Metrics.(to_table (snapshot (registry t)))]. *)

val bump_expanded : t -> unit
val bump_shape : t -> unit
val bump_memory : t -> unit
val bump_pruned : t -> unit
val bump_canonical : t -> unit
val bump_candidates : t -> unit
val bump_verified : t -> unit
val bump_duplicates : t -> unit
val expanded : t -> int
(** Current value of the expanded counter (the node-budget check). *)

val snapshot : t -> snapshot
val to_string : snapshot -> string

val funnel_ok : snapshot -> bool
(** Whether the funnel invariant above holds. *)
