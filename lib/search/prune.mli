(** The shared abstract-expression prune check (paper §5): one site for
    the subexpression test, its funnel counter, its per-depth histogram
    and its journal reject record, used by both the kernel-level and the
    block-level enumerator so the two levels can never account for the
    same rejection differently. *)

val check : Config.t -> solver:Smtlite.Solver.t -> Absexpr.Nf.t -> bool
(** [check cfg ~solver nf] is [true] when abstract pruning is enabled and
    [nf] fails the subexpression check against the goal outputs. *)

val journal_fields : Absexpr.Nf.t -> (string * Obs.Jsonw.t) list
(** The journal payload of a [pruned_abstract] reject (the failing
    expression and the name of the failed check). *)

val reject_if_pruned :
  Config.t ->
  solver:Smtlite.Solver.t ->
  stats:Stats.t ->
  hist:Obs.Metrics.histogram ->
  depth:int ->
  jreject:(string -> (string * Obs.Jsonw.t) list -> unit) ->
  journal_live:bool ->
  timer:Obs.Profile.timer ->
  rule:Obs.Profile.rule_handle ->
  remaining:int ->
  Absexpr.Nf.t ->
  bool
(** Run the check; on failure bump the [pruned_abstract] funnel counter,
    observe [hist] at [depth], emit the reject via [jreject] (with the
    full payload only when [journal_live]) and return [true]. The
    check's wall time accumulates into [timer] (flushed by the caller
    once per task) and a cut fires [rule] with [remaining] operator
    slots below it — both inert when the profiler is disabled. *)
