(* The abstract-expression prune check (paper §5: a prefix survives only
   if its abstract expression is a subexpression of some goal output
   under the axioms A_eq ∪ A_sub), shared by the kernel-level and
   block-level enumerators.

   Both enumerators used to inline the same check + stats bump + journal
   event; this module is the single site, so the funnel counter, the
   per-depth histogram and the journal reject record can never drift
   apart between levels. *)

let check (cfg : Config.t) ~solver nf =
  cfg.Config.use_abstract_pruning
  && not (Smtlite.Solver.check_subexpr_nf solver nf)

let journal_fields nf =
  [
    ("expr", Obs.Jsonw.Str (Absexpr.Nf.to_string nf));
    ("failed_check", Obs.Jsonw.Str "subexpr(E(G), E_O) under A_eq ∪ A_sub");
  ]

(* [reject_if_pruned] returns [true] when the prefix must be discarded,
   after bumping the funnel counter, observing the depth histogram and
   emitting the journal reject through [jreject]. [journal_live] keeps
   the Jsonw field construction off the hot path when no journal is
   installed (the enumerators' [jreject] wrappers drop the event
   anyway).

   Profiling rides the same single site: [timer] accumulates the check's
   wall time (batched — the enumerator flushes it once per task), [rule]
   records the fire with [remaining] operator slots below the cut, from
   which the profile estimates the subtree the rule saved. Both are
   inert no-ops when the ambient profiler is off. *)
let reject_if_pruned (cfg : Config.t) ~solver ~stats ~hist ~depth
    ~(jreject : string -> (string * Obs.Jsonw.t) list -> unit) ~journal_live
    ~(timer : Obs.Profile.timer) ~(rule : Obs.Profile.rule_handle) ~remaining
    nf =
  if Obs.Profile.timed timer (fun () -> check cfg ~solver nf) then begin
    Stats.bump_pruned stats;
    Obs.Metrics.observe hist (float_of_int depth);
    Obs.Profile.fire rule ~remaining;
    jreject "pruned_abstract" (if journal_live then journal_fields nf else []);
    true
  end
  else false
