(* Search-facing alias for the shared budget type (ISSUE names it
   Search.Budget; the implementation lives in Obs so the ILP and layout
   optimizer — which cannot depend on search — can poll the same
   deadline). *)

include Obs.Budget

let of_config (c : Config.t) =
  create ~time_budget_s:c.Config.time_budget_s ~node_budget:c.Config.node_budget
    ()
