open Tensor
open Mugraph

type root = {
  grid : int array;
  forloop : int array;
  initers : (Dmap.imap * Dmap.fmap) array;
}

type emit = Graph.kernel_graph -> unit

exception Budget_exhausted

(* ------------------------------------------------------------------ *)
(* Root enumeration                                                     *)
(* ------------------------------------------------------------------ *)

(* All target vectors of length [count] over dims of [shape] + Replica. *)
let rec target_vectors count rank =
  if count = 0 then [ [] ]
  else
    let rest = target_vectors (count - 1) rank in
    List.concat_map
      (fun t -> List.map (fun v -> t :: v) rest)
      (Dmap.Replica :: List.init rank (fun d -> Dmap.Dim d))

let enumerate_roots (cfg : Config.t) ~input_shapes =
  let shapes = Array.of_list input_shapes in
  let n_inputs = Array.length shapes in
  List.concat_map
    (fun grid ->
      List.concat_map
        (fun forloop ->
          (* per-input valid (imap, fmap) pairs *)
          let per_input =
            Array.to_list
              (Array.map
                 (fun shape ->
                   let rank = Shape.rank shape in
                   List.concat_map
                     (fun im ->
                       let imap = Array.of_list im in
                       if not (Dmap.valid_imap imap ~grid ~shape) then []
                       else
                         let sliced = Dmap.slice_shape imap ~counts:grid shape in
                         List.filter_map
                           (fun fm ->
                             let fmap = Array.of_list fm in
                             if Dmap.valid_fmap fmap ~forloop ~shape:sliced
                             then Some (imap, fmap)
                             else None)
                           (target_vectors (Array.length forloop) rank))
                     (target_vectors (Array.length grid) rank))
                 shapes)
          in
          (* cartesian product across inputs *)
          let rec product = function
            | [] -> [ [] ]
            | opts :: rest ->
                let tails = product rest in
                List.concat_map
                  (fun o -> List.map (fun t -> o :: t) tails)
                  opts
          in
          product per_input
          |> List.filter_map (fun assignment ->
                 let initers = Array.of_list assignment in
                 (* every grid dim and loop dim must partition some input *)
                 let covered proj count =
                   List.init count (fun k ->
                       Array.exists
                         (fun (imap, fmap) ->
                           match proj (imap, fmap) k with
                           | Dmap.Dim _ -> true
                           | Dmap.Replica -> false)
                         initers)
                   |> List.for_all Fun.id
                 in
                 if
                   covered (fun (imap, _) k -> imap.(k)) (Array.length grid)
                   && covered
                        (fun (_, fmap) k -> fmap.(k))
                        (Array.length forloop)
                 then Some { grid; forloop; initers }
                 else None))
        cfg.Config.forloop_candidates)
    cfg.Config.grid_candidates
  |> fun roots ->
  ignore n_inputs;
  roots

(* ------------------------------------------------------------------ *)
(* DFS over block-graph prefixes                                        *)
(* ------------------------------------------------------------------ *)

type phase = Body | Inv | Post

type entry = {
  bop : Graph.block_op;
  bins : int list;
  shape : Shape.t;
  nf : Absexpr.Nf.t;  (** abstract expression, pre-normalized *)
  phase : phase;
  bytes : int;
}

type state = {
  entries : entry list;  (** reversed *)
  count : int;
  ops : int;
  smem : int;
  last_rank : Canon.rank option;
  consumed : int;  (** bitmask: entry i has a consumer *)
}

let entry_at st i = List.nth st.entries (st.count - 1 - i)

let combined_phase phases =
  if List.exists (fun p -> p = Post) phases then
    if List.for_all (fun p -> p <> Body) phases then Some Post else None
  else if List.for_all (fun p -> p = Inv) phases then Some Inv
  else Some Body

(* Instantiate menu entries against a concrete input shape (Sum becomes a
   full reduction along each dimension). *)
let instantiate_unary_like menu shape =
  List.concat_map
    (fun p ->
      match p with
      | Op.Sum _ ->
          List.init (Shape.rank shape) (fun d ->
              if shape.(d) > 1 then
                [ Op.Sum { dim = d; group = shape.(d) } ]
              else [])
          |> List.concat
      | Op.Unary _ -> [ p ]
      | _ -> [])
    menu

let binary_ops menu =
  List.filter_map
    (fun p -> match p with Op.Binary _ -> Some p | _ -> None)
    menu

let has_matmul menu = List.exists (fun p -> p = Op.Matmul) menu

(* Profiler handles batch counts in per-handle mutable state, so they are
   owned by one executing domain: a subtree continuation that may be
   stolen gets a fresh set on whatever domain runs it, flushed when the
   subtree finishes. *)
type prof = {
  ptimer : Obs.Profile.timer;
  r_shape : Obs.Profile.rule_handle;
  r_mem : Obs.Profile.rule_handle;
  r_dup : Obs.Profile.rule_handle;
  r_canon : Obs.Profile.rule_handle;
  r_pruned : Obs.Profile.rule_handle;
  r_phase : Obs.Profile.rule_handle;
  r_dangling : Obs.Profile.rule_handle;
}

let fresh_prof () =
  {
    ptimer = Obs.Profile.timer "prune.abstract";
    r_shape = Obs.Profile.prune_rule "shape";
    r_mem = Obs.Profile.prune_rule "memory";
    r_dup = Obs.Profile.prune_rule "duplicate";
    r_canon = Obs.Profile.prune_rule "canonical";
    r_pruned = Obs.Profile.prune_rule "pruned_abstract";
    r_phase = Obs.Profile.prune_rule "phase";
    r_dangling = Obs.Profile.prune_rule "dangling";
  }

let flush_prof pf =
  Obs.Profile.flush_timer pf.ptimer;
  List.iter Obs.Profile.flush_rule
    [
      pf.r_shape;
      pf.r_mem;
      pf.r_dup;
      pf.r_canon;
      pf.r_pruned;
      pf.r_phase;
      pf.r_dangling;
    ]

let search_root (cfg : Config.t) ~spec ~solver ~stats ~limits ~budget
    ?(spawn = fun _ -> false) ~(emit : emit) root =
  let input_shapes = Graph.input_shapes spec in
  let input_names = Graph.input_names spec in
  let elt_bytes = limits.Memory.elt_bytes in
  (* Flight recorder, resolved once per root: every attempted extension
     gets a candidate id and an expand event, every rejection names its
     reason. One atomic load per attempt when journaling is off, and no
     Jsonw values are built on the [None] path. *)
  let journal = Obs.Journal.active () in
  let jexpand ~depth op bins =
    match journal with
    | Some j ->
        let id = Obs.Journal.fresh_id j in
        Obs.Journal.emit j ~cand:id ~typ:"cand.expand"
          [
            ("level", Obs.Jsonw.Str "block");
            ("depth", Obs.Jsonw.Int depth);
            ("op", Obs.Jsonw.Str op);
            ("ins", Obs.Jsonw.List (List.map (fun i -> Obs.Jsonw.Int i) bins));
          ];
        id
    | None -> -1
  in
  let jreject ~depth cand reason extra =
    match journal with
    | Some j ->
        Obs.Journal.emit j ~cand ~typ:"cand.reject"
          (("level", Obs.Jsonw.Str "block")
          :: ("depth", Obs.Jsonw.Int depth)
          :: ("reason", Obs.Jsonw.Str reason)
          :: extra)
    | None -> ()
  in
  let jaccept ~depth cand shape nf =
    match journal with
    | Some j ->
        Obs.Journal.emit j ~cand ~typ:"cand.accept"
          [
            ("level", Obs.Jsonw.Str "block");
            ("depth", Obs.Jsonw.Int depth);
            ("shape", Obs.Jsonw.Str (Shape.to_string shape));
            ("expr", Obs.Jsonw.Str (Absexpr.Nf.to_string nf));
          ]
    | None -> ()
  in
  (* Per-depth telemetry in the search's registry. Handles are resolved
     once per root (mutex) so hot-path updates stay lock-free. *)
  let depth_buckets =
    Obs.Metrics.linear_buckets ~lo:0.0 ~step:1.0
      ~n:(max 1 cfg.Config.max_block_ops + 1)
  in
  let reg = Stats.registry stats in
  let hist name help =
    Obs.Metrics.histogram reg ~help ~buckets:depth_buckets name
  in
  let h_expand =
    hist "search.block.expand_depth" "prefix depth of attempted extensions"
  in
  let h_rej_shape = hist "search.block.reject_depth.shape" "depth of shape rejections" in
  let h_rej_mem = hist "search.block.reject_depth.memory" "depth of shared-memory rejections" in
  let h_rej_dup = hist "search.block.reject_depth.duplicate" "depth of duplicate rejections" in
  let h_rej_pruned = hist "search.block.reject_depth.pruned" "depth of abstract-expression rejections" in
  let h_rej_canon = hist "search.block.reject_depth.canonical" "depth of canonical-order rejections" in
  let c_phase =
    Obs.Metrics.counter reg ~help:"extensions with an inconsistent loop phase"
      "search.block.reject.phase"
  in
  let c_dangling =
    Obs.Metrics.counter reg
      ~help:"accepted prefixes cut by the dangling-value bound"
      "search.block.reject.dangling"
  in
  let iters = Array.fold_left ( * ) 1 root.forloop in
  let has_loop = iters > 1 in
  (* Specification outputs: normal forms and kernel-level shapes. *)
  let spec_outs =
    List.map2
      (fun e s -> (Absexpr.Nf.of_expr e, s))
      (Abstract.output_exprs spec)
      (Infer.output_shapes spec)
  in
  (* Initial state: one input iterator per spec input. *)
  let init_state =
    let entries =
      List.mapi
        (fun i (shape, name) ->
          let imap, fmap = root.initers.(i) in
          let tile =
            Dmap.slice_shape fmap ~counts:root.forloop
              (Dmap.slice_shape imap ~counts:root.grid shape)
          in
          {
            bop = Graph.B_initer { input = i; imap; fmap };
            bins = [];
            shape = tile;
            nf = Absexpr.Nf.nf_var name;
            phase =
              (if
                 (not has_loop)
                 || Array.for_all (fun t -> t = Dmap.Replica) fmap
               then Inv
               else Body);
            bytes = Shape.numel tile * elt_bytes;
          })
        (List.combine input_shapes input_names)
    in
    {
      entries = List.rev entries;
      count = List.length entries;
      ops = 0;
      smem = List.fold_left (fun a e -> a + e.bytes) 0 entries;
      last_rank = None;
      consumed = 0;
    }
  in
  if init_state.smem > limits.Memory.smem_bytes_per_block then ()
  else begin
    let budget_check () =
      Obs.Fault.trip "enum.block";
      if Obs.Budget.cancelled budget then raise Budget_exhausted;
      if Obs.Budget.nodes_exceeded budget (Stats.expanded stats) then begin
        Obs.Budget.note budget "node_budget";
        raise Budget_exhausted
      end;
      if Obs.Budget.over_deadline budget then begin
        Obs.Budget.note budget "deadline";
        raise Budget_exhausted
      end
    in
    (* omaps reconstructing [target] from per-block [shape]. *)
    let omaps_for shape target =
      let rank = Shape.rank shape in
      let n_grid = Array.length root.grid in
      let rec assign k used =
        if k = n_grid then [ [] ]
        else
          List.concat_map
            (fun d ->
              if List.mem d used then []
              else
                List.map (fun rest -> d :: rest) (assign (k + 1) (d :: used)))
            (List.init rank Fun.id)
      in
      assign 0 []
      |> List.filter_map (fun om ->
             let omap = Array.of_list om in
             if
               Shape.rank shape = Shape.rank target
               && Shape.equal (Dmap.scaled_shape omap ~grid:root.grid shape)
                    target
             then Some omap
             else None)
    in
    (* Emit complete candidates from the current prefix. *)
    let try_complete st =
      (* candidate entries per spec output *)
      let per_output =
        List.map
          (fun (nf, target) ->
            List.init st.count (fun i -> (i, entry_at st i))
            |> List.concat_map (fun (i, e) ->
                   let valid_phase =
                     (not has_loop) || e.phase = Post || e.phase = Inv
                   in
                   let is_initer =
                     match e.bop with Graph.B_initer _ -> true | _ -> false
                   in
                   if valid_phase && (not is_initer) && Absexpr.Nf.equal e.nf nf
                   then
                     List.map (fun omap -> (i, omap)) (omaps_for e.shape target)
                   else []))
          spec_outs
      in
      if List.for_all (fun l -> l <> []) per_output then begin
        (* all initers must be consumed *)
        let consumed = Array.make st.count false in
        List.iter
          (fun e -> List.iter (fun j -> consumed.(j) <- true) e.bins)
          st.entries;
        let initers_used =
          List.init st.count (fun i ->
              match (entry_at st i).bop with
              | Graph.B_initer _ -> consumed.(i)
              | _ -> true)
          |> List.for_all Fun.id
        in
        if initers_used then begin
          let rec combos = function
            | [] -> [ [] ]
            | opts :: rest ->
                let tails = combos rest in
                List.concat_map
                  (fun o -> List.map (fun t -> o :: t) tails)
                  opts
          in
          (* One funnel entry per completing prefix, however many output
             selections it yields — keeps candidates <= accepted
             extensions, so the funnel invariant holds by construction. *)
          let emitted = ref false in
          List.iter
            (fun selection ->
              let bnodes =
                Array.of_list
                  (List.rev_map
                     (fun e -> { Graph.bop = e.bop; bins = e.bins })
                     st.entries
                  @ List.map
                      (fun (i, omap) ->
                        { Graph.bop = Graph.B_outsaver { omap }; bins = [ i ] })
                      selection)
              in
              let bg =
                { Graph.grid = root.grid; forloop = root.forloop; bnodes }
              in
              let bld = Graph.Build.create () in
              let ins =
                List.map2
                  (fun name shape -> Graph.Build.input bld name shape)
                  input_names input_shapes
              in
              let outs =
                Graph.Build.graphdef bld bg ins (List.length selection)
              in
              match Graph.Build.finish bld ~outputs:outs with
              | g ->
                  if Memory.check limits g then begin
                    emitted := true;
                    emit g
                  end
              | exception (Graph.Ill_formed _ | Invalid_argument _) -> ())
            (combos per_output);
          if !emitted then Stats.bump_candidates stats
        end
      end
    in
    let n_outputs = List.length spec_outs in
    let max_arity =
      List.fold_left
        (fun acc p -> max acc (Op.arity p))
        2 cfg.Config.block_op_menu
    in
    (* Dead-end bound: every non-output value must eventually be consumed,
       and each future operator consumes at most [max_arity] dangling
       values while producing one. A prefix whose dangling count cannot
       shrink to the number of outputs within the remaining operator
       budget has no completion. *)
    let dangling_ok st =
      let dangling =
        let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1) in
        st.count - popcount (st.consumed land ((1 lsl st.count) - 1))
      in
      let remaining = cfg.Config.max_block_ops - st.ops in
      dangling - n_outputs <= remaining * (max_arity - 1)
    in
    (* One extension: add entry if all checks pass, recurse. *)
    let rec extend pf st =
      budget_check ();
      try_complete st;
      if st.ops < cfg.Config.max_block_ops then begin
        let depth = float_of_int st.ops in
        (* operator slots below a prefix cut at this depth *)
        let remaining = max 0 (cfg.Config.max_block_ops - st.ops - 1) in
        let moves = gen_moves pf st in
        List.iter
          (fun (cand, bop, bins, shape, nf, phase) ->
            let bytes = Shape.numel shape * elt_bytes in
            let duplicate =
              (* Computing a value with the same abstract expression,
                 shape and phase as an existing one can never help. *)
              List.exists
                (fun e ->
                  e.phase = phase
                  && Shape.equal e.shape shape
                  && Absexpr.Nf.equal e.nf nf)
                st.entries
            in
            if duplicate then begin
              Stats.bump_duplicates stats;
              Obs.Metrics.observe h_rej_dup depth;
              Obs.Profile.fire pf.r_dup ~remaining;
              jreject ~depth:st.ops cand "duplicate" []
            end
            else if st.smem + bytes > limits.Memory.smem_bytes_per_block then begin
              Stats.bump_memory stats;
              Obs.Metrics.observe h_rej_mem depth;
              Obs.Profile.fire pf.r_mem ~remaining;
              jreject ~depth:st.ops cand "memory"
                (match journal with
                | Some _ ->
                    [
                      ("smem_bytes", Obs.Jsonw.Int (st.smem + bytes));
                      ( "smem_limit",
                        Obs.Jsonw.Int limits.Memory.smem_bytes_per_block );
                    ]
                | None -> [])
            end
            else if
              Prune.reject_if_pruned cfg ~solver ~stats ~hist:h_rej_pruned
                ~depth:st.ops
                ~jreject:(fun reason extra ->
                  jreject ~depth:st.ops cand reason extra)
                ~journal_live:(journal <> None) ~timer:pf.ptimer
                ~rule:pf.r_pruned ~remaining nf
            then ()
            else
              let e = { bop; bins; shape; nf; phase; bytes } in
              let st' =
                {
                  entries = e :: st.entries;
                  count = st.count + 1;
                  ops = st.ops + 1;
                  smem = st.smem + bytes;
                  last_rank = Some (Canon.R_block (bins, bop));
                  consumed =
                    List.fold_left (fun m j -> m lor (1 lsl j)) st.consumed bins;
                }
              in
              if dangling_ok st' then begin
                jaccept ~depth:st.ops cand shape nf;
                (* Shallow children root large subtrees — publish those
                   to the pool; recurse inline past the cutoff. *)
                if
                  st'.ops > cfg.Config.steal_depth_cutoff
                  || not
                       (spawn (fun () ->
                            let pf = fresh_prof () in
                            Fun.protect
                              ~finally:(fun () -> flush_prof pf)
                              (fun () -> extend pf st')))
                then extend pf st'
              end
              else begin
                Obs.Metrics.bump c_dangling;
                Obs.Profile.fire pf.r_dangling ~remaining;
                jreject ~depth:st.ops cand "dangling" []
              end)
          moves
      end
    (* All rank-respecting operator instantiations from this prefix.
       Every operator instantiation considered counts as one attempted
       extension (the funnel's [expanded]); it then either fails one
       check — counted under exactly one rejection reason — or becomes a
       move for [extend]. *)
    and gen_moves pf st =
      let depth = float_of_int st.ops in
      let remaining = max 0 (cfg.Config.max_block_ops - st.ops - 1) in
      let attempt op bins =
        Stats.bump_expanded stats;
        Obs.Metrics.observe h_expand depth;
        jexpand ~depth:st.ops op bins
      in
      let rank_ok bop bins =
        match st.last_rank with
        | None -> true
        | Some r -> Canon.compare_rank r (Canon.R_block (bins, bop)) <= 0
      in
      let moves = ref [] in
      let add cand bop bins shape nf phase =
        if rank_ok bop bins then
          moves := (cand, bop, bins, shape, nf, phase) :: !moves
        else begin
          Stats.bump_canonical stats;
          Obs.Metrics.observe h_rej_canon depth;
          Obs.Profile.fire pf.r_canon ~remaining;
          jreject ~depth:st.ops cand "canonical" []
        end
      in
      let try_prim p bins =
        let ins = List.map (entry_at st) bins in
        let cand = attempt (Op.to_string p) bins in
        match combined_phase (List.map (fun e -> e.phase) ins) with
        | None ->
            Obs.Metrics.bump c_phase;
            Obs.Profile.fire pf.r_phase ~remaining;
            jreject ~depth:st.ops cand "phase" []
        | Some phase -> (
            let shapes = List.map (fun e -> e.shape) ins in
            match Op.infer_shape_opt p shapes with
            | Some shape ->
                let nf =
                  Abstract.prim_nf p ~in_shapes:shapes
                    (List.map (fun e -> e.nf) ins)
                in
                add cand (Graph.B_prim p) bins shape nf phase
            | None ->
                Stats.bump_shape stats;
                Obs.Metrics.observe h_rej_shape depth;
                Obs.Profile.fire pf.r_shape ~remaining;
                jreject ~depth:st.ops cand "shape"
                  (match journal with
                  | Some _ ->
                      [
                        ( "in_shapes",
                          Obs.Jsonw.List
                            (List.map
                               (fun s -> Obs.Jsonw.Str (Shape.to_string s))
                               shapes) );
                      ]
                  | None -> []))
      in
      for i = 0 to st.count - 1 do
        (* unary-like ops (incl. per-dim Sum instances) *)
        let e = entry_at st i in
        List.iter
          (fun p -> try_prim p [ i ])
          (instantiate_unary_like cfg.Config.block_op_menu e.shape);
        (* binary elementwise: commutative ops take i <= j *)
        for j = 0 to st.count - 1 do
          List.iter
            (fun p ->
              match p with
              | Op.Binary (Op.Add | Op.Mul) when i <= j -> try_prim p [ i; j ]
              | Op.Binary Op.Div -> try_prim p [ i; j ]
              | _ -> ())
            (binary_ops cfg.Config.block_op_menu);
          if has_matmul cfg.Config.block_op_menu then
            try_prim Op.Matmul [ i; j ]
        done;
        (* accumulators over loop-varying values *)
        if has_loop && e.phase = Body then begin
          let all_phi =
            Array.make (Array.length root.forloop) Dmap.Replica
          in
          let bop = Graph.B_accum { fmap = all_phi } in
          let cand = attempt "accum" [ i ] in
          add cand bop [ i ] e.shape (Absexpr.Nf.nf_sum iters e.nf) Post;
          if cfg.Config.enable_concat_accum then
            Array.iteri
              (fun l count ->
                Array.iteri
                  (fun d _ ->
                    if e.shape.(d) >= 1 then begin
                      let fmap =
                        Array.mapi
                          (fun l' _ ->
                            if l' = l then Dmap.Dim d else Dmap.Replica)
                          root.forloop
                      in
                      let bop = Graph.B_accum { fmap } in
                      let shape =
                        Shape.scale_dim e.shape ~dim:d ~times:count
                      in
                      (* the phi dims still sum *)
                      let phi_iters =
                        Array.to_list root.forloop
                        |> List.mapi (fun l' c ->
                               if l' = l then 1 else c)
                        |> List.fold_left ( * ) 1
                      in
                      let cand = attempt "accum.concat" [ i ] in
                      add cand bop [ i ] shape
                        (Absexpr.Nf.nf_sum phi_iters e.nf)
                        Post
                    end)
                  e.shape)
              root.forloop
        end
      done;
      List.rev !moves
    in
    (* the batched prune-check time and rule fires land under this task
       even when the budget cuts the DFS short *)
    let pf = fresh_prof () in
    Fun.protect
      ~finally:(fun () -> flush_prof pf)
      (fun () -> extend pf init_state)
  end
