open Mugraph

type t = {
  max_kernel_ops : int;
  max_block_ops : int;
  grid_candidates : int array list;
  forloop_candidates : int array list;
  block_op_menu : Op.prim list;
  kernel_op_menu : Op.prim list;
  use_abstract_pruning : bool;
  use_thread_fusion : bool;
  num_workers : int;
  node_budget : int;
  time_budget_s : float;
  max_outputs_per_candidate : int;
  enable_concat_accum : bool;
  max_task_failures : int;
  verify_fast_path : bool;
  steal_depth_cutoff : int;
}

(* Workers default to the machine's recommended domain count, capped so a
   many-core box doesn't oversubscribe a search whose task tree is small.
   Computed once — recommended_domain_count is constant per process. *)
let default_workers =
  let n = try Domain.recommended_domain_count () with _ -> 1 in
  max 1 (min n 8)

let default =
  {
    max_kernel_ops = 5;
    max_block_ops = 11;
    grid_candidates = [ [| 16 |]; [| 64 |]; [| 128 |] ];
    forloop_candidates = [ [||]; [| 4 |]; [| 16 |] ];
    block_op_menu =
      [
        Op.Matmul;
        Op.Binary Op.Add;
        Op.Binary Op.Mul;
        Op.Binary Op.Div;
        Op.Unary Op.Exp;
        Op.Unary Op.Sqr;
        Op.Unary Op.Sqrt;
        Op.Unary Op.Silu;
        Op.Sum { dim = 0; group = 0 };
      ];
    kernel_op_menu =
      [
        Op.Matmul;
        Op.Binary Op.Add;
        Op.Binary Op.Mul;
        Op.Binary Op.Div;
        Op.Unary Op.Exp;
        Op.Unary Op.Sqr;
        Op.Unary Op.Sqrt;
        Op.Unary Op.Silu;
        Op.Sum { dim = 0; group = 0 };
      ];
    use_abstract_pruning = true;
    use_thread_fusion = true;
    num_workers = default_workers;
    node_budget = 0;
    time_budget_s = 0.0;
    max_outputs_per_candidate = 2;
    enable_concat_accum = false;
    max_task_failures = 8;
    verify_fast_path = true;
    steal_depth_cutoff = 3;
  }

(* Structural facts about the goal normal forms that make operator
   classes useful: Add can only survive the subexpression filter if some
   position of the goal is a sum of several terms; Div only if some
   denominator is nontrivial; reductions only if some sum factor
   exceeds 1. *)
let rec nf_has_add (n : Absexpr.Nf.t) =
  List.length n > 1 || List.exists term_has_add n

and term_has_add (t : Absexpr.Nf.term) =
  List.exists atom_has_add t.Absexpr.Nf.num || den_has_add t.Absexpr.Nf.den

and atom_has_add = function
  | Absexpr.Nf.A_var _ -> false
  | Absexpr.Nf.A_exp i | Absexpr.Nf.A_sqrt i | Absexpr.Nf.A_silu i ->
      nf_has_add i

and den_has_add (d : Absexpr.Nf.den) =
  List.exists
    (function
      | Absexpr.Nf.D_atom a -> atom_has_add a
      | Absexpr.Nf.D_opaque n -> nf_has_add n
      | Absexpr.Nf.D_inv dd -> den_has_add dd)
    d.Absexpr.Nf.dfacs

let rec nf_has_div (n : Absexpr.Nf.t) =
  List.exists
    (fun (t : Absexpr.Nf.term) ->
      (not (Absexpr.Nf.den_is_trivial t.Absexpr.Nf.den))
      || List.exists atom_has_div t.Absexpr.Nf.num)
    n

and atom_has_div = function
  | Absexpr.Nf.A_var _ -> false
  | Absexpr.Nf.A_exp i | Absexpr.Nf.A_sqrt i | Absexpr.Nf.A_silu i ->
      nf_has_div i

let rec nf_has_sum (n : Absexpr.Nf.t) =
  List.exists
    (fun (t : Absexpr.Nf.term) ->
      t.Absexpr.Nf.sf > 1 || t.Absexpr.Nf.den.Absexpr.Nf.dsum > 1
      || List.exists atom_has_sum t.Absexpr.Nf.num)
    n

and atom_has_sum = function
  | Absexpr.Nf.A_var _ -> false
  | Absexpr.Nf.A_exp i | Absexpr.Nf.A_sqrt i | Absexpr.Nf.A_silu i ->
      nf_has_sum i

(* Which unary operators the spec's abstract expressions mention. *)
let spec_features g =
  let rec walk (e : Absexpr.Expr.t) acc =
    match e with
    | Absexpr.Expr.Var "__neg" -> "sub" :: acc
    | Absexpr.Expr.Var _ -> acc
    | Absexpr.Expr.Add (a, b)
    | Absexpr.Expr.Mul (a, b)
    | Absexpr.Expr.Div (a, b) ->
        walk a (walk b acc)
    | Absexpr.Expr.Exp a -> walk a ("exp" :: acc)
    | Absexpr.Expr.Sqrt a -> walk a ("sqrt" :: acc)
    | Absexpr.Expr.Silu a -> walk a ("silu" :: acc)
    | Absexpr.Expr.Sum (_, a) -> walk a acc
  in
  let features =
    List.fold_left
      (fun acc e -> walk e acc)
      []
      (Abstract.output_exprs g)
  in
  List.sort_uniq Stdlib.compare features

let divisor_candidates dims =
  (* plausible grid sizes / loop trip counts drawn from the dimensions of
     the problem: powers of two dividing some input dimension *)
  let pows = [ 2; 4; 8; 16; 32; 64; 128 ] in
  List.filter (fun p -> List.exists (fun d -> d mod p = 0 && d > p) dims) pows

let for_spec ?(base = default) (g : Graph.kernel_graph) =
  let features = spec_features g in
  let has f = List.mem f features in
  let goal_nfs =
    List.map Absexpr.Nf.of_expr (Abstract.output_exprs g)
  in
  let goal_has f = List.exists f goal_nfs in
  let menu_filter menu =
    List.filter
      (fun p ->
        match p with
        | Op.Unary Op.Exp -> has "exp"
        | Op.Unary Op.Sqrt -> has "sqrt"
        | Op.Unary Op.Silu -> has "silu"
        | Op.Binary Op.Add -> goal_has nf_has_add
        | Op.Binary Op.Sub -> has "sub"
        | Op.Binary Op.Div -> goal_has nf_has_div
        | Op.Matmul | Op.Sum _ -> goal_has nf_has_sum
        | _ -> true)
      menu
  in
  let dims =
    List.concat_map (fun s -> Array.to_list s) (Graph.input_shapes g)
    |> List.sort_uniq Stdlib.compare
  in
  let grid_candidates =
    if base.grid_candidates <> default.grid_candidates then
      base.grid_candidates
    else
      match divisor_candidates dims with
      | [] -> [ [| 1 |] ]
      | ds -> List.map (fun d -> [| d |]) ds
  in
  let forloop_candidates =
    if base.forloop_candidates <> default.forloop_candidates then
      base.forloop_candidates
    else
      [||]
      :: List.map
           (fun d -> [| d |])
           (List.filter (fun d -> d <= 16) (divisor_candidates dims))
  in
  {
    base with
    block_op_menu = menu_filter base.block_op_menu;
    kernel_op_menu = menu_filter base.kernel_op_menu;
    grid_candidates;
    forloop_candidates;
  }

let to_json (c : t) =
  let open Obs.Jsonw in
  let dims_list l =
    List (List.map (fun a -> List (Array.to_list (Array.map (fun i -> Int i) a))) l)
  in
  let menu m = List (List.map (fun p -> Str (Op.to_string p)) m) in
  Obj
    [
      ("max_kernel_ops", Int c.max_kernel_ops);
      ("max_block_ops", Int c.max_block_ops);
      ("grid_candidates", dims_list c.grid_candidates);
      ("forloop_candidates", dims_list c.forloop_candidates);
      ("block_op_menu", menu c.block_op_menu);
      ("kernel_op_menu", menu c.kernel_op_menu);
      ("use_abstract_pruning", Bool c.use_abstract_pruning);
      ("use_thread_fusion", Bool c.use_thread_fusion);
      ("num_workers", Int c.num_workers);
      ("node_budget", Int c.node_budget);
      ("time_budget_s", Float c.time_budget_s);
      ("max_outputs_per_candidate", Int c.max_outputs_per_candidate);
      ("enable_concat_accum", Bool c.enable_concat_accum);
      ("max_task_failures", Int c.max_task_failures);
      ("verify_fast_path", Bool c.verify_fast_path);
      ("steal_depth_cutoff", Int c.steal_depth_cutoff);
    ]

(* Fields with no bearing on which muGraph the search returns: worker
   count and budgets only decide how long the search may run, the crash
   tolerance only decides when it aborts, and the fast verify path
   returns the same verdicts as the reference path. Everything else —
   operator menus, depth caps, grid/loop candidates, pruning switches —
   changes the candidate set and so must key a result cache. *)
let result_irrelevant_keys =
  [
    "num_workers";
    "node_budget";
    "time_budget_s";
    "max_task_failures";
    "verify_fast_path";
    "steal_depth_cutoff";
  ]

let search_relevant_json c =
  match to_json c with
  | Obs.Jsonw.Obj fields ->
      Obs.Jsonw.Obj
        (List.filter
           (fun (k, _) -> not (List.mem k result_irrelevant_keys))
           fields)
  | v -> v
