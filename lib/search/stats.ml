module M = Obs.Metrics

type snapshot = {
  expanded : int;
  shape_rejected : int;
  memory_rejected : int;
  pruned_abstract : int;
  canonical_rejected : int;
  candidates : int;
  verified : int;
  duplicates : int;
  elapsed_s : float;
}

type t = {
  reg : M.t;
  start : float;
  c_expanded : M.counter;
  c_shape : M.counter;
  c_memory : M.counter;
  c_pruned : M.counter;
  c_canonical : M.counter;
  c_candidates : M.counter;
  c_verified : M.counter;
  c_duplicates : M.counter;
}

let create ?registry () =
  let reg = match registry with Some r -> r | None -> M.create () in
  {
    reg;
    start = Unix.gettimeofday ();
    c_expanded =
      M.counter reg ~help:"extensions attempted by the enumerators"
        "search.expanded";
    c_shape =
      M.counter reg ~help:"rejected: shape inference failed"
        "search.reject.shape";
    c_memory =
      M.counter reg ~help:"rejected: exceeded shared memory"
        "search.reject.memory";
    c_pruned =
      M.counter reg ~help:"rejected: abstract subexpression check"
        "search.reject.pruned_abstract";
    c_canonical =
      M.counter reg ~help:"rejected: canonical rank order"
        "search.reject.canonical";
    c_candidates =
      M.counter reg ~help:"complete muGraphs submitted to verification"
        "search.candidates";
    c_verified = M.counter reg ~help:"verified muGraphs" "search.verified";
    c_duplicates =
      M.counter reg ~help:"duplicate values or muGraphs" "search.duplicates";
  }

let registry t = t.reg

let bump_expanded t = M.bump t.c_expanded
let bump_shape t = M.bump t.c_shape
let bump_memory t = M.bump t.c_memory
let bump_pruned t = M.bump t.c_pruned
let bump_canonical t = M.bump t.c_canonical
let bump_candidates t = M.bump t.c_candidates
let bump_verified t = M.bump t.c_verified
let bump_duplicates t = M.bump t.c_duplicates
let expanded t = M.value t.c_expanded

let snapshot t =
  {
    expanded = M.value t.c_expanded;
    shape_rejected = M.value t.c_shape;
    memory_rejected = M.value t.c_memory;
    pruned_abstract = M.value t.c_pruned;
    canonical_rejected = M.value t.c_canonical;
    candidates = M.value t.c_candidates;
    verified = M.value t.c_verified;
    duplicates = M.value t.c_duplicates;
    elapsed_s = Unix.gettimeofday () -. t.start;
  }

let to_string s =
  Printf.sprintf
    "expanded=%d shape-=%d mem-=%d pruned=%d canon-=%d candidates=%d \
     verified=%d dup=%d in %.2fs"
    s.expanded s.shape_rejected s.memory_rejected s.pruned_abstract
    s.canonical_rejected s.candidates s.verified s.duplicates s.elapsed_s

let funnel_ok s =
  s.expanded
  >= s.shape_rejected + s.memory_rejected + s.pruned_abstract
     + s.canonical_rejected + s.candidates
