(** The expression-guided muGraph generator (paper §4, Algorithm 1),
    end to end: enumerate candidate muGraphs (kernel-level rewrites and
    single-custom-kernel block graphs), verify each candidate against the
    specification with the probabilistic equivalence verifier (§5), apply
    rule-based thread fusion (§4.2), and rank the survivors with the GPU
    cost model.

    Root configurations are distributed over OCaml domains when
    [Config.num_workers > 1] (the paper's multi-threaded search,
    Table 5). *)

open Mugraph

type result = {
  graph : Graph.kernel_graph;  (** verified, thread-fused *)
  cost : Gpusim.Cost.graph_cost;
}

type outcome = {
  best : result option;  (** lowest simulated time *)
  verified : result list;  (** sorted by increasing cost *)
  generated : int;  (** candidate muGraphs emitted by the enumerators *)
  stats : Stats.snapshot;
  metrics : Obs.Metrics.snapshot;
      (** full snapshot of the search's metrics registry: the funnel
          counters plus the enumerators' per-depth histograms *)
  solver : Smtlite.Solver.stats;
  budget_exhausted : bool;
  task_failures : int;
      (** enumeration tasks that crashed and were quarantined (each is
          journaled as [cand.crash] with a backtrace); the search aborts
          only past [Config.max_task_failures] *)
  degraded : string list;
      (** budget degradation reasons accumulated during the run
          (["deadline"], ["node_budget"], ["worker.crash"], …); empty for
          a clean run *)
}

val generate :
  Config.t ->
  spec:Graph.kernel_graph ->
  solver:Smtlite.Solver.t ->
  stats:Stats.t ->
  limits:Memory.limits ->
  budget:Budget.t ->
  ?checkpoint:Checkpoint.t ->
  ?piece:int ->
  ?on_pool:(Deque.Pool.t -> unit) ->
  unit ->
  (int * Graph.kernel_graph) list * bool * int
(** The raw enumeration stage of {!run}: seed the kernel task and one
    task per root configuration onto a work-stealing pool of
    [num_workers] domains and drain it, returning the deduplicated
    [(gid, graph)] candidates plus whether the budget was exhausted and
    how many items crashed. The candidate {e set} is independent of the
    worker count and steal schedule (gids and list order are not).
    [on_pool] runs once with the freshly created pool — the hook the
    serving tier uses to surface live steal counts. Exposed for {!run},
    {!search_time} and the determinism tests. *)

val run :
  ?config:Config.t ->
  ?registry:Obs.Metrics.t ->
  ?verify_trials:int ->
  ?verify_all:bool ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.t ->
  ?piece:int ->
  ?progress:Progress.t ->
  ?prune_persist:(Smtlite.Solver.t -> unit) ->
  device:Gpusim.Device.t ->
  spec:Graph.kernel_graph ->
  unit ->
  outcome
(** [config] defaults to [Config.for_spec spec]. The spec itself is
    always included as a candidate, so [best] is never worse than the
    input program.

    [registry] backs the search's counters and histograms (default: a
    fresh registry per run; pass a shared one to accumulate across
    runs). When the global {!Obs.Trace} collector is enabled, the run
    records [enumerate]/[cost]/[verify] spans (one [enumerate.root] span
    per root configuration, one [verify.candidate] span per verification
    attempt).

    Candidates are verified in ascending cost-model order with a single
    random test each; the winner then receives [verify_trials] further
    trials — mirroring the paper's implementation (§7). With
    [verify_all] every candidate is fully verified and reported (used by
    tests and small problems).

    [budget] (default: derived from the config's time/node budgets) is
    polled by the enumerators, the verification loop, and — when threaded
    through {!Opt} — the ILP and memory planners; hitting the deadline in
    any phase cleanly returns best-so-far with the reason recorded in
    [degraded]. [checkpoint]/[piece] enable periodic progress persistence
    and resume (see {!Checkpoint}).

    [prune_persist] runs once on the freshly created solver, before any
    query — the place to {!Smtlite.Solver.attach_persist} an on-disk
    prune-query cache (e.g. via [Service.Prune_store]). The run flushes
    the solver's write-behind batch at finalize.

    [progress] attaches a {!Progress} cell the run keeps current (phase,
    funnel counters, best cost so far) so an observer on another thread —
    e.g. the serving tier's streamer — can sample it lock-free. When the
    ambient {!Obs.Profile} is enabled, the run additionally attributes
    its wall time to a [search] phase tree
    ([enumerate]/[cost]/[verify.setup]/[verify]/[finalize], with
    per-task and per-candidate children and prune-rule fire counts). *)

val search_time :
  ?config:Config.t ->
  ?device:Gpusim.Device.t ->
  spec:Graph.kernel_graph ->
  unit ->
  float * bool
(** Generation time only (no verification/costing) in seconds, plus
    whether the budget ran out — the measurement reported in Table 5.
    Memory limits come from [device] (default A100), matching {!run}. *)
