open Tensor
open Mugraph

type entry = {
  kop : Graph.kernel_op;
  kins : Graph.tensor_ref list;
  shape : Shape.t;
  nf : Absexpr.Nf.t;
}

type state = {
  entries : entry list;  (** reversed *)
  count : int;
  ops : int;
  last_rank : Canon.rank option;
}

let entry_at st i = List.nth st.entries (st.count - 1 - i)

let instantiate menu shape =
  List.concat_map
    (fun p ->
      match p with
      | Op.Sum _ ->
          List.init (Shape.rank shape) (fun d ->
              if shape.(d) > 1 then [ Op.Sum { dim = d; group = shape.(d) } ]
              else [])
          |> List.concat
      | Op.Unary _ -> [ p ]
      | _ -> [])
    menu

(* Profiler handles batch counts in per-handle mutable state, so they are
   owned by one executing domain: a subtree continuation that may be
   stolen gets a fresh set on whatever domain runs it, flushed when the
   subtree finishes. *)
type prof = {
  ptimer : Obs.Profile.timer;
  r_shape : Obs.Profile.rule_handle;
  r_dup : Obs.Profile.rule_handle;
  r_canon : Obs.Profile.rule_handle;
  r_pruned : Obs.Profile.rule_handle;
}

let fresh_prof () =
  {
    ptimer = Obs.Profile.timer "prune.abstract";
    r_shape = Obs.Profile.prune_rule "shape";
    r_dup = Obs.Profile.prune_rule "duplicate";
    r_canon = Obs.Profile.prune_rule "canonical";
    r_pruned = Obs.Profile.prune_rule "pruned_abstract";
  }

let flush_prof pf =
  Obs.Profile.flush_timer pf.ptimer;
  List.iter Obs.Profile.flush_rule
    [ pf.r_shape; pf.r_dup; pf.r_canon; pf.r_pruned ]

let search (cfg : Config.t) ~spec ~solver ~stats ~limits ~budget
    ?(spawn = fun _ -> false) ~emit () =
  let input_shapes = Graph.input_shapes spec in
  let input_names = Graph.input_names spec in
  (* Flight recorder: resolved once per search; every attempted extension
     gets an id and an expand event, every rejection records its reason.
     One atomic load per attempt when journaling is off. *)
  let journal = Obs.Journal.active () in
  (* Per-depth telemetry, registered once per search in the stats
     registry; updates on the hot path are lock-free. *)
  let depth_buckets =
    Obs.Metrics.linear_buckets ~lo:0.0 ~step:1.0
      ~n:(max 1 cfg.Config.max_kernel_ops + 1)
  in
  let reg = Stats.registry stats in
  let hist name help =
    Obs.Metrics.histogram reg ~help ~buckets:depth_buckets name
  in
  let h_expand =
    hist "search.kernel.expand_depth" "prefix depth of attempted extensions"
  in
  let h_rej_shape = hist "search.kernel.reject_depth.shape" "depth of shape rejections" in
  let h_rej_dup = hist "search.kernel.reject_depth.duplicate" "depth of duplicate rejections" in
  let h_rej_pruned = hist "search.kernel.reject_depth.pruned" "depth of abstract-expression rejections" in
  let h_rej_canon = hist "search.kernel.reject_depth.canonical" "depth of canonical-order rejections" in
  let spec_outs =
    List.map2
      (fun e s -> (Absexpr.Nf.of_expr e, s))
      (Abstract.output_exprs spec)
      (Infer.output_shapes spec)
  in
  let budget_check () =
    Obs.Fault.trip "enum.kernel";
    if Obs.Budget.cancelled budget then raise Block_enum.Budget_exhausted;
    if Obs.Budget.nodes_exceeded budget (Stats.expanded stats) then begin
      Obs.Budget.note budget "node_budget";
      raise Block_enum.Budget_exhausted
    end;
    if Obs.Budget.over_deadline budget then begin
      Obs.Budget.note budget "deadline";
      raise Block_enum.Budget_exhausted
    end
  in
  let init =
    let entries =
      List.map2
        (fun name shape ->
          {
            kop = Graph.K_input { name; shape };
            kins = [];
            shape = Shape.create shape;
            nf = Absexpr.Nf.nf_var name;
          })
        input_names input_shapes
    in
    {
      entries = List.rev entries;
      count = List.length entries;
      ops = 0;
      last_rank = None;
    }
  in
  let try_complete st =
    (* every output needs a distinct matching entry (non-input) *)
    let matches =
      List.map
        (fun (nf, target) ->
          List.init st.count (fun i -> (i, entry_at st i))
          |> List.filter_map (fun (i, e) ->
                 match e.kop with
                 | Graph.K_input _ -> None
                 | _ ->
                     if Shape.equal e.shape target && Absexpr.Nf.equal e.nf nf
                     then Some i
                     else None))
        spec_outs
    in
    if List.for_all (fun l -> l <> []) matches then begin
      let outputs =
        List.map (fun l -> { Graph.node = List.hd l; port = 0 }) matches
      in
      let knodes =
        Array.of_list
          (List.rev_map
             (fun e -> { Graph.kop = e.kop; kins = e.kins })
             st.entries)
      in
      match Graph.validate { Graph.knodes; outputs } with
      | () ->
          let g = { Graph.knodes; outputs } in
          if Memory.check limits g then begin
            Stats.bump_candidates stats;
            emit g
          end
      | exception Graph.Ill_formed _ -> ()
    end
  in
  let rec extend pf st =
    budget_check ();
    try_complete st;
    if st.ops < cfg.Config.max_kernel_ops then begin
      let depth = float_of_int st.ops in
      (* operator slots below a prefix cut at this depth *)
      let remaining = max 0 (cfg.Config.max_kernel_ops - st.ops - 1) in
      let rank_ok kop kins =
        match st.last_rank with
        | None -> true
        | Some r -> Canon.compare_rank r (Canon.R_kernel (kins, kop)) <= 0
      in
      let try_prim p bins =
        let ins = List.map (entry_at st) bins in
        let kins = List.map (fun i -> { Graph.node = i; port = 0 }) bins in
        Stats.bump_expanded stats;
        Obs.Metrics.observe h_expand depth;
        let cand =
          match journal with
          | Some j ->
              let id = Obs.Journal.fresh_id j in
              Obs.Journal.emit j ~cand:id ~typ:"cand.expand"
                [
                  ("level", Obs.Jsonw.Str "kernel");
                  ("depth", Obs.Jsonw.Int st.ops);
                  ("op", Obs.Jsonw.Str (Op.to_string p));
                  ( "ins",
                    Obs.Jsonw.List (List.map (fun i -> Obs.Jsonw.Int i) bins)
                  );
                ];
              id
          | None -> -1
        in
        let jreject reason extra =
          match journal with
          | Some j ->
              Obs.Journal.emit j ~cand ~typ:"cand.reject"
                (("level", Obs.Jsonw.Str "kernel")
                :: ("depth", Obs.Jsonw.Int st.ops)
                :: ("reason", Obs.Jsonw.Str reason)
                :: extra)
          | None -> ()
        in
        if not (rank_ok (Graph.K_prim p) kins) then begin
          Stats.bump_canonical stats;
          Obs.Metrics.observe h_rej_canon depth;
          Obs.Profile.fire pf.r_canon ~remaining;
          jreject "canonical" []
        end
        else begin
          let shapes = List.map (fun e -> e.shape) ins in
          match Op.infer_shape_opt p shapes with
          | Some shape ->
              let nf =
                Abstract.prim_nf p ~in_shapes:shapes
                  (List.map (fun e -> e.nf) ins)
              in
              let duplicate =
                List.exists
                  (fun e ->
                    Shape.equal e.shape shape && Absexpr.Nf.equal e.nf nf)
                  st.entries
              in
              if duplicate then begin
                Stats.bump_duplicates stats;
                Obs.Metrics.observe h_rej_dup depth;
                Obs.Profile.fire pf.r_dup ~remaining;
                jreject "duplicate" []
              end
              else if
                Prune.reject_if_pruned cfg ~solver ~stats ~hist:h_rej_pruned
                  ~depth:st.ops ~jreject ~journal_live:(journal <> None)
                  ~timer:pf.ptimer ~rule:pf.r_pruned ~remaining nf
              then ()
              else begin
                (match journal with
                | Some j ->
                    Obs.Journal.emit j ~cand ~typ:"cand.accept"
                      [
                        ("level", Obs.Jsonw.Str "kernel");
                        ("depth", Obs.Jsonw.Int st.ops);
                        ("shape", Obs.Jsonw.Str (Shape.to_string shape));
                        ("expr", Obs.Jsonw.Str (Absexpr.Nf.to_string nf));
                      ]
                | None -> ());
                let child =
                  {
                    entries =
                      { kop = Graph.K_prim p; kins; shape; nf } :: st.entries;
                    count = st.count + 1;
                    ops = st.ops + 1;
                    last_rank = Some (Canon.R_kernel (kins, Graph.K_prim p));
                  }
                in
                (* Shallow children root large subtrees — publish those
                   to the pool; recurse inline past the cutoff. *)
                if
                  child.ops > cfg.Config.steal_depth_cutoff
                  || not
                       (spawn (fun () ->
                            let pf = fresh_prof () in
                            Fun.protect
                              ~finally:(fun () -> flush_prof pf)
                              (fun () -> extend pf child)))
                then extend pf child
              end
          | None ->
              Stats.bump_shape stats;
              Obs.Metrics.observe h_rej_shape depth;
              Obs.Profile.fire pf.r_shape ~remaining;
              jreject "shape"
                [
                  ( "in_shapes",
                    Obs.Jsonw.List
                      (List.map
                         (fun s -> Obs.Jsonw.Str (Shape.to_string s))
                         shapes) );
                ]
        end
      in
      for i = 0 to st.count - 1 do
        let e = entry_at st i in
        List.iter
          (fun p -> try_prim p [ i ])
          (instantiate cfg.Config.kernel_op_menu e.shape);
        for j = 0 to st.count - 1 do
          List.iter
            (fun p ->
              match p with
              | Op.Binary (Op.Add | Op.Mul) when i <= j -> try_prim p [ i; j ]
              | Op.Binary Op.Div -> try_prim p [ i; j ]
              | Op.Matmul -> try_prim p [ i; j ]
              | _ -> ())
            cfg.Config.kernel_op_menu
        done
      done
    end
  in
  (* the batched prune-check time and rule fires land under this task
     even when the budget cuts the DFS short *)
  let pf = fresh_prof () in
  Fun.protect ~finally:(fun () -> flush_prof pf) (fun () -> extend pf init)
