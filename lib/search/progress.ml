(* Shared live-progress state for an in-flight search: the generator
   updates it from whatever domain/thread is doing the work, observers
   (the serving tier's progress pusher) read a consistent-enough view
   without any locking. All fields are atomics; the funnel counts come
   straight from the search's [Stats] registry, which is already exact
   under concurrency — so an observer's [nodes_expanded] is monotone
   across reads by construction. *)

type t = {
  phase : string Atomic.t;
  stats : Stats.t option Atomic.t;
  best_us : float Atomic.t;  (* min-merged; [infinity] until seeded *)
  stolen : (unit -> int) option Atomic.t;
      (* scheduler health: successful work steals so far *)
}

let create () =
  {
    phase = Atomic.make "pending";
    stats = Atomic.make None;
    best_us = Atomic.make infinity;
    stolen = Atomic.make None;
  }

let set_phase t p = Atomic.set t.phase p
let phase t = Atomic.get t.phase
let attach_stats t s = Atomic.set t.stats (Some s)
let attach_stolen t f = Atomic.set t.stolen (Some f)

let rec note_best t us =
  if Float.is_finite us && us >= 0.0 then begin
    let cur = Atomic.get t.best_us in
    if us < cur && not (Atomic.compare_and_set t.best_us cur us) then
      note_best t us
  end

type view = {
  v_phase : string;
  v_nodes_expanded : int;
  v_candidates : int;
  v_verified : int;
  v_best_us : float option;
  v_tasks_stolen : int;
}

let view t =
  let nodes, cands, verified =
    match Atomic.get t.stats with
    | None -> (0, 0, 0)
    | Some s ->
        let snap = Stats.snapshot s in
        (snap.Stats.expanded, snap.Stats.candidates, snap.Stats.verified)
  in
  let best = Atomic.get t.best_us in
  {
    v_phase = Atomic.get t.phase;
    v_nodes_expanded = nodes;
    v_candidates = cands;
    v_verified = verified;
    v_best_us = (if Float.is_finite best then Some best else None);
    v_tasks_stolen =
      (match Atomic.get t.stolen with None -> 0 | Some f -> max 0 (f ()));
  }
