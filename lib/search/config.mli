(** Search configuration for the expression-guided muGraph generator.

    The defaults mirror the paper (§8.1): up to 5 operators in the kernel
    graph and up to 11 in each block graph. The two boolean switches are
    the ablation axes of Table 5: abstract-expression pruning and
    multi-threaded search. *)

type t = {
  max_kernel_ops : int;  (** paper default 5 *)
  max_block_ops : int;  (** paper default 11; Table 5 sweeps 5..11 *)
  grid_candidates : int array list;
      (** grid dimension vectors to consider for custom kernels *)
  forloop_candidates : int array list;
      (** for-loop trip-count vectors ([||] = no loop) *)
  block_op_menu : Mugraph.Op.prim list;
      (** operator types the block-graph enumerator may instantiate;
          [Sum] entries are placeholders — the enumerator instantiates
          full reductions along each dimension *)
  kernel_op_menu : Mugraph.Op.prim list;
  use_abstract_pruning : bool;  (** Table 5 column "w/o abstract expr" *)
  use_thread_fusion : bool;  (** §4.2 rule-based thread graphs *)
  num_workers : int;
      (** search domains; defaults to the machine's recommended domain
          count capped at 8. 1 = sequential (Table 5 "w/o
          multithreading") *)
  node_budget : int;  (** hard cap on expanded prefixes, 0 = unlimited *)
  time_budget_s : float;  (** wall-clock cap, 0 = unlimited *)
  max_outputs_per_candidate : int;
  enable_concat_accum : bool;
      (** also enumerate accumulators that concatenate along a data dim *)
  max_task_failures : int;
      (** supervised workers: quarantined task crashes tolerated before
          the whole search aborts (default 8) *)
  verify_fast_path : bool;
      (** verify over the packed finite-field representation with
          spec-output memoization (default). [false] selects the boxed
          {!Ffield.Fpair} reference path — same verdicts, much slower —
          kept for verdict-equivalence testing and debugging *)
  steal_depth_cutoff : int;
      (** enumeration depth (ops placed) at or below which a subtree is
          published to the work-stealing pool instead of recursed
          inline. 0 disables subtree spawning (coarse per-task
          parallelism only); has no effect on which candidates are
          found *)
}

val default : t

val default_workers : int
(** [min (Domain.recommended_domain_count ()) 8], at least 1 — the
    resolved default of [num_workers]. *)

val for_spec : ?base:t -> Mugraph.Graph.kernel_graph -> t
(** Derive the operator menus from the specification: unary operators
    appear in the menu only if the spec uses them (searching for [exp]
    when the goal has none is pure waste — the pruning would reject every
    such prefix anyway, but not generating them is cheaper). Grid and
    for-loop candidates are derived from divisors of the spec's input
    dimensions when not supplied in [base]. *)

val to_json : t -> Obs.Jsonw.t
(** A config fingerprint for run reports: every field rendered as JSON
    (operator menus as name lists, grid/loop candidates as arrays), so
    two runs can be compared field by field with [mirage_cli diff]. *)

val result_irrelevant_keys : string list
(** Field names of {!to_json} that cannot change which muGraph the search
    returns (budgets, worker count, crash tolerance, verify path choice).
    A result cache must ignore exactly these. *)

val search_relevant_json : t -> Obs.Jsonw.t
(** {!to_json} with {!result_irrelevant_keys} removed — the part of the
    config a fingerprint-keyed result cache keys on. *)
