(** Kernel-level enumeration: sequences of pre-defined kernel operators
    whose outputs match the specification — the TASO/PET-style algebraic
    slice of Mirage's search space (no custom kernels). Shares the
    canonical-rank discipline and abstract-expression pruning with the
    block enumerator. *)

open Mugraph

val search :
  Config.t ->
  spec:Graph.kernel_graph ->
  solver:Smtlite.Solver.t ->
  stats:Stats.t ->
  limits:Memory.limits ->
  budget:Obs.Budget.t ->
  ?spawn:((unit -> unit) -> bool) ->
  emit:(Graph.kernel_graph -> unit) ->
  unit ->
  unit
(** [spawn k] may publish subtree continuation [k] to a work-stealing
    pool and return [true]; returning [false] (the default) makes the
    enumerator recurse inline. Continuations are offered only for
    accepted children at depth <= [steal_depth_cutoff], are safe to run
    on any domain, and never change the emitted candidate set.
    @raise Block_enum.Budget_exhausted on budget exhaustion (reason
    noted on [budget]). The [enum.kernel] fault probe fires here. *)
