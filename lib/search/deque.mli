(** Work-stealing scheduler for the enumerators: one Chase–Lev deque
    per worker domain, randomized stealing, and counter-based
    termination detection (the X10/cilk pool idiom).

    The deque is the classic Chase–Lev array deque: the owner pushes
    and pops at the bottom without contention; thieves CAS the top. The
    owner grows the circular buffer instead of wrapping over
    unconsumed entries, so a thief's pre-CAS read can never observe a
    torn slot.

    {!Pool} layers scheduling on top: [seed] enqueues the initial task
    bodies (before the worker domains start), running items call
    {!Pool.spawn} to publish subtree continuations onto their own
    deque, and idle workers steal from random victims until the global
    in-flight count drains to zero. Steals and per-worker queue depth
    land in the metrics registry ([search.steal.*],
    [search.queue.depth.w<i>]). *)

type 'a deque

val deque : unit -> 'a deque
val push : 'a deque -> 'a -> unit
(** Owner only. *)

val pop : 'a deque -> 'a option
(** Owner only; takes the newest item (LIFO — depth-first locality). *)

val steal : 'a deque -> 'a option
(** Any domain; takes the oldest item (FIFO — steals big subtrees).
    [None] means empty or lost a race; callers just pick another
    victim. *)

val depth : 'a deque -> int
(** Racy snapshot of the queued-item count (for gauges). *)

module Pool : sig
  type t

  val create : ?registry:Obs.Metrics.t -> workers:int -> unit -> t
  (** A pool of [workers >= 1] deques. Metrics register in [registry]
      (default: the process-wide registry). *)

  val workers : t -> int

  val seed : t -> (unit -> unit) -> unit
  (** Enqueue an initial item, round-robin across workers. Only valid
      before {!run_worker} is entered (the spawning domain owns every
      deque until the worker domains exist). *)

  val spawn : t -> (unit -> unit) -> bool
  (** From inside a running item: publish a continuation onto the
      calling worker's own deque, where it is popped LIFO by the owner
      or stolen FIFO by an idle worker. Returns [false] when the
      caller is not a worker of this pool — the caller must then run
      the continuation inline. *)

  val run_worker : t -> id:int -> stop:(unit -> bool) -> run:((unit -> unit) -> unit) -> unit
  (** The worker loop for deque [id]: pop own work, else steal from
      random victims, until [stop ()] is true or every item in the
      pool has finished. [run] executes one item and must not raise
      (quarantine exceptions inside it); the in-flight count is
      decremented even if it does. *)

  val steals : t -> int
  (** Successful steals so far (cheap atomic read — feeds the live
      progress stream). *)

  val spawned : t -> int
  (** Subtree continuations published via {!spawn} (the seeded items
      are not counted). *)

  val pending : t -> int
  (** Items queued or running right now (0 after a full drain). *)
end
