(** The block-graph enumerator: the inner loop of Algorithm 1.

    A {e root} fixes the custom kernel's grid dimensions, for-loop trip
    counts, and the imap/fmap of every input iterator. From a root, the
    enumerator grows block-graph prefixes one operator at a time — in
    nondecreasing canonical rank order (§4.1) — checking tensor shapes,
    shared-memory usage, and the abstract-expression subexpression filter
    (§4.3) before each extension. Whenever some tensors' abstract
    expressions are [A_eq]-equivalent to the specification's outputs and
    an omap reconstructs the right kernel-level shapes, a complete
    candidate muGraph is emitted. *)

open Tensor
open Mugraph

type root = {
  grid : int array;
  forloop : int array;
  initers : (Dmap.imap * Dmap.fmap) array;  (** one per spec input *)
}

val enumerate_roots :
  Config.t -> input_shapes:Shape.t list -> root list
(** All valid (grid, forloop, imap/fmap) combinations from the config's
    candidate lists; every grid and for-loop dimension must partition at
    least one input. *)

type emit = Graph.kernel_graph -> unit

exception Budget_exhausted

val search_root :
  Config.t ->
  spec:Graph.kernel_graph ->
  solver:Smtlite.Solver.t ->
  stats:Stats.t ->
  limits:Memory.limits ->
  budget:Obs.Budget.t ->
  ?spawn:((unit -> unit) -> bool) ->
  emit:emit ->
  root ->
  unit
(** Depth-first expansion of one root. [emit] receives complete,
    validated candidates (not yet verified). [spawn k] may publish
    subtree continuation [k] to a work-stealing pool and return [true];
    returning [false] (the default) makes the enumerator recurse
    inline — offered only for accepted children at depth <=
    [steal_depth_cutoff], safe on any domain, never changes the emitted
    candidate set. @raise Budget_exhausted when the node budget, the
    wall deadline or a cancellation cuts the enumeration (the reason is
    noted on [budget]). The [enum.block] fault probe fires here. *)
