(** Checkpoint/resume for the search runtime.

    A checkpoint file ([checkpoint.json] in the run directory) records,
    per partition piece, which enumeration tasks have completed and every
    candidate muGraph emitted so far. Tasks are deterministic given the
    spec and config — the kernel-level pass plus one task per block-level
    root configuration — so an index-based cursor is a sound resume
    point: completed tasks are skipped, interrupted ones re-run and
    deduplicate against the reloaded candidates.

    Saves are atomic (temp file + rename); a crash mid-save leaves the
    previous checkpoint intact. A failed save degrades the run
    ([checkpoint.write]) instead of aborting it. *)

type t

val create : ?interval_s:float -> path:string -> unit -> t
(** Fresh manager writing to [path]. [interval_s] (default 5 s) throttles
    candidate-triggered saves; task completion always saves. *)

val load : string -> (t, string) result
(** Load from a checkpoint file, or from a run directory containing
    [checkpoint.json]. Validates the schema marker and every embedded
    graph ({!Mugraph.Graph.validate}). *)

val path : t -> string

val set_meta : t -> (string * Obs.Jsonw.t) list -> unit
(** Record identity fields (benchmark name, config fingerprint) used to
    refuse resuming into a different search. *)

val meta : t -> string -> Obs.Jsonw.t option

val task_done : t -> piece:int -> task:int -> tasks_total:int -> unit
(** Mark one enumeration task finished; forces a save. *)

val add_candidate : t -> piece:int -> gid:int -> Mugraph.Graph.kernel_graph -> unit
(** Record an emitted candidate; saves at most every [interval_s]. *)

val completed : t -> piece:int -> int list
(** Sorted task indices already finished for [piece]. *)

val candidates : t -> piece:int -> (int * Mugraph.Graph.kernel_graph) list
(** Candidates recorded for [piece], in emission order. *)

val save : t -> unit
(** Force an immediate save (used at the end of a run). *)

val config_fingerprint : Obs.Jsonw.t -> string
(** Digest of a config JSON with the budget/worker fields stripped, so a
    resume with a larger time or node budget is still the "same" search. *)

val graph_to_json : Mugraph.Graph.kernel_graph -> Obs.Jsonw.t
val graph_of_json : Obs.Jsonw.t -> (Mugraph.Graph.kernel_graph, string) result
(** The muGraph codec used inside checkpoints, exposed for tests. *)
