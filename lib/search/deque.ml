(* Chase–Lev work-stealing deque + pool (see deque.mli). The buffer
   grows instead of wrapping over live entries, so a thief can read a
   slot before its CAS on [top] — if the CAS wins, the slot it read was
   still the one [top] named, because the owner never reuses an index
   that a thief might still claim. OCaml [Atomic] is seq_cst, which is
   (conservatively) all the fencing the published algorithm needs. *)

type 'a buf = { size : int; slots : 'a option array }

let mk_buf size = { size; slots = Array.make size None }
let buf_get b i = b.slots.(i land (b.size - 1))
let buf_set b i v = b.slots.(i land (b.size - 1)) <- v

type 'a deque = {
  top : int Atomic.t; (* next index thieves take from *)
  bottom : int Atomic.t; (* next index the owner pushes at *)
  buf : 'a buf Atomic.t;
      (* atomic so a thief that observed a post-grow [bottom] also
         observes the post-grow buffer — a stale smaller buffer would
         alias high indices onto old slots and hand the thief the wrong
         item *)
}

let deque () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (mk_buf 64) }

let depth q =
  let n = Atomic.get q.bottom - Atomic.get q.top in
  if n < 0 then 0 else n

let grow q b t =
  let old = Atomic.get q.buf in
  let nw = mk_buf (old.size * 2) in
  for i = t to b - 1 do
    buf_set nw i (buf_get old i)
  done;
  Atomic.set q.buf nw

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b - t >= (Atomic.get q.buf).size - 1 then grow q b t;
  buf_set (Atomic.get q.buf) b (Some v);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore bottom *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let bf = Atomic.get q.buf in
    let v = buf_get bf b in
    if b > t then begin
      buf_set bf b None;
      v
    end
    else begin
      (* last element: race a thief for it via top *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf_set bf b None;
        v
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if b - t <= 0 then None
  else
    (* Read the slot before the CAS: safe because the owner grows the
       buffer instead of wrapping, so a slot is never overwritten while
       [top] still names it; if [top] moved, the CAS fails and the value
       is discarded. The buffer load follows the [bottom] load, so it is
       at least as fresh as the size check. *)
    let v = buf_get (Atomic.get q.buf) t in
    if Atomic.compare_and_set q.top t (t + 1) then v else None

module Pool = struct
  type t = {
    deques : (unit -> unit) deque array;
    pending : int Atomic.t; (* queued + running items *)
    n_steals : int Atomic.t;
    n_spawned : int Atomic.t;
    seed_rr : int ref; (* round-robin cursor for [seed]; pre-run only *)
    m_steals : Obs.Metrics.counter;
    m_steal_fail : Obs.Metrics.counter;
    m_spawned : Obs.Metrics.counter;
    m_depth : Obs.Metrics.gauge array; (* per-worker max queue depth *)
    key : t option Domain.DLS.key; (* worker identity, lazily minted *)
    ids : int Domain.DLS.key;
  }

  (* Each worker domain stamps its pool + deque id into DLS so [spawn]
     from arbitrarily deep in the enumerators finds its own deque
     without threading the pool through every call. *)
  let mk_keys () =
    (Domain.DLS.new_key (fun () -> None), Domain.DLS.new_key (fun () -> -1))

  let create ?registry ~workers () =
    let reg =
      match registry with Some r -> r | None -> Obs.Metrics.default ()
    in
    let workers = max 1 workers in
    let key, ids = mk_keys () in
    {
      deques = Array.init workers (fun _ -> deque ());
      pending = Atomic.make 0;
      n_steals = Atomic.make 0;
      n_spawned = Atomic.make 0;
      seed_rr = ref 0;
      m_steals = Obs.Metrics.counter reg ~help:"successful work steals" "search.steal.count";
      m_steal_fail =
        Obs.Metrics.counter reg ~help:"empty or raced steal attempts"
          "search.steal.failed";
      m_spawned =
        Obs.Metrics.counter reg ~help:"subtree continuations spawned"
          "search.steal.spawned";
      m_depth =
        Array.init workers (fun i ->
            Obs.Metrics.gauge reg ~help:"max enumeration queue depth"
              (Printf.sprintf "search.queue.depth.w%d" i));
      key;
      ids;
    }

  let workers t = Array.length t.deques
  let steals t = Atomic.get t.n_steals
  let spawned t = Atomic.get t.n_spawned
  let pending t = Atomic.get t.pending

  let seed t f =
    let i = !(t.seed_rr) mod Array.length t.deques in
    incr t.seed_rr;
    Atomic.incr t.pending;
    push t.deques.(i) f

  let spawn t f =
    match Domain.DLS.get t.key with
    | Some t' when t' == t ->
        let id = Domain.DLS.get t.ids in
        Atomic.incr t.pending;
        Atomic.incr t.n_spawned;
        Obs.Metrics.bump t.m_spawned;
        let q = t.deques.(id) in
        push q f;
        Obs.Metrics.max_gauge t.m_depth.(id) (float_of_int (depth q));
        true
    | _ -> false

  (* Fixed-increment LCG per worker: deterministic per (pool-run, id),
     cheap, and good enough for victim spreading. *)
  let mk_rng id =
    let s = ref (0x9E3779B9 + (id * 0x85EBCA6B)) in
    fun bound ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      !s mod bound

  let run_worker t ~id ~stop ~run =
    Domain.DLS.set t.key (Some t);
    Domain.DLS.set t.ids id;
    let n = Array.length t.deques in
    let rng = mk_rng id in
    let own = t.deques.(id) in
    let exec f =
      Fun.protect ~finally:(fun () -> Atomic.decr t.pending) (fun () -> run f)
    in
    let try_steal () =
      (* One sweep over the other deques starting at a random victim;
         None after a full fruitless pass. *)
      if n = 1 then None
      else begin
        let start = rng (n - 1) in
        let found = ref None in
        let k = ref 0 in
        while !found = None && !k < n - 1 do
          let v = (start + !k) mod (n - 1) in
          let v = if v >= id then v + 1 else v in
          (match steal t.deques.(v) with
          | Some f ->
              Atomic.incr t.n_steals;
              Obs.Metrics.bump t.m_steals;
              found := Some f
          | None -> Obs.Metrics.bump t.m_steal_fail);
          incr k
        done;
        !found
      end
    in
    let rec loop idle =
      if stop () then ()
      else
        match pop own with
        | Some f ->
            exec f;
            loop 0
        | None -> (
            if Atomic.get t.pending = 0 then ()
            else
              match try_steal () with
              | Some f ->
                  exec f;
                  loop 0
              | None ->
                  (* Nothing stealable but items still running — their
                     spawns may land any moment. Back off quickly: on an
                     oversubscribed host a spinning thief eats the
                     timeslice of the domain it is waiting on. *)
                  Domain.cpu_relax ();
                  if idle > 4 then
                    Unix.sleepf (Float.min 0.002 (0.0002 *. float_of_int idle));
                  loop (idle + 1))
    in
    Fun.protect ~finally:(fun () -> Domain.DLS.set t.key None) (fun () -> loop 0)
end
