(* Search checkpointing: periodically persist the generator's progress
   (completed task cursor, emitted candidate muGraphs, solver/funnel
   stats) into the run directory as checkpoint.json, so a killed run
   resumes with `mirage_cli optimize --resume RUN_DIR` instead of
   discarding hours of enumeration.

   Tasks (the kernel-level pass plus one per root configuration) are
   deterministic given the spec and config, so a completed-task set
   keyed by task index is a sound cursor: resume skips those indices and
   re-runs only interrupted ones. Candidates are stored as full muGraph
   JSON — re-emitted graphs from a re-run task deduplicate against the
   reloaded seen-hash set. *)

open Mugraph
module J = Obs.Jsonw

let schema = "mirage.checkpoint.v1"

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

(* ------------------------------------------------------------------ *)
(* muGraph JSON codec                                                  *)
(* ------------------------------------------------------------------ *)

let ints_to_json a = J.List (Array.to_list (Array.map (fun i -> J.Int i) a))

let ints_of_json = function
  | J.List l ->
      Array.of_list
        (List.map
           (function J.Int i -> i | _ -> fail "int array: non-int element")
           l)
  | _ -> fail "int array: not a list"

let prim_to_json (p : Op.prim) =
  match p with
  | Op.Matmul -> J.Str "matmul"
  | Op.Binary Op.Add -> J.Str "add"
  | Op.Binary Op.Mul -> J.Str "mul"
  | Op.Binary Op.Div -> J.Str "div"
  | Op.Binary Op.Sub -> J.Str "sub"
  | Op.Unary Op.Exp -> J.Str "exp"
  | Op.Unary Op.Sqr -> J.Str "sqr"
  | Op.Unary Op.Sqrt -> J.Str "sqrt"
  | Op.Unary Op.Silu -> J.Str "silu"
  | Op.Unary Op.Relu -> J.Str "relu"
  | Op.Transpose -> J.Str "transpose"
  | Op.Concat_matmul -> J.Str "concat_matmul"
  | Op.Sum { dim; group } ->
      J.Obj [ ("op", J.Str "sum"); ("dim", J.Int dim); ("group", J.Int group) ]
  | Op.Repeat { dim; times } ->
      J.Obj
        [ ("op", J.Str "repeat"); ("dim", J.Int dim); ("times", J.Int times) ]
  | Op.Reshape s -> J.Obj [ ("op", J.Str "reshape"); ("shape", ints_to_json s) ]

let int_field k j =
  match J.member k j with
  | Some (J.Int i) -> i
  | _ -> fail "missing int field %S" k

let prim_of_json j : Op.prim =
  match j with
  | J.Str "matmul" -> Op.Matmul
  | J.Str "add" -> Op.Binary Op.Add
  | J.Str "mul" -> Op.Binary Op.Mul
  | J.Str "div" -> Op.Binary Op.Div
  | J.Str "sub" -> Op.Binary Op.Sub
  | J.Str "exp" -> Op.Unary Op.Exp
  | J.Str "sqr" -> Op.Unary Op.Sqr
  | J.Str "sqrt" -> Op.Unary Op.Sqrt
  | J.Str "silu" -> Op.Unary Op.Silu
  | J.Str "relu" -> Op.Unary Op.Relu
  | J.Str "transpose" -> Op.Transpose
  | J.Str "concat_matmul" -> Op.Concat_matmul
  | J.Str s -> fail "unknown primitive %S" s
  | J.Obj _ -> (
      match J.member "op" j with
      | Some (J.Str "sum") ->
          Op.Sum { dim = int_field "dim" j; group = int_field "group" j }
      | Some (J.Str "repeat") ->
          Op.Repeat { dim = int_field "dim" j; times = int_field "times" j }
      | Some (J.Str "reshape") -> (
          match J.member "shape" j with
          | Some s -> Op.Reshape (ints_of_json s)
          | None -> fail "reshape without shape")
      | _ -> fail "unknown structured primitive")
  | _ -> fail "primitive: not a string or object"

let target_to_json = function
  | Dmap.Dim d -> J.Int d
  | Dmap.Replica -> J.Str "phi"

let target_of_json = function
  | J.Int d -> Dmap.Dim d
  | J.Str "phi" -> Dmap.Replica
  | _ -> fail "dimension target: want int or \"phi\""

let targets_to_json a = J.List (Array.to_list (Array.map target_to_json a))

let targets_of_json = function
  | J.List l -> Array.of_list (List.map target_of_json l)
  | _ -> fail "target array: not a list"

let thread_graph_to_json (tg : Graph.thread_graph) =
  J.List
    (Array.to_list
       (Array.map
          (fun (n : Graph.thread_node) ->
            J.Obj
              (( "t",
                 match n.top with
                 | Graph.T_input i -> J.Obj [ ("input", J.Int i) ]
                 | Graph.T_prim p -> prim_to_json p )
              :: [ ("ins", J.List (List.map (fun i -> J.Int i) n.tins)) ]))
          tg.Graph.tnodes))

let int_list_of_json = function
  | J.List l ->
      List.map
        (function J.Int i -> i | _ -> fail "int list: non-int element")
        l
  | _ -> fail "int list: not a list"

let thread_graph_of_json = function
  | J.List l ->
      {
        Graph.tnodes =
          Array.of_list
            (List.map
               (fun n ->
                 let top =
                   match J.member "t" n with
                   | Some (J.Obj _ as o) when J.member "input" o <> None ->
                       Graph.T_input (int_field "input" o)
                   | Some p -> Graph.T_prim (prim_of_json p)
                   | None -> fail "thread node without op"
                 in
                 let tins =
                   match J.member "ins" n with
                   | Some ins -> int_list_of_json ins
                   | None -> fail "thread node without ins"
                 in
                 { Graph.top; tins })
               l);
      }
  | _ -> fail "thread graph: not a list"

let block_op_to_json (bop : Graph.block_op) =
  match bop with
  | Graph.B_initer { input; imap; fmap } ->
      J.Obj
        [
          ("k", J.Str "initer");
          ("input", J.Int input);
          ("imap", targets_to_json imap);
          ("fmap", targets_to_json fmap);
        ]
  | Graph.B_prim p -> J.Obj [ ("k", J.Str "prim"); ("op", prim_to_json p) ]
  | Graph.B_accum { fmap } ->
      J.Obj [ ("k", J.Str "accum"); ("fmap", targets_to_json fmap) ]
  | Graph.B_outsaver { omap } ->
      J.Obj [ ("k", J.Str "outsaver"); ("omap", ints_to_json omap) ]
  | Graph.B_threadgraph tg ->
      J.Obj [ ("k", J.Str "threadgraph"); ("tnodes", thread_graph_to_json tg) ]

let member_exn k j =
  match J.member k j with Some v -> v | None -> fail "missing field %S" k

let block_op_of_json j : Graph.block_op =
  match J.member "k" j with
  | Some (J.Str "initer") ->
      Graph.B_initer
        {
          input = int_field "input" j;
          imap = targets_of_json (member_exn "imap" j);
          fmap = targets_of_json (member_exn "fmap" j);
        }
  | Some (J.Str "prim") -> Graph.B_prim (prim_of_json (member_exn "op" j))
  | Some (J.Str "accum") ->
      Graph.B_accum { fmap = targets_of_json (member_exn "fmap" j) }
  | Some (J.Str "outsaver") ->
      Graph.B_outsaver { omap = ints_of_json (member_exn "omap" j) }
  | Some (J.Str "threadgraph") ->
      Graph.B_threadgraph (thread_graph_of_json (member_exn "tnodes" j))
  | _ -> fail "unknown block op"

let block_graph_to_json (bg : Graph.block_graph) =
  J.Obj
    [
      ("grid", ints_to_json bg.Graph.grid);
      ("forloop", ints_to_json bg.Graph.forloop);
      ( "bnodes",
        J.List
          (Array.to_list
             (Array.map
                (fun (n : Graph.block_node) ->
                  J.Obj
                    [
                      ("op", block_op_to_json n.bop);
                      ("ins", J.List (List.map (fun i -> J.Int i) n.bins));
                    ])
                bg.Graph.bnodes)) );
    ]

let block_graph_of_json j : Graph.block_graph =
  {
    Graph.grid = ints_of_json (member_exn "grid" j);
    forloop = ints_of_json (member_exn "forloop" j);
    bnodes =
      (match member_exn "bnodes" j with
      | J.List l ->
          Array.of_list
            (List.map
               (fun n ->
                 {
                   Graph.bop = block_op_of_json (member_exn "op" n);
                   bins = int_list_of_json (member_exn "ins" n);
                 })
               l)
      | _ -> fail "bnodes: not a list");
  }

let tensor_ref_to_json ({ node; port } : Graph.tensor_ref) =
  J.Obj [ ("n", J.Int node); ("p", J.Int port) ]

let tensor_ref_of_json j : Graph.tensor_ref =
  { node = int_field "n" j; port = int_field "p" j }

let kernel_op_to_json (kop : Graph.kernel_op) =
  match kop with
  | Graph.K_input { name; shape } ->
      J.Obj
        [
          ("k", J.Str "input");
          ("name", J.Str name);
          ("shape", ints_to_json shape);
        ]
  | Graph.K_prim p -> J.Obj [ ("k", J.Str "prim"); ("op", prim_to_json p) ]
  | Graph.K_graphdef bg ->
      J.Obj [ ("k", J.Str "graphdef"); ("bg", block_graph_to_json bg) ]

let kernel_op_of_json j : Graph.kernel_op =
  match J.member "k" j with
  | Some (J.Str "input") ->
      Graph.K_input
        {
          name =
            (match member_exn "name" j with
            | J.Str s -> s
            | _ -> fail "input name: not a string");
          shape = ints_of_json (member_exn "shape" j);
        }
  | Some (J.Str "prim") -> Graph.K_prim (prim_of_json (member_exn "op" j))
  | Some (J.Str "graphdef") ->
      Graph.K_graphdef (block_graph_of_json (member_exn "bg" j))
  | _ -> fail "unknown kernel op"

let graph_to_json (g : Graph.kernel_graph) =
  J.Obj
    [
      ( "knodes",
        J.List
          (Array.to_list
             (Array.map
                (fun (n : Graph.kernel_node) ->
                  J.Obj
                    [
                      ("op", kernel_op_to_json n.kop);
                      ("ins", J.List (List.map tensor_ref_to_json n.kins));
                    ])
                g.Graph.knodes)) );
      ("outputs", J.List (List.map tensor_ref_to_json g.Graph.outputs));
    ]

let graph_of_json_exn j : Graph.kernel_graph =
  let g =
    {
      Graph.knodes =
        (match member_exn "knodes" j with
        | J.List l ->
            Array.of_list
              (List.map
                 (fun n ->
                   {
                     Graph.kop = kernel_op_of_json (member_exn "op" n);
                     kins =
                       (match member_exn "ins" n with
                       | J.List refs -> List.map tensor_ref_of_json refs
                       | _ -> fail "kins: not a list");
                   })
                 l)
        | _ -> fail "knodes: not a list");
      outputs =
        (match member_exn "outputs" j with
        | J.List refs -> List.map tensor_ref_of_json refs
        | _ -> fail "outputs: not a list");
    }
  in
  (match Graph.validate g with
  | () -> ()
  | exception Graph.Ill_formed m -> fail "ill-formed graph: %s" m);
  g

let graph_of_json j =
  match graph_of_json_exn j with
  | g -> Ok g
  | exception Decode m -> Error m

(* ------------------------------------------------------------------ *)
(* Config fingerprint                                                  *)
(* ------------------------------------------------------------------ *)

(* Budget and worker-count fields are stripped: a resumed run typically
   gets a fresh (larger) budget and may use a different domain count,
   and neither changes the task list the cursor indexes into. *)
let config_fingerprint cfg_json =
  let stripped =
    match cfg_json with
    | J.Obj fields ->
        J.Obj
          (List.filter
             (fun (k, _) ->
               not
                 (List.mem k
                    [ "time_budget_s"; "node_budget"; "num_workers" ]))
             fields)
    | v -> v
  in
  Digest.to_hex (Digest.string (J.to_string stripped))

(* ------------------------------------------------------------------ *)
(* Manager                                                             *)
(* ------------------------------------------------------------------ *)

type piece_state = {
  mutable done_tasks : int list;  (* ascending on save *)
  mutable tasks_total : int;
  mutable cands : (int * Graph.kernel_graph) list;  (* newest first *)
}

type t = {
  cpath : string;
  lock : Mutex.t;
  mutable pieces : (int * piece_state) list;
  mutable meta : (string * J.t) list;
  interval_s : float;
  mutable last_save : float;
  mutable dirty : bool;
}

let path t = t.cpath

let create ?(interval_s = 5.0) ~path () =
  {
    cpath = path;
    lock = Mutex.create ();
    pieces = [];
    meta = [];
    interval_s;
    last_save = 0.0;
    dirty = false;
  }

let set_meta t kvs =
  Mutex.lock t.lock;
  List.iter
    (fun (k, v) -> t.meta <- (k, v) :: List.remove_assoc k t.meta)
    kvs;
  t.dirty <- true;
  Mutex.unlock t.lock

let meta t k =
  Mutex.lock t.lock;
  let v = List.assoc_opt k t.meta in
  Mutex.unlock t.lock;
  v

let piece_locked t id =
  match List.assoc_opt id t.pieces with
  | Some p -> p
  | None ->
      let p = { done_tasks = []; tasks_total = 0; cands = [] } in
      t.pieces <- (id, p) :: t.pieces;
      p

let to_json_locked t =
  J.Obj
    [
      ("schema", J.Str schema);
      ("meta", J.Obj (List.rev t.meta));
      ( "pieces",
        J.List
          (List.rev_map
             (fun (id, p) ->
               J.Obj
                 [
                   ("id", J.Int id);
                   ("tasks_total", J.Int p.tasks_total);
                   ( "done",
                     J.List
                       (List.map
                          (fun i -> J.Int i)
                          (List.sort_uniq compare p.done_tasks)) );
                   ( "candidates",
                     J.List
                       (List.rev_map
                          (fun (gid, g) ->
                            J.Obj
                              [ ("gid", J.Int gid); ("graph", graph_to_json g) ])
                          p.cands) );
                 ])
             t.pieces) );
    ]

(* Atomic persist: whole document to a temp file, then rename, so a
   crash mid-write never leaves a torn checkpoint behind. *)
let save_locked t =
  let tmp = t.cpath ^ ".tmp" in
  J.to_file tmp (to_json_locked t);
  Sys.rename tmp t.cpath;
  t.last_save <- Unix.gettimeofday ();
  t.dirty <- false

let save t =
  Mutex.lock t.lock;
  (match save_locked t with
  | () -> ()
  | exception e ->
      Obs.Budget.degrade "checkpoint.write";
      Obs.Log.warn (fun m ->
          m "checkpoint: save failed: %s" (Printexc.to_string e)));
  Mutex.unlock t.lock

let maybe_save t =
  Mutex.lock t.lock;
  let due =
    t.dirty && Unix.gettimeofday () -. t.last_save >= t.interval_s
  in
  (if due then
     match save_locked t with
     | () -> ()
     | exception e ->
         Obs.Budget.degrade "checkpoint.write";
         Obs.Log.warn (fun m ->
             m "checkpoint: save failed: %s" (Printexc.to_string e)));
  Mutex.unlock t.lock

let task_done t ~piece ~task ~tasks_total =
  Mutex.lock t.lock;
  let p = piece_locked t piece in
  if not (List.mem task p.done_tasks) then p.done_tasks <- task :: p.done_tasks;
  p.tasks_total <- tasks_total;
  t.dirty <- true;
  Mutex.unlock t.lock;
  (* a completed task is the natural (coarse) checkpoint boundary *)
  save t

let add_candidate t ~piece ~gid g =
  Mutex.lock t.lock;
  let p = piece_locked t piece in
  p.cands <- (gid, g) :: p.cands;
  t.dirty <- true;
  Mutex.unlock t.lock;
  maybe_save t

let completed t ~piece =
  Mutex.lock t.lock;
  let l =
    match List.assoc_opt piece t.pieces with
    | Some p -> List.sort_uniq compare p.done_tasks
    | None -> []
  in
  Mutex.unlock t.lock;
  l

let candidates t ~piece =
  Mutex.lock t.lock;
  let l =
    match List.assoc_opt piece t.pieces with
    | Some p -> List.rev p.cands
    | None -> []
  in
  Mutex.unlock t.lock;
  l

let load path =
  let file =
    if Sys.file_exists path && Sys.is_directory path then
      Filename.concat path "checkpoint.json"
    else path
  in
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic -> (
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match J.of_string s with
      | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
      | Ok j -> (
          match J.member "schema" j with
          | Some (J.Str s) when s = schema -> (
              try
                let t = create ~path:file () in
                (match J.member "meta" j with
                | Some (J.Obj kvs) -> t.meta <- List.rev kvs
                | _ -> ());
                (match J.member "pieces" j with
                | Some (J.List ps) ->
                    List.iter
                      (fun pj ->
                        let id = int_field "id" pj in
                        let p = piece_locked t id in
                        p.tasks_total <-
                          (match J.member "tasks_total" pj with
                          | Some (J.Int n) -> n
                          | _ -> 0);
                        p.done_tasks <- int_list_of_json (member_exn "done" pj);
                        p.cands <-
                          (match member_exn "candidates" pj with
                          | J.List cs ->
                              List.rev_map
                                (fun c ->
                                  ( int_field "gid" c,
                                    graph_of_json_exn (member_exn "graph" c) ))
                                cs
                          | _ -> fail "candidates: not a list"))
                      ps
                | _ -> ());
                t.dirty <- false;
                Ok t
              with Decode m -> Error (Printf.sprintf "%s: %s" file m))
          | _ -> Error (Printf.sprintf "%s: not a %s file" file schema)))
