(** Self-contained run reports: one directory per [optimize]/[bench]
    invocation holding everything needed to understand the run after the
    fact — [report.json] (pretty-printed: config fingerprint, device,
    environment, funnel snapshot, phase timings, status), [trace.json]
    (Chrome trace events) and [journal.jsonl] (the {!Journal} flight
    record).

    The report is schema'd JSON assembled from named sections; callers
    (the CLI, the bench harness) add whatever sections their run
    produces. {!num_deltas} and {!gate} compare two reports numerically —
    the engine behind [mirage_cli diff] and the bench-history regression
    gate. *)

type t

val schema : string
(** The value of the report's ["schema"] field
    (["mirage.run_report.v1"]). *)

val create : dir:string -> t
(** Create (recursively) the run directory. Sections are buffered in
    memory until {!write}. *)

val dir : t -> string

val add : t -> string -> Jsonw.t -> unit
(** [add t name section] appends a section; a repeated [name] replaces
    the earlier value in place. *)

val write : t -> unit
(** Write [report.json] (pretty, human-diffable) into the directory:
    the ["schema"] field first, then sections in insertion order. *)

val path : t -> string
(** The path of [report.json] inside the run directory. *)

val env_json : unit -> Jsonw.t
(** The environment fingerprint section: OCaml runtime version, host
    word size / OS type, argv, cwd, and every [MIRAGE_*] environment
    variable. *)

val phase_timings : Trace.t -> Jsonw.t
(** Aggregate a trace into top-level phase timings: for each depth-1
    span name, total milliseconds and span count. *)

val load : string -> (Jsonw.t, string) result
(** Read a report: accepts the [report.json] file itself or the run
    directory containing it. *)

(** {1 Numeric comparison} *)

type delta = { key : string; va : float; vb : float }
(** One shared numeric leaf of two reports, addressed by its dotted
    path, e.g. ["funnel.expanded"] or ["cost.optimized_us"]. *)

val rel : delta -> float
(** Relative change [(vb - va) / |va|]; [infinity] when [va = 0] and
    [vb <> 0]; [0] when both are zero. *)

val num_deltas : Jsonw.t -> Jsonw.t -> delta list
(** Every numeric leaf present in both documents, in [a]'s field
    order. *)

val gate :
  ?keys:string list -> threshold:float -> Jsonw.t -> Jsonw.t -> delta list
(** Regression gate: the deltas among [keys] (default
    [["cost.optimized_us"; "timing.wall_s"]]; a key matches leaves whose
    dotted path equals it) whose relative {b increase} exceeds
    [threshold] (a fraction: [0.05] = 5%). Empty means no regression —
    [b] is the candidate run, [a] the baseline. *)
