(** Fault injection for chaos testing.

    Probe points across the pipeline call {!trip}[ "point"]; when the
    point is armed — via [MIRAGE_FAULT=point:rate[:count]] in the
    environment or {!configure} from a test — the call raises
    {!Injected} with the configured probability, up to [count] times.
    The surrounding quarantine/degradation machinery (worker
    supervision, journal write protection, ILP fallback) is what is
    under test.

    Firing is deterministic: the decision hashes the point name and its
    call ordinal, so a failing chaos run replays bit-identically.

    Spec grammar (comma-separated):
    {v point:rate[:count] v}
    e.g. [MIRAGE_FAULT=enum.block:1.0:2,verify:0.25]. *)

exception Injected of string
(** Raised by {!trip} when the named point fires. *)

val known_points : string list
(** The documented probe points: [enum.block], [enum.kernel], [verify],
    [ilp], [journal.write], [report.finalize], [serve.slow]. {!trip}
    accepts any name. *)

val trip : string -> unit
(** Raise {!Injected} if the named point is armed and fires; a no-op
    (one atomic load) when nothing is armed. *)

val configure : string -> (unit, string) result
(** Arm points from a spec string, replacing any previous configuration
    (including the environment's). [""] disarms everything. *)

val parse : string -> (unit, string) result
(** Validate a spec without installing it. *)

val clear : unit -> unit
(** Disarm all points. *)

val armed : unit -> bool

val fired : unit -> (string * int) list
(** Injection counts per armed point (only points that fired). *)
