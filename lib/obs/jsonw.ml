type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* Indented rendering for artifacts meant to be read (and diffed) by
   humans — report.json. Scalars and empty containers stay on one line;
   every list element / object field gets its own line. *)
let pretty ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as scalar -> write buf scalar
    | List [] -> Buffer.add_string buf "[]"
    | Obj [] -> Buffer.add_string buf "{}"
    | List l ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) v)
          l;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            add_escaped buf k;
            Buffer.add_string buf ": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let to_file ?pretty:(use_pretty = false) path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (if use_pretty then pretty v else to_string v);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (match Uchar.of_int code with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> fail "bad \\u codepoint");
              loop ()
          | _ -> fail "unknown escape")
      | c -> (
          Buffer.add_char buf c;
          loop ())
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if has_frac then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
