(** A minimal JSON value type with a writer and a parser — enough for the
    observability layer (Chrome trace files, metrics dumps, machine-readable
    benchmark results) without pulling in an external dependency.

    The writer emits compact, valid JSON (RFC 8259): strings are escaped,
    non-finite floats become [null]. The parser accepts anything the writer
    produces plus ordinary interchange JSON (whitespace, nested
    containers, escape sequences including [\uXXXX]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pretty : ?indent:int -> t -> string
(** Indented rendering for human-diffable artifacts ([report.json]):
    one list element / object field per line, [indent] spaces (default 2)
    per nesting level. Scalars and empty containers stay on one line. *)

val to_file : ?pretty:bool -> string -> t -> unit
(** [to_file path v] writes [to_string v] (or {!pretty} when
    [~pretty:true]) followed by a newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Numbers
    without [.], [e] or [E] parse as [Int] when they fit, else [Float]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)
