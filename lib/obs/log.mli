(** A leveled structured logger, off by default so instrumented code adds
    no output to the tier-1 test suite or the CLI unless asked.

    The level comes from the [MIRAGE_LOG] environment variable
    ([debug], [info] or [warn]; anything else — including unset — means
    off) and can be overridden programmatically with {!set_level}.

    Messages use the [Logs]-style continuation form so the formatting work
    is skipped entirely when the level is disabled:

    {[ Obs.Log.debug (fun m -> m "expanded %d prefixes" n) ]}

    Output goes to [stderr], one line per message, serialized across
    domains. *)

type level = Debug | Info | Warn

val level_of_string : string -> level option
(** ["debug"], ["info"], ["warn"]/["warning"] (case-insensitive);
    [None] otherwise. *)

val set_level : level option -> unit
val current_level : unit -> level option

val enabled : level -> bool

type 'a msgf = (('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

val debug : 'a msgf -> unit
val info : 'a msgf -> unit
val warn : 'a msgf -> unit
