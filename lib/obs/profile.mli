(** Domain-safe wall-time phase accounting for the search engine.

    A profiler owns a set of named phases arranged in slash-separated
    paths ([search/enumerate/task.kernel]); entering a phase pushes a
    frame on the calling execution context's stack, leaving it charges
    the elapsed wall time to the phase ([total]) and the portion not
    covered by nested phases to [self]. Every phase is backed by
    registry counters ([profile.<path>.count/.total_ns/.self_ns]) and a
    per-phase {!Hdr} sketch ([profile.phase.<path>]), so updates are
    lock-free and exact under concurrency, and the numbers surface
    through the ordinary metrics exposition (snapshot, Prometheus)
    without extra plumbing.

    Frame stacks are keyed by (domain, thread) — the same discipline as
    {!Journal} context — because the serving tier runs concurrent
    handler threads on one domain: a per-domain stack alone would
    interleave two requests' phases. Worker domains inherit the
    spawner's phase path via {!saved_path}/{!with_base}, so a worker's
    [task.kernel] phase lands under [search/enumerate] even though it
    runs on a fresh stack.

    The profiler also accounts prune-rule efficacy: each rule keeps an
    exact fire counter plus a histogram of the remaining search depth at
    the moment of the cut, from which {!snapshot} estimates the subtree
    expansions the rule saved (geometric model at the observed
    branching factor). *)

type t

val create : ?registry:Metrics.t -> unit -> t
(** A standalone profiler (fresh registry by default). *)

val registry : t -> Metrics.t

(** {1 The ambient profiler}

    Like {!Trace} and {!Journal}: one process-global profiler that the
    instrumented code records into when enabled, at the cost of a single
    atomic load when disabled. *)

val enable : ?registry:Metrics.t -> unit -> t
(** Install (replacing any previous) and return the ambient profiler. *)

val disable : unit -> unit
val active : unit -> t option

(** {1 Phases} *)

val with_phase : string -> (unit -> 'a) -> 'a
(** [with_phase name f] runs [f] inside phase [name], nested under the
    context's current phase (or at the root). No-op when disabled.
    Exception-safe: the frame is charged even if [f] raises. *)

val saved_path : unit -> string
(** The calling context's current phase path ([""] when disabled or at
    the root) — capture before [Domain.spawn] and replay in the child
    with {!with_base}. *)

val with_base : string -> (unit -> 'a) -> 'a
(** [with_base path f] runs [f] on a fresh frame stack whose root phases
    attach under [path] — the worker side of {!saved_path}. *)

(** {1 Batched timers}

    For hot paths (the abstract-expression prune check runs per
    attempted extension) a full phase per call would double-count
    gettimeofday overhead. A [timer] accumulates count and duration
    locally and {!flush_timer} charges the batch as a single child
    phase of the context's current phase. Counts are exact but the
    clock is read on a 1-in-64 sample of calls, so the batch duration
    is a scaled estimate — a few ns amortized per call. *)

type timer

val timer : string -> timer
(** A local accumulator for child phase [name]; pinned to the ambient
    profiler at creation (a no-op timer when disabled). *)

val timed : timer -> (unit -> 'a) -> 'a
val flush_timer : timer -> unit
(** Charge the accumulated batch to [<current path>/<name>] (count,
    total, self, one Hdr observation for the batch) and reset. Call on
    the thread that runs the phases the batch belongs under. *)

(** {1 Overlay notes}

    Absolute-path time contributions recorded from code that cannot see
    the caller's phase structure (the solver's decision procedure).
    Overlays carry no self time and are excluded from coverage math. *)

val note : string -> float -> unit
(** [note name dt_s] adds one observation of [dt_s] seconds to overlay
    phase [name]. No-op when disabled. *)

(** {1 Prune-rule analytics} *)

type rule_handle
(** Resolved once per enumeration task; fires accumulate locally in the
    handle (plain increments) and drain to the shared counters on
    {!flush_rule} or automatically every 4096 fires. The handle of a
    disabled profiler is inert. *)

val prune_rule : string -> rule_handle

val fire : rule_handle -> remaining:int -> unit
(** Record one cut by the rule with [remaining] operator slots below the
    rejected prefix (clamped into the efficacy histogram). *)

val flush_rule : rule_handle -> unit
(** Drain the handle's batched fires to the profiler's counters — call
    at task end, on any thread (the batch is handle-local). *)

val note_branching : float -> unit
(** Report an observed branching factor (attempted extensions per
    accepted prefix); merged by max into the ambient profiler. *)

val set_branching : t -> float -> unit

(** {1 Snapshots} *)

type phase_snap = {
  p_path : string;
  p_depth : int;  (** number of ['/'] separators in the path *)
  p_overlay : bool;
  p_count : int;
  p_total_s : float;
  p_self_s : float;
  p_hdr : Hdr.snapshot;
}

type rule_snap = {
  r_rule : string;
  r_fires : int;
  r_by_remaining : int array;
  r_est_saved : float;
      (** estimated subtree expansions the rule saved, geometric model
          at the snapshot's branching factor; [0.] when the branching
          factor is unknown *)
}

type snapshot = {
  wall_s : float;  (** since [create] *)
  branching : float;  (** max reported; [0.] when never reported *)
  phases : phase_snap list;  (** registration order *)
  prune_rules : rule_snap list;
}

val snapshot : t -> snapshot

val schema : string
(** ["mirage.profile.v1"] *)

val snapshot_json : ?include_hdrs:bool -> snapshot -> Jsonw.t
(** The schema'd JSON the run report and the metrics exposition embed;
    [include_hdrs:false] drops the per-phase quantile cards (the compact
    wire form). *)

(** {1 Analysis} *)

val coverage : Jsonw.t -> (string * float) option
(** [coverage j] — for a {!snapshot_json} value, the root phase with the
    largest total and the fraction of its wall time attributed to its
    direct sub-phases (1.0 for a root with no children and no time).
    [None] when the snapshot has no root phases. *)

val render : Jsonw.t -> (string, string) result
(** Render a {!snapshot_json} value as the human phase table: the phase
    tree with count/total/self, the attribution line ({!coverage}), and
    the prune rules ranked by estimated savings. *)
