(** A domain-safe, fixed-memory latency histogram with bounded relative
    error (HdrHistogram / DDSketch style).

    Buckets are geometric with ratio [gamma = (1+error)/(1-error)]: for
    any recorded value [v] in [[lo, hi]], the estimate reported for
    [v]'s bucket is within [error * v] of [v]. Quantiles inherit the
    bound: {!quantile} returns an estimate within relative [error] of
    the exact sorted-sample quantile at rank
    [max 1 (ceil (p * count))] — the property the qcheck suite asserts
    across six orders of magnitude. Values outside [[lo, hi]] are
    clamped into the edge buckets (the true min/max are still tracked
    exactly).

    Memory is fixed at creation (~920 buckets for the default
    1 µs … 100 s at 1% error) and {!record} is lock-free — one atomic
    increment per bucket/count plus CAS loops for sum/min/max — so
    server handler threads and search worker domains record
    concurrently without losing updates. *)

type t

val create :
  ?error:float -> ?lo:float -> ?hi:float -> ?help:string -> string -> t
(** [create name] — a histogram covering [lo, hi] (seconds; default
    1e-6 … 100.0) with relative error bound [error] (default 0.01).
    Raises [Invalid_argument] unless [0 < error < 1] and [0 < lo < hi]. *)

val name : t -> string
val help : t -> string

val error : t -> float
(** The relative-error bound [eps] the histogram was created with. *)

val range : t -> float * float

val record : t -> float -> unit
(** Record one value in seconds. Lock-free; NaN is ignored. *)

val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t p] — estimate of the exact sample quantile at rank
    [max 1 (ceil (p * count))], within relative {!error} for samples in
    [[lo, hi]]. Returns [0.0] when empty; [p] is clamped to [0, 1]. *)

val reset : t -> unit

(** {1 Snapshots}

    A consistent-enough copy for rendering: bucket counts are read one
    atomic load each (a snapshot taken mid-record may be off by the
    in-flight event, never torn). *)

type snapshot = {
  eps : float;
  lo : float;
  hi : float;
  gamma : float;
  counts : int array;
  count : int;
  sum : float;
  vmin : float;  (** true recorded min; [infinity] when empty *)
  vmax : float;  (** true recorded max; [neg_infinity] when empty *)
}

val snapshot : t -> snapshot
val snap_quantile : snapshot -> float -> float
val snap_mean : snapshot -> float

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise sum. Raises [Invalid_argument] on mismatched
    [eps]/[lo]/[hi]. *)

val snap_to_json : snapshot -> Jsonw.t
(** The quantile card used by the service exposition: [count], [error],
    [sum_us]/[mean_us], [p50_us]/[p90_us]/[p99_us], exact
    [min_us]/[max_us] — all durations in microseconds. *)

val to_json : t -> Jsonw.t
