type counter = { cname : string; chelp : string; cv : int Atomic.t }

type histogram = {
  hname : string;
  hhelp : string;
  bounds : float array;
  buckets : int Atomic.t array;  (** length = bounds + 1 (overflow) *)
  hcount : int Atomic.t;
  hsum : float Atomic.t;
}

type gauge = { gname : string; ghelp : string; gv : float Atomic.t }

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hdrs : (string, Hdr.t) Hashtbl.t;
  mutable corder : string list;  (** reversed registration order *)
  mutable horder : string list;
  mutable gorder : string list;
  mutable dorder : string list;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 64;
    hists = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hdrs = Hashtbl.create 16;
    corder = [];
    horder = [];
    gorder = [];
    dorder = [];
  }

let default_reg = lazy (create ())
let default () = Lazy.force default_reg

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t ?(help = "") name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c = { cname = name; chelp = help; cv = Atomic.make 0 } in
          Hashtbl.add t.counters name c;
          t.corder <- name :: t.corder;
          c)

let duration_buckets =
  (* 1 us .. ~16 s, factor 4 *)
  [| 1e-6; 4e-6; 1.6e-5; 6.4e-5; 2.56e-4; 1.024e-3; 4.096e-3; 1.6384e-2;
     6.5536e-2; 0.262144; 1.048576; 4.194304; 16.777216 |]

let linear_buckets ~lo ~step ~n = Array.init n (fun i -> lo +. (step *. float_of_int i))

let histogram t ?(help = "") ?(buckets = duration_buckets) name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h =
            {
              hname = name;
              hhelp = help;
              bounds = Array.copy buckets;
              buckets =
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              hcount = Atomic.make 0;
              hsum = Atomic.make 0.0;
            }
          in
          Hashtbl.add t.hists name h;
          t.horder <- name :: t.horder;
          h)

let hdr t ?(help = "") ?error ?lo ?hi name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.hdrs name with
      | Some h -> h
      | None ->
          let h = Hdr.create ?error ?lo ?hi ~help name in
          Hashtbl.add t.hdrs name h;
          t.dorder <- name :: t.dorder;
          h)

let gauge t ?(help = "") name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
          let g = { gname = name; ghelp = help; gv = Atomic.make 0.0 } in
          Hashtbl.add t.gauges name g;
          t.gorder <- name :: t.gorder;
          g)

let set_gauge g x = Atomic.set g.gv x

let rec max_gauge g x =
  let old = Atomic.get g.gv in
  if x > old && not (Atomic.compare_and_set g.gv old x) then max_gauge g x

let gauge_value g = Atomic.get g.gv
let gauge_name g = g.gname
let gauge_help g = g.ghelp

let bump c = Atomic.incr c.cv
let add c n = ignore (Atomic.fetch_and_add c.cv n)
let value c = Atomic.get c.cv
let counter_name c = c.cname
let counter_help c = c.chelp
let histogram_name h = h.hname
let histogram_help h = h.hhelp

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let observe h x =
  let n = Array.length h.bounds in
  let rec index i = if i >= n || x <= h.bounds.(i) then i else index (i + 1) in
  Atomic.incr h.buckets.(index 0);
  Atomic.incr h.hcount;
  atomic_add_float h.hsum x

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  hists : (string * hist_snapshot) list;
  gauges : (string * float) list;
  hdrs : (string * Hdr.snapshot) list;
}

let snapshot t =
  with_lock t (fun () ->
      {
        counters =
          List.rev_map
            (fun name ->
              (name, Atomic.get (Hashtbl.find t.counters name).cv))
            t.corder;
        gauges =
          List.rev_map
            (fun name -> (name, Atomic.get (Hashtbl.find t.gauges name).gv))
            t.gorder;
        hists =
          List.rev_map
            (fun name ->
              let h = Hashtbl.find t.hists name in
              ( name,
                {
                  bounds = Array.copy h.bounds;
                  counts = Array.map Atomic.get h.buckets;
                  count = Atomic.get h.hcount;
                  sum = Atomic.get h.hsum;
                } ))
            t.horder;
        hdrs =
          List.rev_map
            (fun name -> (name, Hdr.snapshot (Hashtbl.find t.hdrs name)))
            t.dorder;
      })

let merge snaps =
  let corder = ref [] and cvals = Hashtbl.create 64 in
  let horder = ref [] and hvals = Hashtbl.create 16 in
  let gorder = ref [] and gvals = Hashtbl.create 16 in
  let dorder = ref [] and dvals = Hashtbl.create 16 in
  List.iter
    (fun s ->
      (* gauges merge by max: the use case is peaks (smem high-water). *)
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt gvals name with
          | Some prev -> Hashtbl.replace gvals name (Float.max prev v)
          | None ->
              Hashtbl.add gvals name v;
              gorder := name :: !gorder)
        s.gauges;
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt cvals name with
          | Some prev -> Hashtbl.replace cvals name (prev + v)
          | None ->
              Hashtbl.add cvals name v;
              corder := name :: !corder)
        s.counters;
      List.iter
        (fun (name, h) ->
          match Hashtbl.find_opt hvals name with
          | Some (prev : hist_snapshot) when prev.bounds = h.bounds ->
              Hashtbl.replace hvals name
                {
                  prev with
                  counts = Array.map2 ( + ) prev.counts h.counts;
                  count = prev.count + h.count;
                  sum = prev.sum +. h.sum;
                }
          | Some _ -> ()  (* incompatible bounds: first wins *)
          | None ->
              Hashtbl.add hvals name h;
              horder := name :: !horder)
        s.hists;
      List.iter
        (fun (name, (d : Hdr.snapshot)) ->
          match Hashtbl.find_opt dvals name with
          | Some prev -> (
              match Hdr.merge prev d with
              | merged -> Hashtbl.replace dvals name merged
              | exception Invalid_argument _ -> ()  (* first wins *))
          | None ->
              Hashtbl.add dvals name d;
              dorder := name :: !dorder)
        s.hdrs)
    snaps;
  {
    counters = List.rev_map (fun n -> (n, Hashtbl.find cvals n)) !corder;
    hists = List.rev_map (fun n -> (n, Hashtbl.find hvals n)) !horder;
    gauges = List.rev_map (fun n -> (n, Hashtbl.find gvals n)) !gorder;
    hdrs = List.rev_map (fun n -> (n, Hashtbl.find dvals n)) !dorder;
  }

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cv 0) t.counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.gv 0.0) t.gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.hcount 0;
          Atomic.set h.hsum 0.0)
        t.hists;
      Hashtbl.iter (fun _ h -> Hdr.reset h) t.hdrs)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_bound b =
  if Float.is_integer b && Float.abs b < 1e9 then Printf.sprintf "%.0f" b
  else if b >= 1.0 then Printf.sprintf "%.3g" b
  else Printf.sprintf "%.3g" b

let to_table s =
  let buf = Buffer.create 512 in
  if s.counters <> [] then begin
    Buffer.add_string buf "-- counters\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-44s %12d\n" name v))
      s.counters
  end;
  if s.gauges <> [] then begin
    Buffer.add_string buf "-- gauges\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-44s %12.6g\n" name v))
      s.gauges
  end;
  List.iter
    (fun (name, h) ->
      let mean = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count in
      Buffer.add_string buf
        (Printf.sprintf "-- histogram %s: count=%d sum=%.6g mean=%.6g\n" name
           h.count h.sum mean);
      Array.iteri
        (fun i c ->
          if c > 0 then
            let label =
              if i < Array.length h.bounds then
                Printf.sprintf "<= %s" (pp_bound h.bounds.(i))
              else "overflow"
            in
            Buffer.add_string buf (Printf.sprintf "     %-12s %12d\n" label c))
        h.counts)
    s.hists;
  List.iter
    (fun (name, (d : Hdr.snapshot)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "-- hdr %s: count=%d mean=%.6gus p50=%.6gus p99=%.6gus max=%.6gus\n"
           name d.Hdr.count
           (1e6 *. Hdr.snap_mean d)
           (1e6 *. Hdr.snap_quantile d 0.5)
           (1e6 *. Hdr.snap_quantile d 0.99)
           (if d.Hdr.count = 0 then 0.0 else 1e6 *. d.Hdr.vmax)))
    s.hdrs;
  Buffer.contents buf

let to_json s =
  Jsonw.Obj
    [
      ( "counters",
        Jsonw.Obj (List.map (fun (n, v) -> (n, Jsonw.Int v)) s.counters) );
      ( "gauges",
        Jsonw.Obj (List.map (fun (n, v) -> (n, Jsonw.Float v)) s.gauges) );
      ( "histograms",
        Jsonw.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 Jsonw.Obj
                   [
                     ("count", Jsonw.Int h.count);
                     ("sum", Jsonw.Float h.sum);
                     ( "bounds",
                       Jsonw.List
                         (Array.to_list
                            (Array.map (fun b -> Jsonw.Float b) h.bounds)) );
                     ( "counts",
                       Jsonw.List
                         (Array.to_list
                            (Array.map (fun c -> Jsonw.Int c) h.counts)) );
                   ] ))
             s.hists) );
      ( "hdr",
        Jsonw.Obj (List.map (fun (n, d) -> (n, Hdr.snap_to_json d)) s.hdrs) );
    ]
