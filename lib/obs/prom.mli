(** Prometheus text-format (0.0.4) rendering of a {!Metrics.snapshot},
    so a scrape endpoint (or [mirage_cli request metrics --format
    prometheus]) can feed a stock collector. Counters and gauges map
    directly; fixed-bucket histograms become native [histogram] series
    (cumulative [le] buckets); {!Hdr} sketches become [summary] series
    with p50/p90/p99. Metric names are sanitized to
    [[a-zA-Z0-9_:]]. *)

val sanitize : string -> string

val render : Metrics.snapshot -> string
