(* Prometheus text-format exposition (version 0.0.4) of a metrics
   snapshot. Counters and gauges render directly; fixed-bucket
   histograms render as the native `histogram` type (cumulative
   `_bucket{le=...}` series); Hdr latency sketches render as the
   `summary` type with precomputed quantiles, since Prometheus has no
   native sketch type. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let header name typ =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      header name "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      header name "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" name (num v)))
    s.Metrics.gauges;
  List.iter
    (fun (name, (h : Metrics.hist_snapshot)) ->
      let name = sanitize name in
      header name "histogram";
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          let le =
            if i < Array.length h.Metrics.bounds then
              num h.Metrics.bounds.(i)
            else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le !cum))
        h.Metrics.counts;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" name (num h.Metrics.sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" name h.Metrics.count))
    s.Metrics.hists;
  List.iter
    (fun (name, (d : Hdr.snapshot)) ->
      let name = sanitize name in
      header name "summary";
      List.iter
        (fun q ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name (num q)
               (num (Hdr.snap_quantile d q))))
        [ 0.5; 0.9; 0.99 ];
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" name (num d.Hdr.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name d.Hdr.count))
    s.Metrics.hdrs;
  Buffer.contents buf
