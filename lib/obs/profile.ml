(* Wall-time phase accounting (see the .mli). Two pieces of state:

   - the profiler itself: path-keyed phase entries whose counters live
     in a metrics registry (lock-free updates, exact under concurrency)
     plus per-rule prune analytics;
   - per-execution-context frame stacks. Contexts are (domain, thread)
     pairs, not domains: the serving tier runs concurrent handler
     threads on domain 0, and a per-domain stack would interleave two
     requests' phases. Same discipline as [Journal]'s ambient context.

   The frame stack of a context is only ever touched by that context,
   so frames need no synchronization; the context table itself is a
   CAS-swapped assoc list (a handful of live contexts at any time), and
   entries are removed when a context's stack empties so short-lived
   handler threads do not accumulate. *)

module J = Jsonw

type entry = {
  path : string;
  depth : int;
  overlay : bool;
  c_count : Metrics.counter;
  c_total : Metrics.counter;  (* ns *)
  c_self : Metrics.counter;  (* ns *)
  h : Hdr.t;
}

let max_remaining = 24

type rule = {
  ru_name : string;
  ru_fires : Metrics.counter;
  ru_by : int Atomic.t array;  (* fires by remaining depth *)
}

type t = {
  reg : Metrics.t;
  created_at : float;
  lock : Mutex.t;  (* guards registration; reads are lock-free *)
  entries : (string * entry) list Atomic.t;  (* reverse registration order *)
  rules : (string * rule) list Atomic.t;
  branching : float Atomic.t;  (* max-merged; 0. = never reported *)
}

let create ?(registry = Metrics.create ()) () =
  {
    reg = registry;
    created_at = Unix.gettimeofday ();
    lock = Mutex.create ();
    entries = Atomic.make [];
    rules = Atomic.make [];
    branching = Atomic.make 0.0;
  }

let registry t = t.reg

(* --- the ambient profiler --------------------------------------------- *)

let current : t option Atomic.t = Atomic.make None

let enable ?registry () =
  let t = create ?registry () in
  Atomic.set current (Some t);
  t

let disable () = Atomic.set current None
let active () = Atomic.get current

(* --- phase entry registration ----------------------------------------- *)

let path_depth path =
  let d = ref 0 in
  String.iter (fun c -> if c = '/' then incr d) path;
  !d

let resolve t ~overlay path =
  match List.assoc_opt path (Atomic.get t.entries) with
  | Some e -> e
  | None ->
      Mutex.lock t.lock;
      let e =
        match List.assoc_opt path (Atomic.get t.entries) with
        | Some e -> e
        | None ->
            let e =
              {
                path;
                depth = path_depth path;
                overlay;
                c_count =
                  Metrics.counter t.reg ~help:"phase entries"
                    ("profile." ^ path ^ ".count");
                c_total =
                  Metrics.counter t.reg ~help:"phase wall time (ns)"
                    ("profile." ^ path ^ ".total_ns");
                c_self =
                  Metrics.counter t.reg
                    ~help:"phase wall time not in sub-phases (ns)"
                    ("profile." ^ path ^ ".self_ns");
                h =
                  Metrics.hdr t.reg ~help:"phase duration (s)"
                    ("profile.phase." ^ path);
              }
            in
            Atomic.set t.entries ((path, e) :: Atomic.get t.entries);
            e
      in
      Mutex.unlock t.lock;
      e

let resolve_rule t name =
  match List.assoc_opt name (Atomic.get t.rules) with
  | Some r -> r
  | None ->
      Mutex.lock t.lock;
      let r =
        match List.assoc_opt name (Atomic.get t.rules) with
        | Some r -> r
        | None ->
            let r =
              {
                ru_name = name;
                ru_fires =
                  Metrics.counter t.reg ~help:"prefixes cut by the rule"
                    ("profile.prune." ^ name ^ ".fires");
                ru_by = Array.init max_remaining (fun _ -> Atomic.make 0);
              }
            in
            Atomic.set t.rules ((name, r) :: Atomic.get t.rules);
            r
      in
      Mutex.unlock t.lock;
      r

(* --- per-context frame stacks ----------------------------------------- *)

type frame = { f_entry : entry; f_start : float; mutable f_child_ns : int }
type ctx = { mutable base : string; mutable frames : frame list }

let ctx_table : ((int * int) * ctx) list Atomic.t = Atomic.make []
let ctx_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))
let find_ctx () = List.assoc_opt (ctx_key ()) (Atomic.get ctx_table)

let rec install_ctx key c =
  let old = Atomic.get ctx_table in
  if not (Atomic.compare_and_set ctx_table old ((key, c) :: old)) then
    install_ctx key c

let rec remove_ctx key =
  let old = Atomic.get ctx_table in
  if not (Atomic.compare_and_set ctx_table old (List.remove_assoc key old))
  then remove_ctx key

let get_ctx () =
  let key = ctx_key () in
  match List.assoc_opt key (Atomic.get ctx_table) with
  | Some c -> c
  | None ->
      let c = { base = ""; frames = [] } in
      install_ctx key c;
      c

let maybe_retire ctx =
  if ctx.base = "" && ctx.frames = [] then remove_ctx (ctx_key ())

let child_path parent name = if parent = "" then name else parent ^ "/" ^ name

let context_path ctx =
  match ctx.frames with f :: _ -> f.f_entry.path | [] -> ctx.base

let ns_of_span a b =
  let d = (b -. a) *. 1e9 in
  if d <= 0.0 then 0 else int_of_float d

let enter t name =
  let ctx = get_ctx () in
  let e = resolve t ~overlay:false (child_path (context_path ctx) name) in
  ctx.frames <-
    { f_entry = e; f_start = Unix.gettimeofday (); f_child_ns = 0 }
    :: ctx.frames

let leave _t =
  match find_ctx () with
  | None -> ()
  | Some ctx -> (
      match ctx.frames with
      | [] -> ()
      | f :: rest ->
          ctx.frames <- rest;
          let dur_ns = ns_of_span f.f_start (Unix.gettimeofday ()) in
          Metrics.bump f.f_entry.c_count;
          Metrics.add f.f_entry.c_total dur_ns;
          Metrics.add f.f_entry.c_self (max 0 (dur_ns - f.f_child_ns));
          Hdr.record f.f_entry.h (float_of_int dur_ns *. 1e-9);
          (match rest with
          | parent :: _ -> parent.f_child_ns <- parent.f_child_ns + dur_ns
          | [] -> maybe_retire ctx))

let with_phase name f =
  match Atomic.get current with
  | None -> f ()
  | Some t ->
      enter t name;
      Fun.protect ~finally:(fun () -> leave t) f

let saved_path () =
  match Atomic.get current with
  | None -> ""
  | Some _ -> (
      match find_ctx () with Some ctx -> context_path ctx | None -> "")

let with_base path f =
  match Atomic.get current with
  | None -> f ()
  | Some _ ->
      let ctx = get_ctx () in
      let saved_base = ctx.base and saved_frames = ctx.frames in
      ctx.base <- path;
      ctx.frames <- [];
      Fun.protect
        ~finally:(fun () ->
          ctx.base <- saved_base;
          ctx.frames <- saved_frames;
          maybe_retire ctx)
        f

(* --- batched timers ---------------------------------------------------- *)

(* Reading the clock twice per call costs about as much as the cheapest
   instrumented sites do themselves (the abstract prune check runs per
   attempted extension, ~0.5us), so the timer counts every call exactly
   but reads the clock on a 1-in-16 sample and scales the batch duration
   at flush: a few ns amortized per call, at the price of the batch
   total being a statistical estimate. *)
let sample_mask = 63

type timer = {
  t_live : t option;
  t_name : string;
  mutable t_count : int;  (* every call, exact *)
  mutable t_sampled : int;  (* calls that paid for clock reads *)
  mutable t_sampled_ns : int;
}

let timer name =
  {
    t_live = Atomic.get current;
    t_name = name;
    t_count = 0;
    t_sampled = 0;
    t_sampled_ns = 0;
  }

let charge tm t0 =
  tm.t_sampled <- tm.t_sampled + 1;
  tm.t_sampled_ns <- tm.t_sampled_ns + ns_of_span t0 (Unix.gettimeofday ())

let timed tm f =
  match tm.t_live with
  | None -> f ()
  | Some _ when tm.t_count land sample_mask <> 0 ->
      tm.t_count <- tm.t_count + 1;
      f ()
  | Some _ -> (
      tm.t_count <- tm.t_count + 1;
      let t0 = Unix.gettimeofday () in
      match f () with
      | r ->
          charge tm t0;
          r
      | exception e ->
          charge tm t0;
          raise e)

let flush_timer tm =
  match tm.t_live with
  | None -> ()
  | Some t when tm.t_count > 0 ->
      let total_ns =
        if tm.t_sampled >= tm.t_count then tm.t_sampled_ns
        else
          int_of_float
            (float_of_int tm.t_sampled_ns
            *. float_of_int tm.t_count
            /. float_of_int (max 1 tm.t_sampled))
      in
      let ctx = get_ctx () in
      let e = resolve t ~overlay:false (child_path (context_path ctx) tm.t_name) in
      Metrics.add e.c_count tm.t_count;
      Metrics.add e.c_total total_ns;
      Metrics.add e.c_self total_ns;
      Hdr.record e.h (float_of_int total_ns *. 1e-9);
      (match ctx.frames with
      | parent :: _ -> parent.f_child_ns <- parent.f_child_ns + total_ns
      | [] -> maybe_retire ctx);
      tm.t_count <- 0;
      tm.t_sampled <- 0;
      tm.t_sampled_ns <- 0
  | Some _ -> ()

(* --- overlay notes ----------------------------------------------------- *)

let note name dt_s =
  match Atomic.get current with
  | None -> ()
  | Some t ->
      let e = resolve t ~overlay:true name in
      let ns = if dt_s <= 0.0 then 0 else int_of_float (dt_s *. 1e9) in
      Metrics.bump e.c_count;
      Metrics.add e.c_total ns;
      Hdr.record e.h dt_s

(* --- prune-rule analytics ---------------------------------------------- *)

(* A handle batches fires locally — the enumerators fire once per
   rejected extension, and two atomic increments per reject add up to a
   visible fraction of an enumeration-bound search. The batch drains on
   {!flush_rule} (the enumerators flush at task end, next to their
   timer) and automatically every 4096 fires so a dropped flush loses a
   bounded tail. *)
type rule_handle = {
  rh_rule : rule option;
  mutable rh_fires : int;
  rh_by : int array;
}

let prune_rule name =
  match Atomic.get current with
  | None -> { rh_rule = None; rh_fires = 0; rh_by = [||] }
  | Some t ->
      {
        rh_rule = Some (resolve_rule t name);
        rh_fires = 0;
        rh_by = Array.make max_remaining 0;
      }

let flush_rule h =
  match h.rh_rule with
  | Some r when h.rh_fires > 0 ->
      Metrics.add r.ru_fires h.rh_fires;
      Array.iteri
        (fun k n ->
          if n > 0 then begin
            ignore (Atomic.fetch_and_add r.ru_by.(k) n);
            h.rh_by.(k) <- 0
          end)
        h.rh_by;
      h.rh_fires <- 0
  | _ -> ()

let fire h ~remaining =
  match h.rh_rule with
  | None -> ()
  | Some _ ->
      h.rh_fires <- h.rh_fires + 1;
      let k =
        if remaining < 0 then 0
        else if remaining >= max_remaining then max_remaining - 1
        else remaining
      in
      h.rh_by.(k) <- h.rh_by.(k) + 1;
      if h.rh_fires >= 4096 then flush_rule h

let rec set_branching t b =
  if Float.is_finite b && b > 0.0 then begin
    let cur = Atomic.get t.branching in
    if b > cur && not (Atomic.compare_and_set t.branching cur b) then
      set_branching t b
  end

let note_branching b =
  match Atomic.get current with None -> () | Some t -> set_branching t b

(* --- snapshots ---------------------------------------------------------- *)

type phase_snap = {
  p_path : string;
  p_depth : int;
  p_overlay : bool;
  p_count : int;
  p_total_s : float;
  p_self_s : float;
  p_hdr : Hdr.snapshot;
}

type rule_snap = {
  r_rule : string;
  r_fires : int;
  r_by_remaining : int array;
  r_est_saved : float;
}

type snapshot = {
  wall_s : float;
  branching : float;
  phases : phase_snap list;
  prune_rules : rule_snap list;
}

(* Geometric subtree model: a prefix cut with [k] operator slots left
   would have spawned ~ b + b^2 + ... + b^k further attempted
   extensions at branching factor [b]. Capped: the estimate is a
   ranking aid, not a truth claim. *)
let subtree_size b k =
  if b <= 1.0 then float_of_int k
  else begin
    let acc = ref 0.0 and pow = ref 1.0 in
    (try
       for _ = 1 to k do
         pow := !pow *. b;
         acc := !acc +. !pow;
         if !acc > 1e15 then raise Exit
       done
     with Exit -> acc := 1e15);
    Float.min !acc 1e15
  end

let snapshot (t : t) =
  let b = Atomic.get t.branching in
  let phases =
    List.rev_map
      (fun (_, e) ->
        {
          p_path = e.path;
          p_depth = e.depth;
          p_overlay = e.overlay;
          p_count = Metrics.value e.c_count;
          p_total_s = float_of_int (Metrics.value e.c_total) *. 1e-9;
          p_self_s = float_of_int (Metrics.value e.c_self) *. 1e-9;
          p_hdr = Hdr.snapshot e.h;
        })
      (Atomic.get t.entries)
  in
  let prune_rules =
    List.rev_map
      (fun (_, r) ->
        let by = Array.map Atomic.get r.ru_by in
        let est = ref 0.0 in
        Array.iteri
          (fun k n ->
            if n > 0 && b > 0.0 then
              est := !est +. (float_of_int n *. subtree_size b k))
          by;
        {
          r_rule = r.ru_name;
          r_fires = Metrics.value r.ru_fires;
          r_by_remaining = by;
          r_est_saved = Float.min !est 1e15;
        })
      (Atomic.get t.rules)
  in
  {
    wall_s = Unix.gettimeofday () -. t.created_at;
    branching = b;
    phases;
    prune_rules;
  }

let schema = "mirage.profile.v1"

let snapshot_json ?(include_hdrs = true) s =
  let trim a =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do
      decr n
    done;
    Array.sub a 0 !n
  in
  J.Obj
    [
      ("schema", J.Str schema);
      ("wall_s", J.Float s.wall_s);
      ("branching", J.Float s.branching);
      ( "phases",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 ([
                    ("path", J.Str p.p_path);
                    ("depth", J.Int p.p_depth);
                    ("overlay", J.Bool p.p_overlay);
                    ("count", J.Int p.p_count);
                    ("total_s", J.Float p.p_total_s);
                    ("self_s", J.Float p.p_self_s);
                  ]
                 @
                 if include_hdrs then [ ("hdr", Hdr.snap_to_json p.p_hdr) ]
                 else []))
             s.phases) );
      ( "prune_rules",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("rule", J.Str r.r_rule);
                   ("fires", J.Int r.r_fires);
                   ("est_saved_expansions", J.Float r.r_est_saved);
                   ( "by_remaining",
                     J.List
                       (Array.to_list
                          (Array.map (fun n -> J.Int n) (trim r.r_by_remaining)))
                   );
                 ])
             s.prune_rules) );
    ]

(* --- analysis of a snapshot_json value ---------------------------------- *)

let num = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

type parsed_phase = {
  q_path : string;
  q_depth : int;
  q_overlay : bool;
  q_count : int;
  q_total_s : float;
  q_self_s : float;
  q_p50_us : float option;
  q_p99_us : float option;
}

let parse_phases j =
  match J.member "phases" j with
  | Some (J.List l) ->
      Ok
        (List.filter_map
           (fun p ->
             let str k =
               match J.member k p with Some (J.Str s) -> Some s | _ -> None
             in
             let int_ k =
               match J.member k p with Some (J.Int i) -> Some i | _ -> None
             in
             let flt k = Option.bind (J.member k p) num in
             match (str "path", int_ "depth", int_ "count") with
             | Some path, Some depth, Some count ->
                 let hdr_q k =
                   Option.bind (J.member "hdr" p) (fun h ->
                       Option.bind (J.member k h) num)
                 in
                 Some
                   {
                     q_path = path;
                     q_depth = depth;
                     q_overlay =
                       (match J.member "overlay" p with
                       | Some (J.Bool b) -> b
                       | _ -> false);
                     q_count = count;
                     q_total_s = Option.value (flt "total_s") ~default:0.0;
                     q_self_s = Option.value (flt "self_s") ~default:0.0;
                     q_p50_us = hdr_q "p50_us";
                     q_p99_us = hdr_q "p99_us";
                   }
             | _ -> None)
           l)
  | Some _ -> Error "phases is not a list"
  | None -> Error "missing phases"

let coverage_of phases =
  let roots =
    List.filter (fun p -> p.q_depth = 0 && not p.q_overlay) phases
  in
  match roots with
  | [] -> None
  | _ ->
      let root =
        List.fold_left
          (fun a b -> if b.q_total_s > a.q_total_s then b else a)
          (List.hd roots) roots
      in
      let prefix = root.q_path ^ "/" in
      let plen = String.length prefix in
      let attributed =
        List.fold_left
          (fun acc p ->
            if
              p.q_depth = 1
              && (not p.q_overlay)
              && String.length p.q_path > plen
              && String.sub p.q_path 0 plen = prefix
            then acc +. p.q_total_s
            else acc)
          0.0 phases
      in
      let frac =
        if root.q_total_s <= 0.0 then 1.0 else attributed /. root.q_total_s
      in
      Some (root.q_path, frac)

let coverage j =
  match parse_phases j with Ok ps -> coverage_of ps | Error _ -> None

let fmt_time s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let fmt_big f =
  if f >= 1e6 then Printf.sprintf "%.2e" f
  else Printf.sprintf "%.0f" f

let render j =
  let ( let* ) = Result.bind in
  let* phases = parse_phases j in
  let wall = Option.bind (J.member "wall_s" j) num in
  let branching =
    match Option.bind (J.member "branching" j) num with
    | Some b when b > 0.0 -> Some b
    | _ -> None
  in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match wall with
  | Some w -> line "profile: %s wall" (fmt_time w)
  | None -> line "profile:");
  let main, overlays = List.partition (fun p -> not p.q_overlay) phases in
  let ordered = List.sort (fun a b -> compare a.q_path b.q_path) main in
  line "";
  line "%-44s %10s %10s %10s %10s %10s" "phase" "count" "total" "self" "p50"
    "p99";
  let row p =
    let label =
      let name =
        match String.rindex_opt p.q_path '/' with
        | Some i ->
            String.sub p.q_path (i + 1) (String.length p.q_path - i - 1)
        | None -> p.q_path
      in
      String.make (2 * p.q_depth) ' ' ^ name
    in
    let quant = function
      | Some us -> fmt_time (us *. 1e-6)
      | None -> "-"
    in
    line "%-44s %10d %10s %10s %10s %10s" label p.q_count
      (fmt_time p.q_total_s) (fmt_time p.q_self_s) (quant p.q_p50_us)
      (quant p.q_p99_us)
  in
  List.iter row ordered;
  if overlays <> [] then begin
    line "";
    line "overlays (attributed elsewhere, excluded from coverage):";
    List.iter
      (fun p ->
        line "%-44s %10d %10s" ("  " ^ p.q_path) p.q_count
          (fmt_time p.q_total_s))
      (List.sort (fun a b -> compare a.q_path b.q_path) overlays)
  end;
  (match coverage_of phases with
  | Some (root, frac) ->
      line "";
      line "attributed: %.1f%% of %s wall time in named sub-phases" (100.0 *. frac)
        root
  | None -> ());
  let rules =
    match J.member "prune_rules" j with
    | Some (J.List l) ->
        List.filter_map
          (fun r ->
            match (J.member "rule" r, J.member "fires" r) with
            | Some (J.Str name), Some (J.Int fires) ->
                Some
                  ( name,
                    fires,
                    Option.value ~default:0.0
                      (Option.bind (J.member "est_saved_expansions" r) num) )
            | _ -> None)
          l
    | _ -> []
  in
  if rules <> [] then begin
    line "";
    (match branching with
    | Some b -> line "prune rules (est. savings at branching factor %.1f):" b
    | None -> line "prune rules (no branching factor: savings unknown):");
    List.iter
      (fun (name, fires, est) ->
        line "  %-24s %10d fires %14s est. expansions saved" name fires
          (fmt_big est))
      (List.sort
         (fun (_, fa, ea) (_, fb, eb) ->
           match compare eb ea with 0 -> compare fb fa | c -> c)
         rules)
  end;
  Ok (Buffer.contents buf)
