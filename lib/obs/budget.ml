(* A unified execution budget for the optimize pipeline: one value
   carrying the wall-clock deadline, the enumeration node budget and a
   cooperative cancellation flag, threaded through every phase so that
   exhaustion in any of them degrades the run instead of crashing it.

   Degradation reasons are recorded twice: on the budget itself (so a
   search outcome can report what cut it short) and in a process-global
   set (so the CLI's report finalizer can stamp `status.degraded` even
   for phases — ILP, memory planning — that never see the budget
   value). *)

type t = {
  deadline : float;  (* absolute epoch seconds; 0. = unlimited *)
  node_budget : int;  (* 0 = unlimited *)
  cancelled : bool Atomic.t;
  lock : Mutex.t;
  mutable local_reasons : string list;  (* reversed, deduped *)
}

let create ?(time_budget_s = 0.0) ?(node_budget = 0) () =
  {
    deadline =
      (if time_budget_s > 0.0 then Unix.gettimeofday () +. time_budget_s
       else 0.0);
    node_budget;
    cancelled = Atomic.make false;
    lock = Mutex.create ();
    local_reasons = [];
  }

let unlimited () = create ()

let deadline t = t.deadline
let node_budget t = t.node_budget

let cancel t = Atomic.set t.cancelled true
let cancelled t = Atomic.get t.cancelled

let over_deadline t = t.deadline > 0.0 && Unix.gettimeofday () > t.deadline

let nodes_exceeded t nodes = t.node_budget > 0 && nodes > t.node_budget

let exhausted t ~nodes =
  cancelled t || over_deadline t || nodes_exceeded t nodes

(* ------------------------------------------------------------------ *)
(* Degradation registry                                                *)
(* ------------------------------------------------------------------ *)

let glock = Mutex.create ()
let global_reasons : string list ref = ref []

let add_dedup lock get set reason =
  Mutex.lock lock;
  if not (List.mem reason (get ())) then set (reason :: get ());
  Mutex.unlock lock

let degrade reason =
  add_dedup glock
    (fun () -> !global_reasons)
    (fun l -> global_reasons := l)
    reason

let degradations () =
  Mutex.lock glock;
  let l = List.rev !global_reasons in
  Mutex.unlock glock;
  l

let reset_degradations () =
  Mutex.lock glock;
  global_reasons := [];
  Mutex.unlock glock

let note t reason =
  add_dedup t.lock
    (fun () -> t.local_reasons)
    (fun l -> t.local_reasons <- l)
    reason;
  degrade reason

let reasons t =
  Mutex.lock t.lock;
  let l = List.rev t.local_reasons in
  Mutex.unlock t.lock;
  l
