type rec_span = {
  name : string;
  cat : string;
  ts_us : float;  (** relative to the collector epoch *)
  dur_us : float;
  tid : int;
  path : string list;  (** innermost first, includes [name] *)
  args : (string * string) list;
}

type t = {
  epoch : float;
  lock : Mutex.t;
  mutable spans : rec_span list;  (** reversed (most recent first) *)
}

let create () =
  { epoch = Unix.gettimeofday (); lock = Mutex.create (); spans = [] }

(* Per-domain stack of open span names, for nesting paths. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let record t ~cat ~args name f =
  let stack = Domain.DLS.get stack_key in
  let saved = !stack in
  let path = name :: saved in
  stack := path;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Unix.gettimeofday () in
      stack := saved;
      let s =
        {
          name;
          cat;
          ts_us = (t0 -. t.epoch) *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          tid = (Domain.self () :> int);
          path;
          args;
        }
      in
      Mutex.lock t.lock;
      t.spans <- s :: t.spans;
      Mutex.unlock t.lock)
    f

let span t ?(cat = "mirage") ?(args = []) name f = record t ~cat ~args name f

(* ------------------------------------------------------------------ *)
(* Global collector                                                    *)
(* ------------------------------------------------------------------ *)

let current : t option Atomic.t = Atomic.make None

let enable () =
  let t = create () in
  Atomic.set current (Some t);
  t

let disable () = Atomic.set current None
let active () = Atomic.get current

let with_span ?(cat = "mirage") ?(args = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some t -> record t ~cat ~args name f

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let spans t =
  Mutex.lock t.lock;
  let l = t.spans in
  Mutex.unlock t.lock;
  List.rev l

let span_count t = List.length (spans t)

let to_chrome_json t =
  Jsonw.List
    (List.map
       (fun s ->
         Jsonw.Obj
           [
             ("name", Jsonw.Str s.name);
             ("cat", Jsonw.Str s.cat);
             ("ph", Jsonw.Str "X");
             ("ts", Jsonw.Float s.ts_us);
             ("dur", Jsonw.Float s.dur_us);
             ("pid", Jsonw.Int (Unix.getpid ()));
             ("tid", Jsonw.Int s.tid);
             ( "args",
               Jsonw.Obj
                 (List.map (fun (k, v) -> (k, Jsonw.Str v)) s.args) );
           ])
       (spans t))

let dump t path = Jsonw.to_file path (to_chrome_json t)

let summary t =
  (* Aggregate by reversed path (outermost first). *)
  let agg : (string list, int * float * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let key = List.rev s.path in
      match Hashtbl.find_opt agg key with
      | Some (n, total, first) ->
          Hashtbl.replace agg key (n + 1, total +. s.dur_us, Float.min first s.ts_us)
      | None -> Hashtbl.add agg key (1, s.dur_us, s.ts_us))
    (spans t);
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg [] in
  (* Order: depth-first by first occurrence — sorting paths by the first
     timestamp of each of their prefixes gives a stable tree layout. *)
  let first_ts path =
    match Hashtbl.find_opt agg path with
    | Some (_, _, ts) -> ts
    | None -> 0.0
  in
  let rec take k l =
    if k = 0 then [] else match l with [] -> [] | x :: r -> x :: take (k - 1) r
  in
  let prefixes p = List.init (List.length p) (fun i -> take (i + 1) p) in
  let key_of path = List.map (fun pre -> first_ts pre) (prefixes path) in
  let rows =
    List.sort
      (fun (pa, _) (pb, _) -> Stdlib.compare (key_of pa, pa) (key_of pb, pb))
      rows
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "trace summary (%d spans)\n" (span_count t));
  List.iter
    (fun (path, (n, total, _)) ->
      let depth = List.length path - 1 in
      let name = List.nth path depth in
      Buffer.add_string buf
        (Printf.sprintf "  %s%-*s %6dx %12.3f ms\n"
           (String.make (2 * depth) ' ')
           (max 1 (36 - (2 * depth)))
           name n (total /. 1e3)))
    rows;
  Buffer.contents buf
