(** A unified execution budget: wall-clock deadline + enumeration node
    budget + cooperative cancellation, threaded through every pipeline
    phase (enumeration, verification, ILP, memory planning) so that
    exhaustion anywhere cleanly returns the best result so far instead
    of crashing the run.

    The module also keeps a process-global {e degradation registry}:
    every phase that gives up on optimality records a short reason
    string ([note]/[degrade]), and the report finalizer folds the set
    into [status.degraded] of [report.json]. *)

type t

val create : ?time_budget_s:float -> ?node_budget:int -> unit -> t
(** [time_budget_s <= 0.] means no deadline; [node_budget <= 0] means no
    node limit. The deadline is fixed at creation time. *)

val unlimited : unit -> t

val deadline : t -> float
(** Absolute epoch seconds; [0.] when unlimited. *)

val node_budget : t -> int

val cancel : t -> unit
(** Cooperative cancellation: flips a flag every phase polls. *)

val cancelled : t -> bool
val over_deadline : t -> bool
val nodes_exceeded : t -> int -> bool

val exhausted : t -> nodes:int -> bool
(** [cancelled || over_deadline || nodes_exceeded]. *)

(** {1 Degradation tracking} *)

val note : t -> string -> unit
(** Record a degradation reason on this budget {e and} in the global
    registry (deduplicated in both). *)

val reasons : t -> string list
(** Reasons noted on this budget, in first-noted order. *)

val degrade : string -> unit
(** Record a reason in the process-global registry only (for phases with
    no budget in scope, e.g. layout selection fallbacks). *)

val degradations : unit -> string list

val reset_degradations : unit -> unit
(** Clear the global registry (test isolation / start of a run). *)
