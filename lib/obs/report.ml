type t = {
  rdir : string;
  mutable sections : (string * Jsonw.t) list;  (** reversed *)
}

let schema = "mirage.run_report.v1"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { rdir = dir; sections = [] }

let dir t = t.rdir

let add t name v =
  if List.mem_assoc name t.sections then
    t.sections <-
      List.map (fun (n, old) -> (n, if n = name then v else old)) t.sections
  else t.sections <- (name, v) :: t.sections

let path t = Filename.concat t.rdir "report.json"

let write t =
  Fault.trip "report.finalize";
  Jsonw.to_file ~pretty:true (path t)
    (Jsonw.Obj (("schema", Jsonw.Str schema) :: List.rev t.sections))

let env_json () =
  let mirage_vars =
    (* The documented knob surface is MIRAGE_*; capture whatever of it is
       set so a report pins down the run's configuration sources. *)
    Array.to_list (Unix.environment ())
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i when String.length kv > 7 && String.sub kv 0 7 = "MIRAGE_"
             ->
               Some
                 ( String.sub kv 0 i,
                   Jsonw.Str
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
           | _ -> None)
    |> List.sort compare
  in
  Jsonw.Obj
    [
      ("ocaml", Jsonw.Str Sys.ocaml_version);
      ("os_type", Jsonw.Str Sys.os_type);
      ("word_size", Jsonw.Int Sys.word_size);
      ("domains_recommended", Jsonw.Int (Domain.recommended_domain_count ()));
      ("cwd", Jsonw.Str (Sys.getcwd ()));
      ( "argv",
        Jsonw.List
          (Array.to_list (Array.map (fun a -> Jsonw.Str a) Sys.argv)) );
      ("mirage_env", Jsonw.Obj mirage_vars);
    ]

let phase_timings tr =
  (* Depth-1 spans only: the pipeline phases (enumerate, cost, verify,
     …), not every per-candidate span under them. *)
  let agg : (string, int * float) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (s : Trace.rec_span) ->
      if List.length s.Trace.path = 1 then begin
        let name = s.Trace.name in
        match Hashtbl.find_opt agg name with
        | Some (n, tot) -> Hashtbl.replace agg name (n + 1, tot +. s.Trace.dur_us)
        | None ->
            Hashtbl.add agg name (1, s.Trace.dur_us);
            order := name :: !order
      end)
    (Trace.spans tr);
  Jsonw.Obj
    (List.rev_map
       (fun name ->
         let n, tot = Hashtbl.find agg name in
         ( name,
           Jsonw.Obj
             [ ("count", Jsonw.Int n); ("total_ms", Jsonw.Float (tot /. 1e3)) ]
         ))
       !order)

let load p =
  let file =
    if Sys.file_exists p && Sys.is_directory p then
      Filename.concat p "report.json"
    else p
  in
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let s = really_input_string ic (in_channel_length ic) in
          Jsonw.of_string s)

(* ------------------------------------------------------------------ *)
(* Numeric comparison                                                  *)
(* ------------------------------------------------------------------ *)

type delta = { key : string; va : float; vb : float }

let rel d =
  if d.va = 0.0 then if d.vb = 0.0 then 0.0 else Float.infinity
  else (d.vb -. d.va) /. Float.abs d.va

let as_num = function
  | Jsonw.Int i -> Some (float_of_int i)
  | Jsonw.Float f -> Some f
  | _ -> None

let num_deltas a b =
  let out = ref [] in
  let rec walk prefix a b =
    match (a, b) with
    | Jsonw.Obj fa, Jsonw.Obj fb ->
        List.iter
          (fun (k, va) ->
            match List.assoc_opt k fb with
            | Some vb ->
                let key = if prefix = "" then k else prefix ^ "." ^ k in
                walk key va vb
            | None -> ())
          fa
    | _ -> (
        match (as_num a, as_num b) with
        | Some va, Some vb -> out := { key = prefix; va; vb } :: !out
        | _ -> ())
  in
  walk "" a b;
  List.rev !out

let default_gate_keys = [ "cost.optimized_us"; "timing.wall_s" ]

let gate ?(keys = default_gate_keys) ~threshold a b =
  num_deltas a b
  |> List.filter (fun d -> List.mem d.key keys && rel d > threshold)
