(** The search flight recorder: a domain-safe, append-only JSONL event
    journal. Where {!Metrics} answers "how many candidates were pruned?",
    the journal answers "why was candidate #4217 pruned?" — every
    enumerator attempt, rejection, emitted muGraph, verifier verdict and
    cost attribution is one self-describing line.

    Writing is designed for the multi-domain search hot path: each domain
    serializes events into its own bounded buffer (its own uncontended
    mutex), and buffers drain through a single writer mutex to the
    underlying channel — so lines are never torn or interleaved, and the
    shared lock is only taken once per [capacity] events per domain.
    Every event carries a process-unique, monotonically increasing [seq]
    so a reader can reconstruct global order even though domains flush
    independently.

    Journaling is off by default: {!event} costs one atomic load when no
    journal is installed. [mirage_cli optimize --report DIR] enables it.

    Line schema (one JSON object per line):
    {v
    {"seq":412,"ts":0.0137,"dom":3,"ev":"cand.reject",
     "cand":4217,"reason":"pruned_abstract", ...event fields...}
    v} *)

type t

val create : ?capacity:int -> path:string -> unit -> t
(** Open a journal writing to [path] (truncates). [capacity] is the
    per-domain buffer size in events before a drain to the shared writer
    (default 128). *)

val path : t -> string

val emit : t -> ?cand:int -> typ:string -> (string * Jsonw.t) list -> unit
(** Append one event. [cand] tags the event with a candidate id (from
    {!fresh_id}) so a candidate's lifecycle can be reassembled; negative
    ids are omitted from the line. Safe from any domain. *)

val fresh_id : t -> int
(** A process-unique candidate id (atomic counter, starts at 0). *)

val dropped : t -> int
(** Events lost to failed writes (disk full, injected [journal.write]
    fault). A failed drain drops whole per-domain buffers — before any
    byte reaches the channel — degrades the run ([Budget.degrade
    "journal.write"]), bumps the [journal.dropped_events] /
    [journal.dropped_buffers] counters in the default metrics registry,
    and keeps the search alive; the file never contains a torn line. *)

val dropped_buffers : t -> int
(** Whole per-domain buffers lost to failed writes. *)

(** {1 Ambient event context}

    Fields stamped onto every event emitted by the current thread —
    the serving tier installs [("rid", Str id)] around request
    dispatch so one request id joins a client call to its search
    forensics. Keyed by (domain, thread) — threads sharing a domain do
    not clobber each other — and inherited explicitly: code that spawns
    worker domains captures {!context} in the parent and calls
    {!set_context} in the child (the search generator does this), so a
    request's events keep its id across the fan-out. Lock-free reads;
    an explicit event field with the same key wins over the context. *)

val set_context : (string * Jsonw.t) list -> unit
(** Replace the calling thread's context fields ([[]] clears). *)

val context : unit -> (string * Jsonw.t) list

val with_context : (string * Jsonw.t) list -> (unit -> 'a) -> 'a
(** Run with the given context fields installed, restoring the previous
    context on exit (exceptions included). *)

val flush : t -> unit
(** Drain every registered per-domain buffer and flush the channel.
    Takes each buffer's lock, so it is safe while workers are running. *)

val close : t -> unit
(** {!flush}, then close the channel. Idempotent. *)

(** {1 The global journal}

    Mirrors {!Trace}'s global collector: instrumented code paths call
    {!event} / {!active} unconditionally and pay one atomic load when
    journaling is disabled. *)

val enable : ?capacity:int -> string -> t
(** Install (and return) a fresh global journal writing to the given
    path. Any previously installed journal is closed. *)

val disable : unit -> unit
(** Close and uninstall the global journal (no-op if none). *)

val active : unit -> t option

val event : ?cand:int -> string -> (string * Jsonw.t) list -> unit
(** [event typ fields] appends to the global journal, if installed.
    Prefer {!active} + {!emit} in hot loops so field lists are only
    constructed when a journal is live. *)

(** {1 Reader} *)

val fold_file :
  string -> init:'a -> f:('a -> Jsonw.t -> 'a) -> ('a, string) result
(** Fold over a journal file line by line (blank lines skipped). Stops
    with [Error] describing the line number on the first unparsable
    line. *)

val read_file : string -> (Jsonw.t list, string) result
(** All events of a journal file, in file order. *)

val seq_of : Jsonw.t -> int
val cand_of : Jsonw.t -> int
val typ_of : Jsonw.t -> string
val rid_of : Jsonw.t -> string
(** Accessors for the fixed fields ([-1] / [""] when absent), so readers
    like [mirage_cli explain] and the slow-request forensics do not
    re-implement the schema. *)
