(** A span tracer for the superoptimizer's phases: nested timed regions
    (partition → enumerate → prune → verify → optimize), recorded
    per-domain and emitted either as Chrome [trace_event]-format JSON
    (load in [chrome://tracing] / Perfetto) or as a human-readable tree
    summary.

    Tracing is off by default: {!with_span} costs one atomic load when no
    collector is installed, so instrumented code paths stay on in
    production. [mirage_cli optimize --trace out.json] enables it. *)

type t
(** A span collector. *)

val create : unit -> t
(** A collector whose epoch is "now". Thread-safe: spans may be recorded
    from any domain. *)

(** {1 The global collector} *)

val enable : unit -> t
(** Install (and return) a fresh global collector; subsequent
    {!with_span} calls record into it. *)

val disable : unit -> unit
val active : unit -> t option

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] and records a span into the global
    collector, if one is installed; otherwise it just runs [f]. Nesting
    is tracked per domain, exceptions propagate (the span is still
    recorded). *)

val span :
  t ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Same, into an explicit collector (used by tests). *)

(** {1 Output} *)

type rec_span = {
  name : string;
  cat : string;
  ts_us : float;  (** relative to the collector epoch *)
  dur_us : float;
  tid : int;
  path : string list;  (** innermost first, includes [name] *)
  args : (string * string) list;
}

val spans : t -> rec_span list
(** The recorded spans, oldest first (used by {!Report.phase_timings}). *)

val to_chrome_json : t -> Jsonw.t
(** The recorded spans as a Chrome trace-event array: one complete
    ([ph = "X"]) event per span with microsecond [ts]/[dur] relative to
    the collector's epoch, [tid] = domain id. *)

val dump : t -> string -> unit
(** Write {!to_chrome_json} to a file. *)

val summary : t -> string
(** Tree rendering aggregated by span path: for each nesting path, the
    number of spans and their cumulative time. *)

val span_count : t -> int
