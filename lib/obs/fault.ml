(* Fault injection for chaos testing: named probe points in the
   enumerators, verifier, ILP solver, journal writer and report
   finalizer call [trip], and an armed point raises [Injected] so the
   surrounding quarantine/degradation machinery can be exercised on
   demand.

   Armed from the environment ([MIRAGE_FAULT=point:rate[:count]],
   comma-separated for several points) or programmatically ([configure],
   used by the chaos test suite). Firing decisions are deterministic —
   a hash of the point name and its call ordinal, not a global RNG — so
   a failing chaos run replays exactly. *)

exception Injected of string

type point = {
  name : string;
  rate : float;  (* firing probability per trip, 0..1 *)
  remaining : int Atomic.t;  (* max_int = unlimited *)
  calls : int Atomic.t;
  fired : int Atomic.t;
}

(* The documented probe points (README table). [trip] accepts any name,
   so new call sites need no registration here. *)
let known_points =
  [
    "enum.block";
    "enum.kernel";
    "verify";
    "ilp";
    "journal.write";
    "report.finalize";
    "serve.slow";
    "wire.torn";
    "wire.disconnect";
    "wire.oversize";
    "cache.enospc";
  ]

let installed : point list Atomic.t = Atomic.make []

let c_injected =
  lazy
    (Metrics.counter (Metrics.default ())
       ~help:"faults injected by the MIRAGE_FAULT harness" "fault.injected")

let parse_one s =
  match String.split_on_char ':' (String.trim s) with
  | "" :: _ ->
      Error (Printf.sprintf "bad fault spec %S (empty point name)" s)
  | [ name; rate ] | [ name; rate; "" ] -> (
      match float_of_string_opt rate with
      | Some r when r >= 0.0 && r <= 1.0 ->
          Ok
            {
              name;
              rate = r;
              remaining = Atomic.make max_int;
              calls = Atomic.make 0;
              fired = Atomic.make 0;
            }
      | _ -> Error (Printf.sprintf "bad rate %S (want a float in [0,1])" rate))
  | [ name; rate; count ] -> (
      match (float_of_string_opt rate, int_of_string_opt count) with
      | Some r, Some c when r >= 0.0 && r <= 1.0 && c >= 1 ->
          Ok
            {
              name;
              rate = r;
              remaining = Atomic.make c;
              calls = Atomic.make 0;
              fired = Atomic.make 0;
            }
      | _ ->
          Error
            (Printf.sprintf "bad rate/count %S:%S (want rate in [0,1], count >= 0)"
               rate count))
  | _ ->
      Error
        (Printf.sprintf "bad fault spec %S (want point:rate[:count])" s)

let parse_points spec =
  if String.trim spec = "" then Ok []
  else
    let parts = String.split_on_char ',' spec in
    List.fold_left
      (fun acc part ->
        match (acc, parse_one part) with
        | Ok ps, Ok p -> Ok (ps @ [ p ])
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      (Ok []) parts

let parse spec = Result.map (fun _ -> ()) (parse_points spec)

let configure spec =
  match parse_points spec with
  | Ok ps ->
      Atomic.set installed ps;
      Ok ()
  | Error _ as e -> e

let clear () = Atomic.set installed []

(* Environment arming happens once, lazily, so tests that [configure]
   before any trip are unaffected by a leftover MIRAGE_FAULT. *)
let env_loaded = Atomic.make false

let load_env () =
  if not (Atomic.exchange env_loaded true) then
    match Sys.getenv_opt "MIRAGE_FAULT" with
    | None | Some "" -> ()
    | Some spec -> (
        match parse_points spec with
        | Ok ps -> Atomic.set installed ps
        | Error msg ->
            Log.warn (fun m -> m "MIRAGE_FAULT ignored: %s" msg))

let should_fire p =
  let n = Atomic.fetch_and_add p.calls 1 in
  let hit =
    if p.rate >= 1.0 then true
    else if p.rate <= 0.0 then false
    else
      let h = Hashtbl.hash (p.name, n, 0x5EED) land 0xFFFF in
      float_of_int h /. 65536.0 < p.rate
  in
  hit
  &&
  (* consume one shot; unlimited points sit at max_int and never run dry *)
  let rec take () =
    let left = Atomic.get p.remaining in
    if left <= 0 then false
    else if left = max_int then true
    else if Atomic.compare_and_set p.remaining left (left - 1) then true
    else take ()
  in
  take ()

let armed () =
  load_env ();
  Atomic.get installed <> []

let trip name =
  load_env ();
  match Atomic.get installed with
  | [] -> ()
  | ps -> (
      match List.find_opt (fun p -> p.name = name) ps with
      | None -> ()
      | Some p ->
          if should_fire p then begin
            Atomic.incr p.fired;
            Metrics.bump (Lazy.force c_injected);
            Log.warn (fun m -> m "fault injected at %s" name);
            raise (Injected name)
          end)

let fired () =
  Atomic.get installed
  |> List.filter_map (fun p ->
         let n = Atomic.get p.fired in
         if n > 0 then Some (p.name, n) else None)
