type level = Debug | Info | Warn

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2
let label = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let from_env () =
  match Sys.getenv_opt "MIRAGE_LOG" with
  | Some s -> level_of_string s
  | None -> None

let cur : level option ref = ref (from_env ())
let set_level l = cur := l
let current_level () = !cur

let enabled lvl =
  match !cur with
  | None -> false
  | Some min -> severity lvl >= severity min

let lock = Mutex.create ()

type 'a msgf = (('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

let msg lvl (msgf : 'a msgf) =
  if enabled lvl then
    msgf (fun fmt ->
        Format.kasprintf
          (fun s ->
            Mutex.lock lock;
            Printf.eprintf "[mirage:%s] %s\n%!" (label lvl) s;
            Mutex.unlock lock)
          fmt)

let debug msgf = msg Debug msgf
let info msgf = msg Info msgf
let warn msgf = msg Warn msgf
