(** A named metrics registry: counters and histograms that are registered
    dynamically and updated lock-free ([Atomic]-backed), so the
    multi-domain search workers can bump them concurrently without losing
    increments.

    Registration (looking a metric up by name) takes a mutex; updating an
    already-registered metric never does. The intended pattern for hot
    loops is therefore: resolve the counter/histogram once at the start of
    a search, then [bump]/[observe] through the saved handle.

    A process-wide {!default} registry exists for components with no
    natural per-run registry (the equivalence verifier, the CLI); each
    search run also gets its own registry via [Search.Stats] so per-run
    snapshots do not bleed into each other. *)

type t
(** A registry. *)

type counter
type histogram
type gauge

val create : unit -> t

val default : unit -> t
(** The process-wide registry (created on first use). *)

(** {1 Registration} *)

val counter : t -> ?help:string -> string -> counter
(** [counter reg name] registers (or retrieves — registration is
    idempotent per name) a monotonically increasing integer counter. *)

val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram
(** [histogram reg name] registers a histogram with the given upper
    bucket bounds (strictly increasing; an implicit overflow bucket is
    appended). Defaults to {!duration_buckets}. If [name] is already
    registered the existing histogram is returned and [buckets] is
    ignored. *)

val hdr :
  t -> ?help:string -> ?error:float -> ?lo:float -> ?hi:float -> string -> Hdr.t
(** [hdr reg name] registers (idempotently — like the other kinds,
    later [error]/[lo]/[hi] are ignored if [name] exists) a bounded
    relative-error latency histogram ({!Hdr}), carried through
    {!snapshot}/{!merge}/{!reset} and rendered with quantiles. Use it
    where a fixed-bucket {!histogram} is too coarse: request-latency
    p50/p99 that must stay meaningful from microseconds to minutes. *)

val gauge : t -> ?help:string -> string -> gauge
(** [gauge reg name] registers (idempotently) a float gauge — a
    last-written or high-water value, e.g. a peak shared-memory plan
    size. Gauges merge by {b max} in {!merge}. *)

val duration_buckets : float array
(** Exponential bounds for durations in seconds, 1 µs … ~16 s. *)

val linear_buckets : lo:float -> step:float -> n:int -> float array
(** [lo; lo+step; …] — [n] bounds, e.g. for search depths. *)

(** {1 Updates (lock-free)} *)

val bump : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string
val counter_help : counter -> string
val histogram_name : histogram -> string
val histogram_help : histogram -> string

val observe : histogram -> float -> unit
(** Record one observation: the owning bucket, the total count and the
    running sum are all updated atomically (exact under concurrency). *)

val set_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** Raise the gauge to [x] if [x] exceeds the current value (CAS loop —
    exact under concurrency); a no-op otherwise. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string
val gauge_help : gauge -> string

(** {1 Snapshots and rendering} *)

type hist_snapshot = {
  bounds : float array;  (** upper bounds, overflow excluded *)
  counts : int array;  (** per-bucket counts; length = bounds + 1 (overflow) *)
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;  (** in registration order *)
  hists : (string * hist_snapshot) list;
  gauges : (string * float) list;
  hdrs : (string * Hdr.snapshot) list;
}

val snapshot : t -> snapshot

val merge : snapshot list -> snapshot
(** Sum counters by name; histograms with identical bounds are merged
    bucket-wise (first-seen bounds win otherwise). Used to aggregate the
    per-piece search registries into one report. *)

val reset : t -> unit
(** Zero every registered metric (registrations survive). *)

val to_table : snapshot -> string
(** Human-readable table: counters first, then each histogram with
    count/mean and non-empty buckets. *)

val to_json : snapshot -> Jsonw.t
