(* Per-domain buffer: serialized lines accumulate locally (own mutex,
   uncontended on the hot path) and drain through the journal's single
   writer mutex, so no line is ever torn across a concurrent write. *)
type dbuf = { block : Mutex.t; buf : Buffer.t; mutable events : int }

type t = {
  jpath : string;
  oc : out_channel;
  wlock : Mutex.t;  (** guards [oc] and [bufs] *)
  mutable bufs : dbuf list;  (** every per-domain buffer ever handed out *)
  dls : dbuf Domain.DLS.key;
  seq : int Atomic.t;
  ids : int Atomic.t;
  epoch : float;
  capacity : int;
  closed : bool Atomic.t;
  dropped : int Atomic.t;  (** events lost to failed writes *)
  dropped_bufs : int Atomic.t;  (** whole buffers lost to failed writes *)
}

(* --- ambient event context ------------------------------------------- *)

(* Fields stamped onto every event emitted by the current thread — the
   request id, chiefly, so a server request's events are filterable
   without threading an argument through every instrumented layer.
   Keyed by (domain, thread): threads within a domain share Domain.DLS,
   so DLS alone would let concurrent server handler threads clobber
   each other's ids. The table is an immutable assoc list swapped by
   CAS — readers (every [emit]) are lock-free; writers (request entry
   and exit) retry on contention. Domain and thread ids are never
   reused within a process, so a stale entry can only leak, never
   mis-tag; [with_context] and the search-worker wrappers clean up
   regardless. *)

let ctx_table : ((int * int) * (string * Jsonw.t) list) list Atomic.t =
  Atomic.make []

let ctx_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let rec set_context fields =
  let cur = Atomic.get ctx_table in
  let key = ctx_key () in
  let rest = List.remove_assoc key cur in
  let next = if fields = [] then rest else (key, fields) :: rest in
  if not (Atomic.compare_and_set ctx_table cur next) then set_context fields

let context () =
  match List.assoc_opt (ctx_key ()) (Atomic.get ctx_table) with
  | Some fields -> fields
  | None -> []

let with_context fields f =
  let saved = context () in
  set_context fields;
  Fun.protect ~finally:(fun () -> set_context saved) f

let create ?(capacity = 128) ~path () =
  let oc = open_out path in
  let wlock = Mutex.create () in
  let rec t =
    lazy
      {
        jpath = path;
        oc;
        wlock;
        bufs = [];
        dls =
          Domain.DLS.new_key (fun () ->
              let b =
                { block = Mutex.create (); buf = Buffer.create 4096; events = 0 }
              in
              let j = Lazy.force t in
              Mutex.lock j.wlock;
              j.bufs <- b :: j.bufs;
              Mutex.unlock j.wlock;
              b);
        seq = Atomic.make 0;
        ids = Atomic.make 0;
        epoch = Unix.gettimeofday ();
        capacity = max 1 capacity;
        closed = Atomic.make false;
        dropped = Atomic.make 0;
        dropped_bufs = Atomic.make 0;
      }
  in
  Lazy.force t

let path t = t.jpath
let fresh_id t = Atomic.fetch_and_add t.ids 1
let dropped t = Atomic.get t.dropped
let dropped_buffers t = Atomic.get t.dropped_bufs

(* Process-wide loss accounting in the default metrics registry, so a
   silent buffer drop is visible in any metrics exposition (the service
   [metrics] op, report.json status) even after the journal that
   suffered it is closed. Lazy: registering at module init would create
   the default registry before anyone asked for it. *)
let c_dropped_events =
  lazy
    (Metrics.counter (Metrics.default ())
       ~help:"journal events dropped on write failure" "journal.dropped_events")

let c_dropped_buffers =
  lazy
    (Metrics.counter (Metrics.default ())
       ~help:"whole journal buffers dropped on write failure"
       "journal.dropped_buffers")

(* Caller must hold [b.block]. A failed write (disk full, injected
   fault) drops this buffer's events and degrades the run instead of
   crashing the search: forensics are best-effort, the pipeline is
   not. Whole buffers are dropped atomically — before any byte reaches
   the channel — so the journal never contains a torn line. *)
let drain_locked t (b : dbuf) =
  if Buffer.length b.buf > 0 then begin
    Mutex.lock t.wlock;
    (if not (Atomic.get t.closed) then
       try
         Fault.trip "journal.write";
         Buffer.output_buffer t.oc b.buf;
         flush t.oc
       with e ->
         Atomic.fetch_and_add t.dropped b.events |> ignore;
         Atomic.incr t.dropped_bufs;
         Metrics.add (Lazy.force c_dropped_events) b.events;
         Metrics.bump (Lazy.force c_dropped_buffers);
         Budget.degrade "journal.write";
         Log.warn (fun m ->
             m "journal: dropped %d event(s) on write failure: %s" b.events
               (Printexc.to_string e)));
    Mutex.unlock t.wlock;
    Buffer.clear b.buf;
    b.events <- 0
  end

let emit t ?(cand = -1) ~typ fields =
  if not (Atomic.get t.closed) then begin
    (* ambient context fields ride along; an explicit field wins *)
    let ctx =
      match context () with
      | [] -> []
      | ctx -> List.filter (fun (k, _) -> not (List.mem_assoc k fields)) ctx
    in
    let line =
      Jsonw.Obj
        (("seq", Jsonw.Int (Atomic.fetch_and_add t.seq 1))
        :: ("ts", Jsonw.Float (Unix.gettimeofday () -. t.epoch))
        :: ("dom", Jsonw.Int (Domain.self () :> int))
        :: ("ev", Jsonw.Str typ)
        :: (if cand >= 0 then [ ("cand", Jsonw.Int cand) ] else [])
        @ fields @ ctx)
    in
    let b = Domain.DLS.get t.dls in
    Mutex.lock b.block;
    Buffer.add_string b.buf (Jsonw.to_string line);
    Buffer.add_char b.buf '\n';
    b.events <- b.events + 1;
    if b.events >= t.capacity then drain_locked t b;
    Mutex.unlock b.block
  end

let flush t =
  let bufs =
    Mutex.lock t.wlock;
    let l = t.bufs in
    Mutex.unlock t.wlock;
    l
  in
  List.iter
    (fun b ->
      Mutex.lock b.block;
      drain_locked t b;
      Mutex.unlock b.block)
    bufs;
  Mutex.lock t.wlock;
  if not (Atomic.get t.closed) then flush t.oc;
  Mutex.unlock t.wlock

let close t =
  flush t;
  if not (Atomic.exchange t.closed true) then begin
    Mutex.lock t.wlock;
    close_out_noerr t.oc;
    Mutex.unlock t.wlock
  end

(* ------------------------------------------------------------------ *)
(* Global journal                                                      *)
(* ------------------------------------------------------------------ *)

let current : t option Atomic.t = Atomic.make None

let disable () =
  match Atomic.exchange current None with
  | Some t -> close t
  | None -> ()

let enable ?capacity path =
  disable ();
  let t = create ?capacity ~path () in
  Atomic.set current (Some t);
  t

let active () = Atomic.get current

let event ?cand typ fields =
  match Atomic.get current with
  | None -> ()
  | Some t -> emit t ?cand ~typ fields

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let fold_file path ~init ~f =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec loop lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok acc
            | "" -> loop (lineno + 1) acc
            | line -> (
                match Jsonw.of_string line with
                | Ok v -> loop (lineno + 1) (f acc v)
                | Error msg ->
                    Error (Printf.sprintf "line %d: %s" lineno msg))
          in
          loop 1 init)

let read_file path =
  Result.map List.rev
    (fold_file path ~init:[] ~f:(fun acc v -> v :: acc))

let int_field key j =
  match Jsonw.member key j with Some (Jsonw.Int i) -> i | _ -> -1

let seq_of j = int_field "seq" j
let cand_of j = int_field "cand" j

let typ_of j =
  match Jsonw.member "ev" j with Some (Jsonw.Str s) -> s | _ -> ""

let rid_of j =
  match Jsonw.member "rid" j with Some (Jsonw.Str s) -> s | _ -> ""
