(* A fixed-memory, log-bucketed latency histogram with a bounded
   relative error (the HdrHistogram / DDSketch idea).

   Buckets grow geometrically: with gamma = (1 + eps) / (1 - eps),
   bucket [i] covers [lo * gamma^i, lo * gamma^(i+1)), and every value
   in a bucket is reported as the bucket's midpoint-in-log-space
   estimate  e_i = 2 * lo * gamma^i * gamma / (gamma + 1), which is
   within relative [eps] of every member. Quantiles therefore carry the
   same bound: the returned estimate is within [eps * v] of the exact
   sorted-sample quantile value [v] (for samples inside [lo, hi]).

   Memory is fixed at creation (~920 atomic ints for the default
   1 us .. 100 s at 1% error) and every update is lock-free, so search
   worker domains and server handler threads record concurrently
   without coordination. *)

type t = {
  name : string;
  help : string;
  eps : float;
  lo : float;
  hi : float;
  gamma : float;
  lgamma : float;  (* log gamma, cached for the index computation *)
  nbuckets : int;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;
  vmin : float Atomic.t;  (* true (unclamped) extrema of recorded values *)
  vmax : float Atomic.t;
}

let create ?(error = 0.01) ?(lo = 1e-6) ?(hi = 100.0) ?(help = "") name =
  if not (error > 0.0 && error < 1.0) then
    invalid_arg "Hdr.create: error must be in (0, 1)";
  if not (lo > 0.0 && hi > lo) then
    invalid_arg "Hdr.create: need 0 < lo < hi";
  let gamma = (1.0 +. error) /. (1.0 -. error) in
  let lgamma = Float.log gamma in
  let nbuckets =
    1 + int_of_float (Float.floor (Float.log (hi /. lo) /. lgamma))
  in
  {
    name;
    help;
    eps = error;
    lo;
    hi;
    gamma;
    lgamma;
    nbuckets;
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0.0;
    vmin = Atomic.make Float.infinity;
    vmax = Atomic.make Float.neg_infinity;
  }

let name t = t.name
let help t = t.help
let error t = t.eps
let range t = (t.lo, t.hi)

(* Bucket index for a (clamped) value, corrected against the
   exp-computed bucket edges so float fuzz in log/floor never moves a
   value across a boundary relative to the estimate it will be reported
   with. *)
let index t v =
  let v = if v < t.lo then t.lo else if v > t.hi then t.hi else v in
  let i = int_of_float (Float.floor (Float.log (v /. t.lo) /. t.lgamma)) in
  let i = if i < 0 then 0 else if i > t.nbuckets - 1 then t.nbuckets - 1 else i in
  let lower = t.lo *. Float.exp (float_of_int i *. t.lgamma) in
  if v < lower && i > 0 then i - 1
  else
    let upper = t.lo *. Float.exp (float_of_int (i + 1) *. t.lgamma) in
    if v >= upper && i < t.nbuckets - 1 then i + 1 else i

let rec add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then add_float a x

let rec min_float a x =
  let old = Atomic.get a in
  if x < old && not (Atomic.compare_and_set a old x) then min_float a x

let rec max_float a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then max_float a x

let record t v =
  if Float.is_nan v then ()
  else begin
    Atomic.incr t.buckets.(index t v);
    Atomic.incr t.count;
    add_float t.sum v;
    min_float t.vmin v;
    max_float t.vmax v
  end

let count t = Atomic.get t.count

let reset t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.count 0;
  Atomic.set t.sum 0.0;
  Atomic.set t.vmin Float.infinity;
  Atomic.set t.vmax Float.neg_infinity

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  eps : float;
  lo : float;
  hi : float;
  gamma : float;
  counts : int array;
  count : int;
  sum : float;
  vmin : float;  (* infinity / neg_infinity when empty *)
  vmax : float;
}

let snapshot (t : t) =
  {
    eps = t.eps;
    lo = t.lo;
    hi = t.hi;
    gamma = t.gamma;
    counts = Array.map Atomic.get t.buckets;
    count = Atomic.get t.count;
    sum = Atomic.get t.sum;
    vmin = Atomic.get t.vmin;
    vmax = Atomic.get t.vmax;
  }

let merge (a : snapshot) (b : snapshot) =
  if
    a.eps <> b.eps || a.lo <> b.lo || a.hi <> b.hi
    || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Hdr.merge: incompatible histograms"
  else
    {
      a with
      counts = Array.map2 ( + ) a.counts b.counts;
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      vmin = Float.min a.vmin b.vmin;
      vmax = Float.max a.vmax b.vmax;
    }

let estimate_of_bucket (s : snapshot) i =
  let lower = s.lo *. Float.exp (float_of_int i *. Float.log s.gamma) in
  2.0 *. lower *. s.gamma /. (s.gamma +. 1.0)

(* Exact-sample rank rule: r = max 1 (ceil (p * n)), answer is the r-th
   smallest. The bucket scan finds the bucket holding that sample, whose
   estimate is within eps of it. *)
let snap_quantile (s : snapshot) p =
  if s.count = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let n = Array.length s.counts in
    let rec go i acc =
      if i >= n then estimate_of_bucket s (n - 1)
      else
        let acc = acc + s.counts.(i) in
        if acc >= rank then estimate_of_bucket s i else go (i + 1) acc
    in
    go 0 0
  end

let quantile t p = snap_quantile (snapshot t) p
let snap_mean (s : snapshot) =
  if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

let mean t = snap_mean (snapshot t)

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

let us v = v *. 1e6

(* The standard quantile card: everything in microseconds, which is the
   natural unit for request latencies between 1 us and 100 s. *)
let snap_to_json (s : snapshot) =
  Jsonw.Obj
    [
      ("count", Jsonw.Int s.count);
      ("error", Jsonw.Float s.eps);
      ("sum_us", Jsonw.Float (us s.sum));
      ("mean_us", Jsonw.Float (us (snap_mean s)));
      ("p50_us", Jsonw.Float (us (snap_quantile s 0.5)));
      ("p90_us", Jsonw.Float (us (snap_quantile s 0.9)));
      ("p99_us", Jsonw.Float (us (snap_quantile s 0.99)));
      ("min_us", Jsonw.Float (if s.count = 0 then 0.0 else us s.vmin));
      ("max_us", Jsonw.Float (if s.count = 0 then 0.0 else us s.vmax));
    ]

let to_json t = snap_to_json (snapshot t)
