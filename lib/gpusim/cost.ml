open Tensor
open Mugraph

type kernel_cost = {
  node : int;
  kind : string;
  blocks : int;
  launch_us : float;
  compute_us : float;
  dram_us : float;
  smem_us : float;
  total_us : float;
  dram_bytes : float;
  flops : float;
}

type graph_cost = {
  kernels : kernel_cost list;
  total_us : float;
  total_dram_bytes : float;
  num_kernels : int;
}

(* Unit conversions: TFLOPS -> flops/us, GB/s -> bytes/us. *)
let tflops_to_flops_per_us t = t *. 1e6
let gbs_to_bytes_per_us b = b *. 1e3

let rate_for (d : Device.t) (p : Op.prim) =
  match p with
  | Op.Matmul | Op.Concat_matmul -> tflops_to_flops_per_us d.tensor_tflops
  | _ -> tflops_to_flops_per_us d.ew_tflops

(* Compute time of one operator application on one SM. *)
let prim_compute_us d p in_shapes out_shape =
  Op.flops p in_shapes out_shape /. (rate_for d p /. float_of_int d.num_sms)

let thread_graph_compute_us d (tg : Graph.thread_graph) ~in_shapes =
  let shapes = Infer.thread_shapes tg ~inputs:in_shapes in
  let total = ref 0.0 in
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      match node.top with
      | Graph.T_input _ -> ()
      | Graph.T_prim p ->
          let ins = List.map (fun j -> shapes.(j)) node.tins in
          total := !total +. prim_compute_us d p ins shapes.(i))
    tg.tnodes;
  !total

let bytes_of_shape (d : Device.t) s = Shape.numel s * d.elt_bytes

(* Device-memory traffic of an input iterator, with a simple last-level
   cache model: partitioning maps tile the input exactly once (raw =
   unique footprint); replica maps re-read the same bytes from many
   blocks or iterations, which the L2 absorbs when the tensor is small
   enough (half the L2, to account for sharing). This is what lets a
   fused kernel replicate a small activation across 128 blocks without
   paying 128x DRAM traffic, while large K/V re-reads across query heads
   still cost full price (the up-to-7x effect of §8.2). *)
let initer_traffic (d : Device.t) ~tile_bytes ~input_bytes ~blocks ~reps =
  let raw = tile_bytes *. float_of_int blocks *. reps in
  let unique = input_bytes in
  if raw <= unique then raw
  else if unique <= float_of_int d.l2_bytes /. 4.0 then unique
  else raw

(* Cost of a graph-defined (custom) kernel. *)
let graphdef_cost (d : Device.t) (bg : Graph.block_graph) ~kernel_inputs =
  let shapes = Infer.block_shapes bg ~kernel_inputs in
  let post = Graph.post_loop_nodes bg in
  let invariant = Graph.loop_invariant_nodes bg in
  let blocks = Graph.total_blocks bg in
  let iters = Graph.total_iters bg in
  let consumers = Array.make (Array.length bg.bnodes) 0 in
  Array.iter
    (fun (n : Graph.block_node) ->
      List.iter (fun j -> consumers.(j) <- consumers.(j) + 1) n.bins)
    bg.bnodes;
  let dram_bytes = ref 0.0 in
  let per_block_compute = ref 0.0 in
  let per_block_smem = ref 0.0 in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      let reps =
        if post.(i) then 1.0
        else if invariant.(i) then 1.0
        else float_of_int iters
      in
      let out_bytes = float_of_int (bytes_of_shape d shapes.(i)) in
      let in_shapes = List.map (fun j -> shapes.(j)) node.bins in
      match node.bop with
      | Graph.B_initer { input; _ } ->
          (* device -> shared: tile loaded per iteration per block (once
             if invariant), then read from smem by each consumer. *)
          let input_bytes =
            float_of_int
              (bytes_of_shape d (List.nth kernel_inputs input))
          in
          dram_bytes :=
            !dram_bytes
            +. initer_traffic d ~tile_bytes:out_bytes ~input_bytes ~blocks
                 ~reps;
          per_block_smem :=
            !per_block_smem
            +. (out_bytes *. reps *. float_of_int (1 + consumers.(i)))
      | Graph.B_prim (Op.Transpose | Op.Reshape _) ->
          (* strided views inside shared memory: free *)
          ()
      | Graph.B_prim p ->
          per_block_compute :=
            !per_block_compute +. (prim_compute_us d p in_shapes shapes.(i) *. reps);
          per_block_smem :=
            !per_block_smem
            +. (out_bytes *. reps *. float_of_int (1 + consumers.(i)))
      | Graph.B_threadgraph tg ->
          (* Interiors stay in registers: only the fused operator's output
             touches shared memory. *)
          per_block_compute :=
            !per_block_compute
            +. (thread_graph_compute_us d tg ~in_shapes *. reps);
          per_block_smem :=
            !per_block_smem
            +. (out_bytes *. reps *. float_of_int (1 + consumers.(i)))
      | Graph.B_accum { fmap = _ } ->
          (* read-modify-write of the accumulated tile each iteration;
             one add per element. *)
          let adds = float_of_int (Shape.numel shapes.(i)) *. float_of_int iters in
          per_block_compute :=
            !per_block_compute
            +. (adds /. (tflops_to_flops_per_us d.ew_tflops /. float_of_int d.num_sms));
          per_block_smem :=
            !per_block_smem +. (2.0 *. out_bytes *. float_of_int iters)
      | Graph.B_outsaver _ ->
          (* shared -> device: each block writes its disjoint chunk; the
             union of chunks is exactly the kernel-level output. *)
          dram_bytes := !dram_bytes +. float_of_int (bytes_of_shape d shapes.(i)))
    bg.bnodes;
  let waves = float_of_int ((blocks + d.num_sms - 1) / d.num_sms) in
  let compute_us = waves *. !per_block_compute in
  let smem_us =
    waves *. (!per_block_smem /. gbs_to_bytes_per_us d.smem_gb_s_per_sm)
  in
  (* ~75% of the SMs streaming already saturate DRAM bandwidth *)
  let utilization =
    Float.min 1.0
      (float_of_int blocks /. (0.75 *. float_of_int d.num_sms))
  in
  let dram_us =
    !dram_bytes /. (gbs_to_bytes_per_us d.dram_gb_s *. utilization)
  in
  (blocks, compute_us, dram_us, smem_us, !dram_bytes, !per_block_compute)

let kernel_costs (d : Device.t) (g : Graph.kernel_graph) =
  let shapes = Infer.kernel_shapes g in
  let costs = ref [] in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let in_shapes =
        List.map
          (fun ({ node = j; port } : Graph.tensor_ref) -> shapes.(j).(port))
          node.kins
      in
      match node.kop with
      | Graph.K_input _ -> ()
      | Graph.K_prim (Op.Reshape _ | Op.Transpose) ->
          (* metadata-only views: no kernel is launched (PyTorch and
             friends treat these as free stride changes) *)
          ()
      | Graph.K_prim p ->
          let out = shapes.(i).(0) in
          let in_bytes =
            List.fold_left (fun acc s -> acc + bytes_of_shape d s) 0 in_shapes
          in
          let out_bytes = bytes_of_shape d out in
          let flops = Op.flops p in_shapes out in
          (* Library kernels tile their output (~4K elements per thread
             block); small outputs leave SMs idle, partially recovered by
             vendor heuristics such as split-K — hence the utilization
             floor. *)
          let blocks =
            (* output tiling, or split-K style input streaming for
               weight-heavy kernels — whichever exposes more blocks *)
            max
              (max 1 ((Tensor.Shape.numel out + 4095) / 4096))
              (max 1 (in_bytes / 65536))
          in
          let utilization =
            Float.min 1.0
              (Float.max 0.25
                 (float_of_int blocks /. float_of_int d.num_sms))
          in
          let compute_us = flops /. (rate_for d p *. utilization) in
          let dram_bytes = float_of_int (in_bytes + out_bytes) in
          let dram_us =
            dram_bytes /. (gbs_to_bytes_per_us d.dram_gb_s *. utilization)
          in
          let total_us =
            d.kernel_launch_us +. Float.max compute_us dram_us
          in
          costs :=
            {
              node = i;
              kind = Op.to_string p;
              blocks;
              launch_us = d.kernel_launch_us;
              compute_us;
              dram_us;
              smem_us = 0.0;
              total_us;
              dram_bytes;
              flops;
            }
            :: !costs
      | Graph.K_graphdef bg ->
          let blocks, compute_us, dram_us, smem_us, dram_bytes, per_block =
            graphdef_cost d bg ~kernel_inputs:in_shapes
          in
          ignore per_block;
          let total_us =
            d.kernel_launch_us
            +. Float.max compute_us (Float.max dram_us smem_us)
          in
          costs :=
            {
              node = i;
              kind = "custom kernel";
              blocks;
              launch_us = d.kernel_launch_us;
              compute_us;
              dram_us;
              smem_us;
              total_us;
              dram_bytes;
              flops = 0.0;
            }
            :: !costs)
    g.knodes;
  List.rev !costs

let cost d g =
  Obs.Profile.with_phase "gpusim.cost" (fun () ->
      let kernels = kernel_costs d g in
      {
        kernels;
        total_us =
          List.fold_left
            (fun acc (k : kernel_cost) -> acc +. k.total_us)
            0.0 kernels;
        total_dram_bytes =
          List.fold_left
            (fun acc (k : kernel_cost) -> acc +. k.dram_bytes)
            0.0 kernels;
        num_kernels = List.length kernels;
      })

let total_us d g = (cost d g).total_us

let speedup ~baseline c = baseline.total_us /. c.total_us

let pp_graph_cost fmt c =
  Format.fprintf fmt "%d kernels, %.2f us total, %.0f bytes DRAM@."
    c.num_kernels c.total_us c.total_dram_bytes;
  List.iter
    (fun k ->
      Format.fprintf fmt
        "  k%d %-14s blocks=%-5d launch=%.1f compute=%.2f dram=%.2f smem=%.2f \
         -> %.2f us@."
        k.node k.kind k.blocks k.launch_us k.compute_us k.dram_us k.smem_us
        k.total_us)
    c.kernels

let kernel_cost_json (k : kernel_cost) =
  Obs.Jsonw.Obj
    [
      ("node", Obs.Jsonw.Int k.node);
      ("kind", Obs.Jsonw.Str k.kind);
      ("blocks", Obs.Jsonw.Int k.blocks);
      ("launch_us", Obs.Jsonw.Float k.launch_us);
      ("compute_us", Obs.Jsonw.Float k.compute_us);
      ("dram_us", Obs.Jsonw.Float k.dram_us);
      ("smem_us", Obs.Jsonw.Float k.smem_us);
      ("total_us", Obs.Jsonw.Float k.total_us);
      ("dram_bytes", Obs.Jsonw.Float k.dram_bytes);
      ("flops", Obs.Jsonw.Float k.flops);
    ]

let to_json (c : graph_cost) =
  Obs.Jsonw.Obj
    [
      ("total_us", Obs.Jsonw.Float c.total_us);
      ("total_dram_bytes", Obs.Jsonw.Float c.total_dram_bytes);
      ("num_kernels", Obs.Jsonw.Int c.num_kernels);
      ("kernels", Obs.Jsonw.List (List.map kernel_cost_json c.kernels));
    ]

let journal_attribution ?cand j (c : graph_cost) =
  List.iter
    (fun (k : kernel_cost) ->
      match kernel_cost_json k with
      | Obs.Jsonw.Obj fields -> Obs.Journal.emit j ?cand ~typ:"cost.kernel" fields
      | _ -> ())
    c.kernels;
  Obs.Journal.emit j ?cand ~typ:"cost.total"
    [
      ("total_us", Obs.Jsonw.Float c.total_us);
      ("total_dram_bytes", Obs.Jsonw.Float c.total_dram_bytes);
      ("num_kernels", Obs.Jsonw.Int c.num_kernels);
    ]
