(** Roofline-style analytical cost model for muGraphs.

    Each kernel-graph node costs
    [launch + max(compute, dram, smem)] where:
    - {e compute} sums per-operator FLOPs at tensor-core rate for matmuls
      and at the elementwise rate otherwise, scheduled in waves of
      [num_sms] blocks;
    - {e dram} is device-memory traffic over device bandwidth, derated by
      SM utilization when the grid launches fewer blocks than SMs (this
      is what penalizes the fixed grid heuristics of §8.2);
    - {e smem} is per-block shared-memory traffic over per-SM bandwidth
      (thread-graph interiors live in registers and are exempt — the
      benefit of §4.2's rule-based thread fusion).

    Graph-defined kernels charge device traffic per input-iterator tile
    per block per iteration (loop-invariant tiles are loaded once and
    cached in shared memory), so fusing kernels removes both round-trips
    and launch overheads, exactly the effects the paper's optimizations
    exploit. *)

type kernel_cost = {
  node : int;  (** kernel-graph node index *)
  kind : string;  (** operator name or "custom kernel" *)
  blocks : int;
  launch_us : float;
  compute_us : float;
  dram_us : float;
  smem_us : float;
  total_us : float;
  dram_bytes : float;
  flops : float;
}

type graph_cost = {
  kernels : kernel_cost list;
  total_us : float;
  total_dram_bytes : float;
  num_kernels : int;
}

val kernel_costs : Device.t -> Mugraph.Graph.kernel_graph -> kernel_cost list
(** One entry per non-input kernel node, in execution order. *)

val cost : Device.t -> Mugraph.Graph.kernel_graph -> graph_cost
(** Kernels execute sequentially (data dependences between kernels are
    honored through device memory, as on a single CUDA stream). *)

val total_us : Device.t -> Mugraph.Graph.kernel_graph -> float

val speedup : baseline:graph_cost -> graph_cost -> float
(** [baseline.total_us /. candidate.total_us]. *)

val pp_graph_cost : Format.formatter -> graph_cost -> unit

val kernel_cost_json : kernel_cost -> Obs.Jsonw.t
val to_json : graph_cost -> Obs.Jsonw.t
(** The full per-operator breakdown as JSON (run-report section). *)

val journal_attribution :
  ?cand:int -> Obs.Journal.t -> graph_cost -> unit
(** Emit one [cost.kernel] journal event per kernel (node, kind, blocks,
    compute/dram/smem/total µs, DRAM bytes, FLOPs) plus a [cost.total]
    summary, tagged with candidate id [cand] — the per-operator cost
    attribution for the search's best candidates. *)
