(** One-shot client for the optimization service. Every call opens a
    fresh connection, sends one frame, reads one response. Thread- and
    domain-safe (no shared state). *)

val request :
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  socket_path:string ->
  Obs.Jsonw.t ->
  (Obs.Jsonw.t, string) result
(** Send one frame. A ["request_id"] is minted ({!Reqid}) unless the
    request already carries a valid one; the server echoes it in the
    response and stamps it on every journal event of the dispatch.

    [on_progress] opts the request into live progress streaming: the
    request gains a ["progress": true] field and the callback receives
    each interleaved {!Proto.progress_frame} ({!Proto.progress_schema})
    as it arrives, before [request] returns with the final response.
    Without it the connection carries exactly one response frame —
    byte-identical to a client that predates progress streaming. *)

val optimize :
  ?fields:(string * Obs.Jsonw.t) list ->
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  socket_path:string ->
  benchmark:string ->
  unit ->
  (Obs.Jsonw.t, string) result
(** [optimize ~socket_path ~benchmark ()] requests optimization of a
    named Fig. 7 benchmark. [fields] adds request fields
    ([max_block_ops], [budget_s], [device], …). *)

val optimize_graph :
  ?fields:(string * Obs.Jsonw.t) list ->
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  socket_path:string ->
  Obs.Jsonw.t ->
  (Obs.Jsonw.t, string) result
(** Optimize an inline muGraph (Checkpoint codec JSON). *)

val status : socket_path:string -> (Obs.Jsonw.t, string) result
val stats : socket_path:string -> (Obs.Jsonw.t, string) result

val shutdown :
  ?drain_s:float -> socket_path:string -> unit -> (Obs.Jsonw.t, string) result
(** Ask the daemon to stop. [drain_s] requests a graceful drain:
    in-flight searches get that long to finish before their budgets are
    cancelled. *)

val error_kind : Obs.Jsonw.t -> string option
(** The machine-readable kind of an error response ([overloaded],
    [quota_exceeded], [timeout], [bad_request], [bad_frame],
    [internal]); [None] for a non-error response. *)

val retry_after_s : Obs.Jsonw.t -> float option
(** The back-off hint a load-shed rejection carries, when present. *)

val request_with_retry :
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  ?max_attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?on_retry:(attempt:int -> delay_s:float -> reason:string -> unit) ->
  socket_path:string ->
  Obs.Jsonw.t ->
  (Obs.Jsonw.t, string) result
(** {!request} with bounded, jittered exponential back-off for
    idempotent ops ([optimize] / [status] / [stats] / [metrics]) only —
    anything else falls through to a single attempt. Retried failures:
    transport errors (connect refused, connection closed) and typed
    load-shed responses ([overloaded], [quota_exceeded]), honoring the
    server's [retry_after_s] hint as a floor on the delay. A typed
    [timeout] is final — the request's own deadline expired. One
    request id is pinned across all attempts ([max_attempts], default
    5; delays grow from [base_delay_s] (default 0.05) capped at
    [max_delay_s] (default 2), each scaled by ±25% jitter).
    [on_retry] observes each back-off decision. *)

val metrics :
  ?format:string -> socket_path:string -> unit -> (Obs.Jsonw.t, string) result
(** The telemetry exposition snapshot ({!Telemetry.snapshot_schema});
    [~format:"prometheus"] asks for the text format instead. *)

val wait_ready : ?timeout_s:float -> socket_path:string -> unit -> bool
(** Poll [status] until the daemon answers (or the timeout elapses). *)
