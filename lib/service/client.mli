(** One-shot client for the optimization service. Every call opens a
    fresh connection, sends one frame, reads one response. Thread- and
    domain-safe (no shared state). *)

val request :
  socket_path:string -> Obs.Jsonw.t -> (Obs.Jsonw.t, string) result

val optimize :
  ?fields:(string * Obs.Jsonw.t) list ->
  socket_path:string ->
  benchmark:string ->
  unit ->
  (Obs.Jsonw.t, string) result
(** [optimize ~socket_path ~benchmark ()] requests optimization of a
    named Fig. 7 benchmark. [fields] adds request fields
    ([max_block_ops], [budget_s], [device], …). *)

val optimize_graph :
  ?fields:(string * Obs.Jsonw.t) list ->
  socket_path:string ->
  Obs.Jsonw.t ->
  (Obs.Jsonw.t, string) result
(** Optimize an inline muGraph (Checkpoint codec JSON). *)

val status : socket_path:string -> (Obs.Jsonw.t, string) result
val stats : socket_path:string -> (Obs.Jsonw.t, string) result
val shutdown : socket_path:string -> (Obs.Jsonw.t, string) result

val wait_ready : ?timeout_s:float -> socket_path:string -> unit -> bool
(** Poll [status] until the daemon answers (or the timeout elapses). *)
