(** One-shot client for the optimization service. Every call opens a
    fresh connection, sends one frame, reads one response. Thread- and
    domain-safe (no shared state). *)

val request :
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  socket_path:string ->
  Obs.Jsonw.t ->
  (Obs.Jsonw.t, string) result
(** Send one frame. A ["request_id"] is minted ({!Reqid}) unless the
    request already carries a valid one; the server echoes it in the
    response and stamps it on every journal event of the dispatch.

    [on_progress] opts the request into live progress streaming: the
    request gains a ["progress": true] field and the callback receives
    each interleaved {!Proto.progress_frame} ({!Proto.progress_schema})
    as it arrives, before [request] returns with the final response.
    Without it the connection carries exactly one response frame —
    byte-identical to a client that predates progress streaming. *)

val optimize :
  ?fields:(string * Obs.Jsonw.t) list ->
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  socket_path:string ->
  benchmark:string ->
  unit ->
  (Obs.Jsonw.t, string) result
(** [optimize ~socket_path ~benchmark ()] requests optimization of a
    named Fig. 7 benchmark. [fields] adds request fields
    ([max_block_ops], [budget_s], [device], …). *)

val optimize_graph :
  ?fields:(string * Obs.Jsonw.t) list ->
  ?on_progress:(Obs.Jsonw.t -> unit) ->
  socket_path:string ->
  Obs.Jsonw.t ->
  (Obs.Jsonw.t, string) result
(** Optimize an inline muGraph (Checkpoint codec JSON). *)

val status : socket_path:string -> (Obs.Jsonw.t, string) result
val stats : socket_path:string -> (Obs.Jsonw.t, string) result
val shutdown : socket_path:string -> (Obs.Jsonw.t, string) result

val metrics :
  ?format:string -> socket_path:string -> unit -> (Obs.Jsonw.t, string) result
(** The telemetry exposition snapshot ({!Telemetry.snapshot_schema});
    [~format:"prometheus"] asks for the text format instead. *)

val wait_ready : ?timeout_s:float -> socket_path:string -> unit -> bool
(** Poll [status] until the daemon answers (or the timeout elapses). *)
