(* Request identity. Every request frame carries a "request_id": the
   client mints one per call (so retries are distinguishable and the
   caller can grep its own id out of server forensics); the server
   mints one for bare frames so every journal line is attributable
   either way. Ids are short hex digests — unique across processes
   (pid + time + per-process counter), free of characters that need
   quoting in JSON, shells or file names (slow-request report
   directories are named by id). *)

module J = Obs.Jsonw

let field = "request_id"
let seq = Atomic.make 0

let fresh () =
  let raw =
    Printf.sprintf "%d.%.9f.%d"
      (Unix.getpid ())
      (Unix.gettimeofday ())
      (Atomic.fetch_and_add seq 1)
  in
  "r" ^ String.sub (Digest.to_hex (Digest.string raw)) 0 15

let valid s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | ':' | '-' -> true
         | _ -> false)
       s

let of_request req =
  match J.member field req with
  | Some (J.Str s) when valid s -> Some s
  | _ -> None

(* Attach an id to a request that lacks one; an existing (valid) id is
   kept so client-minted ids survive the trip. *)
let ensure req =
  match of_request req with
  | Some id -> (req, id)
  | None -> (
      let id = fresh () in
      match req with
      | J.Obj fields ->
          (J.Obj (List.remove_assoc field fields @ [ (field, J.Str id) ]), id)
      | j -> (j, id))
