(** Slow-request forensics: when an optimize request's total latency
    crosses a threshold, write a self-contained report directory named
    by request id — [report.json] envelope (stages, outcome,
    threshold), [journal.jsonl] (the global journal sliced to exactly
    that rid, search-worker events included), and [trace.json] (spans
    tagged with the rid, when tracing is enabled).

    Capture is best-effort (it never raises into the request path) and
    bounded by [max_reports] so a misconfigured threshold cannot fill
    the disk. *)

val report_schema : string
(** ["mirage.service.slow_report.v1"]. *)

type t

val create :
  ?registry:Obs.Metrics.t ->
  ?max_reports:int ->
  dir:string ->
  threshold_s:float ->
  unit ->
  t
(** Registers a [serve.slow_reports] counter in [registry].
    [max_reports] defaults to 32. *)

val dir : t -> string
val threshold_s : t -> float

val captured : t -> int
(** Reports written so far. *)

val skipped : t -> int
(** Slow requests not captured (cap reached or capture failed). *)

val journal_slice :
  path:string -> rid:string -> (Obs.Jsonw.t list, string) result
(** The journal events carrying exactly this rid, in file order — the
    filter the report directory is built from, exposed for tests and
    [mirage_cli explain]-style tooling. *)

val maybe_capture : t -> Telemetry.sample -> response:Obs.Jsonw.t -> unit
(** Capture a report if the (finished) sample is an optimize request at
    or above the threshold. Never raises. *)
