(* Admission control for the serving tier: the armor that keeps a
   saturated daemon responsive instead of wedged.

   Three independent gates, each answering with a typed rejection that
   carries a [retry_after_s] hint (so a well-behaved client backs off
   instead of hammering):

   - a live-connection bound: connections beyond [max_connections] are
     answered with "overloaded" and closed without reading a byte — an
     accept flood cannot grow the handler-thread population without
     limit;
   - a search-queue bound: at most [max_queue_depth] *distinct*
     searches may wait for a search slot (single-flight followers ride
     their leader's slot and are not counted) — queue wait stays
     bounded, so does the daemon's memory;
   - per-tenant token buckets: requests carrying a ["tenant"] field
     draw one token from that tenant's bucket (capacity
     [tenant_burst], refilled at [tenant_rate] tokens/s); an empty
     bucket answers "quota_exceeded" with the exact time until the
     next token. Tenantless requests are exempt — quotas are opt-in
     per deployment.

   All decisions are counted under service.admit.* and journaled
   ([admit.reject]) so a fleet front door can alarm on shed load. *)

module J = Obs.Jsonw

type rejection = { kind : string; retry_after_s : float; detail : string }

type decision = Admitted | Rejected of rejection

type bucket = { mutable tokens : float; mutable refilled_at : float }

type t = {
  max_connections : int;  (* 0 = unlimited *)
  max_queue_depth : int;  (* 0 = unlimited *)
  tenant_rate : float;  (* tokens per second; 0 = quotas off *)
  tenant_burst : float;
  retry_after_s : float;  (* the hint on overload rejections *)
  lock : Mutex.t;
  mutable live_conns : int;
  mutable queue_depth : int;
  tenants : (string, bucket) Hashtbl.t;
  g_conns : Obs.Metrics.gauge;
  g_queue : Obs.Metrics.gauge;
  c_admitted : Obs.Metrics.counter;
  c_reject_conn : Obs.Metrics.counter;
  c_reject_queue : Obs.Metrics.counter;
  c_reject_quota : Obs.Metrics.counter;
}

let create ?(registry = Obs.Metrics.default ()) ?(max_connections = 64)
    ?(max_queue_depth = 64) ?(tenant_rate = 0.0) ?(tenant_burst = 10.0)
    ?(retry_after_s = 0.5) () =
  let c name help = Obs.Metrics.counter registry ~help name in
  {
    max_connections;
    max_queue_depth;
    tenant_rate;
    tenant_burst = Float.max 1.0 tenant_burst;
    retry_after_s;
    lock = Mutex.create ();
    live_conns = 0;
    queue_depth = 0;
    tenants = Hashtbl.create 16;
    g_conns =
      Obs.Metrics.gauge registry ~help:"connections currently being handled"
        "service.admit.live_connections";
    g_queue =
      Obs.Metrics.gauge registry
        ~help:"distinct searches waiting for a search slot"
        "service.admit.queue_depth";
    c_admitted = c "service.admit.accepted" "connections admitted";
    c_reject_conn =
      c "service.admit.reject.overloaded"
        "connections shed at the live-connection bound";
    c_reject_queue =
      c "service.admit.reject.queue" "searches shed at the queue-depth bound";
    c_reject_quota =
      c "service.admit.reject.quota" "requests shed by a tenant quota";
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let journal_reject (r : rejection) =
  Obs.Journal.event "admit.reject"
    [
      ("kind", J.Str r.kind);
      ("retry_after_s", J.Float r.retry_after_s);
      ("detail", J.Str r.detail);
    ]

let reject counter r =
  Obs.Metrics.bump counter;
  journal_reject r;
  Rejected r

(* --- live-connection bound ------------------------------------------- *)

let try_conn t =
  locked t (fun () ->
      if t.max_connections > 0 && t.live_conns >= t.max_connections then
        reject t.c_reject_conn
          {
            kind = "overloaded";
            retry_after_s = t.retry_after_s;
            detail =
              Printf.sprintf "connection limit %d reached" t.max_connections;
          }
      else begin
        t.live_conns <- t.live_conns + 1;
        Obs.Metrics.set_gauge t.g_conns (float_of_int t.live_conns);
        Obs.Metrics.bump t.c_admitted;
        Admitted
      end)

let conn_done t =
  locked t (fun () ->
      t.live_conns <- max 0 (t.live_conns - 1);
      Obs.Metrics.set_gauge t.g_conns (float_of_int t.live_conns))

(* --- search-queue bound ---------------------------------------------- *)

let try_queue t =
  locked t (fun () ->
      if t.max_queue_depth > 0 && t.queue_depth >= t.max_queue_depth then
        reject t.c_reject_queue
          {
            kind = "overloaded";
            retry_after_s = t.retry_after_s;
            detail =
              Printf.sprintf "search queue depth %d reached" t.max_queue_depth;
          }
      else begin
        t.queue_depth <- t.queue_depth + 1;
        Obs.Metrics.set_gauge t.g_queue (float_of_int t.queue_depth);
        Admitted
      end)

let queue_done t =
  locked t (fun () ->
      t.queue_depth <- max 0 (t.queue_depth - 1);
      Obs.Metrics.set_gauge t.g_queue (float_of_int t.queue_depth))

(* --- per-tenant token buckets ----------------------------------------- *)

let refill t b ~now =
  if now > b.refilled_at then begin
    b.tokens <-
      Float.min t.tenant_burst (b.tokens +. ((now -. b.refilled_at) *. t.tenant_rate));
    b.refilled_at <- now
  end

let check_tenant ?now t tenant =
  match tenant with
  | None -> Admitted  (* quotas are opt-in: tenantless traffic is exempt *)
  | Some _ when t.tenant_rate <= 0.0 -> Admitted
  | Some name ->
      let now = match now with Some v -> v | None -> Unix.gettimeofday () in
      locked t (fun () ->
          let b =
            match Hashtbl.find_opt t.tenants name with
            | Some b -> b
            | None ->
                let b = { tokens = t.tenant_burst; refilled_at = now } in
                Hashtbl.replace t.tenants name b;
                b
          in
          refill t b ~now;
          if b.tokens >= 1.0 then begin
            b.tokens <- b.tokens -. 1.0;
            Admitted
          end
          else
            reject t.c_reject_quota
              {
                kind = "quota_exceeded";
                retry_after_s = (1.0 -. b.tokens) /. t.tenant_rate;
                detail = Printf.sprintf "tenant %S out of quota" name;
              })

(* --- introspection ---------------------------------------------------- *)

let live_conns t = locked t (fun () -> t.live_conns)
let queue_depth t = locked t (fun () -> t.queue_depth)
let tenant_count t = locked t (fun () -> Hashtbl.length t.tenants)

let status_json t =
  locked t (fun () ->
      J.Obj
        [
          ("live_connections", J.Int t.live_conns);
          ("max_connections", J.Int t.max_connections);
          ("queue_depth", J.Int t.queue_depth);
          ("max_queue_depth", J.Int t.max_queue_depth);
          ( "tenant_rate",
            if t.tenant_rate > 0.0 then J.Float t.tenant_rate else J.Null );
          ("tenant_burst", J.Float t.tenant_burst);
          ("tenants", J.Int (Hashtbl.length t.tenants));
        ])
