(* Prune-query cache persistence: solver persist hooks over the
   content-addressed result store (see prune_store.mli). *)

let fingerprint solver =
  Digest.to_hex (Digest.string ("prune:" ^ Smtlite.Solver.goals_key solver))

let attach ~cache solver =
  let fp = fingerprint solver in
  Smtlite.Solver.attach_persist solver
    {
      Smtlite.Solver.p_load = (fun () -> Cache.find ~cls:`Prune cache fp);
      p_store = (fun env -> Cache.store ~cls:`Prune cache fp env);
      p_corrupt =
        (fun reason ->
          Cache.quarantine cache fp ~reason:("prune-cache: " ^ reason));
    }
