(* The optimization service daemon.

   A Unix-domain-socket server speaking the length-prefixed JSON
   protocol of {!Proto}. Each accepted connection carries one request:

     {"op":"optimize", "benchmark":"rmsnorm"}        — or "graph": <json>
     {"op":"status"} | {"op":"stats"} | {"op":"shutdown"}

   An optimize request is resolved to a specification graph, its
   {!Fingerprint} is computed, and then:

   - cache hit  → the stored result is returned verbatim (after its
     graph is re-decoded; a semantically corrupt entry is quarantined
     and the request falls through to a fresh search);
   - cache miss → the request joins the single-flight table. The first
     requester of a fingerprint runs the §4 search (under a PR 3 budget,
     on a bounded pool of search slots — each search itself fans out
     over [num_workers] domains); every concurrent identical request
     blocks on the same flight and receives the same result. Exactly
     one search runs per distinct in-flight fingerprint, however many
     clients ask.

   Request lifecycle is journaled through the global {!Obs.Journal}
   (request.recv / cache.hit / cache.miss / search.start / search.done /
   request.done), so "how many searches did N identical concurrent
   requests cost?" is answerable from the flight record — the
   concurrency stress test asserts exactly one search.start. *)

module J = Obs.Jsonw

(* --- a tiny counting semaphore (the search slot pool) ---------------- *)

module Sem = struct
  type t = { m : Mutex.t; c : Condition.t; mutable avail : int }

  let create n = { m = Mutex.create (); c = Condition.create (); avail = n }

  let acquire s =
    Mutex.lock s.m;
    while s.avail <= 0 do
      Condition.wait s.c s.m
    done;
    s.avail <- s.avail - 1;
    Mutex.unlock s.m

  let release s =
    Mutex.lock s.m;
    s.avail <- s.avail + 1;
    Condition.signal s.c;
    Mutex.unlock s.m
end

(* --- single-flight table --------------------------------------------- *)

type outcome = Done of J.t | Failed of string

type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  leader_rid : string;  (* the request id whose search everyone shares *)
  mutable result : outcome option;  (* None while the search runs *)
  fprogress : Search.Progress.t;
      (* live search state, sampled lock-free by every streamer of this
         flight (the leader's and each coalesced follower's) *)
  fbudget : Search.Budget.t option Atomic.t;
      (* the search's budget, published by [run_search] once the search
         actually starts (after the slot wait), so streamed
         budget-remaining reflects search time, not queue time *)
}

type t = {
  socket_path : string;
  cache : Cache.t;
  device : Gpusim.Device.t;
  base_config : Search.Config.t;
  verify_trials : int;
  search_slots : Sem.t;
  lock : Mutex.t;  (* guards flights, handlers, counters *)
  flights : (string, flight) Hashtbl.t;
  mutable handlers : Thread.t list;
  mutable listener : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
  stop_flag : bool Atomic.t;
  started_at : float;
  c_requests : Obs.Metrics.counter;
  c_searches : Obs.Metrics.counter;
  c_coalesced : Obs.Metrics.counter;
  c_errors : Obs.Metrics.counter;
  telemetry : Telemetry.t;
  slowlog : Slowlog.t option;
  mutable in_flight : int;
}

let payload_schema = "mirage.service.payload.v1"

let create ?(mem_capacity = 64) ?(registry = Obs.Metrics.default ())
    ?(device = Gpusim.Device.a100) ?(base_config = Search.Config.default)
    ?(verify_trials = 2) ?(max_concurrent_searches = 2) ?slow_threshold_s
    ?slow_dir ?slow_max_reports ~socket_path ~cache_dir () =
  let c name help = Obs.Metrics.counter registry ~help name in
  {
    socket_path;
    cache = Cache.create ~mem_capacity ~registry ~dir:cache_dir ();
    device;
    base_config;
    verify_trials;
    search_slots = Sem.create (max 1 max_concurrent_searches);
    lock = Mutex.create ();
    flights = Hashtbl.create 16;
    handlers = [];
    listener = None;
    accept_thread = None;
    stop_flag = Atomic.make false;
    started_at = Unix.gettimeofday ();
    c_requests = c "service.requests" "requests received";
    c_searches = c "service.searches" "searches actually run";
    c_coalesced =
      c "service.coalesced" "requests served by another request's search";
    c_errors = c "service.errors" "requests answered with an error";
    telemetry = Telemetry.create ~registry ();
    slowlog =
      (match slow_threshold_s with
      | None -> None
      | Some threshold_s ->
          let dir =
            match slow_dir with Some d -> d | None -> cache_dir ^ "-slow"
          in
          Some
            (Slowlog.create ~registry ?max_reports:slow_max_reports ~dir
               ~threshold_s ()));
    in_flight = 0;
  }

let telemetry t = t.telemetry
let slowlog t = t.slowlog

let cache t = t.cache

(* --- request parsing -------------------------------------------------- *)

let str_field k j =
  match J.member k j with Some (J.Str s) -> Some s | _ -> None

let int_field k j =
  match J.member k j with Some (J.Int i) -> Some i | _ -> None

let float_field k j =
  match J.member k j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* The per-request search config: the server's base config with the
   request's optional overrides applied, then specialized to the spec by
   [Config.for_spec] (operator menus from the goal expressions, grids
   and loops from the input dimensions) — the same derivation
   [mirage_cli optimize] uses, so a service answer and a direct run are
   comparable bit for bit. *)
let request_config t req spec =
  let base = t.base_config in
  let base =
    match int_field "max_block_ops" req with
    | Some n -> { base with Search.Config.max_block_ops = n }
    | None -> base
  in
  let base =
    match int_field "workers" req with
    | Some n -> { base with Search.Config.num_workers = n }
    | None -> base
  in
  let base =
    match float_field "budget_s" req with
    | Some s -> { base with Search.Config.time_budget_s = s }
    | None -> base
  in
  Search.Config.for_spec ~base spec

let resolve_spec req =
  match (str_field "benchmark" req, J.member "graph" req) with
  | Some name, _ -> (
      match Workloads.Bench_defs.by_name name with
      | Some b ->
          let spec, _ = b.Workloads.Bench_defs.reduced () in
          Ok (Some name, spec)
      | None -> Error (Printf.sprintf "unknown benchmark %S" name))
  | None, Some gj -> (
      match Search.Checkpoint.graph_of_json gj with
      | Ok g -> Ok (None, g)
      | Error m -> Error (Printf.sprintf "bad graph: %s" m))
  | None, None -> Error "optimize needs a \"benchmark\" or a \"graph\" field"

let resolve_device t req =
  match str_field "device" req with
  | None -> Ok t.device
  | Some name -> (
      match Gpusim.Device.by_name name with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "unknown device %S" name))

(* --- the search ------------------------------------------------------- *)

let result_payload ~benchmark ~(device : Gpusim.Device.t) ~spec
    (o : Search.Generator.outcome) ~wall_s =
  let best =
    match o.Search.Generator.best with
    | Some b -> b
    | None ->
        (* unreachable: the spec itself always participates *)
        {
          Search.Generator.graph = spec;
          cost = Gpusim.Cost.cost device spec;
        }
  in
  let spec_us = (Gpusim.Cost.cost device spec).Gpusim.Cost.total_us in
  let best_us = best.Search.Generator.cost.Gpusim.Cost.total_us in
  J.Obj
    [
      ("schema", J.Str payload_schema);
      ( "benchmark",
        match benchmark with Some n -> J.Str n | None -> J.Null );
      ("device", J.Str device.Gpusim.Device.name);
      ( "best",
        J.Obj
          [
            ( "graph",
              Search.Checkpoint.graph_to_json best.Search.Generator.graph );
            ("cost", Gpusim.Cost.to_json best.Search.Generator.cost);
          ] );
      ("spec_us", J.Float spec_us);
      ("optimized_us", J.Float best_us);
      ("speedup", J.Float (if best_us > 0.0 then spec_us /. best_us else 1.0));
      ("generated", J.Int o.Search.Generator.generated);
      ("verified", J.Int (List.length o.Search.Generator.verified));
      ("budget_exhausted", J.Bool o.Search.Generator.budget_exhausted);
      ( "degraded",
        J.List (List.map (fun s -> J.Str s) o.Search.Generator.degraded) );
      ("search_wall_s", J.Float wall_s);
    ]

(* A cached payload is only served if its best graph still decodes and
   validates; a payload that lies about its graph is quarantined and the
   request re-searches. *)
let payload_valid payload =
  match
    Option.bind (J.member "best" payload) (fun b -> J.member "graph" b)
  with
  | None -> Error "payload has no best.graph"
  | Some gj -> (
      match Search.Checkpoint.graph_of_json gj with
      | Ok _ -> Ok ()
      | Error m -> Error (Printf.sprintf "best.graph does not decode: %s" m))

let run_search t ~config ~device ~benchmark ~spec ~fp ~flight =
  Obs.Metrics.bump t.c_searches;
  Obs.Journal.event "search.start"
    [
      ("fingerprint", J.Str fp);
      ( "benchmark",
        match benchmark with Some n -> J.Str n | None -> J.Null );
    ];
  let budget = Search.Budget.of_config config in
  Atomic.set flight.fbudget (Some budget);
  let t0 = Unix.gettimeofday () in
  let o =
    Search.Generator.run ~config
      ~registry:(Telemetry.registry t.telemetry)
      ~verify_trials:t.verify_trials ~budget ~progress:flight.fprogress
      ~device ~spec ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let payload = result_payload ~benchmark ~device ~spec o ~wall_s in
  Obs.Journal.event "search.done"
    [
      ("fingerprint", J.Str fp);
      ("wall_s", J.Float wall_s);
      ("generated", J.Int o.Search.Generator.generated);
      ( "optimized_us",
        match J.member "optimized_us" payload with
        | Some v -> v
        | None -> J.Null );
    ];
  payload

(* --- single flight ---------------------------------------------------- *)

(* The chaos hook for the slow-request forensics path: when armed
   ([MIRAGE_FAULT=serve.slow:...]), an optimize request stalls for
   [MIRAGE_FAULT_SLOW_MS] (default 250) instead of raising — the
   injected latency crosses the slow threshold and exercises the
   capture machinery end to end. *)
let slow_probe () =
  try Obs.Fault.trip "serve.slow"
  with Obs.Fault.Injected _ ->
    let ms =
      match Sys.getenv_opt "MIRAGE_FAULT_SLOW_MS" with
      | Some s -> ( try float_of_string s with _ -> 250.0)
      | None -> 250.0
    in
    Unix.sleepf (ms /. 1e3)

(* Progress streaming: while [f] (the search, or the coalesced wait on
   it) runs, a dedicated thread samples the flight's live progress cell
   every [interval_s] and hands rid-tagged frames to [push]. The first
   frame is emitted before the stop flag is ever consulted, so an
   opted-in request sees at least one frame even when the search
   finishes instantly. The thread is joined before this function
   returns: frame writes and the final response write are strictly
   sequential on the connection, never interleaved. *)
let stream_progress ~rid ~interval_s ~push flight f =
  match push with
  | None -> f ()
  | Some push ->
      let stop = Atomic.make false in
      let t0 = Unix.gettimeofday () in
      let seq = ref 0 in
      let emit () =
        let v = Search.Progress.view flight.fprogress in
        let budget_remaining_s =
          match Atomic.get flight.fbudget with
          | Some b ->
              let dl = Search.Budget.deadline b in
              if dl > 0.0 then Some (Float.max 0.0 (dl -. Unix.gettimeofday ()))
              else None
          | None -> None
        in
        let frame =
          Proto.progress_frame ~rid ~seq:!seq
            ~phase:v.Search.Progress.v_phase
            ~nodes_expanded:v.Search.Progress.v_nodes_expanded
            ~candidates:v.Search.Progress.v_candidates
            ~verified:v.Search.Progress.v_verified
            ?best_cost_us:v.Search.Progress.v_best_us ?budget_remaining_s
            ~elapsed_s:(Unix.gettimeofday () -. t0) ()
        in
        incr seq;
        (* a vanished client only stops the stream; the search is shared
           with other requests and runs on *)
        try push frame with _ -> Atomic.set stop true
      in
      let streamer () =
        emit ();
        while not (Atomic.get stop) do
          (* nap in short slices so the final join is prompt *)
          let slept = ref 0.0 in
          while (not (Atomic.get stop)) && !slept < interval_s do
            Unix.sleepf 0.02;
            slept := !slept +. 0.02
          done;
          if not (Atomic.get stop) then emit ()
        done
      in
      let th = Thread.create streamer () in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Thread.join th)
        f

(* Returns (fingerprint, payload, cached, coalesced, served_by): the
   sample accumulates stage timings (cache probe, queue wait, search)
   and [served_by] is the leader's request id when this request was
   coalesced onto another's search. [push], when present, streams
   rid-tagged progress frames to this request's connection while its
   search (own or joined) is in flight; cache hits stream nothing. *)
let optimize t ~rid ~(sample : Telemetry.sample) ?push ?(interval_s = 0.1) req
    =
  match resolve_spec req with
  | Error m -> Error m
  | Ok (benchmark, spec) -> (
      match resolve_device t req with
      | Error m -> Error m
      | Ok device -> (
          slow_probe ();
          let config = request_config t req spec in
          let fp = Fingerprint.make ~device ~config spec in
          let serve_cached payload =
            match payload_valid payload with
            | Ok () ->
                Obs.Journal.event "cache.hit" [ ("fingerprint", J.Str fp) ];
                Some payload
            | Error reason ->
                Cache.quarantine t.cache fp ~reason;
                None
          in
          let probe =
            Telemetry.time_stage sample "cache_probe" (fun () ->
                Option.bind (Cache.find t.cache fp) serve_cached)
          in
          match probe with
          | Some payload ->
              Telemetry.set_outcome sample "hit";
              Ok (fp, payload, true, false, None)
          | None -> (
              Obs.Journal.event "cache.miss" [ ("fingerprint", J.Str fp) ];
              (* join or create the flight for this fingerprint *)
              Mutex.lock t.lock;
              let flight, creator =
                match Hashtbl.find_opt t.flights fp with
                | Some fl -> (fl, false)
                | None ->
                    let fl =
                      {
                        fm = Mutex.create ();
                        fc = Condition.create ();
                        leader_rid = rid;
                        result = None;
                        fprogress = Search.Progress.create ();
                        fbudget = Atomic.make None;
                      }
                    in
                    Hashtbl.replace t.flights fp fl;
                    (fl, true)
              in
              Mutex.unlock t.lock;
              if creator then begin
                Telemetry.set_outcome sample "miss";
                let outcome =
                  stream_progress ~rid ~interval_s ~push flight (fun () ->
                      Telemetry.time_stage sample "queue_wait" (fun () ->
                          Sem.acquire t.search_slots);
                      Fun.protect
                        ~finally:(fun () -> Sem.release t.search_slots)
                        (fun () ->
                          match
                            Telemetry.time_stage sample "search" (fun () ->
                                run_search t ~config ~device ~benchmark ~spec
                                  ~fp ~flight)
                          with
                          | payload ->
                              Cache.store t.cache fp payload;
                              Done payload
                          | exception e ->
                              Obs.Metrics.bump t.c_errors;
                              Failed (Printexc.to_string e)))
                in
                (* publish, then retire the flight: later requests for
                   the same fingerprint hit the cache instead *)
                Mutex.lock flight.fm;
                flight.result <- Some outcome;
                Condition.broadcast flight.fc;
                Mutex.unlock flight.fm;
                Mutex.lock t.lock;
                Hashtbl.remove t.flights fp;
                Mutex.unlock t.lock;
                match outcome with
                | Done payload -> Ok (fp, payload, false, false, None)
                | Failed m -> Error (Printf.sprintf "search failed: %s" m)
              end
              else begin
                Telemetry.set_outcome sample "coalesced";
                Obs.Metrics.bump t.c_coalesced;
                Obs.Journal.event "request.coalesced"
                  [
                    ("fingerprint", J.Str fp);
                    ("leader_rid", J.Str flight.leader_rid);
                  ];
                let outcome =
                  stream_progress ~rid ~interval_s ~push flight (fun () ->
                      Mutex.lock flight.fm;
                      while flight.result = None do
                        Condition.wait flight.fc flight.fm
                      done;
                      let outcome = Option.get flight.result in
                      Mutex.unlock flight.fm;
                      outcome)
                in
                match outcome with
                | Done payload ->
                    Ok (fp, payload, false, true, Some flight.leader_rid)
                | Failed m -> Error (Printf.sprintf "search failed: %s" m)
              end)))

(* --- dispatch ---------------------------------------------------------- *)

let error_response msg =
  J.Obj [ ("status", J.Str "error"); ("message", J.Str msg) ]

let current_in_flight t =
  Mutex.lock t.lock;
  let n = t.in_flight in
  Mutex.unlock t.lock;
  n

let hit_rate_json t =
  let snap = Obs.Metrics.snapshot (Telemetry.registry t.telemetry) in
  let hits, misses, rate = Telemetry.cache_rates snap in
  ((hits, misses), J.Float rate)

let status_json t =
  let (hits, misses), hit_rate = hit_rate_json t in
  J.Obj
    ([
       ("status", J.Str "ok");
       ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
       ("requests", J.Int (Obs.Metrics.value t.c_requests));
       ("searches", J.Int (Obs.Metrics.value t.c_searches));
       ("coalesced", J.Int (Obs.Metrics.value t.c_coalesced));
       ("errors", J.Int (Obs.Metrics.value t.c_errors));
       ("in_flight", J.Int (current_in_flight t));
       ( "cache",
         J.Obj
           [
             ("mem_entries", J.Int (Cache.mem_entries t.cache));
             ("disk_entries", J.Int (Cache.disk_entries t.cache));
             ("hits", J.Int hits);
             ("misses", J.Int misses);
             ("hit_rate", hit_rate);
             ("dir", J.Str (Cache.dir t.cache));
           ] );
       ("device", J.Str t.device.Gpusim.Device.name);
       ("socket", J.Str t.socket_path);
     ]
    @
    match t.slowlog with
    | None -> []
    | Some sl ->
        [
          ( "slow",
            J.Obj
              [
                ("threshold_ms", J.Float (Slowlog.threshold_s sl *. 1e3));
                ("captured", J.Int (Slowlog.captured sl));
                ("skipped", J.Int (Slowlog.skipped sl));
                ("dir", J.Str (Slowlog.dir sl));
              ] );
        ])

let stats_json () =
  J.Obj
    [
      ("status", J.Str "ok");
      ( "metrics",
        Obs.Metrics.to_json (Obs.Metrics.snapshot (Obs.Metrics.default ())) );
    ]

(* The "metrics" op: the schema'd exposition snapshot ({!Telemetry}),
   or the Prometheus text format when the request asks for it. *)
let metrics_json t req =
  match str_field "format" req with
  | Some "prometheus" ->
      J.Obj
        [
          ("status", J.Str "ok");
          ("content_type", J.Str "text/plain; version=0.0.4");
          ("text", J.Str (Telemetry.prometheus t.telemetry));
        ]
  | _ ->
      let slow_extra =
        match t.slowlog with
        | None -> []
        | Some sl ->
            [
              ( "slow",
                J.Obj
                  [
                    ("threshold_ms", J.Float (Slowlog.threshold_s sl *. 1e3));
                    ("captured", J.Int (Slowlog.captured sl));
                    ("skipped", J.Int (Slowlog.skipped sl));
                  ] );
            ]
      in
      let extra =
        [
          ("status", J.Str "ok");
          ( "cache_entries",
            J.Obj
              [
                ("mem", J.Int (Cache.mem_entries t.cache));
                ("disk", J.Int (Cache.disk_entries t.cache));
              ] );
        ]
        @ slow_extra
      in
      Telemetry.snapshot_json ~extra t.telemetry
        ~in_flight:(current_in_flight t) ()

(* Closing a listening socket does not wake a thread blocked in
   accept(2) on it, so stopping takes two steps: shutdown(2) the
   listener (returns EINVAL to the blocked accept on Linux) and, as a
   portable fallback, poke it with a throwaway connection. The accept
   loop owns the close. *)
let shutdown_now t =
  Atomic.set t.stop_flag true;
  Mutex.lock t.lock;
  let listener = t.listener in
  t.listener <- None;
  Mutex.unlock t.lock;
  match listener with
  | None -> ()
  | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
      (try
         let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Fun.protect
           ~finally:(fun () -> try Unix.close c with _ -> ())
           (fun () ->
             try Unix.connect c (Unix.ADDR_UNIX t.socket_path) with _ -> ())
       with _ -> ())

(* Dispatch one (rid-carrying) request, accumulating stage timings and
   the outcome into [sample]. Every journal event emitted below this
   point — including from search worker domains, which inherit the
   context — carries the rid, and the response echoes it. *)
let dispatch t ~rid ~(sample : Telemetry.sample) ?push req =
  Obs.Metrics.bump t.c_requests;
  let op = Telemetry.sample_op sample in
  Obs.Journal.event "request.recv" [ ("op", J.Str op) ];
  let t0 = Unix.gettimeofday () in
  let resp =
    match op with
    | "optimize" -> (
        (* progress streaming is strictly opt-in: without
           ["progress": true] the connection carries exactly one frame,
           byte-identical to the pre-progress protocol *)
        let push =
          match J.member "progress" req with
          | Some (J.Bool true) -> push
          | _ -> None
        in
        let interval_s =
          match float_field "progress_interval_ms" req with
          | Some ms when ms > 0.0 -> ms /. 1e3
          | _ -> 0.1
        in
        match optimize t ~rid ~sample ?push ~interval_s req with
        | Ok (fp, payload, cached, coalesced, served_by) ->
            (match J.member "degraded" payload with
            | Some (J.List (_ :: _)) -> Telemetry.set_degraded sample
            | _ -> ());
            J.Obj
              ([
                 ("status", J.Str "ok");
                 ("fingerprint", J.Str fp);
                 ("cached", J.Bool cached);
                 ("coalesced", J.Bool coalesced);
               ]
              @ (match served_by with
                | Some leader -> [ ("served_by", J.Str leader) ]
                | None -> [])
              @ [ ("result", payload) ])
        | Error m ->
            Telemetry.set_outcome sample "error";
            Obs.Metrics.bump t.c_errors;
            error_response m
        | exception e ->
            Telemetry.set_outcome sample "error";
            Obs.Metrics.bump t.c_errors;
            error_response (Printexc.to_string e))
    | "status" -> status_json t
    | "stats" -> stats_json ()
    | "metrics" -> metrics_json t req
    | "shutdown" ->
        shutdown_now t;
        J.Obj [ ("status", J.Str "ok"); ("stopping", J.Bool true) ]
    | other ->
        Telemetry.set_outcome sample "error";
        Obs.Metrics.bump t.c_errors;
        error_response (Printf.sprintf "unknown op %S" other)
  in
  let resp =
    match resp with
    | J.Obj fields when not (List.mem_assoc Reqid.field fields) ->
        J.Obj (fields @ [ (Reqid.field, J.Str rid) ])
    | r -> r
  in
  Obs.Journal.event "request.done"
    [
      ("op", J.Str op);
      ( "status",
        match J.member "status" resp with Some s -> s | None -> J.Null );
      ("wall_s", J.Float (Unix.gettimeofday () -. t0));
    ];
  resp

let begin_sample req =
  let req, rid = Reqid.ensure req in
  let op = match str_field "op" req with Some s -> s | None -> "" in
  (req, rid, Telemetry.start ~rid ~op)

let settle t sample resp =
  Telemetry.finish t.telemetry sample;
  match t.slowlog with
  | Some sl -> Slowlog.maybe_capture sl sample ~response:resp
  | None -> ()

let handle_request ?push t req =
  let req, rid, sample = begin_sample req in
  Obs.Journal.with_context
    [ ("rid", J.Str rid) ]
    (fun () ->
      let resp = dispatch t ~rid ~sample ?push req in
      settle t sample resp;
      resp)

(* --- connection handling ----------------------------------------------- *)

let handle_conn t fd =
  Mutex.lock t.lock;
  t.in_flight <- t.in_flight + 1;
  Mutex.unlock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.lock;
      try Unix.close fd with _ -> ())
    (fun () ->
      match Proto.read_frame fd with
      | req ->
          let req, rid, sample = begin_sample req in
          Obs.Journal.with_context
            [ ("rid", J.Str rid) ]
            (fun () ->
              let push frame = Proto.write_frame fd frame in
              let resp =
                match dispatch t ~rid ~sample ~push req with
                | r -> r
                | exception e ->
                    Telemetry.set_outcome sample "error";
                    Obs.Metrics.bump t.c_errors;
                    error_response (Printexc.to_string e)
              in
              (* the serialize stage is the frame write: the one cost a
                 cached answer still pays *)
              (try
                 Telemetry.time_stage sample "serialize" (fun () ->
                     Proto.write_frame fd resp)
               with _ -> () (* client went away; its loss *));
              settle t sample resp)
      | exception End_of_file -> ()
      | exception Proto.Protocol_error m -> (
          try Proto.write_frame fd (error_response m) with _ -> ())
      | exception Unix.Unix_error _ -> ())

let accept_loop t listener =
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get t.stop_flag then continue_ := false
    else
      match Unix.accept listener with
      | fd, _ ->
          if Atomic.get t.stop_flag then (try Unix.close fd with _ -> ())
          else begin
            let th = Thread.create (fun () -> handle_conn t fd) () in
            Mutex.lock t.lock;
            t.handlers <- th :: t.handlers;
            Mutex.unlock t.lock
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception _ ->
          (* listener shut down (stop) or fatal: stop accepting *)
          continue_ := false
  done;
  try Unix.close listener with _ -> ()

let start t =
  if Sys.file_exists t.socket_path then Sys.remove t.socket_path;
  let dir = Filename.dirname t.socket_path in
  if dir <> "" && not (Sys.file_exists dir) then
    (try Unix.mkdir dir 0o755 with _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX t.socket_path);
  Unix.listen listener 64;
  Mutex.lock t.lock;
  t.listener <- Some listener;
  Mutex.unlock t.lock;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t listener) ());
  Obs.Log.info (fun m ->
      m "service: listening on %s (cache %s, device %s)" t.socket_path
        (Cache.dir t.cache) t.device.Gpusim.Device.name)

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  let self = Thread.id (Thread.self ()) in
  let rec drain () =
    Mutex.lock t.lock;
    let hs = t.handlers in
    t.handlers <- [];
    Mutex.unlock t.lock;
    match hs with
    | [] -> ()
    | _ ->
        List.iter
          (fun th -> if Thread.id th <> self then Thread.join th)
          hs;
        drain ()
  in
  drain ();
  if Sys.file_exists t.socket_path then (
    try Sys.remove t.socket_path with _ -> ())

let stop t = shutdown_now t

let run t =
  start t;
  wait t

let stopping t = Atomic.get t.stop_flag
