(* The optimization service daemon.

   A Unix-domain-socket server speaking the length-prefixed JSON
   protocol of {!Proto}. Each accepted connection carries one request:

     {"op":"optimize", "benchmark":"rmsnorm"}        — or "graph": <json>
     {"op":"status"} | {"op":"stats"} | {"op":"shutdown"}

   An optimize request is resolved to a specification graph, its
   {!Fingerprint} is computed, and then:

   - cache hit  → the stored result is returned verbatim (after its
     graph is re-decoded; a semantically corrupt entry is quarantined
     and the request falls through to a fresh search);
   - cache miss → the request joins the single-flight table. The first
     requester of a fingerprint runs the §4 search (under a PR 3 budget,
     on a bounded pool of search slots — each search itself fans out
     over [num_workers] domains); every concurrent identical request
     blocks on the same flight and receives the same result. Exactly
     one search runs per distinct in-flight fingerprint, however many
     clients ask.

   The daemon is armored against overload and hostile peers
   ({!Admit}, {!Proto}):

   - connections beyond the live-connection bound and searches beyond
     the queue-depth bound are answered with a typed "overloaded"
     carrying retry_after_s, never a hang or a raw disconnect;
   - requests carrying a ["tenant"] draw from that tenant's token
     bucket and get a typed "quota_exceeded" when it runs dry;
   - every frame read/write is deadline-guarded: a slowloris client
     (partial frame, then silence) is disconnected after the frame
     timeout and its handler thread reclaimed — handler threads are
     reaped as their connections close, not accumulated until wait;
   - a client-supplied ["deadline_ms"] caps the whole request: queue
     wait, the search budget, and a coalesced follower's wait are all
     bounded by it, and an expired deadline answers a typed "timeout";
   - a shutdown request may carry ["drain_s"]: stop accepting, let
     in-flight searches finish for that long, then cancel their
     budgets so they wind down with best-so-far results.

   Request lifecycle is journaled through the global {!Obs.Journal}
   (request.recv / cache.hit / cache.miss / search.start / search.done /
   request.done, plus admit.reject and conn.timeout for shed load), so
   "how many searches did N identical concurrent requests cost?" is
   answerable from the flight record — the concurrency stress test
   asserts exactly one search.start. *)

module J = Obs.Jsonw

(* --- a tiny counting semaphore (the search slot pool) ---------------- *)

module Sem = struct
  type t = { m : Mutex.t; c : Condition.t; mutable avail : int }

  let create n = { m = Mutex.create (); c = Condition.create (); avail = n }

  let acquire s =
    Mutex.lock s.m;
    while s.avail <= 0 do
      Condition.wait s.c s.m
    done;
    s.avail <- s.avail - 1;
    Mutex.unlock s.m

  (* Deadline-bounded acquire: true when a slot was taken, false when
     [deadline] (absolute; 0. = none) passed first. OCaml's Condition
     has no timed wait, so the bounded path polls in short slices — the
     queue-wait granularity (5 ms) is noise next to search times. *)
  let acquire_until s ~deadline =
    if deadline <= 0.0 then begin
      acquire s;
      true
    end
    else
      let rec go () =
        (* an already-expired deadline never takes a slot: the caller
           owes its client a typed timeout, not a search *)
        if Unix.gettimeofday () >= deadline then false
        else begin
          Mutex.lock s.m;
          if s.avail > 0 then begin
            s.avail <- s.avail - 1;
            Mutex.unlock s.m;
            true
          end
          else begin
            Mutex.unlock s.m;
            Thread.delay 0.005;
            go ()
          end
        end
      in
      go ()

  let release s =
    Mutex.lock s.m;
    s.avail <- s.avail + 1;
    Condition.signal s.c;
    Mutex.unlock s.m
end

(* --- typed request rejections ----------------------------------------- *)

(* Every failure a request can be answered with is typed: the response
   carries ["error"] (the kind a client switches on) and, for loadshed
   kinds, ["retry_after_s"] (when it is worth coming back). *)
type reject = {
  r_kind : string;
  r_retry_after_s : float option;
  r_msg : string;
}

let bad_request msg = { r_kind = "bad_request"; r_retry_after_s = None; r_msg = msg }
let internal msg = { r_kind = "internal"; r_retry_after_s = None; r_msg = msg }
let timeout_reject msg = { r_kind = "timeout"; r_retry_after_s = None; r_msg = msg }

let of_admit (r : Admit.rejection) =
  {
    r_kind = r.Admit.kind;
    r_retry_after_s = Some r.Admit.retry_after_s;
    r_msg = r.Admit.detail;
  }

let error_json r =
  J.Obj
    ([
       ("status", J.Str "error");
       ("error", J.Str r.r_kind);
       ("message", J.Str r.r_msg);
     ]
    @
    match r.r_retry_after_s with
    | Some s -> [ ("retry_after_s", J.Float s) ]
    | None -> [])

(* --- single-flight table --------------------------------------------- *)

type outcome = Done of J.t | Failed of reject

type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  leader_rid : string;  (* the request id whose search everyone shares *)
  mutable result : outcome option;  (* None while the search runs *)
  fprogress : Search.Progress.t;
      (* live search state, sampled lock-free by every streamer of this
         flight (the leader's and each coalesced follower's) *)
  fbudget : Search.Budget.t option Atomic.t;
      (* the search's budget, published by [run_search] once the search
         actually starts (after the slot wait), so streamed
         budget-remaining reflects search time, not queue time — and so
         a draining shutdown can cancel it *)
}

type t = {
  socket_path : string;
  cache : Cache.t;
  device : Gpusim.Device.t;
  base_config : Search.Config.t;
  verify_trials : int;
  search_slots : Sem.t;
  admit : Admit.t;
  frame_timeout_s : float;  (* 0 = unlimited *)
  idle_timeout_s : float;  (* 0 = unlimited *)
  lock : Mutex.t;  (* guards flights, handlers, counters *)
  flights : (string, flight) Hashtbl.t;
  handlers : (int, Thread.t) Hashtbl.t;
  mutable next_handler : int;
  mutable listener : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
  mutable drainer : Thread.t option;
  stop_flag : bool Atomic.t;
  started_at : float;
  c_requests : Obs.Metrics.counter;
  c_searches : Obs.Metrics.counter;
  c_coalesced : Obs.Metrics.counter;
  c_errors : Obs.Metrics.counter;
  c_wire_timeout : Obs.Metrics.counter;
  c_wire_torn : Obs.Metrics.counter;
  telemetry : Telemetry.t;
  slowlog : Slowlog.t option;
  mutable in_flight : int;
}

let payload_schema = "mirage.service.payload.v1"

let create ?(mem_capacity = 64) ?(registry = Obs.Metrics.default ())
    ?(device = Gpusim.Device.a100) ?(base_config = Search.Config.default)
    ?(verify_trials = 2) ?(max_concurrent_searches = 2)
    ?(max_connections = 64) ?(max_queue_depth = 64) ?(tenant_rate = 0.0)
    ?(tenant_burst = 10.0) ?(retry_after_s = 0.5) ?(frame_timeout_s = 10.0)
    ?(idle_timeout_s = 30.0) ?(cache_max_bytes = 0) ?slow_threshold_s
    ?slow_dir ?slow_max_reports ~socket_path ~cache_dir () =
  let c name help = Obs.Metrics.counter registry ~help name in
  {
    socket_path;
    cache =
      Cache.create ~mem_capacity ~registry ~max_disk_bytes:cache_max_bytes
        ~dir:cache_dir ();
    device;
    base_config;
    verify_trials;
    search_slots = Sem.create (max 1 max_concurrent_searches);
    admit =
      Admit.create ~registry ~max_connections ~max_queue_depth ~tenant_rate
        ~tenant_burst ~retry_after_s ();
    frame_timeout_s;
    idle_timeout_s;
    lock = Mutex.create ();
    flights = Hashtbl.create 16;
    handlers = Hashtbl.create 64;
    next_handler = 0;
    listener = None;
    accept_thread = None;
    drainer = None;
    stop_flag = Atomic.make false;
    started_at = Unix.gettimeofday ();
    c_requests = c "service.requests" "requests received";
    c_searches = c "service.searches" "searches actually run";
    c_coalesced =
      c "service.coalesced" "requests served by another request's search";
    c_errors = c "service.errors" "requests answered with an error";
    c_wire_timeout =
      c "service.wire.timeout"
        "connections dropped by a frame or idle deadline";
    c_wire_torn = c "service.wire.torn" "connections that died mid-frame";
    telemetry = Telemetry.create ~registry ();
    slowlog =
      (match slow_threshold_s with
      | None -> None
      | Some threshold_s ->
          let dir =
            match slow_dir with Some d -> d | None -> cache_dir ^ "-slow"
          in
          Some
            (Slowlog.create ~registry ?max_reports:slow_max_reports ~dir
               ~threshold_s ()));
    in_flight = 0;
  }

let telemetry t = t.telemetry
let slowlog t = t.slowlog
let admit t = t.admit

let cache t = t.cache

(* frame timeouts as Proto optional arguments: 0 disables *)
let frame_tmo t = if t.frame_timeout_s > 0.0 then Some t.frame_timeout_s else None
let idle_tmo t = if t.idle_timeout_s > 0.0 then Some t.idle_timeout_s else None

(* --- request parsing -------------------------------------------------- *)

let str_field k j =
  match J.member k j with Some (J.Str s) -> Some s | _ -> None

let int_field k j =
  match J.member k j with Some (J.Int i) -> Some i | _ -> None

let float_field k j =
  match J.member k j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* The per-request search config: the server's base config with the
   request's optional overrides applied, then specialized to the spec by
   [Config.for_spec] (operator menus from the goal expressions, grids
   and loops from the input dimensions) — the same derivation
   [mirage_cli optimize] uses, so a service answer and a direct run are
   comparable bit for bit. *)
let request_config t req spec =
  let base = t.base_config in
  let base =
    match int_field "max_block_ops" req with
    | Some n -> { base with Search.Config.max_block_ops = n }
    | None -> base
  in
  let base =
    match int_field "workers" req with
    | Some n -> { base with Search.Config.num_workers = n }
    | None -> base
  in
  let base =
    match float_field "budget_s" req with
    | Some s -> { base with Search.Config.time_budget_s = s }
    | None -> base
  in
  Search.Config.for_spec ~base spec

(* An end-to-end deadline caps the search's wall budget: the flight must
   answer by [deadline], so the search may use at most what remains.
   time_budget_s is fingerprint-irrelevant (Config.result_irrelevant_keys),
   so the cap never forks the cache key. *)
let cap_config_to_deadline config ~deadline =
  if deadline <= 0.0 then config
  else
    let remaining = Float.max 0.01 (deadline -. Unix.gettimeofday ()) in
    let budget = config.Search.Config.time_budget_s in
    {
      config with
      Search.Config.time_budget_s =
        (if budget <= 0.0 then remaining else Float.min budget remaining);
    }

let resolve_spec req =
  match (str_field "benchmark" req, J.member "graph" req) with
  | Some name, _ -> (
      match Workloads.Bench_defs.by_name name with
      | Some b ->
          let spec, _ = b.Workloads.Bench_defs.reduced () in
          Ok (Some name, spec)
      | None -> Error (Printf.sprintf "unknown benchmark %S" name))
  | None, Some gj -> (
      match Search.Checkpoint.graph_of_json gj with
      | Ok g -> Ok (None, g)
      | Error m -> Error (Printf.sprintf "bad graph: %s" m))
  | None, None -> Error "optimize needs a \"benchmark\" or a \"graph\" field"

let resolve_device t req =
  match str_field "device" req with
  | None -> Ok t.device
  | Some name -> (
      match Gpusim.Device.by_name name with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "unknown device %S" name))

(* --- the search ------------------------------------------------------- *)

let result_payload ~benchmark ~(device : Gpusim.Device.t) ~spec
    (o : Search.Generator.outcome) ~wall_s =
  let best =
    match o.Search.Generator.best with
    | Some b -> b
    | None ->
        (* unreachable: the spec itself always participates *)
        {
          Search.Generator.graph = spec;
          cost = Gpusim.Cost.cost device spec;
        }
  in
  let spec_us = (Gpusim.Cost.cost device spec).Gpusim.Cost.total_us in
  let best_us = best.Search.Generator.cost.Gpusim.Cost.total_us in
  J.Obj
    [
      ("schema", J.Str payload_schema);
      ( "benchmark",
        match benchmark with Some n -> J.Str n | None -> J.Null );
      ("device", J.Str device.Gpusim.Device.name);
      ( "best",
        J.Obj
          [
            ( "graph",
              Search.Checkpoint.graph_to_json best.Search.Generator.graph );
            ("cost", Gpusim.Cost.to_json best.Search.Generator.cost);
          ] );
      ("spec_us", J.Float spec_us);
      ("optimized_us", J.Float best_us);
      ("speedup", J.Float (if best_us > 0.0 then spec_us /. best_us else 1.0));
      ("generated", J.Int o.Search.Generator.generated);
      ("verified", J.Int (List.length o.Search.Generator.verified));
      ("budget_exhausted", J.Bool o.Search.Generator.budget_exhausted);
      ( "degraded",
        J.List (List.map (fun s -> J.Str s) o.Search.Generator.degraded) );
      ("search_wall_s", J.Float wall_s);
    ]

(* A cached payload is only served if its best graph still decodes and
   validates; a payload that lies about its graph is quarantined and the
   request re-searches. *)
let payload_valid payload =
  match
    Option.bind (J.member "best" payload) (fun b -> J.member "graph" b)
  with
  | None -> Error "payload has no best.graph"
  | Some gj -> (
      match Search.Checkpoint.graph_of_json gj with
      | Ok _ -> Ok ()
      | Error m -> Error (Printf.sprintf "best.graph does not decode: %s" m))

let run_search t ~config ~device ~benchmark ~spec ~fp ~flight =
  Obs.Metrics.bump t.c_searches;
  Obs.Journal.event "search.start"
    [
      ("fingerprint", J.Str fp);
      ( "benchmark",
        match benchmark with Some n -> J.Str n | None -> J.Null );
    ];
  let budget = Search.Budget.of_config config in
  Atomic.set flight.fbudget (Some budget);
  let t0 = Unix.gettimeofday () in
  let o =
    Search.Generator.run ~config
      ~registry:(Telemetry.registry t.telemetry)
      ~verify_trials:t.verify_trials ~budget ~progress:flight.fprogress
      ~prune_persist:(Prune_store.attach ~cache:t.cache)
      ~device ~spec ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let payload = result_payload ~benchmark ~device ~spec o ~wall_s in
  Obs.Journal.event "search.done"
    [
      ("fingerprint", J.Str fp);
      ("wall_s", J.Float wall_s);
      ("generated", J.Int o.Search.Generator.generated);
      ( "optimized_us",
        match J.member "optimized_us" payload with
        | Some v -> v
        | None -> J.Null );
    ];
  payload

(* --- single flight ---------------------------------------------------- *)

(* The chaos hook for the slow-request forensics path: when armed
   ([MIRAGE_FAULT=serve.slow:...]), an optimize request stalls for
   [MIRAGE_FAULT_SLOW_MS] (default 250) instead of raising — the
   injected latency crosses the slow threshold and exercises the
   capture machinery end to end. *)
let slow_probe () =
  try Obs.Fault.trip "serve.slow"
  with Obs.Fault.Injected _ ->
    let ms =
      match Sys.getenv_opt "MIRAGE_FAULT_SLOW_MS" with
      | Some s -> ( try float_of_string s with _ -> 250.0)
      | None -> 250.0
    in
    Unix.sleepf (ms /. 1e3)

(* Progress streaming: while [f] (the search, or the coalesced wait on
   it) runs, a dedicated thread samples the flight's live progress cell
   every [interval_s] and hands rid-tagged frames to [push]. The first
   frame is emitted before the stop flag is ever consulted, so an
   opted-in request sees at least one frame even when the search
   finishes instantly. The thread is joined before this function
   returns: frame writes and the final response write are strictly
   sequential on the connection, never interleaved. *)
let stream_progress ~rid ~interval_s ~push flight f =
  match push with
  | None -> f ()
  | Some push ->
      let stop = Atomic.make false in
      let t0 = Unix.gettimeofday () in
      let seq = ref 0 in
      let emit () =
        let v = Search.Progress.view flight.fprogress in
        let budget_remaining_s =
          match Atomic.get flight.fbudget with
          | Some b ->
              let dl = Search.Budget.deadline b in
              if dl > 0.0 then Some (Float.max 0.0 (dl -. Unix.gettimeofday ()))
              else None
          | None -> None
        in
        let frame =
          Proto.progress_frame ~rid ~seq:!seq
            ~phase:v.Search.Progress.v_phase
            ~nodes_expanded:v.Search.Progress.v_nodes_expanded
            ~candidates:v.Search.Progress.v_candidates
            ~verified:v.Search.Progress.v_verified
            ~tasks_stolen:v.Search.Progress.v_tasks_stolen
            ?best_cost_us:v.Search.Progress.v_best_us ?budget_remaining_s
            ~elapsed_s:(Unix.gettimeofday () -. t0) ()
        in
        incr seq;
        (* a vanished client only stops the stream; the search is shared
           with other requests and runs on *)
        try push frame with _ -> Atomic.set stop true
      in
      let streamer () =
        emit ();
        while not (Atomic.get stop) do
          (* nap in short slices so the final join is prompt *)
          let slept = ref 0.0 in
          while (not (Atomic.get stop)) && !slept < interval_s do
            Unix.sleepf 0.02;
            slept := !slept +. 0.02
          done;
          if not (Atomic.get stop) then emit ()
        done
      in
      let th = Thread.create streamer () in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Thread.join th)
        f

(* Publish a flight's outcome and retire it from the table: later
   requests for the same fingerprint hit the cache (or start afresh)
   instead. *)
let settle_flight t fp flight outcome =
  Mutex.lock flight.fm;
  flight.result <- Some outcome;
  Condition.broadcast flight.fc;
  Mutex.unlock flight.fm;
  Mutex.lock t.lock;
  Hashtbl.remove t.flights fp;
  Mutex.unlock t.lock

(* Returns (fingerprint, payload, cached, coalesced, served_by): the
   sample accumulates stage timings (cache probe, queue wait, search)
   and [served_by] is the leader's request id when this request was
   coalesced onto another's search. [push], when present, streams
   rid-tagged progress frames to this request's connection while its
   search (own or joined) is in flight; cache hits stream nothing.
   [deadline] (absolute epoch seconds; 0. = none) bounds the queue
   wait, the search budget, and a follower's wait. *)
let optimize t ~rid ~(sample : Telemetry.sample) ?push ?(interval_s = 0.1)
    ?(deadline = 0.0) req =
  match resolve_spec req with
  | Error m -> Error (bad_request m)
  | Ok (benchmark, spec) -> (
      match resolve_device t req with
      | Error m -> Error (bad_request m)
      | Ok device -> (
          slow_probe ();
          let config = request_config t req spec in
          let fp = Fingerprint.make ~device ~config spec in
          let serve_cached payload =
            match payload_valid payload with
            | Ok () ->
                Obs.Journal.event "cache.hit" [ ("fingerprint", J.Str fp) ];
                Some payload
            | Error reason ->
                Cache.quarantine t.cache fp ~reason;
                None
          in
          let probe =
            Telemetry.time_stage sample "cache_probe" (fun () ->
                Option.bind (Cache.find t.cache fp) serve_cached)
          in
          match probe with
          | Some payload ->
              Telemetry.set_outcome sample "hit";
              Ok (fp, payload, true, false, None)
          | None -> (
              Obs.Journal.event "cache.miss" [ ("fingerprint", J.Str fp) ];
              (* join or create the flight for this fingerprint *)
              Mutex.lock t.lock;
              let flight, creator =
                match Hashtbl.find_opt t.flights fp with
                | Some fl -> (fl, false)
                | None ->
                    let fl =
                      {
                        fm = Mutex.create ();
                        fc = Condition.create ();
                        leader_rid = rid;
                        result = None;
                        fprogress = Search.Progress.create ();
                        fbudget = Atomic.make None;
                      }
                    in
                    Hashtbl.replace t.flights fp fl;
                    (fl, true)
              in
              Mutex.unlock t.lock;
              if creator then begin
                (* the leader admits its search into the bounded slot
                   queue; followers ride the leader's slot and are
                   never counted against the queue depth *)
                match Admit.try_queue t.admit with
                | Admit.Rejected r ->
                    let rej = of_admit r in
                    settle_flight t fp flight (Failed rej);
                    Error rej
                | Admit.Admitted ->
                    let outcome =
                      stream_progress ~rid ~interval_s ~push flight (fun () ->
                          let got_slot =
                            Telemetry.time_stage sample "queue_wait" (fun () ->
                                Fun.protect
                                  ~finally:(fun () -> Admit.queue_done t.admit)
                                  (fun () ->
                                    Sem.acquire_until t.search_slots ~deadline))
                          in
                          if not got_slot then
                            Failed
                              (timeout_reject
                                 "deadline expired while queued for a search \
                                  slot")
                          else
                            Fun.protect
                              ~finally:(fun () -> Sem.release t.search_slots)
                              (fun () ->
                                let config =
                                  cap_config_to_deadline config ~deadline
                                in
                                match
                                  Telemetry.time_stage sample "search"
                                    (fun () ->
                                      run_search t ~config ~device ~benchmark
                                        ~spec ~fp ~flight)
                                with
                                | payload ->
                                    Cache.store t.cache fp payload;
                                    Done payload
                                | exception e ->
                                    Failed
                                      (internal
                                         (Printf.sprintf "search failed: %s"
                                            (Printexc.to_string e)))))
                    in
                    settle_flight t fp flight outcome;
                    (match outcome with
                    | Done payload ->
                        Telemetry.set_outcome sample "miss";
                        Ok (fp, payload, false, false, None)
                    | Failed r -> Error r)
              end
              else begin
                Obs.Metrics.bump t.c_coalesced;
                Obs.Journal.event "request.coalesced"
                  [
                    ("fingerprint", J.Str fp);
                    ("leader_rid", J.Str flight.leader_rid);
                  ];
                let outcome =
                  stream_progress ~rid ~interval_s ~push flight (fun () ->
                      if deadline <= 0.0 then begin
                        Mutex.lock flight.fm;
                        while flight.result = None do
                          Condition.wait flight.fc flight.fm
                        done;
                        let outcome = Option.get flight.result in
                        Mutex.unlock flight.fm;
                        Some outcome
                      end
                      else
                        (* a deadline-carrying follower must not block
                           past it, however long the leader runs *)
                        let rec poll () =
                          Mutex.lock flight.fm;
                          let r = flight.result in
                          Mutex.unlock flight.fm;
                          match r with
                          | Some o -> Some o
                          | None ->
                              if Unix.gettimeofday () >= deadline then None
                              else begin
                                Thread.delay 0.005;
                                poll ()
                              end
                        in
                        poll ())
                in
                match outcome with
                | Some (Done payload) ->
                    Telemetry.set_outcome sample "coalesced";
                    Ok (fp, payload, false, true, Some flight.leader_rid)
                | Some (Failed r) -> Error r
                | None ->
                    Error
                      (timeout_reject
                         "deadline expired waiting for the in-flight search")
              end)))

(* --- dispatch ---------------------------------------------------------- *)

let current_in_flight t =
  Mutex.lock t.lock;
  let n = t.in_flight in
  Mutex.unlock t.lock;
  n

let handler_count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.handlers in
  Mutex.unlock t.lock;
  n

let flight_count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.flights in
  Mutex.unlock t.lock;
  n

let hit_rate_json t =
  let snap = Obs.Metrics.snapshot (Telemetry.registry t.telemetry) in
  let hits, misses, rate = Telemetry.cache_rates snap in
  ((hits, misses), J.Float rate)

let status_json t =
  let (hits, misses), hit_rate = hit_rate_json t in
  J.Obj
    ([
       ("status", J.Str "ok");
       ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
       ("stopping", J.Bool (Atomic.get t.stop_flag));
       ("requests", J.Int (Obs.Metrics.value t.c_requests));
       ("searches", J.Int (Obs.Metrics.value t.c_searches));
       ("coalesced", J.Int (Obs.Metrics.value t.c_coalesced));
       ("errors", J.Int (Obs.Metrics.value t.c_errors));
       ("in_flight", J.Int (current_in_flight t));
       ("admit", Admit.status_json t.admit);
       ( "cache",
         J.Obj
           [
             ("mem_entries", J.Int (Cache.mem_entries t.cache));
             ("disk_entries", J.Int (Cache.disk_entries t.cache));
             ("disk_bytes", J.Int (Cache.disk_bytes t.cache));
             ("mem_only", J.Bool (Cache.mem_only t.cache));
             ("hits", J.Int hits);
             ("misses", J.Int misses);
             ("hit_rate", hit_rate);
             ("dir", J.Str (Cache.dir t.cache));
           ] );
       ("device", J.Str t.device.Gpusim.Device.name);
       ("socket", J.Str t.socket_path);
     ]
    @
    match t.slowlog with
    | None -> []
    | Some sl ->
        [
          ( "slow",
            J.Obj
              [
                ("threshold_ms", J.Float (Slowlog.threshold_s sl *. 1e3));
                ("captured", J.Int (Slowlog.captured sl));
                ("skipped", J.Int (Slowlog.skipped sl));
                ("dir", J.Str (Slowlog.dir sl));
              ] );
        ])

(* The daemon's own registry, not the process-wide default: a server
   created with a custom registry must report its own metrics. *)
let stats_json t =
  J.Obj
    [
      ("status", J.Str "ok");
      ( "metrics",
        Obs.Metrics.to_json
          (Obs.Metrics.snapshot (Telemetry.registry t.telemetry)) );
    ]

(* The "metrics" op: the schema'd exposition snapshot ({!Telemetry}),
   or the Prometheus text format when the request asks for it. *)
let metrics_json t req =
  match str_field "format" req with
  | Some "prometheus" ->
      J.Obj
        [
          ("status", J.Str "ok");
          ("content_type", J.Str "text/plain; version=0.0.4");
          ("text", J.Str (Telemetry.prometheus t.telemetry));
        ]
  | _ ->
      let slow_extra =
        match t.slowlog with
        | None -> []
        | Some sl ->
            [
              ( "slow",
                J.Obj
                  [
                    ("threshold_ms", J.Float (Slowlog.threshold_s sl *. 1e3));
                    ("captured", J.Int (Slowlog.captured sl));
                    ("skipped", J.Int (Slowlog.skipped sl));
                  ] );
            ]
      in
      let extra =
        [
          ("status", J.Str "ok");
          ("admit", Admit.status_json t.admit);
          ( "cache_entries",
            J.Obj
              [
                ("mem", J.Int (Cache.mem_entries t.cache));
                ("disk", J.Int (Cache.disk_entries t.cache));
                ("disk_bytes", J.Int (Cache.disk_bytes t.cache));
                ("mem_only", J.Bool (Cache.mem_only t.cache));
              ] );
        ]
        @ slow_extra
      in
      Telemetry.snapshot_json ~extra t.telemetry
        ~in_flight:(current_in_flight t) ()

(* Closing a listening socket does not wake a thread blocked in
   accept(2) on it, so stopping takes two steps: shutdown(2) the
   listener (returns EINVAL to the blocked accept on Linux) and, as a
   portable fallback, poke it with a throwaway connection. The accept
   loop owns the close. *)
let shutdown_now t =
  Atomic.set t.stop_flag true;
  Mutex.lock t.lock;
  let listener = t.listener in
  t.listener <- None;
  Mutex.unlock t.lock;
  match listener with
  | None -> ()
  | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
      (try
         let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Fun.protect
           ~finally:(fun () -> try Unix.close c with _ -> ())
           (fun () ->
             try Unix.connect c (Unix.ADDR_UNIX t.socket_path) with _ -> ())
       with _ -> ())

(* Graceful drain: stop accepting immediately; give in-flight searches
   [drain_s] seconds to land their results, then cancel the budgets of
   whatever is still running so those flights wind down with
   best-so-far answers instead of blocking shutdown forever. *)
let shutdown ?drain_s t =
  shutdown_now t;
  match drain_s with
  | None -> ()
  | Some s ->
      let th =
        Thread.create
          (fun () ->
            let deadline = Unix.gettimeofday () +. Float.max 0.0 s in
            while flight_count t > 0 && Unix.gettimeofday () < deadline do
              Thread.delay 0.02
            done;
            Mutex.lock t.lock;
            let stragglers =
              Hashtbl.fold (fun fp fl acc -> (fp, fl) :: acc) t.flights []
            in
            Mutex.unlock t.lock;
            List.iter
              (fun (fp, fl) ->
                match Atomic.get fl.fbudget with
                | Some b ->
                    Obs.Journal.event "shutdown.cancel"
                      [ ("fingerprint", J.Str fp) ];
                    Search.Budget.cancel b
                | None -> ())
              stragglers)
          ()
      in
      Mutex.lock t.lock;
      t.drainer <- Some th;
      Mutex.unlock t.lock

(* Dispatch one (rid-carrying) request, accumulating stage timings and
   the outcome into [sample]. Every journal event emitted below this
   point — including from search worker domains, which inherit the
   context — carries the rid, and the response echoes it. *)
let dispatch t ~rid ~(sample : Telemetry.sample) ?push req =
  Obs.Metrics.bump t.c_requests;
  let op = Telemetry.sample_op sample in
  Obs.Journal.event "request.recv" [ ("op", J.Str op) ];
  let t0 = Unix.gettimeofday () in
  let reject_resp r =
    let outcome =
      match r.r_kind with
      | ("timeout" | "overloaded" | "quota_exceeded") as k -> k
      | _ -> "error"
    in
    Telemetry.set_outcome sample outcome;
    Obs.Metrics.bump t.c_errors;
    error_json r
  in
  let resp =
    match op with
    | "optimize" -> (
        (* progress streaming is strictly opt-in: without
           ["progress": true] the connection carries exactly one frame,
           byte-identical to the pre-progress protocol *)
        let push =
          match J.member "progress" req with
          | Some (J.Bool true) -> push
          | _ -> None
        in
        let interval_s =
          match float_field "progress_interval_ms" req with
          | Some ms when ms > 0.0 -> ms /. 1e3
          | _ -> 0.1
        in
        let deadline =
          match float_field "deadline_ms" req with
          | Some ms when ms > 0.0 -> t0 +. (ms /. 1e3)
          | _ -> 0.0
        in
        match Admit.check_tenant t.admit (str_field "tenant" req) with
        | Admit.Rejected r -> reject_resp (of_admit r)
        | Admit.Admitted -> (
            match
              optimize t ~rid ~sample ?push ~interval_s ~deadline req
            with
            | Ok (fp, payload, cached, coalesced, served_by) ->
                (match J.member "degraded" payload with
                | Some (J.List (_ :: _)) -> Telemetry.set_degraded sample
                | _ -> ());
                J.Obj
                  ([
                     ("status", J.Str "ok");
                     ("fingerprint", J.Str fp);
                     ("cached", J.Bool cached);
                     ("coalesced", J.Bool coalesced);
                   ]
                  @ (match served_by with
                    | Some leader -> [ ("served_by", J.Str leader) ]
                    | None -> [])
                  @ [ ("result", payload) ])
            | Error r -> reject_resp r
            | exception e -> reject_resp (internal (Printexc.to_string e))))
    | "status" -> status_json t
    | "stats" -> stats_json t
    | "metrics" -> metrics_json t req
    | "shutdown" ->
        let drain_s = float_field "drain_s" req in
        shutdown ?drain_s t;
        J.Obj
          ([ ("status", J.Str "ok"); ("stopping", J.Bool true) ]
          @
          match drain_s with
          | Some s -> [ ("drain_s", J.Float s) ]
          | None -> [])
    | other -> reject_resp (bad_request (Printf.sprintf "unknown op %S" other))
  in
  let resp =
    match resp with
    | J.Obj fields when not (List.mem_assoc Reqid.field fields) ->
        J.Obj (fields @ [ (Reqid.field, J.Str rid) ])
    | r -> r
  in
  Obs.Journal.event "request.done"
    [
      ("op", J.Str op);
      ( "status",
        match J.member "status" resp with Some s -> s | None -> J.Null );
      ("wall_s", J.Float (Unix.gettimeofday () -. t0));
    ];
  resp

let begin_sample req =
  let req, rid = Reqid.ensure req in
  let op = match str_field "op" req with Some s -> s | None -> "" in
  (req, rid, Telemetry.start ~rid ~op)

let settle t sample resp =
  Telemetry.finish t.telemetry sample;
  match t.slowlog with
  | Some sl -> Slowlog.maybe_capture sl sample ~response:resp
  | None -> ()

let handle_request ?push t req =
  let req, rid, sample = begin_sample req in
  Obs.Journal.with_context
    [ ("rid", J.Str rid) ]
    (fun () ->
      let resp = dispatch t ~rid ~sample ?push req in
      settle t sample resp;
      resp)

(* --- connection handling ----------------------------------------------- *)

let handle_conn t fd =
  Mutex.lock t.lock;
  t.in_flight <- t.in_flight + 1;
  Mutex.unlock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.lock;
      try Unix.close fd with _ -> ())
    (fun () ->
      match Admit.try_conn t.admit with
      | Admit.Rejected r ->
          (* shed at the door: a typed overloaded answer, without
             reading a byte — the cheapest possible rejection *)
          (try Proto.write_frame ?timeout_s:(frame_tmo t) fd (error_json (of_admit r))
           with _ -> ())
      | Admit.Admitted -> (
          Fun.protect ~finally:(fun () -> Admit.conn_done t.admit) @@ fun () ->
          match
            Proto.read_frame ?idle_timeout_s:(idle_tmo t)
              ?timeout_s:(frame_tmo t) fd
          with
          | req ->
              let req, rid, sample = begin_sample req in
              Obs.Journal.with_context
                [ ("rid", J.Str rid) ]
                (fun () ->
                  let push frame =
                    Proto.write_frame ?timeout_s:(frame_tmo t) fd frame
                  in
                  let resp =
                    match dispatch t ~rid ~sample ~push req with
                    | r -> r
                    | exception e ->
                        Telemetry.set_outcome sample "error";
                        Obs.Metrics.bump t.c_errors;
                        error_json (internal (Printexc.to_string e))
                  in
                  (* the serialize stage is the frame write: the one cost a
                     cached answer still pays *)
                  (try
                     Telemetry.time_stage sample "serialize" (fun () ->
                         Proto.write_frame ?timeout_s:(frame_tmo t) fd resp)
                   with _ -> () (* client went away; its loss *));
                  settle t sample resp)
          | exception End_of_file -> () (* clean close, no frame *)
          | exception Proto.Timed_out what ->
              (* slowloris or stalled peer: typed timeout (best effort),
                 then the connection — and this thread — are reclaimed *)
              Obs.Metrics.bump t.c_wire_timeout;
              Obs.Journal.event "conn.timeout" [ ("what", J.Str what) ];
              (try
                 Proto.write_frame ~timeout_s:1.0 fd
                   (error_json (timeout_reject (what ^ " deadline expired")))
               with _ -> ())
          | exception Proto.Protocol_error m ->
              Obs.Metrics.bump t.c_wire_torn;
              Obs.Journal.event "conn.torn" [ ("reason", J.Str m) ];
              (try
                 Proto.write_frame ~timeout_s:1.0 fd
                   (error_json
                      {
                        r_kind = "bad_frame";
                        r_retry_after_s = None;
                        r_msg = m;
                      })
               with _ -> ())
          | exception Unix.Unix_error _ -> ()))

let accept_loop t listener =
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get t.stop_flag then continue_ := false
    else
      match Unix.accept listener with
      | fd, _ ->
          if Atomic.get t.stop_flag then (try Unix.close fd with _ -> ())
          else begin
            (* register under the lock, and make the handler's first
               action a lock acquire: it cannot deregister before the
               registration it pairs with has happened *)
            Mutex.lock t.lock;
            let key = t.next_handler in
            t.next_handler <- t.next_handler + 1;
            let th =
              Thread.create
                (fun () ->
                  Mutex.lock t.lock;
                  Mutex.unlock t.lock;
                  Fun.protect
                    ~finally:(fun () ->
                      (* reap: a finished handler removes itself, so
                         t.handlers tracks live connections only *)
                      Mutex.lock t.lock;
                      Hashtbl.remove t.handlers key;
                      Mutex.unlock t.lock)
                    (fun () -> handle_conn t fd))
                ()
            in
            Hashtbl.replace t.handlers key th;
            Mutex.unlock t.lock
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception _ ->
          (* listener shut down (stop) or fatal: stop accepting *)
          continue_ := false
  done;
  try Unix.close listener with _ -> ()

(* A socket file can be a live daemon or a stale leftover. Probe it:
   only a socket nobody answers is removed; a live daemon's socket is
   refused with a clear error instead of hijacked. *)
let socket_live path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception _ -> false
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
            ->
              false
          | exception _ -> false))

let start t =
  if Sys.file_exists t.socket_path then begin
    if socket_live t.socket_path then
      failwith
        (Printf.sprintf
           "socket %s: a live daemon is already listening (shut it down \
            first, or pick another --socket)"
           t.socket_path);
    Obs.Log.info (fun m ->
        m "service: removing stale socket %s (no daemon answered)"
          t.socket_path);
    Sys.remove t.socket_path
  end;
  let dir = Filename.dirname t.socket_path in
  if dir <> "" && not (Sys.file_exists dir) then
    (try Unix.mkdir dir 0o755 with _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX t.socket_path);
  Unix.listen listener 64;
  Mutex.lock t.lock;
  t.listener <- Some listener;
  Mutex.unlock t.lock;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t listener) ());
  Obs.Log.info (fun m ->
      m "service: listening on %s (cache %s, device %s)" t.socket_path
        (Cache.dir t.cache) t.device.Gpusim.Device.name)

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  let self = Thread.id (Thread.self ()) in
  let rec drain () =
    Mutex.lock t.lock;
    let hs = Hashtbl.fold (fun _ th acc -> th :: acc) t.handlers [] in
    Mutex.unlock t.lock;
    match hs with
    | [] -> ()
    | _ ->
        List.iter
          (fun th ->
            if Thread.id th <> self then (try Thread.join th with _ -> ()))
          hs;
        drain ()
  in
  drain ();
  (Mutex.lock t.lock;
   let drainer = t.drainer in
   t.drainer <- None;
   Mutex.unlock t.lock;
   match drainer with
   | Some th -> ( try Thread.join th with _ -> ())
   | None -> ());
  if Sys.file_exists t.socket_path then (
    try Sys.remove t.socket_path with _ -> ())

let stop t = shutdown_now t

let run t =
  start t;
  wait t

let stopping t = Atomic.get t.stop_flag
