(** Glue between the solver's persistent prune-query cache and the
    content-addressed {!Cache} store. One envelope per goal set: the
    fingerprint is a digest of the solver's {!Smtlite.Solver.goals_key},
    so every search over the same specification — across restarts,
    pieces of a sharded run, or a whole fleet sharing the cache
    directory — reads and extends the same entry. Storage inherits the
    result store's guarantees: crash-safe temp+rename writes, schema
    checking, and quarantine of corrupt entries. *)

val fingerprint : Smtlite.Solver.t -> string
(** The content address of a solver's prune-cache envelope (exposed for
    tests and forensics). *)

val attach : cache:Cache.t -> Smtlite.Solver.t -> unit
(** Wire the solver's write-behind persistence to [cache]: load any
    stored envelope now, and store batched new decisions as the search
    runs (plus a final flush at search finalize). Call once per solver,
    before the search starts. *)
