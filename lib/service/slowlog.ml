(* Slow-request forensics. When an optimize request's total latency
   crosses the configured threshold, the server writes a self-contained
   report directory named by request id:

     DIR/<rid>/report.json     envelope: stages, outcome, threshold
     DIR/<rid>/journal.jsonl   the global journal sliced to this rid
     DIR/<rid>/trace.json      spans tagged rid=<rid> (when tracing)

   Capture is best-effort and bounded: it never throws into the request
   path (a forensics failure must not fail the request) and stops after
   [max_reports] directories so a misconfigured threshold cannot fill
   the disk. The journal slice works because every event emitted while
   a request's context is installed carries its rid — including events
   from search worker domains, which inherit the context at spawn. *)

module J = Obs.Jsonw

let report_schema = "mirage.service.slow_report.v1"

type t = {
  dir : string;
  threshold_s : float;
  max_reports : int;
  captured : int Atomic.t;
  skipped : int Atomic.t;
  c_captured : Obs.Metrics.counter;
  lock : Mutex.t;  (* one capture writes at a time *)
}

let create ?(registry = Obs.Metrics.default ()) ?(max_reports = 32) ~dir
    ~threshold_s () =
  {
    dir;
    threshold_s;
    max_reports = max 1 max_reports;
    captured = Atomic.make 0;
    skipped = Atomic.make 0;
    c_captured =
      Obs.Metrics.counter registry ~help:"slow-request reports written"
        "serve.slow_reports";
    lock = Mutex.create ();
  }

let dir t = t.dir
let threshold_s t = t.threshold_s
let captured t = Atomic.get t.captured
let skipped t = Atomic.get t.skipped

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The journal events belonging to one request, in file order. *)
let journal_slice ~path ~rid =
  Result.map
    (List.filter (fun e -> Obs.Journal.rid_of e = rid))
    (Obs.Journal.read_file path)

let span_args_rid args = List.assoc_opt "rid" args

let trace_slice ~rid =
  match Obs.Trace.active () with
  | None -> None
  | Some tr ->
      let spans =
        List.filter
          (fun (s : Obs.Trace.rec_span) ->
            span_args_rid s.Obs.Trace.args = Some rid)
          (Obs.Trace.spans tr)
      in
      if spans = [] then None
      else
        Some
          (J.List
             (List.map
                (fun (s : Obs.Trace.rec_span) ->
                  J.Obj
                    [
                      ("name", J.Str s.Obs.Trace.name);
                      ("cat", J.Str s.Obs.Trace.cat);
                      ("ph", J.Str "X");
                      ("ts", J.Float s.Obs.Trace.ts_us);
                      ("dur", J.Float s.Obs.Trace.dur_us);
                      ("pid", J.Int 0);
                      ("tid", J.Int s.Obs.Trace.tid);
                      ( "args",
                        J.Obj
                          (List.map
                             (fun (k, v) -> (k, J.Str v))
                             s.Obs.Trace.args) );
                    ])
                spans))

let envelope t ~rid ~op ~outcome ~degraded ~total_s ~stages ~response_status
    ~journal_events ~artifacts =
  J.Obj
    [
      ("schema", J.Str report_schema);
      ("request_id", J.Str rid);
      ("op", J.Str op);
      ("outcome", J.Str (if outcome = "" then "unknown" else outcome));
      ("degraded", J.Bool degraded);
      ("threshold_ms", J.Float (t.threshold_s *. 1e3));
      ("total_ms", J.Float (total_s *. 1e3));
      ( "stages_ms",
        J.Obj (List.map (fun (n, dt) -> (n, J.Float (dt *. 1e3))) stages) );
      ("response_status", J.Str response_status);
      ("journal_events", J.Int journal_events);
      ("artifacts", J.List (List.map (fun a -> J.Str a) artifacts));
    ]

(* Returns the report directory when a report was written. *)
let capture t ~rid ~op ~outcome ~degraded ~total_s ~stages ~response_status =
  if Atomic.get t.captured >= t.max_reports then begin
    Atomic.incr t.skipped;
    None
  end
  else
    try
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          if Atomic.get t.captured >= t.max_reports then begin
            Atomic.incr t.skipped;
            None
          end
          else begin
            let rdir = Filename.concat t.dir rid in
            mkdir_p rdir;
            (* slice the journal first so the envelope can count it *)
            let journal_events, jart =
              match Obs.Journal.active () with
              | None -> (0, [])
              | Some jr -> (
                  Obs.Journal.flush jr;
                  match journal_slice ~path:(Obs.Journal.path jr) ~rid with
                  | Ok events ->
                      let jpath = Filename.concat rdir "journal.jsonl" in
                      let oc = open_out jpath in
                      List.iter
                        (fun e ->
                          output_string oc (J.to_string e);
                          output_char oc '\n')
                        events;
                      close_out oc;
                      (List.length events, [ "journal.jsonl" ])
                  | Error _ -> (0, []))
            in
            let tart =
              match trace_slice ~rid with
              | None -> []
              | Some spans ->
                  J.to_file (Filename.concat rdir "trace.json") spans;
                  [ "trace.json" ]
            in
            let artifacts = ("report.json" :: jart) @ tart in
            J.to_file
              (Filename.concat rdir "report.json")
              (envelope t ~rid ~op ~outcome ~degraded ~total_s ~stages
                 ~response_status ~journal_events ~artifacts);
            Atomic.incr t.captured;
            Obs.Metrics.bump t.c_captured;
            Obs.Log.warn (fun m ->
                m "slow request %s: %.1f ms > %.1f ms threshold, report in %s"
                  rid (total_s *. 1e3)
                  (t.threshold_s *. 1e3)
                  rdir);
            Some rdir
          end)
    with _ ->
      (* forensics must never fail the request *)
      Atomic.incr t.skipped;
      None

let maybe_capture t (tele_sample : Telemetry.sample) ~response =
  let total_s = Telemetry.sample_total_s tele_sample in
  if
    Telemetry.sample_op tele_sample = "optimize"
    && total_s >= t.threshold_s
  then
    let response_status =
      match J.member "status" response with Some (J.Str s) -> s | _ -> "?"
    in
    ignore
      (capture t
         ~rid:(Telemetry.sample_rid tele_sample)
         ~op:(Telemetry.sample_op tele_sample)
         ~outcome:(Telemetry.sample_outcome tele_sample)
         ~degraded:(Telemetry.sample_degraded tele_sample)
         ~total_s
         ~stages:(Telemetry.sample_stages tele_sample)
         ~response_status)
