(** The service wire protocol: length-prefixed JSON frames (4-byte
    big-endian length, then compact JSON) over a stream socket. *)

exception Protocol_error of string

val max_frame_bytes : int

val write_frame : Unix.file_descr -> Obs.Jsonw.t -> unit
val read_frame : Unix.file_descr -> Obs.Jsonw.t
(** @raise Protocol_error on a malformed frame, [End_of_file] on a clean
    peer close. *)
