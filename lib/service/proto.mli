(** The service wire protocol: length-prefixed JSON frames (4-byte
    big-endian length, then compact JSON) over a stream socket. *)

exception Protocol_error of string

val max_frame_bytes : int

val write_frame : Unix.file_descr -> Obs.Jsonw.t -> unit
val read_frame : Unix.file_descr -> Obs.Jsonw.t
(** @raise Protocol_error on a malformed frame, [End_of_file] on a clean
    peer close. *)

(** {2 Progress event frames}

    Interleaved server→client frames streamed during an in-flight
    search, before the final response, to clients that opted in with
    ["progress": true]. Distinguished from responses by a ["type"]
    field (responses never carry one). Clients that did not opt in
    receive exactly one frame, byte-identical to the pre-progress
    protocol. *)

val progress_schema : string
(** ["mirage.service.progress.v1"] *)

val progress_frame :
  rid:string ->
  seq:int ->
  phase:string ->
  nodes_expanded:int ->
  candidates:int ->
  verified:int ->
  ?best_cost_us:float ->
  ?budget_remaining_s:float ->
  elapsed_s:float ->
  unit ->
  Obs.Jsonw.t
(** Build one progress frame. [seq] starts at 0 and increments per
    frame of a request; [nodes_expanded]/[candidates]/[verified] are
    monotone over a request's frames. Omitted [best_cost_us] /
    [budget_remaining_s] encode as JSON null. *)

val is_progress : Obs.Jsonw.t -> bool
(** [true] iff the frame is a progress event (has ["type":"progress"]). *)

val check_progress : Obs.Jsonw.t -> (unit, string) result
(** Validate a frame against {!progress_schema}: all required fields
    present with the right types, counters non-negative. *)
