(** The service wire protocol: length-prefixed JSON frames (4-byte
    big-endian length, then compact JSON) over a stream socket.

    All reads and writes can carry deadlines (select(2)-guarded), so a
    hostile peer — a slowloris that sends a partial frame and goes
    silent, a reader that never drains — costs the caller at most the
    configured timeout, never a wedged thread. A peer that closes
    mid-frame raises {!Protocol_error}, distinct from the clean
    [End_of_file] of a close between frames.

    Wire chaos probe points ({!Obs.Fault}): [wire.torn] (header plus
    half the payload), [wire.disconnect] (header only), and
    [wire.oversize] (a declared length above {!max_frame_bytes}) make
    {!write_frame} emit exactly the malformed stream a reader must
    survive, then raise {!Protocol_error} locally.

    Loading this module ignores SIGPIPE process-wide (POSIX only): a
    peer that disconnects mid-write must surface as an [EPIPE]
    exception the caller can handle, not kill the process. *)

exception Protocol_error of string

exception Timed_out of string
(** A read or write deadline expired mid-frame. *)

val max_frame_bytes : int

val write_frame : ?timeout_s:float -> Unix.file_descr -> Obs.Jsonw.t -> unit
(** [timeout_s] bounds the whole frame write — a peer that stops
    draining its socket raises {!Timed_out} instead of blocking the
    writer forever. *)

val read_frame :
  ?idle_timeout_s:float -> ?timeout_s:float -> Unix.file_descr -> Obs.Jsonw.t
(** [idle_timeout_s] bounds the wait for the frame's first byte (an
    idle connection); [timeout_s] bounds the whole frame once reading
    starts (slowloris).
    @raise Protocol_error on a malformed or torn frame,
    @raise Timed_out when a deadline expires,
    @raise End_of_file on a clean peer close between frames. *)

(** {2 Progress event frames}

    Interleaved server→client frames streamed during an in-flight
    search, before the final response, to clients that opted in with
    ["progress": true]. Distinguished from responses by a ["type"]
    field (responses never carry one). Clients that did not opt in
    receive exactly one frame, byte-identical to the pre-progress
    protocol. *)

val progress_schema : string
(** ["mirage.service.progress.v1"] *)

val progress_frame :
  rid:string ->
  seq:int ->
  phase:string ->
  nodes_expanded:int ->
  candidates:int ->
  verified:int ->
  ?tasks_stolen:int ->
  ?best_cost_us:float ->
  ?budget_remaining_s:float ->
  elapsed_s:float ->
  unit ->
  Obs.Jsonw.t
(** Build one progress frame. [seq] starts at 0 and increments per
    frame of a request; [nodes_expanded]/[candidates]/[verified] are
    monotone over a request's frames, and [tasks_stolen] (default 0)
    counts successful work steals in the enumeration pool so far.
    Omitted [best_cost_us] / [budget_remaining_s] encode as JSON
    null. *)

val is_progress : Obs.Jsonw.t -> bool
(** [true] iff the frame is a progress event (has ["type":"progress"]). *)

val check_progress : Obs.Jsonw.t -> (unit, string) result
(** Validate a frame against {!progress_schema}: all required fields
    present with the right types, counters non-negative. *)
