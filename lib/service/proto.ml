(* Length-prefixed JSON framing over a stream socket: 4-byte big-endian
   payload length, then that many bytes of compact JSON. Symmetric — the
   server and every client speak exactly this. *)

module J = Obs.Jsonw

exception Protocol_error of string

let max_frame_bytes = 1 lsl 26 (* 64 MiB — far above any muGraph payload *)

let really_write fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring fd s !off (n - !off) in
    if w <= 0 then raise (Protocol_error "short write");
    off := !off + w
  done

let really_read fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let r = Unix.read fd buf !off (n - !off) in
    if r = 0 then raise End_of_file;
    off := !off + r
  done;
  Bytes.unsafe_to_string buf

let write_frame fd json =
  let payload = J.to_string json in
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large: %d bytes" n));
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  really_write fd (Bytes.unsafe_to_string hdr);
  really_write fd payload

let read_frame fd =
  let hdr = really_read fd 4 in
  let b i = Char.code hdr.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n < 0 || n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let payload = really_read fd n in
  match J.of_string payload with
  | Ok j -> j
  | Error msg -> raise (Protocol_error (Printf.sprintf "bad JSON frame: %s" msg))
