(* Length-prefixed JSON framing over a stream socket: 4-byte big-endian
   payload length, then that many bytes of compact JSON. Symmetric — the
   server and every client speak exactly this. *)

module J = Obs.Jsonw

exception Protocol_error of string

let max_frame_bytes = 1 lsl 26 (* 64 MiB — far above any muGraph payload *)

let really_write fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring fd s !off (n - !off) in
    if w <= 0 then raise (Protocol_error "short write");
    off := !off + w
  done

let really_read fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let r = Unix.read fd buf !off (n - !off) in
    if r = 0 then raise End_of_file;
    off := !off + r
  done;
  Bytes.unsafe_to_string buf

let write_frame fd json =
  let payload = J.to_string json in
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large: %d bytes" n));
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  really_write fd (Bytes.unsafe_to_string hdr);
  really_write fd payload

(* --- progress event frames -------------------------------------------
   Interleaved server→client frames streamed during an in-flight search,
   before the final response. A client that did not opt in (no
   ["progress": true] in its request) never sees one — the response
   stream stays a single frame, byte-identical to the pre-progress
   protocol. Frames are distinguished from responses by ["type"]:
   responses never carry one. *)

let progress_schema = "mirage.service.progress.v1"

let progress_frame ~rid ~seq ~phase ~nodes_expanded ~candidates ~verified
    ?best_cost_us ?budget_remaining_s ~elapsed_s () =
  J.Obj
    [
      ("type", J.Str "progress");
      ("schema", J.Str progress_schema);
      ("request_id", J.Str rid);
      ("seq", J.Int seq);
      ("phase", J.Str phase);
      ("nodes_expanded", J.Int nodes_expanded);
      ("candidates", J.Int candidates);
      ("verified", J.Int verified);
      ( "best_cost_us",
        match best_cost_us with Some v -> J.Float v | None -> J.Null );
      ( "budget_remaining_s",
        match budget_remaining_s with Some v -> J.Float v | None -> J.Null );
      ("elapsed_s", J.Float elapsed_s);
    ]

let is_progress j =
  match J.member "type" j with Some (J.Str "progress") -> true | _ -> false

let check_progress j =
  let str k =
    match J.member k j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let int_nonneg k =
    match J.member k j with
    | Some (J.Int i) when i >= 0 -> Ok i
    | Some (J.Int _) -> Error (Printf.sprintf "negative %S" k)
    | _ -> Error (Printf.sprintf "missing int field %S" k)
  in
  let opt_float k =
    match J.member k j with
    | Some (J.Float _) | Some (J.Int _) | Some J.Null -> Ok ()
    | _ -> Error (Printf.sprintf "field %S must be a number or null" k)
  in
  let ( let* ) = Result.bind in
  let* ty = str "type" in
  let* () = if ty = "progress" then Ok () else Error "type is not progress" in
  let* schema = str "schema" in
  let* () =
    if schema = progress_schema then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* _rid = str "request_id" in
  let* _seq = int_nonneg "seq" in
  let* _phase = str "phase" in
  let* _ = int_nonneg "nodes_expanded" in
  let* _ = int_nonneg "candidates" in
  let* _ = int_nonneg "verified" in
  let* () = opt_float "best_cost_us" in
  let* () = opt_float "budget_remaining_s" in
  match J.member "elapsed_s" j with
  | Some (J.Float f) when f >= 0.0 -> Ok ()
  | Some (J.Int i) when i >= 0 -> Ok ()
  | _ -> Error "missing or negative \"elapsed_s\""

let read_frame fd =
  let hdr = really_read fd 4 in
  let b i = Char.code hdr.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n < 0 || n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let payload = really_read fd n in
  match J.of_string payload with
  | Ok j -> j
  | Error msg -> raise (Protocol_error (Printf.sprintf "bad JSON frame: %s" msg))
