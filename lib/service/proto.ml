(* Length-prefixed JSON framing over a stream socket: 4-byte big-endian
   payload length, then that many bytes of compact JSON. Symmetric — the
   server and every client speak exactly this.

   Hardened against hostile or broken peers:

   - every read/write can carry a deadline (select(2)-guarded, so a
     slowloris peer that sends a partial frame and goes silent costs the
     caller at most the configured timeout, never a wedged thread);
   - a peer that closes mid-frame raises {!Protocol_error} ("torn"),
     distinct from the clean [End_of_file] of a peer that closed between
     frames — callers can tell an aborted request from a finished one;
   - chaos probe points ([wire.torn], [wire.disconnect],
     [wire.oversize], {!Obs.Fault}) let a test or a MIRAGE_FAULT-armed
     client emit exactly the malformed byte streams the reader must
     survive. *)

module J = Obs.Jsonw

exception Protocol_error of string
exception Timed_out of string

let max_frame_bytes = 1 lsl 26 (* 64 MiB — far above any muGraph payload *)

(* A peer that disconnects while we write must surface as EPIPE (which
   callers handle), not as a process-killing SIGPIPE. Done once at
   module init: every user of this module is doing socket I/O. *)
let () =
  if not Sys.win32 then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* Block until [fd] is readable/writable or [deadline] (absolute epoch
   seconds) passes. EINTR retries; a deadline of 0. means no limit. *)
let wait_fd ~dir fd deadline what =
  if deadline > 0.0 then begin
    let rec go () =
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then raise (Timed_out what);
      let slice = Float.min left 0.5 in
      let ready =
        match
          if dir = `R then Unix.select [ fd ] [] [] slice
          else Unix.select [] [ fd ] [] slice
        with
        | [], [], _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if not ready then go ()
    in
    go ()
  end

(* With a deadline the fd goes non-blocking for the duration: a blocking
   write(2) of a large buffer to an undrained af_unix peer sends
   everything before returning, which would park the thread past any
   deadline no matter what select(2) said. *)
let really_write ?(deadline = 0.0) fd s =
  let n = String.length s in
  let off = ref 0 in
  let step () =
    match Unix.write_substring fd s !off (n - !off) with
    | w ->
        if w <= 0 then raise (Protocol_error "short write");
        off := !off + w
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  if deadline > 0.0 then begin
    Unix.set_nonblock fd;
    Fun.protect
      ~finally:(fun () -> try Unix.clear_nonblock fd with _ -> ())
      (fun () ->
        while !off < n do
          wait_fd ~dir:`W fd deadline "frame write";
          step ()
        done)
  end
  else
    while !off < n do
      step ()
    done

let really_read ?(deadline = 0.0) fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    wait_fd ~dir:`R fd deadline "frame read";
    let r = Unix.read fd buf !off (n - !off) in
    if r = 0 then
      if !off = 0 then raise End_of_file
      else
        raise
          (Protocol_error
             (Printf.sprintf "peer closed mid-frame (%d of %d bytes)" !off n));
    off := !off + r
  done;
  Bytes.unsafe_to_string buf

let header_bytes n =
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  Bytes.unsafe_to_string hdr

(* Wire chaos: an armed probe makes this writer emit exactly the
   malformed stream the reader must survive, then raises
   [Protocol_error] so the caller knows its frame never completed.
   [trip p] returns true iff the point fired. *)
let tripped p =
  match Obs.Fault.trip p with () -> false | exception Obs.Fault.Injected _ -> true

let deadline_of timeout_s =
  match timeout_s with
  | Some s when s > 0.0 -> Unix.gettimeofday () +. s
  | _ -> 0.0

let write_frame ?timeout_s fd json =
  let payload = J.to_string json in
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large: %d bytes" n));
  let deadline = deadline_of timeout_s in
  if tripped "wire.oversize" then begin
    (* declare an absurd length; the peer must reject it, not allocate *)
    really_write ~deadline fd (header_bytes (max_frame_bytes + 1));
    raise (Protocol_error "fault injected: oversized frame length")
  end;
  if tripped "wire.disconnect" then begin
    (* header, then nothing: a peer that dies between header and body *)
    really_write ~deadline fd (header_bytes n);
    raise (Protocol_error "fault injected: disconnect before payload")
  end;
  if tripped "wire.torn" then begin
    (* header plus half the payload: a mid-frame crash *)
    really_write ~deadline fd (header_bytes n);
    really_write ~deadline fd (String.sub payload 0 (n / 2));
    raise (Protocol_error "fault injected: torn frame")
  end;
  really_write ~deadline fd (header_bytes n);
  really_write ~deadline fd payload

(* --- progress event frames -------------------------------------------
   Interleaved server→client frames streamed during an in-flight search,
   before the final response. A client that did not opt in (no
   ["progress": true] in its request) never sees one — the response
   stream stays a single frame, byte-identical to the pre-progress
   protocol. Frames are distinguished from responses by ["type"]:
   responses never carry one. *)

let progress_schema = "mirage.service.progress.v1"

let progress_frame ~rid ~seq ~phase ~nodes_expanded ~candidates ~verified
    ?(tasks_stolen = 0) ?best_cost_us ?budget_remaining_s ~elapsed_s () =
  J.Obj
    [
      ("type", J.Str "progress");
      ("schema", J.Str progress_schema);
      ("request_id", J.Str rid);
      ("seq", J.Int seq);
      ("phase", J.Str phase);
      ("nodes_expanded", J.Int nodes_expanded);
      ("candidates", J.Int candidates);
      ("verified", J.Int verified);
      ("tasks_stolen", J.Int tasks_stolen);
      ( "best_cost_us",
        match best_cost_us with Some v -> J.Float v | None -> J.Null );
      ( "budget_remaining_s",
        match budget_remaining_s with Some v -> J.Float v | None -> J.Null );
      ("elapsed_s", J.Float elapsed_s);
    ]

let is_progress j =
  match J.member "type" j with Some (J.Str "progress") -> true | _ -> false

let check_progress j =
  let str k =
    match J.member k j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let int_nonneg k =
    match J.member k j with
    | Some (J.Int i) when i >= 0 -> Ok i
    | Some (J.Int _) -> Error (Printf.sprintf "negative %S" k)
    | _ -> Error (Printf.sprintf "missing int field %S" k)
  in
  let opt_float k =
    match J.member k j with
    | Some (J.Float _) | Some (J.Int _) | Some J.Null -> Ok ()
    | _ -> Error (Printf.sprintf "field %S must be a number or null" k)
  in
  let ( let* ) = Result.bind in
  let* ty = str "type" in
  let* () = if ty = "progress" then Ok () else Error "type is not progress" in
  let* schema = str "schema" in
  let* () =
    if schema = progress_schema then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* _rid = str "request_id" in
  let* _seq = int_nonneg "seq" in
  let* _phase = str "phase" in
  let* _ = int_nonneg "nodes_expanded" in
  let* _ = int_nonneg "candidates" in
  let* _ = int_nonneg "verified" in
  let* _ = int_nonneg "tasks_stolen" in
  let* () = opt_float "best_cost_us" in
  let* () = opt_float "budget_remaining_s" in
  match J.member "elapsed_s" j with
  | Some (J.Float f) when f >= 0.0 -> Ok ()
  | Some (J.Int i) when i >= 0 -> Ok ()
  | _ -> Error "missing or negative \"elapsed_s\""

(* [idle_timeout_s] bounds the wait for the frame's first byte (a peer
   that connects and says nothing); [timeout_s] bounds the whole frame
   once reading starts (a peer that trickles — the slowloris case). *)
let read_frame ?idle_timeout_s ?timeout_s fd =
  (match idle_timeout_s with
  | Some s when s > 0.0 ->
      wait_fd ~dir:`R fd (Unix.gettimeofday () +. s) "idle connection"
  | _ -> ());
  let deadline = deadline_of timeout_s in
  let hdr = really_read ~deadline fd 4 in
  let b i = Char.code hdr.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n < 0 || n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let payload =
    (* EOF here is not a clean close — the header promised a payload *)
    try really_read ~deadline fd n
    with End_of_file ->
      raise (Protocol_error "peer closed between header and payload")
  in
  match J.of_string payload with
  | Ok j -> j
  | Error msg -> raise (Protocol_error (Printf.sprintf "bad JSON frame: %s" msg))
