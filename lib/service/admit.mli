(** Admission control for the serving tier: bounded live connections,
    bounded search-queue depth, and per-tenant token-bucket quotas.
    Every rejection is typed and carries a [retry_after_s] hint; all
    decisions are counted under [service.admit.*] and journaled
    ([admit.reject]).

    Connection and queue gates are counting semaphore-style check-in /
    check-out pairs ({!try_conn}/{!conn_done}, {!try_queue}/
    {!queue_done}); tenant quotas are a per-name token bucket of
    capacity [tenant_burst], refilled at [tenant_rate] tokens per
    second. Thread-safe. *)

type rejection = {
  kind : string;  (** ["overloaded"] or ["quota_exceeded"] *)
  retry_after_s : float;  (** when it is worth trying again *)
  detail : string;
}

type decision = Admitted | Rejected of rejection

type t

val create :
  ?registry:Obs.Metrics.t ->
  ?max_connections:int ->
  ?max_queue_depth:int ->
  ?tenant_rate:float ->
  ?tenant_burst:float ->
  ?retry_after_s:float ->
  unit ->
  t
(** [max_connections] (default 64) bounds concurrently handled
    connections; [max_queue_depth] (default 64) bounds distinct
    searches waiting for a search slot; 0 disables either bound.
    [tenant_rate] (tokens/s, default 0 = quotas off) and
    [tenant_burst] (default 10) shape the per-tenant buckets.
    [retry_after_s] (default 0.5) is the hint on overload
    rejections. *)

val try_conn : t -> decision
(** Admit one connection, or reject "overloaded". An [Admitted] must be
    paired with {!conn_done}. *)

val conn_done : t -> unit

val try_queue : t -> decision
(** Admit one search into the slot queue, or reject "overloaded". An
    [Admitted] must be paired with {!queue_done} (after the slot is
    acquired or the wait abandoned). *)

val queue_done : t -> unit

val check_tenant : ?now:float -> t -> string option -> decision
(** Draw one token from [tenant]'s bucket. [None] (no tenant field) and
    quota-less configurations always admit. [now] overrides the clock
    for tests. *)

val live_conns : t -> int
val queue_depth : t -> int
val tenant_count : t -> int

val status_json : t -> Obs.Jsonw.t
(** The admission block of the server's [status] response: live and
    maximum connections, queue depth, tenant-bucket population. *)
