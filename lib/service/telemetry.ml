(* The serving tier's request telemetry: per-stage latency sketches
   (queue wait, cache probe, search, serialize, total), exclusive
   per-outcome counters, and the schema'd snapshot the wire protocol's
   "metrics" op returns — the numbers a fleet front door would gate
   p50/p99 admission on.

   A [sample] is one request's scratchpad: created at dispatch entry,
   stages appended as they complete, outcome settled once, folded into
   the histograms exactly once by [finish]. Samples are owned by one
   handler thread; the histograms and counters they fold into are
   lock-free, so concurrent handlers never coordinate. *)

module J = Obs.Jsonw

let snapshot_schema = "mirage.service.metrics.v1"

(* Stage and outcome vocabularies are closed: the exposition, the bench
   history keys and the CI assertions all iterate these. *)
let stages = [ "queue_wait"; "cache_probe"; "search"; "serialize"; "total" ]

let outcomes =
  [ "hit"; "miss"; "coalesced"; "error"; "timeout"; "overloaded"; "quota_exceeded" ]

type t = {
  registry : Obs.Metrics.t;
  started_at : float;
  h_stage : (string * Obs.Hdr.t) list;  (* stage name -> sketch *)
  c_outcome : (string * Obs.Metrics.counter) list;
  c_degraded : Obs.Metrics.counter;
}

let stage_hdr_name stage = "serve." ^ stage
let outcome_counter_name o = "serve.outcome." ^ o

let create ?(registry = Obs.Metrics.default ()) () =
  {
    registry;
    started_at = Unix.gettimeofday ();
    h_stage =
      List.map
        (fun s ->
          ( s,
            Obs.Metrics.hdr registry
              ~help:("request " ^ s ^ " latency (s)")
              (stage_hdr_name s) ))
        stages;
    c_outcome =
      List.map
        (fun o ->
          ( o,
            Obs.Metrics.counter registry
              ~help:("optimize requests ending in " ^ o)
              (outcome_counter_name o) ))
        outcomes;
    c_degraded =
      Obs.Metrics.counter registry ~help:"requests answered degraded"
        (outcome_counter_name "degraded");
  }

let registry t = t.registry

(* --- per-request samples ---------------------------------------------- *)

type sample = {
  rid : string;
  op : string;
  t0 : float;
  mutable stages_acc : (string * float) list;  (* reverse order, seconds *)
  mutable outcome : string;  (* "" until settled; first settle wins *)
  mutable degraded : bool;
  mutable finished : bool;
  mutable total_s : float;
}

let start ~rid ~op =
  {
    rid;
    op;
    t0 = Unix.gettimeofday ();
    stages_acc = [];
    outcome = "";
    degraded = false;
    finished = false;
    total_s = 0.0;
  }

let sample_rid s = s.rid
let sample_op s = s.op
let sample_outcome s = s.outcome
let sample_degraded s = s.degraded
let sample_total_s s = s.total_s
let sample_stages s = List.rev s.stages_acc

let add_stage s name dt = s.stages_acc <- (name, dt) :: s.stages_acc

let time_stage s name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_stage s name (Unix.gettimeofday () -. t0))
    f

let set_outcome s o = if s.outcome = "" then s.outcome <- o
let set_degraded s = s.degraded <- true

(* Fold the sample into the registry. Idempotent: connection teardown
   paths can race a dispatch-level finish without double counting.
   Stage sketches record for every request that ran the stage; the
   total sketch and outcome counters are optimize-scoped so cheap
   status/metrics polls cannot drag p50 down or dilute hit rate. *)
let finish t s =
  if not s.finished then begin
    s.finished <- true;
    s.total_s <- Unix.gettimeofday () -. s.t0;
    List.iter
      (fun (name, dt) ->
        match List.assoc_opt name t.h_stage with
        | Some h -> Obs.Hdr.record h dt
        | None -> ())
      s.stages_acc;
    if s.op = "optimize" || s.outcome = "error" then begin
      (match List.assoc_opt "total" t.h_stage with
      | Some h when s.op = "optimize" -> Obs.Hdr.record h s.total_s
      | _ -> ());
      (match List.assoc_opt s.outcome t.c_outcome with
      | Some c -> Obs.Metrics.bump c
      | None -> ());
      if s.degraded then Obs.Metrics.bump t.c_degraded
    end
  end

(* --- exposition -------------------------------------------------------- *)

let counter_value snap name =
  match List.assoc_opt name snap.Obs.Metrics.counters with
  | Some v -> v
  | None -> 0

let cache_rates snap =
  let hits =
    counter_value snap "service.cache.hit.mem"
    + counter_value snap "service.cache.hit.disk"
  in
  let misses = counter_value snap "service.cache.miss" in
  let total = hits + misses in
  let rate =
    if total = 0 then 0.0 else float_of_int hits /. float_of_int total
  in
  (hits, misses, rate)

let uptime_s t = Unix.gettimeofday () -. t.started_at

(* The search funnel, accumulated across every search this process ran
   (the server passes its registry to [Generator.run], so the Stats
   counters land here). *)
let funnel_counters =
  [
    "search.expanded";
    "search.reject.shape";
    "search.reject.memory";
    "search.reject.pruned_abstract";
    "search.reject.canonical";
    "search.duplicates";
    "search.candidates";
    "search.verified";
  ]

let has_prefix p name =
  String.length name >= String.length p && String.sub name 0 (String.length p) = p

(* A compact digest of the ambient profiler, when one is enabled: total
   attributed wall seconds per depth-1 phase plus the top prune rules by
   estimated savings — the full tree stays in [mirage_cli profile]. *)
let profile_digest () =
  match Obs.Profile.active () with
  | None -> []
  | Some p ->
      let s = Obs.Profile.snapshot p in
      let phases =
        List.filter_map
          (fun (ph : Obs.Profile.phase_snap) ->
            if ph.Obs.Profile.p_depth = 1 && not ph.Obs.Profile.p_overlay then
              Some (ph.Obs.Profile.p_path, J.Float ph.Obs.Profile.p_total_s)
            else None)
          s.Obs.Profile.phases
      in
      let rules =
        List.map
          (fun (r : Obs.Profile.rule_snap) ->
            ( r.Obs.Profile.r_rule,
              J.Obj
                [
                  ("fires", J.Int r.Obs.Profile.r_fires);
                  ("est_saved", J.Float r.Obs.Profile.r_est_saved);
                ] ))
          s.Obs.Profile.prune_rules
      in
      [
        ( "profile",
          J.Obj
            [
              ("schema", J.Str Obs.Profile.schema);
              ("wall_s", J.Float s.Obs.Profile.wall_s);
              ("phases", J.Obj phases);
              ("prune_rules", J.Obj rules);
            ] );
      ]

let snapshot_json ?(extra = []) t ~in_flight () =
  let snap = Obs.Metrics.snapshot t.registry in
  let hits, misses, hit_rate = cache_rates snap in
  J.Obj
    ([
       ("schema", J.Str snapshot_schema);
       ("uptime_s", J.Float (uptime_s t));
       ("in_flight", J.Int in_flight);
       ("requests", J.Int (counter_value snap "service.requests"));
       ( "outcomes",
         J.Obj
           (List.map
              (fun o ->
                (o, J.Int (counter_value snap (outcome_counter_name o))))
              (outcomes @ [ "degraded" ])) );
       ( "cache",
         J.Obj
           [
             ("hits", J.Int hits);
             ("misses", J.Int misses);
             ("hit_rate", J.Float hit_rate);
           ] );
       ( "journal",
         J.Obj
           [
             ( "dropped_events",
               J.Int (counter_value snap "journal.dropped_events") );
             ( "dropped_buffers",
               J.Int (counter_value snap "journal.dropped_buffers") );
           ] );
       ( "search",
         J.Obj
           (List.map
              (fun n -> (n, J.Int (counter_value snap n)))
              funnel_counters) );
       ( "histograms",
         J.Obj
           (List.filter_map
              (fun (name, d) ->
                if has_prefix "serve." name || has_prefix "profile.phase." name
                then Some (name, Obs.Hdr.snap_to_json d)
                else None)
              snap.Obs.Metrics.hdrs) );
       ( "counters",
         J.Obj
           (List.map (fun (n, v) -> (n, J.Int v)) snap.Obs.Metrics.counters) );
       ( "gauges",
         J.Obj (List.map (fun (n, v) -> (n, J.Float v)) snap.Obs.Metrics.gauges)
       );
     ]
    @ profile_digest () @ extra)

let prometheus t = Obs.Prom.render (Obs.Metrics.snapshot t.registry)

(* --- snapshot validation ---------------------------------------------- *)

(* json_check-style structural validation of an exposition snapshot, so
   the CLI and CI can reject a malformed scrape at the edge instead of
   gating on garbage. *)

let check_snapshot j =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) = Result.bind in
  let need_obj k =
    match J.member k j with
    | Some (J.Obj fields) -> Ok fields
    | Some _ -> err "%s is not an object" k
    | None -> err "missing %s" k
  in
  let num = function
    | J.Float f -> Some f
    | J.Int i -> Some (float_of_int i)
    | _ -> None
  in
  let* () =
    match J.member "schema" j with
    | Some (J.Str s) when s = snapshot_schema -> Ok ()
    | Some (J.Str s) -> err "schema %S, want %S" s snapshot_schema
    | _ -> err "missing schema"
  in
  let* () =
    match Option.bind (J.member "uptime_s" j) num with
    | Some u when u >= 0.0 -> Ok ()
    | Some u -> err "negative uptime_s %g" u
    | None -> err "missing uptime_s"
  in
  let* () =
    match J.member "in_flight" j with
    | Some (J.Int n) when n >= 0 -> Ok ()
    | _ -> err "missing/invalid in_flight"
  in
  let* () =
    match J.member "requests" j with
    | Some (J.Int n) when n >= 0 -> Ok ()
    | _ -> err "missing/invalid requests"
  in
  let* ofields = need_obj "outcomes" in
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        match List.assoc_opt o ofields with
        | Some (J.Int n) when n >= 0 -> Ok ()
        | _ -> err "outcomes.%s missing or invalid" o)
      (Ok ())
      (outcomes @ [ "degraded" ])
  in
  let* cfields = need_obj "cache" in
  let* () =
    match Option.bind (List.assoc_opt "hit_rate" cfields) num with
    | Some r when r >= 0.0 && r <= 1.0 -> Ok ()
    | Some r -> err "cache.hit_rate %g outside [0,1]" r
    | None -> err "missing cache.hit_rate"
  in
  let* sfields = need_obj "search" in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        match List.assoc_opt n sfields with
        | Some (J.Int v) when v >= 0 -> Ok ()
        | _ -> err "search.%s missing or invalid" n)
      (Ok ()) funnel_counters
  in
  let* hfields = need_obj "histograms" in
  let* () =
    List.fold_left
      (fun acc (name, h) ->
        let* () = acc in
        let q k =
          match Option.bind (J.member k h) num with
          | Some v when v >= 0.0 -> Ok v
          | _ -> err "histograms.%s.%s missing or negative" name k
        in
        let* count =
          match J.member "count" h with
          | Some (J.Int n) when n >= 0 -> Ok n
          | _ -> err "histograms.%s.count missing or invalid" name
        in
        let* eps =
          match Option.bind (J.member "error" h) num with
          | Some e when e > 0.0 && e < 1.0 -> Ok e
          | _ -> err "histograms.%s.error missing or invalid" name
        in
        let* p50 = q "p50_us" in
        let* p90 = q "p90_us" in
        let* p99 = q "p99_us" in
        let* mx = q "max_us" in
        if count = 0 then Ok ()
        else if not (p50 <= p90 && p90 <= p99) then
          err "histograms.%s quantiles not monotone (%g, %g, %g)" name p50 p90
            p99
        else if
          (* p99 is a bucket estimate, max is exact: the estimate may
             exceed the true max by up to eps — or, for values clamped
             below the sketch's lower bound (sub-microsecond queue
             waits), by the whole lo bucket (~2 us) *)
          p99 > (mx *. (1.0 +. (2.0 *. eps))) +. 2.0
        then err "histograms.%s p99 %g far above max %g" name p99 mx
        else Ok ())
      (Ok ()) hfields
  in
  let* ctrs = need_obj "counters" in
  List.fold_left
    (fun acc (name, v) ->
      let* () = acc in
      match v with
      | J.Int n when n >= 0 -> Ok ()
      | _ -> err "counter %s is not a non-negative int" name)
    (Ok ()) ctrs
