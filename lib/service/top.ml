(* The one-screen live view behind `mirage_cli top`: renders a metrics
   exposition snapshot (and optionally the previous poll, for rates) as
   fixed-width text. Pure — polling, clearing the screen and sleeping
   belong to the CLI — so the layout is testable without a daemon. *)

module J = Obs.Jsonw

let num j =
  match j with
  | Some (J.Float f) -> f
  | Some (J.Int i) -> float_of_int i
  | _ -> 0.0

let int_ j = match j with Some (J.Int i) -> i | _ -> 0
let getp path j =
  let rec go j = function
    | [] -> Some j
    | k :: rest -> Option.bind (J.member k j) (fun v -> go v rest)
  in
  go j path

(* 1234567 us -> "1.23s", 2345 -> "2.35ms", 12 -> "12us" *)
let pp_us v =
  if v >= 1e6 then Printf.sprintf "%.2fs" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.2fms" (v /. 1e3)
  else Printf.sprintf "%.0fus" v

let pp_uptime s =
  if s >= 3600.0 then
    Printf.sprintf "%dh%02dm"
      (int_of_float s / 3600)
      (int_of_float s mod 3600 / 60)
  else if s >= 60.0 then
    Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%.0fs" s

let render ?prev ~now snap =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let requests = int_ (J.member "requests" snap) in
  (* A daemon restart between polls resets every counter: the request
     delta goes negative and the uptime shrinks. Clamping alone would
     silently render "0.0 req/s" for a busy-but-restarted server, so
     the restart is also called out explicitly. *)
  let restarted =
    match prev with
    | Some (_, prev_snap) ->
        requests < int_ (J.member "requests" prev_snap)
        || num (J.member "uptime_s" snap)
           < num (J.member "uptime_s" prev_snap)
    | None -> false
  in
  let rate =
    match prev with
    | _ when restarted -> "restarted"
    | Some (prev_ts, prev_snap) when now > prev_ts ->
        let dr = requests - int_ (J.member "requests" prev_snap) in
        Printf.sprintf "%.1f req/s" (float_of_int (max 0 dr) /. (now -. prev_ts))
    | _ -> "- req/s"
  in
  line "mirage serve — uptime %s   requests %d (%s)   in-flight %d"
    (pp_uptime (num (J.member "uptime_s" snap)))
    requests rate
    (int_ (J.member "in_flight" snap));
  let oc k = int_ (getp [ "outcomes"; k ] snap) in
  line "outcomes  hit %d | miss %d | coalesced %d | error %d | degraded %d"
    (oc "hit") (oc "miss") (oc "coalesced") (oc "error") (oc "degraded");
  line "cache     hits %d  misses %d  hit rate %.1f%%   entries mem %d disk %d"
    (int_ (getp [ "cache"; "hits" ] snap))
    (int_ (getp [ "cache"; "misses" ] snap))
    (100.0 *. num (getp [ "cache"; "hit_rate" ] snap))
    (int_ (getp [ "cache_entries"; "mem" ] snap))
    (int_ (getp [ "cache_entries"; "disk" ] snap));
  (match J.member "slow" snap with
  | Some slow ->
      line "slow      %d report(s), %d skipped (threshold %s)"
        (int_ (J.member "captured" slow))
        (int_ (J.member "skipped" slow))
        (pp_us (1e3 *. num (J.member "threshold_ms" slow)))
  | None -> ());
  let jd = int_ (getp [ "journal"; "dropped_events" ] snap) in
  if jd > 0 then line "journal   %d dropped event(s)!" jd;
  (* the accumulated search funnel (present in v1 snapshots that ran at
     least zero searches; absent in older scrapes) *)
  (match J.member "search" snap with
  | Some (J.Obj _) ->
      let sc k = int_ (getp [ "search"; "search." ^ k ] snap) in
      line
        "search    expanded %d | pruned %d | canonical %d | dup %d | \
         candidates %d | verified %d"
        (sc "expanded")
        (sc "reject.pruned_abstract")
        (sc "reject.canonical") (sc "duplicates") (sc "candidates")
        (sc "verified")
  | _ -> ());
  (match J.member "profile" snap with
  | Some (J.Obj _) ->
      let phases =
        match getp [ "profile"; "phases" ] snap with
        | Some (J.Obj ps) ->
            List.map
              (fun (name, v) -> Printf.sprintf "%s %.2fs" name (num (Some v)))
              ps
        | _ -> []
      in
      if phases <> [] then line "profile   %s" (String.concat " | " phases)
  | _ -> ());
  line "";
  line "%-20s %8s %10s %10s %10s %10s" "stage" "count" "p50" "p90" "p99" "max";
  (match J.member "histograms" snap with
  | Some (J.Obj hists) ->
      List.iter
        (fun (name, h) ->
          let q k = num (J.member k h) in
          line "%-20s %8d %10s %10s %10s %10s" name
            (int_ (J.member "count" h))
            (pp_us (q "p50_us")) (pp_us (q "p90_us")) (pp_us (q "p99_us"))
            (pp_us (q "max_us")))
        hists
  | _ -> ());
  Buffer.contents b
