(* Canonical content fingerprint of an optimization request: what has to
   be equal for two requests to be guaranteed the same search result.

   The fingerprint covers three things and nothing else:
   - the input kernel graph, α-converted (input tensor names replaced by
     their position) so renaming tensors or reordering nothing changes
     the hash — the search result depends on shapes and structure, never
     on names;
   - the device's numeric parameters (they drive the cost model and the
     shared-memory limit, i.e. both the candidate set and the winner);
     the device *name* is excluded — it is a label, not a semantic
     input;
   - the search-relevant config fields ({!Search.Config.
     search_relevant_json}): budgets, worker counts and the verify-path
     switch are stripped because they change how long the search runs,
     not what it returns.

   The canonical form is a schema-tagged JSON document serialized
   compactly (Jsonw.to_string is deterministic: fields in construction
   order, no insignificant whitespace) and digested with MD5. *)

module J = Obs.Jsonw

let schema = "mirage.service.fingerprint.v1"

type t = string

(* α-conversion: the only names in a kernel graph live on K_input nodes
   (block/thread levels reference inputs positionally already). Replace
   each with its input ordinal so any renaming yields the same canonical
   graph. *)
let canonical_graph (g : Mugraph.Graph.kernel_graph) :
    Mugraph.Graph.kernel_graph =
  let next = ref 0 in
  let knodes =
    Array.map
      (fun (n : Mugraph.Graph.kernel_node) ->
        match n.Mugraph.Graph.kop with
        | Mugraph.Graph.K_input { shape; _ } ->
            let i = !next in
            incr next;
            {
              n with
              Mugraph.Graph.kop =
                Mugraph.Graph.K_input
                  { name = Printf.sprintf "$%d" i; shape };
            }
        | _ -> n)
      g.Mugraph.Graph.knodes
  in
  { g with Mugraph.Graph.knodes }

let device_json (d : Gpusim.Device.t) =
  J.Obj
    [
      ("num_sms", J.Int d.Gpusim.Device.num_sms);
      ("smem_per_sm_bytes", J.Int d.Gpusim.Device.smem_per_sm_bytes);
      ("dmem_bytes", J.Int d.Gpusim.Device.dmem_bytes);
      ("l2_bytes", J.Int d.Gpusim.Device.l2_bytes);
      ("dram_gb_s", J.Float d.Gpusim.Device.dram_gb_s);
      ("smem_gb_s_per_sm", J.Float d.Gpusim.Device.smem_gb_s_per_sm);
      ("tensor_tflops", J.Float d.Gpusim.Device.tensor_tflops);
      ("ew_tflops", J.Float d.Gpusim.Device.ew_tflops);
      ("kernel_launch_us", J.Float d.Gpusim.Device.kernel_launch_us);
      ("elt_bytes", J.Int d.Gpusim.Device.elt_bytes);
    ]

let canonical_json ~(device : Gpusim.Device.t) ~(config : Search.Config.t)
    (g : Mugraph.Graph.kernel_graph) =
  J.Obj
    [
      ("schema", J.Str schema);
      ("graph", Search.Checkpoint.graph_to_json (canonical_graph g));
      ("device", device_json device);
      ("config", Search.Config.search_relevant_json config);
    ]

let make ~device ~config g =
  Digest.to_hex (Digest.string (J.to_string (canonical_json ~device ~config g)))

let to_string fp = fp
let pp fmt fp = Format.pp_print_string fmt fp
