(** The optimization service daemon.

    A Unix-domain-socket server speaking the {!Proto} wire protocol.
    Requests are JSON objects with an ["op"] field:

    - [{"op":"optimize", "benchmark":<name>}] (or ["graph": <codec json>],
      plus optional overrides [max_block_ops] / [budget_s] / [workers] /
      [device]) — resolve the spec, fingerprint it ({!Fingerprint}),
      serve from the {!Cache} when possible, otherwise run the §4 search
      exactly once per distinct in-flight fingerprint (single-flight
      coalescing) and store the result; ["progress": true] (with
      optional [progress_interval_ms], default 100) opts the connection
      into interleaved {!Proto.progress_frame} events while the search
      — own or coalesced — is in flight, each tagged with this
      request's id;
    - [{"op":"status"}] — uptime, counters, cache occupancy and hit
      rate, slow-report tally;
    - [{"op":"stats"}] — a snapshot of the process metrics registry;
    - [{"op":"metrics"}] — the {!Telemetry.snapshot_schema} exposition
      (stage latency quantiles, outcome counters, cache hit rate), or
      Prometheus text with ["format":"prometheus"];
    - [{"op":"shutdown"}] — respond, then stop accepting.

    Every request carries a request id ({!Reqid}; the server mints one
    for bare frames) which is echoed in the response, installed as
    journal context for the whole dispatch — search worker domains
    included — and recorded by coalesced followers as the leader's id
    ([served_by]). A {!Telemetry.sample} times the stages (cache probe,
    queue wait, search, serialize) and, when a slow threshold is
    configured, {!Slowlog} captures a per-request report directory for
    optimize requests above it.

    The request lifecycle is journaled through {!Obs.Journal}
    ([request.recv], [cache.hit]/[cache.miss], [request.coalesced],
    [search.start]/[search.done], [request.done]); the concurrency
    stress test counts [search.start] events to prove coalescing. *)

type t

val create :
  ?mem_capacity:int ->
  ?registry:Obs.Metrics.t ->
  ?device:Gpusim.Device.t ->
  ?base_config:Search.Config.t ->
  ?verify_trials:int ->
  ?max_concurrent_searches:int ->
  ?slow_threshold_s:float ->
  ?slow_dir:string ->
  ?slow_max_reports:int ->
  socket_path:string ->
  cache_dir:string ->
  unit ->
  t
(** [slow_threshold_s] arms slow-request forensics: optimize requests
    at or above it leave a report directory under [slow_dir] (default
    [cache_dir ^ "-slow"]), at most [slow_max_reports] of them. *)

val cache : t -> Cache.t
val telemetry : t -> Telemetry.t
val slowlog : t -> Slowlog.t option

val handle_request :
  ?push:(Obs.Jsonw.t -> unit) -> t -> Obs.Jsonw.t -> Obs.Jsonw.t
(** Dispatch one request in the calling thread — the in-process entry
    point the tests use; the socket path goes through it too. [push]
    receives interleaved {!Proto.progress_frame} events while an
    optimize request that opted in (["progress": true]) has a search in
    flight; it is never called after [handle_request] returns. *)

val start : t -> unit
(** Bind the socket and start the accept loop in a background thread. *)

val wait : t -> unit
(** Block until the daemon stops (shutdown request or {!stop}), then
    join outstanding handlers and remove the socket file. *)

val stop : t -> unit
(** Close the listener and mark the daemon stopping. *)

val run : t -> unit
(** [start] then [wait] — the CLI foreground mode. *)

val stopping : t -> bool
