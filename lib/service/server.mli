(** The optimization service daemon.

    A Unix-domain-socket server speaking the {!Proto} wire protocol.
    Requests are JSON objects with an ["op"] field:

    - [{"op":"optimize", "benchmark":<name>}] (or ["graph": <codec json>],
      plus optional overrides [max_block_ops] / [budget_s] / [workers] /
      [device]) — resolve the spec, fingerprint it ({!Fingerprint}),
      serve from the {!Cache} when possible, otherwise run the §4 search
      exactly once per distinct in-flight fingerprint (single-flight
      coalescing) and store the result; ["progress": true] (with
      optional [progress_interval_ms], default 100) opts the connection
      into interleaved {!Proto.progress_frame} events while the search
      — own or coalesced — is in flight, each tagged with this
      request's id;
    - [{"op":"status"}] — uptime, counters, cache occupancy and hit
      rate, slow-report tally;
    - [{"op":"stats"}] — a snapshot of the process metrics registry;
    - [{"op":"metrics"}] — the {!Telemetry.snapshot_schema} exposition
      (stage latency quantiles, outcome counters, cache hit rate), or
      Prometheus text with ["format":"prometheus"];
    - [{"op":"shutdown"}] — respond, then stop accepting; an optional
      ["drain_s"] gives in-flight searches that long to finish before
      their budgets are cancelled (graceful drain).

    The daemon is armored against overload and hostile peers:
    {!Admit} bounds live connections and queued searches (typed
    ["overloaded"] rejections carrying [retry_after_s]) and meters
    per-tenant token buckets (["tenant"] field, typed
    ["quota_exceeded"]); every frame read/write runs under a deadline
    ({!Proto}), so a slowloris peer is disconnected after
    [frame_timeout_s] and its handler thread reaped; a client-supplied
    ["deadline_ms"] bounds the whole request — queue wait, search
    budget, coalesced wait — and answers a typed ["timeout"] when it
    expires. Error responses always carry ["error"] (the machine-
    readable kind: [bad_request], [overloaded], [quota_exceeded],
    [timeout], [bad_frame], [internal]) next to the human ["message"].

    Every request carries a request id ({!Reqid}; the server mints one
    for bare frames) which is echoed in the response, installed as
    journal context for the whole dispatch — search worker domains
    included — and recorded by coalesced followers as the leader's id
    ([served_by]). A {!Telemetry.sample} times the stages (cache probe,
    queue wait, search, serialize) and, when a slow threshold is
    configured, {!Slowlog} captures a per-request report directory for
    optimize requests above it.

    The request lifecycle is journaled through {!Obs.Journal}
    ([request.recv], [cache.hit]/[cache.miss], [request.coalesced],
    [search.start]/[search.done], [request.done]); the concurrency
    stress test counts [search.start] events to prove coalescing. *)

type t

val create :
  ?mem_capacity:int ->
  ?registry:Obs.Metrics.t ->
  ?device:Gpusim.Device.t ->
  ?base_config:Search.Config.t ->
  ?verify_trials:int ->
  ?max_concurrent_searches:int ->
  ?max_connections:int ->
  ?max_queue_depth:int ->
  ?tenant_rate:float ->
  ?tenant_burst:float ->
  ?retry_after_s:float ->
  ?frame_timeout_s:float ->
  ?idle_timeout_s:float ->
  ?cache_max_bytes:int ->
  ?slow_threshold_s:float ->
  ?slow_dir:string ->
  ?slow_max_reports:int ->
  socket_path:string ->
  cache_dir:string ->
  unit ->
  t
(** [slow_threshold_s] arms slow-request forensics: optimize requests
    at or above it leave a report directory under [slow_dir] (default
    [cache_dir ^ "-slow"]), at most [slow_max_reports] of them.

    Hardening knobs: [max_connections] (default 64) / [max_queue_depth]
    (default 64) bound live connections and queued searches (0 =
    unlimited); [tenant_rate] (tokens/s, default 0 = quotas off) and
    [tenant_burst] (default 10) parameterize the per-tenant buckets;
    [retry_after_s] (default 0.5) is the back-off hint on overload
    rejections; [frame_timeout_s] (default 10) bounds each frame
    read/write and [idle_timeout_s] (default 30) bounds the wait for a
    connection's first byte (0 = unlimited); [cache_max_bytes]
    (default 0 = unlimited) caps the disk cache tier. *)

val cache : t -> Cache.t
val telemetry : t -> Telemetry.t
val slowlog : t -> Slowlog.t option
val admit : t -> Admit.t

val handle_request :
  ?push:(Obs.Jsonw.t -> unit) -> t -> Obs.Jsonw.t -> Obs.Jsonw.t
(** Dispatch one request in the calling thread — the in-process entry
    point the tests use; the socket path goes through it too. [push]
    receives interleaved {!Proto.progress_frame} events while an
    optimize request that opted in (["progress": true]) has a search in
    flight; it is never called after [handle_request] returns. *)

val start : t -> unit
(** Bind the socket and start the accept loop in a background thread. *)

val wait : t -> unit
(** Block until the daemon stops (shutdown request or {!stop}), then
    join outstanding handlers and remove the socket file. *)

val stop : t -> unit
(** Close the listener and mark the daemon stopping. *)

val shutdown : ?drain_s:float -> t -> unit
(** {!stop}, plus an optional graceful drain: give in-flight searches
    [drain_s] seconds to land their results, then cancel the budgets of
    whatever is still running so those flights answer with best-so-far
    instead of blocking shutdown. *)

val handler_count : t -> int
(** Live connection-handler threads. Handlers are reaped as their
    connections close, so this returns to 0 on an idle daemon — the
    leak-freedom assertion the torture test makes. *)

val flight_count : t -> int
(** Distinct searches currently in flight (single-flight table size). *)

val run : t -> unit
(** [start] then [wait] — the CLI foreground mode. *)

val stopping : t -> bool
