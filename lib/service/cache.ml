(* Two-tier fingerprint-keyed result store.

   Tier 1 is a small in-memory LRU (assoc list, most-recent first —
   capacities are tens of entries, so O(n) moves are noise next to the
   searches the cache elides). Tier 2 is a content-addressed directory:

     <dir>/<fp[0:2]>/<fp>/result.json

   Each result.json is a schema-versioned envelope around the caller's
   payload. Writes are atomic (temp file in the final directory, then
   rename) so a crash mid-store never leaves a torn entry; a torn or
   tampered entry found at read time is quarantined (renamed to
   result.json.quarantined next to where it lay, for forensics) and
   reported as a miss instead of crashing the daemon.

   All hit/miss/store/evict/quarantine traffic is counted in the
   process-wide Obs metrics registry under service.cache.*. *)

module J = Obs.Jsonw

let entry_schema = "mirage.service.result.v1"

type t = {
  dir : string;
  mem_capacity : int;
  lock : Mutex.t;
  mutable mem : (string * J.t) list;  (* most-recent first *)
  c_hit_mem : Obs.Metrics.counter;
  c_hit_disk : Obs.Metrics.counter;
  c_miss : Obs.Metrics.counter;
  c_store : Obs.Metrics.counter;
  c_evict : Obs.Metrics.counter;
  c_quarantine : Obs.Metrics.counter;
}

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(mem_capacity = 64) ?(registry = Obs.Metrics.default ()) ~dir ()
    =
  mkdir_p dir;
  let c name help = Obs.Metrics.counter registry ~help name in
  {
    dir;
    mem_capacity = max 1 mem_capacity;
    lock = Mutex.create ();
    mem = [];
    c_hit_mem = c "service.cache.hit.mem" "result served from the in-memory tier";
    c_hit_disk = c "service.cache.hit.disk" "result served from the on-disk tier";
    c_miss = c "service.cache.miss" "fingerprint not present in either tier";
    c_store = c "service.cache.store" "results written to the store";
    c_evict = c "service.cache.evict" "in-memory LRU evictions";
    c_quarantine =
      c "service.cache.quarantine"
        "corrupted on-disk entries moved aside instead of served";
  }

let dir t = t.dir

let entry_dir t fp =
  Filename.concat
    (Filename.concat t.dir (String.sub (fp ^ "00") 0 2))
    fp

let entry_path t fp = Filename.concat (entry_dir t fp) "result.json"

(* --- in-memory tier (caller holds t.lock) --------------------------- *)

let mem_find_locked t fp =
  match List.assoc_opt fp t.mem with
  | None -> None
  | Some v ->
      t.mem <- (fp, v) :: List.remove_assoc fp t.mem;
      Some v

let mem_insert_locked t fp v =
  t.mem <- (fp, v) :: List.remove_assoc fp t.mem;
  let rec trim i = function
    | [] -> []
    | _ :: rest when i >= t.mem_capacity ->
        Obs.Metrics.bump t.c_evict;
        trim (i + 1) rest
    | x :: rest -> x :: trim (i + 1) rest
  in
  t.mem <- trim 0 t.mem

(* --- quarantine ------------------------------------------------------ *)

let quarantine_locked t fp ~reason =
  Obs.Metrics.bump t.c_quarantine;
  t.mem <- List.remove_assoc fp t.mem;
  let path = entry_path t fp in
  Obs.Log.warn (fun m ->
      m "service.cache: quarantining %s: %s" path reason);
  Obs.Journal.event "cache.quarantine"
    [ ("fingerprint", J.Str fp); ("reason", J.Str reason) ];
  if Sys.file_exists path then (
    try Sys.rename path (path ^ ".quarantined")
    with _ -> ( try Sys.remove path with _ -> ()))

let quarantine t fp ~reason =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> quarantine_locked t fp ~reason)

(* --- disk tier ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Validate everything about the envelope before trusting it; any defect
   is a quarantine, never an exception escaping to the caller. *)
let disk_find_locked t fp =
  let path = entry_path t fp in
  if not (Sys.file_exists path) then None
  else
    let bad reason =
      quarantine_locked t fp ~reason;
      None
    in
    match read_file path with
    | exception e -> bad (Printf.sprintf "unreadable: %s" (Printexc.to_string e))
    | s -> (
        match J.of_string s with
        | Error msg -> bad (Printf.sprintf "unparsable: %s" msg)
        | Ok j -> (
            match (J.member "schema" j, J.member "fingerprint" j) with
            | Some (J.Str sch), _ when sch <> entry_schema ->
                bad (Printf.sprintf "schema %S, want %S" sch entry_schema)
            | _, Some (J.Str f) when f <> fp ->
                bad (Printf.sprintf "fingerprint mismatch: entry says %s" f)
            | Some (J.Str _), Some (J.Str _) -> (
                match J.member "payload" j with
                | Some payload -> Some payload
                | None -> bad "no payload field")
            | _ -> bad "missing schema or fingerprint field"))

(* --- public API ------------------------------------------------------ *)

let find t fp =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match mem_find_locked t fp with
      | Some v ->
          Obs.Metrics.bump t.c_hit_mem;
          Some v
      | None -> (
          match disk_find_locked t fp with
          | Some v ->
              Obs.Metrics.bump t.c_hit_disk;
              mem_insert_locked t fp v;
              Some v
          | None ->
              Obs.Metrics.bump t.c_miss;
              None))

let envelope fp payload =
  J.Obj
    [
      ("schema", J.Str entry_schema);
      ("fingerprint", J.Str fp);
      ("payload", payload);
    ]

let store t fp payload =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      Obs.Metrics.bump t.c_store;
      mem_insert_locked t fp payload;
      let d = entry_dir t fp in
      (try
         mkdir_p d;
         let tmp =
           Filename.concat d
             (Printf.sprintf ".result.json.tmp.%d" (Unix.getpid ()))
         in
         J.to_file tmp (envelope fp payload);
         Sys.rename tmp (entry_path t fp)
       with e ->
         (* a store failure degrades (the next request re-searches) but
            must never take the daemon down *)
         Obs.Budget.degrade "service.cache.write";
         Obs.Log.warn (fun m ->
             m "service.cache: store %s failed: %s" fp
               (Printexc.to_string e))))

let clear_mem t =
  Mutex.lock t.lock;
  t.mem <- [];
  Mutex.unlock t.lock

let mem_entries t =
  Mutex.lock t.lock;
  let n = List.length t.mem in
  Mutex.unlock t.lock;
  n

let disk_entries t =
  let count = ref 0 in
  (try
     Array.iter
       (fun shard ->
         let sd = Filename.concat t.dir shard in
         if Sys.is_directory sd then
           Array.iter
             (fun fp ->
               if Sys.file_exists (Filename.concat (Filename.concat sd fp) "result.json")
               then incr count)
             (Sys.readdir sd))
       (Sys.readdir t.dir)
   with Sys_error _ -> ());
  !count
