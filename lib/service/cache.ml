(* Two-tier fingerprint-keyed result store.

   Tier 1 is a small in-memory LRU (assoc list, most-recent first —
   capacities are tens of entries, so O(n) moves are noise next to the
   searches the cache elides). Tier 2 is a content-addressed directory:

     <dir>/<fp[0:2]>/<fp>/result.json

   Each result.json is a schema-versioned envelope around the caller's
   payload. Writes are crash-safe: the bytes are written to a temp file
   in the final directory, fsynced, renamed over the destination, and
   the directory itself is fsynced — a kill -9 at any point leaves
   either the old entry, the new entry, or an orphaned temp file, never
   a torn result.json served as truth. A startup recovery sweep
   quarantines whatever a crash did leave behind (orphaned temps,
   truncated or foreign envelopes) so the store is clean before the
   first request; a torn or tampered entry found later at read time is
   quarantined the same way (renamed to result.json.quarantined next to
   where it lay, for forensics) and reported as a miss instead of
   crashing the daemon.

   The disk tier can carry a byte cap ([max_disk_bytes]): stores that
   push the tier over it evict the least-recently-used entries (disk
   hits refresh mtime, so mtime order is access order). A disk that
   runs out of space (ENOSPC) flips the store into memory-only mode —
   flagged through the PR 3 degradation registry and the
   service.cache.mem_only gauge — instead of failing every request.

   All traffic is counted in the Obs metrics registry under
   service.cache.*. *)

module J = Obs.Jsonw

let entry_schema = "mirage.service.result.v1"

let tmp_prefix = ".result.json.tmp."

type t = {
  dir : string;
  mem_capacity : int;
  max_disk_bytes : int;  (* 0 = unlimited *)
  lock : Mutex.t;
  mutable mem : (string * J.t) list;  (* most-recent first *)
  mutable disk_bytes : int;
  mutable mem_only : bool;  (* ENOSPC degradation: stop touching disk *)
  c_hit_mem : Obs.Metrics.counter;
  c_hit_disk : Obs.Metrics.counter;
  c_miss : Obs.Metrics.counter;
  c_store : Obs.Metrics.counter;
  c_prune_hit : Obs.Metrics.counter;
  c_prune_miss : Obs.Metrics.counter;
  c_prune_store : Obs.Metrics.counter;
  c_evict : Obs.Metrics.counter;
  c_evict_disk : Obs.Metrics.counter;
  c_quarantine : Obs.Metrics.counter;
  c_recovered : Obs.Metrics.counter;
  g_disk_bytes : Obs.Metrics.gauge;
  g_mem_only : Obs.Metrics.gauge;
}

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dir t = t.dir

let entry_dir t fp =
  Filename.concat
    (Filename.concat t.dir (String.sub (fp ^ "00") 0 2))
    fp

let entry_path t fp = Filename.concat (entry_dir t fp) "result.json"

let file_size path = try (Unix.stat path).Unix.st_size with _ -> 0

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let set_disk_bytes_locked t v =
  t.disk_bytes <- max 0 v;
  Obs.Metrics.set_gauge t.g_disk_bytes (float_of_int t.disk_bytes)

(* --- in-memory tier (caller holds t.lock) --------------------------- *)

let mem_find_locked t fp =
  match List.assoc_opt fp t.mem with
  | None -> None
  | Some v ->
      t.mem <- (fp, v) :: List.remove_assoc fp t.mem;
      Some v

let mem_insert_locked t fp v =
  t.mem <- (fp, v) :: List.remove_assoc fp t.mem;
  let rec trim i = function
    | [] -> []
    | _ :: rest when i >= t.mem_capacity ->
        Obs.Metrics.bump t.c_evict;
        trim (i + 1) rest
    | x :: rest -> x :: trim (i + 1) rest
  in
  t.mem <- trim 0 t.mem

(* --- quarantine ------------------------------------------------------ *)

let quarantine_locked t fp ~reason =
  Obs.Metrics.bump t.c_quarantine;
  t.mem <- List.remove_assoc fp t.mem;
  let path = entry_path t fp in
  Obs.Log.warn (fun m ->
      m "service.cache: quarantining %s: %s" path reason);
  Obs.Journal.event "cache.quarantine"
    [ ("fingerprint", J.Str fp); ("reason", J.Str reason) ];
  if Sys.file_exists path then begin
    set_disk_bytes_locked t (t.disk_bytes - file_size path);
    try Sys.rename path (path ^ ".quarantined")
    with _ -> ( try Sys.remove path with _ -> ())
  end

let quarantine t fp ~reason =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> quarantine_locked t fp ~reason)

(* --- disk tier ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Validate everything about the envelope before trusting it; any defect
   is a quarantine, never an exception escaping to the caller. *)
let disk_find_locked t fp =
  let path = entry_path t fp in
  if t.mem_only || not (Sys.file_exists path) then None
  else
    let bad reason =
      quarantine_locked t fp ~reason;
      None
    in
    match read_file path with
    | exception e -> bad (Printf.sprintf "unreadable: %s" (Printexc.to_string e))
    | s -> (
        match J.of_string s with
        | Error msg -> bad (Printf.sprintf "unparsable: %s" msg)
        | Ok j -> (
            match (J.member "schema" j, J.member "fingerprint" j) with
            | Some (J.Str sch), _ when sch <> entry_schema ->
                bad (Printf.sprintf "schema %S, want %S" sch entry_schema)
            | _, Some (J.Str f) when f <> fp ->
                bad (Printf.sprintf "fingerprint mismatch: entry says %s" f)
            | Some (J.Str _), Some (J.Str _) -> (
                match J.member "payload" j with
                | Some payload ->
                    (* refresh mtime: disk LRU order is access order *)
                    (try Unix.utimes path 0.0 0.0 with _ -> ());
                    Some payload
                | None -> bad "no payload field")
            | _ -> bad "missing schema or fingerprint field"))

(* Every (fingerprint, result.json) currently on disk, with size and
   mtime — the working set the byte cap evicts from. *)
let disk_entries_locked t =
  let acc = ref [] in
  (try
     Array.iter
       (fun shard ->
         let sd = Filename.concat t.dir shard in
         if String.length shard = 2 && Sys.is_directory sd then
           Array.iter
             (fun fp ->
               let path =
                 Filename.concat (Filename.concat sd fp) "result.json"
               in
               match Unix.stat path with
               | st -> acc := (fp, path, st.Unix.st_size, st.Unix.st_mtime) :: !acc
               | exception _ -> ())
             (Sys.readdir sd))
       (Sys.readdir t.dir)
   with Sys_error _ -> ());
  !acc

(* Evict least-recently-used disk entries until the tier fits the cap.
   [keep] (the entry just stored) is never evicted — a store must not
   immediately evict its own result. *)
let enforce_cap_locked t ~keep =
  if t.max_disk_bytes > 0 && t.disk_bytes > t.max_disk_bytes then begin
    let entries =
      List.filter (fun (fp, _, _, _) -> fp <> keep) (disk_entries_locked t)
      |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b)
    in
    let rec evict = function
      | [] -> ()
      | _ when t.disk_bytes <= t.max_disk_bytes -> ()
      | (fp, path, size, _) :: rest ->
          (try
             Sys.remove path;
             Obs.Metrics.bump t.c_evict_disk;
             Obs.Journal.event "cache.evict_disk"
               [ ("fingerprint", J.Str fp); ("bytes", J.Int size) ];
             set_disk_bytes_locked t (t.disk_bytes - size);
             (* tidy the now-empty entry directory; best effort *)
             try Unix.rmdir (Filename.dirname path) with _ -> ()
           with _ -> ());
          evict rest
    in
    evict entries
  end

(* --- crash recovery --------------------------------------------------- *)

(* Startup sweep: quarantine orphaned temp files (a crash between write
   and rename) and truncated/foreign envelopes (a crash that predates
   fsync-before-rename, or a tampered store), and take stock of the
   tier's byte occupancy. Runs before the first request, so the store
   the daemon serves from is known-good. *)
let recover_locked t =
  let quarantine_dir = Filename.concat t.dir "quarantine" in
  let orphan path =
    Obs.Metrics.bump t.c_recovered;
    Obs.Log.warn (fun m -> m "service.cache: recovering orphan %s" path);
    Obs.Journal.event "cache.recover_orphan" [ ("path", J.Str path) ];
    (try mkdir_p quarantine_dir with _ -> ());
    let dst =
      Filename.concat quarantine_dir
        (Printf.sprintf "%s.%d" (Filename.basename path) (Unix.getpid ()))
    in
    try Sys.rename path dst with _ -> ( try Sys.remove path with _ -> ())
  in
  let bytes = ref 0 in
  (try
     Array.iter
       (fun shard ->
         let sd = Filename.concat t.dir shard in
         if String.length shard = 2 && Sys.is_directory sd then
           Array.iter
             (fun fp ->
               let ed = Filename.concat sd fp in
               if Sys.is_directory ed then
                 Array.iter
                   (fun f ->
                     let path = Filename.concat ed f in
                     if has_prefix tmp_prefix f then orphan path
                     else if f = "result.json" then begin
                       (* a truncated or foreign envelope is quarantined
                          now, not discovered mid-request later *)
                       let valid =
                         match J.of_string (read_file path) with
                         | exception _ -> false
                         | Error _ -> false
                         | Ok j -> (
                             match
                               (J.member "schema" j, J.member "fingerprint" j)
                             with
                             | Some (J.Str sch), Some (J.Str f') ->
                                 sch = entry_schema && f' = fp
                             | _ -> false)
                       in
                       if valid then bytes := !bytes + file_size path
                       else quarantine_locked t fp ~reason:"recovery sweep"
                     end)
                   (Sys.readdir ed))
             (Sys.readdir sd))
       (Sys.readdir t.dir)
   with Sys_error _ -> ());
  set_disk_bytes_locked t !bytes;
  enforce_cap_locked t ~keep:""

let create ?(mem_capacity = 64) ?(registry = Obs.Metrics.default ())
    ?(max_disk_bytes = 0) ?(recover = true) ~dir () =
  mkdir_p dir;
  let c name help = Obs.Metrics.counter registry ~help name in
  let t =
    {
      dir;
      mem_capacity = max 1 mem_capacity;
      max_disk_bytes;
      lock = Mutex.create ();
      mem = [];
      disk_bytes = 0;
      mem_only = false;
      c_hit_mem = c "service.cache.hit.mem" "result served from the in-memory tier";
      c_hit_disk = c "service.cache.hit.disk" "result served from the on-disk tier";
      c_miss = c "service.cache.miss" "fingerprint not present in either tier";
      c_store = c "service.cache.store" "results written to the store";
      c_prune_hit =
        c "service.prune.hit" "prune-cache envelopes served from the store";
      c_prune_miss =
        c "service.prune.miss" "prune-cache envelopes not present in the store";
      c_prune_store =
        c "service.prune.store" "prune-cache envelopes written to the store";
      c_evict = c "service.cache.evict" "in-memory LRU evictions";
      c_evict_disk =
        c "service.cache.evict.disk" "on-disk entries evicted by the byte cap";
      c_quarantine =
        c "service.cache.quarantine"
          "corrupted on-disk entries moved aside instead of served";
      c_recovered =
        c "service.cache.recovered"
          "orphaned temp files swept aside by startup recovery";
      g_disk_bytes =
        Obs.Metrics.gauge registry ~help:"bytes in the on-disk tier"
          "service.cache.disk_bytes";
      g_mem_only =
        Obs.Metrics.gauge registry
          ~help:"1 when ENOSPC degraded the store to memory-only"
          "service.cache.mem_only";
    }
  in
  if recover then begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> recover_locked t)
  end;
  t

(* --- public API ------------------------------------------------------ *)

(* [cls] keeps the result-cache hit-rate meaningful: prune-cache
   traffic (the solver's persisted decision envelopes) counts under
   service.prune.* instead of service.cache.*, so a cold search's
   prune probe is not a "result cache miss". *)
let find ?(cls = `Result) t fp =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match mem_find_locked t fp with
      | Some v ->
          Obs.Metrics.bump
            (match cls with `Result -> t.c_hit_mem | `Prune -> t.c_prune_hit);
          Some v
      | None -> (
          match disk_find_locked t fp with
          | Some v ->
              Obs.Metrics.bump
                (match cls with
                | `Result -> t.c_hit_disk
                | `Prune -> t.c_prune_hit);
              mem_insert_locked t fp v;
              Some v
          | None ->
              Obs.Metrics.bump
                (match cls with `Result -> t.c_miss | `Prune -> t.c_prune_miss);
              None))

let envelope fp payload =
  J.Obj
    [
      ("schema", J.Str entry_schema);
      ("fingerprint", J.Str fp);
      ("payload", payload);
    ]

(* Durable atomic write: bytes → temp file → fsync(file) → rename →
   fsync(directory). Any crash leaves the old entry or the new one; the
   worst residue is a temp file the next startup sweep quarantines. *)
let write_durable dir path json =
  let tmp =
    Filename.concat dir (Printf.sprintf "%s%d" tmp_prefix (Unix.getpid ()))
  in
  let s = J.to_string json in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with _ -> ())
       (fun () ->
         let n = String.length s in
         let off = ref 0 in
         while !off < n do
           off := !off + Unix.write_substring fd s !off (n - !off)
         done;
         Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with _ -> ());
     raise e);
  Sys.rename tmp path;
  (try
     let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close dfd with _ -> ())
       (fun () -> Unix.fsync dfd)
   with _ -> () (* directory fsync is a durability nicety, never fatal *));
  String.length s

let enter_mem_only_locked t reason =
  if not t.mem_only then begin
    t.mem_only <- true;
    Obs.Metrics.set_gauge t.g_mem_only 1.0;
    Obs.Budget.degrade "service.cache.enospc";
    Obs.Journal.event "cache.mem_only" [ ("reason", J.Str reason) ];
    Obs.Log.warn (fun m ->
        m "service.cache: disk full (%s); degrading to memory-only mode"
          reason)
  end

let store ?(cls = `Result) t fp payload =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      Obs.Metrics.bump
        (match cls with `Result -> t.c_store | `Prune -> t.c_prune_store);
      mem_insert_locked t fp payload;
      if not t.mem_only then
        let d = entry_dir t fp in
        let path = entry_path t fp in
        try
          Obs.Fault.trip "cache.enospc";
          mkdir_p d;
          let old = file_size path in
          let written = write_durable d path (envelope fp payload) in
          set_disk_bytes_locked t (t.disk_bytes - old + written);
          enforce_cap_locked t ~keep:fp
        with
        | Obs.Fault.Injected _ | Unix.Unix_error (Unix.ENOSPC, _, _) ->
            (* no space: serve from memory, never crash the daemon *)
            enter_mem_only_locked t "ENOSPC"
        | e ->
            (* any other store failure degrades (the next request
               re-searches) but must never take the daemon down *)
            Obs.Budget.degrade "service.cache.write";
            Obs.Log.warn (fun m ->
                m "service.cache: store %s failed: %s" fp
                  (Printexc.to_string e)))

let clear_mem t =
  Mutex.lock t.lock;
  t.mem <- [];
  Mutex.unlock t.lock

let mem_entries t =
  Mutex.lock t.lock;
  let n = List.length t.mem in
  Mutex.unlock t.lock;
  n

let disk_entries t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> List.length (disk_entries_locked t))

let disk_bytes t =
  Mutex.lock t.lock;
  let b = t.disk_bytes in
  Mutex.unlock t.lock;
  b

let mem_only t =
  Mutex.lock t.lock;
  let b = t.mem_only in
  Mutex.unlock t.lock;
  b
