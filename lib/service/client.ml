(* One-shot client for the optimization service: connect to the Unix
   socket, send one request frame, read one response frame. *)

module J = Obs.Jsonw

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close fd;
     raise e);
  fd

let request ?on_progress ~socket_path req =
  (* mint a request id unless the caller brought one: the id comes back
     in the response and tags every server-side journal event, so a
     caller can join its call to the server's forensics *)
  let req, _rid = Reqid.ensure req in
  (* opting into streaming is the callback's presence: the request grows
     a ["progress": true] field (not part of the server's fingerprint,
     so cache keys are unchanged) and the read loop skips interleaved
     progress frames until the response — a frame with no ["type"] —
     arrives *)
  let req =
    match (on_progress, req) with
    | Some _, J.Obj fields when not (List.mem_assoc "progress" fields) ->
        J.Obj (fields @ [ ("progress", J.Bool true) ])
    | _ -> req
  in
  match connect ~socket_path with
  | exception e ->
      Error
        (Printf.sprintf "connect %s: %s" socket_path (Printexc.to_string e))
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match
            Proto.write_frame fd req;
            let rec read_resp () =
              let frame = Proto.read_frame fd in
              if Proto.is_progress frame then begin
                (match on_progress with Some f -> f frame | None -> ());
                read_resp ()
              end
              else frame
            in
            read_resp ()
          with
          | resp -> Ok resp
          | exception End_of_file -> Error "connection closed by server"
          | exception Proto.Protocol_error m -> Error m
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))))

let optimize ?(fields = []) ?on_progress ~socket_path ~benchmark () =
  request ?on_progress ~socket_path
    (J.Obj ([ ("op", J.Str "optimize"); ("benchmark", J.Str benchmark) ] @ fields))

let optimize_graph ?(fields = []) ?on_progress ~socket_path graph_json =
  request ?on_progress ~socket_path
    (J.Obj ([ ("op", J.Str "optimize"); ("graph", graph_json) ] @ fields))

let simple ~socket_path op = request ~socket_path (J.Obj [ ("op", J.Str op) ])
let status ~socket_path = simple ~socket_path "status"
let stats ~socket_path = simple ~socket_path "stats"

let shutdown ?drain_s ~socket_path () =
  request ~socket_path
    (J.Obj
       (("op", J.Str "shutdown")
       ::
       (match drain_s with
       | Some s -> [ ("drain_s", J.Float s) ]
       | None -> [])))

let metrics ?format ~socket_path () =
  request ~socket_path
    (J.Obj
       (("op", J.Str "metrics")
       :: (match format with Some f -> [ ("format", J.Str f) ] | None -> [])))

(* --- typed-error helpers and retry ----------------------------------- *)

let error_kind resp =
  match J.member "status" resp with
  | Some (J.Str "error") -> (
      match J.member "error" resp with
      | Some (J.Str k) -> Some k
      | _ -> Some "error")
  | _ -> None

let retry_after_s resp =
  match J.member "retry_after_s" resp with
  | Some (J.Float s) -> Some s
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* Only requests that are safe to repeat are ever retried: optimize is
   idempotent by construction (same fingerprint, same cached answer)
   and the read-only ops trivially so. A shutdown is never retried. *)
let idempotent req =
  match J.member "op" req with
  | Some (J.Str ("optimize" | "status" | "stats" | "metrics")) -> true
  | _ -> false

(* Load-shed responses are retryable — the server said "come back".
   A typed "timeout" is not: the request's own deadline expired, and
   retrying cannot un-expire it. *)
let retryable_kind = function
  | "overloaded" | "quota_exceeded" -> true
  | _ -> false

let request_with_retry ?on_progress ?(max_attempts = 5)
    ?(base_delay_s = 0.05) ?(max_delay_s = 2.0) ?on_retry ~socket_path req =
  (* pin one rid across attempts so the server journal shows a single
     logical request, however many tries it took *)
  let req, _rid = Reqid.ensure req in
  if not (idempotent req) then request ?on_progress ~socket_path req
  else begin
    (* deterministic-free jitter without a global RNG: the fractional
       part of a scaled clock is plenty to de-synchronize retries *)
    let jitter () = Float.abs (fst (Float.modf (Unix.gettimeofday () *. 997.0))) in
    let backoff attempt hint =
      let exp_delay =
        Float.min max_delay_s
          (base_delay_s *. (2.0 ** float_of_int (attempt - 1)))
      in
      (* the server's retry_after_s hint is a floor, not a cap: backing
         off less than asked just earns another rejection *)
      let d = match hint with Some h -> Float.max h exp_delay | None -> exp_delay in
      Float.min max_delay_s (d *. (0.75 +. (0.5 *. jitter ())))
    in
    let note attempt delay_s reason =
      match on_retry with
      | Some f -> f ~attempt ~delay_s ~reason
      | None -> ()
    in
    let rec go attempt =
      match request ?on_progress ~socket_path req with
      | Ok resp as ok -> (
          match error_kind resp with
          | Some k when retryable_kind k && attempt < max_attempts ->
              let d = backoff attempt (retry_after_s resp) in
              note attempt d k;
              Unix.sleepf d;
              go (attempt + 1)
          | _ -> ok)
      | Error m when attempt < max_attempts ->
          let d = backoff attempt None in
          note attempt d m;
          Unix.sleepf d;
          go (attempt + 1)
      | Error _ as e -> e
    in
    go 1
  end

(* Poll until the server socket accepts a connection (daemon startup). *)
let wait_ready ?(timeout_s = 10.0) ~socket_path () =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if Unix.gettimeofday () -. t0 > timeout_s then false
    else
      match status ~socket_path with
      | Ok _ -> true
      | Error _ ->
          ignore (Unix.select [] [] [] 0.05);
          go ()
  in
  go ()
