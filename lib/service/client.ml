(* One-shot client for the optimization service: connect to the Unix
   socket, send one request frame, read one response frame. *)

module J = Obs.Jsonw

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close fd;
     raise e);
  fd

let request ?on_progress ~socket_path req =
  (* mint a request id unless the caller brought one: the id comes back
     in the response and tags every server-side journal event, so a
     caller can join its call to the server's forensics *)
  let req, _rid = Reqid.ensure req in
  (* opting into streaming is the callback's presence: the request grows
     a ["progress": true] field (not part of the server's fingerprint,
     so cache keys are unchanged) and the read loop skips interleaved
     progress frames until the response — a frame with no ["type"] —
     arrives *)
  let req =
    match (on_progress, req) with
    | Some _, J.Obj fields when not (List.mem_assoc "progress" fields) ->
        J.Obj (fields @ [ ("progress", J.Bool true) ])
    | _ -> req
  in
  match connect ~socket_path with
  | exception e ->
      Error
        (Printf.sprintf "connect %s: %s" socket_path (Printexc.to_string e))
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match
            Proto.write_frame fd req;
            let rec read_resp () =
              let frame = Proto.read_frame fd in
              if Proto.is_progress frame then begin
                (match on_progress with Some f -> f frame | None -> ());
                read_resp ()
              end
              else frame
            in
            read_resp ()
          with
          | resp -> Ok resp
          | exception End_of_file -> Error "connection closed by server"
          | exception Proto.Protocol_error m -> Error m
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))))

let optimize ?(fields = []) ?on_progress ~socket_path ~benchmark () =
  request ?on_progress ~socket_path
    (J.Obj ([ ("op", J.Str "optimize"); ("benchmark", J.Str benchmark) ] @ fields))

let optimize_graph ?(fields = []) ?on_progress ~socket_path graph_json =
  request ?on_progress ~socket_path
    (J.Obj ([ ("op", J.Str "optimize"); ("graph", graph_json) ] @ fields))

let simple ~socket_path op = request ~socket_path (J.Obj [ ("op", J.Str op) ])
let status ~socket_path = simple ~socket_path "status"
let stats ~socket_path = simple ~socket_path "stats"
let shutdown ~socket_path = simple ~socket_path "shutdown"

let metrics ?format ~socket_path () =
  request ~socket_path
    (J.Obj
       (("op", J.Str "metrics")
       :: (match format with Some f -> [ ("format", J.Str f) ] | None -> [])))

(* Poll until the server socket accepts a connection (daemon startup). *)
let wait_ready ?(timeout_s = 10.0) ~socket_path () =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if Unix.gettimeofday () -. t0 > timeout_s then false
    else
      match status ~socket_path with
      | Ok _ -> true
      | Error _ ->
          ignore (Unix.select [] [] [] 0.05);
          go ()
  in
  go ()
